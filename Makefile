GO ?= go

# bench-check gates against the newest committed benchmark snapshot;
# override for local experiments, e.g.
#   make bench-check BENCH_SNAPSHOT=BENCH_last.json BENCH_THRESHOLD=5
BENCH_SNAPSHOT ?= BENCH_pr9.json
BENCH_THRESHOLD ?= 15

.PHONY: all build test vet lint race bench bench-check bench-serving bench-smoke examples staticcheck

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint is the full static gate: the toolchain's bundled vet passes
# (copylocks, lostcancel, printf, ...) plus the repo's own invariant
# suite (see DESIGN.md "Enforced invariants") through the same vet
# driver. Suppress a finding only with a reasoned directive:
#   //orchestralint:ignore <analyzer> <why this site is exempt>
lint: bin/orchestralint
	$(GO) vet ./...
	$(GO) vet -vettool=bin/orchestralint ./...

bin/orchestralint: FORCE
	$(GO) build -o bin/orchestralint ./cmd/orchestralint

FORCE:

race:
	$(GO) test -race ./...

# bench writes a machine-readable benchmark snapshot (the BENCH_*.json
# format; see DESIGN.md "Benchmark baselines").
bench:
	$(GO) run ./cmd/benchfig -json -out BENCH_last.json

# bench-check is the bench-regression gate: rerun the benchmark cases
# and fail if any case's ns/op or allocs/op regressed more than
# BENCH_THRESHOLD percent against the committed BENCH_SNAPSHOT. The
# fresh measurements are kept in BENCH_last.json for inspection.
bench-check:
	$(GO) run ./cmd/benchfig -json -out BENCH_last.json -compare $(BENCH_SNAPSHOT) -threshold $(BENCH_THRESHOLD)

# bench-serving gates the serving-path cases alone at a tight 3%:
# BenchmarkServing sits directly on the push-exchange hot path, so the
# bus redesign must not tax it. Serving/* cases carry no figure number,
# hence -case instead of -fig; -samples takes each metric's best of 7
# so a 3% threshold survives run-to-run scheduler noise.
bench-serving:
	$(GO) run ./cmd/benchfig -json -case '^Serving/' -samples 7 -out BENCH_serving_last.json -compare BENCH_pr9.json -threshold 3

# bench-smoke executes every benchmark once so bench code cannot rot.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

examples:
	for ex in quickstart federation incremental provexplorer bioshare durability evolution; do \
		$(GO) run ./examples/$$ex >/dev/null || exit 1; \
	done

staticcheck:
	staticcheck ./...
