GO ?= go

.PHONY: all build test vet race bench bench-smoke examples staticcheck

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench writes a machine-readable benchmark snapshot (the BENCH_*.json
# format; see DESIGN.md "Benchmark baselines").
bench:
	$(GO) run ./cmd/benchfig -json -out BENCH_last.json

# bench-smoke executes every benchmark once so bench code cannot rot.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

examples:
	for ex in quickstart federation incremental provexplorer bioshare durability evolution; do \
		$(GO) run ./examples/$$ex >/dev/null || exit 1; \
	done

staticcheck:
	staticcheck ./...
