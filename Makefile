GO ?= go

.PHONY: all build test vet race bench examples staticcheck

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

examples:
	for ex in quickstart federation incremental provexplorer bioshare durability; do \
		$(GO) run ./examples/$$ex >/dev/null || exit 1; \
	done

staticcheck:
	staticcheck ./...
