package orchestra

import (
	"context"

	"orchestra/internal/core"
	"orchestra/internal/provenance"
	"orchestra/internal/semiring"
)

// Provenance-graph vocabulary for callers that go beyond the one-tuple
// Provenance method: the graph itself, tuple references into it, and
// the semirings the equation system can be evaluated in (§3.2–3.3).
type (
	// ProvGraph is the provenance graph of one view (Example 5's
	// bipartite tuple/derivation graph).
	ProvGraph = provenance.Graph
	// ProvRef identifies one tuple node of the graph.
	ProvRef = provenance.Ref
	// Semiring is the algebra provenance is evaluated in.
	Semiring[T any] = semiring.Semiring[T]
	// MapFn interprets the unary mapping applications m(·).
	MapFn[T any] = semiring.MapFn[T]
	// BoolSemiring evaluates trust verdicts (Example 7).
	BoolSemiring = semiring.Bool
	// CountSemiring counts derivations.
	CountSemiring = semiring.Count
	// TropicalSemiring finds the cheapest derivation.
	TropicalSemiring = semiring.Tropical
	// LineageSemiring computes which base tuples a tuple depends on.
	LineageSemiring = semiring.Lineage
	// LineageElem is an element of the lineage semiring.
	LineageElem = semiring.LineageElem
)

// TropicalInf is the tropical semiring's "unreachable" cost.
const TropicalInf = semiring.TropInf

// IdentityMap ignores mapping applications during evaluation.
func IdentityMap[T any]() MapFn[T] { return semiring.Identity[T]() }

// LineageToken returns the lineage element for a single base token.
func LineageToken(tok string) LineageElem { return semiring.Token(tok) }

// LocalRef references a base tuple (a local contribution Rℓ) in the
// provenance graph.
func LocalRef(rel string, t Tuple) ProvRef {
	return provenance.NewRef(core.LocalRel(rel), t)
}

// InstanceRef references a curated-instance tuple (Rᵒ) in the
// provenance graph.
func InstanceRef(rel string, t Tuple) ProvRef {
	return provenance.NewRef(core.OutputRel(rel), t)
}

// IsInstanceRef reports whether a graph node is a curated-instance
// (Rᵒ) tuple — the user-visible layer of the graph.
func IsInstanceRef(r ProvRef) bool {
	return len(r.Rel) > 2 && r.Rel[len(r.Rel)-2:] == "$o"
}

// ProvenanceGraph returns the live provenance graph of an owner's view.
// The graph reads the view's tables directly and is not synchronized
// with concurrent exchanges: take it when the system is quiescent, or
// after the exchanges you care about have completed.
func (s *System) ProvenanceGraph(owner string) (*ProvGraph, error) {
	h, err := s.handle(owner)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.view.Repair(context.Background()); err != nil {
		return nil, err
	}
	return h.view.Graph(), nil
}

// EvalProvenance solves the provenance equation system of a graph in a
// semiring (§3.2): baseVal assigns values to base-tuple tokens, mapFn
// interprets mapping applications, and the result maps every tuple node
// to its value. Cancellation via ctx stops the Kleene iteration between
// rounds.
func EvalProvenance[T any](ctx context.Context, g *ProvGraph, s Semiring[T], mapFn MapFn[T], baseVal func(ProvRef) T) (map[ProvRef]T, error) {
	return provenance.Eval(ctx, g, s, mapFn, baseVal, provenance.EvalOptions{})
}
