package provenance

import (
	"sort"
	"strings"
)

// Expr is a provenance expression over the CDSS semiring (§3.2): sums and
// products of provenance tokens under unary mapping functions. A CycleVar
// marks a back-reference to a tuple currently being expanded — the
// paper's observation that cyclic mappings make provenance a system of
// equations (finitely representable even when the set of derivations is
// infinite).
type Expr interface {
	// String renders the expression with ·, +, and m(…) notation.
	String() string
	exprNode()
}

// Token is the provenance token of a base tuple.
type Token struct {
	Name string
	Ref  Ref
}

func (t Token) String() string { return t.Name }
func (Token) exprNode()        {}

// Sum is an n-ary + (alternative derivations).
type Sum struct{ Args []Expr }

func (s Sum) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.String()
	}
	return strings.Join(parts, " + ")
}
func (Sum) exprNode() {}

// Prod is an n-ary · (joint use in one derivation).
type Prod struct{ Args []Expr }

func (p Prod) String() string {
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		s := a.String()
		if _, isSum := a.(Sum); isSum {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, "·")
}
func (Prod) exprNode() {}

// Apply is the unary mapping function m(…).
type Apply struct {
	Mapping string
	Arg     Expr
}

func (a Apply) String() string { return a.Mapping + "(" + a.Arg.String() + ")" }
func (Apply) exprNode()        {}

// CycleVar references the provenance variable Pv(t) of a tuple under
// expansion.
type CycleVar struct{ Ref Ref }

func (c CycleVar) String() string { return "Pv[" + c.Ref.String() + "]" }
func (CycleVar) exprNode()        {}

// Zero is the empty sum: a tuple with no derivations.
type Zero struct{}

func (Zero) String() string { return "0" }
func (Zero) exprNode()      {}

// ExprFor builds the provenance expression of ref by traversing the graph
// backward (Example 5's recursive reading). Transparent (internal)
// mappings are spliced out, so the result matches the paper's user-level
// expressions. Cycles yield CycleVar references; maxDepth bounds the
// expansion (0 = default 64).
func (g *Graph) ExprFor(ref Ref, maxDepth int) Expr {
	if maxDepth <= 0 {
		maxDepth = 64
	}
	idx := g.buildDerivIndex()
	onStack := make(map[Ref]bool)
	var build func(r Ref, depth int) Expr
	build = func(r Ref, depth int) Expr {
		if g.baseRels[r.Rel] {
			return Token{Name: g.tokenName(r), Ref: r}
		}
		if depth >= maxDepth || onStack[r] {
			return CycleVar{Ref: r}
		}
		derivs := idx[r]
		if len(derivs) == 0 {
			return Zero{}
		}
		onStack[r] = true
		defer delete(onStack, r)
		var summands []Expr
		for _, d := range derivs {
			var factors []Expr
			skip := false
			for _, s := range d.Sources {
				e := build(s, depth+1)
				if _, isZero := e.(Zero); isZero {
					skip = true
					break
				}
				factors = append(factors, e)
			}
			if skip {
				continue
			}
			var body Expr
			switch len(factors) {
			case 0:
				continue
			case 1:
				body = factors[0]
			default:
				sort.Slice(factors, func(i, j int) bool { return factors[i].String() < factors[j].String() })
				body = Prod{Args: factors}
			}
			switch {
			case d.Mapping.Transparent:
				summands = append(summands, body)
			default:
				// Mapping functions are semiring homomorphisms ([16]), so
				// m(a+b) = m(a)+m(b); distributing here reproduces the
				// paper's display form m3(m1(p3)) + m3(m4(p1·p2)).
				if sum, isSum := body.(Sum); isSum {
					for _, arg := range sum.Args {
						summands = append(summands, Apply{Mapping: d.Mapping.ID, Arg: arg})
					}
				} else {
					summands = append(summands, Apply{Mapping: d.Mapping.ID, Arg: body})
				}
			}
		}
		switch len(summands) {
		case 0:
			return Zero{}
		case 1:
			return summands[0]
		default:
			sort.Slice(summands, func(i, j int) bool { return summands[i].String() < summands[j].String() })
			// Deduplicate identical summands (a+a=a does NOT hold in all
			// semirings, but identical summands here mean the same
			// derivation reached twice through transparent splicing).
			dedup := summands[:1]
			for _, s := range summands[1:] {
				if s.String() != dedup[len(dedup)-1].String() {
					dedup = append(dedup, s)
				}
			}
			if len(dedup) == 1 {
				return dedup[0]
			}
			return Sum{Args: dedup}
		}
	}
	return build(ref, 0)
}

// Tokens returns the distinct token names appearing in e, sorted.
func Tokens(e Expr) []string {
	seen := make(map[string]bool)
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case Token:
			seen[n.Name] = true
		case Sum:
			for _, a := range n.Args {
				walk(a)
			}
		case Prod:
			for _, a := range n.Args {
				walk(a)
			}
		case Apply:
			walk(n.Arg)
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// MappingsUsed returns the distinct non-transparent mapping ids appearing
// in e, sorted.
func MappingsUsed(e Expr) []string {
	seen := make(map[string]bool)
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case Sum:
			for _, a := range n.Args {
				walk(a)
			}
		case Prod:
			for _, a := range n.Args {
				walk(a)
			}
		case Apply:
			seen[n.Mapping] = true
			walk(n.Arg)
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
