package provenance

import (
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/storage"
	"orchestra/internal/value"
)

// Ref identifies a tuple node of the provenance graph: a relation name
// plus the tuple's canonical key.
type Ref struct {
	Rel string
	Key string
}

// NewRef builds a Ref, encoding the tuple's canonical key. Callers that
// already hold the key (storage rows, delta entries) should use RowRef or
// KeyedRef, which skip the encode.
func NewRef(rel string, t value.Tuple) Ref { return Ref{Rel: rel, Key: t.Key()} }

// RowRef builds a Ref from a pre-keyed row without re-encoding.
func RowRef(rel string, r value.Row) Ref { return Ref{Rel: rel, Key: r.Key} }

// KeyedRef builds a Ref from a relation name and canonical key.
func KeyedRef(rel, key string) Ref { return Ref{Rel: rel, Key: key} }

// Tuple decodes the Ref's tuple.
func (r Ref) Tuple() value.Tuple {
	t, err := value.DecodeTuple(r.Key)
	if err != nil {
		panic(fmt.Sprintf("provenance: corrupt ref key for %s: %v", r.Rel, err))
	}
	return t
}

// String renders "Rel(v1, v2)".
func (r Ref) String() string { return r.Rel + r.Tuple().String() }

// Derivation is one mapping node of the provenance graph (Def. 3.2): an
// instantiation of a mapping, i.e. one row of its provenance table,
// connecting source tuple nodes to target tuple nodes.
type Derivation struct {
	Mapping *MappingInfo
	Row     value.Tuple
	Sources []Ref
	Targets []Ref
}

// Graph is the provenance graph of a database holding provenance tables.
// It is a *view*: derivations are computed from the current table
// contents on demand, so the graph stays consistent under incremental
// maintenance without separate bookkeeping (§4.2's motivation for the
// relational encoding).
type Graph struct {
	db       *storage.Database
	sk       *value.SkolemTable
	mappings []*MappingInfo
	// byTarget indexes mappings by target relation.
	byTarget map[string][]*MappingInfo
	// baseRels marks relations whose tuples are base (edb) nodes carrying
	// provenance tokens — the local-contribution tables.
	baseRels map[string]bool
	// tokenName renders the token of a base tuple (Example 5's p1, p2, …);
	// defaults to "rel(tuple)".
	tokenName func(Ref) string
}

// NewGraph builds a provenance graph view over db.
func NewGraph(db *storage.Database, sk *value.SkolemTable, mappings []*MappingInfo, baseRels map[string]bool) *Graph {
	g := &Graph{
		db:       db,
		sk:       sk,
		mappings: mappings,
		byTarget: make(map[string][]*MappingInfo),
		baseRels: baseRels,
		tokenName: func(r Ref) string {
			return r.String()
		},
	}
	for _, m := range mappings {
		for _, t := range m.Targets {
			g.byTarget[t.Rel] = append(g.byTarget[t.Rel], m)
		}
	}
	return g
}

// SetTokenNamer installs a custom display name for base-tuple tokens.
func (g *Graph) SetTokenNamer(fn func(Ref) string) { g.tokenName = fn }

// TokenName returns the provenance token of a base tuple ref.
func (g *Graph) TokenName(r Ref) string { return g.tokenName(r) }

// IsBase reports whether ref lives in a base (edb) relation.
func (g *Graph) IsBase(ref Ref) bool { return g.baseRels[ref.Rel] }

// Mappings returns the registered mapping metadata.
func (g *Graph) Mappings() []*MappingInfo { return g.mappings }

// derivationFromRow materializes the Derivation of one provenance row.
func (g *Graph) derivationFromRow(m *MappingInfo, row value.Tuple) Derivation {
	d := Derivation{Mapping: m, Row: row}
	for i := range m.Sources {
		d.Sources = append(d.Sources, NewRef(m.Sources[i].Rel, m.Sources[i].Instantiate(row, g.sk)))
	}
	for i := range m.Targets {
		d.Targets = append(d.Targets, NewRef(m.Targets[i].Rel, m.Targets[i].Instantiate(row, g.sk)))
	}
	return d
}

// DerivationsOf returns every mapping node deriving ref, i.e. every
// provenance row of a mapping targeting ref's relation that instantiates
// to ref. This scans candidate provenance tables; amortized callers use
// Eval/Support which walk tables once.
func (g *Graph) DerivationsOf(ref Ref) []Derivation {
	var out []Derivation
	for _, m := range g.byTarget[ref.Rel] {
		pt := g.db.Table(m.ProvRel)
		if pt == nil {
			continue
		}
		pt.Each(func(row value.Tuple) bool {
			d := g.derivationFromRow(m, row)
			for _, t := range d.Targets {
				if t == ref {
					out = append(out, d)
					break
				}
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mapping.ID != out[j].Mapping.ID {
			return out[i].Mapping.ID < out[j].Mapping.ID
		}
		return out[i].Row.Compare(out[j].Row) < 0
	})
	return out
}

// AllDerivations walks every provenance row of every mapping.
func (g *Graph) AllDerivations(fn func(Derivation) bool) {
	for _, m := range g.mappings {
		pt := g.db.Table(m.ProvRel)
		if pt == nil {
			continue
		}
		stop := false
		pt.Each(func(row value.Tuple) bool {
			if !fn(g.derivationFromRow(m, row)) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// derivIndex is a materialized reverse index target-ref → derivations,
// built once per traversal-heavy operation.
type derivIndex map[Ref][]Derivation

func (g *Graph) buildDerivIndex() derivIndex {
	idx := make(derivIndex)
	g.AllDerivations(func(d Derivation) bool {
		for _, t := range d.Targets {
			idx[t] = append(idx[t], d)
		}
		return true
	})
	return idx
}

// Support computes the set of base tuples from which the given targets
// are (transitively) derivable — the backward pass of the paper's
// goal-directed derivation test (§4.1.3). It follows provenance rows
// backward from each target, through mapping nodes, to base relations.
func (g *Graph) Support(targets []Ref) map[Ref]bool {
	idx := g.buildDerivIndex()
	support := make(map[Ref]bool)
	visited := make(map[Ref]bool)
	var stack []Ref
	for _, t := range targets {
		if !visited[t] {
			visited[t] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if g.baseRels[cur.Rel] {
			// Base node: it supports the targets if actually present.
			if tbl := g.db.Table(cur.Rel); tbl != nil && tbl.ContainsKey(cur.Key) {
				support[cur] = true
			}
			continue
		}
		for _, d := range idx[cur] {
			for _, s := range d.Sources {
				if !visited[s] {
					visited[s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	return support
}

// Dot renders the graph in Graphviz format (Example 5's picture) for the
// CLI. Relations listed in hide are omitted.
func (g *Graph) Dot(hide map[string]bool) string {
	var b strings.Builder
	b.WriteString("digraph provenance {\n  rankdir=LR;\n")
	ids := make(map[Ref]string)
	node := func(r Ref) string {
		id, ok := ids[r]
		if !ok {
			id = fmt.Sprintf("t%d", len(ids))
			ids[r] = id
			label := r.String()
			if g.baseRels[r.Rel] {
				label += "\\n" + g.tokenName(r)
			}
			fmt.Fprintf(&b, "  %s [shape=box,label=%q];\n", id, label)
		}
		return id
	}
	i := 0
	g.AllDerivations(func(d Derivation) bool {
		if hide[d.Mapping.ID] {
			return true
		}
		mid := fmt.Sprintf("m%d", i)
		i++
		fmt.Fprintf(&b, "  %s [shape=ellipse,label=\"%s\"];\n", mid, d.Mapping.ID)
		for _, s := range d.Sources {
			fmt.Fprintf(&b, "  %s -> %s;\n", node(s), mid)
		}
		for _, t := range d.Targets {
			fmt.Fprintf(&b, "  %s -> %s;\n", mid, node(t))
		}
		return true
	})
	b.WriteString("}\n")
	return b.String()
}
