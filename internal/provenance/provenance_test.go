package provenance

import (
	"context"
	"strings"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/engine"
	"orchestra/internal/semiring"
	"orchestra/internal/storage"
	"orchestra/internal/tgd"
	"orchestra/internal/value"
)

// paperFixture materializes Examples 5–7 of the paper: base relations
// G_l/B_l/U_l, user relations G/B/U, the mappings m1/m3/m4, the
// provenance encoding, and evaluation to fixpoint.
type paperFixture struct {
	db *storage.Database
	sk *value.SkolemTable
	g  *Graph
	// token refs
	p1, p2, p3 Ref
	b32        Ref // derived B(3,2)
}

func buildPaper(t *testing.T) *paperFixture {
	t.Helper()
	db := storage.NewDatabase()
	db.MustCreate("G_l", 3)
	db.MustCreate("B_l", 2)
	db.MustCreate("U_l", 2)
	db.MustCreate("G", 3)
	db.MustCreate("B", 2)
	db.MustCreate("U", 2)

	userTGDs := []*tgd.TGD{
		tgd.MustParse("m1: G(i,c,n) -> B(i,n)"),
		tgd.MustParse("m3: B(i,n) -> U(n,c)"),
		tgd.MustParse("m4: B(i,c), U(n,c) -> B(i,n)"),
	}
	locTGDs := []*tgd.TGD{
		tgd.MustParse("loc_G: G_l(i,c,n) -> G(i,c,n)"),
		tgd.MustParse("loc_B: B_l(i,n) -> B(i,n)"),
		tgd.MustParse("loc_U: U_l(n,c) -> U(n,c)"),
	}

	prog := datalog.NewProgram()
	var infos []*MappingInfo
	addEnc := func(m *tgd.TGD, transparent bool) {
		enc := m.Encode()
		db.MustCreate(enc.ProvRel, len(enc.ProvVars))
		prog.Add(enc.Populate)
		prog.Add(enc.Derive...)
		mi, err := FromEncoding(enc)
		if err != nil {
			t.Fatal(err)
		}
		mi.Transparent = transparent
		infos = append(infos, mi)
	}
	for _, m := range locTGDs {
		addEnc(m, true)
	}
	for _, m := range userTGDs {
		addEnc(m, false)
	}

	// Example 6 base data.
	db.Table("B_l").Insert(value.Tuple{value.Int(3), value.Int(5)})               // p1
	db.Table("U_l").Insert(value.Tuple{value.Int(2), value.Int(5)})               // p2
	db.Table("G_l").Insert(value.Tuple{value.Int(3), value.Int(5), value.Int(2)}) // p3

	sk := value.NewSkolemTable()
	ev, err := engine.New(prog, db, sk, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	base := map[string]bool{"G_l": true, "B_l": true, "U_l": true}
	g := NewGraph(db, sk, infos, base)

	f := &paperFixture{
		db: db, sk: sk, g: g,
		p1:  NewRef("B_l", value.Tuple{value.Int(3), value.Int(5)}),
		p2:  NewRef("U_l", value.Tuple{value.Int(2), value.Int(5)}),
		p3:  NewRef("G_l", value.Tuple{value.Int(3), value.Int(5), value.Int(2)}),
		b32: NewRef("B", value.Tuple{value.Int(3), value.Int(2)}),
	}
	names := map[Ref]string{f.p1: "p1", f.p2: "p2", f.p3: "p3"}
	g.SetTokenNamer(func(r Ref) string {
		if n, ok := names[r]; ok {
			return n
		}
		return r.String()
	})
	return f
}

func TestExample6Expression(t *testing.T) {
	f := buildPaper(t)
	if !f.db.Table("B").Contains(value.Tuple{value.Int(3), value.Int(2)}) {
		t.Fatalf("B(3,2) not derived:\n%s", f.db.Dump("B"))
	}
	expr := f.g.ExprFor(f.b32, 0)
	// Example 6: Pv(B(3,2)) = m1(p3) + m4(p1·p2).
	if got := expr.String(); got != "m1(p3) + m4(p1·p2)" {
		t.Fatalf("Pv(B(3,2)) = %q", got)
	}
	if toks := Tokens(expr); len(toks) != 3 {
		t.Fatalf("Tokens = %v", toks)
	}
	if ms := MappingsUsed(expr); len(ms) != 2 || ms[0] != "m1" || ms[1] != "m4" {
		t.Fatalf("MappingsUsed = %v", ms)
	}
}

func TestExample6NestedExpression(t *testing.T) {
	f := buildPaper(t)
	// U(2, sk_m3_c(2)) is m3's image of B(3,2):
	// Pv = m3(m1(p3)) + m3(m4(p1·p2)) after homomorphic distribution.
	skv := f.sk.Apply("sk_m3_c", value.Tuple{value.Int(2)})
	uRef := NewRef("U", value.Tuple{value.Int(2), skv})
	if !f.db.Table("U").Contains(uRef.Tuple()) {
		t.Fatalf("U(2,c2) not derived:\n%s", f.db.Dump("U"))
	}
	expr := f.g.ExprFor(uRef, 0)
	if got := expr.String(); got != "m3(m1(p3)) + m3(m4(p1·p2))" {
		t.Fatalf("Pv(U(2,c2)) = %q", got)
	}
}

func TestExample7TrustEvaluation(t *testing.T) {
	f := buildPaper(t)
	bool3 := semiring.Bool{}

	eval := func(tokTrust map[Ref]bool, mapTrust map[string]bool) bool {
		vals, err := Eval[bool](context.Background(), f.g, bool3,
			func(m string, x bool) bool {
				if v, ok := mapTrust[m]; ok {
					return v && x
				}
				return x
			},
			func(r Ref) bool {
				if v, ok := tokTrust[r]; ok {
					return v
				}
				return true
			}, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return vals[f.b32]
	}

	// Example 7: p1=T, p3=T, p2=D, trivial Θ ⇒ B(3,2) trusted.
	if !eval(map[Ref]bool{f.p1: true, f.p3: true, f.p2: false}, nil) {
		t.Fatal("Example 7: B(3,2) should be trusted")
	}
	// Example 6's closing remark: distrusting p2 AND m1 rejects B(3,2)…
	if eval(map[Ref]bool{f.p2: false}, map[string]bool{"m1": false}) {
		t.Fatal("distrusting {p2, m1} should reject B(3,2)")
	}
	// …but distrusting p1 and p2 does not.
	if !eval(map[Ref]bool{f.p1: false, f.p2: false}, nil) {
		t.Fatal("distrusting {p1, p2} should keep B(3,2)")
	}
}

func TestCountingEvaluation(t *testing.T) {
	f := buildPaper(t)
	vals, err := Eval[int64](context.Background(), f.g, semiring.Count{}, semiring.Identity[int64](),
		func(Ref) int64 { return 1 }, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// B(3,2) has two derivations: via m1 and via m4.
	if vals[f.b32] != 2 {
		t.Fatalf("count(B(3,2)) = %d, want 2", vals[f.b32])
	}
	// Base tuple counts are 1.
	if vals[f.p1] != 1 {
		t.Fatalf("count(p1) = %d", vals[f.p1])
	}
}

func TestTropicalEvaluation(t *testing.T) {
	f := buildPaper(t)
	// Charge 1 per mapping application: cheapest derivation of B(3,2) is
	// min(m1: 1, m4: 1) = 1; of U(2,c2) is 2 (m3 over either).
	vals, err := Eval[int64](context.Background(), f.g, semiring.Tropical{},
		func(_ string, x int64) int64 { return semiring.Tropical{}.Mul(x, 1) },
		func(Ref) int64 { return 0 }, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vals[f.b32] != 1 {
		t.Fatalf("cost(B(3,2)) = %d, want 1", vals[f.b32])
	}
	skv := f.sk.Apply("sk_m3_c", value.Tuple{value.Int(2)})
	uRef := NewRef("U", value.Tuple{value.Int(2), skv})
	if vals[uRef] != 2 {
		t.Fatalf("cost(U(2,c2)) = %d, want 2", vals[uRef])
	}
}

func TestLineageEvaluation(t *testing.T) {
	f := buildPaper(t)
	lin := semiring.Lineage{}
	vals, err := Eval[semiring.LineageElem](context.Background(), f.g, lin, semiring.Identity[semiring.LineageElem](),
		func(r Ref) semiring.LineageElem { return semiring.Token(f.g.TokenName(r)) },
		EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := vals[f.b32]
	want := semiring.NewTokenSet("p1", "p2", "p3")
	if got.Bottom || !got.Set.Equal(want) {
		t.Fatalf("lineage(B(3,2)) = %v, want %v", got, want)
	}
}

func TestDerivationsOf(t *testing.T) {
	f := buildPaper(t)
	derivs := f.g.DerivationsOf(f.b32)
	if len(derivs) != 2 {
		t.Fatalf("got %d derivations, want 2", len(derivs))
	}
	// Sorted by mapping id: m1 then m4.
	if derivs[0].Mapping.ID != "m1" || derivs[1].Mapping.ID != "m4" {
		t.Fatalf("mappings: %s, %s", derivs[0].Mapping.ID, derivs[1].Mapping.ID)
	}
	if len(derivs[1].Sources) != 2 {
		t.Fatalf("m4 sources: %v", derivs[1].Sources)
	}
}

func TestSupport(t *testing.T) {
	f := buildPaper(t)
	sup := f.g.Support([]Ref{f.b32})
	for _, want := range []Ref{f.p1, f.p2, f.p3} {
		if !sup[want] {
			t.Fatalf("support missing %v (got %v)", want, sup)
		}
	}
	// Deleted base tuples no longer support anything.
	f.db.Table("B_l").Delete(f.p1.Tuple())
	sup = f.g.Support([]Ref{f.b32})
	if sup[f.p1] {
		t.Fatal("deleted base tuple still in support")
	}
	if !sup[f.p3] {
		t.Fatal("support lost p3")
	}
}

func TestGraphDot(t *testing.T) {
	f := buildPaper(t)
	dot := f.g.Dot(nil)
	for _, frag := range []string{"digraph", "m1", "m4", "shape=box", "shape=ellipse"} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("Dot missing %q", frag)
		}
	}
}

// buildCycle creates mutually recursive mappings ma: P→Q, mb: Q→P with a
// base seed, to exercise cyclic provenance.
func buildCycle(t *testing.T) (*Graph, Ref) {
	t.Helper()
	db := storage.NewDatabase()
	db.MustCreate("S_l", 1)
	db.MustCreate("P", 1)
	db.MustCreate("Q", 1)
	prog := datalog.NewProgram()
	var infos []*MappingInfo
	add := func(m *tgd.TGD, transparent bool) {
		enc := m.Encode()
		db.MustCreate(enc.ProvRel, len(enc.ProvVars))
		prog.Add(enc.Populate)
		prog.Add(enc.Derive...)
		mi, err := FromEncoding(enc)
		if err != nil {
			t.Fatal(err)
		}
		mi.Transparent = transparent
		infos = append(infos, mi)
	}
	add(tgd.MustParse("loc: S_l(x) -> P(x)"), true)
	add(tgd.MustParse("ma: P(x) -> Q(x)"), false)
	add(tgd.MustParse("mb: Q(x) -> P(x)"), false)
	db.Table("S_l").Insert(value.Tuple{value.Int(1)})
	sk := value.NewSkolemTable()
	ev, err := engine.New(prog, db, sk, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	g := NewGraph(db, sk, infos, map[string]bool{"S_l": true})
	return g, NewRef("P", value.Tuple{value.Int(1)})
}

func TestCyclicExpressionHasCycleVar(t *testing.T) {
	g, pRef := buildCycle(t)
	expr := g.ExprFor(pRef, 0)
	s := expr.String()
	if !strings.Contains(s, "Pv[") {
		t.Fatalf("cyclic expression lacks CycleVar: %q", s)
	}
	// The direct token must also appear (P(1) is a local insert image).
	if !strings.Contains(s, "S_l(1)") {
		t.Fatalf("expression lacks base token: %q", s)
	}
}

func TestCyclicTrustConverges(t *testing.T) {
	g, pRef := buildCycle(t)
	vals, err := Eval[bool](context.Background(), g, semiring.Bool{}, semiring.Identity[bool](),
		func(Ref) bool { return true }, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !vals[pRef] {
		t.Fatal("P(1) should be trusted")
	}
	// Distrust the seed: the P↔Q loop alone cannot sustain trust — the
	// least fixpoint is false (matching the paper's edb-derivability
	// requirement for garbage collection).
	vals, err = Eval[bool](context.Background(), g, semiring.Bool{}, semiring.Identity[bool](),
		func(Ref) bool { return false }, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vals[pRef] {
		t.Fatal("P(1) trusted with distrusted seed (cycle sustained itself)")
	}
}

func TestCyclicCountSaturates(t *testing.T) {
	g, pRef := buildCycle(t)
	// Infinitely many derivations around the loop: the saturating count
	// must hit its cap rather than diverge.
	vals, err := Eval[int64](context.Background(), g, semiring.Count{Cap: 1000}, semiring.Identity[int64](),
		func(Ref) int64 { return 1 }, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vals[pRef] != 1000 {
		t.Fatalf("count = %d, want saturation at 1000", vals[pRef])
	}
}

func TestZeroExpr(t *testing.T) {
	db := storage.NewDatabase()
	db.MustCreate("X_l", 1)
	db.MustCreate("X", 1)
	g := NewGraph(db, value.NewSkolemTable(), nil, map[string]bool{"X_l": true})
	expr := g.ExprFor(NewRef("X", value.Tuple{value.Int(1)}), 0)
	if _, ok := expr.(Zero); !ok {
		t.Fatalf("expected Zero, got %q", expr.String())
	}
}

func TestInternalMappingTemplate(t *testing.T) {
	mi := InternalMapping("ins_B", "p$ins_B", "B_i", "B_o", 2)
	if !mi.Transparent || mi.ProvRel != "p$ins_B" {
		t.Fatalf("mi = %+v", mi)
	}
	row := value.Tuple{value.Int(1), value.Int(2)}
	src := mi.Sources[0].Instantiate(row, value.NewSkolemTable())
	dst := mi.Targets[0].Instantiate(row, value.NewSkolemTable())
	if !src.Equal(row) || !dst.Equal(row) {
		t.Fatal("identity templates")
	}
	if mi.Sources[0].Rel != "B_i" || mi.Targets[0].Rel != "B_o" {
		t.Fatal("rels")
	}
}

func TestRefRoundTrip(t *testing.T) {
	tup := value.Tuple{value.Int(3), value.String("x")}
	r := NewRef("B", tup)
	if !r.Tuple().Equal(tup) {
		t.Fatal("ref tuple round trip")
	}
	if r.String() != "B(3, x)" {
		t.Fatalf("String = %q", r.String())
	}
}
