package provenance

import (
	"context"
	"strings"
	"testing"

	"orchestra/internal/semiring"
	"orchestra/internal/storage"
	"orchestra/internal/tgd"
	"orchestra/internal/value"
)

func TestAtomTemplateConstantsAndSkolems(t *testing.T) {
	sk := value.NewSkolemTable()
	at := AtomTemplate{Rel: "R", Args: []ArgSpec{
		{Col: 1},
		{Col: -1, Const: value.String("k")},
		{Col: -2, Fn: "f", FnArgCols: []int{0, 1}},
	}}
	row := value.Tuple{value.Int(10), value.Int(20)}
	got := at.Instantiate(row, sk)
	if got[0] != value.Int(20) || got[1] != value.String("k") {
		t.Fatalf("instantiate: %v", got)
	}
	if !got[2].IsNull() {
		t.Fatal("skolem column not null")
	}
	if sk.Describe(got[2]) != "f(10,20)" {
		t.Fatalf("skolem term: %s", sk.Describe(got[2]))
	}
}

func TestFromEncodingErrors(t *testing.T) {
	// A tgd whose encoding is manually corrupted: provenance columns that
	// do not cover a variable are rejected.
	m := tgd.MustParse("m: R(x,y) -> S(x)")
	enc := m.Encode()
	enc.ProvVars = []string{"x"} // drop y
	if _, err := FromEncoding(enc); err == nil {
		t.Fatal("missing provenance column accepted")
	}
}

func TestTokensAndMappingsOnDegenerateExprs(t *testing.T) {
	if got := Tokens(Zero{}); len(got) != 0 {
		t.Fatalf("Tokens(Zero) = %v", got)
	}
	if got := MappingsUsed(CycleVar{}); len(got) != 0 {
		t.Fatalf("MappingsUsed(CycleVar) = %v", got)
	}
	e := Sum{Args: []Expr{
		Apply{Mapping: "m2", Arg: Token{Name: "p1"}},
		Prod{Args: []Expr{Token{Name: "p2"}, Apply{Mapping: "m1", Arg: Token{Name: "p1"}}}},
	}}
	if got := Tokens(e); len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Fatalf("Tokens = %v", got)
	}
	if got := MappingsUsed(e); len(got) != 2 || got[0] != "m1" || got[1] != "m2" {
		t.Fatalf("MappingsUsed = %v", got)
	}
}

func TestExprStringParenthesization(t *testing.T) {
	// Products containing sums must parenthesize.
	e := Prod{Args: []Expr{
		Token{Name: "a"},
		Sum{Args: []Expr{Token{Name: "b"}, Token{Name: "c"}}},
	}}
	if got := e.String(); got != "a·(b + c)" {
		t.Fatalf("String = %q", got)
	}
	if got := (CycleVar{Ref: Ref{Rel: "R", Key: value.Tuple{value.Int(1)}.Key()}}).String(); got != "Pv[R(1)]" {
		t.Fatalf("CycleVar = %q", got)
	}
}

func TestEvalNonConvergenceGuard(t *testing.T) {
	g, _ := buildCycle(t)
	// An adversarial "semiring" that never stabilizes: Add always grows.
	growing := growingSemiring{}
	_, err := Eval[int64](context.Background(), g, growing, semiring.Identity[int64](),
		func(Ref) int64 { return 1 }, EvalOptions{MaxIterations: 25})
	if err == nil {
		t.Fatal("non-convergent evaluation did not error")
	}
	if !strings.Contains(err.Error(), "converge") {
		t.Fatalf("error: %v", err)
	}
}

// growingSemiring violates idempotence-convergence on purpose (it is not
// a lawful semiring; it exists to exercise the iteration guard).
type growingSemiring struct{}

func (growingSemiring) Zero() int64          { return 0 }
func (growingSemiring) One() int64           { return 1 }
func (growingSemiring) Add(a, b int64) int64 { return a + b + 1 }
func (growingSemiring) Mul(a, b int64) int64 { return a + b }
func (growingSemiring) Eq(a, b int64) bool   { return a == b }

func TestDotHide(t *testing.T) {
	f := buildPaper(t)
	full := f.g.Dot(nil)
	hidden := f.g.Dot(map[string]bool{"m4": true})
	if len(hidden) >= len(full) {
		t.Fatal("hide did not shrink output")
	}
	if strings.Contains(hidden, `label="m4"`) {
		t.Fatal("hidden mapping still rendered")
	}
}

func TestWhyProvenanceIntegration(t *testing.T) {
	f := buildPaper(t)
	vals, err := Eval[semiring.WitnessSet](context.Background(), f.g, semiring.Why{},
		semiring.Identity[semiring.WitnessSet](),
		func(r Ref) semiring.WitnessSet { return semiring.Witness(f.g.TokenName(r)) },
		EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// why(B(3,2)) = {{p3}, {p1,p2}}: two distinguishable witnesses —
	// strictly finer than lineage's flat {p1,p2,p3}.
	got := vals[f.b32]
	want := semiring.NewWitnessSet(
		semiring.NewTokenSet("p3"),
		semiring.NewTokenSet("p1", "p2"),
	)
	if !got.Equal(want) {
		t.Fatalf("why(B(3,2)) = %v, want %v", got, want)
	}
}

func TestGraphOverMissingProvTables(t *testing.T) {
	// Mappings whose provenance tables are absent are skipped gracefully.
	db := storage.NewDatabase()
	db.MustCreate("A_l", 1)
	db.MustCreate("A", 1)
	mi := InternalMapping("x", "p$x", "A_l", "A", 1)
	g := NewGraph(db, value.NewSkolemTable(), []*MappingInfo{mi}, map[string]bool{"A_l": true})
	if d := g.DerivationsOf(NewRef("A", value.Tuple{value.Int(1)})); d != nil {
		t.Fatalf("derivations from missing table: %v", d)
	}
	sup := g.Support([]Ref{NewRef("A", value.Tuple{value.Int(1)})})
	if len(sup) != 0 {
		t.Fatalf("support: %v", sup)
	}
}
