package provenance

import (
	"context"
	"fmt"

	"orchestra/internal/semiring"
	"orchestra/internal/value"
)

// EvalOptions configures equation-system evaluation.
type EvalOptions struct {
	// MaxIterations bounds the fixpoint loop (0 = 10_000). For
	// ω-continuous semirings (boolean trust, tropical, lineage) the loop
	// converges; for counting over cyclic graphs it saturates at the
	// semiring's cap.
	MaxIterations int
}

// Eval solves the provenance equation system of the graph in semiring s
// (§3.2: "the provenance of a tuple t is the value of Pv(t) in the
// solution of the system formed by all these equations"). baseVal
// assigns semiring values to base-tuple tokens (e.g. T/D for trust,
// Example 7); mapFn interprets mapping applications (transparent internal
// mappings are skipped). It returns the value of every tuple node. The
// Kleene iteration checks ctx between rounds and returns ctx.Err() when
// it is done.
func Eval[T any](ctx context.Context, g *Graph, s semiring.Semiring[T], mapFn semiring.MapFn[T], baseVal func(Ref) T, opts EvalOptions) (map[Ref]T, error) {
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 10_000
	}
	idx := g.buildDerivIndex()

	val := make(map[Ref]T)
	get := func(r Ref) T {
		if v, ok := val[r]; ok {
			return v
		}
		return s.Zero()
	}

	// Base nodes are constants supplied by the caller.
	for _, r := range g.baseTupleRefs() {
		val[r] = baseVal(r)
	}

	// Derived nodes: Kleene iteration to the least fixpoint.
	for iter := 0; ; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if iter >= maxIter {
			return nil, fmt.Errorf("provenance: evaluation did not converge within %d iterations", maxIter)
		}
		changed := false
		for ref, derivs := range idx {
			if g.baseRels[ref.Rel] {
				continue
			}
			acc := s.Zero()
			for _, d := range derivs {
				term := s.One()
				for _, src := range d.Sources {
					term = s.Mul(term, get(src))
				}
				if !d.Mapping.Transparent {
					term = mapFn(d.Mapping.ID, term)
				}
				acc = s.Add(acc, term)
			}
			if !s.Eq(acc, get(ref)) {
				val[ref] = acc
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return val, nil
}

// baseTupleRefs lists every tuple in base relations.
func (g *Graph) baseTupleRefs() []Ref {
	var out []Ref
	for rel := range g.baseRels {
		tbl := g.db.Table(rel)
		if tbl == nil {
			continue
		}
		tbl.Each(func(row value.Tuple) bool {
			out = append(out, NewRef(rel, row))
			return true
		})
	}
	return out
}
