// Package provenance implements the paper's provenance model (§3.2) on
// top of the relational encoding of §4.1.2: provenance graphs whose
// mapping nodes are rows of per-tgd provenance tables, extraction of
// provenance expressions (sums of products under unary mapping functions),
// equation-system evaluation in arbitrary semirings, and the backward
// support computation that powers goal-directed derivability testing
// (§4.1.3).
package provenance

import (
	"fmt"

	"orchestra/internal/datalog"
	"orchestra/internal/tgd"
	"orchestra/internal/value"
)

// ArgSpec says how to compute one column of an atom instance from a
// provenance-table row.
type ArgSpec struct {
	// Col >= 0: copy provenance-row column Col. Col == -1: the constant.
	// Col == -2: Skolem application Fn over provenance columns FnArgCols.
	Col       int
	Const     value.Value
	Fn        string
	FnArgCols []int
}

// AtomTemplate instantiates one atom of a mapping from a provenance row.
type AtomTemplate struct {
	Rel  string
	Args []ArgSpec
}

// Instantiate computes the concrete tuple of the template for a given
// provenance row, interning Skolem terms in sk.
func (at *AtomTemplate) Instantiate(row value.Tuple, sk *value.SkolemTable) value.Tuple {
	out := make(value.Tuple, len(at.Args))
	for i, a := range at.Args {
		switch {
		case a.Col >= 0:
			out[i] = row[a.Col]
		case a.Col == -1:
			out[i] = a.Const
		default:
			args := make(value.Tuple, len(a.FnArgCols))
			for j, c := range a.FnArgCols {
				args[j] = row[c]
			}
			out[i] = sk.Apply(a.Fn, args)
		}
	}
	return out
}

// MappingInfo describes one mapping's provenance encoding: which table
// holds its derivations and how each row relates source tuples to target
// tuples. Transparent mappings are internal bookkeeping rules (the
// paper's (ℓR)/(tR)) that are spliced out of user-facing provenance
// expressions.
type MappingInfo struct {
	ID          string
	ProvRel     string
	Vars        []string
	Sources     []AtomTemplate
	Targets     []AtomTemplate
	Transparent bool
}

// FromEncoding converts a tgd's provenance encoding into graph metadata.
func FromEncoding(enc *tgd.ProvEncoding) (*MappingInfo, error) {
	mi := &MappingInfo{ID: enc.TGD.ID, ProvRel: enc.ProvRel, Vars: enc.ProvVars}
	colOf := make(map[string]int, len(enc.ProvVars))
	for i, v := range enc.ProvVars {
		colOf[v] = i
	}
	mkTemplate := func(a datalog.Atom) (AtomTemplate, error) {
		at := AtomTemplate{Rel: a.Pred, Args: make([]ArgSpec, len(a.Args))}
		for i, t := range a.Args {
			switch t.Kind {
			case datalog.TermVar:
				c, ok := colOf[t.Var]
				if !ok {
					return at, fmt.Errorf("provenance: %s: variable %q not in provenance columns", enc.TGD.ID, t.Var)
				}
				at.Args[i] = ArgSpec{Col: c}
			case datalog.TermConst:
				at.Args[i] = ArgSpec{Col: -1, Const: t.Const}
			case datalog.TermSkolem:
				spec := ArgSpec{Col: -2, Fn: t.Fn}
				for _, v := range t.FnArgs {
					c, ok := colOf[v]
					if !ok {
						return at, fmt.Errorf("provenance: %s: Skolem arg %q not in provenance columns", enc.TGD.ID, v)
					}
					spec.FnArgCols = append(spec.FnArgCols, c)
				}
				at.Args[i] = spec
			}
		}
		return at, nil
	}
	for _, a := range enc.TGD.LHS {
		at, err := mkTemplate(a)
		if err != nil {
			return nil, err
		}
		mi.Sources = append(mi.Sources, at)
	}
	// Targets come from the Skolemized derive rules so existential
	// positions carry Skolem specs.
	for _, d := range enc.Derive {
		at, err := mkTemplate(d.Head)
		if err != nil {
			return nil, err
		}
		mi.Targets = append(mi.Targets, at)
	}
	return mi, nil
}

// InternalMapping builds the metadata for a bookkeeping rule that copies
// src rows to dst rows one-for-one over `arity` columns (the paper's
// (ℓR) and (tR) rules). Its provenance table has one column per relation
// column.
func InternalMapping(id, provRel, src, dst string, arity int) *MappingInfo {
	args := make([]ArgSpec, arity)
	vars := make([]string, arity)
	for i := range args {
		args[i] = ArgSpec{Col: i}
		vars[i] = fmt.Sprintf("c%d", i)
	}
	return &MappingInfo{
		ID:          id,
		ProvRel:     provRel,
		Vars:        vars,
		Sources:     []AtomTemplate{{Rel: src, Args: args}},
		Targets:     []AtomTemplate{{Rel: dst, Args: args}},
		Transparent: true,
	}
}
