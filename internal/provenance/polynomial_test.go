package provenance

import (
	"context"
	"testing"

	"orchestra/internal/semiring"
)

// Evaluating the paper fixture in N[X] yields the provenance polynomial
// of each tuple — the universal object every other semiring evaluation
// factors through ([16]).
func TestPolynomialProvenance(t *testing.T) {
	f := buildPaper(t)
	ps := semiring.PolySemiring{}
	vals, err := Eval[semiring.Poly](context.Background(), f.g, ps, semiring.Identity[semiring.Poly](),
		func(r Ref) semiring.Poly { return semiring.Var(f.g.TokenName(r)) },
		EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Pv(B(3,2)) = m1(p3) + m4(p1·p2); with mapping applications read as
	// identity homomorphisms the polynomial is p3 + p1·p2.
	got := vals[f.b32]
	if got.String() != "p3 + p1·p2" {
		t.Fatalf("poly(B(3,2)) = %q", got)
	}

	// Universality: specializing the polynomial into the counting
	// semiring matches the direct counting evaluation.
	counts, err := Eval[int64](context.Background(), f.g, semiring.Count{}, semiring.Identity[int64](),
		func(Ref) int64 { return 1 }, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	special := semiring.EvalPoly[int64](got, semiring.Count{}, func(string) int64 { return 1 })
	if special != counts[f.b32] {
		t.Fatalf("specialized count %d != direct count %d", special, counts[f.b32])
	}

	// And into the boolean semiring: distrust p1,p2 → still true via p3.
	b := semiring.EvalPoly[bool](got, semiring.Bool{}, func(tok string) bool { return tok == "p3" })
	if !b {
		t.Fatal("specialized trust verdict wrong")
	}
}

// With cyclic mappings the exact provenance is an infinite power series;
// the degree-capped polynomial fixpoint must still converge.
func TestPolynomialProvenanceCyclicConverges(t *testing.T) {
	g, pRef := buildCycle(t)
	ps := semiring.PolySemiring{MaxDegree: 4, MaxCoeff: 64}
	vals, err := Eval[semiring.Poly](context.Background(), g, ps, semiring.Identity[semiring.Poly](),
		func(r Ref) semiring.Poly { return semiring.Var("s") },
		EvalOptions{MaxIterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if vals[pRef].IsZero() {
		t.Fatal("cyclic polynomial provenance empty")
	}
}
