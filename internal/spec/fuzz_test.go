package spec

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary text at the .cdss parser. The parser must
// never panic; and whenever it accepts an input, rendering the parsed
// file and re-parsing the result must succeed and render identically
// (render∘parse is a normal form — the property the orchestra CLI's
// spec round-tripping relies on).
func FuzzParse(f *testing.F) {
	f.Add(`# the paper's running example
peer PGUS {
  relation G(id int, can int, nam int)
}
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m3: B(i,n) -> exists c . U(n,c)

trust PBioSQL distrusts mapping m1 when n >= 3
trust PBioSQL distrusts peer PuBio
trust PBioSQL distrusts base B when n >= 3

edit PGUS + G(1,2,3)
edit PGUS - G(1,2,3)
`)
	f.Add("peer P { relation R(a int) }\nmapping m1: R(x) -> R(x)\n")
	f.Add("peer P { relation R(a string, b int) }\nedit P + R('x',1)\n")
	f.Add("peer P {}\n")
	f.Add("mapping m1: A(x) -> B(x)")
	f.Add("trust P distrusts peer Q\n")
	f.Add("peer P { relation R(a int) }\npeer P { relation R(a int) }\n")
	f.Fuzz(func(t *testing.T, input string) {
		file, err := ParseString(input)
		if err != nil {
			return
		}
		rendered := Render(file)
		again, err := ParseString(rendered)
		if err != nil {
			t.Fatalf("accepted input rendered to unparseable text:\ninput: %q\nrendered: %q\nerr: %v", input, rendered, err)
		}
		if re := Render(again); re != rendered {
			t.Fatalf("render is not a normal form:\nfirst:  %q\nsecond: %q", rendered, re)
		}
		_ = strings.TrimSpace(rendered)
	})
}
