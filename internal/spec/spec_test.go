package spec

import (
	"context"
	"strings"
	"testing"

	"orchestra/internal/core"
)

const paperSpecText = `
# The paper's running bioinformatics example (Examples 1-4).
peer PGUS {
  relation G(id int, can int, nam int)
}
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)

trust PBioSQL distrusts mapping m1 when n >= 3
trust PBioSQL distrusts mapping m4 when n != 2
trust PBioSQL distrusts peer PuBio
trust PuBio   distrusts base B when n >= 3

edit PGUS    + G(1,2,3)
edit PGUS    + G(3,5,2)
edit PBioSQL + B(3,5)
edit PuBio   + U(2,5)
edit PBioSQL - B(3,2)
`

func TestParsePaperSpec(t *testing.T) {
	f, err := ParseString(paperSpecText)
	if err != nil {
		t.Fatal(err)
	}
	u := f.Spec.Universe
	if len(u.Peers()) != 3 {
		t.Fatalf("peers: %v", u.Peers())
	}
	g := u.Relation("G")
	if g == nil || g.Arity() != 3 || g.Peer != "PGUS" {
		t.Fatalf("G = %+v", g)
	}
	if len(f.Spec.Mappings) != 4 || f.Spec.Mapping("m4") == nil {
		t.Fatalf("mappings: %v", f.Spec.Mappings)
	}
	pol := f.Spec.Policy("PBioSQL")
	if pol == nil || !pol.DistrustsPeer("PuBio") || len(pol.Conditions("m1")) != 1 {
		t.Fatalf("policy: %+v", pol)
	}
	if len(f.Edits) != 5 {
		t.Fatalf("edits: %v", f.Edits)
	}
	logs := f.EditLogs()
	if len(logs["PGUS"]) != 2 || len(logs["PBioSQL"]) != 2 || len(logs["PuBio"]) != 1 {
		t.Fatalf("logs: %v", logs)
	}
	if logs["PBioSQL"][1].Insert || logs["PBioSQL"][1].Rel != "B" {
		t.Fatalf("deletion edit: %v", logs["PBioSQL"][1])
	}
}

func TestParsedSpecRunsEndToEnd(t *testing.T) {
	f, err := ParseString(paperSpecText)
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewCDSS(f.Spec, core.Options{}, core.DeleteProvenance)
	for peer, log := range f.EditLogs() {
		if err := c.Publish(context.Background(), peer, log); err != nil {
			t.Fatal(err)
		}
	}
	v, err := c.View("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exchange(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	// Global view ignores PBioSQL's conditions? No: target-peer conditions
	// compose (§3.3), so B(1,3) (via m1, n=3) must be rejected even here.
	if v.Instance("B").Contains(core.MakeTuple(1, 3)) {
		t.Fatalf("target-peer condition not applied:\n%s", v.DB().Dump())
	}
	if !v.Instance("B").Contains(core.MakeTuple(3, 5)) {
		t.Fatal("local contribution missing")
	}
}

func TestMultiRelationPeerBlock(t *testing.T) {
	text := `
peer P {
  relation A(x int)
  relation B(y string, z any)
}
mapping m: A(x) -> B('k', x)
`
	f, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if f.Spec.Universe.Relation("B").Arity() != 2 {
		t.Fatal("B arity")
	}
}

func TestSingleLinePeer(t *testing.T) {
	f, err := ParseString(`peer P { relation A(x) relation B(y) }` + "\nmapping m: A(x) -> B(x)\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Spec.Universe.Relation("A") == nil || f.Spec.Universe.Relation("B") == nil {
		t.Fatal("relations missing")
	}
}

func TestAutoMappingIDs(t *testing.T) {
	f, err := ParseString(`
peer P { relation A(x) relation B(y) }
mapping A(x) -> B(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Spec.Mappings[0].ID != "m1" {
		t.Fatalf("auto id = %q", f.Spec.Mappings[0].ID)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, frag string
	}{
		{"unknown directive", "wibble\n", "unknown directive"},
		{"bad peer", "peer\n", "unknown directive"},
		{"peer no brace", "peer P\n", "missing '{'"},
		{"unterminated peer", "peer P {\n relation A(x)\n", "unterminated"},
		{"junk in peer", "peer P {\n shrubbery\n}\n", "unexpected"},
		{"bad relation", "peer P { relation A }\n", "bad relation"},
		{"empty columns", "peer P { relation A() }\n", "no columns"},
		{"bad column type", "peer P { relation A(x floop) }\n", "unknown type"},
		{"bad mapping", "peer P { relation A(x) }\nmapping A(x) B(x)\n", "->"},
		{"dup peer", "peer P { relation A(x) }\npeer P { relation B(x) }\n", "duplicate peer"},
		{"bad trust verb", "peer P { relation A(x) }\ntrust P hates mapping m\n", "bad trust"},
		{"peer distrust with cond", "peer P { relation A(x) }\ntrust P distrusts peer Q when x > 1\n", "cannot carry"},
		{"base distrust no cond", "peer P { relation A(x) }\ntrust P distrusts base A\n", "when"},
		{"bad edit sign", "peer P { relation A(x) }\nedit P ~ A(1)\n", "sign"},
		{"edit var tuple", "peer P { relation A(x) }\nedit P + A(y)\n", "ground"},
		{"edit unknown rel", "peer P { relation A(x) }\nedit P + Z(1)\n", "unknown relation"},
		{"edit cross peer", "peer P { relation A(x) }\npeer Q { relation B(x) }\nedit P + B(1)\n", "cannot edit"},
		{"edit wrong arity", "peer P { relation A(x) }\nedit P + A(1,2)\n", "arity"},
		{"mapping unknown rel", "peer P { relation A(x) }\nmapping m: A(x) -> Z(x)\n", "unknown relation"},
	}
	for _, c := range cases {
		_, err := ParseString(c.text)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestComments(t *testing.T) {
	f, err := ParseString(`
# full-line comment
peer P { relation A(x) }  # trailing comment
mapping m: A(x) -> A(x)   # identity-ish (full tgd, weakly acyclic)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Spec.Mappings) != 1 {
		t.Fatal("mapping lost")
	}
}

func TestTrustsMappingDirective(t *testing.T) {
	f, err := ParseString(`
peer P { relation A(x) }
peer Q { relation B(x) }
mapping m: A(x) -> B(x)
trust Q trusts mapping m when x < 5
`)
	if err != nil {
		t.Fatal(err)
	}
	pol := f.Spec.Policy("Q")
	if pol == nil || len(pol.Conditions("m")) != 1 {
		t.Fatal("condition missing")
	}
}
