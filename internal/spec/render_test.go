package spec

import (
	"strings"
	"testing"

	"orchestra/internal/core"
)

func TestRenderRoundTrip(t *testing.T) {
	f, err := ParseString(paperSpecText)
	if err != nil {
		t.Fatal(err)
	}
	text := Render(f)
	f2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nrendered:\n%s", err, text)
	}
	// Same peers, relations, mappings, edits.
	if len(f2.Spec.Universe.Peers()) != len(f.Spec.Universe.Peers()) {
		t.Fatal("peer count differs")
	}
	for i, m := range f.Spec.Mappings {
		if f2.Spec.Mappings[i].String() != m.String() {
			t.Fatalf("mapping %d: %q vs %q", i, f2.Spec.Mappings[i], m)
		}
	}
	if len(f2.Edits) != len(f.Edits) {
		t.Fatalf("edits: %d vs %d", len(f2.Edits), len(f.Edits))
	}
	for i := range f.Edits {
		if f2.Edits[i].Peer != f.Edits[i].Peer || f2.Edits[i].Edit.String() != f.Edits[i].Edit.String() {
			t.Fatalf("edit %d: %v vs %v", i, f2.Edits[i], f.Edits[i])
		}
	}
	// Policies survive: PBioSQL's conditions and peer distrust.
	pol := f2.Spec.Policy("PBioSQL")
	if pol == nil || !pol.DistrustsPeer("PuBio") || len(pol.Conditions("m1")) != 1 {
		t.Fatalf("policy lost in round trip:\n%s", text)
	}
}

func TestRenderQuotesStrings(t *testing.T) {
	f, err := ParseString(`
peer P { relation A(x string) }
mapping m: A(x) -> A(x)
edit P + A("hello world")
edit P + A("plain")
`)
	if err != nil {
		t.Fatal(err)
	}
	text := Render(f)
	if !strings.Contains(text, `"plain"`) {
		t.Fatalf("unquoted string constant would re-parse as a variable:\n%s", text)
	}
	f2, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Edits) != 2 {
		t.Fatal("edits lost")
	}
}

func TestRenderEdits(t *testing.T) {
	log := core.EditLog{
		core.Ins("A", core.MakeTuple(1, "x y")),
		core.Del("A", core.MakeTuple(2, "z")),
	}
	out := RenderEdits("P", log)
	if !strings.Contains(out, `edit P + A(1,"x y")`) || !strings.Contains(out, `edit P - A(2,"z")`) {
		t.Fatalf("RenderEdits:\n%s", out)
	}
}
