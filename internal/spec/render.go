package spec

import (
	"fmt"
	"strconv"
	"strings"

	"orchestra/internal/core"
	"orchestra/internal/value"
)

// Render writes a File back to the textual CDSS format, such that
// Parse(Render(f)) reproduces the same spec. Trust policies render
// through their original directives where possible.
func Render(f *File) string {
	var b strings.Builder
	u := f.Spec.Universe
	for _, p := range u.Peers() {
		fmt.Fprintf(&b, "peer %s {\n", p.Name)
		for _, r := range p.Schema.Relations() {
			fmt.Fprintf(&b, "  relation %s\n", r)
		}
		b.WriteString("}\n")
	}
	for _, m := range f.Spec.Mappings {
		fmt.Fprintf(&b, "mapping %s\n", m)
	}
	for _, p := range u.Peers() {
		pol := f.Spec.Policy(p.Name)
		if pol == nil {
			continue
		}
		for _, peer := range pol.DistrustedPeers() {
			fmt.Fprintf(&b, "trust %s distrusts peer %s\n", p.Name, peer)
		}
		for _, c := range pol.AllConditions() {
			scope := c.Mapping
			if scope == "" {
				scope = "''"
			}
			if c.Distrust {
				// Condition stored negated; re-render the original form.
				fmt.Fprintf(&b, "trust %s %s\n", p.Name, strings.Replace(c.String(), "distrusts ", "distrusts mapping ", 1))
			} else {
				fmt.Fprintf(&b, "trust %s trusts mapping %s when %s\n", p.Name, scope, c.Accept)
			}
		}
	}
	for _, pe := range f.Edits {
		b.WriteString(renderEdit(pe.Peer, pe.Edit))
	}
	return b.String()
}

// renderEdit renders one edit line with constants in parseable form
// (strings always quoted so they are not read back as variables).
func renderEdit(peer string, e core.Edit) string {
	sign := "-"
	if e.Insert {
		sign = "+"
	}
	parts := make([]string, len(e.Tuple))
	for i, v := range e.Tuple {
		if v.Kind() == value.KindString {
			parts[i] = strconv.Quote(v.AsString())
		} else {
			parts[i] = v.String()
		}
	}
	return fmt.Sprintf("edit %s %s %s(%s)\n", peer, sign, e.Rel, strings.Join(parts, ","))
}

// RenderEdits renders a bare edit log in spec syntax for one peer.
func RenderEdits(peer string, log core.EditLog) string {
	var b strings.Builder
	for _, e := range log {
		b.WriteString(renderEdit(peer, e))
	}
	return b.String()
}
