package spec

import (
	"fmt"
	"strconv"
	"strings"

	"orchestra/internal/core"
	"orchestra/internal/trust"
	"orchestra/internal/value"
)

// Render writes a File back to the textual CDSS format, such that
// Parse(Render(f)) reproduces the same spec. Trust policies render
// through their original directives where possible.
func Render(f *File) string {
	var b strings.Builder
	u := f.Spec.Universe
	for _, p := range u.Peers() {
		fmt.Fprintf(&b, "peer %s {\n", p.Name)
		for _, r := range p.Schema.Relations() {
			fmt.Fprintf(&b, "  relation %s\n", r)
		}
		b.WriteString("}\n")
	}
	for _, m := range f.Spec.Mappings {
		fmt.Fprintf(&b, "mapping %s\n", m)
	}
	for _, p := range u.Peers() {
		pol := f.Spec.Policy(p.Name)
		if pol == nil {
			continue
		}
		for _, tail := range PolicyDirectives(pol) {
			fmt.Fprintf(&b, "trust %s\n", tail)
		}
	}
	for _, pe := range f.Edits {
		b.WriteString(renderEdit(pe.Peer, pe.Edit))
	}
	return b.String()
}

// PolicyDirectives renders a trust policy as directive tails — the text
// after the "trust" keyword, one per declaration, in exactly the syntax
// Parse and ApplyTrustDirective read back. The wildcard any-mapping
// scope renders as ” (unquoted to "" at parse time). Both the spec
// renderer and the diff renderer (internal/evolve) share this, so the
// two formats cannot drift.
func PolicyDirectives(pol *trust.Policy) []string {
	owner := pol.Owner
	var out []string
	for _, q := range pol.DistrustedPeers() {
		out = append(out, fmt.Sprintf("%s distrusts peer %s", owner, q))
	}
	for _, c := range pol.AllConditions() {
		scope := c.Mapping
		if scope == "" {
			scope = "''"
		}
		if c.Distrust {
			// The condition is stored negated; Raw holds the original.
			d := fmt.Sprintf("%s distrusts mapping %s", owner, scope)
			if c.Raw != nil && !c.Raw.Trivial() {
				d += " when " + c.Raw.String()
			}
			out = append(out, d)
		} else {
			out = append(out, fmt.Sprintf("%s trusts mapping %s when %s", owner, scope, c.Accept))
		}
	}
	for _, bc := range pol.BaseConditions() {
		out = append(out, fmt.Sprintf("%s distrusts base %s when %s", owner, bc.Rel, bc.Distrust))
	}
	return out
}

// renderEdit renders one edit line with constants in parseable form
// (strings always quoted so they are not read back as variables).
func renderEdit(peer string, e core.Edit) string {
	sign := "-"
	if e.Insert {
		sign = "+"
	}
	parts := make([]string, len(e.Tuple))
	for i, v := range e.Tuple {
		if v.Kind() == value.KindString {
			parts[i] = strconv.Quote(v.AsString())
		} else {
			parts[i] = v.String()
		}
	}
	return fmt.Sprintf("edit %s %s %s(%s)\n", peer, sign, e.Rel, strings.Join(parts, ","))
}

// RenderEdits renders a bare edit log in spec syntax for one peer.
func RenderEdits(peer string, log core.EditLog) string {
	var b strings.Builder
	for _, e := range log {
		b.WriteString(renderEdit(peer, e))
	}
	return b.String()
}
