// Package spec parses the textual CDSS description format used by the
// orchestra CLI, examples, and tests. A spec file declares peers with
// their relations, the schema mappings, per-peer trust policies, and
// optionally edit logs:
//
//	# the paper's running example
//	peer PGUS {
//	  relation G(id int, can int, nam int)
//	}
//	peer PBioSQL { relation B(id int, nam int) }
//	peer PuBio   { relation U(nam int, can int) }
//
//	mapping m1: G(i,c,n) -> B(i,n)
//	mapping m3: B(i,n) -> exists c . U(n,c)
//
//	trust PBioSQL distrusts mapping m1 when n >= 3
//	trust PBioSQL distrusts peer PuBio
//	trust PBioSQL distrusts base B when n >= 3
//
//	edit PGUS + G(1,2,3)
//	edit PGUS - G(1,2,3)
package spec

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"orchestra/internal/core"
	"orchestra/internal/datalog"
	"orchestra/internal/schema"
	"orchestra/internal/tgd"
	"orchestra/internal/trust"
	"orchestra/internal/value"
)

// File is a parsed CDSS description.
type File struct {
	Spec *core.Spec
	// Edits are the edit-log entries in file order, tagged by publishing
	// peer.
	Edits []PeerEdit
}

// PeerEdit is one edit published by a peer.
type PeerEdit struct {
	Peer string
	Edit core.Edit
}

// EditLogs groups the file's edits into one log per peer, preserving
// order.
func (f *File) EditLogs() map[string]core.EditLog {
	out := make(map[string]core.EditLog)
	for _, pe := range f.Edits {
		out[pe.Peer] = append(out[pe.Peer], pe.Edit)
	}
	return out
}

// Parse reads a CDSS description.
func Parse(r io.Reader) (*File, error) {
	u := schema.NewUniverse()
	var mappings []*tgd.TGD
	policies := make(map[string]*trust.Policy)
	var edits []PeerEdit

	policyOf := func(peer string) *trust.Policy {
		p, ok := policies[peer]
		if !ok {
			p = trust.NewPolicy(peer)
			policies[peer] = p
		}
		return p
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var curPeer *schema.Peer

	flushPeer := func() error {
		if curPeer == nil {
			return nil
		}
		err := u.AddPeer(curPeer)
		curPeer = nil
		return err
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("spec: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}

		// Inside a peer block?
		if curPeer != nil {
			switch {
			case line == "}":
				if err := flushPeer(); err != nil {
					return nil, fail("%v", err)
				}
			case strings.HasPrefix(line, "relation "):
				if err := parseRelation(curPeer, strings.TrimPrefix(line, "relation ")); err != nil {
					return nil, fail("%v", err)
				}
			default:
				return nil, fail("unexpected %q inside peer block", line)
			}
			continue
		}

		switch {
		case strings.HasPrefix(line, "peer "):
			rest := strings.TrimSpace(strings.TrimPrefix(line, "peer "))
			name, body, hasBrace := strings.Cut(rest, "{")
			name = strings.TrimSpace(name)
			if name == "" {
				return nil, fail("peer with empty name")
			}
			curPeer = schema.NewPeer(name)
			if hasBrace {
				body = strings.TrimSpace(body)
				closed := false
				if strings.HasSuffix(body, "}") {
					body = strings.TrimSpace(strings.TrimSuffix(body, "}"))
					closed = true
				}
				for _, decl := range splitDecls(body) {
					if !strings.HasPrefix(decl, "relation ") {
						return nil, fail("expected relation declaration, got %q", decl)
					}
					if err := parseRelation(curPeer, strings.TrimPrefix(decl, "relation ")); err != nil {
						return nil, fail("%v", err)
					}
				}
				if closed {
					if err := flushPeer(); err != nil {
						return nil, fail("%v", err)
					}
				}
			} else {
				return nil, fail("peer declaration missing '{'")
			}

		case strings.HasPrefix(line, "mapping "):
			m, err := tgd.Parse(strings.TrimPrefix(line, "mapping "))
			if err != nil {
				return nil, fail("%v", err)
			}
			if m.ID == "" {
				m.ID = fmt.Sprintf("m%d", len(mappings)+1)
			}
			mappings = append(mappings, m)

		case strings.HasPrefix(line, "trust "):
			if err := parseTrust(strings.TrimPrefix(line, "trust "), policyOf); err != nil {
				return nil, fail("%v", err)
			}

		case strings.HasPrefix(line, "edit "):
			pe, err := parseEdit(strings.TrimPrefix(line, "edit "))
			if err != nil {
				return nil, fail("%v", err)
			}
			edits = append(edits, pe)

		default:
			return nil, fail("unknown directive %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if curPeer != nil {
		return nil, fmt.Errorf("spec: unterminated peer block for %q", curPeer.Name)
	}

	s, err := core.NewSpec(u, mappings, policies)
	if err != nil {
		return nil, err
	}
	// Validate edits against the spec.
	for _, pe := range edits {
		rel := u.Relation(pe.Edit.Rel)
		if rel == nil {
			return nil, fmt.Errorf("spec: edit references unknown relation %q", pe.Edit.Rel)
		}
		if rel.Peer != pe.Peer {
			return nil, fmt.Errorf("spec: peer %q cannot edit relation %q of peer %q", pe.Peer, pe.Edit.Rel, rel.Peer)
		}
		if rel.Arity() != len(pe.Edit.Tuple) {
			return nil, fmt.Errorf("spec: edit %s has wrong arity for %s", pe.Edit, rel.Name)
		}
	}
	return &File{Spec: s, Edits: edits}, nil
}

// ParseString parses a CDSS description from a string.
func ParseString(s string) (*File, error) { return Parse(strings.NewReader(s)) }

// ParsePeerDecl parses a single peer declaration — the text after the
// "peer" keyword, e.g. "PRef { relation C(nam int, cls int) }" — into a
// schema.Peer. Spec evolution (internal/evolve, System.AddPeer) uses it
// to accept new peers in the same syntax spec files declare them in.
func ParsePeerDecl(text string) (*schema.Peer, error) {
	text = strings.TrimSpace(text)
	name, body, hasBrace := strings.Cut(text, "{")
	name = strings.TrimSpace(name)
	if name == "" {
		return nil, fmt.Errorf("spec: peer with empty name")
	}
	if !hasBrace || !strings.HasSuffix(strings.TrimSpace(body), "}") {
		return nil, fmt.Errorf("spec: peer declaration %q must be of the form 'Name { relation R(...) ... }'", text)
	}
	body = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(body), "}"))
	p := schema.NewPeer(name)
	for _, decl := range splitDecls(body) {
		if !strings.HasPrefix(decl, "relation ") {
			return nil, fmt.Errorf("spec: expected relation declaration, got %q", decl)
		}
		if err := parseRelation(p, strings.TrimPrefix(decl, "relation ")); err != nil {
			return nil, err
		}
	}
	if p.Schema.Len() == 0 {
		return nil, fmt.Errorf("spec: peer %q declares no relations", name)
	}
	return p, nil
}

// ApplyTrustDirective applies one trust directive — the text after the
// "trust" keyword, e.g. "PBioSQL distrusts mapping m1 when n >= 3" — to
// the policy returned by policyOf for the directive's peer.
func ApplyTrustDirective(rest string, policyOf func(string) *trust.Policy) error {
	return parseTrust(rest, policyOf)
}

// splitDecls splits "relation A(..) relation B(..)" on the keyword.
func splitDecls(body string) []string {
	var out []string
	for _, part := range strings.Split(body, "relation ") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, "relation "+part)
		}
	}
	return out
}

// parseRelation parses "G(id int, can int, nam int)".
func parseRelation(p *schema.Peer, decl string) error {
	decl = strings.TrimSpace(decl)
	open := strings.IndexByte(decl, '(')
	if open < 0 || !strings.HasSuffix(decl, ")") {
		return fmt.Errorf("bad relation declaration %q", decl)
	}
	name := strings.TrimSpace(decl[:open])
	var cols []schema.Column
	inner := decl[open+1 : len(decl)-1]
	if strings.TrimSpace(inner) == "" {
		return fmt.Errorf("relation %q has no columns", name)
	}
	for _, c := range strings.Split(inner, ",") {
		fields := strings.Fields(strings.TrimSpace(c))
		if len(fields) == 0 || len(fields) > 2 {
			return fmt.Errorf("bad column %q in relation %q", c, name)
		}
		col := schema.Column{Name: fields[0]}
		if len(fields) == 2 {
			typ, err := schema.ParseType(fields[1])
			if err != nil {
				return err
			}
			col.Type = typ
		}
		cols = append(cols, col)
	}
	_, err := p.AddRelation(name, cols...)
	return err
}

// parseTrust parses trust directives:
//
//	<peer> distrusts mapping <id> [when <pred>]
//	<peer> trusts mapping <id> when <pred>
//	<peer> distrusts peer <name>
//	<peer> distrusts base <rel> when <pred>
func parseTrust(rest string, policyOf func(string) *trust.Policy) error {
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		return fmt.Errorf("bad trust directive %q", rest)
	}
	peer, verb, kind := fields[0], fields[1], fields[2]
	pol := policyOf(peer)
	tail := strings.Join(fields[3:], " ")
	name, pred := tail, ""
	if i := strings.Index(tail, " when "); i >= 0 {
		name, pred = strings.TrimSpace(tail[:i]), strings.TrimSpace(tail[i+6:])
	}
	if name == "''" {
		// The rendered form of the wildcard any-mapping scope.
		name = ""
	}
	switch {
	case verb == "distrusts" && kind == "peer":
		if pred != "" {
			return fmt.Errorf("peer distrust cannot carry a condition")
		}
		pol.DistrustPeer(name)
	case verb == "distrusts" && kind == "mapping":
		p, err := trust.ParsePred(pred)
		if err != nil {
			return err
		}
		pol.DistrustMapping(name, p)
	case verb == "trusts" && kind == "mapping":
		p, err := trust.ParsePred(pred)
		if err != nil {
			return err
		}
		pol.TrustMapping(name, p)
	case verb == "distrusts" && kind == "base":
		p, err := trust.ParsePred(pred)
		if err != nil {
			return err
		}
		if p.Trivial() {
			return fmt.Errorf("base distrust needs a 'when' condition (use 'distrusts peer' otherwise)")
		}
		pol.DistrustBase(name, p)
	default:
		return fmt.Errorf("bad trust directive %q", rest)
	}
	return nil
}

// parseEdit parses "PGUS + G(1,2,3)" / "PGUS - G(1,2,3)".
func parseEdit(rest string) (PeerEdit, error) {
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		return PeerEdit{}, fmt.Errorf("bad edit %q (want: <peer> +|- Rel(..))", rest)
	}
	peer, sign, atomText := fields[0], fields[1], strings.Join(fields[2:], " ")
	if sign != "+" && sign != "-" {
		return PeerEdit{}, fmt.Errorf("bad edit sign %q", sign)
	}
	atoms, err := tgd.ParseAtoms(atomText)
	if err != nil {
		return PeerEdit{}, err
	}
	if len(atoms) != 1 {
		return PeerEdit{}, fmt.Errorf("edit must reference exactly one tuple")
	}
	t := make(value.Tuple, len(atoms[0].Args))
	for i, term := range atoms[0].Args {
		if term.Kind != datalog.TermConst {
			return PeerEdit{}, fmt.Errorf("edit tuple must be ground, got variable %q", term.Var)
		}
		t[i] = term.Const
	}
	e := core.Edit{Insert: sign == "+", Rel: atoms[0].Pred, Tuple: t}
	return PeerEdit{Peer: peer, Edit: e}, nil
}
