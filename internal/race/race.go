//go:build race

// Package race reports whether the race detector is compiled in, so
// allocation-count assertions can skip themselves under -race (the
// detector changes allocation behavior).
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
