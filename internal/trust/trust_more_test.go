package trust

import (
	"testing"
	"testing/quick"

	"orchestra/internal/value"
)

func TestStringComparisons(t *testing.T) {
	p := MustParsePred("x >= 'm' and x != 'zz'")
	if !p.Eval(env("x", "n")) {
		t.Fatal("'n' >= 'm' failed")
	}
	if p.Eval(env("x", "a")) {
		t.Fatal("'a' >= 'm' passed")
	}
	if p.Eval(env("x", "zz")) {
		t.Fatal("!= clause ignored")
	}
}

func TestCrossKindComparison(t *testing.T) {
	// Ints order before strings under value.Compare; the predicate stays
	// total rather than erroring.
	p := MustParsePred("x < 'a'")
	if !p.Eval(env("x", 5)) {
		t.Fatal("int < string should hold under the total order")
	}
}

func TestVarToVarComparison(t *testing.T) {
	p := MustParsePred("x < y")
	if !p.Eval(env("x", 1, "y", 2)) || p.Eval(env("x", 2, "y", 1)) {
		t.Fatal("var-var comparison")
	}
	// One side unbound → clause false.
	if p.Eval(env("x", 1)) {
		t.Fatal("unbound rhs evaluated true")
	}
}

// Property: double negation restores the verdict for every binding.
func TestDoubleNegationProperty(t *testing.T) {
	base := MustParsePred("n >= 3 and n < 10")
	negOnce := negate(base)
	negTwice := negate(negOnce)
	f := func(n int64) bool {
		e := value.MapEnv{"n": value.Int(n % 20)}
		return base.Eval(e) == negTwice.Eval(e) && base.Eval(e) != negOnce.Eval(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegateTrivial(t *testing.T) {
	// ¬true is unsatisfiable: a whole-mapping distrust.
	never := negate(True)
	if never.Eval(env()) || never.Eval(env("x", 1)) {
		t.Fatal("negated True satisfied")
	}
	if never.Trivial() {
		t.Fatal("¬true reported trivial")
	}
}

func TestOperatorTokenization(t *testing.T) {
	// "<=" must not parse as "<" against "=3".
	p := MustParsePred("n <= 3")
	if !p.Eval(env("n", 3)) {
		t.Fatal("<= boundary")
	}
	// Spaces are optional around operators.
	p2 := MustParsePred("n<=3")
	if !p2.Eval(env("n", 3)) || p2.Eval(env("n", 4)) {
		t.Fatal("unspaced operator")
	}
}

func TestPolicyZeroValueTrustsAll(t *testing.T) {
	var p Policy
	if !p.AcceptsMapping("m", env("n", 99)) {
		t.Fatal("zero policy rejected a derivation")
	}
	if !p.TrustsBase("R", "anyone", env()) {
		t.Fatal("zero policy distrusted a base tuple")
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q", op, op.String())
		}
	}
}
