package trust

import (
	"strings"
	"testing"

	"orchestra/internal/value"
)

func env(pairs ...any) value.MapEnv {
	m := make(value.MapEnv)
	for i := 0; i < len(pairs); i += 2 {
		name := pairs[i].(string)
		switch v := pairs[i+1].(type) {
		case int:
			m[name] = value.Int(int64(v))
		case string:
			m[name] = value.String(v)
		case value.Value:
			m[name] = v
		}
	}
	return m
}

func TestParsePredComparisons(t *testing.T) {
	cases := []struct {
		src  string
		env  value.MapEnv
		want bool
	}{
		{"n >= 3", env("n", 3), true},
		{"n >= 3", env("n", 2), false},
		{"n != 2", env("n", 2), false},
		{"n <> 2", env("n", 3), true},
		{"n = 5", env("n", 5), true},
		{"n == 5", env("n", 5), true},
		{"n < 5", env("n", 4), true},
		{"n <= 4", env("n", 4), true},
		{"n > 4", env("n", 4), false},
		{"x = 'abc'", env("x", "abc"), true},
		{"x = 'abc'", env("x", "abd"), false},
		{"x = y", env("x", 1, "y", 1), true},
		{"3 < 4", env(), true},
		{"n >= 3 and n < 10", env("n", 7), true},
		{"n >= 3 and n < 10", env("n", 12), false},
		{"n >= 3 AND n < 10", env("n", 7), true},
		{"true", env(), true},
		{"", env(), true},
	}
	for _, c := range cases {
		p, err := ParsePred(c.src)
		if err != nil {
			t.Errorf("ParsePred(%q): %v", c.src, err)
			continue
		}
		if got := p.Eval(c.env); got != c.want {
			t.Errorf("%q over %v = %v, want %v", c.src, c.env, got, c.want)
		}
	}
}

func TestParsePredErrors(t *testing.T) {
	for _, s := range []string{"n", "n >", "= 3", "n ~ 3", "n >= 3 and"} {
		if _, err := ParsePred(s); err == nil {
			t.Errorf("ParsePred(%q) succeeded", s)
		}
	}
}

func TestPredUnboundVarIsFalse(t *testing.T) {
	p := MustParsePred("n >= 3")
	if p.Eval(env()) {
		t.Fatal("unbound var evaluated true")
	}
}

func TestPredVars(t *testing.T) {
	p := MustParsePred("n >= 3 and x = y and n < 9")
	vars := p.Vars()
	if len(vars) != 3 || vars[0] != "n" || vars[1] != "x" || vars[2] != "y" {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestPredTrivialAndString(t *testing.T) {
	if !True.Trivial() || True.String() != "true" {
		t.Fatal("True")
	}
	p := MustParsePred("n > 1")
	if p.Trivial() {
		t.Fatal("non-trivial pred reported trivial")
	}
	if p.String() != "n > 1" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPolicyMappingConditions(t *testing.T) {
	// Example 4: PBioSQL distrusts tuples from mapping m4 when n != 2.
	p := NewPolicy("PBioSQL")
	p.DistrustMapping("m4", MustParsePred("n != 2"))
	if p.AcceptsMapping("m4", env("n", 3)) {
		t.Fatal("n=3 accepted through m4")
	}
	if !p.AcceptsMapping("m4", env("n", 2)) {
		t.Fatal("n=2 rejected through m4")
	}
	// Other mappings unaffected.
	if !p.AcceptsMapping("m1", env("n", 3)) {
		t.Fatal("m1 affected by m4 condition")
	}
}

func TestPolicyTrustMappingAccept(t *testing.T) {
	p := NewPolicy("P")
	p.TrustMapping("m1", MustParsePred("n < 3"))
	if !p.AcceptsMapping("m1", env("n", 2)) || p.AcceptsMapping("m1", env("n", 3)) {
		t.Fatal("accept condition")
	}
}

func TestPolicyWildcardCondition(t *testing.T) {
	p := NewPolicy("P")
	p.TrustMapping("", MustParsePred("n < 10"))
	if !p.AcceptsMapping("mX", env("n", 5)) || p.AcceptsMapping("mY", env("n", 11)) {
		t.Fatal("wildcard condition")
	}
}

func TestPolicyDistrustWholeMapping(t *testing.T) {
	p := NewPolicy("P")
	p.DistrustMapping("m1", True)
	if p.AcceptsMapping("m1", env("n", 1)) {
		t.Fatal("fully distrusted mapping accepted")
	}
}

func TestPolicyConditionsCompose(t *testing.T) {
	// Two conditions on the same mapping AND together (§3.3).
	p := NewPolicy("P")
	p.TrustMapping("m", MustParsePred("n >= 3"))
	p.TrustMapping("m", MustParsePred("n < 5"))
	if !p.AcceptsMapping("m", env("n", 4)) {
		t.Fatal("n=4 should pass both")
	}
	if p.AcceptsMapping("m", env("n", 2)) || p.AcceptsMapping("m", env("n", 7)) {
		t.Fatal("conjunction violated")
	}
}

func TestPolicyBaseTrust(t *testing.T) {
	// Example 7: PBioSQL trusts PGUS and itself but not PuBio's (2,5).
	p := NewPolicy("PBioSQL")
	p.DistrustPeer("PuBio")
	if !p.TrustsBase("G", "PGUS", env("id", 3)) {
		t.Fatal("PGUS base distrusted")
	}
	if p.TrustsBase("U", "PuBio", env("nam", 2)) {
		t.Fatal("PuBio base trusted")
	}
	// Own contributions always trusted, even for a distrusted relation.
	p2 := NewPolicy("X")
	p2.DistrustPeer("X")
	if !p2.TrustsBase("R", "X", env()) {
		t.Fatal("own base distrusted")
	}
}

func TestPolicyBaseCondition(t *testing.T) {
	p := NewPolicy("P")
	p.DistrustBase("B", MustParsePred("n >= 3"))
	if p.TrustsBase("B", "Q", env("n", 5)) {
		t.Fatal("matching base tuple trusted")
	}
	if !p.TrustsBase("B", "Q", env("n", 1)) {
		t.Fatal("non-matching base tuple distrusted")
	}
	if !p.TrustsBase("C", "Q", env("n", 5)) {
		t.Fatal("condition leaked to other relation")
	}
}

func TestPolicyDescribe(t *testing.T) {
	p := NewPolicy("P")
	if !strings.Contains(p.Describe(), "trusts everything") {
		t.Fatalf("Describe = %q", p.Describe())
	}
	p.DistrustPeer("Q")
	p.DistrustMapping("m1", MustParsePred("n >= 3"))
	p.DistrustBase("B", MustParsePred("n = 1"))
	d := p.Describe()
	for _, frag := range []string{"distrusts peer Q", "m1", "n >= 3", "base B"} {
		if !strings.Contains(d, frag) {
			t.Fatalf("Describe missing %q:\n%s", frag, d)
		}
	}
}

func TestNegatedPredVars(t *testing.T) {
	p := NewPolicy("P")
	p.DistrustMapping("m", MustParsePred("n >= 3"))
	conds := p.Conditions("m")
	if len(conds) != 1 {
		t.Fatal("conditions")
	}
	vars := conds[0].Accept.Vars()
	if len(vars) != 1 || vars[0] != "n" {
		t.Fatalf("negated Vars = %v", vars)
	}
	if conds[0].Accept.Trivial() {
		t.Fatal("negated pred trivial")
	}
}

func TestConditionString(t *testing.T) {
	p := NewPolicy("P")
	p.DistrustMapping("m4", MustParsePred("n != 2"))
	s := p.Conditions("m4")[0].String()
	if !strings.Contains(s, "distrusts") || !strings.Contains(s, "m4") {
		t.Fatalf("String = %q", s)
	}
}
