package trust

import (
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/value"
)

// Condition is one trust condition held by a peer about a mapping: the
// peer accepts a derivation through the mapping iff Accept holds of the
// mapping's variable binding (distrust conditions are stored negated at
// parse time). The zero Mapping ("") applies to every mapping.
type Condition struct {
	// Mapping is the tgd id the condition applies to ("" = all).
	Mapping string
	// Accept must hold for the derivation to be trusted.
	Accept *Pred
	// Distrust records whether the user phrased this as a distrust
	// condition, for display.
	Distrust bool
	// Raw is the predicate as entered for distrust conditions (Accept
	// stores its negation); renderers re-emit the original form from it.
	Raw *Pred
	src string
}

// String renders the condition as entered.
func (c *Condition) String() string {
	if c.src != "" {
		return c.src
	}
	verb := "trusts"
	if c.Distrust {
		verb = "distrusts"
	}
	scope := "any mapping"
	if c.Mapping != "" {
		scope = "mapping " + c.Mapping
	}
	return fmt.Sprintf("%s %s when %s", verb, scope, c.Accept)
}

// BaseCondition marks base tuples of one relation as distrusted when the
// predicate holds of the tuple's column values (keyed by column name).
type BaseCondition struct {
	Rel      string
	Distrust *Pred
}

// Policy is one peer's trust policy: which source peers it distrusts
// outright, which base tuples it distrusts, and its per-mapping
// conditions. The zero Policy trusts everything — matching the paper's
// default of trivially-true Θ.
type Policy struct {
	// Owner is the peer holding this policy.
	Owner string

	distrustedPeers map[string]bool
	conds           []*Condition
	baseConds       []*BaseCondition
}

// NewPolicy returns an all-trusting policy for a peer.
func NewPolicy(owner string) *Policy {
	return &Policy{Owner: owner, distrustedPeers: make(map[string]bool)}
}

// DistrustPeer marks every base tuple contributed by peer as distrusted.
func (p *Policy) DistrustPeer(peer string) { p.distrustedPeers[peer] = true }

// DistrustsPeer reports whether peer's contributions are distrusted.
func (p *Policy) DistrustsPeer(peer string) bool { return p.distrustedPeers[peer] }

// DistrustedPeers returns the sorted distrusted peers.
func (p *Policy) DistrustedPeers() []string {
	out := make([]string, 0, len(p.distrustedPeers))
	for q := range p.distrustedPeers {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// AddCondition attaches a mapping condition.
func (p *Policy) AddCondition(c *Condition) { p.conds = append(p.conds, c) }

// TrustMapping adds an accept-condition: derivations via mapping are
// trusted only when pred holds.
func (p *Policy) TrustMapping(mapping string, pred *Pred) {
	p.AddCondition(&Condition{Mapping: mapping, Accept: pred})
}

// DistrustMapping adds a distrust-condition: derivations via mapping are
// rejected when pred holds (i.e. accepted iff ¬pred). With the trivial
// predicate the whole mapping is distrusted.
func (p *Policy) DistrustMapping(mapping string, pred *Pred) {
	p.AddCondition(&Condition{Mapping: mapping, Accept: negate(pred), Distrust: true, Raw: pred,
		src: fmt.Sprintf("distrusts %s when %s", mapping, pred)})
}

// negate wraps a predicate into its complement. Negation of a conjunction
// of comparisons is evaluated functionally (we keep the clause list and
// flip the verdict) — adequate because Pred evaluation is total.
func negate(pred *Pred) *Pred {
	if pred.Trivial() {
		// ¬true = false: a predicate with an unsatisfiable clause.
		return &Pred{
			clauses: []comparison{{
				lhs: operand{c: value.Int(0)},
				rhs: operand{c: value.Int(1)},
				op:  OpEq,
			}},
			src: "false",
		}
	}
	neg := &Pred{src: "not(" + pred.src + ")"}
	neg.clauses = nil
	neg.negated = pred
	return neg
}

// DistrustBase marks base tuples of rel matching pred as distrusted.
func (p *Policy) DistrustBase(rel string, pred *Pred) {
	p.baseConds = append(p.baseConds, &BaseCondition{Rel: rel, Distrust: pred})
}

// Conditions returns the mapping conditions applying to mapping id (its
// own plus the wildcard ones).
func (p *Policy) Conditions(mapping string) []*Condition {
	var out []*Condition
	for _, c := range p.conds {
		if c.Mapping == "" || c.Mapping == mapping {
			out = append(out, c)
		}
	}
	return out
}

// AllConditions returns every mapping condition of the policy.
func (p *Policy) AllConditions() []*Condition { return p.conds }

// BaseConditions returns the policy's base-tuple distrust conditions in
// declaration order.
func (p *Policy) BaseConditions() []*BaseCondition { return p.baseConds }

// Clone returns an independent copy of the policy (conditions are
// immutable and shared). Spec evolution edits a clone so the previous
// Spec — and any System still running over it — stays untouched.
func (p *Policy) Clone() *Policy {
	c := NewPolicy(p.Owner)
	for q := range p.distrustedPeers {
		c.distrustedPeers[q] = true
	}
	c.conds = append([]*Condition(nil), p.conds...)
	c.baseConds = append([]*BaseCondition(nil), p.baseConds...)
	return c
}

// AcceptsMapping reports whether a derivation through mapping with the
// given variable binding passes all of this policy's conditions (§3.3:
// conditions of one peer AND together).
func (p *Policy) AcceptsMapping(mapping string, env value.Env) bool {
	for _, c := range p.Conditions(mapping) {
		if !c.Accept.Eval(env) {
			return false
		}
	}
	return true
}

// TrustsBase reports whether the policy trusts a base tuple of rel,
// contributed by fromPeer, with column values cols (column name →
// value). A peer always trusts its own contributions.
func (p *Policy) TrustsBase(rel, fromPeer string, cols map[string]value.Value) bool {
	if fromPeer == p.Owner {
		return true
	}
	if p.distrustedPeers[fromPeer] {
		return false
	}
	for _, bc := range p.baseConds {
		if bc.Rel == rel && bc.Distrust.Eval(value.MapEnv(cols)) {
			return false
		}
	}
	return true
}

// Describe renders the policy for the CLI.
func (p *Policy) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy of %s:\n", p.Owner)
	for _, q := range p.DistrustedPeers() {
		fmt.Fprintf(&b, "  distrusts peer %s\n", q)
	}
	for _, c := range p.conds {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	for _, bc := range p.baseConds {
		fmt.Fprintf(&b, "  distrusts base %s when %s\n", bc.Rel, bc.Distrust)
	}
	if len(p.distrustedPeers)+len(p.conds)+len(p.baseConds) == 0 {
		b.WriteString("  trusts everything\n")
	}
	return b.String()
}
