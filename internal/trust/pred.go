// Package trust implements the paper's trust policies (§2.2, §3.3):
// per-mapping trust conditions Θ over the mapping's variables, token-level
// trust assignments for base tuples, and the composition of conditions
// along mapping paths. Conditions compile to datalog filters so untrusted
// derivations are rejected inline during update exchange (§4.2), and they
// can also be evaluated post-hoc over provenance expressions in the
// boolean semiring (Example 7).
package trust

import (
	"fmt"
	"strings"

	"orchestra/internal/tgd"
	"orchestra/internal/value"
)

// Op is a comparison operator.
type Op uint8

const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var opNames = map[Op]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
}

func (o Op) String() string { return opNames[o] }

// operand is a variable reference or a constant.
type operand struct {
	isVar bool
	v     string
	c     value.Value
}

func (o operand) String() string {
	if o.isVar {
		return o.v
	}
	return o.c.String()
}

func (o operand) eval(env value.Env) (value.Value, bool) {
	if !o.isVar {
		return o.c, true
	}
	return env.Lookup(o.v)
}

// comparison is one "lhs op rhs" clause.
type comparison struct {
	lhs, rhs operand
	op       Op
}

func (c comparison) eval(env value.Env) bool {
	l, ok := c.lhs.eval(env)
	if !ok {
		return false
	}
	r, ok := c.rhs.eval(env)
	if !ok {
		return false
	}
	cmp := value.Compare(l, r)
	switch c.op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// Pred is a conjunction of comparisons over named variables — the
// data-selection part of a trust condition ("n >= 3", "n != 2 and i < 10").
// A Pred may also be the negation of another Pred (used to turn the
// paper's "distrusts … if φ" conditions into accept-conditions ¬φ).
type Pred struct {
	clauses []comparison
	negated *Pred
	src     string
}

// True is the always-true predicate.
var True = &Pred{src: "true"}

// ParsePred parses "cmp (and cmp)*" where cmp is "term op term", term is
// a variable name, integer, or quoted string, and op ∈ {=, ==, !=, <>, <,
// <=, >, >=}. The empty string and "true" parse to the trivial predicate.
func ParsePred(input string) (*Pred, error) {
	src := strings.TrimSpace(input)
	if src == "" || strings.EqualFold(src, "true") {
		return True, nil
	}
	p := &Pred{src: src}
	for _, clause := range splitAnd(src) {
		cmp, err := parseComparison(clause)
		if err != nil {
			return nil, err
		}
		p.clauses = append(p.clauses, cmp)
	}
	return p, nil
}

// MustParsePred is ParsePred that panics, for static tables and tests.
func MustParsePred(input string) *Pred {
	p, err := ParsePred(input)
	if err != nil {
		panic(err)
	}
	return p
}

func splitAnd(s string) []string {
	var out []string
	rest := s
	for {
		lower := strings.ToLower(rest)
		i := strings.Index(lower, " and ")
		if i < 0 {
			out = append(out, strings.TrimSpace(rest))
			return out
		}
		out = append(out, strings.TrimSpace(rest[:i]))
		rest = rest[i+5:]
	}
}

func parseComparison(s string) (comparison, error) {
	// Longest operators first so "<=" is not parsed as "<".
	for _, cand := range []struct {
		text string
		op   Op
	}{
		{"<=", OpLe}, {">=", OpGe}, {"!=", OpNe}, {"<>", OpNe}, {"==", OpEq},
		{"=", OpEq}, {"<", OpLt}, {">", OpGt},
	} {
		i := strings.Index(s, cand.text)
		if i < 0 {
			continue
		}
		lhs, err := parseOperand(strings.TrimSpace(s[:i]))
		if err != nil {
			return comparison{}, fmt.Errorf("trust: %w in %q", err, s)
		}
		rhs, err := parseOperand(strings.TrimSpace(s[i+len(cand.text):]))
		if err != nil {
			return comparison{}, fmt.Errorf("trust: %w in %q", err, s)
		}
		return comparison{lhs: lhs, rhs: rhs, op: cand.op}, nil
	}
	return comparison{}, fmt.Errorf("trust: no comparison operator in %q", s)
}

func parseOperand(tok string) (operand, error) {
	if tok == "" {
		return operand{}, fmt.Errorf("empty operand")
	}
	t, err := tgd.ParseTerm(tok)
	if err != nil {
		return operand{}, err
	}
	if t.Var != "" {
		return operand{isVar: true, v: t.Var}, nil
	}
	return operand{c: t.Const}, nil
}

// Eval evaluates the predicate under a variable binding. Unbound variables
// make their clause false (and hence a negated clause true).
func (p *Pred) Eval(env value.Env) bool {
	if p.negated != nil {
		return !p.negated.Eval(env)
	}
	for _, c := range p.clauses {
		if !c.eval(env) {
			return false
		}
	}
	return true
}

// Trivial reports whether the predicate is the constant true.
func (p *Pred) Trivial() bool { return p.negated == nil && len(p.clauses) == 0 }

// Selectivity estimates the fraction of bindings the predicate passes,
// for the cost-based query planner. The numbers are the classic textbook
// defaults — equality is selective, inequality barely filters, ranges
// land in between — good enough to rank join orders, not to predict
// cardinalities.
func (p *Pred) Selectivity() float64 {
	if p.negated != nil {
		s := 1 - p.negated.Selectivity()
		if s < 0.05 {
			s = 0.05
		}
		return s
	}
	sel := 1.0
	for _, c := range p.clauses {
		switch c.op {
		case OpEq:
			sel *= 0.1
		case OpNe:
			sel *= 0.9
		default: // ranges
			sel *= 1.0 / 3
		}
	}
	return sel
}

// Vars returns the variable names the predicate reads.
func (p *Pred) Vars() []string {
	if p.negated != nil {
		return p.negated.Vars()
	}
	seen := make(map[string]bool)
	var out []string
	add := func(o operand) {
		if o.isVar && !seen[o.v] {
			seen[o.v] = true
			out = append(out, o.v)
		}
	}
	for _, c := range p.clauses {
		add(c.lhs)
		add(c.rhs)
	}
	return out
}

// String returns the source form of the predicate.
func (p *Pred) String() string { return p.src }
