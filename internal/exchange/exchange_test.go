package exchange

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"orchestra/internal/obs"
)

// TestRunAll checks that every task runs exactly once and its result
// lands under its owner, at several pool widths.
func TestRunAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			const n = 23
			var calls atomic.Int64
			tasks := make([]Task[int], n)
			for i := range tasks {
				val := i + 1
				tasks[i] = Task[int]{Owner: fmt.Sprintf("p%d", i), Run: func(ctx context.Context) (int, error) {
					calls.Add(1)
					return val, nil
				}}
			}
			out, err := NewScheduler[int](workers).Run(context.Background(), tasks)
			if err != nil {
				t.Fatal(err)
			}
			if got := calls.Load(); got != n {
				t.Fatalf("ran %d tasks, want %d", got, n)
			}
			if len(out) != n {
				t.Fatalf("got %d results, want %d", len(out), n)
			}
			for i := range tasks {
				if got := out[fmt.Sprintf("p%d", i)]; got != i+1 {
					t.Fatalf("task %d result = %d", i, got)
				}
			}
		})
	}
}

// TestRunBoundsConcurrency checks that no more than Workers() tasks are
// ever in flight simultaneously.
func TestRunBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 40
	var inFlight, peak atomic.Int64
	tasks := make([]Task[int], n)
	for i := range tasks {
		tasks[i] = Task[int]{Owner: fmt.Sprintf("p%d", i), Run: func(ctx context.Context) (int, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			defer inFlight.Add(-1)
			return 0, nil
		}}
	}
	if _, err := NewScheduler[int](workers).Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds pool bound %d", p, workers)
	}
}

// TestRunError checks failure semantics: the failing task's owner is
// named in the error, started tasks are awaited and reported, and a
// collateral ctx.Canceled from another task does not mask the root
// cause.
func TestRunError(t *testing.T) {
	boom := errors.New("boom")
	var mu sync.Mutex
	ran := make(map[string]bool)
	mark := func(owner string) {
		mu.Lock()
		ran[owner] = true
		mu.Unlock()
	}
	block := make(chan struct{})
	tasks := []Task[int]{
		// p0 waits until cancelled — the collateral failure at a lower
		// index than the root cause.
		{Owner: "p0", Run: func(ctx context.Context) (int, error) {
			mark("p0")
			close(block)
			<-ctx.Done()
			return 0, ctx.Err()
		}},
		{Owner: "p1", Run: func(ctx context.Context) (int, error) {
			mark("p1")
			<-block // guarantee p0 started first
			return 0, boom
		}},
	}
	out, err := NewScheduler[int](2).Run(context.Background(), tasks)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the root cause", err)
	}
	if !strings.Contains(err.Error(), `"p1"`) {
		t.Fatalf("error %v does not name the failing view", err)
	}
	if !ran["p0"] || !ran["p1"] {
		t.Fatalf("tasks ran = %v, want both", ran)
	}
	// Both tasks started, so both report results.
	if len(out) != 2 {
		t.Fatalf("got %d results, want 2", len(out))
	}
}

// TestRunSkipsAfterFailure checks that with one worker the classic
// serial semantics hold: tasks after the failure never start.
func TestRunSkipsAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	tasks := []Task[int]{
		{Owner: "a", Run: func(ctx context.Context) (int, error) {
			calls.Add(1)
			return 1, nil
		}},
		{Owner: "b", Run: func(ctx context.Context) (int, error) {
			calls.Add(1)
			return 0, boom
		}},
		{Owner: "c", Run: func(ctx context.Context) (int, error) {
			calls.Add(1)
			return 0, nil
		}},
	}
	out, err := NewScheduler[int](1).Run(context.Background(), tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("ran %d tasks, want 2 (c skipped)", calls.Load())
	}
	if _, ok := out["c"]; ok {
		t.Fatal("skipped task reported a result")
	}
	if out["a"] != 1 {
		t.Fatalf("completed task result lost: %d", out["a"])
	}
}

// TestRunEmpty checks the trivial cases.
func TestRunEmpty(t *testing.T) {
	out, err := NewScheduler[int](0).Run(context.Background(), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
	if w := NewScheduler[int](0).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
}

// TestRunFailureMatrix pins down the failure semantics the daemon's
// ExchangeAll relies on, across the error position and the pool width:
// the root cause is always wrapped and its owner named, every task that
// STARTED is awaited and reports a result, and with one worker the
// serial contract holds exactly — tasks after the failing index never
// start.
func TestRunFailureMatrix(t *testing.T) {
	const n = 5
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		for failAt := 0; failAt < n; failAt++ {
			t.Run(fmt.Sprintf("workers%d_failAt%d", workers, failAt), func(t *testing.T) {
				var started atomic.Int64
				var startedSet [n]atomic.Bool
				tasks := make([]Task[int], n)
				for i := range tasks {
					i := i
					tasks[i] = Task[int]{Owner: fmt.Sprintf("p%d", i), Run: func(ctx context.Context) (int, error) {
						started.Add(1)
						startedSet[i].Store(true)
						if i == failAt {
							return 0, boom
						}
						return i + 1, nil
					}}
				}
				out, err := NewScheduler[int](workers).Run(context.Background(), tasks)
				if !errors.Is(err, boom) {
					t.Fatalf("err = %v, want wrapped boom", err)
				}
				if !strings.Contains(err.Error(), fmt.Sprintf("%q", fmt.Sprintf("p%d", failAt))) {
					t.Fatalf("error %v does not name the failing owner p%d", err, failAt)
				}
				if workers == 1 {
					// Serial contract: exactly the prefix through the failure
					// ran, and exactly its members report results.
					if got := started.Load(); got != int64(failAt+1) {
						t.Fatalf("started %d tasks, want %d (prefix through failure)", got, failAt+1)
					}
					if len(out) != failAt+1 {
						t.Fatalf("got %d results, want %d", len(out), failAt+1)
					}
				}
				// Pool width aside: every started task reports a result (the
				// failing one its zero value), no unstarted task appears.
				for i := 0; i < n; i++ {
					owner := fmt.Sprintf("p%d", i)
					got, ok := out[owner]
					switch {
					case ok != startedSet[i].Load():
						t.Fatalf("task %s: started=%v but in results=%v", owner, startedSet[i].Load(), ok)
					case ok && i != failAt && got != i+1:
						t.Fatalf("task %s result = %d, want %d", owner, got, i+1)
					case ok && i == failAt && got != 0:
						t.Fatalf("failing task %s result = %d, want zero value", owner, got)
					}
				}
			})
		}
	}
}

// TestRunMetricsAccounting checks the scheduler's instrument discipline
// around a mid-run failure: the queue always drains to zero (skipped
// tasks included), busy workers return to zero, every started task is
// observed, and exactly the genuine failures are counted.
func TestRunMetricsAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	m := Metrics{
		QueueDepth:   reg.Gauge("queue", "q"),
		BusyWorkers:  reg.Gauge("busy", "b"),
		TaskSeconds:  reg.Histogram("dur", "d", obs.DurationBuckets()),
		TaskFailures: reg.Counter("fail", "f"),
	}
	boom := errors.New("boom")
	tasks := []Task[int]{
		{Owner: "a", Run: func(ctx context.Context) (int, error) { return 1, nil }},
		{Owner: "b", Run: func(ctx context.Context) (int, error) { return 0, boom }},
		{Owner: "c", Run: func(ctx context.Context) (int, error) { return 3, nil }},
	}
	s := NewScheduler[int](1)
	s.SetMetrics(m)
	if _, err := s.Run(context.Background(), tasks); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if v := m.QueueDepth.Value(); v != 0 {
		t.Fatalf("queue depth after Run = %v, want 0 (skipped tasks must drain)", v)
	}
	if v := m.BusyWorkers.Value(); v != 0 {
		t.Fatalf("busy workers after Run = %v, want 0", v)
	}
	if c := m.TaskSeconds.Count(); c != 2 {
		t.Fatalf("observed %d task durations, want 2 (c never started)", c)
	}
	if f := m.TaskFailures.Value(); f != 1 {
		t.Fatalf("failures = %d, want 1", f)
	}
}
