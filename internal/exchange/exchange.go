// Package exchange schedules confederation-parallel update exchange.
//
// Peer views are data-independent consumers of the shared publication
// bus (§2's operational model: every peer independently imports the
// others' published updates): each view owns its database, its
// labeled-null interner, and its bus cursor, and the bus itself is
// safe for concurrent readers. A Scheduler therefore runs the per-view
// maintenance passes concurrently over a bounded worker pool; inside
// each pass the pending run of publications is coalesced into one net
// apply (core.ExchangeCoalesced) so one semi-naive fixpoint and one
// deletion cascade replace N sequential ones.
//
// The scheduler itself is deliberately dumb — tasks are opaque
// closures and the result type is generic, so callers (the orchestra
// System, core's CDSS, the benchmarks) keep their own locking
// discipline and the package depends on nothing above it. The pool
// only bounds concurrency and makes error reporting deterministic.
package exchange

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/obs"
)

// Task is one view's exchange pass, identified by its owner. Run is
// invoked at most once, possibly on another goroutine; everything it
// touches must either be owned by the task's view or be safe for
// concurrent use.
type Task[R any] struct {
	Owner string
	Run   func(ctx context.Context) (R, error)
}

// Metrics holds the scheduler's instruments. The zero value (all nil)
// disables everything: obs instruments are nil-safe, so emission in the
// worker loop costs nothing when unset.
type Metrics struct {
	// QueueDepth tracks tasks accepted by Run but not yet started.
	QueueDepth *obs.Gauge
	// BusyWorkers tracks tasks currently executing.
	BusyWorkers *obs.Gauge
	// TaskSeconds observes each task's wall clock, in seconds.
	TaskSeconds *obs.Histogram
	// TaskFailures counts tasks that returned an error.
	TaskFailures *obs.Counter
}

// Scheduler runs exchange tasks over a bounded worker pool.
type Scheduler[R any] struct {
	workers int
	m       Metrics
}

// NewScheduler returns a scheduler running at most workers tasks
// concurrently; workers <= 0 selects GOMAXPROCS.
func NewScheduler[R any](workers int) *Scheduler[R] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler[R]{workers: workers}
}

// Workers reports the pool bound.
func (s *Scheduler[R]) Workers() int { return s.workers }

// SetMetrics installs scheduler instruments. Call it before the first
// Run; it is not synchronized against concurrent Runs.
func (s *Scheduler[R]) SetMetrics(m Metrics) { s.m = m }

// runTask executes one task with queue/busy/latency/failure accounting.
func (s *Scheduler[R]) runTask(ctx context.Context, t Task[R]) (R, error) {
	s.m.QueueDepth.Add(-1)
	s.m.BusyWorkers.Add(1)
	start := time.Now()
	r, err := t.Run(ctx)
	s.m.TaskSeconds.Observe(time.Since(start).Seconds())
	s.m.BusyWorkers.Add(-1)
	if err != nil {
		s.m.TaskFailures.Inc()
	}
	return r, err
}

// Run executes every task, at most Workers() concurrently, and returns
// the per-owner results. Tasks are dispatched in slice order, so a
// one-worker scheduler reproduces the classic serial ExchangeAll
// exactly.
//
// On failure the semantics mirror the serial loop as closely as a
// concurrent run can: tasks already started are awaited (their views
// must not be abandoned mid-pass), tasks not yet started are skipped
// and omitted from the result map, and the error reported is the
// lowest-indexed genuine (non-collateral) failure. With a single
// genuinely failing task this attribution is deterministic regardless
// of interleaving; when several fail, cancellation may convert some
// into collateral ctx.Canceled results, so which genuine failure is
// reported can vary. The context passed to still-running tasks is
// cancelled on the first failure so their fixpoints can bail early.
func (s *Scheduler[R]) Run(ctx context.Context, tasks []Task[R]) (map[string]R, error) {
	out := make(map[string]R, len(tasks))
	if len(tasks) == 0 {
		return out, nil
	}
	s.m.QueueDepth.Add(float64(len(tasks)))
	var started atomic.Int64
	// Tasks never started (serial early return, post-failure drain) still
	// leave the queue when Run returns.
	defer func() { s.m.QueueDepth.Add(float64(started.Load()) - float64(len(tasks))) }()
	if s.workers == 1 || len(tasks) == 1 {
		for _, t := range tasks {
			started.Add(1)
			r, err := s.runTask(ctx, t)
			out[t.Owner] = r
			if err != nil {
				return out, fmt.Errorf("exchange: view %q: %w", t.Owner, err)
			}
		}
		return out, nil
	}

	type result struct {
		val R
		err error
		ran bool
	}
	results := make([]result, len(tasks))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < min(s.workers, len(tasks)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				if failed.Load() {
					continue // drain the queue without starting new passes
				}
				started.Add(1)
				r, err := s.runTask(runCtx, tasks[i])
				results[i] = result{val: r, err: err, ran: true}
				if err != nil {
					failed.Store(true)
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	// Report the lowest-indexed genuine failure. Tasks in flight when the
	// first failure cancelled runCtx may themselves return ctx.Canceled at
	// a lower index; those are collateral, not the root cause, so they are
	// preferred only when nothing else failed (i.e. the caller's own ctx
	// was cancelled).
	var firstErr, firstReal error
	for i, r := range results {
		if !r.ran {
			continue
		}
		out[tasks[i].Owner] = r.val
		if r.err == nil {
			continue
		}
		wrapped := fmt.Errorf("exchange: view %q: %w", tasks[i].Owner, r.err)
		if firstErr == nil {
			firstErr = wrapped
		}
		if firstReal == nil && !errors.Is(r.err, context.Canceled) {
			firstReal = wrapped
		}
	}
	if firstReal != nil {
		return out, firstReal
	}
	return out, firstErr
}
