package exchange

// Waker coalesces bursts of wake signals into single wakeups: any
// number of Wake calls between two receives on C collapse into one
// pending signal. It is the bridge between push delivery (a bus
// subscription, a publish hook) and an exchange loop — the producer
// never blocks, and the consumer runs one pass per burst instead of
// one per publication.
//
// The zero Waker is not ready; use NewWaker. All methods are safe for
// concurrent use.
type Waker struct {
	ch chan struct{}
}

// NewWaker returns a Waker with one pending-signal slot.
func NewWaker() *Waker { return &Waker{ch: make(chan struct{}, 1)} }

// Wake records a pending signal. It never blocks: if a signal is
// already pending the call is a no-op (the burst coalesces).
func (w *Waker) Wake() {
	select {
	case w.ch <- struct{}{}:
	default:
	}
}

// C returns the wait channel: one receive consumes all Wake calls
// since the previous receive.
func (w *Waker) C() <-chan struct{} { return w.ch }
