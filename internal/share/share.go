// Package share implements the CDSS communications layer (§2, §5): a
// small HTTP service through which peers make their edit logs "globally
// available", and a client with which other nodes fetch the publications
// they have not yet imported. Together with internal/logstore this plays
// the role of Orchestra's central/distributed publication storage [34].
//
// Wire protocol (JSON):
//
//	POST /publish   {"peer": "...", "edits": [{"op":"+","rel":"R","key":"base64"}]}
//	GET  /since?cursor=N  → {"cursor": M, "publications": [...]}
//
// Tuples travel as base64 of their canonical encoding, so values of any
// kind round-trip exactly.
//
// Lineage: a publish carries its trace id in a W3C-shaped `traceparent`
// request header (minted by the server when absent, echoed back in the
// response body as "trace"), and /since returns each publication's
// trace id in its "trace" field — so one id follows a publication from
// the publishing process through the bus to every fetching process.
package share

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/obs"
	"orchestra/internal/value"
)

// Metrics holds the publication service's instruments. The zero value
// disables all of them (obs instruments are nil-safe).
type Metrics struct {
	// PublishAccepted counts publications admitted to the sequence.
	PublishAccepted *obs.Counter
	// PublishRejected counts publications refused by validation (422).
	PublishRejected *obs.Counter
	// PublishFailed counts publications that passed validation but could
	// not be persisted (500).
	PublishFailed *obs.Counter
}

// wireEdit is one edit on the wire.
type wireEdit struct {
	Op  string `json:"op"` // "+" or "-"
	Rel string `json:"rel"`
	Key string `json:"key"` // base64 canonical tuple
}

// wirePublication is one published edit log on the wire. Trace is the
// publication's lineage trace id; omitted for publications that predate
// tracing.
type wirePublication struct {
	Peer  string     `json:"peer"`
	Edits []wireEdit `json:"edits"`
	Trace string     `json:"trace,omitempty"`
}

// sinceResponse is the /since payload.
type sinceResponse struct {
	Cursor       int               `json:"cursor"`
	Publications []wirePublication `json:"publications"`
}

func toWire(peer string, log core.EditLog) wirePublication {
	wp := wirePublication{Peer: peer}
	for _, e := range log {
		op := "-"
		if e.Insert {
			op = "+"
		}
		wp.Edits = append(wp.Edits, wireEdit{
			Op:  op,
			Rel: e.Rel,
			Key: base64.StdEncoding.EncodeToString(e.Tuple.EncodeKey(nil)),
		})
	}
	return wp
}

func fromWire(wp wirePublication) (string, core.EditLog, error) {
	if wp.Peer == "" {
		return "", nil, fmt.Errorf("share: publication without peer")
	}
	var log core.EditLog
	for i, we := range wp.Edits {
		if we.Op != "+" && we.Op != "-" {
			return "", nil, fmt.Errorf("share: edit %d: bad op %q", i, we.Op)
		}
		raw, err := base64.StdEncoding.DecodeString(we.Key)
		if err != nil {
			return "", nil, fmt.Errorf("share: edit %d: %w", i, err)
		}
		tup, err := value.DecodeTuple(string(raw))
		if err != nil {
			return "", nil, fmt.Errorf("share: edit %d: %w", i, err)
		}
		log = append(log, core.Edit{Insert: we.Op == "+", Rel: we.Rel, Tuple: tup})
	}
	return wp.Peer, log, nil
}

// Server is the publication service. It optionally validates incoming
// publications against a Spec (peers edit only their own relations) and
// can persist them through an Appender (e.g. a logstore.Store).
type Server struct {
	mu   sync.RWMutex
	pubs []wirePublication

	// Validate, when non-nil, admits only publications legal under the
	// spec.
	Validate func(peer string, log core.EditLog) error
	// Persist, when non-nil, is invoked for every accepted publication
	// with its lineage trace id (durable stores stamp it into the
	// frame).
	Persist func(peer string, log core.EditLog, traceID string) error

	// notify, when non-nil, is called (outside the lock) after each
	// accepted publication; see OnPublish.
	notify func()

	metrics  Metrics
	pubTrace *obs.PubTracer
}

// SetPubTracer installs the publish-record ring accepted publications
// are recorded into. Call it before the server starts serving.
func (s *Server) SetPubTracer(t *obs.PubTracer) { s.pubTrace = t }

// SetMetrics installs publish instruments. Call it before the server
// starts serving; it is not synchronized against in-flight requests.
func (s *Server) SetMetrics(m Metrics) { s.metrics = m }

// NewServer returns an empty in-memory publication service.
func NewServer() *Server { return &Server{} }

// SpecValidator builds a Validate func from a CDSS spec.
func SpecValidator(spec *core.Spec) func(string, core.EditLog) error {
	return func(peer string, log core.EditLog) error {
		return core.ValidateLog(spec, peer, log)
	}
}

// SetValidate replaces the validator under the server's lock — the safe
// way to swap validation on a serving daemon (spec evolution replaces
// the spec at runtime). Direct assignment of Validate remains fine
// before the server starts serving.
func (s *Server) SetValidate(fn func(string, core.EditLog) error) {
	s.mu.Lock()
	s.Validate = fn
	s.mu.Unlock()
}

// OnPublish registers a callback invoked after every accepted
// publication (validation passed, persistence succeeded, sequence
// appended). It runs on the serving goroutine outside the server's
// lock, so it must be fast and non-blocking — typically a non-blocking
// send on a wake-up channel that an exchange loop drains, coalescing
// publication bursts into one pass.
func (s *Server) OnPublish(fn func()) {
	s.mu.Lock()
	s.notify = fn
	s.mu.Unlock()
}

// Len returns the number of accepted publications.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pubs)
}

// Preload appends an already-persisted publication without re-validating
// or re-persisting it — used when reloading a logstore at startup. The
// trace id comes from the stored frame ("" for pre-tracing records).
func (s *Server) Preload(peer string, log core.EditLog, traceID string) error {
	if peer == "" {
		return fmt.Errorf("share: publication without peer")
	}
	wp := toWire(peer, log)
	wp.Trace = traceID
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pubs = append(s.pubs, wp)
	return nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/publish":
		s.handlePublish(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/since":
		s.handleSince(w, r)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var wp wirePublication
	if err := json.Unmarshal(body, &wp); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	peer, log, err := fromWire(wp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Resolve the publication's lineage id: the traceparent header wins
	// (the publisher minted it), then a trace id already in the body
	// (client forwarding a stored publication), then a fresh mint — so
	// every accepted publication has one.
	if sc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		wp.Trace = sc.TraceID
	} else if wp.Trace == "" {
		wp.Trace = obs.NewTraceID()
	}
	s.mu.RLock()
	validate := s.Validate
	s.mu.RUnlock()
	if validate != nil {
		if err := validate(peer, log); err != nil {
			s.metrics.PublishRejected.Inc()
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
	}
	var appendNS int64
	if s.Persist != nil {
		persistStart := time.Now()
		if err := s.Persist(peer, log, wp.Trace); err != nil {
			s.metrics.PublishFailed.Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		appendNS = time.Since(persistStart).Nanoseconds()
	}
	s.metrics.PublishAccepted.Inc()
	s.mu.Lock()
	s.pubs = append(s.pubs, wp)
	n := len(s.pubs)
	notify := s.notify
	s.mu.Unlock()
	s.pubTrace.Add(obs.PubRecord{
		TraceID:  wp.Trace,
		Peer:     peer,
		Cursor:   n,
		Start:    start,
		Edits:    len(log),
		AppendNS: appendNS,
		TotalNS:  time.Since(start).Nanoseconds(),
	})
	if notify != nil {
		notify()
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"cursor":%d,"trace":%q}`, n, wp.Trace)
}

func (s *Server) handleSince(w http.ResponseWriter, r *http.Request) {
	cursor := 0
	if c := r.URL.Query().Get("cursor"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil || n < 0 {
			http.Error(w, "bad cursor", http.StatusBadRequest)
			return
		}
		cursor = n
	}
	s.mu.RLock()
	if cursor > len(s.pubs) {
		cursor = len(s.pubs)
	}
	resp := sinceResponse{
		Cursor:       len(s.pubs),
		Publications: append([]wirePublication(nil), s.pubs[cursor:]...),
	}
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// Client talks to a publication service.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

// Publish sends one edit log to the service.
func (c *Client) Publish(peer string, log core.EditLog) error {
	return c.PublishContext(context.Background(), peer, log)
}

// PublishContext is Publish with cancellation over the HTTP round trip.
func (c *Client) PublishContext(ctx context.Context, peer string, log core.EditLog) error {
	return (&Bus{cl: c}).Append(ctx, peer, log)
}

// Fetch retrieves publications at or after cursor, returning them with
// the new cursor.
func (c *Client) Fetch(cursor int) ([]core.EditLog, []string, int, error) {
	return c.FetchContext(context.Background(), cursor)
}

// FetchContext is Fetch with cancellation over the HTTP round trip.
func (c *Client) FetchContext(ctx context.Context, cursor int) ([]core.EditLog, []string, int, error) {
	pubs, next, err := (&Bus{cl: c}).FetchSince(ctx, cursor)
	if err != nil {
		return nil, nil, cursor, err
	}
	var logs []core.EditLog
	var peers []string
	for _, p := range pubs {
		peers = append(peers, p.Peer)
		logs = append(logs, p.Log)
	}
	return logs, peers, next, nil
}

// Sync pulls every unseen publication into a CDSS, returning the new
// cursor. The caller then runs Exchange on whichever views it maintains.
func (c *Client) Sync(cdss *core.CDSS, cursor int) (int, error) {
	logs, peers, next, err := c.Fetch(cursor)
	if err != nil {
		return cursor, err
	}
	for i := range logs {
		if err := cdss.Publish(peers[i], logs[i]); err != nil {
			return cursor, err
		}
	}
	return next, nil
}

// Bus adapts the HTTP client to core.PublicationBus, so the same
// application code runs embedded (core.MemoryBus) or federated against a
// remote publication service.
type Bus struct {
	cl *Client
}

// NewBus returns a PublicationBus backed by the service at baseURL.
func NewBus(baseURL string) *Bus { return &Bus{cl: NewClient(baseURL)} }

// Client exposes the underlying HTTP client (e.g. to swap transports).
func (b *Bus) Client() *Client { return b.cl }

// Append implements core.PublicationBus by POSTing to /publish. The
// publication's lineage trace id travels as a traceparent header —
// taken from ctx when the caller already carries a span, minted here
// otherwise.
func (b *Bus) Append(ctx context.Context, peer string, log core.EditLog) error {
	payload, err := json.Marshal(toWire(peer, log))
	if err != nil {
		return err
	}
	ctx, sc := obs.EnsureSpan(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.cl.BaseURL+"/publish", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", sc.Traceparent())
	resp, err := b.cl.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("share: publish: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// FetchSince implements core.PublicationBus by GETting /since.
func (b *Bus) FetchSince(ctx context.Context, cursor int) ([]core.Publication, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/since?cursor=%d", b.cl.BaseURL, cursor), nil)
	if err != nil {
		return nil, cursor, err
	}
	resp, err := b.cl.HTTP.Do(req)
	if err != nil {
		return nil, cursor, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, cursor, fmt.Errorf("share: fetch: %s", resp.Status)
	}
	var sr sinceResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, cursor, err
	}
	pubs := make([]core.Publication, 0, len(sr.Publications))
	for _, wp := range sr.Publications {
		peer, log, err := fromWire(wp)
		if err != nil {
			return nil, cursor, err
		}
		pubs = append(pubs, core.Publication{Peer: peer, Log: log, TraceID: wp.Trace})
	}
	return pubs, sr.Cursor, nil
}
