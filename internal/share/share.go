// Package share implements the CDSS communications layer (§2, §5): a
// small HTTP service through which peers make their edit logs "globally
// available", and a client with which other nodes fetch — or stream —
// the publications they have not yet imported. Together with
// internal/logstore this plays the role of Orchestra's
// central/distributed publication storage [34].
//
// Wire protocol (JSON):
//
//	POST /publish   {"peer": "...", "edits": [{"op":"+","rel":"R","key":"base64"}]}
//	GET  /since?cursor=N      → {"cursor": M, "publications": [...]}       (legacy, scalar cursor)
//	GET  /fetch?cursor=C      → {"cursor": "v1:...", "deltas": [...]}      (typed, shard-aware cursor)
//	GET  /horizon             → {"cursor": "v1:..."}
//	GET  /watch?cursor=C      → NDJSON stream of deltas (chunked, long-lived)
//
// /fetch and /watch take the durable form of a core.Cursor (see
// core.ParseCursor) and return per-shard positions with every delta, so
// a follower can verify contiguity and resume a broken stream exactly
// where it stopped. /watch holds the connection open and pushes each
// publication as its own NDJSON line the moment it is accepted; blank
// lines are heartbeats and may be ignored. Tuples travel as base64 of
// their canonical encoding, so values of any kind round-trip exactly.
//
// Lineage: a publish carries its trace id in a W3C-shaped `traceparent`
// request header (minted by the server when absent, echoed back in the
// response body as "trace"), and every fetch/stream shape returns each
// publication's trace id in its "trace" field — so one id follows a
// publication from the publishing process through the bus to every
// fetching process.
package share

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/obs"
	"orchestra/internal/value"
)

// Metrics holds the publication service's instruments. The zero value
// disables all of them (obs instruments are nil-safe).
type Metrics struct {
	// PublishAccepted counts publications admitted to the sequence.
	PublishAccepted *obs.Counter
	// PublishRejected counts publications refused by validation (422).
	PublishRejected *obs.Counter
	// PublishFailed counts publications that passed validation but could
	// not be persisted (500).
	PublishFailed *obs.Counter
	// WatchStreams counts /watch connections accepted.
	WatchStreams *obs.Counter
	// WatchDeltas counts deltas pushed over /watch streams.
	WatchDeltas *obs.Counter
}

// wireEdit is one edit on the wire.
type wireEdit struct {
	Op  string `json:"op"` // "+" or "-"
	Rel string `json:"rel"`
	Key string `json:"key"` // base64 canonical tuple
}

// wirePublication is one published edit log on the wire. Trace is the
// publication's lineage trace id; omitted for publications that predate
// tracing.
type wirePublication struct {
	Peer  string     `json:"peer"`
	Edits []wireEdit `json:"edits"`
	Trace string     `json:"trace,omitempty"`
}

// wireDelta is one sharded publication on the wire (/fetch, /watch):
// a wirePublication plus its 1-based position within the owning peer's
// shard, so receivers can check contiguity without replaying the log.
type wireDelta struct {
	Peer  string     `json:"peer"`
	Pos   int        `json:"pos"`
	Edits []wireEdit `json:"edits"`
	Trace string     `json:"trace,omitempty"`
}

// sinceResponse is the /since payload.
type sinceResponse struct {
	Cursor       int               `json:"cursor"`
	Publications []wirePublication `json:"publications"`
}

// fetchResponse is the /fetch payload. Cursor is the durable form of
// the server's horizon after the returned deltas (core.ParseCursor).
type fetchResponse struct {
	Cursor string      `json:"cursor"`
	Deltas []wireDelta `json:"deltas"`
}

// horizonResponse is the /horizon payload.
type horizonResponse struct {
	Cursor string `json:"cursor"`
}

func toWire(peer string, log core.EditLog) wirePublication {
	wp := wirePublication{Peer: peer}
	for _, e := range log {
		op := "-"
		if e.Insert {
			op = "+"
		}
		wp.Edits = append(wp.Edits, wireEdit{
			Op:  op,
			Rel: e.Rel,
			Key: base64.StdEncoding.EncodeToString(e.Tuple.EncodeKey(nil)),
		})
	}
	return wp
}

func toWireDelta(d core.Delta) wireDelta {
	wp := toWire(d.Pub.Peer, d.Pub.Log)
	return wireDelta{Peer: d.Pub.Peer, Pos: d.Pos, Edits: wp.Edits, Trace: d.Pub.TraceID}
}

func fromWire(wp wirePublication) (string, core.EditLog, error) {
	if wp.Peer == "" {
		return "", nil, fmt.Errorf("share: publication without peer")
	}
	var log core.EditLog
	for i, we := range wp.Edits {
		if we.Op != "+" && we.Op != "-" {
			return "", nil, fmt.Errorf("share: edit %d: bad op %q", i, we.Op)
		}
		raw, err := base64.StdEncoding.DecodeString(we.Key)
		if err != nil {
			return "", nil, fmt.Errorf("share: edit %d: %w", i, err)
		}
		tup, err := value.DecodeTuple(string(raw))
		if err != nil {
			return "", nil, fmt.Errorf("share: edit %d: %w", i, err)
		}
		log = append(log, core.Edit{Insert: we.Op == "+", Rel: we.Rel, Tuple: tup})
	}
	return wp.Peer, log, nil
}

func fromWireDelta(wd wireDelta) (core.Delta, error) {
	peer, log, err := fromWire(wirePublication{Peer: wd.Peer, Edits: wd.Edits, Trace: wd.Trace})
	if err != nil {
		return core.Delta{}, err
	}
	return core.Delta{
		Shard: peer,
		Pos:   wd.Pos,
		Pub:   core.Publication{Peer: peer, Log: log, TraceID: wd.Trace},
	}, nil
}

// Server is the publication service. Accepted publications live on an
// embedded core.MemoryBus — the same sharded sequence the in-process
// bus uses — so /fetch and /watch serve typed cursors and per-shard
// positions, and /watch streams straight off the bus's subscription
// machinery. The server optionally validates incoming publications
// against a Spec (peers edit only their own relations) and can persist
// them through a Persist hook (e.g. a logstore.Store).
type Server struct {
	mem *core.MemoryBus

	// mu guards the mutable hooks below (swapped at runtime by spec
	// evolution), not the publication storage — mem has its own lock.
	mu sync.RWMutex

	// Validate, when non-nil, admits only publications legal under the
	// spec.
	Validate func(peer string, log core.EditLog) error
	// Persist, when non-nil, is invoked for every accepted publication
	// with its lineage trace id (durable stores stamp it into the
	// frame).
	Persist func(peer string, log core.EditLog, traceID string) error

	// notify, when non-nil, is called (outside the lock) after each
	// accepted publication; see OnPublish.
	notify func()

	metrics  Metrics
	pubTrace *obs.PubTracer
}

// SetPubTracer installs the publish-record ring accepted publications
// are recorded into. Call it before the server starts serving.
func (s *Server) SetPubTracer(t *obs.PubTracer) { s.pubTrace = t }

// SetMetrics installs publish instruments. Call it before the server
// starts serving; it is not synchronized against in-flight requests.
func (s *Server) SetMetrics(m Metrics) { s.metrics = m }

// NewServer returns an empty in-memory publication service.
func NewServer() *Server { return &Server{mem: core.NewMemoryBus()} }

// SpecValidator builds a Validate func from a CDSS spec.
func SpecValidator(spec *core.Spec) func(string, core.EditLog) error {
	return func(peer string, log core.EditLog) error {
		return core.ValidateLog(spec, peer, log)
	}
}

// SetValidate replaces the validator under the server's lock — the safe
// way to swap validation on a serving daemon (spec evolution replaces
// the spec at runtime). Direct assignment of Validate remains fine
// before the server starts serving.
func (s *Server) SetValidate(fn func(string, core.EditLog) error) {
	s.mu.Lock()
	s.Validate = fn
	s.mu.Unlock()
}

// OnPublish registers a callback invoked after every accepted
// publication (validation passed, persistence succeeded, sequence
// appended). It runs on the serving goroutine outside the server's
// lock, so it must be fast and non-blocking — typically a non-blocking
// send on a wake-up channel that an exchange loop drains, coalescing
// publication bursts into one pass. (/watch subscribers are woken by
// the bus itself and need no callback.)
func (s *Server) OnPublish(fn func()) {
	s.mu.Lock()
	s.notify = fn
	s.mu.Unlock()
}

// Len returns the number of accepted publications.
func (s *Server) Len() int { return s.mem.Len() }

// Preload appends an already-persisted publication without re-validating
// or re-persisting it — used when reloading a logstore at startup. The
// trace id comes from the stored frame ("" for pre-tracing records).
func (s *Server) Preload(peer string, log core.EditLog, traceID string) error {
	if peer == "" {
		return fmt.Errorf("share: publication without peer")
	}
	return s.mem.Preload(peer, log, traceID)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/publish":
		s.handlePublish(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/since":
		s.handleSince(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/fetch":
		s.handleFetch(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/horizon":
		s.handleHorizon(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/watch":
		s.handleWatch(w, r)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var wp wirePublication
	if err := json.Unmarshal(body, &wp); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	peer, log, err := fromWire(wp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Resolve the publication's lineage id: the traceparent header wins
	// (the publisher minted it), then a trace id already in the body
	// (client forwarding a stored publication), then a fresh mint — so
	// every accepted publication has one.
	if sc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		wp.Trace = sc.TraceID
	} else if wp.Trace == "" {
		wp.Trace = obs.NewTraceID()
	}
	s.mu.RLock()
	validate := s.Validate
	s.mu.RUnlock()
	if validate != nil {
		if err := validate(peer, log); err != nil {
			s.metrics.PublishRejected.Inc()
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
	}
	var appendNS int64
	if s.Persist != nil {
		persistStart := time.Now()
		if err := s.Persist(peer, log, wp.Trace); err != nil {
			s.metrics.PublishFailed.Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		appendNS = time.Since(persistStart).Nanoseconds()
	}
	s.metrics.PublishAccepted.Inc()
	// Preload (not Append) carries the already-resolved trace id; it also
	// wakes every /watch stream parked on the bus.
	if err := s.mem.Preload(peer, log, wp.Trace); err != nil {
		s.metrics.PublishFailed.Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	n := s.mem.Len()
	s.mu.RLock()
	notify := s.notify
	s.mu.RUnlock()
	s.pubTrace.Add(obs.PubRecord{
		TraceID:  wp.Trace,
		Peer:     peer,
		Cursor:   n,
		Start:    start,
		Edits:    len(log),
		AppendNS: appendNS,
		TotalNS:  time.Since(start).Nanoseconds(),
	})
	if notify != nil {
		notify()
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"cursor":%d,"trace":%q}`, n, wp.Trace)
}

func (s *Server) handleSince(w http.ResponseWriter, r *http.Request) {
	cursor := 0
	if c := r.URL.Query().Get("cursor"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil || n < 0 {
			http.Error(w, "bad cursor", http.StatusBadRequest)
			return
		}
		cursor = n
	}
	pubs, next, err := s.mem.FetchSince(r.Context(), cursor)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := sinceResponse{Cursor: next, Publications: make([]wirePublication, 0, len(pubs))}
	for _, p := range pubs {
		wp := toWire(p.Peer, p.Log)
		wp.Trace = p.TraceID
		resp.Publications = append(resp.Publications, wp)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// parseCursorParam reads the typed cursor query parameter shared by
// /fetch and /watch ("" means from the beginning).
func parseCursorParam(r *http.Request) (core.Cursor, error) {
	return core.ParseCursor(r.URL.Query().Get("cursor"))
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	from, err := parseCursorParam(r)
	if err != nil {
		http.Error(w, "bad cursor: "+err.Error(), http.StatusBadRequest)
		return
	}
	deltas, next, err := s.mem.Fetch(r.Context(), from)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := fetchResponse{Cursor: next.String(), Deltas: make([]wireDelta, 0, len(deltas))}
	for _, d := range deltas {
		resp.Deltas = append(resp.Deltas, toWireDelta(d))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleHorizon(w http.ResponseWriter, r *http.Request) {
	h, err := s.mem.Horizon(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(horizonResponse{Cursor: h.String()})
}

// watchHeartbeat is how often an idle /watch stream emits a blank
// keep-alive line, letting both ends notice a dead connection.
const watchHeartbeat = 15 * time.Second

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	from, err := parseCursorParam(r)
	if err != nil {
		http.Error(w, "bad cursor: "+err.Error(), http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel, err := s.mem.Subscribe(r.Context(), from)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer cancel()
	s.metrics.WatchStreams.Inc()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	heartbeat := time.NewTicker(watchHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case d, ok := <-ch:
			if !ok {
				return // subscription ended (request context cancelled)
			}
			if err := enc.Encode(toWireDelta(d)); err != nil {
				return // client went away
			}
			s.metrics.WatchDeltas.Inc()
			flusher.Flush()
		case <-heartbeat.C:
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// Client talks to a publication service.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

// Publish sends one edit log to the service. The context covers the
// HTTP round trip.
func (c *Client) Publish(ctx context.Context, peer string, log core.EditLog) error {
	return (&Bus{cl: c}).Append(ctx, peer, log)
}

// Fetch retrieves publications at or after the scalar cursor, returning
// them with the new cursor. The context covers the HTTP round trip.
func (c *Client) Fetch(ctx context.Context, cursor int) ([]core.EditLog, []string, int, error) {
	pubs, next, err := (&Bus{cl: c}).FetchSince(ctx, cursor)
	if err != nil {
		return nil, nil, cursor, err
	}
	var logs []core.EditLog
	var peers []string
	for _, p := range pubs {
		peers = append(peers, p.Peer)
		logs = append(logs, p.Log)
	}
	return logs, peers, next, nil
}

// Sync pulls every unseen publication into a CDSS, returning the new
// cursor. The caller then runs Exchange on whichever views it maintains.
func (c *Client) Sync(ctx context.Context, cdss *core.CDSS, cursor int) (int, error) {
	logs, peers, next, err := c.Fetch(ctx, cursor)
	if err != nil {
		return cursor, err
	}
	for i := range logs {
		if err := cdss.Publish(ctx, peers[i], logs[i]); err != nil {
			return cursor, err
		}
	}
	return next, nil
}

// Bus adapts the HTTP client to the core bus interfaces (BusAppender,
// BusReader, BusWatcher), so the same application code runs embedded
// (core.MemoryBus) or federated against a remote publication service.
// Subscribe streams /watch with automatic reconnection, degrading to
// periodic /since polling against servers that predate streaming.
type Bus struct {
	cl *Client
}

// NewBus returns a PublicationBus backed by the service at baseURL.
func NewBus(baseURL string) *Bus { return &Bus{cl: NewClient(baseURL)} }

// Client exposes the underlying HTTP client (e.g. to swap transports).
func (b *Bus) Client() *Client { return b.cl }

// Append implements core.BusAppender by POSTing to /publish. The
// publication's lineage trace id travels as a traceparent header —
// taken from ctx when the caller already carries a span, minted here
// otherwise.
func (b *Bus) Append(ctx context.Context, peer string, log core.EditLog) error {
	payload, err := json.Marshal(toWire(peer, log))
	if err != nil {
		return err
	}
	ctx, sc := obs.EnsureSpan(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.cl.BaseURL+"/publish", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", sc.Traceparent())
	resp, err := b.cl.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("share: publish: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// errNoStreaming marks a 404 from a typed endpoint: the remote service
// predates the sharded protocol, so callers fall back to /since.
var errNoStreaming = fmt.Errorf("share: service does not speak the sharded protocol")

// Fetch implements core.BusReader by GETting /fetch. Against an old
// server it falls back to /since: positions are then unknown (0) and
// the returned cursor is scalar, which downstream cursor folding
// handles (core.Cursor's scalar degradation).
func (b *Bus) Fetch(ctx context.Context, from core.Cursor) ([]core.Delta, core.Cursor, error) {
	resp, err := b.getJSON(ctx, "/fetch?cursor="+url.QueryEscape(from.String()))
	if errors.Is(err, errNoStreaming) {
		return b.fetchLegacy(ctx, from)
	}
	if err != nil {
		return nil, from, err
	}
	defer resp.Body.Close()
	var fr fetchResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return nil, from, err
	}
	next, err := core.ParseCursor(fr.Cursor)
	if err != nil {
		return nil, from, fmt.Errorf("share: fetch: bad cursor %q: %w", fr.Cursor, err)
	}
	deltas := make([]core.Delta, 0, len(fr.Deltas))
	for _, wd := range fr.Deltas {
		d, err := fromWireDelta(wd)
		if err != nil {
			return nil, from, err
		}
		deltas = append(deltas, d)
	}
	return deltas, next, nil
}

// fetchLegacy serves Fetch over /since for pre-streaming servers.
func (b *Bus) fetchLegacy(ctx context.Context, from core.Cursor) ([]core.Delta, core.Cursor, error) {
	pubs, next, err := b.FetchSince(ctx, from.Total())
	if err != nil {
		return nil, from, err
	}
	deltas := make([]core.Delta, 0, len(pubs))
	for _, p := range pubs {
		deltas = append(deltas, core.Delta{Shard: p.Peer, Pub: p})
	}
	return deltas, core.CursorFromTotal(next), nil
}

// Horizon implements core.BusReader by GETting /horizon (falling back
// to an empty /since fetch on old servers, which yields a scalar
// horizon).
func (b *Bus) Horizon(ctx context.Context) (core.Cursor, error) {
	resp, err := b.getJSON(ctx, "/horizon")
	if errors.Is(err, errNoStreaming) {
		_, next, err := b.FetchSince(ctx, math.MaxInt)
		if err != nil {
			return core.Cursor{}, err
		}
		return core.CursorFromTotal(next), nil
	}
	if err != nil {
		return core.Cursor{}, err
	}
	defer resp.Body.Close()
	var hr horizonResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return core.Cursor{}, err
	}
	return core.ParseCursor(hr.Cursor)
}

// getJSON GETs path, translating 404 into errNoStreaming.
func (b *Bus) getJSON(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.cl.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.cl.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return nil, errNoStreaming
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("share: %s: %s", path, resp.Status)
	}
	return resp, nil
}

// Reconnect backoff bounds for Subscribe's stream pump.
const (
	watchBackoffMin = 250 * time.Millisecond
	watchBackoffMax = 2 * time.Second
)

// subscribeBuffer is the delivery channel's capacity; the pump blocks
// (and the HTTP stream backpressures) when a subscriber lags further,
// so a slow consumer never costs unbounded memory or lost deltas.
const subscribeBuffer = 16

// Subscribe implements core.BusWatcher over a long-lived /watch stream.
// The pump reconnects with truncated exponential backoff (250ms–2s)
// from the last delivered position, so deltas are delivered exactly
// once and in order across connection failures. Against a server
// without /watch it degrades to polling /since at the backoff ceiling.
// Cancel the context or call the CancelFunc to release the stream.
func (b *Bus) Subscribe(ctx context.Context, from core.Cursor) (<-chan core.Delta, core.CancelFunc, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	out := make(chan core.Delta, subscribeBuffer)
	stop := make(chan struct{})
	go b.pump(ctx, from, out, stop)
	var once sync.Once
	return out, func() { once.Do(func() { close(stop) }) }, nil
}

func (b *Bus) pump(ctx context.Context, cur core.Cursor, out chan<- core.Delta, stop <-chan struct{}) {
	defer close(out)
	backoff := watchBackoffMin
	deliver := func(d core.Delta) bool {
		select {
		case out <- d:
			return true
		case <-ctx.Done():
			return false
		case <-stop:
			return false
		}
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		default:
		}
		next, streamed, err := b.watchOnce(ctx, cur, deliver, stop)
		cur = next
		if errors.Is(err, errNoStreaming) {
			// Old server: poll instead. One poll per backoff ceiling keeps
			// the degraded mode cheap while still converging.
			deltas, nxt, ferr := b.Fetch(ctx, cur)
			if ferr == nil {
				for _, d := range deltas {
					if !deliver(d) {
						return
					}
				}
				cur = nxt
			}
			if !sleepOr(ctx, stop, watchBackoffMax) {
				return
			}
			continue
		}
		if streamed {
			backoff = watchBackoffMin // the connection was healthy; reset
		}
		if err == nil && ctx.Err() == nil {
			// Clean EOF (server restart, LB idle timeout): reconnect fast.
			continue
		}
		if ctx.Err() != nil {
			return
		}
		if !sleepOr(ctx, stop, backoff) {
			return
		}
		backoff = min(backoff*2, watchBackoffMax)
	}
}

// watchOnce opens one /watch stream and delivers its deltas, returning
// the cursor after the last delivered delta and whether any arrived.
func (b *Bus) watchOnce(ctx context.Context, from core.Cursor, deliver func(core.Delta) bool, stop <-chan struct{}) (core.Cursor, bool, error) {
	// Tie the request to both cancellation paths so closing the
	// subscription tears down the connection rather than leaking it.
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	go func() {
		select {
		case <-stop:
			rcancel()
		case <-rctx.Done():
		}
	}()
	resp, err := b.getJSON(rctx, "/watch?cursor="+url.QueryEscape(from.String()))
	if err != nil {
		return from, false, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	cur, streamed := from, false
	for sc.Scan() {
		if err := rctx.Err(); err != nil {
			return cur, streamed, err
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue // heartbeat
		}
		var wd wireDelta
		if err := json.Unmarshal(line, &wd); err != nil {
			return cur, streamed, fmt.Errorf("share: watch: %w", err)
		}
		d, err := fromWireDelta(wd)
		if err != nil {
			return cur, streamed, err
		}
		if !deliver(d) {
			return cur, streamed, nil
		}
		cur = cur.Advance(d)
		streamed = true
	}
	return cur, streamed, sc.Err()
}

// sleepOr waits d, returning false if ctx or stop fired first.
func sleepOr(ctx context.Context, stop <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-stop:
		return false
	}
}

// FetchSince implements the legacy scalar fetch by GETting /since.
//
// Deprecated: use Fetch with a typed core.Cursor.
func (b *Bus) FetchSince(ctx context.Context, cursor int) ([]core.Publication, int, error) {
	if cursor < 0 {
		cursor = 0
	}
	if cursor > 1<<53 {
		cursor = 1 << 53 // keep the query within every server's Atoi range
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/since?cursor=%d", b.cl.BaseURL, cursor), nil)
	if err != nil {
		return nil, cursor, err
	}
	resp, err := b.cl.HTTP.Do(req)
	if err != nil {
		return nil, cursor, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, cursor, fmt.Errorf("share: fetch: %s", resp.Status)
	}
	var sr sinceResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, cursor, err
	}
	pubs := make([]core.Publication, 0, len(sr.Publications))
	for _, wp := range sr.Publications {
		peer, log, err := fromWire(wp)
		if err != nil {
			return nil, cursor, err
		}
		pubs = append(pubs, core.Publication{Peer: peer, Log: log, TraceID: wp.Trace})
	}
	return pubs, sr.Cursor, nil
}
