package share

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/logstore"
	"orchestra/internal/obs"
	"orchestra/internal/schema"
	"orchestra/internal/tgd"
)

func testSpec(t *testing.T) *core.Spec {
	t.Helper()
	u := schema.NewUniverse()
	p := schema.NewPeer("P")
	p.AddRelation("A", schema.Column{Name: "x", Type: schema.TypeInt})
	q := schema.NewPeer("Q")
	q.AddRelation("B", schema.Column{Name: "x", Type: schema.TypeInt})
	u.AddPeer(p)
	u.AddPeer(q)
	spec, err := core.NewSpec(u, []*tgd.TGD{tgd.MustParse("m: A(x) -> B(x)")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestPublishAndFetch(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient(ts.URL)

	if err := cl.Publish(context.Background(), "P", core.EditLog{core.Ins("A", core.MakeTuple(1))}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Publish(context.Background(), "Q", core.EditLog{
		core.Ins("B", core.MakeTuple(2)),
		core.Del("B", core.MakeTuple(3)),
	}); err != nil {
		t.Fatal(err)
	}
	if srv.Len() != 2 {
		t.Fatalf("server has %d publications", srv.Len())
	}

	logs, peers, cursor, err := cl.Fetch(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cursor != 2 || len(logs) != 2 || peers[0] != "P" || peers[1] != "Q" {
		t.Fatalf("fetch: cursor=%d logs=%v peers=%v", cursor, logs, peers)
	}
	if len(logs[1]) != 2 || logs[1][1].Insert {
		t.Fatalf("second log: %v", logs[1])
	}
	// Incremental fetch from the cursor returns nothing new.
	logs, _, cursor2, err := cl.Fetch(context.Background(), cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 0 || cursor2 != 2 {
		t.Fatalf("incremental fetch: %v %d", logs, cursor2)
	}
}

// Two CDSS nodes stay consistent by syncing through the service — the
// paper's operating mode with a central publication store.
func TestTwoNodeSync(t *testing.T) {
	spec := testSpec(t)
	srv := NewServer()
	srv.Validate = SpecValidator(spec)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	node1 := core.NewCDSS(spec, core.Options{}, core.DeleteProvenance)
	node2 := core.NewCDSS(spec, core.Options{}, core.DeleteProvenance)
	cl1, cl2 := NewClient(ts.URL), NewClient(ts.URL)
	cur1, cur2 := 0, 0

	// Node 1's peer P inserts and publishes.
	logP := core.EditLog{core.Ins("A", core.MakeTuple(1)), core.Ins("A", core.MakeTuple(2))}
	if err := cl1.Publish(context.Background(), "P", logP); err != nil {
		t.Fatal(err)
	}
	// Node 2's peer Q publishes a curation deletion of imported data.
	logQ := core.EditLog{core.Del("B", core.MakeTuple(1))}
	if err := cl2.Publish(context.Background(), "Q", logQ); err != nil {
		t.Fatal(err)
	}

	// Both nodes sync and exchange.
	var err error
	if cur1, err = cl1.Sync(context.Background(), node1, cur1); err != nil {
		t.Fatal(err)
	}
	if cur2, err = cl2.Sync(context.Background(), node2, cur2); err != nil {
		t.Fatal(err)
	}
	if cur1 != 2 || cur2 != 2 {
		t.Fatalf("cursors: %d %d", cur1, cur2)
	}
	v1, _ := node1.View("")
	v2, _ := node2.View("")
	if _, err := node1.Exchange(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := node2.Exchange(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	// B = {2}: A(1),A(2) mapped in, B(1) rejected by Q's curation.
	for name, v := range map[string]*core.View{"node1": v1, "node2": v2} {
		b := v.Instance("B")
		if b.Len() != 1 || !b.Contains(core.MakeTuple(2)) {
			t.Fatalf("%s B instance:\n%s", name, v.DB().Dump())
		}
	}
}

func TestServerValidation(t *testing.T) {
	spec := testSpec(t)
	srv := NewServer()
	srv.Validate = SpecValidator(spec)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient(ts.URL)
	// Cross-peer edit rejected with 422.
	err := cl.Publish(context.Background(), "P", core.EditLog{core.Ins("B", core.MakeTuple(1))})
	if err == nil || !strings.Contains(err.Error(), "422") {
		t.Fatalf("cross-peer publish: %v", err)
	}
	if srv.Len() != 0 {
		t.Fatal("invalid publication stored")
	}
}

func TestServerPersistsThroughLogstore(t *testing.T) {
	store, err := logstore.Open(t.TempDir() + "/pub.log")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := NewServer()
	srv.Persist = store.AppendTraced
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient(ts.URL)
	if err := cl.Publish(context.Background(), "P", core.EditLog{core.Ins("A", core.MakeTuple(5))}); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d records", store.Len())
	}
	pubs, err := store.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if pubs[0].Peer != "P" || len(pubs[0].Log) != 1 {
		t.Fatalf("persisted publication: %+v", pubs[0])
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Unknown path.
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d", resp.StatusCode)
	}
	// Bad JSON.
	resp, err = http.Post(ts.URL+"/publish", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: %d", resp.StatusCode)
	}
	// Bad base64 key.
	resp, err = http.Post(ts.URL+"/publish", "application/json",
		strings.NewReader(`{"peer":"P","edits":[{"op":"+","rel":"A","key":"!!!"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: %d", resp.StatusCode)
	}
	// Bad op.
	resp, err = http.Post(ts.URL+"/publish", "application/json",
		strings.NewReader(`{"peer":"P","edits":[{"op":"?","rel":"A","key":""}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op: %d", resp.StatusCode)
	}
	// Bad cursor.
	resp, err = http.Get(ts.URL + "/since?cursor=potato")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: %d", resp.StatusCode)
	}
	// Cursor beyond the end clamps.
	cl := NewClient(ts.URL)
	if err := cl.Publish(context.Background(), "P", core.EditLog{core.Ins("A", core.MakeTuple(1))}); err != nil {
		t.Fatal(err)
	}
	logs, _, cursor, err := cl.Fetch(context.Background(), 999)
	if err != nil || len(logs) != 0 || cursor != 1 {
		t.Fatalf("over-cursor fetch: %v %d %v", logs, cursor, err)
	}
}

// TestTraceparentRoundTrip proves a publication's lineage id survives
// the HTTP hop: the Bus sends it as a traceparent header, the server
// stores it, FetchSince hands it back, and the server-side PubTracer
// records the publish under the same id.
func TestTraceparentRoundTrip(t *testing.T) {
	srv := NewServer()
	tracer := obs.NewPubTracer(8)
	srv.SetPubTracer(tracer)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	bus := NewBus(ts.URL)

	ctx, sc := obs.EnsureSpan(context.Background())
	if err := bus.Append(ctx, "P", core.EditLog{core.Ins("A", core.MakeTuple(1))}); err != nil {
		t.Fatal(err)
	}
	// A publish without a span on its context gets a server-minted id.
	if err := bus.Append(context.Background(), "Q", core.EditLog{core.Ins("B", core.MakeTuple(2))}); err != nil {
		t.Fatal(err)
	}

	pubs, cursor, err := bus.FetchSince(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cursor != 2 || len(pubs) != 2 {
		t.Fatalf("fetch: cursor=%d pubs=%v", cursor, pubs)
	}
	if pubs[0].TraceID != sc.TraceID {
		t.Fatalf("fetched trace id %q, want the caller's %q", pubs[0].TraceID, sc.TraceID)
	}
	minted := obs.SpanContext{TraceID: pubs[1].TraceID, SpanID: "0123456789abcdef"}
	if !minted.Valid() {
		t.Fatalf("server-minted trace id %q is not a valid 128-bit hex id", pubs[1].TraceID)
	}
	if pubs[1].TraceID == sc.TraceID {
		t.Fatal("second publication reused the first trace id")
	}

	// The server-side publish ring indexed the record by trace id.
	rec := tracer.Find(sc.TraceID)
	if rec == nil || rec.Peer != "P" || rec.Cursor != 1 || rec.Edits != 1 {
		t.Fatalf("PubTracer.Find(%q) = %+v", sc.TraceID, rec)
	}
}
