package value

// Row pairs a tuple with its canonical key (see Tuple.EncodeKey), so the
// encoding happens once at creation and the key can flow through storage,
// delta sets, edit logs, and provenance refs without re-encoding — the
// hot-path currency of the storage and maintenance layers.
//
// A Row's tuple must not be mutated after the Row is built: storage and
// index structures share it and rely on Key staying the tuple's canonical
// encoding.
type Row struct {
	Tuple Tuple
	Key   string
}

// NewRow encodes t once and returns the keyed row. The tuple is not
// cloned; callers that reuse the slice must Clone first.
func NewRow(t Tuple) Row { return Row{Tuple: t, Key: t.Key()} }

// KeyedRow pairs a tuple with an already-computed canonical key. The key
// must equal t.Key(); this is the zero-encode constructor for callers
// that already hold the key (storage lookups, decoded refs).
func KeyedRow(t Tuple, key string) Row { return Row{Tuple: t, Key: key} }

// Env resolves variable names during filter evaluation (trust conditions
// Θ, query selections). The engine implements it over its slot binding so
// filters run without materializing a map per match.
type Env interface {
	// Lookup returns the value bound to the variable, if any.
	Lookup(name string) (Value, bool)
}

// MapEnv is the map-backed Env used by tests, trust-policy evaluation
// over explicit column maps, and other cold paths.
type MapEnv map[string]Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}
