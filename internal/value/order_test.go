package value

import (
	"math/rand"
	"testing"
)

// Compare must be a total order: antisymmetric, transitive, and
// consistent with equality — the storage layer's deterministic iteration
// and the spec round-trips rely on it.
func TestCompareTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sample := make([]Value, 200)
	for i := range sample {
		sample[i] = randomValue(r)
	}
	for i := 0; i < 3000; i++ {
		a := sample[r.Intn(len(sample))]
		b := sample[r.Intn(len(sample))]
		c := sample[r.Intn(len(sample))]
		ab, ba := Compare(a, b), Compare(b, a)
		if ab != -ba {
			t.Fatalf("antisymmetry: Compare(%v,%v)=%d, Compare(%v,%v)=%d", a, b, ab, b, a, ba)
		}
		if (ab == 0) != (a == b) {
			t.Fatalf("equality consistency: %v vs %v", a, b)
		}
		if ab <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v ≤ %v ≤ %v but %v > %v", a, b, c, a, c)
		}
		if Less(a, b) != (ab < 0) {
			t.Fatal("Less inconsistent with Compare")
		}
	}
}

// Tuple.Compare must agree with key-encoding equality.
func TestTupleCompareConsistentWithKeys(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		a, b := randomTuple(r), randomTuple(r)
		if (a.Compare(b) == 0) != (a.Key() == b.Key()) {
			t.Fatalf("compare/key disagreement: %v vs %v", a, b)
		}
	}
}
