package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	if Int(5).Kind() != KindInt || String("x").Kind() != KindString || Null(1).Kind() != KindNull {
		t.Fatal("kind mismatch")
	}
	if !Null(3).IsNull() || Int(0).IsNull() || String("").IsNull() {
		t.Fatal("IsNull mismatch")
	}
}

func TestAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 {
		t.Fatal("AsInt")
	}
	if String("hi").AsString() != "hi" {
		t.Fatal("AsString")
	}
	if Null(7).NullID() != 7 {
		t.Fatal("NullID")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Int(1).AsString() },
		func() { String("a").AsInt() },
		func() { Int(1).NullID() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestValueEquality(t *testing.T) {
	if Int(1) != Int(1) || Int(1) == Int(2) {
		t.Fatal("int equality")
	}
	if String("a") != String("a") || String("a") == String("b") {
		t.Fatal("string equality")
	}
	if Null(1) != Null(1) || Null(1) == Null(2) {
		t.Fatal("null equality")
	}
	// Cross-kind values never compare equal, even with same payload slot.
	if Int(1) == Null(1) {
		t.Fatal("int vs null")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"42":      Int(42),
		"-3":      Int(-3),
		"abc":     String("abc"),
		`"a b"`:   String("a b"),
		`""`:      String(""),
		"⊥9":      Null(9),
		`"x,y"`:   String("x,y"),
		`"par()"`: String("par()"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	ordered := []Value{Int(-5), Int(0), Int(9), String(""), String("a"), String("b"), Null(1), Null(2)}
	for i := range ordered {
		for j := range ordered {
			c := Compare(ordered[i], ordered[j])
			switch {
			case i < j && c >= 0:
				t.Errorf("Compare(%v,%v)=%d, want <0", ordered[i], ordered[j], c)
			case i == j && c != 0:
				t.Errorf("Compare(%v,%v)=%d, want 0", ordered[i], ordered[j], c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v,%v)=%d, want >0", ordered[i], ordered[j], c)
			}
		}
	}
}

func TestTupleBasics(t *testing.T) {
	tp := Tuple{Int(1), String("x"), Null(2)}
	cl := tp.Clone()
	if !tp.Equal(cl) {
		t.Fatal("clone not equal")
	}
	cl[0] = Int(9)
	if tp.Equal(cl) {
		t.Fatal("clone aliases original")
	}
	if !tp.HasNull() {
		t.Fatal("HasNull false")
	}
	if (Tuple{Int(1)}).HasNull() {
		t.Fatal("HasNull true on null-free tuple")
	}
	if tp.Equal(Tuple{Int(1), String("x")}) {
		t.Fatal("arity mismatch equal")
	}
	if got := tp.String(); got != "(1, x, ⊥2)" {
		t.Fatalf("String = %q", got)
	}
}

func TestTupleCompare(t *testing.T) {
	a := Tuple{Int(1), Int(2)}
	b := Tuple{Int(1), Int(3)}
	short := Tuple{Int(1)}
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Fatal("tuple compare")
	}
	if short.Compare(a) >= 0 || a.Compare(short) <= 0 {
		t.Fatal("prefix compare")
	}
}

func randomValue(r *rand.Rand) Value {
	switch r.Intn(3) {
	case 0:
		return Int(r.Int63n(1000) - 500)
	case 1:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return String(string(b))
	default:
		return Null(r.Int63n(100) + 1)
	}
}

func randomTuple(r *rand.Rand) Tuple {
	t := make(Tuple, r.Intn(6))
	for i := range t {
		t[i] = randomValue(r)
	}
	return t
}

// Property: EncodeKey is injective (round-trips through DecodeTuple).
func TestEncodeKeyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		tp := randomTuple(r)
		got, err := DecodeTuple(tp.Key())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !tp.Equal(got) && !(len(tp) == 0 && len(got) == 0) {
			t.Fatalf("round-trip mismatch: %v vs %v", tp, got)
		}
		if tp.EncodedLen() != len(tp.Key()) {
			t.Fatalf("EncodedLen %d != key len %d", tp.EncodedLen(), len(tp.Key()))
		}
	}
}

// Property: distinct tuples get distinct keys.
func TestEncodeKeyInjective(t *testing.T) {
	f := func(a, b []int64) bool {
		ta := make(Tuple, len(a))
		for i, v := range a {
			ta[i] = Int(v)
		}
		tb := make(Tuple, len(b))
		for i, v := range b {
			tb[i] = Int(v)
		}
		if ta.Equal(tb) {
			return ta.Key() == tb.Key()
		}
		return ta.Key() != tb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	bad := []string{
		"\x00\x01\x02",           // truncated int
		"\x01\x00\x00",           // truncated string length
		"\x01\x00\x00\x00\x05ab", // truncated string payload
		"\x07",                   // bad kind byte
	}
	for _, s := range bad {
		if _, err := DecodeTuple(s); err == nil {
			t.Errorf("DecodeTuple(%q) succeeded, want error", s)
		}
	}
}

// Strings embedding separators must not collide with adjacent values.
func TestEncodeKeyNoSeparatorCollision(t *testing.T) {
	a := Tuple{String("ab"), String("c")}
	b := Tuple{String("a"), String("bc")}
	if a.Key() == b.Key() {
		t.Fatal("separator collision")
	}
}

func TestSkolemInterning(t *testing.T) {
	st := NewSkolemTable()
	n1 := st.Apply("f", Tuple{Int(1), String("x")})
	n2 := st.Apply("f", Tuple{Int(1), String("x")})
	n3 := st.Apply("f", Tuple{Int(2), String("x")})
	n4 := st.Apply("g", Tuple{Int(1), String("x")})
	if n1 != n2 {
		t.Fatal("same term interned twice")
	}
	if n1 == n3 || n1 == n4 || n3 == n4 {
		t.Fatal("distinct terms collided")
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
}

func TestSkolemResolveDescribe(t *testing.T) {
	st := NewSkolemTable()
	inner := st.Apply("f_m3_c", Tuple{Int(5)})
	outer := st.Apply("g", Tuple{inner, String("s")})
	fn, args, ok := st.Resolve(outer.NullID())
	if !ok || fn != "g" || len(args) != 2 {
		t.Fatalf("Resolve = %q %v %v", fn, args, ok)
	}
	if got := st.Describe(outer); got != `g(f_m3_c(5),s)` {
		t.Fatalf("Describe = %q", got)
	}
	if _, _, ok := st.Resolve(999); ok {
		t.Fatal("Resolve of unknown id succeeded")
	}
	if got := st.Describe(Int(7)); got != "7" {
		t.Fatalf("Describe(int) = %q", got)
	}
}

func TestSkolemFunctions(t *testing.T) {
	st := NewSkolemTable()
	st.Apply("b", Tuple{})
	st.Apply("a", Tuple{Int(1)})
	st.Apply("b", Tuple{Int(2)})
	want := []string{"a", "b"}
	if got := st.Functions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Functions = %v", got)
	}
}

func TestSkolemConcurrent(t *testing.T) {
	st := NewSkolemTable()
	done := make(chan Value, 64)
	for i := 0; i < 64; i++ {
		go func(i int) {
			done <- st.Apply("f", Tuple{Int(int64(i % 4))})
		}(i)
	}
	ids := make(map[Value]bool)
	for i := 0; i < 64; i++ {
		ids[<-done] = true
	}
	if len(ids) != 4 {
		t.Fatalf("got %d distinct nulls, want 4", len(ids))
	}
	if st.Len() != 4 {
		t.Fatalf("Len = %d, want 4", st.Len())
	}
}

func TestSkolemArgsDefensiveCopy(t *testing.T) {
	st := NewSkolemTable()
	args := Tuple{Int(1)}
	st.Apply("f", args)
	args[0] = Int(99) // mutate caller slice; interner must hold a copy
	_, resolved, _ := st.Resolve(1)
	if resolved[0] != Int(1) {
		t.Fatal("interner aliases caller args")
	}
}
