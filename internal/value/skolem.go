package value

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// SkolemTable interns Skolem terms f(v1,…,vk) into labeled-null ids.
// Interning makes labeled-null equality exactly term equality, which is
// what datalog-with-Skolem-functions evaluation requires (paper §4.1.1):
// "two placeholder values will be the same if and only if they were
// generated with the same Skolem function with the same arguments".
//
// A SkolemTable is safe for concurrent use.
type SkolemTable struct {
	mu    sync.RWMutex
	byKey map[string]int64
	terms []skolemTerm // index = id-1 (ids start at 1)
}

type skolemTerm struct {
	fn   string
	args Tuple
}

// NewSkolemTable returns an empty interner. Ids start at 1 so that the
// zero Value is never a valid labeled null.
func NewSkolemTable() *SkolemTable {
	return &SkolemTable{byKey: make(map[string]int64)}
}

// Apply interns the Skolem term fn(args…) and returns its labeled null.
// Repeated calls with the same function name and arguments return the same
// null; Skolem arguments may themselves be labeled nulls.
func (st *SkolemTable) Apply(fn string, args Tuple) Value {
	v, _ := st.ApplyBuf(fn, args, nil)
	return v
}

// ApplyBuf is Apply with a caller-supplied scratch buffer for the term's
// key encoding, returning the (possibly grown) buffer for reuse. Hot
// loops thread a per-worker buffer through it so the already-interned
// path allocates nothing regardless of key size.
func (st *SkolemTable) ApplyBuf(fn string, args Tuple, buf []byte) (Value, []byte) {
	key := appendSkolemKey(buf[:0], fn, args)

	st.mu.RLock()
	id, ok := st.byKey[string(key)]
	st.mu.RUnlock()
	if ok {
		return Null(id), key
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok = st.byKey[string(key)]; ok {
		return Null(id), key
	}
	st.terms = append(st.terms, skolemTerm{fn: fn, args: args.Clone()})
	id = int64(len(st.terms))
	st.byKey[string(key)] = id
	return Null(id), key
}

// Lookup returns the labeled null previously interned for fn(args…)
// without interning on a miss. A missing term cannot equal any value
// already stored in a relation, so body-side Skolem equality checks use
// Lookup — it keeps read-heavy evaluation from growing the table (and
// from taking its write lock).
func (st *SkolemTable) Lookup(fn string, args Tuple) (Value, bool) {
	v, _, ok := st.LookupBuf(fn, args, nil)
	return v, ok
}

// LookupBuf is Lookup with a caller-supplied scratch buffer, returning
// the (possibly grown) buffer for reuse.
func (st *SkolemTable) LookupBuf(fn string, args Tuple, buf []byte) (Value, []byte, bool) {
	key := appendSkolemKey(buf[:0], fn, args)
	st.mu.RLock()
	id, ok := st.byKey[string(key)]
	st.mu.RUnlock()
	if !ok {
		return Value{}, key, false
	}
	return Null(id), key, true
}

func appendSkolemKey(b []byte, fn string, args Tuple) []byte {
	b = append(b, fn...)
	b = append(b, 0)
	return args.EncodeKey(b)
}

// Resolve returns the Skolem function name and arguments that produced the
// labeled null with the given id, for provenance display. The second
// result is false if the id is unknown.
func (st *SkolemTable) Resolve(id int64) (fn string, args Tuple, ok bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if id < 1 || id > int64(len(st.terms)) {
		return "", nil, false
	}
	t := st.terms[id-1]
	return t.fn, t.args, true
}

// Describe renders a labeled null as its originating Skolem term, e.g.
// "f_m3_c(5)". Non-null values render via Value.String.
func (st *SkolemTable) Describe(v Value) string {
	if !v.IsNull() {
		return v.String()
	}
	fn, args, ok := st.Resolve(v.NullID())
	if !ok {
		return v.String()
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = st.Describe(a)
	}
	return fmt.Sprintf("%s(%s)", fn, strings.Join(parts, ","))
}

// Len reports how many distinct Skolem terms have been interned.
func (st *SkolemTable) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.terms)
}

// Functions returns the sorted set of Skolem function names seen so far.
func (st *SkolemTable) Functions() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	seen := make(map[string]bool)
	for _, t := range st.terms {
		seen[t.fn] = true
	}
	out := make([]string, 0, len(seen))
	for fn := range seen {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}
