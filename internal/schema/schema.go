// Package schema models relation signatures and peer schemas for a CDSS.
// Following the paper (§2), every peer owns a relational schema that is
// disjoint from all other peers' schemas; mappings relate relations across
// peers.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Type is a loose column type annotation. The engine is dynamically typed
// (values carry their own kind); column types document intent and let the
// workload generator and spec parser validate constants.
type Type uint8

const (
	// TypeAny accepts any value kind.
	TypeAny Type = iota
	// TypeInt expects integer values.
	TypeInt
	// TypeString expects string values.
	TypeString
)

func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeString:
		return "string"
	default:
		return "any"
	}
}

// ParseType parses "int", "string", or "any".
func ParseType(s string) (Type, error) {
	switch strings.ToLower(s) {
	case "int":
		return TypeInt, nil
	case "string", "str":
		return TypeString, nil
	case "any", "":
		return TypeAny, nil
	}
	return TypeAny, fmt.Errorf("schema: unknown type %q", s)
}

// Column is a named, typed relation attribute.
type Column struct {
	Name string
	Type Type
}

// Relation is a relation signature: a name and ordered columns.
type Relation struct {
	Name string
	Cols []Column
	// Peer is the owning peer's name, or "" for internal relations.
	Peer string
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Cols) }

// ColIndex returns the position of the named column, or -1.
func (r *Relation) ColIndex(name string) int {
	for i, c := range r.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// String renders "Name(col type, …)".
func (r *Relation) String() string {
	parts := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return fmt.Sprintf("%s(%s)", r.Name, strings.Join(parts, ", "))
}

// Schema is an ordered collection of relation signatures.
type Schema struct {
	byName map[string]*Relation
	order  []string
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{byName: make(map[string]*Relation)}
}

// Add registers a relation. It returns an error on duplicate names.
func (s *Schema) Add(r *Relation) error {
	if r.Name == "" {
		return fmt.Errorf("schema: relation with empty name")
	}
	if _, dup := s.byName[r.Name]; dup {
		return fmt.Errorf("schema: duplicate relation %q", r.Name)
	}
	s.byName[r.Name] = r
	s.order = append(s.order, r.Name)
	return nil
}

// Lookup returns the relation with the given name, or nil.
func (s *Schema) Lookup(name string) *Relation { return s.byName[name] }

// Relations returns all relations in registration order.
func (s *Schema) Relations() []*Relation {
	out := make([]*Relation, len(s.order))
	for i, n := range s.order {
		out[i] = s.byName[n]
	}
	return out
}

// Names returns all relation names in registration order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Len returns the number of relations.
func (s *Schema) Len() int { return len(s.order) }

// Peer is an autonomous participant: a name plus its user-level schema.
type Peer struct {
	Name   string
	Schema *Schema
}

// NewPeer returns a peer with an empty schema.
func NewPeer(name string) *Peer {
	return &Peer{Name: name, Schema: New()}
}

// AddRelation registers a relation under this peer, stamping Peer.
func (p *Peer) AddRelation(name string, cols ...Column) (*Relation, error) {
	r := &Relation{Name: name, Cols: cols, Peer: p.Name}
	if err := p.Schema.Add(r); err != nil {
		return nil, err
	}
	return r, nil
}

// Universe is the union Σ of all peer schemas (paper notation). Relation
// names must be globally unique across peers.
type Universe struct {
	peers  map[string]*Peer
	order  []string
	byName map[string]*Relation
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{peers: make(map[string]*Peer), byName: make(map[string]*Relation)}
}

// AddPeer registers a peer and all its relations. It returns an error on
// duplicate peer names or relation-name collisions across peers.
func (u *Universe) AddPeer(p *Peer) error {
	if _, dup := u.peers[p.Name]; dup {
		return fmt.Errorf("schema: duplicate peer %q", p.Name)
	}
	for _, r := range p.Schema.Relations() {
		if prev, dup := u.byName[r.Name]; dup {
			return fmt.Errorf("schema: relation %q of peer %q collides with peer %q", r.Name, p.Name, prev.Peer)
		}
	}
	u.peers[p.Name] = p
	u.order = append(u.order, p.Name)
	for _, r := range p.Schema.Relations() {
		u.byName[r.Name] = r
	}
	return nil
}

// Peer returns the named peer, or nil.
func (u *Universe) Peer(name string) *Peer { return u.peers[name] }

// Peers returns all peers in registration order.
func (u *Universe) Peers() []*Peer {
	out := make([]*Peer, len(u.order))
	for i, n := range u.order {
		out[i] = u.peers[n]
	}
	return out
}

// Relation resolves a relation name anywhere in the universe, or nil.
func (u *Universe) Relation(name string) *Relation { return u.byName[name] }

// Relations returns every relation in the universe, grouped by peer order.
func (u *Universe) Relations() []*Relation {
	var out []*Relation
	for _, pn := range u.order {
		out = append(out, u.peers[pn].Schema.Relations()...)
	}
	return out
}

// RelationNames returns every relation name, sorted, for deterministic
// iteration in tests and display.
func (u *Universe) RelationNames() []string {
	out := make([]string, 0, len(u.byName))
	for n := range u.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
