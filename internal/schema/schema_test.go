package schema

import (
	"strings"
	"testing"
)

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"int": TypeInt, "string": TypeString, "str": TypeString,
		"any": TypeAny, "": TypeAny, "INT": TypeInt, "String": TypeString,
	}
	for in, want := range cases {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseType("floop"); err == nil {
		t.Fatal("bad type accepted")
	}
	if TypeInt.String() != "int" || TypeString.String() != "string" || TypeAny.String() != "any" {
		t.Fatal("Type.String")
	}
}

func TestRelation(t *testing.T) {
	r := &Relation{Name: "G", Cols: []Column{
		{Name: "id", Type: TypeInt},
		{Name: "nam", Type: TypeString},
	}, Peer: "P"}
	if r.Arity() != 2 {
		t.Fatal("arity")
	}
	if r.ColIndex("nam") != 1 || r.ColIndex("zzz") != -1 {
		t.Fatal("ColIndex")
	}
	s := r.String()
	if !strings.Contains(s, "G(") || !strings.Contains(s, "id int") || !strings.Contains(s, "nam string") {
		t.Fatalf("String = %q", s)
	}
}

func TestSchemaAddLookup(t *testing.T) {
	s := New()
	if err := s.Add(&Relation{Name: "A", Cols: []Column{{Name: "x"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Relation{Name: "A"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := s.Add(&Relation{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if s.Lookup("A") == nil || s.Lookup("B") != nil {
		t.Fatal("Lookup")
	}
	s.Add(&Relation{Name: "B", Cols: []Column{{Name: "y"}}})
	if s.Len() != 2 {
		t.Fatal("Len")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("Names = %v (registration order expected)", names)
	}
	rels := s.Relations()
	if len(rels) != 2 || rels[0].Name != "A" {
		t.Fatal("Relations")
	}
}

func TestPeerAddRelation(t *testing.T) {
	p := NewPeer("P")
	r, err := p.AddRelation("R", Column{Name: "x", Type: TypeInt})
	if err != nil {
		t.Fatal(err)
	}
	if r.Peer != "P" {
		t.Fatal("peer not stamped")
	}
	if _, err := p.AddRelation("R"); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestUniverse(t *testing.T) {
	u := NewUniverse()
	p := NewPeer("P")
	p.AddRelation("A", Column{Name: "x"})
	q := NewPeer("Q")
	q.AddRelation("B", Column{Name: "y"})
	if err := u.AddPeer(p); err != nil {
		t.Fatal(err)
	}
	if err := u.AddPeer(q); err != nil {
		t.Fatal(err)
	}
	// Duplicate peer name.
	if err := u.AddPeer(NewPeer("P")); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	// Relation-name collision across peers.
	r := NewPeer("R")
	r.AddRelation("A", Column{Name: "z"})
	if err := u.AddPeer(r); err == nil {
		t.Fatal("relation collision accepted")
	}
	if u.Peer("P") == nil || u.Peer("Z") != nil {
		t.Fatal("Peer lookup")
	}
	if u.Relation("B") == nil || u.Relation("B").Peer != "Q" {
		t.Fatal("Relation lookup")
	}
	if len(u.Peers()) != 2 || u.Peers()[0].Name != "P" {
		t.Fatal("Peers order")
	}
	if len(u.Relations()) != 2 {
		t.Fatal("Relations")
	}
	names := u.RelationNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("RelationNames = %v (sorted expected)", names)
	}
}

func TestUniverseCollisionLeavesStateClean(t *testing.T) {
	u := NewUniverse()
	p := NewPeer("P")
	p.AddRelation("A", Column{Name: "x"})
	u.AddPeer(p)
	bad := NewPeer("Q")
	bad.AddRelation("A", Column{Name: "y"})
	if err := u.AddPeer(bad); err == nil {
		t.Fatal("collision accepted")
	}
	// Q must not be half-registered.
	if u.Peer("Q") != nil {
		t.Fatal("failed peer registered")
	}
	if u.Relation("A").Peer != "P" {
		t.Fatal("relation ownership corrupted")
	}
}
