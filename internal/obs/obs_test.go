package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	c.Add(0)  // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same instrument.
	if again := r.Counter("requests_total", "Requests served."); again != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestGaugeSetAddValue(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth", "Depth.")
	g.Set(3)
	g.Add(2.5)
	g.Add(-1)
	if got := g.Value(); got != 4.5 {
		t.Fatalf("gauge = %v, want 4.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", []float64{1})
	r.GaugeFunc("w", "", func() float64 { return 1 })
	// All emission on nil instruments must be no-ops, not panics.
	c.Inc()
	c.Add(10)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments should read zero")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry render: %v", err)
	}

	var tr *Tracer
	tr.Add(StartPass("exchange"))
	if tr.Last(5) != nil || tr.Count() != 0 {
		t.Fatal("nil tracer should be inert")
	}
	var p *PassTrace
	p.AddView(ViewPass{})
	if p.Finish(nil) != nil || p.SpanTree() != nil {
		t.Fatal("nil pass trace should be inert")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("sum = %v, want 106", got)
	}
	// Bucket occupancy: <=1 gets 0.5 and 1; <=2 gets 1.5; <=4 gets 3;
	// overflow gets 100.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(1, 1, 4) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("ExpBuckets accepted invalid arguments")
				}
			}()
			bad()
		}()
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("orchestra_requests_total", "Requests.", L("path", "/metrics")).Add(7)
	r.Gauge("orchestra_bus_lag", "Lag.", L("view", "p1")).Set(3)
	r.GaugeFunc("orchestra_up", "Up.", func() float64 { return 1 })
	h := r.Histogram("orchestra_pass_seconds", "Pass latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP orchestra_requests_total Requests.\n",
		"# TYPE orchestra_requests_total counter\n",
		`orchestra_requests_total{path="/metrics"} 7` + "\n",
		"# TYPE orchestra_bus_lag gauge\n",
		`orchestra_bus_lag{view="p1"} 3` + "\n",
		"orchestra_up 1\n",
		"# TYPE orchestra_pass_seconds histogram\n",
		`orchestra_pass_seconds_bucket{le="0.1"} 1` + "\n",
		`orchestra_pass_seconds_bucket{le="1"} 2` + "\n",
		`orchestra_pass_seconds_bucket{le="+Inf"} 3` + "\n",
		"orchestra_pass_seconds_sum 5.55\n",
		"orchestra_pass_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q\n---\n%s", want, out)
		}
	}
	// Deterministic: a second scrape is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("successive scrapes differ")
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help with \\ and\nnewline", L("k", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP m help with \\ and\nnewline`) {
		t.Fatalf("help not escaped: %s", out)
	}
	if !strings.Contains(out, `m{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped: %s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:            "1",
		0.5:          "0.5",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		math.NaN():   "NaN",
		1.25e9:       "1.25e+09",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestConcurrentEmission(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", []float64{1, 10})
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 20))
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Add(StartPass("exchange"))
	}
	if tr.Count() != 5 {
		t.Fatalf("count = %d, want 5", tr.Count())
	}
	last := tr.Last(10)
	if len(last) != 3 {
		t.Fatalf("ring kept %d, want 3", len(last))
	}
	// Newest first: seq 5, 4, 3.
	for i, want := range []uint64{5, 4, 3} {
		if last[i].Seq != want {
			t.Fatalf("last[%d].Seq = %d, want %d", i, last[i].Seq, want)
		}
	}
	if one := tr.Last(1); len(one) != 1 || one[0].Seq != 5 {
		t.Fatalf("Last(1) = %+v, want seq 5", one)
	}
}

func TestPassTraceSpanTree(t *testing.T) {
	p := StartPass("exchange_all")
	p.AddView(ViewPass{
		Owner: "p1", WallNS: 1000,
		FetchNS: 100, NetEffectNS: 200, DeleteNS: 300, InsertNS: 400,
		Publications: 2, EditsIn: 10, EditsCancelled: 4,
		TuplesDeleted: 3, CheckpointNS: 50,
	})
	p.AddView(ViewPass{Owner: "", WallNS: 500})
	tr := NewTracer(4)
	p.Finish(tr)
	if p.Seq != 1 {
		t.Fatalf("seq = %d, want 1", p.Seq)
	}
	if p.WallNS <= 0 {
		t.Fatal("wall clock not stamped")
	}

	root := p.SpanTree()
	if root.Name != "pass:exchange_all" {
		t.Fatalf("root name = %q", root.Name)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	v := root.Children[0]
	if v.Name != "view:p1" || v.DurationNS != 1000 {
		t.Fatalf("view span = %q/%d", v.Name, v.DurationNS)
	}
	// fetch, net_effect, delete, insert, checkpoint.
	if len(v.Children) != 5 {
		t.Fatalf("view has %d phase spans, want 5", len(v.Children))
	}
	var phaseSum int64
	for _, ph := range v.Children {
		phaseSum += ph.DurationNS
	}
	if phaseSum != 1050 {
		t.Fatalf("phase sum = %d, want 1050", phaseSum)
	}
	if root.Children[1].Name != "view:(global)" {
		t.Fatalf("global view name = %q", root.Children[1].Name)
	}
	if len(root.Children[1].Children) != 4 {
		t.Fatal("no-checkpoint view should have 4 phase spans")
	}
}

func TestObservabilityBundle(t *testing.T) {
	var o *Observability
	if o.Registry() != nil || o.Tracer() != nil {
		t.Fatal("nil bundle should return nil halves")
	}
	o = NewObservability(0)
	if o.Registry() == nil || o.Tracer() == nil {
		t.Fatal("bundle halves missing")
	}
	o.Registry().Counter("x", "").Inc()
	o.Tracer().Add(StartPass("exchange"))
	if o.Tracer().Count() != 1 {
		t.Fatal("tracer not wired")
	}
}
