package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// processStart anchors the uptime gauges. Package init runs before any
// registry exists, so every Observability in the process agrees on it.
var processStart = time.Now()

// buildVersion resolves the module version stamped into the binary, or
// "devel" for unstamped builds (go run, test binaries).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// registerBuildInfo adds the process-identity series every registry
// carries: orchestra_build_info (constant 1, with the build identified
// by labels — the Prometheus convention for joining version metadata
// onto any other series), the process start time, and a live uptime
// gauge. Registration is idempotent, like all registry registration.
func registerBuildInfo(r *Registry) {
	r.Gauge("orchestra_build_info",
		"Build identity; constant 1 with version labels.",
		L("version", buildVersion()), L("go_version", runtime.Version())).Set(1)
	r.GaugeFunc("orchestra_process_start_time_seconds",
		"Unix time the process started.",
		func() float64 { return float64(processStart.UnixNano()) / 1e9 })
	r.GaugeFunc("orchestra_process_uptime_seconds",
		"Seconds since the process started.",
		func() float64 { return time.Since(processStart).Seconds() })
}
