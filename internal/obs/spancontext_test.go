package obs

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if !sc.Valid() {
		t.Fatalf("freshly minted span context invalid: %+v", sc)
	}
	got, ok := ParseTraceparent(sc.Traceparent())
	if !ok || got != sc {
		t.Fatalf("round trip: parsed %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	cases := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase hex
		"00-4bf92f3577b34da6-00f067aa0ba902b7-01",                 // short trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba9-01",     // short span id
		"00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex
	}
	for _, in := range cases {
		if sc, ok := ParseTraceparent(in); ok {
			t.Errorf("ParseTraceparent(%q) accepted as %+v", in, sc)
		}
	}
}

func TestEnsureSpanAndContext(t *testing.T) {
	ctx := context.Background()
	if id := TraceIDFromContext(ctx); id != "" {
		t.Fatalf("empty context has trace id %q", id)
	}
	ctx1, sc1 := EnsureSpan(ctx)
	if !sc1.Valid() {
		t.Fatalf("EnsureSpan minted invalid context %+v", sc1)
	}
	if got, ok := SpanFromContext(ctx1); !ok || got != sc1 {
		t.Fatalf("SpanFromContext = %+v ok=%v, want %+v", got, ok, sc1)
	}
	// Idempotent: a second EnsureSpan keeps the existing span.
	ctx2, sc2 := EnsureSpan(ctx1)
	if sc2 != sc1 || ctx2 != ctx1 {
		t.Fatalf("EnsureSpan re-minted: %+v vs %+v", sc2, sc1)
	}
	if id := TraceIDFromContext(ctx1); id != sc1.TraceID {
		t.Fatalf("TraceIDFromContext = %q, want %q", id, sc1.TraceID)
	}
}

func TestPubTracerRing(t *testing.T) {
	tr := NewPubTracer(4)
	for i := 0; i < 6; i++ {
		tr.Add(PubRecord{TraceID: fmt.Sprintf("t%d", i), Cursor: i + 1})
	}
	// Capacity 4: t0 and t1 were evicted.
	if r := tr.Find("t1"); r != nil {
		t.Fatalf("evicted record still found: %+v", r)
	}
	if r := tr.Find("t5"); r == nil || r.Cursor != 6 {
		t.Fatalf("Find(t5) = %+v, want cursor 6", r)
	}
	// Last(n) is newest-first and caps at the retained count.
	last := tr.Last(10)
	if len(last) != 4 || last[0].TraceID != "t5" || last[3].TraceID != "t2" {
		t.Fatalf("Last(10) = %+v", last)
	}
	if got := tr.Last(2); len(got) != 2 || got[0].TraceID != "t5" {
		t.Fatalf("Last(2) = %+v", got)
	}
	// Nil receiver is inert.
	var nilTr *PubTracer
	nilTr.Add(PubRecord{})
	if nilTr.Find("x") != nil || nilTr.Last(1) != nil {
		t.Fatal("nil PubTracer not inert")
	}
}

func TestSlowQueryRing(t *testing.T) {
	ring := NewSlowQueryRing(3)
	for i := 0; i < 5; i++ {
		ring.Add(QueryStats{Query: fmt.Sprintf("q%d", i), WallNS: int64(i)})
	}
	// Count is total-ever-seen, not retained.
	if n := ring.Count(); n != 5 {
		t.Fatalf("Count = %d, want 5", n)
	}
	last := ring.Last(10)
	if len(last) != 3 || last[0].Query != "q4" || last[2].Query != "q2" {
		t.Fatalf("Last(10) = %+v", last)
	}
	var nilRing *SlowQueryRing
	nilRing.Add(QueryStats{})
	if nilRing.Last(1) != nil || nilRing.Count() != 0 {
		t.Fatal("nil SlowQueryRing not inert")
	}
}

// TestPromEscapingTable drives the exposition escapers through the
// characters the Prometheus text format reserves, including the
// fast-path (no escapes needed) branch.
func TestPromEscapingTable(t *testing.T) {
	cases := []struct {
		in, label, help string
	}{
		{`plain`, `plain`, `plain`},
		{``, ``, ``},
		{`back\slash`, `back\\slash`, `back\\slash`},
		{"line\nbreak", `line\nbreak`, `line\nbreak`},
		{`say "hi"`, `say \"hi\"`, `say "hi"`}, // quotes only escape in labels
		{"all\\three\n\"x\"", `all\\three\n\"x\"`, "all\\\\three\\n\"x\""},
	}
	for _, tc := range cases {
		if got := escapeLabel(tc.in); got != tc.label {
			t.Errorf("escapeLabel(%q) = %q, want %q", tc.in, got, tc.label)
		}
		if got := escapeHelp(tc.in); got != tc.help {
			t.Errorf("escapeHelp(%q) = %q, want %q", tc.in, got, tc.help)
		}
	}
}

// TestPromEscapingEndToEnd proves an adversarial label value cannot
// break series parsing in a full scrape.
func TestPromEscapingEndToEnd(t *testing.T) {
	r := NewRegistry()
	r.Counter("evil", "tracks \"strange\" values\nsecond line",
		L("q", "ans(x) :- R(\"a\\b\",\nx)")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Count(line, "\n") != 0 {
			t.Fatalf("physical line contains raw newline: %q", line)
		}
	}
	if !strings.Contains(out, `evil{q="ans(x) :- R(\"a\\b\",\nx)"} 1`) {
		t.Fatalf("escaped series missing:\n%s", out)
	}
}
