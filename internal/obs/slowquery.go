package obs

import (
	"sync"
	"time"
)

// QueryDep pins one body relation's generation at evaluation time — the
// read path's cache-validity witness, surfaced so a slow-query record
// shows exactly which table states the answer was computed against.
type QueryDep struct {
	Rel string `json:"rel"`
	Gen uint64 `json:"gen"`
}

// QueryStats is the per-query span: one record per executed query with
// the phase breakdown the read path measures (parse, cache probe, plan,
// eval), the cache outcome, the rows returned, and — for queries over
// the slow threshold — the rendered physical plan and dependency pins.
type QueryStats struct {
	Query   string     `json:"query"`
	Outcome string     `json:"outcome"` // "hit", "miss", or "uncached"
	Start   time.Time  `json:"start"`
	ParseNS int64      `json:"parse_ns"`
	CacheNS int64      `json:"cache_ns"`
	PlanNS  int64      `json:"plan_ns"`
	EvalNS  int64      `json:"eval_ns"`
	WallNS  int64      `json:"wall_ns"`
	Rows    int        `json:"rows"`
	Deps    []QueryDep `json:"deps,omitempty"`
	Plan    string     `json:"plan,omitempty"`
}

// SlowQueryRing is a bounded ring of queries that exceeded the slow
// threshold, newest-first on read — the data behind orchestrad's
// /debug/slowqueries. Add and Last lock; they run once per slow query
// and once per debug request, and locksafe keeps them out of System.mu
// critical sections. All methods are nil-safe.
type SlowQueryRing struct {
	mu   sync.Mutex
	ring []QueryStats
	next int
	n    int
	seen uint64
}

// NewSlowQueryRing returns a ring retaining the last capacity slow
// queries (minimum 1).
func NewSlowQueryRing(capacity int) *SlowQueryRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowQueryRing{ring: make([]QueryStats, capacity)}
}

// Add records one slow query.
func (r *SlowQueryRing) Add(st QueryStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seen++
	r.ring[r.next] = st
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
}

// Last returns up to n of the most recent slow queries, newest first.
func (r *SlowQueryRing) Last(n int) []QueryStats {
	if r == nil || n < 1 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.n {
		n = r.n
	}
	out := make([]QueryStats, 0, n)
	for i := 1; i <= n; i++ {
		idx := (r.next - i + len(r.ring)) % len(r.ring)
		out = append(out, r.ring[idx])
	}
	return out
}

// Count reports how many slow queries have ever been recorded.
func (r *SlowQueryRing) Count() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}
