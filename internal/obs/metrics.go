// Package obs is the dependency-free observability layer: a metrics
// registry (counters, gauges, histograms with fixed exponential
// buckets) rendered in the Prometheus text exposition format, and
// structured per-pass exchange tracing (trace.go).
//
// The design splits registration from emission. Registration — looking
// up or creating a series under the registry lock — happens once, at
// component construction time, and hands back a typed instrument
// handle. Emission — Counter.Add, Gauge.Set, Histogram.Observe — is a
// handful of atomic operations on that handle: no locks, no maps, no
// allocation, so instrumented hot paths (exchange passes, log appends,
// semi-naive rounds) pay nanoseconds whether or not anything ever
// scrapes the registry. Every emission method is additionally nil-safe:
// a nil instrument is a no-op, so code paths are instrumented
// unconditionally and pay nothing when observability is off.
//
// The locksafe analyzer enforces the other half of the contract:
// registration and rendering (which do lock and allocate) are on its
// blocking-call list and may not run inside orchestra.System.mu
// critical sections; emission may.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value pair attached to a series. Series identity is
// (name, sorted labels).
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing series. The zero value is
// usable; emission on a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down. The zero value is usable;
// emission on a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-exponential-bucket distribution. Observe is
// lock-free: a binary search over the (immutable) bucket bounds plus
// three atomic adds. The zero value is NOT usable — histograms carry
// their bucket layout — but emission on a nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

// ExpBuckets builds n exponential upper bounds: start, start*factor,
// start*factor², … — the fixed layouts the registry's histograms use.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	cur := start
	for i := range out {
		out[i] = cur
		cur *= factor
	}
	return out
}

// DurationBuckets is the default layout for operation latencies:
// 20 exponential buckets from 10µs to ~5.2s (factor 2), in seconds.
func DurationBuckets() []float64 { return ExpBuckets(10e-6, 2, 20) }

// SizeBuckets is the default layout for byte sizes: 10 exponential
// buckets from 64B to ~16MB (factor 4), in bytes.
func SizeBuckets() []float64 { return ExpBuckets(64, 4, 10) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.buckets) {
		h.buckets[lo].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// metricKind discriminates families for TYPE lines and rendering.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one registered (name, labels) instrument.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds registered metric families. Registration methods are
// idempotent — asking for an already-registered (name, labels) series
// returns the existing instrument — and safe for concurrent use, but
// they lock and allocate: resolve instruments at construction time,
// never on a hot path or while holding orchestra.System.mu (locksafe
// enforces the latter).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// labelsKey canonicalizes a label set (sorted by key).
func labelsKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// lookup finds or creates the family and series slot for (name, labels),
// returning the series and whether it already existed.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) (*series, bool) {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	fam := r.byName[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
	}
	want := labelsKey(sorted)
	for _, s := range fam.series {
		if labelsKey(s.labels) == want {
			return s, true
		}
	}
	s := &series{labels: sorted}
	fam.series = append(fam.series, s)
	return s, false
}

// Counter registers (or returns the existing) counter series. A nil
// *Registry returns a nil instrument, so emission stays a no-op.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.lookup(name, help, kindCounter, labels)
	if !ok {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.lookup(name, help, kindGauge, labels)
	if !ok {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge series whose value is computed at scrape
// time by fn. fn must be safe for concurrent use and non-blocking
// (scrapes call it while holding the registry lock). Re-registering an
// existing (name, labels) replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.lookup(name, help, kindGaugeFunc, labels)
	s.fn = fn
}

// Histogram registers (or returns the existing) histogram series with
// the given ascending bucket upper bounds (see ExpBuckets); a final
// +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.lookup(name, help, kindHistogram, labels)
	if !ok {
		s.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			// buckets[len(bounds)] is the implicit +Inf overflow bucket.
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return s.hist
}
