package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): # HELP / # TYPE lines, then
// one line per series, histograms expanded into cumulative _bucket
// series plus _sum and _count. Families render in registration order,
// series in sorted-label order, so successive scrapes of an unchanged
// registry are byte-identical.
//
// Rendering reads every series under the registry lock (and calls
// GaugeFunc callbacks); it is a scrape-path operation, never a hot-path
// one, and locksafe keeps it out of System.mu critical sections.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fam := range r.families {
		typ := "counter"
		switch fam.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, escapeHelp(fam.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, typ); err != nil {
			return err
		}
		ordered := append([]*series(nil), fam.series...)
		sort.Slice(ordered, func(i, j int) bool {
			return labelsKey(ordered[i].labels) < labelsKey(ordered[j].labels)
		})
		for _, s := range ordered {
			if err := writeSeries(w, fam, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, fam *family, s *series) error {
	switch fam.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", fam.name, renderLabels(s.labels, "", 0), s.ctr.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(s.labels, "", 0), formatFloat(s.gauge.Value()))
		return err
	case kindGaugeFunc:
		v := 0.0
		if s.fn != nil {
			v = s.fn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(s.labels, "", 0), formatFloat(v))
		return err
	case kindHistogram:
		h := s.hist
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, renderLabels(s.labels, "le", bound), cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, renderLabels(s.labels, "le", math.Inf(1)), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, renderLabels(s.labels, "", 0), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.name, renderLabels(s.labels, "", 0), h.Count())
		return err
	}
	return nil
}

// renderLabels renders {k="v",...}; leKey != "" appends the histogram
// le label with the given bound.
func renderLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		if math.IsInf(le, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(le))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest representation, NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Exposition-format escaping (text format 0.0.4): label values escape
// backslash, double quote, and newline; HELP text escapes backslash and
// newline only (quotes are legal there). Query-text labels exercise all
// three classes, so the replacers are package state built once — not
// rebuilt per series on every scrape.
var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	return labelEscaper.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	return helpEscaper.Replace(s)
}
