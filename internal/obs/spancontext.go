package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"time"
)

// SpanContext identifies one publication's journey through the
// confederation. TraceID is minted once, when the publication enters the
// system (System.Publish, or the bus server for publications arriving
// straight over HTTP), and rides along every hop after that: the
// traceparent header on the share protocol, the trailer on durable log
// frames, and the ViewPass records of every exchange pass that consumed
// the publication. SpanID names the current hop so a receiver can tell
// which process handed it the context.
type SpanContext struct {
	TraceID string // 32 lowercase hex chars, non-zero
	SpanID  string // 16 lowercase hex chars, non-zero
}

// Valid reports whether the context carries a well-formed trace id.
func (sc SpanContext) Valid() bool {
	return isHexID(sc.TraceID, 32) && isHexID(sc.SpanID, 16)
}

// Traceparent renders the context in the W3C traceparent shape:
// 00-<trace-id>-<span-id>-01. The version and flag octets are fixed —
// orchestra always samples.
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent decodes a traceparent header. It accepts any version
// octet (per the spec, unknown versions parse by the 00 layout) and
// ignores the flags. ok is false for malformed or all-zero ids.
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 || len(parts[0]) != 2 {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: parts[1], SpanID: parts[2]}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// NewTraceID mints a 128-bit random trace id. crypto/rand never fails on
// the supported platforms; if it somehow does, the id falls back to a
// process-unique counter so publishes never block on entropy.
func NewTraceID() string { return randHex(16) }

// NewSpanID mints a 64-bit random span id.
func NewSpanID() string { return randHex(8) }

var fallbackID struct {
	mu sync.Mutex
	n  uint64
}

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		fallbackID.mu.Lock()
		fallbackID.n++
		v := fallbackID.n
		fallbackID.mu.Unlock()
		for i := n - 1; i >= 0 && v > 0; i-- {
			b[i] = byte(v)
			v >>= 8
		}
		b[0] |= 1 // keep the id non-zero
	}
	return hex.EncodeToString(b)
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sc.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext extracts the span context, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// EnsureSpan returns ctx unchanged when it already carries a valid span
// context, and otherwise mints a fresh trace and attaches it. This is
// the single entry point publishes funnel through, so every publication
// has a trace id by the time it reaches a bus.
func EnsureSpan(ctx context.Context) (context.Context, SpanContext) {
	if sc, ok := SpanFromContext(ctx); ok {
		return ctx, sc
	}
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	return ContextWithSpan(ctx, sc), sc
}

// TraceIDFromContext returns the trace id on ctx, or "".
func TraceIDFromContext(ctx context.Context) string {
	if sc, ok := SpanFromContext(ctx); ok {
		return sc.TraceID
	}
	return ""
}

// PubRecord is the publish-side half of a publication's lineage: when
// the bus accepted it, from whom, how big it was, and how long the
// durable append took. The exchange-side half lives in the ViewPass
// records whose TraceIDs mention the same trace.
type PubRecord struct {
	TraceID  string    `json:"trace_id"`
	Peer     string    `json:"peer"`
	Cursor   int       `json:"cursor"` // bus length after the append
	Start    time.Time `json:"start"`
	Edits    int       `json:"edits"`
	AppendNS int64     `json:"append_ns"` // durable append (persist hook)
	TotalNS  int64     `json:"total_ns"`  // whole accept path
}

// PubTracer is a bounded ring of recent publish records, the analogue of
// Tracer for the write side of the bus. Add, Find, and Last lock — they
// run once per publish and once per debug request, and locksafe keeps
// them out of System.mu critical sections. All methods are nil-safe.
type PubTracer struct {
	mu   sync.Mutex
	ring []PubRecord
	next int
	n    int
}

// NewPubTracer returns a ring retaining the last capacity publishes
// (minimum 1).
func NewPubTracer(capacity int) *PubTracer {
	if capacity < 1 {
		capacity = 1
	}
	return &PubTracer{ring: make([]PubRecord, capacity)}
}

// Add records one accepted publication.
func (t *PubTracer) Add(r PubRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = r
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Find returns the most recent record for the given trace id, or nil.
func (t *PubTracer) Find(traceID string) *PubRecord {
	if t == nil || traceID == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 1; i <= t.n; i++ {
		idx := (t.next - i + len(t.ring)) % len(t.ring)
		if t.ring[idx].TraceID == traceID {
			r := t.ring[idx]
			return &r
		}
	}
	return nil
}

// Last returns up to n of the most recent records, newest first.
func (t *PubTracer) Last(n int) []PubRecord {
	if t == nil || n < 1 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > t.n {
		n = t.n
	}
	out := make([]PubRecord, 0, n)
	for i := 1; i <= n; i++ {
		idx := (t.next - i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}
