package obs

import (
	"strings"
	"sync"
	"time"
)

// PassTrace is the structured trace of one exchange pass — a single
// view's Exchange or a confederation-wide ExchangeAll. It is the unit
// the Tracer's ring buffer stores and the /debug/trace endpoint
// serves. A pass holds one ViewPass per view the pass maintained;
// SpanTree renders the whole thing as a conventional span tree.
//
// All methods are nil-safe, so call sites instrument unconditionally:
// with tracing off they pass a nil *PassTrace around and pay nothing.
type PassTrace struct {
	Seq    uint64     `json:"seq"`
	Kind   string     `json:"kind"` // "exchange" or "exchange_all"
	Start  time.Time  `json:"start"`
	WallNS int64      `json:"wall_ns"`
	Views  []ViewPass `json:"views"`

	mu sync.Mutex // guards Views during a parallel ExchangeAll
}

// ViewPass is one view's slice of a pass: what the exchange consumed,
// what the coalescer cancelled, how long each maintenance phase took,
// and what the engine did. Phase timings (fetch + net-effect + delete +
// insert + checkpoint) account for essentially the whole view wall
// clock; EngineNS is the portion of delete+insert spent inside engine
// fixpoints (it overlaps them, it does not add).
type ViewPass struct {
	Owner  string `json:"view"`
	WallNS int64  `json:"wall_ns"`

	// Bus consumption.
	Publications int   `json:"publications"`
	FetchNS      int64 `json:"fetch_ns"`

	// Coalescing: edits entering NetEffect vs. net base changes left
	// after insert+delete pairs cancelled.
	EditsIn           int     `json:"edits_in"`
	EditsCancelled    int     `json:"edits_cancelled"`
	CancellationRatio float64 `json:"cancellation_ratio"`
	NetEffectNS       int64   `json:"net_effect_ns"`

	// Deletion propagation (provenance cascade / DRed / recompute).
	DeleteNS        int64 `json:"delete_ns"`
	TuplesDeleted   int   `json:"tuples_deleted"`
	ProvRowsDeleted int   `json:"prov_rows_deleted"`
	Checked         int   `json:"derivability_checked"`
	Rederived       int   `json:"rederived"`

	// Insertion propagation.
	InsertNS int64 `json:"insert_ns"`

	// Base deltas actually applied.
	InsL int `json:"ins_local"`
	DelL int `json:"del_local"`
	InsR int `json:"ins_reject"`
	DelR int `json:"del_reject"`

	// Engine fixpoint work across all phases of this pass.
	Rounds    int   `json:"engine_rounds"`
	Derived   int   `json:"engine_derived"`
	Probes    int   `json:"engine_probes"`
	RuleFires int   `json:"engine_rule_fires"`
	EngineNS  int64 `json:"engine_ns"`

	// Post-exchange checkpoint, when persistence took one.
	CheckpointNS int64 `json:"checkpoint_ns"`

	// Trace ids of the publications this view consumed in the pass —
	// the link from exchange-side spans back to the originating
	// publish. Empty for passes that consumed nothing (or publications
	// that predate tracing).
	TraceIDs []string `json:"trace_ids,omitempty"`

	Err string `json:"error,omitempty"`
}

// TouchesTrace reports whether any view in the pass consumed the
// publication with the given trace id.
func (p *PassTrace) TouchesTrace(traceID string) bool {
	if p == nil || traceID == "" {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.Views {
		for _, id := range p.Views[i].TraceIDs {
			if id == traceID {
				return true
			}
		}
	}
	return false
}

// StartPass opens a pass trace of the given kind. The sequence number
// is stamped by the Tracer when the pass finishes.
func StartPass(kind string) *PassTrace {
	return &PassTrace{Kind: kind, Start: time.Now()}
}

// AddView appends one view's pass record; safe for concurrent use (a
// parallel ExchangeAll finishes views on scheduler goroutines).
func (p *PassTrace) AddView(vp ViewPass) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.Views = append(p.Views, vp)
	p.mu.Unlock()
}

// Finish stamps the pass wall clock and hands it to the tracer (which
// may be nil). It returns the pass for chaining.
func (p *PassTrace) Finish(t *Tracer) *PassTrace {
	if p == nil {
		return nil
	}
	p.WallNS = time.Since(p.Start).Nanoseconds()
	t.Add(p)
	return p
}

// Span is one node of a rendered span tree: a name, a duration, flat
// integer attributes, string labels (trace ids), and children. This is
// the JSON shape /debug/trace serves.
type Span struct {
	Name       string            `json:"name"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]int64  `json:"attrs,omitempty"`
	Labels     map[string]string `json:"labels,omitempty"`
	Children   []*Span           `json:"children,omitempty"`
}

// SpanTree renders the pass as a span tree: a root span for the pass,
// one child per view, and per-phase grandchildren (fetch, net_effect,
// delete, insert, checkpoint). The view spans' durations sum to the
// pass wall clock (within scheduling slack) when the pass ran its
// views serially; a parallel ExchangeAll's view spans overlap, so
// there the sum may exceed the root duration.
func (p *PassTrace) SpanTree() *Span {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	root := &Span{
		Name:       "pass:" + p.Kind,
		DurationNS: p.WallNS,
		Attrs:      map[string]int64{"seq": int64(p.Seq), "views": int64(len(p.Views))},
	}
	for i := range p.Views {
		vp := &p.Views[i]
		vs := &Span{
			Name:       "view:" + viewName(vp.Owner),
			DurationNS: vp.WallNS,
			Attrs: map[string]int64{
				"publications":      int64(vp.Publications),
				"edits_in":          int64(vp.EditsIn),
				"edits_cancelled":   int64(vp.EditsCancelled),
				"tuples_deleted":    int64(vp.TuplesDeleted),
				"prov_rows_deleted": int64(vp.ProvRowsDeleted),
				"engine_derived":    int64(vp.Derived),
				"engine_rounds":     int64(vp.Rounds),
				"engine_probes":     int64(vp.Probes),
				"engine_ns":         vp.EngineNS,
			},
			Children: []*Span{
				{Name: "fetch", DurationNS: vp.FetchNS},
				{Name: "net_effect", DurationNS: vp.NetEffectNS},
				{Name: "delete", DurationNS: vp.DeleteNS, Attrs: map[string]int64{
					"tuples_deleted": int64(vp.TuplesDeleted),
					"checked":        int64(vp.Checked),
					"rederived":      int64(vp.Rederived),
				}},
				{Name: "insert", DurationNS: vp.InsertNS},
			},
		}
		if len(vp.TraceIDs) > 0 {
			vs.Labels = map[string]string{"trace_ids": strings.Join(vp.TraceIDs, ",")}
		}
		if vp.CheckpointNS > 0 {
			vs.Children = append(vs.Children, &Span{Name: "checkpoint", DurationNS: vp.CheckpointNS})
		}
		root.Children = append(root.Children, vs)
	}
	return root
}

// viewName renders the global view's empty owner readably.
func viewName(owner string) string {
	if owner == "" {
		return "(global)"
	}
	return owner
}

// Tracer is a bounded ring of recent pass traces. Add and Last lock
// and (for Last) allocate — they run once per pass and once per debug
// request, never inside a hot loop, and locksafe keeps them out of
// System.mu critical sections. All methods are nil-safe.
type Tracer struct {
	mu   sync.Mutex
	ring []*PassTrace
	next int
	n    int
	seq  uint64
}

// NewTracer returns a tracer retaining the last capacity passes
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*PassTrace, capacity)}
}

// Add records a finished pass, stamping its sequence number (1-based,
// monotonically increasing).
func (t *Tracer) Add(p *PassTrace) {
	if t == nil || p == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	p.Seq = t.seq
	t.ring[t.next] = p
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Last returns up to n of the most recent passes, newest first.
func (t *Tracer) Last(n int) []*PassTrace {
	if t == nil || n < 1 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > t.n {
		n = t.n
	}
	out := make([]*PassTrace, 0, n)
	for i := 1; i <= n; i++ {
		idx := (t.next - i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// Count reports how many passes have ever been recorded.
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Observability bundles the operations plane — a metrics registry, a
// pass tracer, a publish-record ring, and a slow-query ring — as one
// value the public facade plumbs through the stack
// (orchestra.WithObservability). A nil *Observability disables all of
// it: accessors return nil, and every instrument and trace method is
// nil-safe.
type Observability struct {
	registry *Registry
	tracer   *Tracer
	pubs     *PubTracer
	slow     *SlowQueryRing
}

// NewObservability builds a fresh registry plus a tracer retaining the
// last traceCap passes (<= 0 selects the default of 64). The publish
// ring keeps 4× traceCap records (publishes outnumber passes) and the
// slow-query ring traceCap records. The registry carries the process
// identity series (orchestra_build_info, start time, uptime) from
// birth.
func NewObservability(traceCap int) *Observability {
	if traceCap <= 0 {
		traceCap = 64
	}
	reg := NewRegistry()
	registerBuildInfo(reg)
	return &Observability{
		registry: reg,
		tracer:   NewTracer(traceCap),
		pubs:     NewPubTracer(4 * traceCap),
		slow:     NewSlowQueryRing(traceCap),
	}
}

// Registry returns the metrics registry (nil when o is nil).
func (o *Observability) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.registry
}

// Tracer returns the pass tracer (nil when o is nil).
func (o *Observability) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// PubTracer returns the publish-record ring (nil when o is nil).
func (o *Observability) PubTracer() *PubTracer {
	if o == nil {
		return nil
	}
	return o.pubs
}

// SlowQueries returns the slow-query ring (nil when o is nil).
func (o *Observability) SlowQueries() *SlowQueryRing {
	if o == nil {
		return nil
	}
	return o.slow
}
