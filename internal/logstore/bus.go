package logstore

import (
	"context"
	"fmt"

	"orchestra/internal/core"
	"orchestra/internal/obs"
)

// Bus is a durable core.PublicationBus: an in-memory publication
// sequence mirrored by an append-only Store file. OpenBus replays the
// file (repairing a torn tail, see Open) so a restarting node sees the
// same global publication order — and the same cursors — as before
// the crash. Appends are durable before they become fetchable.
type Bus struct {
	store *Store
	mem   *core.MemoryBus
}

// OpenBus opens (or creates) a durable bus backed by the log at path.
func OpenBus(path string) (*Bus, error) {
	store, err := Open(path)
	if err != nil {
		return nil, err
	}
	pubs, err := store.Replay()
	if err != nil {
		store.Close()
		return nil, err
	}
	mem := core.NewMemoryBus()
	for i, p := range pubs {
		// Preload rather than Append: the trace id comes from the stored
		// frame, not a live caller context.
		if err := mem.Preload(p.Peer, p.Log, p.TraceID); err != nil {
			store.Close()
			return nil, fmt.Errorf("logstore: reloading publication %d: %w", i, err)
		}
	}
	return &Bus{store: store, mem: mem}, nil
}

// Append implements core.BusAppender: the publication is fsynced to
// the log before it is exposed to Fetch, so a publication a peer
// ever observed survives any crash. The Store's lock serializes
// appenders, keeping file order identical to memory order.
func (b *Bus) Append(ctx context.Context, peer string, log core.EditLog) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if peer == "" {
		return fmt.Errorf("logstore: publication without peer")
	}
	traceID := obs.TraceIDFromContext(ctx)
	b.store.mu.Lock()
	defer b.store.mu.Unlock()
	if err := b.store.appendLocked(peer, log, traceID, 0); err != nil {
		return err
	}
	// Once the frame is durable the in-memory publish must succeed:
	// reporting failure here would invite a retry that duplicates the
	// publication after restart. Preload carries the trace id without
	// the caller's cancellable context — cancelling the in-memory
	// mirror would desync file and memory.
	return b.mem.Preload(peer, log, traceID)
}

// SetMetrics installs append instruments on the backing log.
func (b *Bus) SetMetrics(m Metrics) { b.store.SetMetrics(m) }

// Fetch implements core.BusReader: reads are served from the in-memory
// mirror, which holds exactly the durable prefix.
func (b *Bus) Fetch(ctx context.Context, from core.Cursor) ([]core.Delta, core.Cursor, error) {
	return b.mem.Fetch(ctx, from)
}

// Horizon implements core.BusReader.
func (b *Bus) Horizon(ctx context.Context) (core.Cursor, error) {
	return b.mem.Horizon(ctx)
}

// Subscribe implements core.BusWatcher: subscribers are woken by the
// in-memory mirror, so a delta is only ever delivered after its frame
// is durable.
func (b *Bus) Subscribe(ctx context.Context, from core.Cursor) (<-chan core.Delta, core.CancelFunc, error) {
	return b.mem.Subscribe(ctx, from)
}

// FetchSince implements the legacy scalar fetch.
//
// Deprecated: use Fetch with a typed core.Cursor.
func (b *Bus) FetchSince(ctx context.Context, cursor int) ([]core.Publication, int, error) {
	return b.mem.FetchSince(ctx, cursor)
}

// Len returns the number of publications on the bus.
func (b *Bus) Len() int { return b.mem.Len() }

// RepairedBytes reports how many bytes of torn tail were dropped when
// the backing log was opened (0 when it was clean).
func (b *Bus) RepairedBytes() int64 { return b.store.RepairedBytes() }

// Path returns the backing log file's path.
func (b *Bus) Path() string { return b.store.path }

// Close closes the backing log. The in-memory sequence stays readable;
// further Appends fail.
func (b *Bus) Close() error { return b.store.Close() }
