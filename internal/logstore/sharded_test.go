package logstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"orchestra/internal/core"
)

// TestShardedAppendFetchReopen checks the sharded bus's basic durable
// contract: appends from several peers land in one total order with
// exact per-shard positions, and reopening the directory replays the
// identical sequence.
func TestShardedAppendFetchReopen(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "bus.shards")
	b, err := OpenShardedBus(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{"A", "B", "A", "C", "B", "A"}
	for i, peer := range peers {
		if err := b.Append(ctx, peer, core.EditLog{core.Ins("R", core.MakeTuple(i))}); err != nil {
			t.Fatal(err)
		}
	}
	check := func(b *ShardedBus, when string) {
		t.Helper()
		deltas, next, err := b.Fetch(ctx, core.Cursor{})
		if err != nil {
			t.Fatalf("%s: %v", when, err)
		}
		if len(deltas) != len(peers) {
			t.Fatalf("%s: %d deltas, want %d", when, len(deltas), len(peers))
		}
		shardSeen := map[string]int{}
		for i, d := range deltas {
			if d.Pub.Peer != peers[i] || d.Shard != peers[i] {
				t.Fatalf("%s: delta %d owned by %s/%s, want %s", when, i, d.Shard, d.Pub.Peer, peers[i])
			}
			shardSeen[d.Shard]++
			if d.Pos != shardSeen[d.Shard] {
				t.Fatalf("%s: delta %d has shard position %d, want %d", when, i, d.Pos, shardSeen[d.Shard])
			}
		}
		if !next.Exact() || next.Total() != len(peers) ||
			next.Shard("A") != 3 || next.Shard("B") != 2 || next.Shard("C") != 1 {
			t.Fatalf("%s: horizon %v", when, next)
		}
	}
	check(b, "first open")
	if got, want := b.Shards(), 3; len(got) != want {
		t.Fatalf("shards %v, want %d", got, want)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := OpenShardedBus(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	check(b2, "reopened")
}

// TestShardedLegacyMigration checks the one-shot migration: an old
// single-file bus log is rewritten into the sharded layout with its
// global order preserved, and the legacy file is gone afterwards.
func TestShardedLegacyMigration(t *testing.T) {
	ctx := context.Background()
	root := t.TempDir()
	legacyPath := filepath.Join(root, "bus.olg")
	legacy, err := OpenBus(legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{"A", "B", "A"}
	for i, peer := range peers {
		if err := legacy.Append(ctx, peer, core.EditLog{core.Ins("R", core.MakeTuple(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(root, "bus.shards")
	b, err := OpenShardedBus(dir, legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	deltas, next, err := b.Fetch(ctx, core.Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != len(peers) || next.Total() != len(peers) || !next.Exact() {
		t.Fatalf("migrated %d deltas, horizon %v", len(deltas), next)
	}
	for i, d := range deltas {
		if d.Pub.Peer != peers[i] {
			t.Fatalf("delta %d owned by %s, want %s (order lost in migration)", i, d.Pub.Peer, peers[i])
		}
		if d.Pub.Log[0].Tuple.String() != core.MakeTuple(i).String() {
			t.Fatalf("delta %d carries %v", i, d.Pub.Log[0].Tuple)
		}
	}
	if _, err := os.Stat(legacyPath); !os.IsNotExist(err) {
		t.Fatalf("legacy log still present after migration: %v", err)
	}
	// Reopening migrates nothing (the sharded dir is authoritative).
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenShardedBus(dir, legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if b2.Len() != len(peers) {
		t.Fatalf("reopen after migration holds %d, want %d", b2.Len(), len(peers))
	}
}

// TestShardedSubscribe checks push delivery from the durable bus:
// a subscription sees appends as they happen, in global order.
func TestShardedSubscribe(t *testing.T) {
	ctx := context.Background()
	b, err := OpenShardedBus(filepath.Join(t.TempDir(), "bus.shards"), "")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ch, cancel, err := b.Subscribe(ctx, core.Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	peers := []string{"A", "B", "A"}
	for i, peer := range peers {
		if err := b.Append(ctx, peer, core.EditLog{core.Ins("R", core.MakeTuple(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i, peer := range peers {
		select {
		case d := <-ch:
			if d.Shard != peer {
				t.Fatalf("delta %d from shard %s, want %s", i, d.Shard, peer)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for delta %d", i)
		}
	}
}

// TestShardedConcurrentAppends hammers the watermark commit: many
// goroutines appending to different shards concurrently must produce a
// gapless, contiguous global order (no publication acknowledged before
// a lower-numbered one becomes visible, none lost). Run with -race.
func TestShardedConcurrentAppends(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "bus.shards")
	b, err := OpenShardedBus(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	const peersN, perPeer = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, peersN*perPeer)
	for p := 0; p < peersN; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			peer := fmt.Sprintf("P%d", p)
			for i := 0; i < perPeer; i++ {
				if err := b.Append(ctx, peer, core.EditLog{core.Ins("R", core.MakeTuple(p, i))}); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	verify := func(b *ShardedBus, when string) {
		t.Helper()
		deltas, next, err := b.Fetch(ctx, core.Cursor{})
		if err != nil {
			t.Fatalf("%s: %v", when, err)
		}
		if len(deltas) != peersN*perPeer || next.Total() != peersN*perPeer {
			t.Fatalf("%s: %d deltas, horizon %v, want %d", when, len(deltas), next, peersN*perPeer)
		}
		// Per shard, positions are contiguous from 1 and payloads in
		// publish order (each goroutine published i ascending).
		seen := map[string]int{}
		for _, d := range deltas {
			seen[d.Shard]++
			if d.Pos != seen[d.Shard] {
				t.Fatalf("%s: shard %s position %d, want %d", when, d.Shard, d.Pos, seen[d.Shard])
			}
		}
		for peer, n := range seen {
			if n != perPeer {
				t.Fatalf("%s: shard %s holds %d, want %d", when, peer, n, perPeer)
			}
		}
	}
	verify(b, "live")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenShardedBus(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	verify(b2, "replayed")
}
