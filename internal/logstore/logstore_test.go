package logstore

import (
	"os"
	"path/filepath"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/schema"
	"orchestra/internal/tgd"
)

func tmpStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pub.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func sampleLog() core.EditLog {
	return core.EditLog{
		core.Ins("A", core.MakeTuple(1, "x")),
		core.Del("A", core.MakeTuple(2, "y z")),
	}
}

func TestAppendReplay(t *testing.T) {
	s, _ := tmpStore(t)
	if err := s.Append("P", sampleLog()); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("Q", core.EditLog{core.Ins("B", core.MakeTuple(7))}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	pubs, err := s.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pubs) != 2 || pubs[0].Peer != "P" || pubs[1].Peer != "Q" {
		t.Fatalf("pubs: %+v", pubs)
	}
	if len(pubs[0].Log) != 2 || pubs[0].Log[0].String() != "+A(1, x)" {
		t.Fatalf("log content: %v", pubs[0].Log)
	}
	if pubs[0].Log[1].Insert || !pubs[0].Log[1].Tuple.Equal(core.MakeTuple(2, "y z")) {
		t.Fatalf("deletion edit: %v", pubs[0].Log[1])
	}
	// Appending after a replay still works (file position restored).
	if err := s.Append("P", sampleLog()); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatal("Len after post-replay append")
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	s, path := tmpStore(t)
	if err := s.Append("P", sampleLog()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d", s2.Len())
	}
	if err := s2.Append("P", sampleLog()); err != nil {
		t.Fatal(err)
	}
	pubs, err := s2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pubs) != 2 {
		t.Fatalf("records after reopen: %d", len(pubs))
	}
}

func TestCorruptionDetected(t *testing.T) {
	_, path := tmpStore(t)
	if err := os.WriteFile(path, []byte("BAD!data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated record.
	s2path := filepath.Join(t.TempDir(), "trunc.log")
	s2, err := Open(s2path)
	if err != nil {
		t.Fatal(err)
	}
	s2.Append("P", sampleLog())
	s2.Close()
	data, _ := os.ReadFile(s2path)
	os.WriteFile(s2path, data[:len(data)-3], 0o644)
	if _, err := Open(s2path); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// End-to-end: a CDSS node restarts and rebuilds its pending publications
// from the store.
func TestRestoreInto(t *testing.T) {
	u := schema.NewUniverse()
	p := schema.NewPeer("P")
	p.AddRelation("A", schema.Column{Name: "x", Type: schema.TypeInt})
	q := schema.NewPeer("Q")
	q.AddRelation("B", schema.Column{Name: "x", Type: schema.TypeInt})
	u.AddPeer(p)
	u.AddPeer(q)
	spec, err := core.NewSpec(u, []*tgd.TGD{tgd.MustParse("m: A(x) -> B(x)")}, nil)
	if err != nil {
		t.Fatal(err)
	}

	s, _ := tmpStore(t)
	// "Node 1" publishes through the store.
	c1 := core.NewCDSS(spec, core.Options{}, core.DeleteProvenance)
	logs := []struct {
		peer string
		log  core.EditLog
	}{
		{"P", core.EditLog{core.Ins("A", core.MakeTuple(1))}},
		{"P", core.EditLog{core.Ins("A", core.MakeTuple(2))}},
		{"Q", core.EditLog{core.Ins("B", core.MakeTuple(9))}},
	}
	for _, l := range logs {
		if err := c1.Publish(l.peer, l.log); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(l.peer, l.log); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c1.Exchange(""); err != nil {
		t.Fatal(err)
	}

	// "Node 2" starts fresh and restores from the store.
	c2 := core.NewCDSS(spec, core.Options{}, core.DeleteProvenance)
	if err := s.RestoreInto(c2); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exchange(""); err != nil {
		t.Fatal(err)
	}
	v1, _ := c1.View("")
	v2, _ := c2.View("")
	if v1.Instance("B").Len() != v2.Instance("B").Len() || v2.Instance("B").Len() != 3 {
		t.Fatalf("restored node diverges: %d vs %d",
			v1.Instance("B").Len(), v2.Instance("B").Len())
	}
	// Restoring into a CDSS with an incompatible spec fails loudly.
	uBad := schema.NewUniverse()
	pb := schema.NewPeer("P")
	pb.AddRelation("Z", schema.Column{Name: "x"})
	uBad.AddPeer(pb)
	specBad, err := core.NewSpec(uBad, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cBad := core.NewCDSS(specBad, core.Options{}, core.DeleteProvenance)
	if err := s.RestoreInto(cBad); err == nil {
		t.Fatal("incompatible restore accepted")
	}
}
