package logstore

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/schema"
	"orchestra/internal/tgd"
)

func tmpStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pub.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func sampleLog() core.EditLog {
	return core.EditLog{
		core.Ins("A", core.MakeTuple(1, "x")),
		core.Del("A", core.MakeTuple(2, "y z")),
	}
}

func TestAppendReplay(t *testing.T) {
	s, _ := tmpStore(t)
	if err := s.Append("P", sampleLog()); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("Q", core.EditLog{core.Ins("B", core.MakeTuple(7))}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	pubs, err := s.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pubs) != 2 || pubs[0].Peer != "P" || pubs[1].Peer != "Q" {
		t.Fatalf("pubs: %+v", pubs)
	}
	if len(pubs[0].Log) != 2 || pubs[0].Log[0].String() != "+A(1, x)" {
		t.Fatalf("log content: %v", pubs[0].Log)
	}
	if pubs[0].Log[1].Insert || !pubs[0].Log[1].Tuple.Equal(core.MakeTuple(2, "y z")) {
		t.Fatalf("deletion edit: %v", pubs[0].Log[1])
	}
	// Appending after a replay still works (file position restored).
	if err := s.Append("P", sampleLog()); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatal("Len after post-replay append")
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	s, path := tmpStore(t)
	if err := s.Append("P", sampleLog()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d", s2.Len())
	}
	if err := s2.Append("P", sampleLog()); err != nil {
		t.Fatal(err)
	}
	pubs, err := s2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pubs) != 2 {
		t.Fatalf("records after reopen: %d", len(pubs))
	}
}

func TestCorruptionDetected(t *testing.T) {
	_, path := tmpStore(t)
	if err := os.WriteFile(path, []byte("BAD!data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("bad magic accepted")
	}
	// An undecodable record whose bytes are all present is corruption,
	// not a torn tail: a trailing complete-but-garbage frame must stay a
	// hard error, never a silent truncation.
	s2path := filepath.Join(t.TempDir(), "garbage.log")
	s2, err := Open(s2path)
	if err != nil {
		t.Fatal(err)
	}
	s2.Append("P", sampleLog())
	s2.Close()
	f, err := os.OpenFile(s2path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Frame of length 4 followed by exactly 4 undecodable bytes.
	f.Write([]byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef})
	f.Close()
	if _, err := Open(s2path); err == nil {
		t.Fatal("complete garbage frame accepted")
	}
}

// corrupt appends raw bytes to a closed store file, simulating a crash
// that cut an Append short.
func corrupt(t *testing.T, path string, tail []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(tail); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestTornTailRepaired injects the crash-mid-Append shapes — a partial
// frame body, a partial length header, an implausible length the file
// cannot hold — and checks Open truncates back to the last complete
// frame, keeps every preceding record, and accepts new appends.
func TestTornTailRepaired(t *testing.T) {
	frame := func(peer string) []byte {
		b, err := encodeFrame(peer, sampleLog(), "", 0)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name string
		tail []byte
	}{
		{"partial frame body", append([]byte{0, 0, 0, 200}, frame("P")[:5]...)},
		{"partial length header", []byte{0, 0}},
		{"implausible length", []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "torn.log")
			s, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Append("P", sampleLog()); err != nil {
				t.Fatal(err)
			}
			if err := s.Append("Q", sampleLog()); err != nil {
				t.Fatal(err)
			}
			s.Close()
			clean, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			corrupt(t, path, tc.tail)

			s2, err := Open(path)
			if err != nil {
				t.Fatalf("torn tail not repaired: %v", err)
			}
			defer s2.Close()
			if s2.RepairedBytes() != int64(len(tc.tail)) {
				t.Errorf("RepairedBytes = %d, want %d", s2.RepairedBytes(), len(tc.tail))
			}
			if s2.Len() != 2 {
				t.Fatalf("Len after repair = %d, want 2", s2.Len())
			}
			if got, _ := os.Stat(path); got.Size() != clean.Size() {
				t.Errorf("file size after repair = %d, want %d", got.Size(), clean.Size())
			}
			// The repaired store is fully usable: replay + append + replay.
			pubs, err := s2.Replay()
			if err != nil {
				t.Fatal(err)
			}
			if len(pubs) != 2 || pubs[0].Peer != "P" || pubs[1].Peer != "Q" {
				t.Fatalf("replay after repair: %+v", pubs)
			}
			if err := s2.Append("P", sampleLog()); err != nil {
				t.Fatal(err)
			}
			if pubs, err = s2.Replay(); err != nil || len(pubs) != 3 {
				t.Fatalf("replay after post-repair append: %d pubs, err %v", len(pubs), err)
			}
		})
	}
}

// TestTornFileHeaderRepaired covers a crash during store creation: a
// file shorter than the magic reopens as an empty store.
func TestTornFileHeaderRepaired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "header.log")
	if err := os.WriteFile(path, []byte("OL"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatalf("torn header not repaired: %v", err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if err := s.Append("P", sampleLog()); err != nil {
		t.Fatal(err)
	}
	pubs, err := s.Replay()
	if err != nil || len(pubs) != 1 {
		t.Fatalf("replay: %d pubs, err %v", len(pubs), err)
	}
}

// TestBusDurability round-trips publications through the durable Bus,
// including recovery from a torn tail.
func TestBusDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bus.olg")
	b, err := OpenBus(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := b.Append(ctx, "P", sampleLog()); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(ctx, "Q", sampleLog()); err != nil {
		t.Fatal(err)
	}
	pubs, next, err := b.FetchSince(ctx, 1)
	if err != nil || next != 2 || len(pubs) != 1 || pubs[0].Peer != "Q" {
		t.Fatalf("FetchSince: %d pubs, next %d, err %v", len(pubs), next, err)
	}
	b.Close()
	corrupt(t, path, []byte{0, 0, 1, 0, 'x'}) // torn append

	b2, err := OpenBus(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if b2.RepairedBytes() == 0 {
		t.Error("expected a tail repair")
	}
	if b2.Len() != 2 {
		t.Fatalf("reloaded bus Len = %d, want 2", b2.Len())
	}
	pubs, next, err = b2.FetchSince(ctx, 0)
	if err != nil || next != 2 || len(pubs) != 2 {
		t.Fatalf("reloaded FetchSince: %d pubs, next %d, err %v", len(pubs), next, err)
	}
}

// End-to-end: a CDSS node restarts and rebuilds its pending publications
// from the store.
func TestRestoreInto(t *testing.T) {
	u := schema.NewUniverse()
	p := schema.NewPeer("P")
	p.AddRelation("A", schema.Column{Name: "x", Type: schema.TypeInt})
	q := schema.NewPeer("Q")
	q.AddRelation("B", schema.Column{Name: "x", Type: schema.TypeInt})
	u.AddPeer(p)
	u.AddPeer(q)
	spec, err := core.NewSpec(u, []*tgd.TGD{tgd.MustParse("m: A(x) -> B(x)")}, nil)
	if err != nil {
		t.Fatal(err)
	}

	s, _ := tmpStore(t)
	// "Node 1" publishes through the store.
	c1 := core.NewCDSS(spec, core.Options{}, core.DeleteProvenance)
	logs := []struct {
		peer string
		log  core.EditLog
	}{
		{"P", core.EditLog{core.Ins("A", core.MakeTuple(1))}},
		{"P", core.EditLog{core.Ins("A", core.MakeTuple(2))}},
		{"Q", core.EditLog{core.Ins("B", core.MakeTuple(9))}},
	}
	for _, l := range logs {
		if err := c1.Publish(context.Background(), l.peer, l.log); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(l.peer, l.log); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c1.Exchange(context.Background(), ""); err != nil {
		t.Fatal(err)
	}

	// "Node 2" starts fresh and restores from the store.
	c2 := core.NewCDSS(spec, core.Options{}, core.DeleteProvenance)
	if err := s.RestoreInto(context.Background(), c2); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exchange(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	v1, _ := c1.View("")
	v2, _ := c2.View("")
	if v1.Instance("B").Len() != v2.Instance("B").Len() || v2.Instance("B").Len() != 3 {
		t.Fatalf("restored node diverges: %d vs %d",
			v1.Instance("B").Len(), v2.Instance("B").Len())
	}
	// Restoring into a CDSS with an incompatible spec fails loudly.
	uBad := schema.NewUniverse()
	pb := schema.NewPeer("P")
	pb.AddRelation("Z", schema.Column{Name: "x"})
	uBad.AddPeer(pb)
	specBad, err := core.NewSpec(uBad, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cBad := core.NewCDSS(specBad, core.Options{}, core.DeleteProvenance)
	if err := s.RestoreInto(context.Background(), cBad); err == nil {
		t.Fatal("incompatible restore accepted")
	}
}

// TestTraceStamping proves AppendTraced stamps the lineage trace id
// into the frame trailer and Replay surfaces it, while plain Append
// stays trailer-free — byte-identical to the pre-trailer format — so
// mixed logs and old log files replay cleanly.
func TestTraceStamping(t *testing.T) {
	s, path := tmpStore(t)
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	if err := s.AppendTraced("P", sampleLog(), traceID); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("Q", core.EditLog{core.Ins("B", core.MakeTuple(7))}); err != nil {
		t.Fatal(err)
	}
	pubs, err := s.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if pubs[0].TraceID != traceID {
		t.Fatalf("replayed trace id %q, want %q", pubs[0].TraceID, traceID)
	}
	if pubs[1].TraceID != "" {
		t.Fatalf("untraced publication replayed with trace id %q", pubs[1].TraceID)
	}

	// The trailer-free frame is exactly the old format: a frame encoded
	// with no trace id decodes to the same publication, and re-encoding
	// the decoded record reproduces the bytes.
	frame, err := encodeFrame("Q", core.EditLog{core.Ins("B", core.MakeTuple(7))}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := decodeFrame(frame)
	if err != nil {
		t.Fatalf("old-format frame rejected: %v", err)
	}
	if pub.Peer != "Q" || pub.TraceID != "" || len(pub.Log) != 1 {
		t.Fatalf("old-format decode: %+v", pub)
	}

	// Reopen: trace ids survive the file round trip too.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	pubs, err = s2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if pubs[0].TraceID != traceID || pubs[1].TraceID != "" {
		t.Fatalf("reopened trace ids: %q, %q", pubs[0].TraceID, pubs[1].TraceID)
	}
}
