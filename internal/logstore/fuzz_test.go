package logstore

import (
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/value"
)

// fuzzSeedFrames returns well-formed frames to seed the decoder fuzz
// with (the mutator then corrupts them).
func fuzzSeedFrames(tb testing.TB) [][]byte {
	var frames [][]byte
	for _, pub := range []Publication{
		{Peer: "PGUS", Log: core.EditLog{
			core.Ins("G", core.MakeTuple(1, 2, 3)),
			core.Del("G", core.MakeTuple(1, 2, 3)),
		}},
		{Peer: "p", Log: nil},
		{Peer: "PBioSQL", Log: core.EditLog{
			core.Ins("B", core.MakeTuple("x", 7)),
			core.Ins("B", value.Tuple{value.Null(3), value.Int(1)}),
		}},
		{Peer: "PuBio", Log: core.EditLog{core.Ins("U", core.MakeTuple(9))},
			TraceID: "4bf92f3577b34da6a3ce929d0e0e4736"},
		{Peer: "PGUS", Log: core.EditLog{core.Ins("G", core.MakeTuple(4, 5, 6))},
			TraceID: "00f067aa0ba902b7aa0ba902b700f067", Seq: 12},
		{Peer: "PuBio", Log: nil, Seq: 1},
	} {
		frame, err := encodeFrame(pub.Peer, pub.Log, pub.TraceID, pub.Seq)
		if err != nil {
			tb.Fatal(err)
		}
		frames = append(frames, frame)
	}
	return frames
}

// FuzzDecodeFrame throws arbitrary bytes at the publication-log frame
// decoder (the edit-log wire format recovery replays after a crash).
// It must never panic, and any frame it accepts must re-encode to the
// byte-identical frame — the decoder and encoder are exact inverses, so
// a log rewritten through them (torn-tail repair) cannot drift.
func FuzzDecodeFrame(f *testing.F) {
	for _, frame := range fuzzSeedFrames(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pub, err := decodeFrame(data)
		if err != nil {
			return
		}
		frame, err := encodeFrame(pub.Peer, pub.Log, pub.TraceID, pub.Seq)
		if err != nil {
			t.Fatalf("decoded publication failed to re-encode: %v", err)
		}
		if string(frame) != string(data) {
			t.Fatalf("decode/encode round-trip drifted:\nin:  %x\nout: %x", data, frame)
		}
	})
}
