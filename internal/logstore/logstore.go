// Package logstore provides durable storage for published edit logs —
// the CDSS persistence layer (§2: publishing an edit log makes it
// "globally available via central or distributed storage"; §5 builds on
// Orchestra's "catalog, communications, and persistence layers").
//
// A Store is an append-only file of publications. Each publication is a
// peer name plus an ordered edit log; replaying the file reproduces the
// global publication sequence, so a restarting node can rebuild (or
// catch up) any view.
//
// Record format (integers big-endian):
//
//	magic "OLG1" (once, at file start)
//	per record: uint32 frame length, then frame:
//	  uint16 peer len, peer,
//	  uint32 edit count, per edit: uint8 op ('+'/'-'),
//	    uint16 rel len, rel, uint32 key len, canonical tuple key
//	  optional trailers, in this order:
//	    uint8 'T', uint16 trace-id len, trace id
//	    uint8 'Q', uint64 global sequence number (nonzero)
//
// The 'T' trailer carries the publication's lineage trace id; the 'Q'
// trailer carries its global sequence number on a sharded bus, where
// per-shard segment files must merge back into one total order on
// replay. Both are optional in both directions: frames written before
// the trailer existed decode with the zero value, and zero values are
// written trailer-free — byte-identical to the older formats. Trailer
// order is canonical ('T' before 'Q') so the decoder and encoder stay
// exact inverses.
package logstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/fslock"
	"orchestra/internal/obs"
	"orchestra/internal/value"
)

const magic = "OLG1"

// maxFrame bounds a single record. A length prefix beyond it cannot
// come from Append and is treated as a torn tail by recovery (and as
// corruption by strict reads).
const maxFrame = 1 << 30

// Publication is one published edit log. TraceID is the publication's
// lineage trace id ("" for records written before tracing existed).
// Seq is the publication's global sequence number on a sharded bus
// (0 for records of a single-file log, which is its own total order).
type Publication struct {
	Peer    string
	Log     core.EditLog
	TraceID string
	Seq     uint64
}

// trailerTrace marks the optional trace-id trailer at the end of a
// frame's edit list; trailerSeq the optional global-sequence trailer
// after it.
const (
	trailerTrace = 'T'
	trailerSeq   = 'Q'
)

// Metrics holds the log's instruments. The zero value disables all of
// them (obs instruments are nil-safe).
type Metrics struct {
	// AppendSeconds observes each append's wall clock — encode, write,
	// and fsync — in seconds.
	AppendSeconds *obs.Histogram
	// AppendBytes counts frame bytes written (length prefix included).
	AppendBytes *obs.Counter
	// AppendFailures counts appends that returned an error.
	AppendFailures *obs.Counter
}

// Store is an append-only publication log backed by a file. It is safe
// for concurrent use.
type Store struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	n        int   // records appended (including those found at open)
	repaired int64 // bytes of torn tail dropped by Open's recovery
	metrics  Metrics
}

// SetMetrics installs append instruments. Call it right after Open; it
// is not synchronized against concurrent Appends.
func (s *Store) SetMetrics(m Metrics) {
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

// Open opens (or creates) a store at path. A file whose tail frame was
// torn by a crash mid-Append is repaired: the incomplete record is
// truncated away (every preceding record is intact — Append writes one
// frame at a time and fsyncs), the repair is logged, and the store
// opens normally. Corruption that is not a torn tail (bad magic, an
// undecodable complete frame) stays a hard error.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	// One writer per log file, across processes: a second opener would
	// interleave frames and duplicate history on replay.
	if err := fslock.TryLock(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("logstore: %w", err)
	}
	st := &Store{f: f, path: path}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() > 0 {
		pubs, good, torn, err := scanLenient(f, info.Size())
		if err != nil {
			f.Close()
			return nil, err
		}
		if torn != nil {
			if err := f.Truncate(good); err != nil {
				f.Close()
				return nil, fmt.Errorf("logstore: truncating torn tail of %s: %w", path, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
			// Truncate does not move the file offset; rewind to the new end
			// so follow-up writes land on the frame boundary.
			if _, err := f.Seek(good, io.SeekStart); err != nil {
				f.Close()
				return nil, err
			}
			st.repaired = info.Size() - good
			log.Printf("logstore: %s: repaired torn tail, dropped %d bytes after record %d (%v)",
				path, st.repaired, len(pubs), torn)
		}
		st.n = len(pubs)
	}
	// A file torn inside the initial magic truncates to empty; (re)write
	// the header in that case.
	if st.n == 0 {
		if info, err := f.Stat(); err != nil {
			f.Close()
			return nil, err
		} else if info.Size() == 0 {
			if _, err := f.WriteString(magic); err != nil {
				f.Close()
				return nil, err
			}
			// The header must be durable before any append is
			// acknowledged; the first frame's fsync is too late if the
			// caller crashes between Open and Append.
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

// ReadLen counts the publications in the log at path without taking
// the writer lock, so inspection tooling (`orchestra stats`) can look
// at a log a live Bus holds open. Appends are frame-at-a-time, so the
// count is always a consistent prefix — possibly one publication
// behind the writer, and a torn tail (crash mid-append) is ignored the
// same way Open's recovery would drop it. A missing file is an empty
// log. A directory is a sharded bus: the count is summed over its
// shard segment files.
func ReadLen(path string) (int, error) {
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		segs, err := shardSegments(path)
		if err != nil {
			return 0, err
		}
		total := 0
		for _, seg := range segs {
			n, err := ReadLen(seg)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	} else if err != nil {
		return 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if info.Size() == 0 {
		return 0, nil
	}
	pubs, _, _, err := scanLenient(f, info.Size())
	if err != nil {
		return 0, err
	}
	return len(pubs), nil
}

// RepairedBytes reports how many bytes of torn tail Open dropped while
// recovering this store (0 when the file was clean).
func (s *Store) RepairedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repaired
}

// Close closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Len returns the number of stored publications.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Append durably records a publication with no trace id (an old-format
// frame). Prefer AppendTraced where a lineage id is available.
func (s *Store) Append(peer string, log core.EditLog) error {
	return s.AppendTraced(peer, log, "")
}

// AppendTraced durably records a publication, stamping its lineage
// trace id into the frame trailer (omitted when traceID is "").
func (s *Store) AppendTraced(peer string, log core.EditLog, traceID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(peer, log, traceID, 0)
}

// AppendSeq durably records a publication stamped with its global
// sequence number — the per-shard segment append of a sharded bus,
// where seq restores the cross-shard total order on replay.
func (s *Store) AppendSeq(peer string, log core.EditLog, traceID string, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(peer, log, traceID, seq)
}

// appendLocked is AppendTraced with s.mu already held — for callers
// (Bus) that need the file write and a follow-up action under one lock.
func (s *Store) appendLocked(peer string, log core.EditLog, traceID string, seq uint64) (err error) {
	start := time.Now()
	defer func() {
		s.metrics.AppendSeconds.Observe(time.Since(start).Seconds())
		if err != nil {
			s.metrics.AppendFailures.Inc()
		}
	}()
	frame, err := encodeFrame(peer, log, traceID, seq)
	if err != nil {
		return err
	}
	// Both readers reject frames past maxFrame; writing one would make
	// the log permanently unopenable (and past 4 GiB the uint32 length
	// prefix would wrap). Refuse before touching the file.
	if len(frame) > maxFrame {
		return fmt.Errorf("logstore: publication frame is %d bytes, limit %d", len(frame), maxFrame)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if _, err := s.f.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := s.f.Write(frame); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.n++
	s.metrics.AppendBytes.Add(int64(len(lenBuf) + len(frame)))
	return nil
}

// Replay reads all publications from the start of the file. The returned
// slice is in publication order.
func (s *Store) Replay() ([]Publication, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	pubs, err := readAll(s.f)
	if err != nil {
		return nil, err
	}
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	return pubs, nil
}

// RestoreInto republishes every stored publication into a CDSS (in
// order). Used at node startup to rebuild the global sequence.
func (s *Store) RestoreInto(ctx context.Context, c *core.CDSS) error {
	pubs, err := s.Replay()
	if err != nil {
		return err
	}
	for i, p := range pubs {
		if err := c.Publish(ctx, p.Peer, p.Log); err != nil {
			return fmt.Errorf("logstore: restoring publication %d: %w", i, err)
		}
	}
	return nil
}

func encodeFrame(peer string, log core.EditLog, traceID string, seq uint64) ([]byte, error) {
	if len(peer) > 1<<16-1 {
		return nil, fmt.Errorf("logstore: peer name too long")
	}
	var frame []byte
	frame = appendU16(frame, uint16(len(peer)))
	frame = append(frame, peer...)
	frame = appendU32(frame, uint32(len(log)))
	for _, e := range log {
		op := byte('-')
		if e.Insert {
			op = '+'
		}
		frame = append(frame, op)
		if len(e.Rel) > 1<<16-1 {
			return nil, fmt.Errorf("logstore: relation name too long")
		}
		frame = appendU16(frame, uint16(len(e.Rel)))
		frame = append(frame, e.Rel...)
		key := e.Tuple.EncodeKey(nil)
		frame = appendU32(frame, uint32(len(key)))
		frame = append(frame, key...)
	}
	if traceID != "" {
		if len(traceID) > 1<<16-1 {
			return nil, fmt.Errorf("logstore: trace id too long")
		}
		frame = append(frame, trailerTrace)
		frame = appendU16(frame, uint16(len(traceID)))
		frame = append(frame, traceID...)
	}
	if seq != 0 {
		frame = append(frame, trailerSeq)
		frame = appendU64(frame, seq)
	}
	return frame, nil
}

func decodeFrame(frame []byte) (Publication, error) {
	var pub Publication
	rd := &frameReader{b: frame}
	peerLen := rd.u16()
	pub.Peer = string(rd.bytes(int(peerLen)))
	n := rd.u32()
	for i := uint32(0); i < n; i++ {
		op := rd.u8()
		if rd.err == nil && op != '+' && op != '-' {
			// Anything else is corruption; decoding it as a deletion would
			// silently rewrite history on replay.
			return pub, fmt.Errorf("logstore: bad edit op byte %#x in record", op)
		}
		relLen := rd.u16()
		rel := string(rd.bytes(int(relLen)))
		keyLen := rd.u32()
		key := rd.bytes(int(keyLen))
		if rd.err != nil {
			return pub, rd.err
		}
		tup, err := value.DecodeTuple(string(key))
		if err != nil {
			return pub, fmt.Errorf("logstore: bad tuple in record: %w", err)
		}
		pub.Log = append(pub.Log, core.Edit{Insert: op == '+', Rel: rel, Tuple: tup})
	}
	if rd.err != nil {
		return pub, rd.err
	}
	// Optional trailers follow the edit list, in canonical order ('T'
	// then 'Q'), each at most once. Old-format frames end before any
	// trailer; unknown trailer markers and out-of-order trailers are
	// corruption, not extensibility — a reader that skipped data it
	// cannot decode would replay a different history than was written,
	// and a non-canonical order would break the decode/encode
	// exact-inverse property torn-tail repair relies on.
	if len(rd.b) != 0 && rd.b[0] == trailerTrace {
		rd.u8()
		idLen := rd.u16()
		if rd.err == nil && idLen == 0 {
			// The encoder omits the trailer entirely for an empty id, so
			// a zero-length trailer cannot come from Append.
			return pub, fmt.Errorf("logstore: empty trace-id trailer in record")
		}
		pub.TraceID = string(rd.bytes(int(idLen)))
		if rd.err != nil {
			return pub, rd.err
		}
	}
	if len(rd.b) != 0 && rd.b[0] == trailerSeq {
		rd.u8()
		pub.Seq = rd.u64()
		if rd.err != nil {
			return pub, rd.err
		}
		if pub.Seq == 0 {
			// The encoder omits the trailer for seq 0.
			return pub, fmt.Errorf("logstore: zero sequence trailer in record")
		}
	}
	if len(rd.b) != 0 {
		marker := rd.u8()
		if rd.err == nil {
			return pub, fmt.Errorf("logstore: bad trailer marker %#x in record", marker)
		}
		return pub, fmt.Errorf("logstore: %d trailing bytes in record", len(rd.b)+1)
	}
	return pub, nil
}

func readAll(r io.ReadSeeker) ([]Publication, error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("logstore: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("logstore: bad magic %q", head)
	}
	var pubs []Publication
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); errors.Is(err, io.EOF) {
			return pubs, nil
		} else if err != nil {
			return nil, fmt.Errorf("logstore: truncated record header: %w", err)
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > maxFrame {
			return nil, fmt.Errorf("logstore: record length %d exceeds limit", n)
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(r, frame); err != nil {
			return nil, fmt.Errorf("logstore: truncated record: %w", err)
		}
		pub, err := decodeFrame(frame)
		if err != nil {
			return nil, err
		}
		pubs = append(pubs, pub)
	}
}

// scanLenient reads records from the start of a file of the given
// size, stopping at a torn tail instead of failing. It returns the
// complete publications, the offset just past the last complete record
// (the truncation point for repair), and — when the tail is torn — the
// condition found there. Errors that cannot be a crash mid-Append (bad
// magic, an undecodable frame whose bytes are all present, a frame
// length the file could hold but that exceeds the append limit) are
// returned as hard errors.
func scanLenient(r io.ReadSeeker, size int64) (pubs []Publication, good int64, torn, err error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, 0, nil, err
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		// File shorter than the magic: torn during creation.
		return nil, 0, fmt.Errorf("torn file header: %w", err), nil
	}
	if string(head) != magic {
		return nil, 0, nil, fmt.Errorf("logstore: bad magic %q", head)
	}
	good = int64(len(magic))
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); errors.Is(err, io.EOF) {
			return pubs, good, nil, nil
		} else if err != nil {
			return pubs, good, fmt.Errorf("torn record header: %w", err), nil
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if int64(n) > size-good-4 {
			// A length the file cannot hold — garbage from a torn write,
			// or the truncated body of one. Classified (and rejected)
			// before the allocation below, so a torn tail can never make
			// recovery allocate gigabytes from 4 garbage bytes.
			return pubs, good, fmt.Errorf("torn record: length %d exceeds %d remaining bytes", n, size-good-4), nil
		}
		if n > maxFrame {
			return nil, 0, nil, fmt.Errorf("logstore: record %d length %d exceeds limit", len(pubs), n)
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(r, frame); err != nil {
			return pubs, good, fmt.Errorf("torn record body: %w", err), nil
		}
		pub, err := decodeFrame(frame)
		if err != nil {
			// The frame's bytes are all present, so this is not a torn
			// write — refuse to silently drop it.
			return nil, 0, nil, fmt.Errorf("logstore: corrupt record %d: %w", len(pubs), err)
		}
		pubs = append(pubs, pub)
		good += int64(4 + n)
	}
}

type frameReader struct {
	b   []byte
	err error
}

func (r *frameReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("logstore: short record")
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *frameReader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *frameReader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *frameReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *frameReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func appendU16(b []byte, v uint16) []byte {
	var buf [2]byte
	binary.BigEndian.PutUint16(buf[:], v)
	return append(b, buf[:]...)
}

func appendU32(b []byte, v uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	return append(b, buf[:]...)
}

func appendU64(b []byte, v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return append(b, buf[:]...)
}
