// Package logstore provides durable storage for published edit logs —
// the CDSS persistence layer (§2: publishing an edit log makes it
// "globally available via central or distributed storage"; §5 builds on
// Orchestra's "catalog, communications, and persistence layers").
//
// A Store is an append-only file of publications. Each publication is a
// peer name plus an ordered edit log; replaying the file reproduces the
// global publication sequence, so a restarting node can rebuild (or
// catch up) any view.
//
// Record format (integers big-endian):
//
//	magic "OLG1" (once, at file start)
//	per record: uint32 frame length, then frame:
//	  uint16 peer len, peer,
//	  uint32 edit count, per edit: uint8 op ('+'/'-'),
//	    uint16 rel len, rel, uint32 key len, canonical tuple key
package logstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"orchestra/internal/core"
	"orchestra/internal/value"
)

const magic = "OLG1"

// Publication is one published edit log.
type Publication struct {
	Peer string
	Log  core.EditLog
}

// Store is an append-only publication log backed by a file. It is safe
// for concurrent use.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string
	n    int // records appended (including those found at open)
}

// Open opens (or creates) a store at path.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st := &Store{f: f, path: path}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() == 0 {
		if _, err := f.WriteString(magic); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		// Validate and count existing records.
		pubs, err := readAll(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		st.n = len(pubs)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

// Close closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Len returns the number of stored publications.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Append durably records a publication.
func (s *Store) Append(peer string, log core.EditLog) error {
	frame, err := encodeFrame(peer, log)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if _, err := s.f.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := s.f.Write(frame); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.n++
	return nil
}

// Replay reads all publications from the start of the file. The returned
// slice is in publication order.
func (s *Store) Replay() ([]Publication, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	pubs, err := readAll(s.f)
	if err != nil {
		return nil, err
	}
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	return pubs, nil
}

// RestoreInto republishes every stored publication into a CDSS (in
// order). Used at node startup to rebuild the global sequence.
func (s *Store) RestoreInto(c *core.CDSS) error {
	pubs, err := s.Replay()
	if err != nil {
		return err
	}
	for i, p := range pubs {
		if err := c.Publish(p.Peer, p.Log); err != nil {
			return fmt.Errorf("logstore: restoring publication %d: %w", i, err)
		}
	}
	return nil
}

func encodeFrame(peer string, log core.EditLog) ([]byte, error) {
	if len(peer) > 1<<16-1 {
		return nil, fmt.Errorf("logstore: peer name too long")
	}
	var frame []byte
	frame = appendU16(frame, uint16(len(peer)))
	frame = append(frame, peer...)
	frame = appendU32(frame, uint32(len(log)))
	for _, e := range log {
		op := byte('-')
		if e.Insert {
			op = '+'
		}
		frame = append(frame, op)
		if len(e.Rel) > 1<<16-1 {
			return nil, fmt.Errorf("logstore: relation name too long")
		}
		frame = appendU16(frame, uint16(len(e.Rel)))
		frame = append(frame, e.Rel...)
		key := e.Tuple.EncodeKey(nil)
		frame = appendU32(frame, uint32(len(key)))
		frame = append(frame, key...)
	}
	return frame, nil
}

func decodeFrame(frame []byte) (Publication, error) {
	var pub Publication
	rd := &frameReader{b: frame}
	peerLen := rd.u16()
	pub.Peer = string(rd.bytes(int(peerLen)))
	n := rd.u32()
	for i := uint32(0); i < n; i++ {
		op := rd.u8()
		relLen := rd.u16()
		rel := string(rd.bytes(int(relLen)))
		keyLen := rd.u32()
		key := rd.bytes(int(keyLen))
		if rd.err != nil {
			return pub, rd.err
		}
		tup, err := value.DecodeTuple(string(key))
		if err != nil {
			return pub, fmt.Errorf("logstore: bad tuple in record: %w", err)
		}
		pub.Log = append(pub.Log, core.Edit{Insert: op == '+', Rel: rel, Tuple: tup})
	}
	if rd.err != nil {
		return pub, rd.err
	}
	if len(rd.b) != 0 {
		return pub, fmt.Errorf("logstore: %d trailing bytes in record", len(rd.b))
	}
	return pub, nil
}

func readAll(r io.ReadSeeker) ([]Publication, error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("logstore: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("logstore: bad magic %q", head)
	}
	var pubs []Publication
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err == io.EOF {
			return pubs, nil
		} else if err != nil {
			return nil, fmt.Errorf("logstore: truncated record header: %w", err)
		}
		frame := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
		if _, err := io.ReadFull(r, frame); err != nil {
			return nil, fmt.Errorf("logstore: truncated record: %w", err)
		}
		pub, err := decodeFrame(frame)
		if err != nil {
			return nil, err
		}
		pubs = append(pubs, pub)
	}
}

type frameReader struct {
	b   []byte
	err error
}

func (r *frameReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("logstore: short record")
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *frameReader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *frameReader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *frameReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func appendU16(b []byte, v uint16) []byte {
	var buf [2]byte
	binary.BigEndian.PutUint16(buf[:], v)
	return append(b, buf[:]...)
}

func appendU32(b []byte, v uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	return append(b, buf[:]...)
}
