package logstore

import (
	"context"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"orchestra/internal/core"
	"orchestra/internal/obs"
)

// shardPrefix/shardSuffix frame the per-shard segment file names inside
// a sharded bus directory: shard-<hex(peer)>.olg. Hex encoding keeps
// arbitrary peer names filesystem-safe and the mapping bijective.
const (
	shardPrefix = "shard-"
	shardSuffix = ".olg"
)

func shardFileName(peer string) string {
	return shardPrefix + hex.EncodeToString([]byte(peer)) + shardSuffix
}

// shardSegments lists the shard segment files inside dir, sorted by
// name (the order is irrelevant — replay merges by sequence number).
func shardSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, shardPrefix) && strings.HasSuffix(name, shardSuffix) {
			segs = append(segs, filepath.Join(dir, name))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// shardPeer inverts shardFileName.
func shardPeer(path string) (string, error) {
	name := filepath.Base(path)
	enc := strings.TrimSuffix(strings.TrimPrefix(name, shardPrefix), shardSuffix)
	peer, err := hex.DecodeString(enc)
	if err != nil {
		return "", fmt.Errorf("logstore: bad shard file name %q: %w", name, err)
	}
	return string(peer), nil
}

// ShardedBus is the durable publication bus partitioned by owning peer:
// one append-only segment file per shard, all inside one directory.
// Appends to different shards fsync concurrently — each segment has its
// own writer lock — while a global sequence number stamped into every
// frame ('Q' trailer) keeps the fetchable order total: a publication
// becomes visible to Fetch/Subscribe only once every lower-numbered
// publication is visible (the watermark commit), so consumers always
// observe a contiguous prefix of the global order, exactly as with the
// single-file Bus.
//
// Crash safety: a sequence number is only observable (fetchable,
// pushed, or acknowledged to the publisher) after its own frame is
// durable AND the watermark has passed it. A crash can therefore leave
// gaps in the durable sequence — higher-numbered frames whose
// lower-numbered sibling never hit its segment — but only for
// publications that were never acknowledged. Replay sorts all segments'
// frames by sequence number and tolerates the gaps.
type ShardedBus struct {
	dir     string
	mem     *core.MemoryBus
	metrics Metrics

	mu         sync.Mutex
	shards     map[string]*Store
	seq        uint64 // last assigned sequence number
	nextCommit uint64 // next sequence number to publish to mem
	// parked holds durable publications waiting for the watermark; a
	// nil entry is an aborted append (its segment write failed after
	// the sequence number was assigned), which commits as a no-op.
	parked   map[uint64]*parkedPub
	repaired int64
	closed   bool
}

type parkedPub struct {
	peer    string
	log     core.EditLog
	traceID string
}

// OpenShardedBus opens (or creates) a sharded durable bus in dir. If
// legacyPath names an existing single-file bus log and dir does not
// exist yet, the log is migrated one-shot: its publications are
// rewritten into per-shard segments (stamped with their original
// global order) in a temporary directory, which is atomically renamed
// to dir before the legacy file is removed. A crash mid-migration
// leaves either the legacy file (tmp dir discarded, migration redone)
// or the complete dir (legacy file removed on the next open) — never a
// half state.
func OpenShardedBus(dir, legacyPath string) (*ShardedBus, error) {
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		if legacyPath != "" {
			if _, lerr := os.Stat(legacyPath); lerr == nil {
				if err := migrateLegacyBus(dir, legacyPath); err != nil {
					return nil, err
				}
			}
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}
	// dir exists: a legacy file still present was fully migrated (the
	// rename committed before removal) — finish the cleanup.
	if legacyPath != "" {
		if _, err := os.Stat(legacyPath); err == nil {
			if err := os.Remove(legacyPath); err != nil {
				return nil, fmt.Errorf("logstore: removing migrated legacy bus log: %w", err)
			}
		}
	}

	b := &ShardedBus{
		dir:    dir,
		mem:    core.NewMemoryBus(),
		shards: make(map[string]*Store),
		parked: make(map[uint64]*parkedPub),
	}
	segs, err := shardSegments(dir)
	if err != nil {
		return nil, err
	}
	type seqPub struct {
		seq uint64
		pub Publication
	}
	var all []seqPub
	for _, seg := range segs {
		peer, err := shardPeer(seg)
		if err != nil {
			b.closeShards()
			return nil, err
		}
		st, err := Open(seg)
		if err != nil {
			b.closeShards()
			return nil, err
		}
		b.shards[peer] = st
		b.repaired += st.RepairedBytes()
		pubs, err := st.Replay()
		if err != nil {
			b.closeShards()
			return nil, err
		}
		for i, p := range pubs {
			if p.Seq == 0 {
				b.closeShards()
				return nil, fmt.Errorf("logstore: shard %s publication %d has no sequence number", seg, i)
			}
			if p.Peer != peer {
				b.closeShards()
				return nil, fmt.Errorf("logstore: shard %s publication %d owned by %q", seg, i, p.Peer)
			}
			all = append(all, seqPub{seq: p.Seq, pub: p})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for i, sp := range all {
		if i > 0 && sp.seq == all[i-1].seq {
			b.closeShards()
			return nil, fmt.Errorf("logstore: duplicate sequence number %d across shards", sp.seq)
		}
		if err := b.mem.Preload(sp.pub.Peer, sp.pub.Log, sp.pub.TraceID); err != nil {
			b.closeShards()
			return nil, fmt.Errorf("logstore: reloading publication seq %d: %w", sp.seq, err)
		}
	}
	if n := len(all); n > 0 {
		b.seq = all[n-1].seq
	}
	b.nextCommit = b.seq + 1
	return b, nil
}

// migrateLegacyBus rewrites a single-file bus log into a sharded
// directory. The temporary directory commits by rename; the caller
// removes the legacy file after the rename is durable.
func migrateLegacyBus(dir, legacyPath string) error {
	st, err := Open(legacyPath)
	if err != nil {
		return fmt.Errorf("logstore: opening legacy bus log for migration: %w", err)
	}
	pubs, err := st.Replay()
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("logstore: replaying legacy bus log for migration: %w", err)
	}

	tmp := dir + ".migrating"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	stores := make(map[string]*Store)
	closeAll := func() {
		for _, s := range stores {
			s.Close()
		}
	}
	for i, p := range pubs {
		s, ok := stores[p.Peer]
		if !ok {
			s, err = Open(filepath.Join(tmp, shardFileName(p.Peer)))
			if err != nil {
				closeAll()
				return err
			}
			stores[p.Peer] = s
		}
		// Position in the legacy file is the global order; 1-based.
		if err := s.AppendSeq(p.Peer, p.Log, p.TraceID, uint64(i)+1); err != nil {
			closeAll()
			return err
		}
	}
	closeAll()
	if err := syncDir(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, dir); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(dir)); err != nil {
		return err
	}
	return os.Remove(legacyPath)
}

// syncDir fsyncs a directory so renames and file creations inside it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (b *ShardedBus) closeShards() {
	for _, s := range b.shards {
		s.Close()
	}
}

// SetMetrics installs append instruments on every shard segment
// (including ones created by later Appends).
func (b *ShardedBus) SetMetrics(m Metrics) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.metrics = m
	for _, s := range b.shards {
		s.SetMetrics(m)
	}
}

// shardFor returns (creating if needed) the peer's segment store and
// assigns the next global sequence number, under b.mu.
func (b *ShardedBus) shardFor(peer string) (*Store, uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, 0, fmt.Errorf("logstore: bus is closed")
	}
	s, ok := b.shards[peer]
	if !ok {
		var err error
		s, err = Open(filepath.Join(b.dir, shardFileName(peer)))
		if err != nil {
			return nil, 0, err
		}
		s.SetMetrics(b.metrics)
		b.shards[peer] = s
	}
	b.seq++
	return s, b.seq, nil
}

// commit parks a durable publication (or an aborted append, pub nil)
// at seq and drains every contiguously committed publication into the
// in-memory mirror, waking subscribers. Once a frame is durable the
// mirror publish must succeed; failure would desync file and memory,
// so Preload errors are impossible by construction (peer is validated
// before the sequence number is assigned).
func (b *ShardedBus) commit(seq uint64, pub *parkedPub) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parked[seq] = pub
	var err error
	for {
		p, ok := b.parked[b.nextCommit]
		if !ok {
			return err
		}
		delete(b.parked, b.nextCommit)
		if p != nil {
			if perr := b.mem.Preload(p.peer, p.log, p.traceID); perr != nil && err == nil {
				err = perr
			}
		}
		b.nextCommit++
	}
}

// Append implements core.BusAppender. The shard segment append —
// encode, write, fsync — runs outside the bus lock, so publications to
// different peers' shards proceed concurrently; only sequence-number
// assignment and the watermark commit serialize.
func (b *ShardedBus) Append(ctx context.Context, peer string, log core.EditLog) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if peer == "" {
		return fmt.Errorf("logstore: publication without peer")
	}
	traceID := obs.TraceIDFromContext(ctx)
	s, seq, err := b.shardFor(peer)
	if err != nil {
		return err
	}
	if err := s.AppendSeq(peer, log, traceID, seq); err != nil {
		// The sequence number is burned: commit it as a hole so later
		// publications do not wait on it forever.
		b.commit(seq, nil)
		return err
	}
	return b.commit(seq, &parkedPub{peer: peer, log: log, traceID: traceID})
}

// Fetch implements core.BusReader over the committed (contiguous,
// durable) prefix.
func (b *ShardedBus) Fetch(ctx context.Context, from core.Cursor) ([]core.Delta, core.Cursor, error) {
	return b.mem.Fetch(ctx, from)
}

// Horizon implements core.BusReader.
func (b *ShardedBus) Horizon(ctx context.Context) (core.Cursor, error) {
	return b.mem.Horizon(ctx)
}

// Subscribe implements core.BusWatcher. Deltas are delivered only once
// durable and watermark-committed.
func (b *ShardedBus) Subscribe(ctx context.Context, from core.Cursor) (<-chan core.Delta, core.CancelFunc, error) {
	return b.mem.Subscribe(ctx, from)
}

// FetchSince implements the legacy scalar fetch.
//
// Deprecated: use Fetch with a typed core.Cursor.
func (b *ShardedBus) FetchSince(ctx context.Context, cursor int) ([]core.Publication, int, error) {
	return b.mem.FetchSince(ctx, cursor)
}

// Len returns the number of committed publications on the bus.
func (b *ShardedBus) Len() int { return b.mem.Len() }

// RepairedBytes reports how many bytes of torn shard tails were
// dropped when the bus was opened (0 when all segments were clean).
func (b *ShardedBus) RepairedBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.repaired
}

// Path returns the bus's shard directory.
func (b *ShardedBus) Path() string { return b.dir }

// Shards returns the shard names present on disk, sorted.
func (b *ShardedBus) Shards() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.shards))
	for name := range b.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close closes every shard segment. The in-memory sequence stays
// readable; further Appends fail.
func (b *ShardedBus) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	var err error
	for _, s := range b.shards {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
