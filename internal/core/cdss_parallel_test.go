package core

import (
	"context"
	"fmt"
	"testing"
)

// TestCDSSExchangeAllParallel pins CDSS.ExchangeAll's internal
// parallelism: at ExchangeParallelism 1 (the serial fast path) and 4
// (the worker pool — exercised explicitly because GOMAXPROCS may be 1
// on the test machine), every view ends identical, all cursors land on
// the bus horizon, and a rerun is a no-op. Run with -race this also
// covers the concurrent bus fetch + per-view apply.
func TestCDSSExchangeAllParallel(t *testing.T) {
	build := func(par int) *CDSS {
		c := NewCDSS(paperSpec(t, nil), Options{ExchangeParallelism: par}, DeleteProvenance)
		for peer, log := range example3Logs() {
			if err := c.Publish(context.Background(), peer, log); err != nil {
				t.Fatal(err)
			}
		}
		// More churn: a second round of publications, including a
		// deletion, so the coalesced pass has a multi-publication run.
		if err := c.Publish(context.Background(), "PGUS", EditLog{Ins("G", MakeTuple(7, 7, 7))}); err != nil {
			t.Fatal(err)
		}
		if err := c.Publish(context.Background(), "PGUS", EditLog{Del("G", MakeTuple(7, 7, 7))}); err != nil {
			t.Fatal(err)
		}
		// Materialize the global view so ExchangeAll covers it too.
		if _, err := c.View(""); err != nil {
			t.Fatal(err)
		}
		return c
	}

	serial := build(1)
	if _, err := serial.ExchangeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	parallel := build(4)
	if _, err := parallel.ExchangeAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	owners := append([]string{""}, "PGUS", "PBioSQL", "PuBio")
	for _, owner := range owners {
		vs, _ := serial.View(owner)
		vp, _ := parallel.View(owner)
		viewsEqual(t, vp, vs, fmt.Sprintf("view %q parallel-vs-serial", owner))
		if n, err := parallel.Pending(context.Background(), owner); err != nil || n != 0 {
			t.Fatalf("view %q still pending after parallel ExchangeAll: %d, %v", owner, n, err)
		}
	}

	// Idempotence: nothing pending, so a second pass applies nothing.
	stats, err := parallel.ExchangeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for owner, st := range stats {
		if st.InsL+st.DelL+st.InsR+st.DelR != 0 {
			t.Fatalf("rerun applied work to view %q: %+v", owner, st)
		}
	}
}
