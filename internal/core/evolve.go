package core

import (
	"context"
	"fmt"
	"strings"

	"orchestra/internal/provenance"
	"orchestra/internal/trust"
	"orchestra/internal/value"
)

// Spec evolution at the view level (the repair half of internal/evolve):
// a live view is rewired onto a new Spec and its materialized state —
// instances and provenance — is repaired in place instead of being
// recomputed from publication zero.
//
//   - Mapping addition recompiles the program and runs a semi-naive round
//     seeded with only the new mappings' rules (engine.RunRules),
//     so cost scales with the new rules' derivations.
//   - Mapping removal and trust revocation are the paper's
//     provenance-driven deletion generalized from tuple deletions to rule
//     deletions: exactly the tuples whose every derivation uses a
//     removed (or newly untrusted) mapping are deleted, via the same
//     cascade + derivability loop ApplyEdits uses — or via DRed /
//     full recomputation when those strategies are configured.
//
// All operations follow the dirty-flag discipline of maintain.go: a
// repair interrupted by cancellation leaves the view marked dirty, and
// the next operation recovers by full recomputation under the (already
// installed) new spec.

// mappingRuleBase extracts the mapping id from a compiled rule id:
// "m1'" → "m1", "m1”#2" → "m1", "in$R”" → "in$R".
func mappingRuleBase(ruleID string) string {
	if i := strings.IndexByte(ruleID, '#'); i >= 0 {
		ruleID = ruleID[:i]
	}
	return strings.TrimRight(ruleID, "'")
}

// Recompile rewires the view onto newSpec without any state repair —
// correct only for evolutions that cannot change the fixpoint, i.e.
// adding peers/relations (their tables start empty, so the new
// bookkeeping rules derive nothing).
func (v *View) Recompile(ctx context.Context, newSpec *Spec) error {
	var stats ApplyStats
	if err := v.repairIfDirty(ctx, &stats); err != nil {
		return err
	}
	v.spec = newSpec
	return v.compile()
}

// AddMappings rewires the view onto newSpec — the current spec extended
// by the mappings named in added — and repairs materialized state with a
// semi-naive round seeded with only the new mappings' rules: existing
// source instances flow through the new populate rules once, and
// everything they derive propagates through the whole program to
// fixpoint.
func (v *View) AddMappings(ctx context.Context, newSpec *Spec, added []string) (ApplyStats, error) {
	var stats ApplyStats
	if err := v.repairIfDirty(ctx, &stats); err != nil {
		return stats, err
	}
	v.dirty = true
	v.spec = newSpec
	if err := v.compile(); err != nil {
		return stats, err
	}
	addedSet := make(map[string]bool, len(added))
	for _, id := range added {
		addedSet[id] = true
	}
	es, err := v.ev.RunRules(ctx, func(ruleID string) bool {
		return addedSet[mappingRuleBase(ruleID)]
	})
	stats.Engine.Add(es)
	if err != nil {
		return stats, err
	}
	v.dirty = false
	return stats, nil
}

// RemoveMappings rewires the view onto newSpec — the current spec minus
// the mappings named in removed — and deletes exactly the tuples whose
// every derivation in the provenance graph uses a removed mapping (the
// paper's deletion propagation generalized to rule deletions). With
// DeleteDRed the removed mappings' derivations are over-deleted and
// survivors re-derived; with DeleteRecompute the derived state is
// rebuilt from base tables.
func (v *View) RemoveMappings(ctx context.Context, newSpec *Spec, removed []string, strategy DeletionStrategy) (ApplyStats, error) {
	var stats ApplyStats
	if err := v.repairIfDirty(ctx, &stats); err != nil {
		return stats, err
	}
	removedSet := make(map[string]bool, len(removed))
	for _, id := range removed {
		removedSet[id] = true
	}
	var removedInfos []*provenance.MappingInfo
	for _, mi := range v.infos {
		if removedSet[mi.ID] && !mi.Transparent {
			removedInfos = append(removedInfos, mi)
		}
	}
	v.dirty = true

	install := func() error {
		// Dropping a removed mapping's provenance table deletes all of its
		// derivations wholesale; compile() then rebuilds program, engine,
		// and graph without the mapping.
		for _, mi := range removedInfos {
			if pt := v.db.Table(mi.ProvRel); pt != nil {
				stats.ProvRowsDeleted += pt.Len()
			}
			v.db.Drop(mi.ProvRel)
		}
		v.spec = newSpec
		return v.compile()
	}

	switch strategy {
	case DeleteRecompute:
		if err := install(); err != nil {
			return stats, err
		}
		es, err := v.FullRecompute(ctx)
		stats.Engine.Add(es)
		if err != nil {
			return stats, err
		}

	case DeleteDRed:
		// Over-delete every tuple transitively derived through a removed
		// mapping (using the old metadata, while the removed provenance
		// rows are still probeable), then recompile and re-derive.
		ds := v.newDredState(&stats)
		for _, mi := range removedInfos {
			pt := v.db.Table(mi.ProvRel)
			mi := mi
			pt.EachRow(func(r value.Row) bool {
				for i := range mi.Targets {
					ds.overDelete(provenance.NewRef(mi.Targets[i].Rel, mi.Targets[i].Instantiate(r.Tuple, v.sk)))
				}
				return true
			})
		}
		ds.drain()
		if err := install(); err != nil {
			return stats, err
		}
		v.ev.InvalidateAllTransient()
		es, err := v.ev.Run(ctx)
		stats.Engine.Add(es)
		stats.Rederived += es.Derived
		if err != nil {
			return stats, err
		}

	default: // DeleteProvenance
		// Capture the removed derivations' targets before the tables drop,
		// then let the ordinary cascade decide their fate under the new
		// program: a target with surviving alternative derivations stays
		// (subject to the derivability test), the rest cascade away.
		var suspects []provenance.Ref
		seen := make(map[provenance.Ref]bool)
		for _, mi := range removedInfos {
			pt := v.db.Table(mi.ProvRel)
			mi := mi
			pt.EachRow(func(r value.Row) bool {
				for i := range mi.Targets {
					ref := provenance.NewRef(mi.Targets[i].Rel, mi.Targets[i].Instantiate(r.Tuple, v.sk))
					if !seen[ref] {
						seen[ref] = true
						suspects = append(suspects, ref)
					}
				}
				return true
			})
		}
		if err := install(); err != nil {
			return stats, err
		}
		ds := v.newDeletionState(&stats)
		for _, ref := range suspects {
			ds.suspect(ref)
		}
		if err := ds.run(ctx); err != nil {
			return stats, err
		}
	}
	v.dirty = false
	return stats, nil
}

// ApplyTrust rewires the view onto newSpec — same peers and mappings,
// changed trust policies — and repairs: provenance rows failing the new
// effective conditions are revoked through the deletion cascade, and a
// seeded round over the user mappings re-derives anything the new
// policies newly accept from data still in the view.
//
// Only mapping-level conditions (the paper's Θ over derivations) are
// repairable this way. Base-level trust — peer distrust and base
// conditions — filters tuples at *import* time, so both its grants (the
// distrusted tuples were never stored) and its revocations (a deletion
// edit nets out of Rℓ instead of becoming a rejection) are
// history-dependent; callers detect a base-level change with
// BaseTrustChanged and rebuild the affected peer's view from the
// publication history instead.
func (v *View) ApplyTrust(ctx context.Context, newSpec *Spec, strategy DeletionStrategy) (ApplyStats, error) {
	var stats ApplyStats
	if err := v.repairIfDirty(ctx, &stats); err != nil {
		return stats, err
	}
	v.dirty = true
	v.spec = newSpec
	if err := v.compile(); err != nil {
		return stats, err
	}

	if strategy == DeleteRecompute {
		es, err := v.FullRecompute(ctx)
		stats.Engine.Add(es)
		if err != nil {
			return stats, err
		}
		v.dirty = false
		return stats, nil
	}

	// Revocation seeds: provenance rows that fail the new conditions.
	var revoke []provHandle
	for _, mi := range v.infos {
		if mi.Transparent {
			continue
		}
		conds := v.effectiveConditions(mi.ID)
		if len(conds) == 0 {
			continue
		}
		pt := v.db.Table(mi.ProvRel)
		mi := mi
		pt.EachRow(func(r value.Row) bool {
			env := varEnv(mi.Vars, r.Tuple)
			for _, c := range conds {
				if !c.Accept.Eval(env) {
					revoke = append(revoke, provHandle{mi: mi, row: r})
					break
				}
			}
			return true
		})
	}

	if strategy == DeleteDRed {
		ds := v.newDredState(&stats)
		for _, h := range revoke {
			pt := v.db.Table(h.mi.ProvRel)
			if pt.DeleteRow(h.row) {
				v.ev.InvalidateTransient(h.mi.ProvRel)
				stats.ProvRowsDeleted++
				for i := range h.mi.Targets {
					ds.overDelete(provenance.NewRef(h.mi.Targets[i].Rel, h.mi.Targets[i].Instantiate(h.row.Tuple, v.sk)))
				}
			}
		}
		ds.drain()
		// The full re-run both re-derives over-deleted survivors and picks
		// up anything the new policies newly accept.
		v.ev.InvalidateAllTransient()
		es, err := v.ev.Run(ctx)
		stats.Engine.Add(es)
		stats.Rederived += es.Derived
		if err != nil {
			return stats, err
		}
		v.dirty = false
		return stats, nil
	}

	ds := v.newDeletionState(&stats)
	ds.provDel = append(ds.provDel, revoke...)
	if err := ds.run(ctx); err != nil {
		return stats, err
	}

	// Grant side: naive-fire every user mapping's rules once under the new
	// filters; the emit-time duplicate check drops everything already
	// present, so only newly trusted derivations materialize and
	// propagate.
	userIDs := make(map[string]bool, len(newSpec.Mappings))
	for _, m := range newSpec.Mappings {
		userIDs[m.ID] = true
	}
	es, err := v.ev.RunRules(ctx, func(ruleID string) bool {
		return userIDs[mappingRuleBase(ruleID)]
	})
	stats.Engine.Add(es)
	if err != nil {
		return stats, err
	}
	v.dirty = false
	return stats, nil
}

// varEnv builds a trust-predicate environment binding variable names to
// a provenance row's column values.
func varEnv(vars []string, row value.Tuple) value.Env {
	m := make(map[string]value.Value, len(vars))
	for i, v := range vars {
		m[v] = row[i]
	}
	return value.MapEnv(m)
}

// BaseTrustChanged reports whether switching a peer's policy from old to
// new touches its base-level trust — peer distrust or base conditions.
// Base-level trust filters tuples at *import* time, so any change is
// history-dependent and the peer's view must be rebuilt from the
// publication history: a grant cannot resurrect tuples that were never
// stored, and a revocation cannot reconstruct the rejection rows that
// deletion edits of now-distrusted tuples would have left behind.
// Mapping-level conditions never force a replay — ApplyTrust repairs
// them from the provenance graph.
func BaseTrustChanged(old, new *Spec, peer string) bool {
	render := func(p *trust.Policy) string {
		if p == nil {
			return ""
		}
		var b strings.Builder
		for _, q := range p.DistrustedPeers() {
			fmt.Fprintf(&b, "peer %s\n", q)
		}
		for _, bc := range p.BaseConditions() {
			fmt.Fprintf(&b, "base %s when %s\n", bc.Rel, bc.Distrust)
		}
		return b.String()
	}
	return render(old.Policy(peer)) != render(new.Policy(peer))
}
