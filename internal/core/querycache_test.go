package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"orchestra/internal/engine"
)

func cacheBackends() []engine.Backend {
	return []engine.Backend{engine.BackendIndexed, engine.BackendHash}
}

func TestQueryCacheHitAndPreciseInvalidation(t *testing.T) {
	for _, be := range cacheBackends() {
		t.Run(be.String(), func(t *testing.T) {
			v := loadExample3(t, paperSpec(t, nil), Options{Backend: be})
			qB := "ans(i,n) :- B(i,n)"
			// G is a source relation no mapping derives into, so a B write
			// must leave qG's cache entry valid.
			qG := "ansg(i,c,n) :- G(i,c,n)"

			first, err := v.Query(context.Background(), qB, false)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := v.Query(context.Background(), qG, false); err != nil {
				t.Fatal(err)
			}
			again, err := v.Query(context.Background(), qB, false)
			if err != nil {
				t.Fatal(err)
			}
			if len(again) != len(first) {
				t.Fatalf("cached result %v != fresh %v", again, first)
			}
			hits, misses, _ := v.QueryCacheStats()
			if hits != 1 || misses != 2 {
				t.Fatalf("after warmup: hits=%d misses=%d, want 1/2", hits, misses)
			}

			// A pass touching B must invalidate qB but keep qG cached.
			if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("B", MakeTuple(9, 9))}, DeleteProvenance); err != nil {
				t.Fatal(err)
			}
			afterB, err := v.Query(context.Background(), qB, false)
			if err != nil {
				t.Fatal(err)
			}
			if len(afterB) != len(first)+1 {
				t.Fatalf("stale result served after write: %v", afterB)
			}
			if _, err := v.Query(context.Background(), qG, false); err != nil {
				t.Fatal(err)
			}
			hits2, misses2, _ := v.QueryCacheStats()
			if misses2 != misses+1 {
				t.Fatalf("only qB should have missed after the B write: misses %d -> %d", misses, misses2)
			}
			if hits2 != hits+1 {
				t.Fatalf("qG should still be cached after the B write: hits %d -> %d", hits, hits2)
			}
			// Steady state: both fully cached again.
			if _, err := v.Query(context.Background(), qB, false); err != nil {
				t.Fatal(err)
			}
			if _, err := v.Query(context.Background(), qG, false); err != nil {
				t.Fatal(err)
			}
			hits3, _, _ := v.QueryCacheStats()
			if hits3 != hits2+2 {
				t.Fatalf("steady state not cached: hits %d -> %d", hits2, hits3)
			}
		})
	}
}

func TestQueryCacheAlphaEquivalence(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	if _, err := v.Query(context.Background(), "ans(x,y) :- U(x,y)", false); err != nil {
		t.Fatal(err)
	}
	// Same query, renamed variables: must hit the same entry.
	if _, err := v.Query(context.Background(), "ans(a,b) :- U(a,b)", false); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := v.QueryCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("α-renamed query did not share the entry: hits=%d misses=%d", hits, misses)
	}
	// includeNulls is part of the key, not a hit.
	if _, err := v.Query(context.Background(), "ans(a,b) :- U(a,b)", true); err != nil {
		t.Fatal(err)
	}
	if h, m, _ := v.QueryCacheStats(); h != 1 || m != 2 {
		t.Fatalf("includeNulls variant must be a distinct entry: hits=%d misses=%d", h, m)
	}
}

func TestQueryCacheDisabled(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{QueryCacheSize: -1})
	for i := 0; i < 3; i++ {
		if _, err := v.Query(context.Background(), "ans(x,y) :- U(x,y)", false); err != nil {
			t.Fatal(err)
		}
	}
	if h, m, e := v.QueryCacheStats(); h != 0 || m != 0 || e != 0 {
		t.Fatalf("disabled cache recorded activity: %d/%d/%d", h, m, e)
	}
}

func TestQueryCacheCapacityEviction(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{QueryCacheSize: 2})
	queries := []string{
		"a1(i,n) :- B(i,n)",
		"a2(n,c) :- U(n,c)",
		"a3(i) :- B(i,n), U(n,c)",
	}
	for _, q := range queries {
		if _, err := v.Query(context.Background(), q, false); err != nil {
			t.Fatal(err)
		}
	}
	_, _, evictions := v.QueryCacheStats()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (cap 2, 3 entries)", evictions)
	}
	// The oldest entry (a1) was evicted; re-running it misses.
	if _, err := v.Query(context.Background(), queries[0], false); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := v.QueryCacheStats(); hits != 0 {
		t.Fatalf("evicted entry served a hit")
	}
}

func TestQueryErrorPositions(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	cases := []struct {
		q       string
		pos     int
		msgPart string
	}{
		{"ans(x,y)", 0, "missing ':-'"},
		{"ans(x,x) :- U(x,y)", 0, "repeats variable"},
		{"ans(x,y) :- Zed(x,y)", 12, "unknown relation"},
		{"ans(x,y) :- U(x,y) where x !!", 25, "selection"},
	}
	for _, c := range cases {
		_, err := v.Query(context.Background(), c.q, false)
		var qe *QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("%q: error %v is not a *QueryError", c.q, err)
		}
		if qe.Pos != c.pos {
			t.Errorf("%q: Pos = %d, want %d", c.q, qe.Pos, c.pos)
		}
		if !strings.Contains(qe.Msg, c.msgPart) {
			t.Errorf("%q: Msg %q missing %q", c.q, qe.Msg, c.msgPart)
		}
		if qe.Query != c.q {
			t.Errorf("%q: Query field = %q", c.q, qe.Query)
		}
		if !strings.Contains(qe.Detail(), "^") {
			t.Errorf("%q: Detail() has no caret:\n%s", c.q, qe.Detail())
		}
	}
}

func TestExplainQueryView(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	out, err := v.ExplainQuery(context.Background(), "ans(i) :- G(i,c,n), B(i,n) where i >= 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cost-based", "where i >= 1", "estimated results"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
	// Explain must not leave the workspace table behind.
	if v.db.Table("q$ans") != nil {
		t.Fatal("explain leaked q$ans workspace")
	}
	if _, err := v.ExplainQuery(context.Background(), "nope"); err == nil {
		t.Fatal("bad query accepted by explain")
	}
}
