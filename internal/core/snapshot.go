package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"orchestra/internal/storage"
	"orchestra/internal/value"
)

// View snapshots persist a view's auxiliary store between update
// exchanges (§4: "Between update exchange operations, it maintains copies
// of all relations, enabling future operations to be incremental"). A
// snapshot records the Skolem interner (so labeled-null identities
// survive) followed by every internal table.
//
// Format: magic "ORV2", the spec fingerprint as a length-prefixed blob
// (so restores against a different confederation fail loudly instead of
// resurrecting stale state — see Spec.Fingerprint and internal/evolve),
// uint32 Skolem count, then per Skolem term in id order: uint32 fn len,
// fn, uint32 args-key len, canonical args key; then a storage snapshot.

const viewMagic = "ORV2"

// ErrSnapshotSpecMismatch marks a snapshot taken under a different spec
// than the one it is being restored against. Recovery paths that can
// rebuild from the publication history (the statestore open) match on
// it to discard the stale snapshot instead of failing.
var ErrSnapshotSpecMismatch = errors.New("core: snapshot was taken under a different spec")

// WriteSnapshot serializes the view's state to w.
func (v *View) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(viewMagic); err != nil {
		return err
	}
	if err := writeBlob(bw, []byte(v.spec.Fingerprint())); err != nil {
		return err
	}
	n := v.sk.Len()
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(n))
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for id := int64(1); id <= int64(n); id++ {
		fn, args, ok := v.sk.Resolve(id)
		if !ok {
			return fmt.Errorf("core: snapshot: missing Skolem id %d", id)
		}
		if err := writeBlob(bw, []byte(fn)); err != nil {
			return err
		}
		if err := writeBlob(bw, args.EncodeKey(nil)); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Transient workspaces (inverse-program and query tables) are always
	// empty between operations and are rebuilt lazily; skip them so
	// snapshots restore against a fresh view of the same spec.
	return v.db.WriteSnapshotFiltered(w, func(name string) bool {
		return !strings.HasPrefix(name, "c$") && !strings.HasPrefix(name, "pi$") &&
			!strings.HasPrefix(name, "q$")
	})
}

// RestoreView rebuilds a view from a snapshot produced by WriteSnapshot
// against the same Spec, owner and options. The restored view is ready
// for further incremental exchanges.
func RestoreView(spec *Spec, owner string, opts Options, r io.Reader) (*View, error) {
	v, err := NewView(spec, owner, opts)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(viewMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading snapshot magic: %w", err)
	}
	if string(magic) == "ORCV" {
		return nil, fmt.Errorf("core: snapshot predates the spec-fingerprint format (magic ORCV); discard it and re-exchange from the publication history")
	}
	if string(magic) != viewMagic {
		return nil, fmt.Errorf("core: bad view snapshot magic %q", magic)
	}
	fp, err := readBlob(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading snapshot spec fingerprint: %w", err)
	}
	if want := spec.Fingerprint(); string(fp) != want {
		return nil, fmt.Errorf("%w (snapshot fingerprint %s, this spec is %s); re-exchange from the publication history instead of restoring",
			ErrSnapshotSpecMismatch, fp, want)
	}
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(buf[:])
	// Re-intern in id order so every persisted null id resolves to the
	// same term.
	for i := uint32(0); i < n; i++ {
		fnBytes, err := readBlob(br)
		if err != nil {
			return nil, err
		}
		argsKey, err := readBlob(br)
		if err != nil {
			return nil, err
		}
		args, err := value.DecodeTuple(string(argsKey))
		if err != nil {
			return nil, fmt.Errorf("core: snapshot Skolem %d: %w", i+1, err)
		}
		got := v.sk.Apply(string(fnBytes), args)
		if got.NullID() != int64(i+1) {
			return nil, fmt.Errorf("core: snapshot Skolem ids diverged at %d", i+1)
		}
	}
	loaded, err := storage.ReadSnapshot(br)
	if err != nil {
		return nil, err
	}
	// Copy loaded rows into the view's (already created, engine-bound)
	// tables.
	for _, name := range loaded.Names() {
		dst := v.db.Table(name)
		if dst == nil {
			return nil, fmt.Errorf("core: snapshot table %q not part of this spec", name)
		}
		src := loaded.Table(name)
		if src.Arity() != dst.Arity() {
			return nil, fmt.Errorf("core: snapshot table %q arity %d, spec expects %d",
				name, src.Arity(), dst.Arity())
		}
		src.Each(func(row value.Tuple) bool {
			dst.Insert(row)
			return true
		})
	}
	v.ev.InvalidateAllTransient()
	return v, nil
}

func writeBlob(w io.Writer, b []byte) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(len(b)))
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBlob(r io.Reader) ([]byte, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, err
	}
	b := make([]byte, binary.BigEndian.Uint32(buf[:]))
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
