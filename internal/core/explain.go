package core

import "context"

// ExplainQuery renders the physical plan the read path would use for q:
// the chosen join order, each step's access path (warm persistent index,
// transient hash build, or scan), per-step cardinality estimates, and
// the estimated result size. It compiles the query exactly as
// Query would — including the repair-if-dirty pass, so the plan
// reflects the statistics a real evaluation would see — but does not run
// it. Cancellation is plumbed into the repair pass.
func (v *View) ExplainQuery(ctx context.Context, q string) (string, error) {
	rule, err := v.parseQuery(q)
	if err != nil {
		return "", err
	}
	var repairStats ApplyStats
	if err := v.repairIfDirty(ctx, &repairStats); err != nil {
		return "", err
	}
	ev, _, cleanup, err := v.compileQuery(rule)
	if err != nil {
		return "", err
	}
	defer cleanup()
	return ev.ExplainString(), nil
}
