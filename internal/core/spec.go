package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/schema"
	"orchestra/internal/tgd"
	"orchestra/internal/trust"
)

// Spec is the static description of a CDSS: the peers and their schemas
// (Σ), the schema mappings (M), and each peer's trust policy. A Spec is
// immutable once validated; Views are instantiated from it.
type Spec struct {
	Universe *schema.Universe
	Mappings []*tgd.TGD
	// Policies maps peer name → trust policy; absent peers trust
	// everything (the paper's trivially-true Θ default).
	Policies map[string]*trust.Policy
}

// NewSpec validates the CDSS description: mappings are well formed over
// the universe, mapping ids are unique, and the mapping set is weakly
// acyclic (§3.1's decidability requirement).
func NewSpec(u *schema.Universe, mappings []*tgd.TGD, policies map[string]*trust.Policy) (*Spec, error) {
	if u == nil {
		return nil, fmt.Errorf("core: nil universe")
	}
	ids := make(map[string]bool)
	for _, m := range mappings {
		if m.ID == "" {
			return nil, fmt.Errorf("core: mapping without id: %s", m)
		}
		if ids[m.ID] {
			return nil, fmt.Errorf("core: duplicate mapping id %q", m.ID)
		}
		ids[m.ID] = true
		if err := m.Validate(u); err != nil {
			return nil, err
		}
	}
	if err := tgd.CheckWeaklyAcyclic(mappings); err != nil {
		return nil, err
	}
	if policies == nil {
		policies = make(map[string]*trust.Policy)
	}
	for name := range policies {
		if u.Peer(name) == nil {
			return nil, fmt.Errorf("core: policy for unknown peer %q", name)
		}
	}
	return &Spec{Universe: u, Mappings: mappings, Policies: policies}, nil
}

// Policy returns the policy of a peer (nil means trust-all).
func (s *Spec) Policy(peer string) *trust.Policy { return s.Policies[peer] }

// Mapping returns the mapping with the given id, or nil.
func (s *Spec) Mapping(id string) *tgd.TGD {
	for _, m := range s.Mappings {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// Fingerprint returns a stable digest of the whole CDSS description —
// peers and their relation signatures, the mapping set, and every trust
// policy. Declaration order does not matter (peers sort by name,
// mappings by id): two Specs share a fingerprint iff they describe the
// same confederation, so a spec reached by evolution operations
// fingerprints identically to the equivalent spec parsed from a file.
// The digest identifies which spec a snapshot or state directory was
// taken under (spec evolution bumps it; see internal/evolve).
func (s *Spec) Fingerprint() string {
	h := sha256.New()
	peers := append([]*schema.Peer(nil), s.Universe.Peers()...)
	sort.Slice(peers, func(i, j int) bool { return peers[i].Name < peers[j].Name })
	for _, p := range peers {
		fmt.Fprintf(h, "peer %s\n", p.Name)
		for _, r := range p.Schema.Relations() {
			fmt.Fprintf(h, "  relation %s\n", r)
		}
	}
	mappings := append([]*tgd.TGD(nil), s.Mappings...)
	sort.Slice(mappings, func(i, j int) bool { return mappings[i].ID < mappings[j].ID })
	for _, m := range mappings {
		fmt.Fprintf(h, "mapping %s\n", m)
	}
	withPolicy := make([]string, 0, len(s.Policies))
	for name, pol := range s.Policies {
		if pol != nil {
			withPolicy = append(withPolicy, name)
		}
	}
	sort.Strings(withPolicy)
	for _, name := range withPolicy {
		// Describe renders the directives in declaration order; skip
		// trust-all policies so an empty policy equals no policy.
		d := s.Policies[name].Describe()
		if strings.Contains(d, "trusts everything") {
			continue
		}
		fmt.Fprint(h, d)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// PeerOf returns the owning peer of a user relation, or "".
func (s *Spec) PeerOf(rel string) string {
	if r := s.Universe.Relation(rel); r != nil {
		return r.Peer
	}
	return ""
}
