package core

import (
	"fmt"

	"orchestra/internal/schema"
	"orchestra/internal/tgd"
	"orchestra/internal/trust"
)

// Spec is the static description of a CDSS: the peers and their schemas
// (Σ), the schema mappings (M), and each peer's trust policy. A Spec is
// immutable once validated; Views are instantiated from it.
type Spec struct {
	Universe *schema.Universe
	Mappings []*tgd.TGD
	// Policies maps peer name → trust policy; absent peers trust
	// everything (the paper's trivially-true Θ default).
	Policies map[string]*trust.Policy
}

// NewSpec validates the CDSS description: mappings are well formed over
// the universe, mapping ids are unique, and the mapping set is weakly
// acyclic (§3.1's decidability requirement).
func NewSpec(u *schema.Universe, mappings []*tgd.TGD, policies map[string]*trust.Policy) (*Spec, error) {
	if u == nil {
		return nil, fmt.Errorf("core: nil universe")
	}
	ids := make(map[string]bool)
	for _, m := range mappings {
		if m.ID == "" {
			return nil, fmt.Errorf("core: mapping without id: %s", m)
		}
		if ids[m.ID] {
			return nil, fmt.Errorf("core: duplicate mapping id %q", m.ID)
		}
		ids[m.ID] = true
		if err := m.Validate(u); err != nil {
			return nil, err
		}
	}
	if err := tgd.CheckWeaklyAcyclic(mappings); err != nil {
		return nil, err
	}
	if policies == nil {
		policies = make(map[string]*trust.Policy)
	}
	for name := range policies {
		if u.Peer(name) == nil {
			return nil, fmt.Errorf("core: policy for unknown peer %q", name)
		}
	}
	return &Spec{Universe: u, Mappings: mappings, Policies: policies}, nil
}

// Policy returns the policy of a peer (nil means trust-all).
func (s *Spec) Policy(peer string) *trust.Policy { return s.Policies[peer] }

// Mapping returns the mapping with the given id, or nil.
func (s *Spec) Mapping(id string) *tgd.TGD {
	for _, m := range s.Mappings {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// PeerOf returns the owning peer of a user relation, or "".
func (s *Spec) PeerOf(rel string) string {
	if r := s.Universe.Relation(rel); r != nil {
		return r.Peer
	}
	return ""
}
