package core

import (
	"fmt"

	"orchestra/internal/value"
)

// CDSS orchestrates a confederation of peers over one Spec: peers publish
// edit logs (making them globally visible), and each peer performs update
// exchange at its own pace, importing every log published since its last
// exchange into its own view (§2's operational model). The special view
// "" is the global trust-all observer used by experiments.
type CDSS struct {
	spec     *Spec
	opts     Options
	strategy DeletionStrategy

	views map[string]*View
	// published is the global publication sequence.
	published []publication
	// cursor[viewOwner] = number of publications already consumed.
	cursor map[string]int
}

type publication struct {
	peer string
	log  EditLog
}

// NewCDSS creates the orchestrator.
func NewCDSS(spec *Spec, opts Options, strategy DeletionStrategy) *CDSS {
	return &CDSS{
		spec:     spec,
		opts:     opts,
		strategy: strategy,
		views:    make(map[string]*View),
		cursor:   make(map[string]int),
	}
}

// Spec returns the CDSS description.
func (c *CDSS) Spec() *Spec { return c.spec }

// View returns (lazily creating) the view of a peer, or the global view
// for "".
func (c *CDSS) View(peer string) (*View, error) {
	if v, ok := c.views[peer]; ok {
		return v, nil
	}
	v, err := NewView(c.spec, peer, c.opts)
	if err != nil {
		return nil, err
	}
	c.views[peer] = v
	return v, nil
}

// Publish appends a peer's edit log to the global sequence after
// validating that every edit touches one of the peer's own relations
// (peers edit only their local instance, §2).
func (c *CDSS) Publish(peer string, log EditLog) error {
	p := c.spec.Universe.Peer(peer)
	if p == nil {
		return fmt.Errorf("core: unknown peer %q", peer)
	}
	for _, e := range log {
		rel := c.spec.Universe.Relation(e.Rel)
		if rel == nil {
			return fmt.Errorf("core: edit %s references unknown relation", e)
		}
		if rel.Peer != peer {
			return fmt.Errorf("core: peer %q cannot edit relation %q of peer %q", peer, e.Rel, rel.Peer)
		}
		if len(e.Tuple) != rel.Arity() {
			return fmt.Errorf("core: edit %s has wrong arity for %s", e, rel.Name)
		}
	}
	c.published = append(c.published, publication{peer: peer, log: log})
	return nil
}

// Exchange performs update exchange for a peer: all publications since
// the peer's previous exchange are imported into its view, in global
// publication order, with deletions propagated by the configured
// strategy and trust applied per the view owner's policy.
func (c *CDSS) Exchange(peer string) (ApplyStats, error) {
	v, err := c.View(peer)
	if err != nil {
		return ApplyStats{}, err
	}
	var stats ApplyStats
	for i := c.cursor[peer]; i < len(c.published); i++ {
		s, err := v.ApplyEdits(c.published[i].log, c.strategy)
		stats.Add(s)
		if err != nil {
			return stats, err
		}
		c.cursor[peer] = i + 1
	}
	return stats, nil
}

// ExchangeAll runs Exchange for every peer (and the global view if it has
// been created), in peer registration order.
func (c *CDSS) ExchangeAll() (map[string]ApplyStats, error) {
	out := make(map[string]ApplyStats)
	for _, p := range c.spec.Universe.Peers() {
		s, err := c.Exchange(p.Name)
		out[p.Name] = s
		if err != nil {
			return out, err
		}
	}
	if _, ok := c.views[""]; ok {
		s, err := c.Exchange("")
		out[""] = s
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Pending reports how many publications a peer has not yet imported.
func (c *CDSS) Pending(peer string) int { return len(c.published) - c.cursor[peer] }

// MakeTuple is a convenience for building tuples in specs and tests:
// ints become integer values, strings become string values.
func MakeTuple(vals ...any) value.Tuple {
	t := make(value.Tuple, len(vals))
	for i, x := range vals {
		switch v := x.(type) {
		case int:
			t[i] = value.Int(int64(v))
		case int64:
			t[i] = value.Int(v)
		case string:
			t[i] = value.String(v)
		case value.Value:
			t[i] = v
		default:
			panic(fmt.Sprintf("core: MakeTuple: unsupported %T", x))
		}
	}
	return t
}
