package core

import (
	"context"
	"fmt"

	"orchestra/internal/exchange"
	"orchestra/internal/value"
)

// CDSS orchestrates a confederation of peers over one Spec: peers publish
// edit logs to a PublicationBus (making them globally visible), and each
// peer performs update exchange at its own pace, importing every log
// published since its last exchange into its own view (§2's operational
// model). The special view "" is the global trust-all observer used by
// experiments.
//
// A CDSS is not safe for concurrent use; the public orchestra facade
// layers locking on top.
type CDSS struct {
	spec     *Spec
	opts     Options
	strategy DeletionStrategy

	// bus is the global publication sequence (in-memory by default).
	bus PublicationBus
	// views maps owner → materialized view.
	views map[string]*View
	// cursor[viewOwner] = bus position already consumed.
	cursor map[string]Cursor
}

// NewCDSS creates the orchestrator over a private in-memory bus.
func NewCDSS(spec *Spec, opts Options, strategy DeletionStrategy) *CDSS {
	return NewCDSSOn(NewMemoryBus(), spec, opts, strategy)
}

// NewCDSSOn creates the orchestrator over an existing publication bus —
// possibly remote, possibly shared with other CDSS nodes.
func NewCDSSOn(bus PublicationBus, spec *Spec, opts Options, strategy DeletionStrategy) *CDSS {
	return &CDSS{
		spec:     spec,
		opts:     opts,
		strategy: strategy,
		bus:      bus,
		views:    make(map[string]*View),
		cursor:   make(map[string]Cursor),
	}
}

// Bus returns the publication bus the CDSS exchanges through.
func (c *CDSS) Bus() PublicationBus { return c.bus }

// Spec returns the CDSS description.
func (c *CDSS) Spec() *Spec { return c.spec }

// View returns (lazily creating) the view of a peer, or the global view
// for "".
func (c *CDSS) View(peer string) (*View, error) {
	if v, ok := c.views[peer]; ok {
		return v, nil
	}
	v, err := NewView(c.spec, peer, c.opts)
	if err != nil {
		return nil, err
	}
	c.views[peer] = v
	return v, nil
}

// Publish appends a peer's edit log to the global sequence after
// validating that every edit touches one of the peer's own relations
// (peers edit only their local instance, §2). The context covers the
// bus round-trip.
func (c *CDSS) Publish(ctx context.Context, peer string, log EditLog) error {
	return PublishTo(ctx, c.bus, c.spec, peer, log)
}

// Exchange performs update exchange for a peer: all publications since
// the peer's previous exchange are imported into its view, in global
// publication order, with deletions propagated by the configured
// strategy and trust applied per the view owner's policy. Cancellation
// is plumbed into the bus fetch and the engine's fixpoint loops.
func (c *CDSS) Exchange(ctx context.Context, peer string) (ApplyStats, error) {
	v, err := c.View(peer)
	if err != nil {
		return ApplyStats{}, err
	}
	next, stats, err := ExchangeInto(ctx, c.bus, v, c.cursor[peer], c.strategy)
	c.cursor[peer] = next
	return stats, err
}

// ExchangeAll runs Exchange for every peer (and the global view if it
// has been created), in peer registration order. The per-view
// imports run concurrently over the exchange scheduler, bounded by
// Options.ExchangeParallelism (0 = GOMAXPROCS, distinct from the
// engine-worker bound Options.Parallelism), each coalescing its
// pending run into one net apply: the views are data-independent
// consumers of the bus, and a CDSS — though not safe for concurrent
// use by callers — may parallelize internally because every view's
// pass touches only that view and its cursor slot. (The public
// orchestra facade layers the same scheduler and its options on top;
// this is the embedded-core equivalent.) On error, views whose passes
// did not run are omitted from the result map.
func (c *CDSS) ExchangeAll(ctx context.Context) (map[string]ApplyStats, error) {
	owners := make([]string, 0, len(c.spec.Universe.Peers())+1)
	for _, p := range c.spec.Universe.Peers() {
		owners = append(owners, p.Name)
	}
	if _, ok := c.views[""]; ok {
		owners = append(owners, "")
	}
	// Materialize every view up front (view creation mutates c.views).
	for _, owner := range owners {
		if _, err := c.View(owner); err != nil {
			return make(map[string]ApplyStats), err
		}
	}

	nexts := make([]Cursor, len(owners))
	tasks := make([]exchange.Task[ApplyStats], len(owners))
	for i, owner := range owners {
		tasks[i] = exchange.Task[ApplyStats]{Owner: owner, Run: func(ctx context.Context) (ApplyStats, error) {
			next, stats, err := ExchangeCoalesced(ctx, c.bus, c.views[owner], c.cursor[owner], c.strategy)
			nexts[i] = next // distinct slot per task, read only after Run returns
			return stats, err
		}}
	}
	out, err := exchange.NewScheduler[ApplyStats](c.opts.ExchangeParallelism).Run(ctx, tasks)
	for i, owner := range owners {
		if _, ran := out[owner]; ran {
			c.cursor[owner] = nexts[i]
		}
	}
	return out, err
}

// Pending reports how many publications a peer has not yet imported.
// Counting pending publications may consult a remote bus, so the
// context covers that round-trip.
func (c *CDSS) Pending(ctx context.Context, peer string) (int, error) {
	h, err := c.bus.Horizon(ctx)
	if err != nil {
		return 0, err
	}
	return max(h.Total()-c.cursor[peer].Total(), 0), nil
}

// Cursor reports a peer's current bus position.
func (c *CDSS) Cursor(peer string) Cursor { return c.cursor[peer] }

// MakeTuple is a convenience for building tuples in specs and tests:
// ints become integer values, strings become string values.
func MakeTuple(vals ...any) value.Tuple {
	t := make(value.Tuple, len(vals))
	for i, x := range vals {
		switch v := x.(type) {
		case int:
			t[i] = value.Int(int64(v))
		case int64:
			t[i] = value.Int(v)
		case string:
			t[i] = value.String(v)
		case value.Value:
			t[i] = v
		default:
			panic(fmt.Sprintf("core: MakeTuple: unsupported %T", x))
		}
	}
	return t
}
