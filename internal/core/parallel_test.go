package core_test

import (
	"context"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/engine"
	"orchestra/internal/workload"
)

// TestParallelViewEquivalence drives the full update-exchange pipeline —
// insertions, provenance-driven deletions, more insertions — at
// Parallelism 1 and 8 on both backends and asserts the views are
// indistinguishable: same instances, same provenance tables, same
// labeled-null identities, same Derived counts. Under CI's -race matrix
// this exercises concurrent rule evaluation end to end.
func TestParallelViewEquivalence(t *testing.T) {
	cfg := workload.Config{
		Peers:    4,
		Topology: workload.TopologyComplete,
		AttrMode: workload.AttrsShared,
		Dataset:  workload.DatasetString,
		Seed:     7,
	}
	for _, be := range []engine.Backend{engine.BackendIndexed, engine.BackendHash} {
		t.Run(be.String(), func(t *testing.T) {
			run := func(par int) (string, int) {
				w, err := workload.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				v, err := core.NewView(w.Spec, "", core.Options{Backend: be, Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				derived := 0
				apply := func(log core.EditLog) {
					st, err := v.ApplyEdits(context.Background(), log, core.DeleteProvenance)
					if err != nil {
						t.Fatal(err)
					}
					derived += st.Engine.Derived
				}
				for _, peer := range w.PeerNames() {
					apply(w.GenInsertions(peer, 25))
				}
				for _, peer := range w.PeerNames() {
					apply(w.GenDeletions(peer, 8))
				}
				for _, peer := range w.PeerNames() {
					apply(w.GenInsertions(peer, 5))
				}
				return v.DB().Dump(), derived
			}
			seqDump, seqDerived := run(1)
			parDump, parDerived := run(8)
			if parDump != seqDump {
				t.Fatal("parallel view state differs from sequential")
			}
			if parDerived != seqDerived {
				t.Fatalf("parallel Derived = %d, sequential = %d", parDerived, seqDerived)
			}
		})
	}
}
