package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"orchestra/internal/datalog"
	"orchestra/internal/engine"
	"orchestra/internal/obs"
	"orchestra/internal/tgd"
	"orchestra/internal/trust"
	"orchestra/internal/value"
)

// QueryError is a structured parse/validation failure for the query
// surface. Pos is a byte offset into Query pointing at the fragment the
// message is about, so callers (the CLI, tests, editors) can render a
// caret instead of making users eyeball the whole string.
type QueryError struct {
	Query string
	Pos   int
	Msg   string
}

func (e *QueryError) Error() string {
	return fmt.Sprintf("core: query error at offset %d: %s", e.Pos, e.Msg)
}

// Detail renders the error with the query text and a caret under the
// offending position — the CLI's error surface.
func (e *QueryError) Detail() string {
	pos := e.Pos
	if pos > len(e.Query) {
		pos = len(e.Query)
	}
	return fmt.Sprintf("%s\n  %s\n  %s^", e.Msg, e.Query, strings.Repeat(" ", pos))
}

func qerr(q string, pos int, format string, args ...any) error {
	return &QueryError{Query: q, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Query answers a conjunctive query over the view's curated instances
// with the certain-answers semantics of §2.1: tuples containing labeled
// nulls are discarded unless includeNulls is set (the "superset of the
// certain answers" option the paper mentions).
//
// The query syntax is datalog with an optional selection clause:
//
//	ans(x,y) :- U(x,z), U(y,z)
//	ans(x,y) :- U(x,y) where x >= 3 and y != 5
//
// Body relations are user relation names; they are answered from the Rᵒ
// instances. Cancellation is plumbed into the evaluation.
func (v *View) Query(ctx context.Context, q string, includeNulls bool) ([]value.Tuple, error) {
	start := time.Now()
	rule, err := v.parseQuery(q)
	if err != nil {
		return nil, err
	}
	var parseNS int64
	if v.qobs != nil {
		parseNS = time.Since(start).Nanoseconds()
	}
	return v.runQuery(ctx, rule, includeNulls, q, start, parseNS)
}

// SetQueryObserver attaches a per-query telemetry sink: fn receives one
// obs.QueryStats per completed query (phase breakdown, cache outcome,
// rows, dependency pins), and queries slower than slow also carry the
// chosen physical plan — rendered while the evaluator is still alive,
// which is the only moment it can be. A nil fn (the default) keeps the
// instrumentation sites compiled-in no-ops. Call before the view is
// shared; the query path reads the fields without synchronization.
func (v *View) SetQueryObserver(fn func(obs.QueryStats), slow time.Duration) {
	v.qobs = fn
	v.slowNS = slow.Nanoseconds()
}

// parseQuery parses "head :- body [where pred]" over user relations.
// Every failure is a *QueryError carrying the byte offset of the
// offending fragment.
func (v *View) parseQuery(q string) (*datalog.Rule, error) {
	sep := strings.Index(q, ":-")
	if sep < 0 {
		return nil, qerr(q, 0, "missing ':-' between head and body")
	}
	heads, err := tgd.ParseAtoms(q[:sep])
	if err != nil {
		return nil, qerr(q, 0, "head: %v", err)
	}
	if len(heads) != 1 {
		return nil, qerr(q, 0, "query must have exactly one head atom, got %d", len(heads))
	}
	seen := make(map[string]bool, len(heads[0].Args))
	for _, t := range heads[0].Args {
		if t.Kind != datalog.TermVar {
			continue
		}
		if seen[t.Var] {
			return nil, qerr(q, 0, "head repeats variable %q; bind it once and equate in the body or a where clause", t.Var)
		}
		seen[t.Var] = true
	}
	bodyStart := sep + 2
	bodyText := q[bodyStart:]
	var where *trust.Pred
	if i := strings.Index(bodyText, " where "); i >= 0 {
		wherePos := bodyStart + i + 7
		where, err = trust.ParsePred(bodyText[i+7:])
		if err != nil {
			return nil, qerr(q, wherePos, "selection: %v", err)
		}
		bodyText = bodyText[:i]
	}
	bodyAtoms, err := tgd.ParseAtoms(bodyText)
	if err != nil {
		return nil, qerr(q, bodyStart, "body: %v", err)
	}
	if len(bodyAtoms) == 0 {
		return nil, qerr(q, bodyStart, "empty body")
	}
	body := make([]datalog.Literal, len(bodyAtoms))
	for i, a := range bodyAtoms {
		if v.spec.Universe.Relation(a.Pred) == nil {
			pos := bodyStart
			if j := strings.Index(q[bodyStart:], a.Pred); j >= 0 {
				pos = bodyStart + j
			}
			return nil, qerr(q, pos, "unknown relation %q", a.Pred)
		}
		body[i] = datalog.Pos(datalog.NewAtom(OutputRel(a.Pred), a.Args...))
	}
	rule := datalog.NewRule("query", heads[0], body...)
	if where != nil && !where.Trivial() {
		pred := where
		rule.AddFilterSel(pred.String(), pred.Selectivity(), func(env value.Env) bool {
			return pred.Eval(env)
		})
	}
	return rule, nil
}

// QueryRule evaluates an already-built conjunctive query rule whose body
// atoms reference internal relations of the view. Results are served
// from the view's query cache when the rule was evaluated before and
// none of its body relations have changed since.
func (v *View) QueryRule(ctx context.Context, rule *datalog.Rule, includeNulls bool) ([]value.Tuple, error) {
	return v.runQuery(ctx, rule, includeNulls, "", time.Now(), 0)
}

// runQuery is the instrumented query body behind Query and
// QueryRule: repair-if-dirty, cache probe, compile, evaluate,
// collect, store. qtext is the raw query string for telemetry ("" falls
// back to the canonical key); start/parseNS anchor the phase clocks.
// When no observer is attached (v.qobs nil) the extra work is one
// time.Now per phase boundary at most.
func (v *View) runQuery(ctx context.Context, rule *datalog.Rule, includeNulls bool, qtext string, start time.Time, parseNS int64) ([]value.Tuple, error) {
	var repairStats ApplyStats
	if err := v.repairIfDirty(ctx, &repairStats); err != nil {
		return nil, err
	}
	key := canonicalQueryKey(rule, includeNulls)
	obsOn := v.qobs != nil
	st := obs.QueryStats{Query: qtext, Start: start, ParseNS: parseNS}
	if st.Query == "" {
		st.Query = key
	}
	mark := time.Now()
	if rows, ok := v.qcache.lookup(v.db, key); ok {
		if obsOn {
			st.Outcome = "hit"
			st.CacheNS = time.Since(mark).Nanoseconds()
			st.Rows = len(rows)
			st.WallNS = time.Since(start).Nanoseconds()
			v.emitQuery(st, nil)
		}
		return rows, nil
	}
	if obsOn {
		st.CacheNS = time.Since(mark).Nanoseconds()
	}
	// Pin dependency generations before evaluating: the evaluator only
	// writes the q$ workspace, so the result is consistent with these.
	deps := v.queryDeps(rule)

	mark = time.Now()
	ev, tmp, cleanup, err := v.compileQuery(rule)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if obsOn {
		st.PlanNS = time.Since(mark).Nanoseconds()
		mark = time.Now()
	}
	if _, err := ev.Run(ctx); err != nil {
		return nil, err
	}
	var out []value.Tuple
	for _, row := range v.db.Table(tmp).Rows() {
		if !includeNulls && row.HasNull() {
			continue
		}
		out = append(out, row)
	}
	if obsOn {
		st.EvalNS = time.Since(mark).Nanoseconds()
		st.Rows = len(out)
		if deps == nil {
			st.Outcome = "uncached"
		} else {
			st.Outcome = "miss"
			st.Deps = make([]obs.QueryDep, len(deps))
			for i, d := range deps {
				st.Deps[i] = obs.QueryDep{Rel: d.name, Gen: d.gen}
			}
		}
		st.WallNS = time.Since(start).Nanoseconds()
		v.emitQuery(st, ev)
	}
	v.qcache.store(key, out, deps)
	return out, nil
}

// emitQuery hands a completed query's record to the attached observer,
// first rendering the chosen plan when the query tripped the slow
// threshold — ev must still be alive for ExplainString, so this is the
// only moment the plan can be captured. ev is nil on cache hits (no
// evaluator ran, no plan to render).
func (v *View) emitQuery(st obs.QueryStats, ev *engine.Evaluator) {
	if v.slowNS > 0 && st.WallNS >= v.slowNS && ev != nil {
		st.Plan = ev.ExplainString()
	}
	v.qobs(st)
}

// compileQuery sets up the q$ workspace table for rule's head and builds
// a query-mode evaluator over it (cost-based join ordering unless the
// view opted into the legacy planner). The returned cleanup drops the
// workspace.
func (v *View) compileQuery(rule *datalog.Rule) (ev *engine.Evaluator, tmp string, cleanup func(), err error) {
	tmp = "q$" + rule.Head.Pred
	if v.db.Table(tmp) != nil {
		return nil, "", nil, fmt.Errorf("core: query workspace %q busy", tmp)
	}
	head := datalog.NewAtom(tmp, rule.Head.Args...)
	qr := datalog.NewRule(rule.ID, head, rule.Body...)
	qr.Filters, qr.FilterDescs, qr.FilterSels = rule.Filters, rule.FilterDescs, rule.FilterSels
	if _, err := v.db.Create(tmp, len(head.Args)); err != nil {
		return nil, "", nil, err
	}
	cleanup = func() { v.db.Drop(tmp) }
	ev, err = engine.NewQuery(datalog.NewProgram(qr), v.db, v.sk, engine.Options{
		Backend:     v.opts.Backend,
		Parallelism: v.opts.Parallelism,
		CostBased:   !v.opts.LegacyQueryPlanner,
	})
	if err != nil {
		cleanup()
		return nil, "", nil, err
	}
	return ev, tmp, cleanup, nil
}

// queryDeps pins (table, generation) for every distinct relation the
// rule body reads. A nil return — some body table is missing — disables
// caching for this query.
func (v *View) queryDeps(rule *datalog.Rule) []cacheDep {
	seen := make(map[string]bool, len(rule.Body))
	deps := make([]cacheDep, 0, len(rule.Body))
	for _, l := range rule.Body {
		if seen[l.Atom.Pred] {
			continue
		}
		seen[l.Atom.Pred] = true
		tbl := v.db.Table(l.Atom.Pred)
		if tbl == nil {
			return nil
		}
		deps = append(deps, cacheDep{name: l.Atom.Pred, tbl: tbl, gen: tbl.Generation()})
	}
	return deps
}
