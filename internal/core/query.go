package core

import (
	"context"
	"fmt"
	"strings"

	"orchestra/internal/datalog"
	"orchestra/internal/engine"
	"orchestra/internal/tgd"
	"orchestra/internal/trust"
	"orchestra/internal/value"
)

// Query answers a conjunctive query over the view's curated instances
// with the certain-answers semantics of §2.1: tuples containing labeled
// nulls are discarded unless includeNulls is set (the "superset of the
// certain answers" option the paper mentions).
//
// The query syntax is datalog with an optional selection clause:
//
//	ans(x,y) :- U(x,z), U(y,z)
//	ans(x,y) :- U(x,y) where x >= 3 and y != 5
//
// Body relations are user relation names; they are answered from the Rᵒ
// instances.
func (v *View) Query(q string, includeNulls bool) ([]value.Tuple, error) {
	return v.QueryContext(context.Background(), q, includeNulls)
}

// QueryContext is Query with cancellation plumbed into the evaluation.
func (v *View) QueryContext(ctx context.Context, q string, includeNulls bool) ([]value.Tuple, error) {
	rule, err := v.parseQuery(q)
	if err != nil {
		return nil, err
	}
	return v.QueryRuleContext(ctx, rule, includeNulls)
}

// parseQuery parses "head :- body [where pred]" over user relations.
func (v *View) parseQuery(q string) (*datalog.Rule, error) {
	parts := strings.SplitN(q, ":-", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("core: query %q missing ':-'", q)
	}
	heads, err := tgd.ParseAtoms(parts[0])
	if err != nil {
		return nil, fmt.Errorf("core: query head: %w", err)
	}
	if len(heads) != 1 {
		return nil, fmt.Errorf("core: query must have exactly one head atom")
	}
	bodyText := parts[1]
	var where *trust.Pred
	if i := strings.Index(bodyText, " where "); i >= 0 {
		where, err = trust.ParsePred(bodyText[i+7:])
		if err != nil {
			return nil, fmt.Errorf("core: query selection: %w", err)
		}
		bodyText = bodyText[:i]
	}
	bodyAtoms, err := tgd.ParseAtoms(bodyText)
	if err != nil {
		return nil, fmt.Errorf("core: query body: %w", err)
	}
	body := make([]datalog.Literal, len(bodyAtoms))
	for i, a := range bodyAtoms {
		if v.spec.Universe.Relation(a.Pred) == nil {
			return nil, fmt.Errorf("core: query references unknown relation %q", a.Pred)
		}
		body[i] = datalog.Pos(datalog.NewAtom(OutputRel(a.Pred), a.Args...))
	}
	rule := datalog.NewRule("query", heads[0], body...)
	if where != nil && !where.Trivial() {
		pred := where
		rule.AddFilter(pred.String(), func(env value.Env) bool {
			return pred.Eval(env)
		})
	}
	return rule, nil
}

// QueryRule evaluates an already-built conjunctive query rule whose body
// atoms reference internal relations of the view.
func (v *View) QueryRule(rule *datalog.Rule, includeNulls bool) ([]value.Tuple, error) {
	return v.QueryRuleContext(context.Background(), rule, includeNulls)
}

// QueryRuleContext is QueryRule with cancellation.
func (v *View) QueryRuleContext(ctx context.Context, rule *datalog.Rule, includeNulls bool) ([]value.Tuple, error) {
	var repairStats ApplyStats
	if err := v.repairIfDirty(ctx, &repairStats); err != nil {
		return nil, err
	}
	tmp := "q$" + rule.Head.Pred
	if v.db.Table(tmp) != nil {
		return nil, fmt.Errorf("core: query workspace %q busy", tmp)
	}
	head := datalog.NewAtom(tmp, rule.Head.Args...)
	qr := datalog.NewRule(rule.ID, head, rule.Body...)
	qr.Filters, qr.FilterDescs = rule.Filters, rule.FilterDescs
	if _, err := v.db.Create(tmp, len(head.Args)); err != nil {
		return nil, err
	}
	defer v.db.Drop(tmp)

	ev, err := engine.New(datalog.NewProgram(qr), v.db, v.sk, engine.Options{
		Backend:     v.opts.Backend,
		Parallelism: v.opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	if _, err := ev.RunContext(ctx); err != nil {
		return nil, err
	}
	var out []value.Tuple
	for _, row := range v.db.Table(tmp).Rows() {
		if !includeNulls && row.HasNull() {
			continue
		}
		out = append(out, row)
	}
	return out, nil
}
