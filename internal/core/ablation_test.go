package core

import (
	"context"
	"testing"

	"orchestra/internal/schema"
	"orchestra/internal/tgd"
)

// multiAtomSpec has a mapping with two RHS atoms, where composite and
// split provenance encodings actually differ.
func multiAtomSpec(t *testing.T) *Spec {
	t.Helper()
	u := schema.NewUniverse()
	p := schema.NewPeer("P")
	p.AddRelation("R", schema.Column{Name: "x", Type: schema.TypeInt}, schema.Column{Name: "y", Type: schema.TypeInt})
	q := schema.NewPeer("Q")
	q.AddRelation("S", schema.Column{Name: "x", Type: schema.TypeInt}, schema.Column{Name: "z", Type: schema.TypeInt})
	q.AddRelation("T", schema.Column{Name: "z", Type: schema.TypeInt}, schema.Column{Name: "y", Type: schema.TypeInt})
	u.AddPeer(p)
	u.AddPeer(q)
	spec, err := NewSpec(u, []*tgd.TGD{
		tgd.MustParse("m: R(x,y) -> S(x,z), T(z,y)"),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// Composite (§5's optimization) and split (per-RHS-atom) provenance
// encodings must produce identical user instances, and identical
// maintenance behavior under every deletion strategy.
func TestSplitProvTablesEquivalence(t *testing.T) {
	run := func(split bool, strategy DeletionStrategy) *View {
		v, err := NewView(multiAtomSpec(t), "", Options{SplitProvTables: split})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.ApplyEdits(context.Background(), EditLog{
			Ins("R", MakeTuple(1, 2)),
			Ins("R", MakeTuple(3, 4)),
		}, strategy); err != nil {
			t.Fatal(err)
		}
		if _, err := v.ApplyEdits(context.Background(), EditLog{Del("R", MakeTuple(1, 2))}, strategy); err != nil {
			t.Fatal(err)
		}
		return v
	}
	for _, strategy := range []DeletionStrategy{DeleteProvenance, DeleteDRed, DeleteRecompute} {
		composite := run(false, strategy)
		split := run(true, strategy)
		// User-visible instances agree (provenance table layouts differ).
		for _, rel := range []string{"R", "S", "T"} {
			cr := canonicalRows(composite, OutputRel(rel))
			sr := canonicalRows(split, OutputRel(rel))
			if len(cr) != len(sr) {
				t.Fatalf("%s: %s has %d vs %d rows", strategy, rel, len(cr), len(sr))
			}
			for i := range cr {
				if cr[i] != sr[i] {
					t.Fatalf("%s: %s row %d: %q vs %q", strategy, rel, i, cr[i], sr[i])
				}
			}
		}
		// Both S and T rows share the Skolem value z per R row.
		s := split.Instance("S").Rows()
		tt := split.Instance("T").Rows()
		if len(s) != 1 || len(tt) != 1 || s[0][1] != tt[0][0] {
			t.Fatalf("%s: shared existential broken: S=%v T=%v", strategy, s, tt)
		}
	}
}

// The split encoding stores one provenance row per RHS atom, the
// composite one per tgd instantiation.
func TestSplitProvTablesStorageCost(t *testing.T) {
	mk := func(split bool) *View {
		v, err := NewView(multiAtomSpec(t), "", Options{SplitProvTables: split})
		if err != nil {
			t.Fatal(err)
		}
		log := EditLog{}
		for i := 0; i < 10; i++ {
			log = append(log, Ins("R", MakeTuple(i, i+1)))
		}
		if _, err := v.ApplyEdits(context.Background(), log, DeleteProvenance); err != nil {
			t.Fatal(err)
		}
		return v
	}
	composite, split := mk(false), mk(true)
	compRows := composite.DB().Table("p$m").Len()
	splitRows := split.DB().Table("p$m#0").Len() + split.DB().Table("p$m#1").Len()
	if compRows != 10 {
		t.Fatalf("composite rows = %d", compRows)
	}
	if splitRows != 20 {
		t.Fatalf("split rows = %d (duplicated per RHS atom)", splitRows)
	}
	if composite.DB().Table("p$m#0") != nil {
		t.Fatal("composite view has split tables")
	}
	if split.DB().Table("p$m") != nil {
		t.Fatal("split view has a composite table")
	}
}

// Provenance expressions are unaffected by the encoding choice.
func TestSplitProvTablesExpressions(t *testing.T) {
	for _, splitMode := range []bool{false, true} {
		v, err := NewView(multiAtomSpec(t), "", Options{SplitProvTables: splitMode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("R", MakeTuple(1, 2))}, DeleteProvenance); err != nil {
			t.Fatal(err)
		}
		rows := v.Instance("S").Rows()
		if len(rows) != 1 {
			t.Fatal("S rows")
		}
		expr := v.ProvOf("S", rows[0])
		if got := expr.String(); got != "m(R(1, 2))" {
			t.Fatalf("split=%v: Pv(S) = %q", splitMode, got)
		}
	}
}
