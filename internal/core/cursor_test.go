package core

import (
	"context"
	"testing"
	"time"
)

// TestCursorStringParseRoundTrip pins the durable form: every cursor
// shape — zero, scalar-migrated, exact with shards, names needing
// escaping — must survive String → ParseCursor unchanged.
func TestCursorStringParseRoundTrip(t *testing.T) {
	mk := func(total int, scalar bool, shards map[string]int) Cursor {
		return Cursor{total: total, scalar: scalar, shards: shards}
	}
	cases := []Cursor{
		{},
		CursorFromTotal(7),
		mk(3, false, map[string]int{"PGUS": 2, "PuBio": 1}),
		mk(5, false, map[string]int{"a peer": 2, "p=q&r": 2, "müller": 1}),
		mk(9, true, map[string]int{"PGUS": 4}), // scalar with partial knowledge renders scalar
	}
	for _, c := range cases {
		s := c.String()
		got, err := ParseCursor(s)
		if err != nil {
			t.Fatalf("ParseCursor(%q): %v", s, err)
		}
		// A scalar cursor's partial shard knowledge is intentionally not
		// durable (the durable form is just the total), so compare what
		// the string form promises.
		if got.Total() != c.Total() || got.Exact() != c.Exact() {
			t.Errorf("round-trip %q: got total=%d exact=%v, want total=%d exact=%v",
				s, got.Total(), got.Exact(), c.Total(), c.Exact())
		}
		if c.Exact() {
			if !got.Equal(c) {
				t.Errorf("round-trip %q: got %v, want %v", s, got, c)
			}
		}
	}
	if _, err := ParseCursor(""); err != nil {
		t.Errorf("empty cursor string must parse to the zero cursor: %v", err)
	}
}

// TestCursorParseRejects pins the error cases: garbage must not parse
// into a plausible position.
func TestCursorParseRejects(t *testing.T) {
	for _, s := range []string{
		"v0:3",         // unknown version
		"v1:x",         // bad total
		"v1:-1",        // negative total
		"v1:3;PGUS",    // shard entry without =
		"v1:3;PGUS=0",  // non-positive shard position
		"v1:3;%zz=1",   // bad escape in shard name
		"v1:3;P=1,P=2", // duplicate shard
		"v1:3;A=2,B=2", // shard sum exceeds total
	} {
		if _, err := ParseCursor(s); err == nil {
			t.Errorf("ParseCursor(%q) accepted garbage", s)
		}
	}
}

// TestCursorAdvance pins Advance semantics: exact cursors track shard
// positions; a delta with an unknown position degrades to scalar.
func TestCursorAdvance(t *testing.T) {
	c := Cursor{}
	c = c.Advance(Delta{Shard: "A", Pos: 1})
	c = c.Advance(Delta{Shard: "B", Pos: 1})
	c = c.Advance(Delta{Shard: "A", Pos: 2})
	if c.Total() != 3 || !c.Exact() || c.Shard("A") != 2 || c.Shard("B") != 1 {
		t.Fatalf("advance: got %v", c)
	}
	d := c.Advance(Delta{Shard: "A", Pos: 0}) // unknown position
	if d.Total() != 4 || d.Exact() {
		t.Fatalf("advance past unknown position must degrade to scalar: %v", d)
	}
	if c.Total() != 3 {
		t.Fatal("Advance mutated its receiver")
	}
	if !CursorFromTotal(0).Exact() {
		t.Fatal("CursorFromTotal(0) is the exact start of the bus")
	}
	if CursorFromTotal(2).Exact() {
		t.Fatal("CursorFromTotal(2) cannot know its shard breakdown")
	}
}

// TestMemoryBusSubscribeDeliversInOrder checks the basic push contract:
// a subscription from the start delivers every publication in global
// order, including ones appended after the subscription opened, and
// folding the deltas into a cursor reproduces the bus horizon.
func TestMemoryBusSubscribeDeliversInOrder(t *testing.T) {
	ctx := context.Background()
	bus := NewMemoryBus()
	spec := paperSpec(t, nil)
	logs := example3Logs()
	if err := PublishTo(ctx, bus, spec, "PGUS", logs["PGUS"]); err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := bus.Subscribe(ctx, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	for _, peer := range []string{"PBioSQL", "PuBio"} {
		if err := PublishTo(ctx, bus, spec, peer, logs[peer]); err != nil {
			t.Fatal(err)
		}
	}
	var cur Cursor
	for i, wantPeer := range []string{"PGUS", "PBioSQL", "PuBio"} {
		select {
		case d := <-ch:
			if d.Pub.Peer != wantPeer || d.Shard != wantPeer || d.Pos != 1 {
				t.Fatalf("delta %d: got shard=%s pos=%d peer=%s, want %s", i, d.Shard, d.Pos, d.Pub.Peer, wantPeer)
			}
			cur = cur.Advance(d)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for delta %d", i)
		}
	}
	horizon, err := bus.Horizon(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Equal(horizon) {
		t.Fatalf("folded cursor %v != horizon %v", cur, horizon)
	}
}

// TestSubscribeSlowConsumerBoundedNoLoss is the slow-subscriber
// property: a consumer that drains far slower than the publisher
// appends must still receive every publication exactly once and in
// order, while the subscription buffers at most its bounded channel —
// the pump pulls from the bus's own storage rather than queueing.
func TestSubscribeSlowConsumerBoundedNoLoss(t *testing.T) {
	ctx := context.Background()
	bus := NewMemoryBus()
	ch, cancel, err := bus.Subscribe(ctx, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if cap(ch) != subscribeBuffer {
		t.Fatalf("subscription channel capacity %d, want the bounded %d", cap(ch), subscribeBuffer)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := bus.Preload("P", EditLog{Ins("R", MakeTuple(i))}, ""); err != nil {
			t.Fatal(err)
		}
	}
	// The publisher is done and far ahead; drain slowly and verify
	// nothing was dropped or reordered while the buffer stayed bounded.
	for i := 0; i < n; i++ {
		if i%100 == 0 {
			time.Sleep(5 * time.Millisecond) // let the pump refill ahead of us
			if l := len(ch); l > subscribeBuffer {
				t.Fatalf("subscription buffered %d deltas, bound is %d", l, subscribeBuffer)
			}
		}
		select {
		case d := <-ch:
			if d.Pos != i+1 {
				t.Fatalf("delta %d arrived with shard position %d", i, d.Pos)
			}
			if want := MakeTuple(i); d.Pub.Log[0].Tuple.String() != want.String() {
				t.Fatalf("delta %d carries %v, want %v", i, d.Pub.Log[0].Tuple, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for delta %d of %d", i, n)
		}
	}
	select {
	case d := <-ch:
		t.Fatalf("extra delta after the full run: %+v", d)
	case <-time.After(20 * time.Millisecond):
	}
}

// TestExchangeDeltasGapAndStale pins the push-import contract: stale
// deltas are skipped, contiguous ones apply coalesced, and any gap or
// unknown position refuses the batch (handled=false) so the caller
// falls back to a pull.
func TestExchangeDeltasGapAndStale(t *testing.T) {
	ctx := context.Background()
	spec := paperSpec(t, nil)
	logs := example3Logs()
	mkDelta := func(peer string, pos int, log EditLog) Delta {
		return Delta{Shard: peer, Pos: pos, Pub: Publication{Peer: peer, Log: log}}
	}

	v, err := NewView(spec, "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	d1 := mkDelta("PGUS", 1, logs["PGUS"])
	d2 := mkDelta("PBioSQL", 1, logs["PBioSQL"])
	next, stats, handled, err := ExchangeDeltas(ctx, v, Cursor{}, []Delta{d1, d2}, DeleteProvenance)
	if err != nil || !handled {
		t.Fatalf("contiguous run: handled=%v err=%v", handled, err)
	}
	if next.Total() != 2 || stats.PushDeltas != 2 {
		t.Fatalf("contiguous run: next=%v pushDeltas=%d", next, stats.PushDeltas)
	}

	// Replaying the same deltas is stale: handled, nothing applied.
	again, stats, handled, err := ExchangeDeltas(ctx, v, next, []Delta{d1, d2}, DeleteProvenance)
	if err != nil || !handled || stats.PushDeltas != 0 || !again.Equal(next) {
		t.Fatalf("stale replay: handled=%v pushDeltas=%d cursor=%v err=%v", handled, stats.PushDeltas, again, err)
	}

	// A gap (position 3 when 2 is expected) refuses the batch.
	gap := mkDelta("PGUS", 3, logs["PGUS"])
	back, _, handled, err := ExchangeDeltas(ctx, v, next, []Delta{gap}, DeleteProvenance)
	if err != nil || handled || !back.Equal(next) {
		t.Fatalf("gap: handled=%v cursor=%v err=%v", handled, back, err)
	}

	// An unknown position refuses the batch.
	unknown := mkDelta("PuBio", 0, logs["PuBio"])
	if _, _, handled, err = ExchangeDeltas(ctx, v, next, []Delta{unknown}, DeleteProvenance); err != nil || handled {
		t.Fatalf("unknown position: handled=%v err=%v", handled, err)
	}

	// A scalar (migrated) cursor cannot judge shard contiguity.
	if _, _, handled, err = ExchangeDeltas(ctx, v, CursorFromTotal(2), []Delta{mkDelta("PuBio", 1, logs["PuBio"])}, DeleteProvenance); err != nil || handled {
		t.Fatalf("scalar cursor: handled=%v err=%v", handled, err)
	}
}

// TestPushPullEquivalenceCore is the core half of the bus-equivalence
// property extended to the subscription path: importing a publication
// run via Subscribe + ExchangeDeltas must leave a view observationally
// identical — instances, rejections, provenance — to the pull replay
// (ExchangeInto) of the same bus.
func TestPushPullEquivalenceCore(t *testing.T) {
	ctx := context.Background()
	spec := paperSpec(t, nil)
	bus := NewMemoryBus()
	logs := example3Logs()

	ch, cancel, err := bus.Subscribe(ctx, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	for _, peer := range []string{"PGUS", "PBioSQL", "PuBio"} {
		if err := PublishTo(ctx, bus, spec, peer, logs[peer]); err != nil {
			t.Fatal(err)
		}
	}
	// The curation deletion of Example 3 rides along so the deletion
	// cascade is exercised on both paths too.
	if err := PublishTo(ctx, bus, spec, "PBioSQL", EditLog{Del("B", MakeTuple(3, 2))}); err != nil {
		t.Fatal(err)
	}

	pullView, err := NewView(spec, "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	pullCur, _, err := ExchangeInto(ctx, bus, pullView, Cursor{}, DeleteProvenance)
	if err != nil {
		t.Fatal(err)
	}

	pushView, err := NewView(spec, "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	pushCur := Cursor{}
	for pushCur.Total() < pullCur.Total() {
		var batch []Delta
		select {
		case d := <-ch:
			batch = append(batch, d)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at push cursor %v", pushCur)
		}
		next, _, handled, err := ExchangeDeltas(ctx, pushView, pushCur, batch, DeleteProvenance)
		if err != nil {
			t.Fatal(err)
		}
		if !handled {
			t.Fatalf("push import refused contiguous delta at %v", pushCur)
		}
		pushCur = next
	}
	if !pushCur.Equal(pullCur) {
		t.Fatalf("push cursor %v != pull cursor %v", pushCur, pullCur)
	}
	viewsEqual(t, pullView, pushView, "push vs pull")
}
