package core

import (
	"context"
	"fmt"

	"orchestra/internal/datalog"
	"orchestra/internal/engine"
	"orchestra/internal/provenance"
	"orchestra/internal/value"
)

// Declarative derivation testing (§4.1.3). The paper turns the mapping
// rules "inside out": for every mapping rule (m″) R(x̄,f̄(x̄)) :- P_mi(v̄)
// an inverse rule P′_mi(v̄) :- P_mi(v̄), R_chk(x̄) recovers the provenance
// rows relevant to the tuples under check, and source-expansion rules
// mark the body tuples those rows consumed, recursively, down to the
// local-contribution tables. This file materializes that program so the
// goal-directed support computation can itself run on the datalog engine
// (the procedural View.supportOf is the optimized equivalent; the tests
// cross-check the two).

// chkRel names the R_chk relation of an internal relation.
func chkRel(rel string) string { return "c$" + rel }

// invProvRel names the P′ relation of a mapping.
func invProvRel(mapID string) string { return "pi$" + mapID }

// inverseState is the lazily-built declarative derivation-test machinery.
type inverseState struct {
	prog   *datalog.Program
	ev     *engine.Evaluator
	tables []string // every c$/pi$ table, for clearing
}

// buildInverse constructs the inverse program and its tables in the
// view's database.
func (v *View) buildInverse() error {
	if v.inv != nil {
		return nil
	}
	inv := &inverseState{prog: datalog.NewProgram()}

	// R_chk tables, one per internal relation that can be derived.
	for _, rel := range v.spec.Universe.Relations() {
		for _, name := range []string{
			LocalRel(rel.Name), RejectRel(rel.Name), InputRel(rel.Name), OutputRel(rel.Name),
		} {
			cname := chkRel(name)
			if _, err := v.db.Create(cname, v.db.Table(name).Arity()); err != nil {
				return err
			}
			inv.tables = append(inv.tables, cname)
		}
	}

	for _, mi := range v.infos {
		pName := invProvRel(mi.ID)
		arity := len(mi.Vars)
		if _, err := v.db.Create(pName, arity); err != nil {
			return err
		}
		inv.tables = append(inv.tables, pName)

		provArgs := make([]datalog.Term, arity)
		varName := func(i int) string { return fmt.Sprintf("v%d", i) }
		for i := range provArgs {
			provArgs[i] = datalog.V(varName(i))
		}

		// P′_mi(v̄) :- R_chk(target-args), P_mi(v̄) — one rule per target
		// atom. The chk atom comes first so the compiled plan is driven
		// by the (small) suspect set. Skolem positions stay Skolem terms:
		// the engine evaluates them as computed equality checks, so chk
		// tuples with non-null values there match nothing (exact join).
		for ti := range mi.Targets {
			tmpl := &mi.Targets[ti]
			chkArgs := make([]datalog.Term, len(tmpl.Args))
			for ai, spec := range tmpl.Args {
				switch {
				case spec.Col >= 0:
					chkArgs[ai] = provArgs[spec.Col]
				case spec.Col == -1:
					chkArgs[ai] = datalog.C(spec.Const)
				default:
					skArgs := make([]string, len(spec.FnArgCols))
					for j, c := range spec.FnArgCols {
						skArgs[j] = varName(c)
					}
					chkArgs[ai] = datalog.Sk(spec.Fn, skArgs...)
				}
			}
			inv.prog.Add(datalog.NewRule(
				fmt.Sprintf("inv:%s:t%d", mi.ID, ti),
				datalog.NewAtom(pName, provArgs...),
				datalog.Pos(datalog.NewAtom(chkRel(tmpl.Rel), chkArgs...)),
				datalog.Pos(datalog.NewAtom(mi.ProvRel, provArgs...)),
			))
		}

		// R_chk(source-args) :- P′_mi(v̄) — one rule per source atom,
		// marking the body tuples of relevant derivations for recursive
		// checking (the paper's φ′ expansion).
		for si := range mi.Sources {
			tmpl := &mi.Sources[si]
			srcArgs := make([]datalog.Term, len(tmpl.Args))
			for ai, spec := range tmpl.Args {
				if spec.Col >= 0 {
					srcArgs[ai] = provArgs[spec.Col]
				} else {
					srcArgs[ai] = datalog.C(spec.Const)
				}
			}
			inv.prog.Add(datalog.NewRule(
				fmt.Sprintf("inv:%s:s%d", mi.ID, si),
				datalog.NewAtom(chkRel(tmpl.Rel), srcArgs...),
				datalog.Pos(datalog.NewAtom(pName, provArgs...)),
			))
		}
	}

	ev, err := engine.New(inv.prog, v.db, v.sk, engine.Options{
		Backend:       v.opts.Backend,
		MaxIterations: v.opts.MaxIterations,
	})
	if err != nil {
		return err
	}
	inv.ev = ev
	v.inv = inv
	return nil
}

// InverseProgram returns the §4.1.3 inverse-rule program (building it on
// first use), for inspection and the CLI.
func (v *View) InverseProgram() (*datalog.Program, error) {
	if err := v.buildInverse(); err != nil {
		return nil, err
	}
	return v.inv.prog, nil
}

// SupportDeclarative computes the supporting base tuples of the targets
// by running the inverse-rule program to fixpoint — the paper's
// formulation of the backward pass. It must agree with the procedural
// supportOf (cross-checked in tests).
func (v *View) SupportDeclarative(ctx context.Context, targets []provenance.Ref) (map[provenance.Ref]bool, error) {
	if err := v.buildInverse(); err != nil {
		return nil, err
	}
	defer v.clearInverse()

	// Seed the chk tables with the suspects.
	for _, ref := range targets {
		tbl := v.db.Table(chkRel(ref.Rel))
		if tbl == nil {
			return nil, fmt.Errorf("core: no chk relation for %q", ref.Rel)
		}
		tbl.Insert(ref.Tuple())
	}
	v.inv.ev.InvalidateAllTransient()
	if _, err := v.inv.ev.Run(ctx); err != nil {
		return nil, err
	}

	// Support = chk rows over local-contribution tables that are actually
	// present ("filter the R′ relations … to only include values from
	// local contributions tables").
	support := make(map[provenance.Ref]bool)
	for _, rel := range v.spec.Universe.Relations() {
		lname := LocalRel(rel.Name)
		ltbl := v.db.Table(lname)
		v.db.Table(chkRel(lname)).Each(func(row value.Tuple) bool {
			if ltbl.Contains(row) {
				support[provenance.NewRef(lname, row)] = true
			}
			return true
		})
	}
	return support, nil
}

// clearInverse empties the inverse workspace tables.
func (v *View) clearInverse() {
	for _, name := range v.inv.tables {
		v.db.Table(name).Clear()
	}
	v.ev.InvalidateAllTransient()
}
