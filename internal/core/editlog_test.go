package core

import (
	"testing"
)

// TestNetEffectMatchesNaiveReplay: property test — NetEffect's deltas,
// applied to the pre-state, must equal the result of replaying the log
// edit by edit against the §3.1 semantics.
func TestNetEffectMatchesNaiveReplay(t *testing.T) {
	rnd := newRand(5)
	for trial := 0; trial < 60; trial++ {
		v, err := NewView(paperSpec(t, nil), "", Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Random pre-state over a tiny domain.
		type state struct{ l, r map[int64]bool }
		pre := state{l: map[int64]bool{}, r: map[int64]bool{}}
		for x := int64(0); x < 4; x++ {
			switch rnd.Intn(3) {
			case 0:
				pre.l[x] = true
				v.LocalTable("B").Insert(MakeTuple(int(x), int(x)))
			case 1:
				pre.r[x] = true
				v.RejectTable("B").Insert(MakeTuple(int(x), int(x)))
			}
		}
		// Random log.
		var log EditLog
		n := 1 + rnd.Intn(8)
		for i := 0; i < n; i++ {
			x := int(rnd.Int63n(4))
			if rnd.Intn(2) == 0 {
				log = append(log, Ins("B", MakeTuple(x, x)))
			} else {
				log = append(log, Del("B", MakeTuple(x, x)))
			}
		}

		// Naive replay of the §3.1 semantics.
		want := state{l: map[int64]bool{}, r: map[int64]bool{}}
		for k, b := range pre.l {
			want.l[k] = b
		}
		for k, b := range pre.r {
			want.r[k] = b
		}
		for _, e := range log {
			x := e.Tuple[0].AsInt()
			if e.Insert {
				delete(want.r, x)
				want.l[x] = true
			} else {
				if want.l[x] {
					delete(want.l, x)
				} else {
					want.r[x] = true
				}
			}
		}

		dl, dr, err := NetEffect(log, v.DB(), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Apply deltas to the pre-state tables.
		lt, rt := v.LocalTable("B"), v.RejectTable("B")
		for _, tu := range dl.At("B").Del() {
			lt.Delete(tu)
		}
		for _, tu := range dl.At("B").Ins() {
			lt.Insert(tu)
		}
		for _, tu := range dr.At("B").Del() {
			rt.Delete(tu)
		}
		for _, tu := range dr.At("B").Ins() {
			rt.Insert(tu)
		}

		for x := int64(0); x < 4; x++ {
			tu := MakeTuple(int(x), int(x))
			if lt.Contains(tu) != want.l[x] {
				t.Fatalf("trial %d: L[%d] = %v, want %v (log %v)", trial, x, lt.Contains(tu), want.l[x], log)
			}
			if rt.Contains(tu) != want.r[x] {
				t.Fatalf("trial %d: R[%d] = %v, want %v (log %v)", trial, x, rt.Contains(tu), want.r[x], log)
			}
		}
	}
}

func TestEditString(t *testing.T) {
	if Ins("R", MakeTuple(1, 2)).String() != "+R(1, 2)" {
		t.Fatal("insert render")
	}
	if Del("R", MakeTuple(1)).String() != "-R(1)" {
		t.Fatal("delete render")
	}
}

// NetEffect must be a no-op for logs that cancel themselves out.
func TestNetEffectSelfCancelling(t *testing.T) {
	v, err := NewView(paperSpec(t, nil), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	log := EditLog{
		Ins("B", MakeTuple(1, 1)),
		Del("B", MakeTuple(1, 1)),
		Ins("B", MakeTuple(2, 2)),
		Del("B", MakeTuple(2, 2)),
	}
	dl, dr, err := NetEffect(log, v.DB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dl.Empty() || !dr.Empty() {
		t.Fatalf("self-cancelling log produced deltas: %v %v", dl, dr)
	}
}
