package core

import (
	"context"
	"sort"
	"strings"
	"testing"

	"orchestra/internal/engine"
	"orchestra/internal/schema"
	"orchestra/internal/tgd"
	"orchestra/internal/trust"
	"orchestra/internal/value"
)

// specWithMappings rebuilds the paper spec with a subset of its mappings
// (same universe and policies).
func specWithMappings(t *testing.T, base *Spec, ids ...string) *Spec {
	t.Helper()
	keep := make(map[string]bool, len(ids))
	for _, id := range ids {
		keep[id] = true
	}
	var ms []*tgd.TGD
	for _, m := range base.Mappings {
		if keep[m.ID] {
			ms = append(ms, m)
		}
	}
	sp, err := NewSpec(base.Universe, ms, base.Policies)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// tableDump renders every persistent table of a view (base, derived, and
// provenance — scratch tables excluded) as a sorted row list with
// labeled nulls shown structurally, so two views with different null-id
// histories compare equal iff they are isomorphic.
func tableDump(v *View) map[string]string {
	out := make(map[string]string)
	sk := v.Skolems()
	for _, name := range v.DB().Names() {
		if strings.HasPrefix(name, "c$") || strings.HasPrefix(name, "pi$") || strings.HasPrefix(name, "q$") {
			continue
		}
		var rows []string
		v.DB().Table(name).Each(func(row value.Tuple) bool {
			parts := make([]string, len(row))
			for i, val := range row {
				parts[i] = sk.Describe(val)
			}
			rows = append(rows, "("+strings.Join(parts, ",")+")")
			return true
		})
		sort.Strings(rows)
		out[name] = strings.Join(rows, " ")
	}
	return out
}

// assertViewsEquivalent compares every persistent table of two views of
// the same spec.
func assertViewsEquivalent(t *testing.T, label string, got, want *View) {
	t.Helper()
	gotTables, wantTables := tableDump(got), tableDump(want)
	for name, wantRows := range wantTables {
		gotRows, ok := gotTables[name]
		if !ok {
			t.Errorf("%s: table %q missing from evolved view", label, name)
			continue
		}
		if gotRows != wantRows {
			t.Errorf("%s: table %q differs\n evolved: %s\n fresh:   %s", label, name, gotRows, wantRows)
		}
	}
	for name := range gotTables {
		if _, ok := wantTables[name]; !ok {
			t.Errorf("%s: evolved view has extra table %q", label, name)
		}
	}
}

func evolveBackends(t *testing.T, run func(t *testing.T, be engine.Backend)) {
	for _, be := range []engine.Backend{engine.BackendIndexed, engine.BackendHash} {
		be := be
		name := "indexed"
		if be == engine.BackendHash {
			name = "hash"
		}
		t.Run(name, func(t *testing.T) { run(t, be) })
	}
}

func TestMappingRuleBase(t *testing.T) {
	for in, want := range map[string]string{
		"m1'":     "m1",
		"m1''":    "m1",
		"m1''#2":  "m1",
		"m1'#0":   "m1",
		"in$R'":   "in$R",
		"lc$R''":  "lc$R",
		"weird":   "weird",
		"m10''#3": "m10",
	} {
		if got := mappingRuleBase(in); got != want {
			t.Errorf("mappingRuleBase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBaseTrustChanged(t *testing.T) {
	full := paperSpec(t, nil)
	mkPol := func(build func(*trust.Policy)) map[string]*trust.Policy {
		p := trust.NewPolicy("PBioSQL")
		build(p)
		return map[string]*trust.Policy{"PBioSQL": p}
	}
	withPol := func(pols map[string]*trust.Policy) *Spec {
		sp, err := NewSpec(full.Universe, full.Mappings, pols)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	pred := func(s string) *trust.Pred {
		p, err := trust.ParsePred(s)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	base := withPol(nil)
	distrust := withPol(mkPol(func(p *trust.Policy) { p.DistrustPeer("PuBio") }))
	distrustMore := withPol(mkPol(func(p *trust.Policy) {
		p.DistrustPeer("PuBio")
		p.DistrustBase("G", pred("id >= 3"))
	}))
	mappingOnly := withPol(mkPol(func(p *trust.Policy) { p.DistrustMapping("m1", pred("n >= 3")) }))

	cases := []struct {
		name     string
		old, new *Spec
		want     bool
	}{
		{"tighten base", base, distrust, true},
		{"tighten further", distrust, distrustMore, true},
		{"loosen peer distrust", distrust, base, true},
		{"loosen one of two", distrustMore, distrust, true},
		{"same base", distrust, distrust, false},
		{"mapping conds only", base, mappingOnly, false},
		{"drop mapping conds", mappingOnly, base, false},
	}
	for _, c := range cases {
		if got := BaseTrustChanged(c.old, c.new, "PBioSQL"); got != c.want {
			t.Errorf("%s: BaseTrustChanged = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestViewAddMappings(t *testing.T) {
	evolveBackends(t, func(t *testing.T, be engine.Backend) {
		full := paperSpec(t, nil)
		initial := specWithMappings(t, full, "m1", "m2", "m4")
		opts := Options{Backend: be}

		v, err := NewView(initial, "", opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, peer := range []string{"PGUS", "PBioSQL", "PuBio"} {
			if _, err := v.ApplyEdits(context.Background(), example3Logs()[peer], DeleteProvenance); err != nil {
				t.Fatal(err)
			}
		}

		// Evolve: add m3 (it has an existential, exercising Skolems).
		if _, err := v.AddMappings(context.Background(), full, []string{"m3"}); err != nil {
			t.Fatal(err)
		}

		fresh := loadExample3(t, full, opts)
		assertViewsEquivalent(t, "add m3", v, fresh)
	})
}

func TestViewRemoveMappings(t *testing.T) {
	evolveBackends(t, func(t *testing.T, be engine.Backend) {
		for _, strategy := range []DeletionStrategy{DeleteProvenance, DeleteDRed, DeleteRecompute} {
			t.Run(strategy.String(), func(t *testing.T) {
				full := paperSpec(t, nil)
				reduced := specWithMappings(t, full, "m2", "m3", "m4")
				opts := Options{Backend: be}
				v := loadExample3(t, full, opts)
				if _, err := v.RemoveMappings(context.Background(), reduced, []string{"m1"}, strategy); err != nil {
					t.Fatal(err)
				}
				fresh, err := NewView(reduced, "", opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, peer := range []string{"PGUS", "PBioSQL", "PuBio"} {
					if _, err := fresh.ApplyEdits(context.Background(), example3Logs()[peer], DeleteProvenance); err != nil {
						t.Fatal(err)
					}
				}
				assertViewsEquivalent(t, "remove m1", v, fresh)

				// B(3,5) is a base contribution of PBioSQL: it must survive
				// the removal of m1 even though m1 also derived it.
				if !v.Instance("B").Contains(MakeTuple(3, 5)) {
					t.Fatalf("base tuple B(3,5) lost by mapping removal")
				}
			})
		}
	})
}

func TestViewApplyTrust(t *testing.T) {
	evolveBackends(t, func(t *testing.T, be engine.Backend) {
		full := paperSpec(t, nil)
		opts := Options{Backend: be}
		ctx := context.Background()

		pred := func(s string) *trust.Pred {
			p, err := trust.ParsePred(s)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		pol := trust.NewPolicy("PBioSQL")
		pol.DistrustMapping("m1", pred("n >= 3"))
		restricted, err := NewSpec(full.Universe, full.Mappings, map[string]*trust.Policy{"PBioSQL": pol})
		if err != nil {
			t.Fatal(err)
		}

		freshFor := func(sp *Spec, owner string) *View {
			fv, err := NewView(sp, owner, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, peer := range []string{"PGUS", "PBioSQL", "PuBio"} {
				if _, err := fv.ApplyEdits(context.Background(), example3Logs()[peer], DeleteProvenance); err != nil {
					t.Fatal(err)
				}
			}
			return fv
		}

		for _, strategy := range []DeletionStrategy{DeleteProvenance, DeleteDRed, DeleteRecompute} {
			t.Run(strategy.String(), func(t *testing.T) {
				// Revocation: PBioSQL's view starts trust-all, then distrusts
				// m1 derivations with n >= 3.
				v := freshFor(full, "PBioSQL")
				if _, err := v.ApplyTrust(ctx, restricted, strategy); err != nil {
					t.Fatal(err)
				}
				assertViewsEquivalent(t, "revoke", v, freshFor(restricted, "PBioSQL"))

				// Grant: back to trust-all — mapping-level only, so
				// repairable in place (BaseTrustChanged must agree).
				if BaseTrustChanged(restricted, full, "PBioSQL") {
					t.Fatal("mapping-level loosening should not need a replay")
				}
				if _, err := v.ApplyTrust(ctx, full, strategy); err != nil {
					t.Fatal(err)
				}
				assertViewsEquivalent(t, "grant", v, freshFor(full, "PBioSQL"))
			})
		}
	})
}

func TestViewRecompileAddsPeer(t *testing.T) {
	full := paperSpec(t, nil)
	v := loadExample3(t, full, Options{})

	// Extend the universe with peer PNew{W}.
	u2 := schema.NewUniverse()
	for _, p := range full.Universe.Peers() {
		if err := u2.AddPeer(p); err != nil {
			t.Fatal(err)
		}
	}
	nw := schema.NewPeer("PNew")
	if _, err := nw.AddRelation("W",
		schema.Column{Name: "a", Type: schema.TypeInt},
		schema.Column{Name: "b", Type: schema.TypeInt}); err != nil {
		t.Fatal(err)
	}
	if err := u2.AddPeer(nw); err != nil {
		t.Fatal(err)
	}
	withPeer, err := NewSpec(u2, full.Mappings, full.Policies)
	if err != nil {
		t.Fatal(err)
	}

	before := tableDump(v)
	if err := v.Recompile(context.Background(), withPeer); err != nil {
		t.Fatal(err)
	}
	after := tableDump(v)
	for name, rows := range before {
		if after[name] != rows {
			t.Errorf("recompile changed table %q", name)
		}
	}
	// The new peer's tables exist and are empty.
	if tbl := v.DB().Table(OutputRel("W")); tbl == nil || tbl.Len() != 0 {
		t.Fatalf("new relation W$o missing or non-empty: %v", tbl)
	}

	// And it can immediately receive mapped data.
	fullPlus, err := NewSpec(u2, append(append([]*tgd.TGD(nil), full.Mappings...), tgd.MustParse("m5: U(n,c) -> W(n,n)")), full.Policies)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.AddMappings(context.Background(), fullPlus, []string{"m5"}); err != nil {
		t.Fatal(err)
	}
	if got := v.Instance("W").Len(); got == 0 {
		t.Fatal("mapping onto the new peer derived nothing")
	}
}

func TestSpecFingerprint(t *testing.T) {
	a := paperSpec(t, nil)
	b := paperSpec(t, nil)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical specs produced different fingerprints")
	}
	reduced := specWithMappings(t, a, "m1", "m2", "m3")
	if reduced.Fingerprint() == a.Fingerprint() {
		t.Fatal("removing a mapping did not change the fingerprint")
	}
	pol := trust.NewPolicy("PBioSQL")
	pol.DistrustPeer("PuBio")
	withPol, err := NewSpec(a.Universe, a.Mappings, map[string]*trust.Policy{"PBioSQL": pol})
	if err != nil {
		t.Fatal(err)
	}
	if withPol.Fingerprint() == a.Fingerprint() {
		t.Fatal("adding a policy did not change the fingerprint")
	}
	// A trust-all (empty) policy equals no policy.
	empty, err := NewSpec(a.Universe, a.Mappings, map[string]*trust.Policy{"PBioSQL": trust.NewPolicy("PBioSQL")})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Fingerprint() != a.Fingerprint() {
		t.Fatal("an empty policy changed the fingerprint")
	}
}
