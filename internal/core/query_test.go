package core

import (
	"context"
	"testing"

	"orchestra/internal/provenance"
)

func TestQueryWhereClause(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	// B = {(3,5),(3,2),(1,3),(3,3)}.
	rows, err := v.Query(context.Background(), "ans(i,n) :- B(i,n) where n >= 3", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("where n>=3: %v", rows)
	}
	for _, r := range rows {
		if r[1].AsInt() < 3 {
			t.Fatalf("filter leaked %v", r)
		}
	}
	rows, err = v.Query(context.Background(), "ans(i,n) :- B(i,n) where n >= 3 and i = 3", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("conjunctive where: %v", rows)
	}
	// A trivially-true where keeps everything.
	rows, err = v.Query(context.Background(), "ans(i,n) :- B(i,n) where true", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("where true: %v", rows)
	}
	// Bad predicate is reported.
	if _, err := v.Query(context.Background(), "ans(i,n) :- B(i,n) where n !!", false); err == nil {
		t.Fatal("bad where accepted")
	}
}

func TestQueryJoinAcrossPeers(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	// Join G and B across peers: ids present in both with matching names.
	rows, err := v.Query(context.Background(), "ans(i) :- G(i,c,n), B(i,n)", false)
	if err != nil {
		t.Fatal(err)
	}
	// G(1,2,3) with B(1,3) and G(3,5,2) with B(3,2).
	if len(rows) != 2 {
		t.Fatalf("join: %v", rows)
	}
}

func TestQueryConstantsInBody(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	rows, err := v.Query(context.Background(), "ans(n) :- B(3, n)", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("constant selection: %v", rows)
	}
}

func TestQueryWorkspaceCleanup(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	for i := 0; i < 3; i++ {
		if _, err := v.Query(context.Background(), "ans(x,y) :- U(x,y)", false); err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
	}
	if v.DB().Table("q$ans") != nil {
		t.Fatal("query workspace leaked")
	}
}

func TestDerivabilityAPI(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	ok, support, err := v.Derivability(context.Background(), "B", MakeTuple(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("B(3,2) not derivable")
	}
	// Support must include the base G tuple (via m1) among others.
	found := false
	for _, r := range support {
		if r == provenance.NewRef(LocalRel("G"), MakeTuple(3, 5, 2)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("support missing G base tuple: %v", support)
	}
	// An absent tuple is not derivable and has empty support.
	ok, support, err = v.Derivability(context.Background(), "B", MakeTuple(99, 99))
	if err != nil {
		t.Fatal(err)
	}
	if ok || len(support) != 0 {
		t.Fatalf("phantom tuple derivable: %v %v", ok, support)
	}
}
