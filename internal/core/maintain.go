package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"orchestra/internal/engine"
	"orchestra/internal/provenance"
	"orchestra/internal/storage"
	"orchestra/internal/value"
)

// DeletionStrategy selects how deletions are propagated (§6.3's three
// contenders).
type DeletionStrategy uint8

const (
	// DeleteProvenance is the paper's incremental algorithm (Fig. 3):
	// goal-directed, provenance-driven.
	DeleteProvenance DeletionStrategy = iota
	// DeleteDRed is the Gupta–Mumick–Subrahmanian baseline: pessimistic
	// over-deletion followed by re-derivation.
	DeleteDRed
	// DeleteRecompute throws the derived state away and recomputes from
	// base tables.
	DeleteRecompute
)

func (s DeletionStrategy) String() string {
	switch s {
	case DeleteProvenance:
		return "provenance"
	case DeleteDRed:
		return "dred"
	default:
		return "recompute"
	}
}

// ApplyStats reports the work done by a maintenance operation.
type ApplyStats struct {
	// Base-change counts actually applied.
	InsL, DelL, InsR, DelR int
	// TuplesDeleted counts derived tuples removed.
	TuplesDeleted int
	// ProvRowsDeleted counts provenance rows removed.
	ProvRowsDeleted int
	// Checked counts tuples submitted to the derivability test; Rederived
	// counts the survivors.
	Checked, Rederived int
	// Engine accumulates fixpoint statistics from insertion propagation
	// and re-derivation.
	Engine engine.Stats

	// Exchange-pass accounting. Publications is the number of bus
	// publications this operation consumed; EditsIn the edit-log entries
	// entering NetEffect; EditsCancelled how many of them net-effect
	// coalescing discharged without propagation (insert+delete pairs and
	// already-satisfied edits).
	Publications   int
	EditsIn        int
	EditsCancelled int
	// Phase wall-clock nanoseconds: bus fetch, net-effect computation,
	// deletion propagation, insertion propagation.
	FetchNS, NetEffectNS, DeleteNS, InsertNS int64

	// Delivery accounting: FetchCalls counts bus fetch round trips this
	// operation issued; FetchPublications counts publication bodies
	// those fetches transferred; PushDeltas counts publications that
	// arrived pre-transferred over a subscription (ExchangeDeltas) and
	// therefore needed no fetch.
	FetchCalls        int
	FetchPublications int
	PushDeltas        int

	// TraceIDs are the lineage trace ids of the publications this
	// operation consumed (stamped by the exchange entry points; empty
	// for publications that predate tracing).
	TraceIDs []string
}

// Add accumulates other into s.
func (s *ApplyStats) Add(other ApplyStats) {
	s.InsL += other.InsL
	s.DelL += other.DelL
	s.InsR += other.InsR
	s.DelR += other.DelR
	s.TuplesDeleted += other.TuplesDeleted
	s.ProvRowsDeleted += other.ProvRowsDeleted
	s.Checked += other.Checked
	s.Rederived += other.Rederived
	s.Engine.Add(other.Engine)
	s.Publications += other.Publications
	s.EditsIn += other.EditsIn
	s.EditsCancelled += other.EditsCancelled
	s.FetchNS += other.FetchNS
	s.NetEffectNS += other.NetEffectNS
	s.DeleteNS += other.DeleteNS
	s.InsertNS += other.InsertNS
	s.FetchCalls += other.FetchCalls
	s.FetchPublications += other.FetchPublications
	s.PushDeltas += other.PushDeltas
	s.TraceIDs = append(s.TraceIDs, other.TraceIDs...)
}

// CancellationRatio is the fraction of incoming edits that net-effect
// coalescing discharged without propagation (0 when no edits came in).
func (s *ApplyStats) CancellationRatio() float64 {
	if s.EditsIn == 0 {
		return 0
	}
	return float64(s.EditsCancelled) / float64(s.EditsIn)
}

// FullRecompute discards all derived state (inputs, outputs, provenance)
// and recomputes it from the base tables — the non-incremental baseline
// of §6.3 — with cancellation plumbed into the fixpoint loop.
func (v *View) FullRecompute(ctx context.Context) (engine.Stats, error) {
	for _, rel := range v.spec.Universe.Relations() {
		v.db.Table(InputRel(rel.Name)).Clear()
		v.db.Table(OutputRel(rel.Name)).Clear()
	}
	for _, mi := range v.infos {
		v.db.Table(mi.ProvRel).Clear()
	}
	v.ev.InvalidateAllTransient()
	return v.ev.Run(ctx)
}

// ApplyEdits applies one peer-published edit log to the view: net effect
// over Rℓ/Rr, then deletion propagation with the chosen strategy, then
// insertion propagation, with cancellation plumbed through the
// propagation fixpoints. This is the per-exchange maintenance entry
// point.
func (v *View) ApplyEdits(ctx context.Context, log EditLog, strategy DeletionStrategy) (ApplyStats, error) {
	neStart := time.Now()
	dl, dr, err := NetEffect(log, v.db, v.baseTrustFilter())
	neNS := time.Since(neStart).Nanoseconds()
	if err != nil {
		return ApplyStats{EditsIn: len(log), NetEffectNS: neNS}, err
	}
	stats, err := v.ApplyBase(ctx, dl, dr, strategy)
	stats.EditsIn += len(log)
	if cancelled := len(log) - dl.Size() - dr.Size(); cancelled > 0 {
		stats.EditsCancelled += cancelled
	}
	stats.NetEffectNS += neNS
	return stats, err
}

// ApplyBase applies base-table deltas: dl over local-contribution tables,
// dr over rejection tables (both keyed by *user* relation names).
// Deletion effects (local deletions, new rejections) propagate first,
// then insertion effects (new contributions, withdrawn rejections).
// Cancellation is plumbed through the propagation fixpoints; an
// interrupted operation leaves the view marked dirty, and the next
// maintenance operation (or query) first repairs it by recomputing
// derived state from the base tables, which commit before any
// cancellable point.
func (v *View) ApplyBase(ctx context.Context, dl, dr storage.DeltaSet, strategy DeletionStrategy) (ApplyStats, error) {
	var stats ApplyStats
	if err := v.repairIfDirty(ctx, &stats); err != nil {
		return stats, err
	}
	v.dirty = true

	delStart := time.Now()
	switch strategy {
	case DeleteRecompute:
		// Apply every base change, then rebuild. The whole rebuild counts
		// as the deletion phase: recompute has no separate insertion pass.
		v.applyBaseChanges(dl, dr, &stats)
		es, err := v.FullRecompute(ctx)
		stats.Engine.Add(es)
		stats.DeleteNS += time.Since(delStart).Nanoseconds()
		if err != nil {
			return stats, err
		}
		v.dirty = false
		return stats, nil
	case DeleteDRed:
		err := v.deleteDRed(ctx, dl, dr, &stats)
		stats.DeleteNS += time.Since(delStart).Nanoseconds()
		if err != nil {
			return stats, err
		}
	default:
		err := v.deleteProvenance(ctx, dl, dr, &stats)
		stats.DeleteNS += time.Since(delStart).Nanoseconds()
		if err != nil {
			return stats, err
		}
	}
	insStart := time.Now()
	err := v.insertIncremental(ctx, dl, dr, &stats)
	stats.InsertNS += time.Since(insStart).Nanoseconds()
	if err != nil {
		return stats, err
	}
	v.dirty = false
	return stats, nil
}

// Repair recomputes derived state from the base tables if a previous
// maintenance operation was interrupted mid-propagation; it is a no-op
// on a clean view. Read paths that bypass maintenance (snapshots,
// instance dumps, provenance rendering) call it so they never observe
// partially propagated state.
func (v *View) Repair(ctx context.Context) error {
	var stats ApplyStats
	return v.repairIfDirty(ctx, &stats)
}

// repairIfDirty recomputes derived state from the base tables when a
// previous maintenance operation was interrupted mid-propagation.
// Without this, retrying the interrupted edit log would be a silent
// no-op: its base changes are already committed, so NetEffect yields
// empty deltas and the lost propagation would never happen.
func (v *View) repairIfDirty(ctx context.Context, stats *ApplyStats) error {
	if !v.dirty {
		return nil
	}
	es, err := v.FullRecompute(ctx)
	stats.Engine.Add(es)
	if err != nil {
		return err
	}
	v.dirty = false
	return nil
}

// applyBaseChanges applies all four kinds of base change without any
// propagation (used by the recompute strategy).
func (v *View) applyBaseChanges(dl, dr storage.DeltaSet, stats *ApplyStats) {
	for rel, d := range dl {
		lt := v.db.Table(LocalRel(rel))
		for _, r := range d.DelRows() {
			if lt.DeleteRow(r) {
				stats.DelL++
			}
		}
		for _, r := range d.InsRows() {
			if v.trustsBase(rel, r.Tuple) && lt.InsertRow(r) {
				stats.InsL++
			}
		}
	}
	for rel, d := range dr {
		rt := v.db.Table(RejectRel(rel))
		for _, r := range d.InsRows() {
			if rt.InsertRow(r) {
				stats.InsR++
			}
		}
		for _, r := range d.DelRows() {
			if rt.DeleteRow(r) {
				stats.DelR++
			}
		}
	}
}

// insertIncremental applies the insertion-side base changes (new local
// contributions from dl, withdrawn rejections from dr) and propagates
// them semi-naively with inline trust filtering (§4.2).
func (v *View) insertIncremental(ctx context.Context, dl, dr storage.DeltaSet, stats *ApplyStats) error {
	pending := make(map[string][]value.Row)
	for rel, d := range dl {
		lt := v.db.Table(LocalRel(rel))
		for _, r := range d.InsRows() {
			if !v.trustsBase(rel, r.Tuple) {
				continue
			}
			if lt.InsertRow(r) {
				stats.InsL++
				pending[LocalRel(rel)] = append(pending[LocalRel(rel)], r)
				v.ev.InvalidateTransient(LocalRel(rel))
			}
		}
	}
	for rel, d := range dr {
		rt := v.db.Table(RejectRel(rel))
		it := v.db.Table(InputRel(rel))
		for _, r := range d.DelRows() {
			if rt.DeleteRow(r) {
				stats.DelR++
				v.ev.InvalidateTransient(RejectRel(rel))
				// A withdrawn rejection revives the blocked input tuple:
				// re-feed it through rule (tR) by seeding the delta.
				if it.ContainsRow(r) {
					pending[InputRel(rel)] = append(pending[InputRel(rel)], r)
				}
			}
		}
	}
	if len(pending) == 0 {
		return nil
	}
	es, err := v.ev.PropagateRows(ctx, pending)
	stats.Engine.Add(es)
	return err
}

// ---------------------------------------------------------------------------
// Provenance-driven incremental deletion (the paper's Fig. 3).

// provHandle identifies one provenance row. The row is keyed, so deleting
// it and instantiating its templates never re-encode; stored rows are
// immutable, so handles share them without cloning.
type provHandle struct {
	mi  *provenance.MappingInfo
	row value.Row
}

// deletionState is one provenance-driven deletion cascade in flight: the
// worklists, the tuples already deleted, and the suspects pending a
// derivability test. Edit-driven deletion (deleteProvenance) seeds it
// from base changes; spec evolution (evolve.go) seeds it from whole
// removed mappings or newly-untrusted provenance rows — the same cascade
// and derivability loop repair the view either way.
type deletionState struct {
	v     *View
	stats *ApplyStats
	// work holds tuples deleted and pending their source-cascade; provDel
	// holds provenance rows pending deletion.
	work    []provenance.Ref
	provDel []provHandle
	deleted map[provenance.Ref]bool
	rchk    map[provenance.Ref]bool
}

func (v *View) newDeletionState(stats *ApplyStats) *deletionState {
	return &deletionState{
		v:       v,
		stats:   stats,
		deleted: make(map[provenance.Ref]bool),
		rchk:    make(map[provenance.Ref]bool),
	}
}

// deleteTuple removes ref's tuple (if still present) and queues the
// source-cascade.
func (d *deletionState) deleteTuple(ref provenance.Ref) {
	if d.deleted[ref] {
		return
	}
	tbl := d.v.db.Table(ref.Rel)
	if tbl == nil {
		return
	}
	if _, ok := tbl.DeleteKey(ref.Key); !ok {
		return
	}
	d.v.ev.InvalidateTransient(ref.Rel)
	d.deleted[ref] = true
	delete(d.rchk, ref)
	d.stats.TuplesDeleted++
	d.work = append(d.work, ref)
}

// suspect handles a tuple that just lost one derivation: tuples with no
// remaining provenance rows are deleted outright; the rest queue for the
// derivability test.
func (d *deletionState) suspect(ref provenance.Ref) {
	if d.deleted[ref] {
		return
	}
	if !d.v.hasSupport(ref) {
		d.deleteTuple(ref)
	} else {
		d.rchk[ref] = true
	}
}

// cascade drains the two worklists: provenance-row deletions update
// target support; tuple deletions invalidate provenance rows that use
// them as sources.
func (d *deletionState) cascade() {
	v := d.v
	for len(d.work) > 0 || len(d.provDel) > 0 {
		rows := d.provDel
		d.provDel = nil
		for _, h := range rows {
			pt := v.db.Table(h.mi.ProvRel)
			if pt == nil || !pt.DeleteRow(h.row) {
				continue
			}
			v.ev.InvalidateTransient(h.mi.ProvRel)
			d.stats.ProvRowsDeleted++
			for i := range h.mi.Targets {
				d.suspect(provenance.NewRef(h.mi.Targets[i].Rel, h.mi.Targets[i].Instantiate(h.row.Tuple, v.sk)))
			}
		}
		tuples := d.work
		d.work = nil
		for _, ref := range tuples {
			d.provDel = append(d.provDel, v.rowsUsingSource(ref)...)
		}
	}
}

// run drives the cascade to completion, interleaving the derivability
// loop (Fig. 3 lines 10–18): surviving suspects are tested against the
// EDB; failures are garbage-collected (their remaining provenance rows
// are the non-well-founded cyclic ones) and the cascade continues.
func (d *deletionState) run(ctx context.Context) error {
	v := d.v
	d.cascade()
	for len(d.rchk) > 0 {
		var pending []provenance.Ref
		for ref := range d.rchk {
			if !d.deleted[ref] && v.db.Table(ref.Rel).ContainsKey(ref.Key) {
				pending = append(pending, ref)
			}
		}
		d.rchk = make(map[provenance.Ref]bool)
		if len(pending) == 0 {
			break
		}
		d.stats.Checked += len(pending)
		alive, err := v.derivable(ctx, pending, d.stats)
		if err != nil {
			return err
		}
		changed := false
		for _, ref := range pending {
			if alive[ref] {
				d.stats.Rederived++
				continue
			}
			// Not derivable from the EDB: remove the tuple and the cyclic
			// provenance rows still deriving it.
			d.provDel = append(d.provDel, v.rowsDeriving(ref)...)
			d.deleteTuple(ref)
			changed = true
		}
		if !changed {
			break
		}
		d.cascade()
	}
	return nil
}

// deleteProvenance implements the PropagateDelete algorithm: delete
// provenance rows invalidated by base deletions; tuples that lose all
// provenance rows are deleted and cascade; tuples that keep some rows are
// tested for derivability from the EDB via the goal-directed inverse
// program (§4.1.3), and garbage-collected if the test fails (this is what
// collects derivation cycles no longer anchored in local contributions).
func (v *View) deleteProvenance(ctx context.Context, dl, dr storage.DeltaSet, stats *ApplyStats) error {
	ds := v.newDeletionState(stats)

	// Seed: local-contribution deletions…
	for rel, d := range dl {
		lt := v.db.Table(LocalRel(rel))
		for _, r := range d.DelRows() {
			if lt.DeleteRow(r) {
				stats.DelL++
				v.ev.InvalidateTransient(LocalRel(rel))
				ref := provenance.RowRef(LocalRel(rel), r)
				ds.deleted[ref] = true
				ds.work = append(ds.work, ref)
			}
		}
	}
	// …and curation rejections, which invalidate the (tR) provenance row
	// of the rejected input tuple.
	for rel, d := range dr {
		rt := v.db.Table(RejectRel(rel))
		pIns := v.db.Table(provRelOf(insMapID(rel)))
		for _, r := range d.InsRows() {
			if rt.InsertRow(r) {
				stats.InsR++
				v.ev.InvalidateTransient(RejectRel(rel))
				if pIns.ContainsRow(r) {
					ds.provDel = append(ds.provDel, provHandle{mi: v.mappingInfo(insMapID(rel)), row: r})
				}
			}
		}
	}

	return ds.run(ctx)
}

// mappingInfo finds registered metadata by mapping id.
func (v *View) mappingInfo(id string) *provenance.MappingInfo {
	for _, mi := range v.infos {
		if mi.ID == id {
			return mi
		}
	}
	panic(fmt.Sprintf("core: unknown mapping %q", id))
}

// rowsUsingSource returns handles of live provenance rows with ref among
// their sources, via an indexed probe on the provenance table.
func (v *View) rowsUsingSource(ref provenance.Ref) []provHandle {
	var out []provHandle
	t := ref.Tuple()
	for _, ms := range v.bySourceRel[ref.Rel] {
		tmpl := &ms.mi.Sources[ms.idx]
		v.probeTemplate(ms.mi, tmpl, t, func(row value.Row) {
			out = append(out, provHandle{mi: ms.mi, row: row})
		})
	}
	return out
}

// rowsDeriving returns handles of live provenance rows with ref among
// their targets.
func (v *View) rowsDeriving(ref provenance.Ref) []provHandle {
	var out []provHandle
	t := ref.Tuple()
	for _, mt := range v.byTargetRel[ref.Rel] {
		tmpl := &mt.mi.Targets[mt.idx]
		v.probeTemplate(mt.mi, tmpl, t, func(row value.Row) {
			out = append(out, provHandle{mi: mt.mi, row: row})
		})
	}
	return out
}

// hasSupport reports whether any live provenance row still derives ref.
func (v *View) hasSupport(ref provenance.Ref) bool {
	t := ref.Tuple()
	for _, mt := range v.byTargetRel[ref.Rel] {
		found := false
		v.probeTemplate(mt.mi, &mt.mi.Targets[mt.idx], t, func(value.Row) { found = true })
		if found {
			return true
		}
	}
	return false
}

// probeTemplate finds provenance rows of mi whose template instantiation
// equals want, probing a secondary index on the first directly-copied
// column when possible. Matching rows are handed to fn keyed; fn must not
// retain the bucket slice beyond the call (rows themselves are immutable
// and safe to keep).
func (v *View) probeTemplate(mi *provenance.MappingInfo, tmpl *provenance.AtomTemplate, want value.Tuple, fn func(value.Row)) {
	pt := v.db.Table(mi.ProvRel)
	if pt.Len() == 0 {
		return
	}
	matches := func(row value.Tuple) bool {
		got := tmpl.Instantiate(row, v.sk)
		return got.Equal(want)
	}
	probeCol := -1
	var probeVal value.Value
	for i, a := range tmpl.Args {
		if a.Col >= 0 {
			probeCol = a.Col
			probeVal = want[i]
			break
		}
	}
	if probeCol >= 0 {
		pt.EnsureIndex(probeCol)
		rows, _ := pt.ProbeRows(probeCol, probeVal)
		for _, row := range rows {
			if matches(row.Tuple) {
				fn(row)
			}
		}
		return
	}
	pt.EachRow(func(row value.Row) bool {
		if matches(row.Tuple) {
			fn(row)
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Derivability testing (§4.1.3).

// derivable runs the goal-directed derivation test: trace the provenance
// graph backward from the suspects to their supporting EDB tuples, then
// re-run the (trust-filtered) mapping program forward on a scratch
// database seeded with exactly that support, and report which suspects
// reappear.
func (v *View) derivable(ctx context.Context, refs []provenance.Ref, stats *ApplyStats) (map[provenance.Ref]bool, error) {
	if err := v.ensureChk(); err != nil {
		return nil, err
	}
	// Reset the scratch database.
	for _, name := range v.chkDB.Names() {
		v.chkDB.Table(name).Clear()
	}
	v.chkEv.InvalidateAllTransient()

	// Backward: supporting base tuples (present local contributions),
	// found goal-directedly via indexed probes — this is the "majority of
	// its computation while only using the keys of tuples" property §6.3
	// credits for beating DRed.
	support := v.supportOf(refs)
	for ref := range support {
		v.chkDB.Table(ref.Rel).InsertRow(value.KeyedRow(ref.Tuple(), ref.Key))
	}
	// Rejections still apply during re-derivation.
	for _, rel := range v.spec.Universe.Relations() {
		src := v.db.Table(RejectRel(rel.Name))
		dst := v.chkDB.Table(RejectRel(rel.Name))
		src.EachRow(func(r value.Row) bool {
			dst.InsertRow(r)
			return true
		})
	}
	// Forward: fixpoint over the support.
	es, err := v.chkEv.Run(ctx)
	stats.Engine.Add(es)
	if err != nil {
		return nil, err
	}
	alive := make(map[provenance.Ref]bool, len(refs))
	for _, ref := range refs {
		if tbl := v.chkDB.Table(ref.Rel); tbl != nil && tbl.ContainsKey(ref.Key) {
			alive[ref] = true
		}
	}
	return alive, nil
}

// Derivability reports whether a tuple of a user relation's instance is
// derivable from the current local contributions (§4.1.3's test, exposed
// for curation tooling), together with the supporting base tuples found
// by the backward pass. A tuple may be present yet non-derivable only
// transiently inside deletion propagation; after any maintenance
// operation completes, presence and derivability coincide.
func (v *View) Derivability(ctx context.Context, rel string, t value.Tuple) (bool, []provenance.Ref, error) {
	ref := provenance.NewRef(OutputRel(rel), t)
	var stats ApplyStats
	if err := v.repairIfDirty(ctx, &stats); err != nil {
		return false, nil, err
	}
	alive, err := v.derivable(ctx, []provenance.Ref{ref}, &stats)
	if err != nil {
		return false, nil, err
	}
	support := v.supportOf([]provenance.Ref{ref})
	refs := make([]provenance.Ref, 0, len(support))
	for r := range support {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Rel != refs[j].Rel {
			return refs[i].Rel < refs[j].Rel
		}
		return refs[i].Key < refs[j].Key
	})
	return alive[ref], refs, nil
}

// supportOf walks the provenance graph backward from the targets to the
// base tuples supporting them, using indexed probes on the provenance
// tables (goal-directed, unlike provenance.Graph.Support which scans).
func (v *View) supportOf(targets []provenance.Ref) map[provenance.Ref]bool {
	support := make(map[provenance.Ref]bool)
	visited := make(map[provenance.Ref]bool)
	stack := make([]provenance.Ref, 0, len(targets))
	for _, t := range targets {
		if !visited[t] {
			visited[t] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v.graph.IsBase(cur) {
			if tbl := v.db.Table(cur.Rel); tbl != nil && tbl.ContainsKey(cur.Key) {
				support[cur] = true
			}
			continue
		}
		for _, h := range v.rowsDeriving(cur) {
			for i := range h.mi.Sources {
				src := provenance.NewRef(h.mi.Sources[i].Rel, h.mi.Sources[i].Instantiate(h.row.Tuple, v.sk))
				if !visited[src] {
					visited[src] = true
					stack = append(stack, src)
				}
			}
		}
	}
	return support
}

// ensureChk lazily builds the scratch database and evaluator used by
// derivability tests.
func (v *View) ensureChk() error {
	if v.chkEv != nil {
		return nil
	}
	v.chkDB = storage.NewDatabase()
	for _, name := range v.db.Names() {
		if _, err := v.chkDB.Create(name, v.db.Table(name).Arity()); err != nil {
			return err
		}
	}
	ev, err := engine.New(v.prog, v.chkDB, v.sk, engine.Options{
		Backend:       v.opts.Backend,
		MaxIterations: v.opts.MaxIterations,
		Parallelism:   v.opts.Parallelism,
	})
	if err != nil {
		return err
	}
	v.chkEv = ev
	return nil
}

// ---------------------------------------------------------------------------
// DRed baseline (§4.2, §6.3).

// dredState is one DRed over-deletion in flight: tuples reachable from
// the seeds are removed regardless of alternative derivations; a full
// re-run afterwards restores the survivors.
type dredState struct {
	v       *View
	stats   *ApplyStats
	work    []provenance.Ref
	provDel []provHandle
	deleted map[provenance.Ref]bool
}

func (v *View) newDredState(stats *ApplyStats) *dredState {
	return &dredState{v: v, stats: stats, deleted: make(map[provenance.Ref]bool)}
}

// overDelete removes ref's tuple pessimistically — even if other
// derivations exist; re-derivation restores it.
func (d *dredState) overDelete(ref provenance.Ref) {
	if d.deleted[ref] {
		return
	}
	tbl := d.v.db.Table(ref.Rel)
	if tbl == nil {
		return
	}
	if _, ok := tbl.DeleteKey(ref.Key); !ok {
		return
	}
	d.deleted[ref] = true
	d.stats.TuplesDeleted++
	d.work = append(d.work, ref)
}

// drain runs the over-deletion cascade to exhaustion.
func (d *dredState) drain() {
	v := d.v
	for len(d.work) > 0 || len(d.provDel) > 0 {
		rows := d.provDel
		d.provDel = nil
		for _, h := range rows {
			pt := v.db.Table(h.mi.ProvRel)
			if pt == nil || !pt.DeleteRow(h.row) {
				continue
			}
			d.stats.ProvRowsDeleted++
			for i := range h.mi.Targets {
				d.overDelete(provenance.NewRef(h.mi.Targets[i].Rel, h.mi.Targets[i].Instantiate(h.row.Tuple, v.sk)))
			}
		}
		tuples := d.work
		d.work = nil
		for _, ref := range tuples {
			d.provDel = append(d.provDel, v.rowsUsingSource(ref)...)
		}
	}
}

// deleteDRed propagates deletions pessimistically: every tuple
// transitively derivable from a deleted tuple is removed (regardless of
// alternative derivations), then the program is re-run to fixpoint to
// re-derive survivors — re-insertion being the expensive step the paper
// measures against.
func (v *View) deleteDRed(ctx context.Context, dl, dr storage.DeltaSet, stats *ApplyStats) error {
	ds := v.newDredState(stats)

	for rel, d := range dl {
		lt := v.db.Table(LocalRel(rel))
		for _, r := range d.DelRows() {
			if lt.DeleteRow(r) {
				stats.DelL++
				ref := provenance.RowRef(LocalRel(rel), r)
				ds.deleted[ref] = true
				ds.work = append(ds.work, ref)
			}
		}
	}
	for rel, d := range dr {
		rt := v.db.Table(RejectRel(rel))
		pIns := v.db.Table(provRelOf(insMapID(rel)))
		for _, r := range d.InsRows() {
			if rt.InsertRow(r) {
				stats.InsR++
				if pIns.ContainsRow(r) {
					ds.provDel = append(ds.provDel, provHandle{mi: v.mappingInfo(insMapID(rel)), row: r})
				}
			}
		}
	}

	ds.drain()

	// Re-derivation: full fixpoint from the surviving state.
	v.ev.InvalidateAllTransient()
	es, err := v.ev.Run(ctx)
	stats.Engine.Add(es)
	stats.Rederived += es.Derived
	return err
}
