package core

import (
	"context"

	"orchestra/internal/provenance"
	"orchestra/internal/semiring"
	"orchestra/internal/value"
)

// This file exposes semiring evaluations of a view's provenance, mapping
// user-relation tuples onto the internal graph nodes. TrustEval realizes
// Example 7's post-hoc trust computation; RankTrust realizes the "ranked
// trust models" sketched in the paper's future work (§8) via the Viterbi
// semiring; DerivationCounts uses the counting semiring the provenance
// model generalizes (§7's duplicate semantics).

// OutRef is the provenance-graph node of a user relation's instance
// tuple.
func OutRef(rel string, t value.Tuple) provenance.Ref {
	return provenance.NewRef(OutputRel(rel), t)
}

// BaseRef is the provenance-graph node (token) of a base contribution.
func BaseRef(rel string, t value.Tuple) provenance.Ref {
	return provenance.NewRef(LocalRel(rel), t)
}

// TrustEval evaluates every tuple's trustworthiness in the boolean
// semiring: tokenTrust assigns T/D to base tuples (nil = trust all),
// mappingTrust assigns Θ verdicts per mapping id (absent = trusted).
func TrustEval(ctx context.Context, v *View, tokenTrust map[provenance.Ref]bool, mappingTrust map[string]bool) (map[provenance.Ref]bool, error) {
	return provenance.Eval[bool](ctx, v.graph, semiring.Bool{},
		func(m string, x bool) bool {
			if t, ok := mappingTrust[m]; ok {
				return t && x
			}
			return x
		},
		func(r provenance.Ref) bool {
			if t, ok := tokenTrust[r]; ok {
				return t
			}
			return true
		}, provenance.EvalOptions{})
}

// DerivationCounts evaluates the number of derivations of every tuple in
// the saturating counting semiring (cap 0 = default).
func DerivationCounts(ctx context.Context, v *View, cap int64) (map[provenance.Ref]int64, error) {
	return provenance.Eval[int64](ctx, v.graph, semiring.Count{Cap: cap},
		semiring.Identity[int64](),
		func(provenance.Ref) int64 { return 1 }, provenance.EvalOptions{})
}

// RankTrust evaluates ranked trust in the Viterbi semiring ([0,1], max,
// ×): each base token gets a confidence (default 1), each mapping a
// reliability factor (default 1), and a tuple's rank is the confidence of
// its most trustworthy derivation — the §8 "ranked trust models"
// extension.
func RankTrust(ctx context.Context, v *View, tokenConf map[provenance.Ref]float64, mappingConf map[string]float64) (map[provenance.Ref]float64, error) {
	return provenance.Eval[float64](ctx, v.graph, semiring.Viterbi{},
		func(m string, x float64) float64 {
			if c, ok := mappingConf[m]; ok {
				return c * x
			}
			return x
		},
		func(r provenance.Ref) float64 {
			if c, ok := tokenConf[r]; ok {
				return c
			}
			return 1
		}, provenance.EvalOptions{})
}

// Lineage evaluates Cui-style lineage: the set of base tokens each tuple
// transitively depends on.
func Lineage(ctx context.Context, v *View) (map[provenance.Ref]semiring.LineageElem, error) {
	return provenance.Eval[semiring.LineageElem](ctx, v.graph, semiring.Lineage{},
		semiring.Identity[semiring.LineageElem](),
		func(r provenance.Ref) semiring.LineageElem {
			return semiring.Token(v.graph.TokenName(r))
		}, provenance.EvalOptions{})
}
