package core

import (
	"fmt"

	"orchestra/internal/storage"
	"orchestra/internal/value"
)

// Edit is one entry of a peer's edit log ∆R (§3.1): an insertion or
// deletion of a tuple of one of the peer's own relations.
type Edit struct {
	Insert bool
	Rel    string
	Tuple  value.Tuple
}

// Ins builds an insertion edit.
func Ins(rel string, t value.Tuple) Edit { return Edit{Insert: true, Rel: rel, Tuple: t} }

// Del builds a deletion edit.
func Del(rel string, t value.Tuple) Edit { return Edit{Insert: false, Rel: rel, Tuple: t} }

// String renders "+R(1,2)" / "-R(1,2)".
func (e Edit) String() string {
	sign := "-"
	if e.Insert {
		sign = "+"
	}
	return fmt.Sprintf("%s%s%s", sign, e.Rel, e.Tuple)
}

// EditLog is an ordered list of edits published together.
type EditLog []Edit

// NetEffect computes the state changes an edit log induces on the
// local-contributions and rejections tables of its relations (§3.1):
//
//   - "+t": if t is currently rejected, the rejection is withdrawn; t
//     becomes a local contribution.
//   - "−t": if t is a local contribution (from before or from earlier in
//     this log) it is simply removed; otherwise the deletion is a
//     curation rejection of imported data and t enters Rr.
//
// trusts, when non-nil, is the view owner's base-trust predicate
// (§3.3): an insertion of a distrusted tuple withdraws any standing
// rejection but does not make the tuple a local contribution — exactly
// what applying the edit would do — so the simulated membership stays
// faithful and a later "−t" in the same run correctly becomes a
// rejection instead of cancelling against a contribution that was
// never admitted. This keeps the net effect independent of how the
// log was batched into publications (the exchange-coalescing
// equivalence property). nil trusts everything.
//
// The effects are returned as deltas over the internal Rℓ and Rr tables
// of the view's database, relative to their current contents. Nothing is
// applied.
func NetEffect(log EditLog, db *storage.Database, trusts func(rel string, t value.Tuple) bool) (dl storage.DeltaSet, dr storage.DeltaSet, err error) {
	// Simulated membership during the scan: touched keys only. Each tuple
	// is canonically encoded once here; the key then flows through the
	// membership probes and into the produced deltas.
	type state struct{ inL, inR, touched, trusted bool }
	states := make(map[string]map[string]*state) // rel -> key -> state
	tupOf := make(map[string]map[string]value.Tuple)
	var keyBuf []byte

	get := func(rel string, t value.Tuple) (*state, error) {
		lt := db.Table(LocalRel(rel))
		rt := db.Table(RejectRel(rel))
		if lt == nil || rt == nil {
			return nil, fmt.Errorf("core: edit log references unknown relation %q", rel)
		}
		if len(t) != lt.Arity() {
			return nil, fmt.Errorf("core: edit tuple %s has arity %d, relation %q expects %d",
				t, len(t), rel, lt.Arity())
		}
		byKey := states[rel]
		if byKey == nil {
			byKey = make(map[string]*state)
			states[rel] = byKey
			tupOf[rel] = make(map[string]value.Tuple)
		}
		keyBuf = t.EncodeKey(keyBuf[:0])
		st, ok := byKey[string(keyBuf)]
		if !ok {
			st = &state{
				inL: lt.ContainsKey(string(keyBuf)),
				inR: rt.ContainsKey(string(keyBuf)),
				// Trust depends only on (rel, tuple): evaluate the policy
				// once per distinct touched tuple, not per edit occurrence
				// (coalesced runs repeat tuples freely).
				trusted: trusts == nil || trusts(rel, t),
			}
			byKey[string(keyBuf)] = st
			tupOf[rel][string(keyBuf)] = t.Clone()
		}
		return st, nil
	}

	for _, e := range log {
		st, gerr := get(e.Rel, e.Tuple)
		if gerr != nil {
			return nil, nil, gerr
		}
		st.touched = true
		if e.Insert {
			st.inR = false
			if st.trusted {
				st.inL = true
			}
		} else {
			if st.inL {
				st.inL = false
			} else {
				st.inR = true
			}
		}
	}

	dl, dr = storage.DeltaSet{}, storage.DeltaSet{}
	for rel, byKey := range states {
		lt := db.Table(LocalRel(rel))
		rt := db.Table(RejectRel(rel))
		for key, st := range byKey {
			if !st.touched {
				continue
			}
			row := value.KeyedRow(tupOf[rel][key], key)
			wasL, wasR := lt.ContainsKey(key), rt.ContainsKey(key)
			switch {
			case st.inL && !wasL:
				dl.At(rel).InsertRow(row)
			case !st.inL && wasL:
				dl.At(rel).DeleteRow(row)
			}
			switch {
			case st.inR && !wasR:
				dr.At(rel).InsertRow(row)
			case !st.inR && wasR:
				dr.At(rel).DeleteRow(row)
			}
		}
	}
	return dl, dr, nil
}
