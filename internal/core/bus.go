package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"orchestra/internal/obs"
)

// Publication is one peer's published edit log, as stored on a bus.
// TraceID is the publication's lineage id (obs.SpanContext), taken
// from the publisher's context (or minted at the HTTP publish
// boundary) and carried across every bus implementation; "" for
// untraced publications.
type Publication struct {
	Peer    string
	Log     EditLog
	TraceID string
}

// PublicationBus is the shared storage through which peers make their
// edit logs "globally available" (§2). It has append/fetch-since
// semantics: publications form a totally ordered sequence; a cursor is
// the number of publications already consumed. Implementations must be
// safe for concurrent use.
type PublicationBus interface {
	// Append adds one publication to the end of the global sequence.
	Append(ctx context.Context, peer string, log EditLog) error
	// FetchSince returns every publication at or after cursor together
	// with the new cursor (the sequence length at read time).
	FetchSince(ctx context.Context, cursor int) ([]Publication, int, error)
}

// MemoryBus is the in-process PublicationBus: a mutex-guarded slice.
// This is the `published` sequence that used to live inside CDSS,
// extracted so the same exchange code can run against remote storage.
type MemoryBus struct {
	mu   sync.RWMutex
	pubs []Publication
}

// NewMemoryBus returns an empty in-memory publication sequence.
func NewMemoryBus() *MemoryBus { return &MemoryBus{} }

// Append implements PublicationBus.
func (b *MemoryBus) Append(ctx context.Context, peer string, log EditLog) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if peer == "" {
		return fmt.Errorf("core: publication without peer")
	}
	b.mu.Lock()
	b.pubs = append(b.pubs, Publication{Peer: peer, Log: log, TraceID: obs.TraceIDFromContext(ctx)})
	b.mu.Unlock()
	return nil
}

// Preload appends a publication with an explicit trace id — the replay
// path for durable buses reloading persisted publications, where the
// trace id comes from the stored frame rather than a live context.
func (b *MemoryBus) Preload(peer string, log EditLog, traceID string) error {
	if peer == "" {
		return fmt.Errorf("core: publication without peer")
	}
	b.mu.Lock()
	b.pubs = append(b.pubs, Publication{Peer: peer, Log: log, TraceID: traceID})
	b.mu.Unlock()
	return nil
}

// FetchSince implements PublicationBus.
func (b *MemoryBus) FetchSince(ctx context.Context, cursor int) ([]Publication, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, cursor, err
	}
	if cursor < 0 {
		return nil, cursor, fmt.Errorf("core: negative cursor %d", cursor)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if cursor > len(b.pubs) {
		cursor = len(b.pubs)
	}
	out := make([]Publication, len(b.pubs)-cursor)
	copy(out, b.pubs[cursor:])
	return out, len(b.pubs), nil
}

// Len returns the number of publications on the bus.
func (b *MemoryBus) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.pubs)
}

// PublishTo validates a peer's edit log against the spec and appends it
// to a bus — the one publish algorithm shared by CDSS and the public
// facade. A lineage trace id already on ctx (orchestra.NewTraceContext)
// rides along; none is minted here — minting costs two crypto/rand
// reads and a context allocation, which publish-heavy workloads would
// pay on every call, so ids are minted only at explicit opt-in or at
// the HTTP publish boundary (share mints for untraced wire publishes).
func PublishTo(ctx context.Context, bus PublicationBus, spec *Spec, peer string, log EditLog) error {
	if err := ValidateLog(spec, peer, log); err != nil {
		return err
	}
	return bus.Append(ctx, peer, log)
}

// ExchangeInto imports every publication on the bus since cursor into a
// view, one apply pass per publication in global publication order, and
// returns the new cursor. On error (including cancellation) the
// returned cursor is advanced only past fully applied publications, so
// a retry resumes where it stopped.
//
// This is the reference replay: ExchangeCoalesced imports the same run
// as one net apply and must end observationally identical (the exchange
// equivalence property test compares the two).
func ExchangeInto(ctx context.Context, bus PublicationBus, v *View, cursor int, strategy DeletionStrategy) (int, ApplyStats, error) {
	fetchStart := time.Now()
	pubs, next, err := bus.FetchSince(ctx, cursor)
	fetchNS := time.Since(fetchStart).Nanoseconds()
	if err != nil {
		return cursor, ApplyStats{FetchNS: fetchNS}, err
	}
	base := next - len(pubs)
	stats := ApplyStats{FetchNS: fetchNS}
	for i, pub := range pubs {
		s, err := v.ApplyEditsContext(ctx, pub.Log, strategy)
		stats.Add(s)
		if err != nil {
			return base + i, stats, err
		}
		stats.Publications++
		if pub.TraceID != "" {
			stats.TraceIDs = append(stats.TraceIDs, pub.TraceID)
		}
	}
	return next, stats, nil
}

// MergeLogs concatenates a run of publications' edit logs in global
// publication order. Applying the merged log as one maintenance
// operation is equivalent to applying the logs one publication at a
// time: NetEffect simulates each tuple's membership transitions entry
// by entry, so insert+delete pairs cancel across publication boundaries
// exactly as they would have sequentially, and a completed maintenance
// operation leaves the instance a pure function of the final base
// tables (history-independence — the invariant the evolution and
// exchange equivalence property tests pin down).
func MergeLogs(pubs []Publication) EditLog {
	if len(pubs) == 1 {
		return pubs[0].Log
	}
	total := 0
	for _, p := range pubs {
		total += len(p.Log)
	}
	merged := make(EditLog, 0, total)
	for _, p := range pubs {
		merged = append(merged, p.Log...)
	}
	return merged
}

// ExchangeCoalesced imports the pending run [cursor, horizon) in one
// coalesced pass: the publications' edit logs are merged (MergeLogs)
// and applied as a single net maintenance operation — one NetEffect
// (which cancels insert+delete pairs before any propagation runs), one
// deletion cascade, one insertion fixpoint — instead of len(run)
// sequential ones.
//
// Unlike ExchangeInto, the pass is all-or-nothing: on error (including
// cancellation) the cursor does not advance at all. Retrying is still
// safe — base changes an interrupted apply already committed make the
// retried NetEffect a no-op for that prefix, and the view's dirty-
// repair machinery restores derived state before the retry propagates.
func ExchangeCoalesced(ctx context.Context, bus PublicationBus, v *View, cursor int, strategy DeletionStrategy) (int, ApplyStats, error) {
	fetchStart := time.Now()
	pubs, next, err := bus.FetchSince(ctx, cursor)
	fetchNS := time.Since(fetchStart).Nanoseconds()
	if err != nil {
		return cursor, ApplyStats{FetchNS: fetchNS}, err
	}
	if len(pubs) == 0 {
		return next, ApplyStats{FetchNS: fetchNS}, nil
	}
	stats, err := v.ApplyEditsContext(ctx, MergeLogs(pubs), strategy)
	stats.FetchNS += fetchNS
	if err != nil {
		return cursor, stats, err
	}
	stats.Publications = len(pubs)
	for _, pub := range pubs {
		if pub.TraceID != "" {
			stats.TraceIDs = append(stats.TraceIDs, pub.TraceID)
		}
	}
	return next, stats, nil
}

// BusLen returns the current length of a bus's publication sequence
// without transferring publication bodies: FetchSince clamps a cursor
// past the end and reports the sequence length with no publications.
func BusLen(ctx context.Context, bus PublicationBus) (int, error) {
	_, n, err := bus.FetchSince(ctx, math.MaxInt)
	return n, err
}

// ValidateLog checks that an edit log is legal for a peer under a spec:
// the peer exists, every edit touches one of the peer's own relations
// (peers edit only their local instance, §2), and arities match.
func ValidateLog(spec *Spec, peer string, log EditLog) error {
	p := spec.Universe.Peer(peer)
	if p == nil {
		return fmt.Errorf("core: unknown peer %q", peer)
	}
	for _, e := range log {
		rel := spec.Universe.Relation(e.Rel)
		if rel == nil {
			return fmt.Errorf("core: edit %s references unknown relation", e)
		}
		if rel.Peer != peer {
			return fmt.Errorf("core: peer %q cannot edit relation %q of peer %q", peer, e.Rel, rel.Peer)
		}
		if len(e.Tuple) != rel.Arity() {
			return fmt.Errorf("core: edit %s has wrong arity for %s", e, rel.Name)
		}
	}
	return nil
}
