package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"orchestra/internal/obs"
)

// Publication is one peer's published edit log, as stored on a bus.
// TraceID is the publication's lineage id (obs.SpanContext), taken
// from the publisher's context (or minted at the HTTP publish
// boundary) and carried across every bus implementation; "" for
// untraced publications.
type Publication struct {
	Peer    string
	Log     EditLog
	TraceID string
}

// The publication bus is the shared storage through which peers make
// their edit logs "globally available" (§2). Publications form a
// totally ordered sequence, partitioned into shards by owning peer
// (peers edit only their own relations — ValidateLog — so shards are
// independent by construction). The capabilities are split into
// composable interfaces so implementations provide only what they can:
// every bus appends and fetches; push delivery (BusWatcher) is
// capability-detected by consumers and purely an optimization — a
// pull-only bus still yields identical instances, just on the caller's
// polling cadence.

// BusAppender accepts publications. Implementations must be safe for
// concurrent use.
type BusAppender interface {
	// Append adds one publication to the end of the global sequence
	// (and of its owning peer's shard).
	Append(ctx context.Context, peer string, log EditLog) error
}

// BusReader replays the publication sequence from typed positions.
// Implementations must be safe for concurrent use.
type BusReader interface {
	// Fetch returns every publication at or after from, in global
	// order, together with the bus's horizon at read time (the cursor
	// a consumer of everything returned now holds). A cursor past the
	// horizon is clamped: Fetch returns no deltas and the (smaller)
	// horizon, which callers detect as a position regression.
	Fetch(ctx context.Context, from Cursor) ([]Delta, Cursor, error)
	// Horizon returns the current end-of-bus cursor without
	// transferring publication bodies.
	Horizon(ctx context.Context) (Cursor, error)
}

// BusWatcher pushes publications to subscribers as they are appended.
type BusWatcher interface {
	// Subscribe returns a channel delivering every delta at or after
	// from, in global order, until cancel is called or ctx is done
	// (either closes the channel). Implementations must bound their
	// buffering: a slow subscriber may stall its own channel but must
	// neither lose publications nor hold unbounded memory beyond the
	// bus's own storage.
	Subscribe(ctx context.Context, from Cursor) (<-chan Delta, CancelFunc, error)
}

// PublicationBus is the capability set the exchange machinery requires:
// append plus typed-position replay. Buses that additionally implement
// BusWatcher get push delivery; detect it with a type assertion.
type PublicationBus interface {
	BusAppender
	BusReader
}

// LegacyBus is the pre-shard bus shape: scalar cursors, no horizon, no
// subscriptions. Deprecated: implement PublicationBus; AdaptBus wraps
// remaining implementations for one release.
type LegacyBus interface {
	Append(ctx context.Context, peer string, log EditLog) error
	// FetchSince returns every publication at or after cursor together
	// with the new cursor (the sequence length at read time).
	FetchSince(ctx context.Context, cursor int) ([]Publication, int, error)
}

// AdaptBus lifts a LegacyBus to the typed-cursor PublicationBus
// interface. Positions are reconstructed by folding fetches forward
// from the caller's cursor, which is accurate whenever consumption
// started from an exact position; fetches from a migrated scalar
// position yield deltas with unknown (zero) shard positions, which
// push-side gap detection treats as "must pull" — correct, just not
// shard-attributed. If the bus already implements PublicationBus it is
// returned unchanged.
func AdaptBus(b LegacyBus) PublicationBus {
	if pb, ok := b.(PublicationBus); ok {
		return pb
	}
	return adaptedBus{legacy: b}
}

type adaptedBus struct{ legacy LegacyBus }

func (a adaptedBus) Append(ctx context.Context, peer string, log EditLog) error {
	return a.legacy.Append(ctx, peer, log)
}

func (a adaptedBus) Fetch(ctx context.Context, from Cursor) ([]Delta, Cursor, error) {
	pubs, next, err := a.legacy.FetchSince(ctx, from.Total())
	if err != nil {
		return nil, from, err
	}
	cur := from
	deltas := make([]Delta, len(pubs))
	for i, p := range pubs {
		pos := 0
		if n, known := cur.shardKnown(p.Peer); known {
			pos = n + 1
		}
		deltas[i] = Delta{Shard: p.Peer, Pos: pos, Pub: p}
		cur = cur.Advance(deltas[i])
	}
	if cur.Total() != next {
		// Clamped (cursor past the end) or a bus that skipped entries:
		// the fold does not describe position next, only its total does.
		return deltas, CursorFromTotal(next), nil
	}
	return deltas, cur, nil
}

func (a adaptedBus) Horizon(ctx context.Context) (Cursor, error) {
	_, n, err := a.legacy.FetchSince(ctx, math.MaxInt)
	if err != nil {
		return Cursor{}, err
	}
	return CursorFromTotal(n), nil
}

const (
	// subscribeBuffer is each subscription channel's capacity: enough
	// to decouple the pump from a briefly busy consumer without
	// duplicating any real fraction of the bus in channel buffers.
	subscribeBuffer = 16
	// subscribeBatch bounds how many deltas a subscription pump copies
	// out of the bus per lock acquisition.
	subscribeBatch = 64
)

// MemoryBus is the in-process publication bus: the totally ordered
// delta sequence plus per-shard counts, guarded by one RWMutex, with
// wake-and-pull subscriptions. Subscribers hold a position into the
// bus's own storage and pull bounded batches from it when woken, so a
// slow subscriber delays only itself and buffers at most
// subscribeBuffer+subscribeBatch deltas outside the bus — publications
// are never dropped.
type MemoryBus struct {
	mu     sync.RWMutex
	order  []Delta
	counts map[string]int
	subs   map[int]chan struct{}
	nextID int
}

// NewMemoryBus returns an empty in-memory publication sequence.
func NewMemoryBus() *MemoryBus { return &MemoryBus{} }

// Append implements BusAppender.
func (b *MemoryBus) Append(ctx context.Context, peer string, log EditLog) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.Preload(peer, log, obs.TraceIDFromContext(ctx))
}

// Preload appends a publication with an explicit trace id — the replay
// path for durable buses reloading persisted publications, where the
// trace id comes from the stored frame rather than a live context.
func (b *MemoryBus) Preload(peer string, log EditLog, traceID string) error {
	if peer == "" {
		return fmt.Errorf("core: publication without peer")
	}
	b.mu.Lock()
	if b.counts == nil {
		b.counts = make(map[string]int)
	}
	pos := b.counts[peer] + 1
	b.order = append(b.order, Delta{Shard: peer, Pos: pos, Pub: Publication{Peer: peer, Log: log, TraceID: traceID}})
	b.counts[peer] = pos
	for _, wake := range b.subs {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
	b.mu.Unlock()
	return nil
}

// snapshotCursor returns the exact horizon; callers hold b.mu.
func (b *MemoryBus) snapshotCursor() Cursor {
	c := Cursor{total: len(b.order)}
	if len(b.counts) > 0 {
		c.shards = make(map[string]int, len(b.counts))
		for peer, n := range b.counts {
			c.shards[peer] = n
		}
	}
	return c
}

// Fetch implements BusReader.
func (b *MemoryBus) Fetch(ctx context.Context, from Cursor) ([]Delta, Cursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, from, err
	}
	if from.Total() < 0 {
		return nil, from, fmt.Errorf("core: negative cursor %d", from.Total())
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	start := min(from.Total(), len(b.order))
	out := make([]Delta, len(b.order)-start)
	copy(out, b.order[start:])
	return out, b.snapshotCursor(), nil
}

// Horizon implements BusReader.
func (b *MemoryBus) Horizon(ctx context.Context) (Cursor, error) {
	if err := ctx.Err(); err != nil {
		return Cursor{}, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.snapshotCursor(), nil
}

// FetchSince implements the legacy scalar fetch.
//
// Deprecated: use Fetch with a typed Cursor.
func (b *MemoryBus) FetchSince(ctx context.Context, cursor int) ([]Publication, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, cursor, err
	}
	if cursor < 0 {
		return nil, cursor, fmt.Errorf("core: negative cursor %d", cursor)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	start := min(cursor, len(b.order))
	out := make([]Publication, len(b.order)-start)
	for i, d := range b.order[start:] {
		out[i] = d.Pub
	}
	return out, len(b.order), nil
}

// Len returns the number of publications on the bus.
func (b *MemoryBus) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.order)
}

// Subscribe implements BusWatcher with the wake-and-pull idiom: the
// bus's append path sends a non-blocking wake, and a per-subscription
// pump pulls bounded batches out of the bus's storage and delivers
// them on a bounded channel. Buffering is therefore bounded regardless
// of consumer speed, and no publication can be lost: the pump's
// position only advances past deltas actually handed to the channel,
// and a wake arriving mid-batch stays latched in the 1-slot wake
// channel until the pump drains back to the horizon.
func (b *MemoryBus) Subscribe(ctx context.Context, from Cursor) (<-chan Delta, CancelFunc, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if from.Total() < 0 {
		return nil, nil, fmt.Errorf("core: negative cursor %d", from.Total())
	}
	wake := make(chan struct{}, 1)
	stop := make(chan struct{})
	out := make(chan Delta, subscribeBuffer)

	b.mu.Lock()
	if b.subs == nil {
		b.subs = make(map[int]chan struct{})
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = wake
	b.mu.Unlock()

	go b.pump(ctx, from.Total(), out, wake, stop, id)

	var once sync.Once
	cancel := func() { once.Do(func() { close(stop) }) }
	return out, cancel, nil
}

// pump is a subscription's delivery goroutine.
func (b *MemoryBus) pump(ctx context.Context, pos int, out chan<- Delta, wake <-chan struct{}, stop <-chan struct{}, id int) {
	defer func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.mu.Unlock()
		close(out)
	}()
	batch := make([]Delta, 0, subscribeBatch)
	for {
		batch = batch[:0]
		b.mu.RLock()
		for i := pos; i < len(b.order) && len(batch) < subscribeBatch; i++ {
			batch = append(batch, b.order[i])
		}
		b.mu.RUnlock()
		if len(batch) == 0 {
			select {
			case <-wake:
				continue
			case <-ctx.Done():
				return
			case <-stop:
				return
			}
		}
		for _, d := range batch {
			select {
			case out <- d:
			case <-ctx.Done():
				return
			case <-stop:
				return
			}
		}
		pos += len(batch)
	}
}

// PublishTo validates a peer's edit log against the spec and appends it
// to a bus — the one publish algorithm shared by CDSS and the public
// facade. A lineage trace id already on ctx (orchestra.NewTraceContext)
// rides along; none is minted here — minting costs two crypto/rand
// reads and a context allocation, which publish-heavy workloads would
// pay on every call, so ids are minted only at explicit opt-in or at
// the HTTP publish boundary (share mints for untraced wire publishes).
func PublishTo(ctx context.Context, bus BusAppender, spec *Spec, peer string, log EditLog) error {
	if err := ValidateLog(spec, peer, log); err != nil {
		return err
	}
	return bus.Append(ctx, peer, log)
}

// ExchangeInto imports every publication on the bus since from into a
// view, one apply pass per publication in global publication order, and
// returns the new cursor. On error (including cancellation) the
// returned cursor is advanced only past fully applied publications, so
// a retry resumes where it stopped. A fully applied run returns the
// bus's horizon, which also upgrades a migrated scalar cursor to an
// exact one.
//
// This is the reference replay: ExchangeCoalesced imports the same run
// as one net apply and must end observationally identical (the exchange
// equivalence property test compares the two).
func ExchangeInto(ctx context.Context, bus PublicationBus, v *View, from Cursor, strategy DeletionStrategy) (Cursor, ApplyStats, error) {
	fetchStart := time.Now()
	deltas, next, err := bus.Fetch(ctx, from)
	fetchNS := time.Since(fetchStart).Nanoseconds()
	if err != nil {
		return from, ApplyStats{FetchNS: fetchNS}, err
	}
	stats := ApplyStats{FetchNS: fetchNS, FetchCalls: 1, FetchPublications: len(deltas)}
	cur := from
	for _, d := range deltas {
		s, err := v.ApplyEdits(ctx, d.Pub.Log, strategy)
		stats.Add(s)
		if err != nil {
			return cur, stats, err
		}
		cur = cur.Advance(d)
		stats.Publications++
		if d.Pub.TraceID != "" {
			stats.TraceIDs = append(stats.TraceIDs, d.Pub.TraceID)
		}
	}
	return next, stats, nil
}

// MergeLogs concatenates a run of deltas' edit logs in global
// publication order. Applying the merged log as one maintenance
// operation is equivalent to applying the logs one publication at a
// time: NetEffect simulates each tuple's membership transitions entry
// by entry, so insert+delete pairs cancel across publication boundaries
// exactly as they would have sequentially, and a completed maintenance
// operation leaves the instance a pure function of the final base
// tables (history-independence — the invariant the evolution and
// exchange equivalence property tests pin down).
func MergeLogs(deltas []Delta) EditLog {
	if len(deltas) == 1 {
		return deltas[0].Pub.Log
	}
	total := 0
	for _, d := range deltas {
		total += len(d.Pub.Log)
	}
	merged := make(EditLog, 0, total)
	for _, d := range deltas {
		merged = append(merged, d.Pub.Log...)
	}
	return merged
}

// ExchangeCoalesced imports the pending run [from, horizon) in one
// coalesced pass: the publications' edit logs are merged (MergeLogs)
// and applied as a single net maintenance operation — one NetEffect
// (which cancels insert+delete pairs before any propagation runs), one
// deletion cascade, one insertion fixpoint — instead of len(run)
// sequential ones.
//
// Unlike ExchangeInto, the pass is all-or-nothing: on error (including
// cancellation) the cursor does not advance at all. Retrying is still
// safe — base changes an interrupted apply already committed make the
// retried NetEffect a no-op for that prefix, and the view's dirty-
// repair machinery restores derived state before the retry propagates.
func ExchangeCoalesced(ctx context.Context, bus PublicationBus, v *View, from Cursor, strategy DeletionStrategy) (Cursor, ApplyStats, error) {
	fetchStart := time.Now()
	deltas, next, err := bus.Fetch(ctx, from)
	fetchNS := time.Since(fetchStart).Nanoseconds()
	if err != nil {
		return from, ApplyStats{FetchNS: fetchNS}, err
	}
	if len(deltas) == 0 {
		return next, ApplyStats{FetchNS: fetchNS, FetchCalls: 1}, nil
	}
	stats, err := v.ApplyEdits(ctx, MergeLogs(deltas), strategy)
	stats.FetchNS += fetchNS
	stats.FetchCalls++
	stats.FetchPublications += len(deltas)
	if err != nil {
		return from, stats, err
	}
	stats.Publications = len(deltas)
	for _, d := range deltas {
		if d.Pub.TraceID != "" {
			stats.TraceIDs = append(stats.TraceIDs, d.Pub.TraceID)
		}
	}
	return next, stats, nil
}

// ExchangeDeltas imports push-delivered deltas into a view as one
// coalesced pass, without touching the bus. It is the subscription-path
// twin of ExchangeCoalesced and the reason a pushed publication needs
// no fetch: the deltas were already transferred by the subscription.
//
// Gap detection makes it safe to apply deltas out of a buffer: a delta
// is included only if its shard position is exactly the next one the
// cursor expects (stale deltas — already consumed via an earlier pull —
// are skipped). If any delta's position is unknown, or a gap appears
// (the buffer overflowed, or the cursor was migrated from a scalar
// position and cannot judge the shard), ExchangeDeltas returns
// handled=false with the cursor unadvanced and the caller falls back
// to a pull. Like ExchangeCoalesced the apply is all-or-nothing: on
// apply error the returned cursor is from.
func ExchangeDeltas(ctx context.Context, v *View, from Cursor, deltas []Delta, strategy DeletionStrategy) (Cursor, ApplyStats, bool, error) {
	cur := from
	run := make([]Delta, 0, len(deltas))
	for _, d := range deltas {
		pos, known := cur.shardKnown(d.Shard)
		if !known || d.Pos <= 0 {
			return from, ApplyStats{}, false, nil
		}
		switch {
		case d.Pos <= pos:
			// Already consumed (a pull raced ahead of the subscription).
		case d.Pos == pos+1:
			run = append(run, d)
			cur = cur.Advance(d)
		default:
			return from, ApplyStats{}, false, nil
		}
	}
	if len(run) == 0 {
		return cur, ApplyStats{}, true, nil
	}
	stats, err := v.ApplyEdits(ctx, MergeLogs(run), strategy)
	if err != nil {
		return from, stats, true, err
	}
	stats.Publications = len(run)
	stats.PushDeltas = len(run)
	for _, d := range run {
		if d.Pub.TraceID != "" {
			stats.TraceIDs = append(stats.TraceIDs, d.Pub.TraceID)
		}
	}
	return cur, stats, true, nil
}

// BusLen returns the current length of a bus's publication sequence
// without transferring publication bodies.
//
// Deprecated: use BusReader.Horizon, whose Cursor carries the
// per-shard breakdown as well.
func BusLen(ctx context.Context, bus PublicationBus) (int, error) {
	c, err := bus.Horizon(ctx)
	return c.Total(), err
}

// ValidateLog checks that an edit log is legal for a peer under a spec:
// the peer exists, every edit touches one of the peer's own relations
// (peers edit only their local instance, §2), and arities match.
func ValidateLog(spec *Spec, peer string, log EditLog) error {
	p := spec.Universe.Peer(peer)
	if p == nil {
		return fmt.Errorf("core: unknown peer %q", peer)
	}
	for _, e := range log {
		rel := spec.Universe.Relation(e.Rel)
		if rel == nil {
			return fmt.Errorf("core: edit %s references unknown relation", e)
		}
		if rel.Peer != peer {
			return fmt.Errorf("core: peer %q cannot edit relation %q of peer %q", peer, e.Rel, rel.Peer)
		}
		if len(e.Tuple) != rel.Arity() {
			return fmt.Errorf("core: edit %s has wrong arity for %s", e, rel.Name)
		}
	}
	return nil
}
