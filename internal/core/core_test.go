package core

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"orchestra/internal/engine"
	"orchestra/internal/schema"
	"orchestra/internal/storage"
	"orchestra/internal/tgd"
	"orchestra/internal/trust"
	"orchestra/internal/value"
)

// paperSpec builds the running example of the paper (Examples 1–7):
// peers PGUS{G}, PBioSQL{B}, PuBio{U} with mappings m1–m4.
func paperSpec(t *testing.T, policies map[string]*trust.Policy) *Spec {
	t.Helper()
	u := schema.NewUniverse()
	gus := schema.NewPeer("PGUS")
	if _, err := gus.AddRelation("G",
		schema.Column{Name: "id", Type: schema.TypeInt},
		schema.Column{Name: "can", Type: schema.TypeInt},
		schema.Column{Name: "nam", Type: schema.TypeInt}); err != nil {
		t.Fatal(err)
	}
	bio := schema.NewPeer("PBioSQL")
	if _, err := bio.AddRelation("B",
		schema.Column{Name: "id", Type: schema.TypeInt},
		schema.Column{Name: "nam", Type: schema.TypeInt}); err != nil {
		t.Fatal(err)
	}
	ubio := schema.NewPeer("PuBio")
	if _, err := ubio.AddRelation("U",
		schema.Column{Name: "nam", Type: schema.TypeInt},
		schema.Column{Name: "can", Type: schema.TypeInt}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*schema.Peer{gus, bio, ubio} {
		if err := u.AddPeer(p); err != nil {
			t.Fatal(err)
		}
	}
	mappings := []*tgd.TGD{
		tgd.MustParse("m1: G(i,c,n) -> B(i,n)"),
		tgd.MustParse("m2: G(i,c,n) -> U(n,c)"),
		tgd.MustParse("m3: B(i,n) -> exists c . U(n,c)"),
		tgd.MustParse("m4: B(i,c), U(n,c) -> B(i,n)"),
	}
	spec, err := NewSpec(u, mappings, policies)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// example3Logs is the base data of Example 3.
func example3Logs() map[string]EditLog {
	return map[string]EditLog{
		"PGUS":    {Ins("G", MakeTuple(1, 2, 3)), Ins("G", MakeTuple(3, 5, 2))},
		"PBioSQL": {Ins("B", MakeTuple(3, 5))},
		"PuBio":   {Ins("U", MakeTuple(2, 5))},
	}
}

// loadExample3 builds a global view and applies Example 3's edit logs.
func loadExample3(t *testing.T, spec *Spec, opts Options) *View {
	t.Helper()
	v, err := NewView(spec, "", opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, peer := range []string{"PGUS", "PBioSQL", "PuBio"} {
		if _, err := v.ApplyEdits(context.Background(), example3Logs()[peer], DeleteProvenance); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

// canonicalRows renders a table's rows with labeled nulls replaced by
// their Skolem-term structure, so instances can be compared across views
// with different interning orders.
func canonicalRows(v *View, tableName string) []string {
	tbl := v.db.Table(tableName)
	if tbl == nil {
		return nil
	}
	var out []string
	tbl.Each(func(row value.Tuple) bool {
		parts := make([]string, len(row))
		for i, val := range row {
			parts[i] = v.sk.Describe(val)
		}
		out = append(out, fmt.Sprintf("(%v)", parts))
		return true
	})
	sort.Strings(out)
	return out
}

// viewsEqual compares every table of two views modulo Skolem renaming.
func viewsEqual(t *testing.T, a, b *View, context string) {
	t.Helper()
	an, bn := a.db.Names(), b.db.Names()
	if len(an) != len(bn) {
		t.Fatalf("%s: table sets differ: %v vs %v", context, an, bn)
	}
	for _, name := range an {
		ra, rb := canonicalRows(a, name), canonicalRows(b, name)
		if len(ra) != len(rb) {
			t.Fatalf("%s: %s: %d vs %d rows\nA: %v\nB: %v", context, name, len(ra), len(rb), ra, rb)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s: %s row %d: %q vs %q", context, name, i, ra[i], rb[i])
			}
		}
	}
}

func hasRow(tbl *storage.Table, t value.Tuple) bool { return tbl != nil && tbl.Contains(t) }

func TestExample3Instances(t *testing.T) {
	for _, be := range []engine.Backend{engine.BackendIndexed, engine.BackendHash} {
		t.Run(be.String(), func(t *testing.T) {
			v := loadExample3(t, paperSpec(t, nil), Options{Backend: be})

			g := v.Instance("G")
			if g.Len() != 2 || !hasRow(g, MakeTuple(1, 2, 3)) || !hasRow(g, MakeTuple(3, 5, 2)) {
				t.Fatalf("G:\n%s", v.db.Dump(OutputRel("G")))
			}
			b := v.Instance("B")
			for _, w := range [][2]int{{3, 5}, {3, 2}, {1, 3}, {3, 3}} {
				if !hasRow(b, MakeTuple(w[0], w[1])) {
					t.Fatalf("B missing (%d,%d):\n%s", w[0], w[1], v.db.Dump(OutputRel("B")))
				}
			}
			if b.Len() != 4 {
				t.Fatalf("B has %d rows, want 4:\n%s", b.Len(), v.db.Dump(OutputRel("B")))
			}
			uTbl := v.Instance("U")
			// U = {(2,5), (3,2)} plus three null-carrying tuples.
			if uTbl.Len() != 5 {
				t.Fatalf("U has %d rows, want 5:\n%s", uTbl.Len(), v.db.Dump(OutputRel("U")))
			}
			if !hasRow(uTbl, MakeTuple(2, 5)) || !hasRow(uTbl, MakeTuple(3, 2)) {
				t.Fatalf("U missing certain rows:\n%s", v.db.Dump(OutputRel("U")))
			}
			nulls := 0
			uTbl.Each(func(row value.Tuple) bool {
				if row.HasNull() {
					nulls++
				}
				return true
			})
			if nulls != 3 {
				t.Fatalf("U has %d null rows, want 3", nulls)
			}
		})
	}
}

func TestExample3CertainAnswers(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})

	// Query 1: ans(x,y) :- U(x,z), U(y,z) → {(2,2),(3,3),(5,5)}.
	got, err := v.Query(context.Background(), "ans(x,y) :- U(x,z), U(y,z)", false)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{2, 2}, {3, 3}, {5, 5}}
	if len(got) != len(want) {
		t.Fatalf("query1 = %v", got)
	}
	for i, w := range want {
		if !got[i].Equal(MakeTuple(w[0], w[1])) {
			t.Fatalf("query1 = %v, want %v", got, want)
		}
	}

	// Query 2: ans(x,y) :- U(x,y) → {(2,5),(3,2)} (nulls dropped).
	got, err = v.Query(context.Background(), "ans(x,y) :- U(x,y)", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(MakeTuple(2, 5)) || !got[1].Equal(MakeTuple(3, 2)) {
		t.Fatalf("query2 = %v", got)
	}

	// Superset option keeps the null tuples.
	got, err = v.Query(context.Background(), "ans(x,y) :- U(x,y)", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("superset query = %v", got)
	}
}

func TestExample3CurationDeletion(t *testing.T) {
	// "if the edit log ∆B would have also contained the curation deletion
	// (− 3 2) then B would not only be missing (3,2), but also (3,3); and
	// U would be missing (2,c2)."
	for _, strategy := range []DeletionStrategy{DeleteProvenance, DeleteDRed, DeleteRecompute} {
		t.Run(strategy.String(), func(t *testing.T) {
			v := loadExample3(t, paperSpec(t, nil), Options{})
			if _, err := v.ApplyEdits(context.Background(), EditLog{Del("B", MakeTuple(3, 2))}, strategy); err != nil {
				t.Fatal(err)
			}
			b := v.Instance("B")
			if hasRow(b, MakeTuple(3, 2)) || hasRow(b, MakeTuple(3, 3)) {
				t.Fatalf("B still has rejected/derived rows:\n%s", v.db.Dump(OutputRel("B")))
			}
			if b.Len() != 2 {
				t.Fatalf("B has %d rows, want 2:\n%s", b.Len(), v.db.Dump(OutputRel("B")))
			}
			u := v.Instance("U")
			// (2,c2) — the m3 image of B(3,2) — must be gone; (3,c3)
			// survives via B(1,3).
			if u.Len() != 4 {
				t.Fatalf("U has %d rows, want 4:\n%s", u.Len(), v.db.Dump(OutputRel("U")))
			}
			// Compare against full recomputation for exactness.
			ref := loadExample3(t, paperSpec(t, nil), Options{})
			if _, err := ref.ApplyEdits(context.Background(), EditLog{Del("B", MakeTuple(3, 2))}, DeleteRecompute); err != nil {
				t.Fatal(err)
			}
			viewsEqual(t, v, ref, strategy.String())
		})
	}
}

func TestRejectionThenUnrejection(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	// Reject imported B(3,2).
	if _, err := v.ApplyEdits(context.Background(), EditLog{Del("B", MakeTuple(3, 2))}, DeleteProvenance); err != nil {
		t.Fatal(err)
	}
	if hasRow(v.Instance("B"), MakeTuple(3, 2)) {
		t.Fatal("rejected tuple still present")
	}
	if !hasRow(v.RejectTable("B"), MakeTuple(3, 2)) {
		t.Fatal("rejection not recorded")
	}
	// Re-inserting it locally withdraws the rejection (+t un-rejects).
	if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("B", MakeTuple(3, 2))}, DeleteProvenance); err != nil {
		t.Fatal(err)
	}
	if !hasRow(v.Instance("B"), MakeTuple(3, 2)) {
		t.Fatal("un-rejected tuple absent")
	}
	if hasRow(v.RejectTable("B"), MakeTuple(3, 2)) {
		t.Fatal("rejection not withdrawn")
	}
	// Downstream effects are restored too (B(3,3) via m4).
	if !hasRow(v.Instance("B"), MakeTuple(3, 3)) {
		t.Fatalf("downstream tuple not restored:\n%s", v.db.Dump(OutputRel("B")))
	}
	ref := loadExample3(t, paperSpec(t, nil), Options{})
	if _, err := ref.ApplyEdits(context.Background(), EditLog{Del("B", MakeTuple(3, 2)), Ins("B", MakeTuple(3, 2))}, DeleteRecompute); err != nil {
		t.Fatal(err)
	}
	// Note: the single-log (+ after −) net effect differs from the
	// two-log sequence: in one log, − then + cancels into a plain local
	// insert. Both must leave B(3,2) present; compare instance contents.
	if !hasRow(ref.Instance("B"), MakeTuple(3, 2)) {
		t.Fatal("reference missing B(3,2)")
	}
}

func TestExample4TrustConditions(t *testing.T) {
	// PBioSQL distrusts B-tuples from m1 with n ≥ 3 and from m4 with
	// n ≠ 2. Consequently B(1,3) and B(3,3) are rejected, and U(3,c3)
	// never appears in PBioSQL's view.
	pol := trust.NewPolicy("PBioSQL")
	pol.DistrustMapping("m1", trust.MustParsePred("n >= 3"))
	pol.DistrustMapping("m4", trust.MustParsePred("n != 2"))
	spec := paperSpec(t, map[string]*trust.Policy{"PBioSQL": pol})

	v, err := NewView(spec, "PBioSQL", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, peer := range []string{"PGUS", "PBioSQL", "PuBio"} {
		if _, err := v.ApplyEdits(context.Background(), example3Logs()[peer], DeleteProvenance); err != nil {
			t.Fatal(err)
		}
	}
	b := v.Instance("B")
	if hasRow(b, MakeTuple(1, 3)) {
		t.Fatal("B(1,3) accepted despite m1 distrust")
	}
	if hasRow(b, MakeTuple(3, 3)) {
		t.Fatal("B(3,3) accepted despite m4 distrust")
	}
	if !hasRow(b, MakeTuple(3, 2)) || !hasRow(b, MakeTuple(3, 5)) {
		t.Fatalf("trusted rows missing:\n%s", v.db.Dump(OutputRel("B")))
	}
	// U(3,·) can only come from m2's image of G(1,2,3) now — the m3 image
	// of B(1,3) is gone.
	u := v.Instance("U")
	nullsWith3 := 0
	u.Each(func(row value.Tuple) bool {
		if row[0] == value.Int(3) && row[1].IsNull() {
			nullsWith3++
		}
		return true
	})
	if nullsWith3 != 0 {
		t.Fatalf("U(3,c3) present despite trust conditions:\n%s", v.db.Dump(OutputRel("U")))
	}
}

func TestTokenLevelTrust(t *testing.T) {
	// Example 7's flavor at token level: PBioSQL distrusts PuBio's base
	// data entirely; U(2,5) is not imported, so B(3,2) loses its m4
	// derivation but keeps the m1 one.
	pol := trust.NewPolicy("PBioSQL")
	pol.DistrustPeer("PuBio")
	spec := paperSpec(t, map[string]*trust.Policy{"PBioSQL": pol})
	v, err := NewView(spec, "PBioSQL", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, peer := range []string{"PGUS", "PBioSQL", "PuBio"} {
		if _, err := v.ApplyEdits(context.Background(), example3Logs()[peer], DeleteProvenance); err != nil {
			t.Fatal(err)
		}
	}
	if v.LocalTable("U").Len() != 0 {
		t.Fatal("distrusted base data imported")
	}
	if !hasRow(v.Instance("B"), MakeTuple(3, 2)) {
		t.Fatal("B(3,2) lost despite m1 derivation")
	}
}

func TestExample6ProvenanceThroughView(t *testing.T) {
	// End-to-end check that view-level provenance matches Example 6 after
	// internal bookkeeping mappings are spliced out. Uses only mappings
	// m1, m3, m4 (as Example 6 does) to keep expressions minimal.
	u := schema.NewUniverse()
	gus := schema.NewPeer("PGUS")
	gus.AddRelation("G", schema.Column{Name: "id"}, schema.Column{Name: "can"}, schema.Column{Name: "nam"})
	bio := schema.NewPeer("PBioSQL")
	bio.AddRelation("B", schema.Column{Name: "id"}, schema.Column{Name: "nam"})
	ubio := schema.NewPeer("PuBio")
	ubio.AddRelation("U", schema.Column{Name: "nam"}, schema.Column{Name: "can"})
	for _, p := range []*schema.Peer{gus, bio, ubio} {
		if err := u.AddPeer(p); err != nil {
			t.Fatal(err)
		}
	}
	spec, err := NewSpec(u, []*tgd.TGD{
		tgd.MustParse("m1: G(i,c,n) -> B(i,n)"),
		tgd.MustParse("m3: B(i,n) -> exists c . U(n,c)"),
		tgd.MustParse("m4: B(i,c), U(n,c) -> B(i,n)"),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(spec, "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("B", MakeTuple(3, 5))}, DeleteProvenance); err != nil { // p1
		t.Fatal(err)
	}
	if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("U", MakeTuple(2, 5))}, DeleteProvenance); err != nil { // p2
		t.Fatal(err)
	}
	if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("G", MakeTuple(3, 5, 2))}, DeleteProvenance); err != nil { // p3
		t.Fatal(err)
	}
	expr := v.ProvOf("B", MakeTuple(3, 2))
	if got := expr.String(); got != "m1(G(3, 5, 2)) + m4(B(3, 5)·U(2, 5))" {
		t.Fatalf("Pv(B(3,2)) = %q", got)
	}
}

func TestIncrementalInsertionMatchesRecompute(t *testing.T) {
	// Apply Example 3 incrementally in three exchanges, then compare with
	// a reference view that loads everything and recomputes once.
	for _, be := range []engine.Backend{engine.BackendIndexed, engine.BackendHash} {
		t.Run(be.String(), func(t *testing.T) {
			inc := loadExample3(t, paperSpec(t, nil), Options{Backend: be})

			ref, err := NewView(paperSpec(t, nil), "", Options{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			dl := storage.DeltaSet{}
			dl.Insert("G", MakeTuple(1, 2, 3))
			dl.Insert("G", MakeTuple(3, 5, 2))
			dl.Insert("B", MakeTuple(3, 5))
			dl.Insert("U", MakeTuple(2, 5))
			if _, err := ref.ApplyBase(context.Background(), dl, storage.DeltaSet{}, DeleteRecompute); err != nil {
				t.Fatal(err)
			}
			viewsEqual(t, inc, ref, be.String())
		})
	}
}

func TestDeletionStrategiesAgreeRandomized(t *testing.T) {
	// Property test (DESIGN.md §6): random edit sequences applied with
	// DeleteProvenance, DeleteDRed and DeleteRecompute all converge to
	// the same consistent state (Def. 3.1).
	type op struct {
		peer string
		log  EditLog
	}
	rnd := newRand(99)
	tupleG := func() value.Tuple {
		return MakeTuple(rnd.Intn(4), rnd.Intn(4), rnd.Intn(4))
	}
	tupleB := func() value.Tuple { return MakeTuple(rnd.Intn(4), rnd.Intn(4)) }
	tupleU := func() value.Tuple { return MakeTuple(rnd.Intn(4), rnd.Intn(4)) }

	for trial := 0; trial < 12; trial++ {
		var ops []op
		nOps := 3 + rnd.Intn(5)
		for i := 0; i < nOps; i++ {
			var log EditLog
			peer, rel := "PGUS", "G"
			switch rnd.Intn(3) {
			case 1:
				peer, rel = "PBioSQL", "B"
			case 2:
				peer, rel = "PuBio", "U"
			}
			mk := map[string]func() value.Tuple{"G": tupleG, "B": tupleB, "U": tupleU}[rel]
			for j := 0; j < 1+rnd.Intn(4); j++ {
				if rnd.Intn(3) == 0 {
					log = append(log, Del(rel, mk()))
				} else {
					log = append(log, Ins(rel, mk()))
				}
			}
			ops = append(ops, op{peer, log})
		}

		run := func(strategy DeletionStrategy) *View {
			v, err := NewView(paperSpec(t, nil), "", Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range ops {
				if _, err := v.ApplyEdits(context.Background(), o.log, strategy); err != nil {
					t.Fatalf("trial %d (%s): %v", trial, strategy, err)
				}
			}
			return v
		}
		prov := run(DeleteProvenance)
		dred := run(DeleteDRed)
		reco := run(DeleteRecompute)
		viewsEqual(t, prov, reco, fmt.Sprintf("trial %d provenance-vs-recompute", trial))
		viewsEqual(t, dred, reco, fmt.Sprintf("trial %d dred-vs-recompute", trial))
	}
}

func TestCDSSOrchestration(t *testing.T) {
	c := NewCDSS(paperSpec(t, nil), Options{}, DeleteProvenance)
	if err := c.Publish(context.Background(), "PGUS", example3Logs()["PGUS"]); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(context.Background(), "PBioSQL", example3Logs()["PBioSQL"]); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(context.Background(), "PuBio", example3Logs()["PuBio"]); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Pending(context.Background(), "PBioSQL"); err != nil || got != 3 {
		t.Fatalf("Pending = %d, %v", got, err)
	}
	stats, err := c.Exchange(context.Background(), "PBioSQL")
	if err != nil {
		t.Fatal(err)
	}
	if stats.InsL != 4 {
		t.Fatalf("InsL = %d, want 4", stats.InsL)
	}
	if got, err := c.Pending(context.Background(), "PBioSQL"); err != nil || got != 0 {
		t.Fatalf("pending after exchange: %d, %v", got, err)
	}
	v, _ := c.View("PBioSQL")
	if v.Instance("B").Len() != 4 {
		t.Fatalf("B after exchange:\n%s", v.DB().Dump(OutputRel("B")))
	}
	// A second peer exchanges later and sees the same world.
	if _, err := c.Exchange(context.Background(), "PuBio"); err != nil {
		t.Fatal(err)
	}
	v2, _ := c.View("PuBio")
	if v2.Instance("U").Len() != v.Instance("U").Len() {
		t.Fatal("views diverge under identical trust")
	}
	// Publishing edits to another peer's relation is rejected.
	if err := c.Publish(context.Background(), "PGUS", EditLog{Ins("B", MakeTuple(9, 9))}); err == nil {
		t.Fatal("cross-peer edit accepted")
	}
	if err := c.Publish(context.Background(), "nope", EditLog{}); err == nil {
		t.Fatal("unknown peer accepted")
	}
	// ExchangeAll drains everyone.
	if _, err := c.ExchangeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"PGUS", "PBioSQL", "PuBio"} {
		if got, err := c.Pending(context.Background(), p); err != nil || got != 0 {
			t.Fatalf("peer %s still pending: %d, %v", p, got, err)
		}
	}
}

func TestNetEffect(t *testing.T) {
	v, err := NewView(paperSpec(t, nil), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-state: B(1,1) is a local contribution; B(2,2) is rejected.
	v.LocalTable("B").Insert(MakeTuple(1, 1))
	v.RejectTable("B").Insert(MakeTuple(2, 2))

	log := EditLog{
		Ins("B", MakeTuple(3, 3)), // plain insert
		Del("B", MakeTuple(3, 3)), // …cancelled
		Del("B", MakeTuple(1, 1)), // deletes own contribution
		Del("B", MakeTuple(4, 4)), // rejection of imported data
		Ins("B", MakeTuple(2, 2)), // un-rejects and contributes
		Ins("B", MakeTuple(5, 5)), // plain insert
	}
	dl, dr, err := NetEffect(log, v.db, nil)
	if err != nil {
		t.Fatal(err)
	}
	insL, delL := dl.At("B").Ins(), dl.At("B").Del()
	insR, delR := dr.At("B").Ins(), dr.At("B").Del()
	if len(insL) != 2 || !insL[0].Equal(MakeTuple(2, 2)) || !insL[1].Equal(MakeTuple(5, 5)) {
		t.Fatalf("insL = %v", insL)
	}
	if len(delL) != 1 || !delL[0].Equal(MakeTuple(1, 1)) {
		t.Fatalf("delL = %v", delL)
	}
	if len(insR) != 1 || !insR[0].Equal(MakeTuple(4, 4)) {
		t.Fatalf("insR = %v", insR)
	}
	if len(delR) != 1 || !delR[0].Equal(MakeTuple(2, 2)) {
		t.Fatalf("delR = %v", delR)
	}
}

func TestNetEffectErrors(t *testing.T) {
	v, err := NewView(paperSpec(t, nil), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NetEffect(EditLog{Ins("Zed", MakeTuple(1))}, v.db, nil); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, _, err := NetEffect(EditLog{Ins("B", MakeTuple(1))}, v.db, nil); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	u := schema.NewUniverse()
	p := schema.NewPeer("P")
	p.AddRelation("R", schema.Column{Name: "x"}, schema.Column{Name: "y"})
	u.AddPeer(p)
	if _, err := NewSpec(nil, nil, nil); err == nil {
		t.Fatal("nil universe accepted")
	}
	if _, err := NewSpec(u, []*tgd.TGD{tgd.MustParse("R(x,y) -> R(y,x)")}, nil); err == nil {
		t.Fatal("mapping without id accepted")
	}
	dup := []*tgd.TGD{tgd.MustParse("m: R(x,y) -> R(y,x)"), tgd.MustParse("m: R(x,y) -> R(x,x)")}
	if _, err := NewSpec(u, dup, nil); err == nil {
		t.Fatal("duplicate id accepted")
	}
	// Weak-acyclicity violation: R(x,y) -> ∃z R(y,z).
	if _, err := NewSpec(u, []*tgd.TGD{tgd.MustParse("m: R(x,y) -> R(y,z)")}, nil); err == nil {
		t.Fatal("non-weakly-acyclic set accepted")
	}
	if _, err := NewSpec(u, nil, map[string]*trust.Policy{"ghost": trust.NewPolicy("ghost")}); err == nil {
		t.Fatal("policy for unknown peer accepted")
	}
	if _, err := NewView(&Spec{Universe: u}, "ghost", Options{}); err == nil {
		t.Fatal("unknown view owner accepted")
	}
}

func TestQueryErrors(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	for _, q := range []string{
		"ans(x)",                 // no :-
		"ans(x), b(x) :- U(x,y)", // two heads
		"ans(x) :- Zed(x)",       // unknown relation
		"ans(z) :- U(x,y)",       // unsafe head
	} {
		if _, err := v.Query(context.Background(), q, false); err == nil {
			t.Errorf("query %q accepted", q)
		}
	}
}

func TestMakeTuple(t *testing.T) {
	tup := MakeTuple(1, int64(2), "x", value.Null(3))
	if tup[0] != value.Int(1) || tup[1] != value.Int(2) || tup[2] != value.String("x") || tup[3] != value.Null(3) {
		t.Fatalf("MakeTuple = %v", tup)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unsupported type accepted")
		}
	}()
	MakeTuple(3.14)
}
