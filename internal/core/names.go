// Package core implements the paper's primary contribution: CDSS update
// exchange (§3–§4). It expands user schemas into the internal four-table
// form (Rℓ, Rr, Rⁱ, Rᵒ; Fig. 2), compiles the mapping network plus trust
// conditions into a provenance-encoded datalog program, and maintains all
// peer instances and their provenance under edit logs — by full
// recomputation, by semi-naive incremental insertion, by the paper's
// provenance-driven incremental deletion algorithm (Fig. 3), or by the
// DRed baseline it is evaluated against (§6.3).
package core

// Internal relation naming (Fig. 2). The "$" infix keeps internal names
// out of the user namespace (user relation names cannot contain '$').
const (
	localSuffix  = "$l" // Rℓ: local contributions
	rejectSuffix = "$r" // Rr: local rejections
	inputSuffix  = "$i" // Rⁱ: tuples mapped in from other peers
	outputSuffix = "$o" // Rᵒ: curated output = (trusted Rⁱ − Rr) ∪ Rℓ
)

// LocalRel names the local-contributions table of a user relation.
func LocalRel(rel string) string { return rel + localSuffix }

// RejectRel names the rejections table of a user relation.
func RejectRel(rel string) string { return rel + rejectSuffix }

// InputRel names the input table of a user relation.
func InputRel(rel string) string { return rel + inputSuffix }

// OutputRel names the curated output table of a user relation — the
// peer's queryable local instance.
func OutputRel(rel string) string { return rel + outputSuffix }

// insMapID names the internal bookkeeping mapping (tR): Rⁱ ∧ ¬Rr → Rᵒ.
func insMapID(rel string) string { return "in$" + rel }

// locMapID names the internal bookkeeping mapping (ℓR): Rℓ → Rᵒ.
func locMapID(rel string) string { return "lc$" + rel }

// provRel names the provenance table of an internal mapping id.
func provRelOf(mapID string) string { return "p$" + mapID }
