package core

import (
	"container/list"
	"fmt"
	"strings"

	"orchestra/internal/datalog"
	"orchestra/internal/obs"
	"orchestra/internal/storage"
	"orchestra/internal/value"
)

// The hot-query cache (ISSUE 8): an LRU over query results keyed by the
// α-renamed rule plus the includeNulls flag, validated against the
// per-table generation counters of the relations the query body read.
// Invalidation is therefore exactly as precise as the edit log's effect:
// a maintenance pass that touches relation R advances only R's output
// table generation, so only cached queries whose body mentions R go
// stale — queries over untouched relations keep serving from cache. The
// generation counters sit underneath every mutating entry point
// (including deletion cascades that reach relations the edit log never
// names), so a stale result can never be served.

// defaultQueryCacheSize is the per-view entry cap when Options leaves
// QueryCacheSize zero.
const defaultQueryCacheSize = 256

// QueryCacheMetrics carries the facade's cache counters. All fields are
// nil-safe; the zero value disables emission.
type QueryCacheMetrics struct {
	Hits, Misses, Evictions *obs.Counter
}

// cacheDep pins one body relation's exact state: the table object the
// query read and its generation at evaluation time. A dropped/recreated
// table fails the pointer compare; any mutation fails the generation
// compare.
type cacheDep struct {
	name string
	tbl  *storage.Table
	gen  uint64
}

type cacheEntry struct {
	key  string
	rows []value.Tuple
	deps []cacheDep
}

// queryCache is the per-view LRU. It shares the view's synchronization
// (the facade serializes all view operations), so it takes no locks. A
// nil *queryCache is a disabled cache: every method is a no-op.
type queryCache struct {
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	metrics QueryCacheMetrics

	hits, misses, evictions uint64
}

func newQueryCache(size int) *queryCache {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = defaultQueryCacheSize
	}
	return &queryCache{
		cap:     size,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// lookup returns the cached result for key when every dependency is still
// at its recorded generation; a stale entry is evicted and counts as a
// miss. The returned slice is a fresh header (callers may append/reorder)
// over shared immutable tuples.
func (c *queryCache) lookup(db *storage.Database, key string) ([]value.Tuple, bool) {
	if c == nil {
		return nil, false
	}
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		c.metrics.Misses.Inc()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	for _, d := range e.deps {
		if db.Table(d.name) != d.tbl || d.tbl.Generation() != d.gen {
			c.remove(el, e)
			c.misses++
			c.metrics.Misses.Inc()
			return nil, false
		}
	}
	c.lru.MoveToFront(el)
	c.hits++
	c.metrics.Hits.Inc()
	out := make([]value.Tuple, len(e.rows))
	copy(out, e.rows)
	return out, true
}

// store records a result. deps must pin every relation the body read;
// callers pass nil to skip caching.
func (c *queryCache) store(key string, rows []value.Tuple, deps []cacheDep) {
	if c == nil || deps == nil {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value = &cacheEntry{key: key, rows: rows, deps: deps}
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, rows: rows, deps: deps})
	for c.lru.Len() > c.cap {
		el := c.lru.Back()
		c.remove(el, el.Value.(*cacheEntry))
	}
}

func (c *queryCache) remove(el *list.Element, e *cacheEntry) {
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.evictions++
	c.metrics.Evictions.Inc()
}

// stats returns the cache's lifetime counters (hits, misses, evictions).
func (c *queryCache) stats() (hits, misses, evictions uint64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits, c.misses, c.evictions
}

// SetQueryCacheMetrics attaches the facade's cache counters to the view's
// query cache. A no-op when the cache is disabled.
func (v *View) SetQueryCacheMetrics(m QueryCacheMetrics) {
	if v.qcache != nil {
		v.qcache.metrics = m
	}
}

// QueryCacheStats reports the view's cache counters: results served from
// cache, cache misses, and entries evicted (capacity plus staleness).
func (v *View) QueryCacheStats() (hits, misses, evictions uint64) {
	return v.qcache.stats()
}

// canonicalQueryKey renders a query rule with variables α-renamed in
// first-occurrence order, so syntactically different spellings of the
// same query share a cache entry. Filter descriptions are appended
// verbatim (they reference original variable names — filtered queries
// only unify when spelled identically, which is still sound).
func canonicalQueryKey(r *datalog.Rule, includeNulls bool) string {
	var b strings.Builder
	names := make(map[string]string)
	canon := func(v string) string {
		if n, ok := names[v]; ok {
			return n
		}
		n := fmt.Sprintf("v%d", len(names))
		names[v] = n
		return n
	}
	writeAtom := func(a datalog.Atom) {
		b.WriteString(a.Pred)
		b.WriteByte('(')
		for i, t := range a.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			switch t.Kind {
			case datalog.TermVar:
				b.WriteString(canon(t.Var))
			case datalog.TermConst:
				fmt.Fprintf(&b, "c:%s", t.Const)
			case datalog.TermSkolem:
				b.WriteString("s:")
				b.WriteString(t.Fn)
				b.WriteByte('(')
				for j, v := range t.FnArgs {
					if j > 0 {
						b.WriteByte(',')
					}
					b.WriteString(canon(v))
				}
				b.WriteByte(')')
			}
		}
		b.WriteByte(')')
	}
	writeAtom(r.Head)
	b.WriteString(":-")
	for i, l := range r.Body {
		if i > 0 {
			b.WriteByte(',')
		}
		if l.Neg {
			b.WriteByte('!')
		}
		writeAtom(l.Atom)
	}
	for _, d := range r.FilterDescs {
		b.WriteByte('\x1f')
		b.WriteString(d)
	}
	if includeNulls {
		b.WriteString("\x1f+nulls")
	}
	return b.String()
}
