package core

import (
	"context"
	"testing"

	"orchestra/internal/engine"
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
	"orchestra/internal/tgd"
)

// cycleSpec builds the minimal mutually-recursive CDSS: peers P{A(x)}
// and Q{B(x)} with full-tgd mappings A→B and B→A. Full tgds keep the set
// weakly acyclic while the provenance graph contains genuine loops —
// exactly the "several tuples mutually derivable from one another, yet
// none derivable from edbs" situation §4.2 says deletion must garbage
// collect.
func cycleSpec(t *testing.T) *Spec {
	t.Helper()
	u := schema.NewUniverse()
	p := schema.NewPeer("P")
	if _, err := p.AddRelation("A", schema.Column{Name: "x", Type: schema.TypeInt}); err != nil {
		t.Fatal(err)
	}
	q := schema.NewPeer("Q")
	if _, err := q.AddRelation("B", schema.Column{Name: "x", Type: schema.TypeInt}); err != nil {
		t.Fatal(err)
	}
	for _, peer := range []*schema.Peer{p, q} {
		if err := u.AddPeer(peer); err != nil {
			t.Fatal(err)
		}
	}
	spec, err := NewSpec(u, []*tgd.TGD{
		tgd.MustParse("ma: A(x) -> B(x)"),
		tgd.MustParse("mb: B(x) -> A(x)"),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestCyclicGarbageCollection is the Fig. 3 / Example 10 scenario: after
// deleting the only base support, the A(1) ↔ B(1) derivation loop must
// be garbage collected even though each tuple still "supports" the
// other.
func TestCyclicGarbageCollection(t *testing.T) {
	for _, strategy := range []DeletionStrategy{DeleteProvenance, DeleteDRed, DeleteRecompute} {
		for _, be := range []engine.Backend{engine.BackendIndexed, engine.BackendHash} {
			t.Run(strategy.String()+"/"+be.String(), func(t *testing.T) {
				v, err := NewView(cycleSpec(t), "", Options{Backend: be})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("A", MakeTuple(1))}, strategy); err != nil {
					t.Fatal(err)
				}
				// The loop materialized: A and B both hold (1).
				if !v.Instance("A").Contains(MakeTuple(1)) || !v.Instance("B").Contains(MakeTuple(1)) {
					t.Fatalf("loop not established:\n%s", v.db.Dump())
				}
				// Input tables mutually support the pair.
				if !v.InputTable("A").Contains(MakeTuple(1)) {
					t.Fatal("A input missing (mb should derive it)")
				}

				stats, err := v.ApplyEdits(context.Background(), EditLog{Del("A", MakeTuple(1))}, strategy)
				if err != nil {
					t.Fatal(err)
				}
				// Everything must be gone — instances, inputs, provenance.
				if v.db.TotalRows() != 0 {
					t.Fatalf("garbage left after deleting the only edb support (%s):\n%s",
						strategy, v.db.Dump())
				}
				if strategy == DeleteProvenance && stats.Checked == 0 {
					t.Fatal("provenance deletion should have exercised the derivability test")
				}
			})
		}
	}
}

// TestCyclicPartialSupport deletes one of two supports: the loop must
// survive on the remaining one.
func TestCyclicPartialSupport(t *testing.T) {
	for _, strategy := range []DeletionStrategy{DeleteProvenance, DeleteDRed, DeleteRecompute} {
		t.Run(strategy.String(), func(t *testing.T) {
			v, err := NewView(cycleSpec(t), "", Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("A", MakeTuple(1))}, strategy); err != nil {
				t.Fatal(err)
			}
			// Q also inserts B(1) locally: a second, independent anchor.
			if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("B", MakeTuple(1))}, strategy); err != nil {
				t.Fatal(err)
			}
			if _, err := v.ApplyEdits(context.Background(), EditLog{Del("A", MakeTuple(1))}, strategy); err != nil {
				t.Fatal(err)
			}
			// B(1) is still locally contributed, so both instances keep (1).
			if !v.Instance("B").Contains(MakeTuple(1)) {
				t.Fatalf("B lost its own local contribution:\n%s", v.db.Dump())
			}
			if !v.Instance("A").Contains(MakeTuple(1)) {
				t.Fatalf("A lost the tuple still derivable via mb:\n%s", v.db.Dump())
			}
		})
	}
}

// TestCyclicSemiringEvaluations checks the semiring wrappers on the
// cyclic view: trust needs the edb anchor; counts saturate; ranked trust
// discounts by mapping confidence along the best path.
func TestCyclicSemiringEvaluations(t *testing.T) {
	v, err := NewView(cycleSpec(t), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("A", MakeTuple(1))}, DeleteProvenance); err != nil {
		t.Fatal(err)
	}
	aOut := OutRef("A", MakeTuple(1))
	bOut := OutRef("B", MakeTuple(1))
	token := BaseRef("A", MakeTuple(1))

	trusted, err := TrustEval(context.Background(), v, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !trusted[aOut] || !trusted[bOut] {
		t.Fatal("fully trusted loop rejected")
	}
	distrusted, err := TrustEval(context.Background(), v, map[provenance.Ref]bool{token: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if distrusted[aOut] || distrusted[bOut] {
		t.Fatal("loop sustained trust without trusted edb (least fixpoint violated)")
	}

	counts, err := DerivationCounts(context.Background(), v, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Infinitely many derivations around the loop: the count saturates.
	if counts[bOut] != 100 {
		t.Fatalf("count(B(1)) = %d, want saturation at 100", counts[bOut])
	}

	ranks, err := RankTrust(context.Background(), v, nil, map[string]float64{"ma": 0.5, "mb": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Best derivation of B(1): token(1.0) via ma(0.5) = 0.5; of A(1): the
	// direct local contribution = 1.0.
	if ranks[bOut] != 0.5 {
		t.Fatalf("rank(B(1)) = %v, want 0.5", ranks[bOut])
	}
	if ranks[aOut] != 1.0 {
		t.Fatalf("rank(A(1)) = %v, want 1.0", ranks[aOut])
	}

	lin, err := Lineage(context.Background(), v)
	if err != nil {
		t.Fatal(err)
	}
	if lin[bOut].Bottom || len(lin[bOut].Set) != 1 {
		t.Fatalf("lineage(B(1)) = %v", lin[bOut])
	}
}
