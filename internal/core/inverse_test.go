package core

import (
	"context"
	"strings"
	"testing"

	"orchestra/internal/provenance"
)

// The declarative inverse-rule program (§4.1.3) must compute exactly the
// same support sets as the optimized procedural backward pass.
func TestSupportDeclarativeMatchesProcedural(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	targets := [][]provenance.Ref{
		{OutRef("B", MakeTuple(3, 2))},
		{OutRef("B", MakeTuple(3, 3))},
		{OutRef("U", MakeTuple(3, 2))},
		{OutRef("B", MakeTuple(3, 2)), OutRef("B", MakeTuple(1, 3))},
		{OutRef("G", MakeTuple(1, 2, 3))},
	}
	for _, ts := range targets {
		declarative, err := v.SupportDeclarative(context.Background(), ts)
		if err != nil {
			t.Fatal(err)
		}
		procedural := v.supportOf(ts)
		if len(declarative) != len(procedural) {
			t.Fatalf("targets %v: declarative %v vs procedural %v", ts, declarative, procedural)
		}
		for ref := range procedural {
			if !declarative[ref] {
				t.Fatalf("targets %v: declarative missing %v", ts, ref)
			}
		}
	}
}

func TestSupportDeclarativeOnCycle(t *testing.T) {
	v, err := NewView(cycleSpec(t), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("A", MakeTuple(1))}, DeleteProvenance); err != nil {
		t.Fatal(err)
	}
	sup, err := v.SupportDeclarative(context.Background(), []provenance.Ref{OutRef("B", MakeTuple(1))})
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 1 || !sup[BaseRef("A", MakeTuple(1))] {
		t.Fatalf("cycle support = %v", sup)
	}
	// After removing the base tuple directly, the declarative program
	// reports no support (the chk trace survives, the intersection with
	// Rℓ is empty).
	v.LocalTable("A").Delete(MakeTuple(1))
	sup, err = v.SupportDeclarative(context.Background(), []provenance.Ref{OutRef("B", MakeTuple(1))})
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 0 {
		t.Fatalf("support after base deletion = %v", sup)
	}
}

func TestInverseProgramShape(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	prog, err := v.InverseProgram()
	if err != nil {
		t.Fatal(err)
	}
	text := prog.String()
	// One P′ rule per target atom and one chk rule per source atom of
	// every mapping (user + internal bookkeeping).
	for _, frag := range []string{"pi$m1(", "pi$m4(", "c$G$o(", "c$B$l(", "pi$in$B(", "pi$lc$U("} {
		if !strings.Contains(text, frag) {
			t.Fatalf("inverse program missing %q:\n%s", frag, text)
		}
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	// The workspace is cleared between calls: repeated use is stable.
	sup1, err := v.SupportDeclarative(context.Background(), []provenance.Ref{OutRef("B", MakeTuple(3, 2))})
	if err != nil {
		t.Fatal(err)
	}
	sup2, err := v.SupportDeclarative(context.Background(), []provenance.Ref{OutRef("B", MakeTuple(3, 2))})
	if err != nil {
		t.Fatal(err)
	}
	if len(sup1) != len(sup2) {
		t.Fatalf("repeated runs differ: %v vs %v", sup1, sup2)
	}
}

func TestSnapshotExcludesInverseWorkspace(t *testing.T) {
	v := loadExample3(t, paperSpec(t, nil), Options{})
	// Build the inverse tables, then snapshot: restore must succeed into
	// a fresh view (workspaces are excluded).
	if _, err := v.SupportDeclarative(context.Background(), []provenance.Ref{OutRef("B", MakeTuple(3, 2))}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := v.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreView(paperSpec(t, nil), "", Options{}, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Instance("B").Len() != v.Instance("B").Len() {
		t.Fatal("restored instance differs")
	}
}
