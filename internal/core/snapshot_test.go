package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestViewSnapshotRoundTrip(t *testing.T) {
	// Load Example 3, snapshot, restore, and verify both the state and
	// that incremental operation continues correctly after restore.
	v := loadExample3(t, paperSpec(t, nil), Options{})
	var buf bytes.Buffer
	if err := v.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := RestoreView(paperSpec(t, nil), "", Options{}, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	viewsEqual(t, v, restored, "after restore")

	// Labeled nulls must resolve to the same Skolem terms.
	for _, row := range restored.Instance("U").Rows() {
		for _, val := range row {
			if val.IsNull() {
				if desc := restored.Skolems().Describe(val); !strings.Contains(desc, "sk_m3_c") {
					t.Fatalf("null lost its Skolem identity: %q", desc)
				}
			}
		}
	}

	// Continue incrementally on BOTH views: results must stay equal.
	log := EditLog{Del("B", MakeTuple(3, 2)), Ins("G", MakeTuple(7, 8, 9))}
	if _, err := v.ApplyEdits(context.Background(), log, DeleteProvenance); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.ApplyEdits(context.Background(), log, DeleteProvenance); err != nil {
		t.Fatal(err)
	}
	viewsEqual(t, v, restored, "after post-restore edits")
}

func TestViewSnapshotSkolemContinuity(t *testing.T) {
	// New Skolem terms minted after restore must not collide with
	// persisted null ids.
	v := loadExample3(t, paperSpec(t, nil), Options{})
	before := v.Skolems().Len()
	var buf bytes.Buffer
	if err := v.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreView(paperSpec(t, nil), "", Options{}, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Skolems().Len() != before {
		t.Fatalf("interner size %d, want %d", restored.Skolems().Len(), before)
	}
	// Insert data that mints a fresh null (new B name 77 → new m3 image).
	if _, err := restored.ApplyEdits(context.Background(), EditLog{Ins("B", MakeTuple(77, 77))}, DeleteProvenance); err != nil {
		t.Fatal(err)
	}
	if restored.Skolems().Len() != before+1 {
		t.Fatalf("interner size %d after new null, want %d", restored.Skolems().Len(), before+1)
	}
}

func TestViewSnapshotErrors(t *testing.T) {
	spec := paperSpec(t, nil)
	if _, err := RestoreView(spec, "", Options{}, strings.NewReader("BOGUS...")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Snapshot from a different spec (different internal tables) fails.
	v, err := NewView(cycleSpec(t), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ApplyEdits(context.Background(), EditLog{Ins("A", MakeTuple(1))}, DeleteProvenance); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreView(spec, "", Options{}, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("cross-spec snapshot accepted")
	}
}
