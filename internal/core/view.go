package core

import (
	"fmt"
	"strings"

	"orchestra/internal/datalog"
	"orchestra/internal/engine"
	"orchestra/internal/obs"
	"orchestra/internal/provenance"
	"orchestra/internal/storage"
	"orchestra/internal/tgd"
	"orchestra/internal/trust"
	"orchestra/internal/value"
)

// Options configures a View.
type Options struct {
	// Backend selects the physical engine (§5's DB2-style hash backend or
	// Tukwila-style indexed backend).
	Backend engine.Backend
	// MaxIterations bounds fixpoint loops (0 = engine default).
	MaxIterations int
	// Parallelism bounds the worker pool evaluating the rules of one
	// semi-naive round concurrently (0 = GOMAXPROCS, 1 = sequential).
	// Results are identical at every setting; see engine.Options.
	Parallelism int
	// ExchangeParallelism bounds CDSS.ExchangeAll's concurrent per-view
	// exchange passes (0 = GOMAXPROCS, 1 = serial). Distinct from
	// Parallelism, which bounds the engine workers inside one view's
	// fixpoint; views ignore this field. The public facade's equivalent
	// is WithExchangeParallelism.
	ExchangeParallelism int
	// SplitProvTables reverts §5's composite-mapping-table optimization:
	// one provenance table per RHS atom instead of one per tgd. Semantics
	// are identical; the ablation benchmarks measure the cost.
	SplitProvTables bool
	// QueryCacheSize caps the view's LRU query-result cache: 0 means the
	// default capacity, negative disables caching entirely. Cached
	// results are invalidated per relation through table generation
	// counters (see querycache.go), so a maintenance pass only evicts
	// queries whose body it actually touched.
	QueryCacheSize int
	// LegacyQueryPlanner reverts query-time plans to the maintenance
	// engine's fixed join order (no statistics, no warm-index pickup).
	// It exists as the baseline for the plan-equivalence property test
	// and the serving benchmark; leave it false in production.
	LegacyQueryPlanner bool
}

// View is one peer's materialized view of the whole CDSS: its own copies
// of every peer's internal relations and provenance tables, computed
// under the view owner's trust policy (§4: peers keep all data and
// metadata local "to prevent others from snooping on their queries").
// The empty owner "" is the global trust-all view used by the
// experiments.
type View struct {
	spec  *Spec
	owner string
	opts  Options

	db   *storage.Database
	sk   *value.SkolemTable
	prog *datalog.Program
	ev   *engine.Evaluator

	infos []*provenance.MappingInfo
	graph *provenance.Graph

	// derivability-test scratch engine, built lazily (§4.1.3).
	chkDB *storage.Database
	chkEv *engine.Evaluator

	// inv is the lazily-built declarative inverse-rule program (§4.1.3).
	inv *inverseState

	// dirty marks derived state as possibly inconsistent with the base
	// tables: a maintenance operation started but did not finish (e.g.
	// its propagation fixpoint was cancelled). Base edits commit before
	// any cancellable point, so the next operation repairs by full
	// recomputation from the base tables.
	dirty bool

	// bySourceRel indexes (mapping, source-template) pairs by source
	// relation, for the deletion cascade.
	bySourceRel map[string][]mappingSource
	// byTargetRel indexes (mapping, target-template) pairs by target
	// relation, for support checks.
	byTargetRel map[string][]mappingTarget

	// qcache is the hot-query result cache (nil when disabled); see
	// querycache.go.
	qcache *queryCache

	// qobs, when set, receives per-query telemetry (phase breakdown,
	// cache outcome, dependency pins); slowNS is the wall-clock past
	// which the chosen plan is rendered into the record. See query.go.
	qobs   func(obs.QueryStats)
	slowNS int64
}

type mappingSource struct {
	mi  *provenance.MappingInfo
	idx int // which source template
}

type mappingTarget struct {
	mi  *provenance.MappingInfo
	idx int // which target template
}

// NewView instantiates a view of the CDSS for the given owner peer (or ""
// for the global trust-all view). It expands the internal schema, compiles
// the provenance-encoded mapping program with the owner's trust
// conditions attached, and prepares the evaluation engine.
func NewView(spec *Spec, owner string, opts Options) (*View, error) {
	if owner != "" && spec.Universe.Peer(owner) == nil {
		return nil, fmt.Errorf("core: unknown view owner %q", owner)
	}
	v := &View{
		spec:   spec,
		owner:  owner,
		opts:   opts,
		db:     storage.NewDatabase(),
		sk:     value.NewSkolemTable(),
		qcache: newQueryCache(opts.QueryCacheSize),
	}
	if err := v.compile(); err != nil {
		return nil, err
	}
	return v, nil
}

// ensureTable returns the named table, creating it when absent. Evolution
// recompiles views against a database that already holds most tables; a
// pre-existing table with a different arity is a spec-validation bug.
func (v *View) ensureTable(name string, arity int) error {
	if t := v.db.Table(name); t != nil {
		if t.Arity() != arity {
			return fmt.Errorf("core: table %q exists with arity %d, spec wants %d", name, t.Arity(), arity)
		}
		return nil
	}
	_, err := v.db.Create(name, arity)
	return err
}

// compile (re)builds everything derived from the view's spec: missing
// internal tables, the provenance-encoded mapping program with the
// owner's trust filters inlined, the evaluation engine, the mapping
// metadata indexes, and the provenance graph. Existing table contents
// are untouched, so spec evolution can recompile a live view and then
// repair its materialized state incrementally (see evolve.go). The
// lazily-built derivability and inverse machinery is discarded — it is
// rebuilt against the new program on first use.
func (v *View) compile() error {
	spec, opts := v.spec, v.opts
	v.prog = datalog.NewProgram()
	v.infos = nil
	v.bySourceRel = make(map[string][]mappingSource)
	v.byTargetRel = make(map[string][]mappingTarget)
	v.dropScratchTables()
	v.chkDB, v.chkEv, v.inv = nil, nil, nil

	// Internal schema: four tables per user relation (Fig. 2).
	baseRels := make(map[string]bool)
	for _, rel := range spec.Universe.Relations() {
		k := rel.Arity()
		for _, name := range []string{LocalRel(rel.Name), RejectRel(rel.Name), InputRel(rel.Name), OutputRel(rel.Name)} {
			if err := v.ensureTable(name, k); err != nil {
				return err
			}
		}
		baseRels[LocalRel(rel.Name)] = true
	}

	// User mappings, rewritten onto the internal schema (§3.1): LHS reads
	// curated outputs, RHS feeds inputs.
	for _, m := range spec.Mappings {
		internal := m.RenameRels(OutputRel, InputRel)
		var encs []*tgd.ProvEncoding
		if opts.SplitProvTables {
			encs = internal.EncodeSplit()
		} else {
			encs = []*tgd.ProvEncoding{internal.Encode()}
		}
		for _, enc := range encs {
			if err := v.ensureTable(enc.ProvRel, len(enc.ProvVars)); err != nil {
				return err
			}
			// Trust conditions Θ compose along paths (§3.3): the view
			// owner's conditions AND those of each peer the mapping
			// targets.
			for _, cond := range v.effectiveConditions(m.ID) {
				accept := cond.Accept
				enc.Populate.AddFilter(cond.String(), func(env value.Env) bool {
					return accept.Eval(env)
				})
			}
			v.prog.Add(enc.Populate)
			v.prog.Add(enc.Derive...)
			mi, err := provenance.FromEncoding(enc)
			if err != nil {
				return err
			}
			v.registerMapping(mi)
		}
	}

	// Internal bookkeeping mappings per relation (§3.1, §3.3):
	//   (tR) Rᵒ(x̄) :- Rⁱ(x̄), ¬Rr(x̄)   [input, minus rejections]
	//   (ℓR) Rᵒ(x̄) :- Rℓ(x̄)            [local contributions]
	for _, rel := range spec.Universe.Relations() {
		k := rel.Arity()
		args := make([]datalog.Term, k)
		for i := range args {
			args[i] = datalog.V(fmt.Sprintf("c%d", i))
		}
		add := func(mapID, srcRel string, extraNeg string) error {
			pRel := provRelOf(mapID)
			if err := v.ensureTable(pRel, k); err != nil {
				return err
			}
			body := []datalog.Literal{datalog.Pos(datalog.NewAtom(srcRel, args...))}
			if extraNeg != "" {
				body = append(body, datalog.Neg(datalog.NewAtom(extraNeg, args...)))
			}
			v.prog.Add(datalog.NewRule(mapID+"'", datalog.NewAtom(pRel, args...), body...))
			v.prog.Add(datalog.NewRule(mapID+"''",
				datalog.NewAtom(OutputRel(rel.Name), args...),
				datalog.Pos(datalog.NewAtom(pRel, args...))))
			v.registerMapping(provenance.InternalMapping(mapID, pRel, srcRel, OutputRel(rel.Name), k))
			return nil
		}
		if err := add(insMapID(rel.Name), InputRel(rel.Name), RejectRel(rel.Name)); err != nil {
			return err
		}
		if err := add(locMapID(rel.Name), LocalRel(rel.Name), ""); err != nil {
			return err
		}
	}

	ev, err := engine.New(v.prog, v.db, v.sk, engine.Options{
		Backend:       opts.Backend,
		MaxIterations: opts.MaxIterations,
		Parallelism:   opts.Parallelism,
	})
	if err != nil {
		return err
	}
	v.ev = ev
	v.graph = provenance.NewGraph(v.db, v.sk, v.infos, baseRels)
	v.graph.SetTokenNamer(func(r provenance.Ref) string {
		// Strip the internal suffix for user-facing tokens.
		rel := r.Rel
		if len(rel) > 2 && rel[len(rel)-2] == '$' {
			rel = rel[:len(rel)-2]
		}
		return rel + r.Tuple().String()
	})
	return nil
}

// dropScratchTables removes the lazily-built derivability (c$/pi$) and
// query (q$) workspaces; they are always empty between operations and
// are rebuilt against the current program on demand.
func (v *View) dropScratchTables() {
	for _, name := range v.db.Names() {
		if strings.HasPrefix(name, "c$") || strings.HasPrefix(name, "pi$") || strings.HasPrefix(name, "q$") {
			v.db.Drop(name)
		}
	}
}

func (v *View) registerMapping(mi *provenance.MappingInfo) {
	v.infos = append(v.infos, mi)
	for i, s := range mi.Sources {
		v.bySourceRel[s.Rel] = append(v.bySourceRel[s.Rel], mappingSource{mi, i})
	}
	for i, t := range mi.Targets {
		v.byTargetRel[t.Rel] = append(v.byTargetRel[t.Rel], mappingTarget{mi, i})
	}
}

// effectiveConditions gathers the trust conditions applying to mapping id
// in this view: the owner's plus those of every target peer of the
// mapping (§3.3's AND-composition / delegation).
func (v *View) effectiveConditions(mapID string) []*trust.Condition {
	var out []*trust.Condition
	seen := make(map[*trust.Policy]bool)
	consider := func(p *trust.Policy) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		out = append(out, p.Conditions(mapID)...)
	}
	if v.owner != "" {
		consider(v.spec.Policy(v.owner))
	}
	if m := v.spec.Mapping(mapID); m != nil {
		for _, peer := range m.TargetPeers(v.spec.Universe) {
			consider(v.spec.Policy(peer))
		}
	}
	return out
}

// baseTrustFilter returns the owner's base-trust predicate for
// NetEffect's membership simulation, or nil when the owner trusts every
// base tuple (the global view, or a peer without a policy) so the
// simulation can skip per-tuple policy evaluation.
func (v *View) baseTrustFilter() func(string, value.Tuple) bool {
	if v.owner == "" || v.spec.Policy(v.owner) == nil {
		return nil
	}
	return v.trustsBase
}

// trustsBase reports whether the view owner trusts a base tuple of a user
// relation (token-level trust, §3.3). Untrusted base tuples are never
// imported into the view.
func (v *View) trustsBase(rel string, t value.Tuple) bool {
	if v.owner == "" {
		return true
	}
	pol := v.spec.Policy(v.owner)
	if pol == nil {
		return true
	}
	relMeta := v.spec.Universe.Relation(rel)
	if relMeta == nil {
		return false
	}
	cols := make(map[string]value.Value, len(relMeta.Cols))
	for i, c := range relMeta.Cols {
		cols[c.Name] = t[i]
	}
	return pol.TrustsBase(rel, relMeta.Peer, cols)
}

// Spec returns the CDSS description the view was built from.
func (v *View) Spec() *Spec { return v.spec }

// Owner returns the view owner ("" for the global view).
func (v *View) Owner() string { return v.owner }

// DB exposes the underlying database (read-mostly; mutate via the
// maintenance operations).
func (v *View) DB() *storage.Database { return v.db }

// Skolems exposes the view's labeled-null interner.
func (v *View) Skolems() *value.SkolemTable { return v.sk }

// Program returns the compiled internal datalog program.
func (v *View) Program() *datalog.Program { return v.prog }

// Graph returns the provenance graph view.
func (v *View) Graph() *provenance.Graph { return v.graph }

// Instance returns the curated local instance Rᵒ of a user relation —
// what the peer's users query (§3.1).
func (v *View) Instance(rel string) *storage.Table { return v.db.Table(OutputRel(rel)) }

// DeclareSecondaryIndex pre-builds a persistent index on one column
// (named) of a user relation's curated instance Rᵒ. The storage layer
// maintains the index incrementally through every subsequent maintenance
// pass (it survives Clear), so read-path probes on the column hit a warm
// index instead of paying a scan or the hash backend's per-call
// transient build. Redeclaring an existing index is a no-op.
func (v *View) DeclareSecondaryIndex(rel, column string) error {
	meta := v.spec.Universe.Relation(rel)
	if meta == nil {
		return fmt.Errorf("core: unknown relation %q", rel)
	}
	col := -1
	for i, c := range meta.Cols {
		if c.Name == column {
			col = i
			break
		}
	}
	if col < 0 {
		return fmt.Errorf("core: relation %q has no column %q", rel, column)
	}
	v.db.Table(OutputRel(rel)).EnsureIndex(col)
	return nil
}

// LocalTable returns Rℓ.
func (v *View) LocalTable(rel string) *storage.Table { return v.db.Table(LocalRel(rel)) }

// RejectTable returns Rr.
func (v *View) RejectTable(rel string) *storage.Table { return v.db.Table(RejectRel(rel)) }

// InputTable returns Rⁱ.
func (v *View) InputTable(rel string) *storage.Table { return v.db.Table(InputRel(rel)) }

// ProvOf returns the provenance expression of a tuple of a user
// relation's curated instance.
func (v *View) ProvOf(rel string, t value.Tuple) provenance.Expr {
	return v.graph.ExprFor(provenance.NewRef(OutputRel(rel), t), 0)
}
