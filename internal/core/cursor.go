package core

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// Cursor is a typed, shard-aware position on a publication bus. The bus
// remains a totally ordered sequence of publications; Total is the
// number of publications already consumed from that order. Because
// every fetch and subscription consumes a contiguous prefix of the
// global order, Total alone determines what is pending (the prefix
// invariant), while the per-shard breakdown — how many of those
// publications each owning peer contributed — serves push-side gap
// detection, per-shard durable segments, and the shard lag gauges.
//
// The zero Cursor is the exact start-of-bus position. A Cursor restored
// from a pre-shard manifest knows only its total (Exact reports false);
// the first pull fetch against any bus returns the bus's exact horizon,
// which completes the migration with no replay.
//
// Cursor is a value type: Advance returns a new Cursor, and a Cursor
// may be copied freely.
type Cursor struct {
	total  int
	scalar bool // per-shard breakdown unknown (migrated legacy position)
	shards map[string]int
}

// cursorVersion prefixes the durable string form so the format can
// evolve; ParseCursor rejects unknown versions.
const cursorVersion = "v1"

// CursorFromTotal returns the Cursor for a bare publication count with
// an unknown per-shard breakdown — the one-shot migration path for
// scalar cursors persisted before sharding. For n == 0 the position is
// exactly the start of the bus, so the result is exact.
func CursorFromTotal(n int) Cursor {
	if n == 0 {
		return Cursor{}
	}
	return Cursor{total: n, scalar: true}
}

// Total reports how many publications of the global order this cursor
// has consumed. By the prefix invariant this is also the fetch offset.
func (c Cursor) Total() int { return c.total }

// Exact reports whether the per-shard breakdown is known. Cursors
// produced by Fetch, Subscribe, or Advance from an exact start are
// exact; only positions migrated from a pre-shard manifest are not.
func (c Cursor) Exact() bool { return !c.scalar }

// Shard reports how many publications of the named shard (owning peer)
// this cursor has consumed, or 0 if unknown.
func (c Cursor) Shard(name string) int { return c.shards[name] }

// shardKnown reports the consumed count for a shard and whether that
// count is authoritative. On an exact cursor every shard is known (an
// absent entry means zero consumed); on a scalar cursor only shards
// recorded by a later Advance are.
func (c Cursor) shardKnown(name string) (int, bool) {
	if n, ok := c.shards[name]; ok {
		return n, true
	}
	if c.scalar {
		return 0, false
	}
	return 0, true
}

// Shards returns the shard names with a nonzero recorded position, in
// sorted order.
func (c Cursor) Shards() []string {
	if len(c.shards) == 0 {
		return nil
	}
	names := make([]string, 0, len(c.shards))
	for name := range c.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// IsZero reports whether this is the exact start-of-bus position.
func (c Cursor) IsZero() bool { return c.total == 0 && !c.scalar }

// Equal reports positional equality: same total, same exactness, same
// recorded shard breakdown.
func (c Cursor) Equal(o Cursor) bool {
	if c.total != o.total || c.scalar != o.scalar || len(c.shards) != len(o.shards) {
		return false
	}
	for name, n := range c.shards {
		if o.shards[name] != n {
			return false
		}
	}
	return true
}

// Advance returns the cursor after consuming one more delta. On an
// exact cursor the shard entry moves to the delta's position; a delta
// with an unknown position (Pos <= 0, produced by legacy-bus adapters)
// degrades the result to scalar, since the breakdown can no longer be
// trusted. The receiver is not modified.
func (c Cursor) Advance(d Delta) Cursor {
	next := Cursor{total: c.total + 1, scalar: c.scalar}
	next.shards = make(map[string]int, len(c.shards)+1)
	for name, n := range c.shards {
		next.shards[name] = n
	}
	if d.Pos > 0 {
		next.shards[d.Shard] = d.Pos
	} else {
		next.scalar = true
	}
	return next
}

// String renders the durable form, e.g. "v1:7;PGUS=4,PuBio=3" for an
// exact cursor (the shard list may be empty but the semicolon is
// always present) and "v1:7" for a scalar one. Shard names are
// query-escaped so arbitrary peer names round-trip.
func (c Cursor) String() string {
	var b strings.Builder
	b.WriteString(cursorVersion)
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(c.total))
	if c.scalar {
		return b.String()
	}
	b.WriteByte(';')
	for i, name := range c.Shards() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(url.QueryEscape(name))
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(c.shards[name]))
	}
	return b.String()
}

// ParseCursor parses the durable form produced by String. The empty
// string parses to the zero (exact start) cursor, so absent manifest
// fields and unset flags need no special casing.
func ParseCursor(s string) (Cursor, error) {
	if s == "" {
		return Cursor{}, nil
	}
	rest, ok := strings.CutPrefix(s, cursorVersion+":")
	if !ok {
		return Cursor{}, fmt.Errorf("core: cursor %q: unknown version", s)
	}
	totalPart, shardPart, exact := strings.Cut(rest, ";")
	total, err := strconv.Atoi(totalPart)
	if err != nil || total < 0 {
		return Cursor{}, fmt.Errorf("core: cursor %q: bad total", s)
	}
	c := Cursor{total: total, scalar: !exact}
	if c.scalar && total == 0 {
		c.scalar = false // "v1:0" and "" both mean the exact start
	}
	if !exact || shardPart == "" {
		return c, nil
	}
	c.shards = make(map[string]int)
	sum := 0
	for _, entry := range strings.Split(shardPart, ",") {
		namePart, posPart, ok := strings.Cut(entry, "=")
		if !ok {
			return Cursor{}, fmt.Errorf("core: cursor %q: bad shard entry %q", s, entry)
		}
		name, err := url.QueryUnescape(namePart)
		if err != nil {
			return Cursor{}, fmt.Errorf("core: cursor %q: bad shard name %q", s, namePart)
		}
		pos, err := strconv.Atoi(posPart)
		if err != nil || pos <= 0 {
			return Cursor{}, fmt.Errorf("core: cursor %q: bad shard position %q", s, posPart)
		}
		if _, dup := c.shards[name]; dup {
			return Cursor{}, fmt.Errorf("core: cursor %q: duplicate shard %q", s, name)
		}
		c.shards[name] = pos
		sum += pos
	}
	if sum > total {
		return Cursor{}, fmt.Errorf("core: cursor %q: shard positions sum to %d > total %d", s, sum, total)
	}
	return c, nil
}

// Delta is one publication as delivered by a fetch or subscription:
// the publication plus its position on its owning shard. Shard is the
// owning peer; Pos is the 1-based position of this publication within
// that shard's sub-sequence (Pos <= 0 means the position is unknown —
// legacy-bus adapters cannot reconstruct it for scalar starts).
type Delta struct {
	Shard string
	Pos   int
	Pub   Publication
}

// CancelFunc tears down a subscription: the delta channel is closed
// and the subscriber's resources released. Safe to call more than
// once, and safe to call after the channel has already closed.
type CancelFunc func()

// cursorAtMost reports whether position a is no further along the bus
// than b, comparing totals (the prefix invariant makes totals
// comparable across any two cursors on the same bus).
func cursorAtMost(a, b Cursor) bool { return a.total <= b.total }
