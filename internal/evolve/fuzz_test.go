package evolve

import "testing"

// FuzzParse throws arbitrary text at the .cdssd spec-diff parser. The
// parser must never panic; and whenever it accepts an input, rendering
// the parsed diff and re-parsing the result must succeed with the same
// number of operations and an identical re-rendering (render∘parse is a
// normal form — what `orchestra evolve` and orchestrad's admin
// endpoints round-trip through).
func FuzzParse(f *testing.F) {
	f.Add(`# grow the confederation
add peer PRef {
  relation Z(a int, b int)
}
add mapping m4: U(n,c) -> C(n,n)
remove mapping m1
trust PBioSQL distrusts mapping m4 when n >= 3
untrust PBioSQL
`)
	f.Add("remove mapping m1\n")
	f.Add("add mapping m9: A(x,y) -> exists z . B(x,z)\n")
	f.Add("add peer P { relation R(a string) }")
	f.Add("trust P distrusts peer Q\n")
	f.Add("set trust nonsense\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ParseString(input)
		if err != nil {
			return
		}
		rendered := d.String()
		again, err := ParseString(rendered)
		if err != nil {
			t.Fatalf("accepted diff rendered to unparseable text:\ninput: %q\nrendered: %q\nerr: %v", input, rendered, err)
		}
		if len(again.Ops) != len(d.Ops) {
			t.Fatalf("round-trip changed op count: %d -> %d\nrendered: %q", len(d.Ops), len(again.Ops), rendered)
		}
		if re := again.String(); re != rendered {
			t.Fatalf("render is not a normal form:\nfirst:  %q\nsecond: %q", rendered, re)
		}
	})
}
