// Package evolve is the spec-evolution subsystem: it describes changes
// to a running confederation — new peers, added/removed mappings,
// replaced trust policies — as a sequence of operations, validates each
// operation into a fresh core.Spec (well-formedness, ownership, weak
// acyclicity; §3.1's construction-time guarantees hold at every
// intermediate spec), and can diff two specs into the operation sequence
// that rewrites one into the other.
//
// The package is purely about specs. The state-repair half — rewiring
// live views onto the new spec and incrementally fixing their
// materialized instances and provenance — lives in internal/core
// (View.AddMappings / RemoveMappings / ApplyTrust / Recompile) and is
// orchestrated by the public facade (System.AddPeer, System.AddMapping,
// System.RemoveMapping, System.SetTrust, System.ApplyDiff).
package evolve

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"orchestra/internal/core"
	"orchestra/internal/schema"
	"orchestra/internal/spec"
	"orchestra/internal/tgd"
	"orchestra/internal/trust"
)

// OpKind enumerates the spec-evolution operations.
type OpKind uint8

const (
	// OpAddPeer registers a new peer and its relations. Existing state is
	// unaffected (the new tables start empty), so no repair is needed.
	OpAddPeer OpKind = iota
	// OpAddMapping appends a schema mapping; views repair by a semi-naive
	// round seeded with the new mapping's rules.
	OpAddMapping
	// OpRemoveMapping deletes a mapping by id; views repair by
	// provenance-driven deletion generalized to rule deletions.
	OpRemoveMapping
	// OpSetTrust replaces one peer's entire trust policy (nil = trust
	// everything, the paper's default Θ).
	OpSetTrust
	// OpTrustDirective applies one textual trust directive on top of the
	// peer's current policy — the accumulating form diff files use.
	OpTrustDirective
)

func (k OpKind) String() string {
	switch k {
	case OpAddPeer:
		return "add peer"
	case OpAddMapping:
		return "add mapping"
	case OpRemoveMapping:
		return "remove mapping"
	case OpSetTrust:
		return "set trust"
	default:
		return "trust directive"
	}
}

// Op is one spec-evolution operation. Exactly the fields of its kind are
// set.
type Op struct {
	Kind OpKind
	// Peer is the new peer (OpAddPeer).
	Peer *schema.Peer
	// Mapping is the new mapping (OpAddMapping).
	Mapping *tgd.TGD
	// MappingID names the mapping to remove (OpRemoveMapping).
	MappingID string
	// TrustPeer is the peer whose policy changes (OpSetTrust).
	TrustPeer string
	// Policy is the replacement policy (OpSetTrust; nil = trust-all).
	Policy *trust.Policy
	// Directive is the raw trust directive after the "trust" keyword
	// (OpTrustDirective), e.g. "PBioSQL distrusts mapping m1 when n >= 3".
	Directive string
}

// String renders the operation in the diff-file syntax.
func (op Op) String() string {
	switch op.Kind {
	case OpAddPeer:
		var rels []string
		for _, r := range op.Peer.Schema.Relations() {
			rels = append(rels, "relation "+r.String())
		}
		return fmt.Sprintf("add peer %s { %s }", op.Peer.Name, strings.Join(rels, " "))
	case OpAddMapping:
		return "add mapping " + op.Mapping.String()
	case OpRemoveMapping:
		return "remove mapping " + op.MappingID
	case OpSetTrust:
		var b strings.Builder
		fmt.Fprintf(&b, "untrust %s", op.TrustPeer)
		if op.Policy != nil {
			for _, d := range spec.PolicyDirectives(op.Policy) {
				b.WriteString("\ntrust " + d)
			}
		}
		return b.String()
	default:
		return "trust " + op.Directive
	}
}

// Diff is an ordered sequence of spec-evolution operations.
type Diff struct {
	Ops []Op
}

// String renders the diff in the parseable diff-file syntax.
func (d *Diff) String() string {
	lines := make([]string, len(d.Ops))
	for i, op := range d.Ops {
		lines[i] = op.String()
	}
	out := strings.Join(lines, "\n")
	if out != "" {
		out += "\n"
	}
	return out
}

// ApplyOp validates one operation against a spec and returns the evolved
// spec. The input spec is never mutated: universes, mapping slices, and
// policy maps are copied as needed, so Systems still holding the old
// spec keep a consistent view of the world.
func ApplyOp(sp *core.Spec, op Op) (*core.Spec, error) {
	switch op.Kind {
	case OpAddPeer:
		if op.Peer == nil {
			return nil, fmt.Errorf("evolve: add peer without a peer")
		}
		u, err := cloneUniverse(sp.Universe)
		if err != nil {
			return nil, err
		}
		if err := u.AddPeer(op.Peer); err != nil {
			return nil, fmt.Errorf("evolve: %w", err)
		}
		return core.NewSpec(u, sp.Mappings, sp.Policies)

	case OpAddMapping:
		if op.Mapping == nil {
			return nil, fmt.Errorf("evolve: add mapping without a mapping")
		}
		if op.Mapping.ID == "" {
			return nil, fmt.Errorf("evolve: mapping %s has no id", op.Mapping)
		}
		if sp.Mapping(op.Mapping.ID) != nil {
			return nil, fmt.Errorf("evolve: mapping id %q already exists", op.Mapping.ID)
		}
		mappings := make([]*tgd.TGD, 0, len(sp.Mappings)+1)
		mappings = append(mappings, sp.Mappings...)
		mappings = append(mappings, op.Mapping)
		// NewSpec re-checks well-formedness over the universe and weak
		// acyclicity of the whole extended mapping set.
		return core.NewSpec(sp.Universe, mappings, sp.Policies)

	case OpRemoveMapping:
		if sp.Mapping(op.MappingID) == nil {
			return nil, fmt.Errorf("evolve: unknown mapping %q", op.MappingID)
		}
		mappings := make([]*tgd.TGD, 0, len(sp.Mappings)-1)
		for _, m := range sp.Mappings {
			if m.ID != op.MappingID {
				mappings = append(mappings, m)
			}
		}
		return core.NewSpec(sp.Universe, mappings, sp.Policies)

	case OpSetTrust:
		if sp.Universe.Peer(op.TrustPeer) == nil {
			return nil, fmt.Errorf("evolve: trust change for unknown peer %q", op.TrustPeer)
		}
		policies := clonePolicies(sp.Policies)
		if op.Policy == nil {
			delete(policies, op.TrustPeer)
		} else {
			policies[op.TrustPeer] = op.Policy
		}
		return core.NewSpec(sp.Universe, sp.Mappings, policies)

	case OpTrustDirective:
		policies := clonePolicies(sp.Policies)
		policyOf := func(peer string) *trust.Policy {
			if p, ok := policies[peer]; ok && p != nil {
				c := p.Clone()
				policies[peer] = c
				return c
			}
			p := trust.NewPolicy(peer)
			policies[peer] = p
			return p
		}
		if err := spec.ApplyTrustDirective(op.Directive, policyOf); err != nil {
			return nil, fmt.Errorf("evolve: %w", err)
		}
		return core.NewSpec(sp.Universe, sp.Mappings, policies)

	default:
		return nil, fmt.Errorf("evolve: unknown operation kind %d", op.Kind)
	}
}

// Apply folds a whole diff over a spec, validating every intermediate
// spec.
func Apply(sp *core.Spec, d *Diff) (*core.Spec, error) {
	cur := sp
	for i, op := range d.Ops {
		next, err := ApplyOp(cur, op)
		if err != nil {
			return nil, fmt.Errorf("evolve: op %d (%s): %w", i+1, op.Kind, err)
		}
		cur = next
	}
	return cur, nil
}

// cloneUniverse shallow-copies a universe (peers are immutable after
// construction and safely shared).
func cloneUniverse(u *schema.Universe) (*schema.Universe, error) {
	out := schema.NewUniverse()
	for _, p := range u.Peers() {
		if err := out.AddPeer(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// clonePolicies shallow-copies a policy map (policies are cloned lazily
// by the operations that edit them).
func clonePolicies(in map[string]*trust.Policy) map[string]*trust.Policy {
	out := make(map[string]*trust.Policy, len(in)+1)
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Parse reads a spec-diff file: one operation per line (peer blocks may
// span lines), '#' comments, blank lines ignored.
//
//	# bring a reference-data peer into the confederation
//	add peer PRef {
//	  relation C(nam int, cls int)
//	}
//	add mapping m4: U(n,c) -> C(n,n)
//	remove mapping m1
//	trust PBioSQL distrusts mapping m3 when n >= 5
//	untrust PuBio
func Parse(r io.Reader) (*Diff, error) {
	d := &Diff{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var peerText strings.Builder // accumulates a multi-line peer block

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("evolve: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}

		if peerText.Len() > 0 {
			peerText.WriteString(" " + line)
			if !strings.HasSuffix(line, "}") {
				continue
			}
			p, err := spec.ParsePeerDecl(peerText.String())
			peerText.Reset()
			if err != nil {
				return nil, fail("%v", err)
			}
			d.Ops = append(d.Ops, Op{Kind: OpAddPeer, Peer: p})
			continue
		}

		switch {
		case strings.HasPrefix(line, "add peer "):
			decl := strings.TrimSpace(strings.TrimPrefix(line, "add peer "))
			if strings.Contains(decl, "{") && !strings.HasSuffix(decl, "}") {
				peerText.WriteString(decl)
				continue
			}
			p, err := spec.ParsePeerDecl(decl)
			if err != nil {
				return nil, fail("%v", err)
			}
			d.Ops = append(d.Ops, Op{Kind: OpAddPeer, Peer: p})

		case strings.HasPrefix(line, "add mapping "):
			m, err := tgd.Parse(strings.TrimPrefix(line, "add mapping "))
			if err != nil {
				return nil, fail("%v", err)
			}
			d.Ops = append(d.Ops, Op{Kind: OpAddMapping, Mapping: m})

		case strings.HasPrefix(line, "remove mapping "):
			id := strings.TrimSpace(strings.TrimPrefix(line, "remove mapping "))
			if id == "" {
				return nil, fail("remove mapping without an id")
			}
			d.Ops = append(d.Ops, Op{Kind: OpRemoveMapping, MappingID: id})

		case strings.HasPrefix(line, "trust "):
			d.Ops = append(d.Ops, Op{Kind: OpTrustDirective, Directive: strings.TrimSpace(strings.TrimPrefix(line, "trust "))})

		case strings.HasPrefix(line, "untrust "):
			peer := strings.TrimSpace(strings.TrimPrefix(line, "untrust "))
			if peer == "" {
				return nil, fail("untrust without a peer")
			}
			d.Ops = append(d.Ops, Op{Kind: OpSetTrust, TrustPeer: peer, Policy: nil})

		default:
			return nil, fail("unknown directive %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if peerText.Len() > 0 {
		return nil, fmt.Errorf("evolve: unterminated peer block %q", peerText.String())
	}
	return d, nil
}

// ParseString parses a diff from a string.
func ParseString(s string) (*Diff, error) { return Parse(strings.NewReader(s)) }

// DiffSpecs computes the operation sequence rewriting old into new:
// mapping removals first (so a redefined mapping id frees its slot),
// then new peers, added mappings, and trust replacements. Peers may only
// be added — a peer of old missing from new, or a shared peer with a
// different schema, is an error (the subsystem does not support peer
// removal or schema alteration).
func DiffSpecs(old, new *core.Spec) (*Diff, error) {
	d := &Diff{}

	oldPeers := make(map[string]*schema.Peer)
	for _, p := range old.Universe.Peers() {
		oldPeers[p.Name] = p
	}
	for _, p := range new.Universe.Peers() {
		op, ok := oldPeers[p.Name]
		if !ok {
			continue
		}
		if !sameSchema(op, p) {
			return nil, fmt.Errorf("evolve: peer %q changed its schema (unsupported)", p.Name)
		}
		delete(oldPeers, p.Name)
	}
	for name := range oldPeers {
		return nil, fmt.Errorf("evolve: peer %q was removed (unsupported)", name)
	}

	newByID := make(map[string]*tgd.TGD, len(new.Mappings))
	for _, m := range new.Mappings {
		newByID[m.ID] = m
	}
	for _, m := range old.Mappings {
		if nm, ok := newByID[m.ID]; !ok || !m.Equal(nm) {
			d.Ops = append(d.Ops, Op{Kind: OpRemoveMapping, MappingID: m.ID})
		}
	}
	for _, p := range new.Universe.Peers() {
		if old.Universe.Peer(p.Name) == nil {
			d.Ops = append(d.Ops, Op{Kind: OpAddPeer, Peer: p})
		}
	}
	for _, m := range new.Mappings {
		om := old.Mapping(m.ID)
		if om == nil || !om.Equal(m) {
			d.Ops = append(d.Ops, Op{Kind: OpAddMapping, Mapping: m})
		}
	}

	seen := make(map[string]bool)
	var withPolicy []string
	for _, u := range []*core.Spec{old, new} {
		for peer := range u.Policies {
			if !seen[peer] {
				seen[peer] = true
				withPolicy = append(withPolicy, peer)
			}
		}
	}
	sort.Strings(withPolicy)
	for _, peer := range withPolicy {
		if !samePolicy(old.Policy(peer), new.Policy(peer)) {
			d.Ops = append(d.Ops, Op{Kind: OpSetTrust, TrustPeer: peer, Policy: new.Policy(peer)})
		}
	}
	return d, nil
}

func sameSchema(a, b *schema.Peer) bool {
	ar, br := a.Schema.Relations(), b.Schema.Relations()
	if len(ar) != len(br) {
		return false
	}
	for i := range ar {
		if ar[i].String() != br[i].String() {
			return false
		}
	}
	return true
}

func samePolicy(a, b *trust.Policy) bool {
	render := func(p *trust.Policy) string {
		if p == nil {
			return ""
		}
		d := p.Describe()
		if strings.Contains(d, "trusts everything") {
			return ""
		}
		return d
	}
	return render(a) == render(b)
}
