package evolve

import (
	"strings"
	"testing"

	"orchestra/internal/spec"
	"orchestra/internal/tgd"
	"orchestra/internal/trust"
)

const paperSpecText = `
peer PGUS { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio { relation U(nam int, can int) }
mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
`

func paperSpec(t *testing.T) *spec.File {
	t.Helper()
	f, err := spec.ParseString(paperSpecText)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestApplyOpValidation(t *testing.T) {
	sp := paperSpec(t).Spec

	// Duplicate mapping id rejected.
	if _, err := ApplyOp(sp, Op{Kind: OpAddMapping, Mapping: tgd.MustParse("m1: B(i,n) -> U(n,i)")}); err == nil {
		t.Fatal("duplicate mapping id accepted")
	}
	// Unknown relation rejected.
	if _, err := ApplyOp(sp, Op{Kind: OpAddMapping, Mapping: tgd.MustParse("m9: Z(x) -> B(x,x)")}); err == nil {
		t.Fatal("mapping over unknown relation accepted")
	}
	// Weak acyclicity enforced over the evolved set: m3's existential
	// gives a special edge B.nam → U.can; feeding U.can back into B.nam
	// closes a cycle through it.
	if _, err := ApplyOp(sp, Op{Kind: OpAddMapping, Mapping: tgd.MustParse("m9: U(n,c) -> B(n,c)")}); err == nil {
		t.Fatal("weakly cyclic evolution accepted")
	}
	// Unknown mapping removal rejected.
	if _, err := ApplyOp(sp, Op{Kind: OpRemoveMapping, MappingID: "nope"}); err == nil {
		t.Fatal("removing unknown mapping accepted")
	}
	// Trust change for unknown peer rejected.
	if _, err := ApplyOp(sp, Op{Kind: OpSetTrust, TrustPeer: "nope"}); err == nil {
		t.Fatal("trust change for unknown peer accepted")
	}
	// Duplicate peer rejected.
	p, err := spec.ParsePeerDecl("PGUS { relation X(a int) }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyOp(sp, Op{Kind: OpAddPeer, Peer: p}); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}

func TestApplyOpDoesNotMutateInput(t *testing.T) {
	sp := paperSpec(t).Spec
	before := sp.Fingerprint()
	nPeers, nMappings := len(sp.Universe.Peers()), len(sp.Mappings)

	pref, err := spec.ParsePeerDecl("PRef { relation C(nam int, cls int) }")
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		{Kind: OpAddPeer, Peer: pref},
		{Kind: OpAddMapping, Mapping: tgd.MustParse("m4: U(n,c) -> C(n,n)")},
		{Kind: OpRemoveMapping, MappingID: "m1"},
		{Kind: OpTrustDirective, Directive: "PBioSQL distrusts mapping m3 when n >= 5"},
		{Kind: OpSetTrust, TrustPeer: "PuBio", Policy: nil},
	}
	evolved, err := Apply(sp, &Diff{Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Fingerprint() != before || len(sp.Universe.Peers()) != nPeers || len(sp.Mappings) != nMappings {
		t.Fatal("ApplyOp mutated the input spec")
	}
	if evolved.Fingerprint() == before {
		t.Fatal("evolution did not change the fingerprint")
	}
	if evolved.Universe.Peer("PRef") == nil || evolved.Mapping("m4") == nil || evolved.Mapping("m1") != nil {
		t.Fatalf("evolved spec wrong: %v", evolved.Mappings)
	}
	if evolved.Policy("PBioSQL") == nil {
		t.Fatal("trust directive not applied")
	}
}

func TestParseRenderRoundTrip(t *testing.T) {
	text := `# evolve the running example
add peer PRef {
  relation C(nam int, cls int)
}
add mapping m4: U(n,c) -> C(n,n)
remove mapping m1
trust PBioSQL distrusts mapping m3 when n >= 5
untrust PuBio
`
	d, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Ops) != 5 {
		t.Fatalf("parsed %d ops, want 5: %v", len(d.Ops), d.Ops)
	}
	wantKinds := []OpKind{OpAddPeer, OpAddMapping, OpRemoveMapping, OpTrustDirective, OpSetTrust}
	for i, k := range wantKinds {
		if d.Ops[i].Kind != k {
			t.Fatalf("op %d kind %v, want %v", i, d.Ops[i].Kind, k)
		}
	}
	// Rendering parses back to the same ops.
	d2, err := ParseString(d.String())
	if err != nil {
		t.Fatalf("re-parsing rendered diff: %v\n%s", err, d.String())
	}
	if d2.String() != d.String() {
		t.Fatalf("render not stable:\n%s\nvs\n%s", d.String(), d2.String())
	}
	// And applies cleanly.
	sp := paperSpec(t).Spec
	if _, err := Apply(sp, d); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"frobnicate everything",
		"add mapping",
		"remove mapping",
		"add peer P",
		"untrust",
		"add peer P { relation X(a int)", // unterminated block
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
}

func TestDiffSpecs(t *testing.T) {
	old := paperSpec(t).Spec
	newer, err := spec.ParseString(`
peer PGUS { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio { relation U(nam int, can int) }
peer PRef { relation C(nam int, cls int) }
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: U(n,c) -> C(n,n)
trust PBioSQL distrusts mapping m3 when n >= 5
`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DiffSpecs(old, newer.Spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Apply(old, d)
	if err != nil {
		t.Fatalf("applying diff: %v\ndiff:\n%s", err, d.String())
	}
	if got.Fingerprint() != newer.Spec.Fingerprint() {
		t.Fatalf("diff application did not reach the target spec\ndiff:\n%s", d.String())
	}
	// Identical specs diff to nothing.
	d0, err := DiffSpecs(old, paperSpec(t).Spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(d0.Ops) != 0 {
		t.Fatalf("identical specs diffed to %v", d0.Ops)
	}
	// Peer removal is unsupported.
	if _, err := DiffSpecs(newer.Spec, old); err == nil || !strings.Contains(err.Error(), "removed") {
		t.Fatalf("peer removal not rejected: %v", err)
	}
}

func TestDiffSpecsRedefinedMapping(t *testing.T) {
	old := paperSpec(t).Spec
	newer, err := spec.ParseString(strings.Replace(paperSpecText,
		"mapping m1: G(i,c,n) -> B(i,n)",
		"mapping m1: G(i,c,n) -> B(c,n)", 1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := DiffSpecs(old, newer.Spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Apply(old, d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != newer.Spec.Fingerprint() {
		t.Fatalf("redefinition diff wrong:\n%s", d.String())
	}
}

func TestSetTrustRenderRoundTrip(t *testing.T) {
	sp := paperSpec(t).Spec
	pred, err := trust.ParsePred("n >= 3")
	if err != nil {
		t.Fatal(err)
	}
	pol := trust.NewPolicy("PBioSQL")
	pol.TrustMapping("", pred)       // wildcard any-mapping condition
	pol.DistrustMapping("m1", pred)  // conditional distrust
	pol.DistrustMapping("m3", nil2()) // whole-mapping distrust (trivial pred)
	pol.DistrustPeer("PuBio")
	pol.DistrustBase("B", pred)

	target, err := ApplyOp(sp, Op{Kind: OpSetTrust, TrustPeer: "PBioSQL", Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	d := &Diff{Ops: []Op{{Kind: OpSetTrust, TrustPeer: "PBioSQL", Policy: pol}}}
	reparsed, err := ParseString(d.String())
	if err != nil {
		t.Fatalf("re-parsing rendered SetTrust: %v\n%s", err, d.String())
	}
	got, err := Apply(sp, reparsed)
	if err != nil {
		t.Fatalf("re-applying rendered SetTrust: %v\n%s", err, d.String())
	}
	if got.Fingerprint() != target.Fingerprint() {
		t.Fatalf("SetTrust did not round-trip through the diff syntax:\n%s\ngot policy:\n%swant policy:\n%s",
			d.String(), got.Policy("PBioSQL").Describe(), target.Policy("PBioSQL").Describe())
	}
	// The wildcard scope must come back as the wildcard, not a mapping
	// literally named ''.
	for _, c := range got.Policy("PBioSQL").AllConditions() {
		if c.Mapping == "''" {
			t.Fatalf("wildcard scope parsed as literal '': %v", c)
		}
	}
}

func nil2() *trust.Pred {
	p, _ := trust.ParsePred("")
	return p
}
