package storage

import (
	"testing"

	"orchestra/internal/race"
	"orchestra/internal/value"
)

// TestPreKeyedOpsAllocFree pins the hot-path contract of the row/key
// representation: membership tests and duplicate inserts of a pre-keyed
// row perform zero allocations — the canonical key is encoded once when
// the Row is built and threads through every subsequent operation.
func TestPreKeyedOpsAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under -race")
	}
	tb := NewTable("R", 3)
	row := value.NewRow(value.Tuple{value.Int(7), value.String("some-string-payload"), value.Int(42)})
	if !tb.InsertRow(row) {
		t.Fatal("first insert failed")
	}
	// Extra rows so the lookup isn't trivially hitting a one-entry map.
	for i := int64(0); i < 100; i++ {
		tb.Insert(value.Tuple{value.Int(i), value.String("filler"), value.Int(i)})
	}

	var ok bool
	if got := testing.AllocsPerRun(200, func() { ok = tb.ContainsRow(row) }); got != 0 {
		t.Errorf("ContainsRow allocates %v per run, want 0", got)
	}
	if !ok {
		t.Fatal("ContainsRow lost the row")
	}
	if got := testing.AllocsPerRun(200, func() { ok = tb.ContainsKey(row.Key) }); got != 0 {
		t.Errorf("ContainsKey allocates %v per run, want 0", got)
	}
	var inserted bool
	if got := testing.AllocsPerRun(200, func() { inserted = tb.InsertRow(row) }); got != 0 {
		t.Errorf("duplicate InsertRow allocates %v per run, want 0", got)
	}
	if inserted {
		t.Fatal("duplicate InsertRow reported success")
	}
}

// TestContainsAllocFree pins that the tuple-based membership test does
// not allocate for tuples whose encoding fits the stack buffer.
func TestContainsAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under -race")
	}
	tb := NewTable("R", 2)
	tup := value.Tuple{value.Int(1), value.String("x")}
	tb.Insert(tup)
	var ok bool
	if got := testing.AllocsPerRun(200, func() { ok = tb.Contains(tup) }); got != 0 {
		t.Errorf("Contains allocates %v per run, want 0", got)
	}
	if !ok {
		t.Fatal("Contains lost the row")
	}
}
