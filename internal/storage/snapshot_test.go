package storage

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"orchestra/internal/value"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := NewDatabase()
	r := db.MustCreate("R", 2)
	r.Insert(value.Tuple{value.Int(1), value.String("hello")})
	r.Insert(value.Tuple{value.Int(2), value.String("world")})
	s := db.MustCreate("S", 1)
	s.Insert(value.Tuple{value.Null(7)})
	db.MustCreate("Empty", 3)

	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names()) != 3 {
		t.Fatalf("tables: %v", got.Names())
	}
	if got.Table("R").Len() != 2 || !got.Table("R").Contains(value.Tuple{value.Int(1), value.String("hello")}) {
		t.Fatalf("R content:\n%s", got.Dump("R"))
	}
	if !got.Table("S").Contains(value.Tuple{value.Null(7)}) {
		t.Fatal("labeled null lost")
	}
	if got.Table("Empty").Arity() != 3 || got.Table("Empty").Len() != 0 {
		t.Fatal("empty table not preserved")
	}
	if got.TotalBytes() != db.TotalBytes() {
		t.Fatal("byte accounting differs after round trip")
	}
}

func TestSnapshotRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db := NewDatabase()
	for ti := 0; ti < 5; ti++ {
		arity := 1 + rng.Intn(4)
		tb := db.MustCreate(string(rune('A'+ti)), arity)
		for i := 0; i < 200; i++ {
			row := make(value.Tuple, arity)
			for c := range row {
				switch rng.Intn(3) {
				case 0:
					row[c] = value.Int(rng.Int63n(100))
				case 1:
					row[c] = value.String(strings.Repeat("x", rng.Intn(20)))
				default:
					row[c] = value.Null(rng.Int63n(50) + 1)
				}
			}
			tb.Insert(row)
		}
	}
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range db.Names() {
		want, have := db.Table(name), got.Table(name)
		if have == nil || have.Len() != want.Len() {
			t.Fatalf("table %s mismatch", name)
		}
		want.Each(func(row value.Tuple) bool {
			if !have.Contains(row) {
				t.Fatalf("table %s missing %v", name, row)
			}
			return true
		})
	}
}

func TestSnapshotErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadSnapshot(strings.NewReader("NOPE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated stream.
	db := NewDatabase()
	db.MustCreate("R", 1).Insert(value.Tuple{value.Int(1)})
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 6, 10, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Empty stream.
	if _, err := ReadSnapshot(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}
