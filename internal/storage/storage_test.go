package storage

import (
	"math/rand"
	"testing"

	"orchestra/internal/value"
)

func tup(vs ...int64) value.Tuple {
	t := make(value.Tuple, len(vs))
	for i, v := range vs {
		t[i] = value.Int(v)
	}
	return t
}

func TestTableInsertDelete(t *testing.T) {
	tb := NewTable("R", 2)
	if !tb.Insert(tup(1, 2)) {
		t.Fatal("first insert reported duplicate")
	}
	if tb.Insert(tup(1, 2)) {
		t.Fatal("duplicate insert reported new")
	}
	if tb.Len() != 1 || !tb.Contains(tup(1, 2)) {
		t.Fatal("content mismatch")
	}
	if !tb.Delete(tup(1, 2)) {
		t.Fatal("delete of present row failed")
	}
	if tb.Delete(tup(1, 2)) {
		t.Fatal("delete of absent row succeeded")
	}
	if tb.Len() != 0 {
		t.Fatal("len after delete")
	}
}

func TestTableArityPanic(t *testing.T) {
	tb := NewTable("R", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	tb.Insert(tup(1))
}

func TestTableBytes(t *testing.T) {
	tb := NewTable("R", 1)
	row := value.Tuple{value.String("hello")}
	tb.Insert(row)
	if tb.Bytes() != row.EncodedLen() {
		t.Fatalf("Bytes = %d, want %d", tb.Bytes(), row.EncodedLen())
	}
	tb.Delete(row)
	if tb.Bytes() != 0 {
		t.Fatal("Bytes after delete")
	}
}

func TestTableInsertClones(t *testing.T) {
	tb := NewTable("R", 1)
	row := tup(1)
	tb.Insert(row)
	row[0] = value.Int(99)
	if !tb.Contains(tup(1)) || tb.Contains(tup(99)) {
		t.Fatal("table aliases caller tuple")
	}
}

func TestTableRowsSorted(t *testing.T) {
	tb := NewTable("R", 1)
	for _, v := range []int64{5, 1, 3, 2, 4} {
		tb.Insert(tup(v))
	}
	rows := tb.Rows()
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Compare(rows[i]) >= 0 {
			t.Fatal("rows not sorted")
		}
	}
}

func TestTableEachEarlyStop(t *testing.T) {
	tb := NewTable("R", 1)
	for i := int64(0); i < 10; i++ {
		tb.Insert(tup(i))
	}
	n := 0
	tb.Each(func(value.Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d rows, want 3", n)
	}
}

func TestIndexMaintenance(t *testing.T) {
	tb := NewTable("R", 2)
	tb.Insert(tup(1, 10))
	tb.Insert(tup(2, 10))
	tb.EnsureIndex(1)
	if !tb.HasIndex(1) || tb.HasIndex(0) {
		t.Fatal("HasIndex")
	}
	tb.Insert(tup(3, 10))
	tb.Insert(tup(4, 20))

	if n := tb.ProbeCount(1, value.Int(10)); n != 3 {
		t.Fatalf("ProbeCount(10) = %d, want 3", n)
	}
	tb.Delete(tup(2, 10))
	if n := tb.ProbeCount(1, value.Int(10)); n != 2 {
		t.Fatalf("ProbeCount after delete = %d, want 2", n)
	}
	if n := tb.ProbeCount(1, value.Int(99)); n != 0 {
		t.Fatalf("ProbeCount missing = %d", n)
	}

	var got []value.Tuple
	tb.Probe(1, value.Int(10), func(r value.Tuple) bool {
		got = append(got, r)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("Probe returned %d rows, want 2", len(got))
	}
}

func TestProbeWithoutIndexScans(t *testing.T) {
	tb := NewTable("R", 2)
	tb.Insert(tup(1, 10))
	tb.Insert(tup(2, 20))
	n := 0
	tb.Probe(1, value.Int(20), func(value.Tuple) bool { n++; return true })
	if n != 1 {
		t.Fatalf("scan probe found %d rows, want 1", n)
	}
	if tb.ProbeCount(1, value.Int(10)) != 1 {
		t.Fatal("scan ProbeCount")
	}
}

// Property: indexed probe results always equal scan results under random
// workloads of inserts and deletes.
func TestIndexMatchesScanRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	indexed := NewTable("A", 2)
	plain := NewTable("B", 2)
	indexed.EnsureIndex(0)
	for step := 0; step < 2000; step++ {
		row := tup(r.Int63n(20), r.Int63n(20))
		if r.Intn(3) == 0 {
			indexed.Delete(row)
			plain.Delete(row)
		} else {
			indexed.Insert(row)
			plain.Insert(row)
		}
	}
	for v := int64(0); v < 20; v++ {
		if indexed.ProbeCount(0, value.Int(v)) != plain.ProbeCount(0, value.Int(v)) {
			t.Fatalf("probe mismatch at %d", v)
		}
	}
	if indexed.Len() != plain.Len() {
		t.Fatal("len mismatch")
	}
}

func TestTableCloneIndependence(t *testing.T) {
	tb := NewTable("R", 1)
	tb.Insert(tup(1))
	tb.EnsureIndex(0)
	c := tb.Clone()
	c.Insert(tup(2))
	tb.Delete(tup(1))
	if !c.Contains(tup(1)) || !c.Contains(tup(2)) || tb.Len() != 0 {
		t.Fatal("clone not independent")
	}
	if c.ProbeCount(0, value.Int(2)) != 1 {
		t.Fatal("clone index not rebuilt")
	}
}

func TestTableClear(t *testing.T) {
	tb := NewTable("R", 1)
	tb.EnsureIndex(0)
	tb.Insert(tup(1))
	tb.Clear()
	if tb.Len() != 0 || tb.Bytes() != 0 || tb.ProbeCount(0, value.Int(1)) != 0 {
		t.Fatal("clear incomplete")
	}
	if !tb.HasIndex(0) {
		t.Fatal("clear dropped index definition")
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase()
	r, err := db.Create("R", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("R", 2); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	r.Insert(tup(1, 2))
	s := db.MustCreate("S", 1)
	s.Insert(tup(9))
	if db.TotalRows() != 2 {
		t.Fatalf("TotalRows = %d", db.TotalRows())
	}
	if db.TotalBytes() != r.Bytes()+s.Bytes() {
		t.Fatal("TotalBytes")
	}
	if db.Table("missing") != nil {
		t.Fatal("missing table non-nil")
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Fatalf("Names = %v", names)
	}
}

func TestDatabaseCloneIndependence(t *testing.T) {
	db := NewDatabase()
	db.MustCreate("R", 1).Insert(tup(1))
	c := db.Clone()
	c.Table("R").Insert(tup(2))
	if db.Table("R").Len() != 1 || c.Table("R").Len() != 2 {
		t.Fatal("clone not independent")
	}
}

func TestDatabaseDump(t *testing.T) {
	db := NewDatabase()
	db.MustCreate("R", 1).Insert(tup(1))
	db.MustCreate("Empty", 1)
	out := db.Dump()
	if out == "" || len(out) < 10 {
		t.Fatalf("Dump = %q", out)
	}
	if db.Dump("Empty") != "" {
		t.Fatal("empty table dumped")
	}
}

func TestDeltaCancellation(t *testing.T) {
	d := NewDelta()
	d.Insert(tup(1))
	d.Delete(tup(1)) // cancels the insertion
	if !d.Empty() {
		t.Fatalf("ins=%v del=%v", d.Ins(), d.Del())
	}
	d.Delete(tup(2))
	d.Insert(tup(2)) // cancels the deletion
	if !d.Empty() {
		t.Fatal("delete-then-insert did not cancel")
	}
	d.Insert(tup(3))
	d.Insert(tup(3))
	if d.Size() != 1 {
		t.Fatal("duplicate insert not deduplicated")
	}
}

func TestDeltaSet(t *testing.T) {
	ds := DeltaSet{}
	ds.Insert("R", tup(1))
	ds.Delete("S", tup(2))
	ds.At("T") // empty delta should not appear in Relations
	if ds.Size() != 2 {
		t.Fatalf("Size = %d", ds.Size())
	}
	rels := ds.Relations()
	if len(rels) != 2 || rels[0] != "R" || rels[1] != "S" {
		t.Fatalf("Relations = %v", rels)
	}
	if ds.Empty() {
		t.Fatal("Empty on non-empty set")
	}
	if !(DeltaSet{}).Empty() {
		t.Fatal("Empty on empty set")
	}
}

func TestDeltaSortedViews(t *testing.T) {
	d := NewDelta()
	for _, v := range []int64{3, 1, 2} {
		d.Insert(tup(v))
		d.Delete(tup(v + 10))
	}
	ins, del := d.Ins(), d.Del()
	if len(ins) != 3 || len(del) != 3 {
		t.Fatal("sizes")
	}
	for i := 1; i < 3; i++ {
		if ins[i-1].Compare(ins[i]) >= 0 || del[i-1].Compare(del[i]) >= 0 {
			t.Fatal("not sorted")
		}
	}
}

func TestTableStats(t *testing.T) {
	tb := NewTable("R", 2)
	st := tb.Stats()
	if st.Rows != 0 || st.Distinct[0] != 0 || st.Distinct[1] != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	// Column 0: two distinct values; column 1: all distinct.
	for i := int64(0); i < 100; i++ {
		tb.Insert(tup(i%2, i))
	}
	st = tb.Stats()
	if st.Rows != 100 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	if st.Distinct[0] != 2 {
		t.Fatalf("Distinct[0] = %d, want 2 (low-cardinality plateau)", st.Distinct[0])
	}
	if st.Distinct[1] != 100 {
		t.Fatalf("Distinct[1] = %d, want 100", st.Distinct[1])
	}
	// Indexed columns are exact even beyond the sample cap.
	tb.EnsureIndex(1)
	for i := int64(100); i < 600; i++ {
		tb.Insert(tup(i%2, i))
	}
	st = tb.Stats()
	if st.Rows != 600 || st.Distinct[1] != 600 {
		t.Fatalf("indexed stats = %+v", st)
	}
	// The unindexed high-cardinality column extrapolates from the sample.
	if st.Distinct[0] != 2 {
		t.Fatalf("Distinct[0] = %d after growth, want 2", st.Distinct[0])
	}
}

func TestTableStatsExtrapolation(t *testing.T) {
	tb := NewTable("R", 1)
	for i := int64(0); i < 4*statsSampleCap; i++ {
		tb.Insert(tup(i))
	}
	st := tb.Stats()
	if st.Rows != 4*statsSampleCap {
		t.Fatalf("Rows = %d", st.Rows)
	}
	// All-distinct sample should scale up to ~the full row count.
	if st.Distinct[0] != 4*statsSampleCap {
		t.Fatalf("Distinct[0] = %d, want %d", st.Distinct[0], 4*statsSampleCap)
	}
}

func TestTableGeneration(t *testing.T) {
	tb := NewTable("R", 1)
	g0 := tb.Generation()
	tb.Insert(tup(1))
	g1 := tb.Generation()
	if g1 <= g0 {
		t.Fatal("insert did not advance generation")
	}
	if tb.Insert(tup(1)) || tb.Generation() != g1 {
		t.Fatal("duplicate insert advanced generation")
	}
	tb.Delete(tup(1))
	g2 := tb.Generation()
	if g2 <= g1 {
		t.Fatal("delete did not advance generation")
	}
	tb.Clear()
	if tb.Generation() <= g2 {
		t.Fatal("Clear did not advance generation")
	}
	// Stats are cached per generation.
	tb.Insert(tup(5))
	s1 := tb.Stats()
	s2 := tb.Stats()
	if &s1.Distinct[0] != &s2.Distinct[0] {
		t.Fatal("Stats recomputed without a mutation")
	}
	tb.Insert(tup(6))
	if tb.Stats().Rows != 2 {
		t.Fatal("Stats stale after mutation")
	}
}
