package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"orchestra/internal/value"
)

// Snapshot persistence: Orchestra keeps each peer's instances and
// provenance in auxiliary storage between update exchanges (§4, §5 — the
// role Berkeley DB played under Tukwila). WriteSnapshot/ReadSnapshot
// serialize a whole Database using the canonical tuple encoding, so a
// view's state can be saved after an exchange and reloaded later.
//
// Format (all integers big-endian):
//
//	magic "ORC1"
//	uint32 table count
//	per table: uint32 name len, name, uint32 arity, uint32 row count,
//	           per row: uint32 key len, canonical tuple key bytes

const snapshotMagic = "ORC1"

// WriteSnapshot serializes the database to w.
func (db *Database) WriteSnapshot(w io.Writer) error {
	return db.WriteSnapshotFiltered(w, func(string) bool { return true })
}

// WriteSnapshotFiltered serializes the tables whose names pass the
// include filter (used to exclude transient workspaces).
func (db *Database) WriteSnapshotFiltered(w io.Writer, include func(name string) bool) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	var names []string
	for _, n := range db.Names() {
		if include(n) {
			names = append(names, n)
		}
	}
	if err := writeU32(bw, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		t := db.tables[name]
		if err := writeU32(bw, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(t.arity)); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(len(t.rows))); err != nil {
			return err
		}
		for i := range t.rows {
			key := t.rows[i].Key
			if err := writeU32(bw, uint32(len(key))); err != nil {
				return err
			}
			if _, err := bw.WriteString(key); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a database written by WriteSnapshot. Indexes
// are not persisted; they are rebuilt lazily on demand.
func ReadSnapshot(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("storage: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("storage: bad snapshot magic %q", magic)
	}
	nTables, err := readU32(br)
	if err != nil {
		return nil, err
	}
	db := NewDatabase()
	for i := uint32(0); i < nTables; i++ {
		nameLen, err := readU32(br)
		if err != nil {
			return nil, err
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, err
		}
		arity, err := readU32(br)
		if err != nil {
			return nil, err
		}
		rowCount, err := readU32(br)
		if err != nil {
			return nil, err
		}
		t, err := db.Create(string(nameBytes), int(arity))
		if err != nil {
			return nil, err
		}
		for j := uint32(0); j < rowCount; j++ {
			keyLen, err := readU32(br)
			if err != nil {
				return nil, err
			}
			keyBytes := make([]byte, keyLen)
			if _, err := io.ReadFull(br, keyBytes); err != nil {
				return nil, err
			}
			key := string(keyBytes)
			row, err := value.DecodeTuple(key)
			if err != nil {
				return nil, fmt.Errorf("storage: snapshot table %s row %d: %w", nameBytes, j, err)
			}
			if len(row) != int(arity) {
				return nil, fmt.Errorf("storage: snapshot table %s row %d: arity %d, want %d",
					nameBytes, j, len(row), arity)
			}
			t.InsertRow(value.KeyedRow(row, key))
		}
	}
	return db, nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(buf[:]), nil
}
