// Package storage provides the in-memory relational storage engine that
// update exchange runs against. It plays the role the paper's backends
// played (DB2 tables / Berkeley DB B-trees, §5): hash-keyed row storage
// plus optional persistent secondary indexes per column, with byte-level
// size accounting used to reproduce Figure 6's "DB size" series.
package storage

import (
	"fmt"
	"sort"

	"orchestra/internal/value"
)

// Table is a set-semantics relation instance. Rows are deduplicated by
// their canonical key encoding (value.Row), stored densely in insertion
// order — deletion swaps the tail row into the vacated slot, so iteration
// order is deterministic given the same operation sequence (map iteration
// never leaks into results). A Table is not safe for concurrent mutation;
// concurrent reads (Contains, Probe, Each, AllRows) are safe while no
// mutation is in flight.
type Table struct {
	name  string
	arity int
	// pos maps a row's canonical key to its index in rows.
	pos  map[string]int
	rows []value.Row
	// indexes maps a column position to a secondary index over that
	// column. Indexes are maintained eagerly on Insert/Delete once built —
	// this is the "Tukwila/Berkeley DB" cost model; the hash backend never
	// builds them.
	indexes map[int]*colIndex
	bytes   int
	// sorted caches the Rows() result; mutations invalidate it.
	sorted []value.Tuple
	// scratch is the reused encode buffer for mutating entry points.
	scratch []byte
	// gen counts mutations (insert, delete, clear). It never decreases, so
	// a (table pointer, generation) pair identifies one exact table state —
	// the query cache's invalidation token.
	gen uint64
	// stats caches the Stats() result; recomputed when gen has moved.
	stats    TableStats
	statsGen uint64
	statsOK  bool
}

// colIndex maps a column value to the dense bucket of rows holding it.
// Buckets are append-only on insert — the common case — and swap-delete
// by linear key scan on removal, so probe enumeration order stays
// deterministic and index maintenance costs no map operations.
type colIndex struct {
	col     int
	buckets map[value.Value][]value.Row
}

// NewTable returns an empty table with the given name and arity.
func NewTable(name string, arity int) *Table {
	return &Table{
		name:    name,
		arity:   arity,
		pos:     make(map[string]int),
		indexes: make(map[int]*colIndex),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Arity returns the number of columns.
func (t *Table) Arity() int { return t.arity }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Bytes returns the total canonical-encoding size of all rows, the unit of
// the paper's Figure 6 "DB size" measurements.
func (t *Table) Bytes() int { return t.bytes }

// Insert adds tup to the table, returning true if it was not already
// present. The tuple is cloned, so callers may reuse the slice. Callers
// that already hold the canonical key should use InsertRow, which neither
// re-encodes nor clones.
func (t *Table) Insert(tup value.Tuple) bool {
	t.checkArity(tup)
	t.scratch = tup.EncodeKey(t.scratch[:0])
	if _, exists := t.pos[string(t.scratch)]; exists {
		return false
	}
	t.insert(value.KeyedRow(tup.Clone(), string(t.scratch)))
	return true
}

// InsertRow adds a pre-keyed row, returning true if it was not already
// present. The row's tuple is stored as-is (no clone) and must not be
// mutated afterwards. A duplicate insert performs no allocation.
func (t *Table) InsertRow(r value.Row) bool {
	t.checkArity(r.Tuple)
	if _, exists := t.pos[r.Key]; exists {
		return false
	}
	t.insert(r)
	return true
}

// InsertOwned inserts a tuple whose ownership transfers to the table: on
// success it is stored without cloning and the keyed row is returned. A
// duplicate insert returns ok=false without allocating. This is the
// engine's derived-tuple path: the head tuple is freshly built, so the
// clone Insert performs would be pure waste.
func (t *Table) InsertOwned(tup value.Tuple) (r value.Row, ok bool) {
	t.checkArity(tup)
	t.scratch = tup.EncodeKey(t.scratch[:0])
	if _, exists := t.pos[string(t.scratch)]; exists {
		return value.Row{}, false
	}
	r = value.KeyedRow(tup, string(t.scratch))
	t.insert(r)
	return r, true
}

func (t *Table) insert(r value.Row) {
	t.pos[r.Key] = len(t.rows)
	t.rows = append(t.rows, r)
	t.bytes += len(r.Key)
	t.sorted = nil
	t.gen++
	for _, idx := range t.indexes {
		idx.add(r)
	}
}

// Delete removes tup, returning true if it was present.
func (t *Table) Delete(tup value.Tuple) bool {
	t.checkArity(tup)
	t.scratch = tup.EncodeKey(t.scratch[:0])
	i, exists := t.pos[string(t.scratch)]
	if !exists {
		return false
	}
	t.deleteAt(i)
	return true
}

// DeleteRow removes a pre-keyed row, returning true if it was present.
func (t *Table) DeleteRow(r value.Row) bool {
	_, ok := t.DeleteKey(r.Key)
	return ok
}

// DeleteKey removes the row with the given canonical key, returning the
// stored tuple and whether it was present.
func (t *Table) DeleteKey(key string) (value.Tuple, bool) {
	i, exists := t.pos[key]
	if !exists {
		return nil, false
	}
	row := t.rows[i].Tuple
	t.deleteAt(i)
	return row, true
}

// deleteAt removes rows[i], swapping the tail row into its slot.
func (t *Table) deleteAt(i int) {
	r := t.rows[i]
	last := len(t.rows) - 1
	if i != last {
		moved := t.rows[last]
		t.rows[i] = moved
		t.pos[moved.Key] = i
	}
	t.rows[last] = value.Row{}
	t.rows = t.rows[:last]
	delete(t.pos, r.Key)
	t.bytes -= len(r.Key)
	t.sorted = nil
	t.gen++
	for _, idx := range t.indexes {
		idx.remove(r)
	}
}

// Contains reports whether tup is present. It is a pure read (safe for
// concurrent use with other reads) and does not allocate for tuples whose
// encoding fits a small stack buffer.
func (t *Table) Contains(tup value.Tuple) bool {
	var arr [128]byte
	key := tup.EncodeKey(arr[:0])
	_, ok := t.pos[string(key)]
	return ok
}

// ContainsKey reports whether a row with the given canonical key is
// present.
func (t *Table) ContainsKey(key string) bool {
	_, ok := t.pos[key]
	return ok
}

// ContainsRow reports whether a pre-keyed row is present, without
// re-encoding or allocating.
func (t *Table) ContainsRow(r value.Row) bool {
	_, ok := t.pos[r.Key]
	return ok
}

// Each calls fn for every row; iteration stops if fn returns false. Rows
// must not be mutated by fn. Iteration is in storage order: insertion
// order, perturbed deterministically by swap-deletes.
func (t *Table) Each(fn func(value.Tuple) bool) {
	for i := range t.rows {
		if !fn(t.rows[i].Tuple) {
			return
		}
	}
}

// EachRow is Each over keyed rows, for callers that thread keys onward
// (snapshots, provenance refs).
func (t *Table) EachRow(fn func(value.Row) bool) {
	for i := range t.rows {
		if !fn(t.rows[i]) {
			return
		}
	}
}

// AllRows returns the table's dense row storage in storage order. The
// slice is shared with the table: callers must treat it as read-only and
// must not hold it across mutations. It is the zero-copy scan path for
// the evaluation engine, whose semi-naive rounds run against immutable
// tables.
func (t *Table) AllRows() []value.Row { return t.rows }

// Rows returns all rows, sorted, for deterministic display and testing.
// The sort is computed once and cached until the next mutation; the
// returned slice is shared and must be treated as read-only.
func (t *Table) Rows() []value.Tuple {
	if t.sorted == nil {
		out := make([]value.Tuple, 0, len(t.rows))
		for i := range t.rows {
			out = append(out, t.rows[i].Tuple)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
		t.sorted = out
	}
	return t.sorted
}

// Clear removes all rows but keeps index definitions.
func (t *Table) Clear() {
	t.pos = make(map[string]int)
	t.rows = nil
	t.bytes = 0
	t.sorted = nil
	t.gen++
	for _, idx := range t.indexes {
		idx.buckets = make(map[value.Value][]value.Row)
	}
}

// Clone returns a deep copy of the table, including built indexes.
func (t *Table) Clone() *Table {
	c := NewTable(t.name, t.arity)
	c.rows = make([]value.Row, len(t.rows))
	copy(c.rows, t.rows) // rows are immutable once stored
	c.pos = make(map[string]int, len(t.pos))
	for i := range c.rows {
		c.pos[c.rows[i].Key] = i
	}
	c.bytes = t.bytes
	for col := range t.indexes {
		c.EnsureIndex(col)
	}
	return c
}

// EnsureIndex builds (if needed) and returns the secondary index on the
// given column position.
func (t *Table) EnsureIndex(col int) {
	if col < 0 || col >= t.arity {
		panic(fmt.Sprintf("storage: %s has no column %d", t.name, col))
	}
	if _, ok := t.indexes[col]; ok {
		return
	}
	idx := &colIndex{col: col, buckets: make(map[value.Value][]value.Row)}
	for i := range t.rows {
		idx.add(t.rows[i])
	}
	t.indexes[col] = idx
}

// HasIndex reports whether an index exists on the column.
func (t *Table) HasIndex(col int) bool {
	_, ok := t.indexes[col]
	return ok
}

// IndexedCols returns the sorted list of indexed column positions.
func (t *Table) IndexedCols() []int {
	out := make([]int, 0, len(t.indexes))
	for c := range t.indexes {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Probe calls fn for every row whose column col equals v, using the index
// if one exists and scanning otherwise. Iteration stops if fn returns
// false.
func (t *Table) Probe(col int, v value.Value, fn func(value.Tuple) bool) {
	if idx, ok := t.indexes[col]; ok {
		for _, r := range idx.buckets[v] {
			if !fn(r.Tuple) {
				return
			}
		}
		return
	}
	for i := range t.rows {
		if t.rows[i].Tuple[col] == v {
			if !fn(t.rows[i].Tuple) {
				return
			}
		}
	}
}

// ProbeRows returns the dense bucket of rows whose column col equals v,
// or ok=false when the column has no index. The slice is shared with the
// index: read-only, not valid across mutations. It is the zero-copy,
// zero-allocation probe path for the evaluation engine.
func (t *Table) ProbeRows(col int, v value.Value) (rows []value.Row, ok bool) {
	idx, ok := t.indexes[col]
	if !ok {
		return nil, false
	}
	return idx.buckets[v], true
}

// Index returns a stable handle on the column's secondary index, or nil
// if none exists. The handle stays valid across mutations and Clear (the
// index object is reused), so query plans may cache it.
func (t *Table) Index(col int) *ColIndex {
	return t.indexes[col]
}

// ColIndex is the exported handle of a secondary index, for plan-time
// caching by the evaluation engine.
type ColIndex = colIndex

// Rows returns the index's dense bucket for v: the rows whose indexed
// column equals v, in deterministic storage order. Shared, read-only, not
// valid across mutations.
func (ci *colIndex) Rows(v value.Value) []value.Row {
	return ci.buckets[v]
}

// ProbeCount returns the number of rows with column col equal to v.
func (t *Table) ProbeCount(col int, v value.Value) int {
	if idx, ok := t.indexes[col]; ok {
		return len(idx.buckets[v])
	}
	n := 0
	for i := range t.rows {
		if t.rows[i].Tuple[col] == v {
			n++
		}
	}
	return n
}

// Generation returns the table's mutation counter. It increments on every
// insert, delete, and Clear and never decreases, so a (table pointer,
// generation) pair names one exact table state. The query cache uses it as
// its invalidation token: a maintenance pass that never touches this table
// leaves the generation — and every cached result reading it — intact.
func (t *Table) Generation() uint64 { return t.gen }

// statsSampleCap bounds the rows scanned when estimating distinct counts
// for columns without an index; indexed columns are exact and free.
const statsSampleCap = 256

// TableStats summarizes a table for the cost-based query planner.
type TableStats struct {
	// Rows is the exact row count.
	Rows int
	// Distinct[c] estimates the number of distinct values in column c:
	// exact (bucket count) when the column has a secondary index, else
	// extrapolated from a bounded prefix sample of the row storage.
	Distinct []int
}

// Stats returns the table's statistics, recomputing lazily after
// mutations. The cost of a recompute is O(arity × min(rows, sample cap));
// between mutations it is a field read. The returned Distinct slice is
// shared with the cache — callers must not modify it. Stats caches into
// the table, so it needs the same exclusion as mutating entry points.
func (t *Table) Stats() TableStats {
	if t.statsOK && t.statsGen == t.gen {
		return t.stats
	}
	st := TableStats{Rows: len(t.rows), Distinct: make([]int, t.arity)}
	sample := len(t.rows)
	if sample > statsSampleCap {
		sample = statsSampleCap
	}
	var seen map[value.Value]struct{}
	for col := 0; col < t.arity; col++ {
		if idx, ok := t.indexes[col]; ok {
			st.Distinct[col] = len(idx.buckets)
			continue
		}
		if sample == 0 {
			continue
		}
		if seen == nil {
			seen = make(map[value.Value]struct{}, sample)
		} else {
			clear(seen)
		}
		for i := 0; i < sample; i++ {
			seen[t.rows[i].Tuple[col]] = struct{}{}
		}
		d := len(seen)
		est := d
		if sample < len(t.rows) && d*2 >= sample {
			// The sample looks high-cardinality: extrapolate linearly. A
			// plateaued sample (d << sample) is kept as-is — low-cardinality
			// columns saturate their distinct set early.
			est = d * len(t.rows) / sample
		}
		if est > len(t.rows) {
			est = len(t.rows)
		}
		st.Distinct[col] = est
	}
	t.stats, t.statsGen, t.statsOK = st, t.gen, true
	return st
}

func (t *Table) checkArity(tup value.Tuple) {
	if len(tup) != t.arity {
		panic(fmt.Sprintf("storage: %s arity %d, got tuple %v", t.name, t.arity, tup))
	}
}

func (ci *colIndex) add(r value.Row) {
	v := r.Tuple[ci.col]
	ci.buckets[v] = append(ci.buckets[v], r)
}

func (ci *colIndex) remove(r value.Row) {
	v := r.Tuple[ci.col]
	rows := ci.buckets[v]
	for i := range rows {
		if rows[i].Key == r.Key {
			last := len(rows) - 1
			rows[i] = rows[last]
			rows[last] = value.Row{}
			rows = rows[:last]
			if len(rows) == 0 {
				delete(ci.buckets, v)
			} else {
				ci.buckets[v] = rows
			}
			return
		}
	}
}
