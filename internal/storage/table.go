// Package storage provides the in-memory relational storage engine that
// update exchange runs against. It plays the role the paper's backends
// played (DB2 tables / Berkeley DB B-trees, §5): hash-keyed row storage
// plus optional persistent secondary indexes per column, with byte-level
// size accounting used to reproduce Figure 6's "DB size" series.
package storage

import (
	"fmt"
	"sort"

	"orchestra/internal/value"
)

// Table is a set-semantics relation instance. Rows are deduplicated by
// their canonical key encoding. A Table is not safe for concurrent
// mutation.
type Table struct {
	name  string
	arity int
	rows  map[string]value.Tuple
	// indexes maps a column position to a secondary index over that
	// column. Indexes are maintained eagerly on Insert/Delete once built —
	// this is the "Tukwila/Berkeley DB" cost model; the hash backend never
	// builds them.
	indexes map[int]*colIndex
	bytes   int
}

// colIndex maps a column value to the set of row keys holding it.
type colIndex struct {
	col     int
	entries map[value.Value]map[string]struct{}
}

// NewTable returns an empty table with the given name and arity.
func NewTable(name string, arity int) *Table {
	return &Table{
		name:    name,
		arity:   arity,
		rows:    make(map[string]value.Tuple),
		indexes: make(map[int]*colIndex),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Arity returns the number of columns.
func (t *Table) Arity() int { return t.arity }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Bytes returns the total canonical-encoding size of all rows, the unit of
// the paper's Figure 6 "DB size" measurements.
func (t *Table) Bytes() int { return t.bytes }

// Insert adds tup to the table, returning true if it was not already
// present. The tuple is cloned, so callers may reuse the slice.
func (t *Table) Insert(tup value.Tuple) bool {
	if len(tup) != t.arity {
		panic(fmt.Sprintf("storage: %s arity %d, got tuple %v", t.name, t.arity, tup))
	}
	key := tup.Key()
	if _, exists := t.rows[key]; exists {
		return false
	}
	cl := tup.Clone()
	t.rows[key] = cl
	t.bytes += len(key)
	for _, idx := range t.indexes {
		idx.add(key, cl)
	}
	return true
}

// Delete removes tup, returning true if it was present.
func (t *Table) Delete(tup value.Tuple) bool {
	key := tup.Key()
	row, exists := t.rows[key]
	if !exists {
		return false
	}
	delete(t.rows, key)
	t.bytes -= len(key)
	for _, idx := range t.indexes {
		idx.remove(key, row)
	}
	return true
}

// Contains reports whether tup is present.
func (t *Table) Contains(tup value.Tuple) bool {
	_, ok := t.rows[tup.Key()]
	return ok
}

// ContainsKey reports whether a row with the given canonical key is
// present.
func (t *Table) ContainsKey(key string) bool {
	_, ok := t.rows[key]
	return ok
}

// Each calls fn for every row; iteration stops if fn returns false. Rows
// must not be mutated by fn. Iteration order is unspecified.
func (t *Table) Each(fn func(value.Tuple) bool) {
	for _, row := range t.rows {
		if !fn(row) {
			return
		}
	}
}

// Rows returns all rows, sorted, for deterministic display and testing.
func (t *Table) Rows() []value.Tuple {
	out := make([]value.Tuple, 0, len(t.rows))
	for _, row := range t.rows {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clear removes all rows but keeps index definitions.
func (t *Table) Clear() {
	t.rows = make(map[string]value.Tuple)
	t.bytes = 0
	for _, idx := range t.indexes {
		idx.entries = make(map[value.Value]map[string]struct{})
	}
}

// Clone returns a deep copy of the table, including built indexes.
func (t *Table) Clone() *Table {
	c := NewTable(t.name, t.arity)
	for key, row := range t.rows {
		c.rows[key] = row // rows are immutable once stored
		c.bytes += len(key)
	}
	for col := range t.indexes {
		c.EnsureIndex(col)
	}
	return c
}

// EnsureIndex builds (if needed) and returns the secondary index on the
// given column position.
func (t *Table) EnsureIndex(col int) {
	if col < 0 || col >= t.arity {
		panic(fmt.Sprintf("storage: %s has no column %d", t.name, col))
	}
	if _, ok := t.indexes[col]; ok {
		return
	}
	idx := &colIndex{col: col, entries: make(map[value.Value]map[string]struct{})}
	for key, row := range t.rows {
		idx.add(key, row)
	}
	t.indexes[col] = idx
}

// HasIndex reports whether an index exists on the column.
func (t *Table) HasIndex(col int) bool {
	_, ok := t.indexes[col]
	return ok
}

// IndexedCols returns the sorted list of indexed column positions.
func (t *Table) IndexedCols() []int {
	out := make([]int, 0, len(t.indexes))
	for c := range t.indexes {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Probe calls fn for every row whose column col equals v, using the index
// if one exists and scanning otherwise. Iteration stops if fn returns
// false.
func (t *Table) Probe(col int, v value.Value, fn func(value.Tuple) bool) {
	if idx, ok := t.indexes[col]; ok {
		for key := range idx.entries[v] {
			if !fn(t.rows[key]) {
				return
			}
		}
		return
	}
	for _, row := range t.rows {
		if row[col] == v {
			if !fn(row) {
				return
			}
		}
	}
}

// ProbeCount returns the number of rows with column col equal to v.
func (t *Table) ProbeCount(col int, v value.Value) int {
	if idx, ok := t.indexes[col]; ok {
		return len(idx.entries[v])
	}
	n := 0
	for _, row := range t.rows {
		if row[col] == v {
			n++
		}
	}
	return n
}

func (ci *colIndex) add(key string, row value.Tuple) {
	v := row[ci.col]
	set := ci.entries[v]
	if set == nil {
		set = make(map[string]struct{})
		ci.entries[v] = set
	}
	set[key] = struct{}{}
}

func (ci *colIndex) remove(key string, row value.Tuple) {
	v := row[ci.col]
	if set := ci.entries[v]; set != nil {
		delete(set, key)
		if len(set) == 0 {
			delete(ci.entries, v)
		}
	}
}
