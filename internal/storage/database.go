package storage

import (
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/value"
)

// Database is a named collection of tables — one peer's auxiliary store in
// the paper's architecture (§4: each peer keeps "its own copy of all
// peers' relation instances and provenance" locally).
type Database struct {
	tables map[string]*Table
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Create adds an empty table. It returns an error if the name is taken.
func (db *Database) Create(name string, arity int) (*Table, error) {
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	t := NewTable(name, arity)
	db.tables[name] = t
	return t, nil
}

// MustCreate is Create for static initialization paths; it panics on
// duplicates.
func (db *Database) MustCreate(name string, arity int) *Table {
	t, err := db.Create(name, arity)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table { return db.tables[name] }

// Drop removes a table (used for transient query workspaces).
func (db *Database) Drop(name string) { delete(db.tables, name) }

// Names returns all table names, sorted.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalRows sums row counts over all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.tables {
		n += t.Len()
	}
	return n
}

// TotalBytes sums canonical row bytes over all tables (Figure 6 "DB size").
func (db *Database) TotalBytes() int {
	n := 0
	for _, t := range db.tables {
		n += t.Bytes()
	}
	return n
}

// Clone deep-copies the database.
func (db *Database) Clone() *Database {
	c := NewDatabase()
	for n, t := range db.tables {
		c.tables[n] = t.Clone()
	}
	return c
}

// Dump renders non-empty tables (optionally filtered by prefix list) for
// debugging and the CLI.
func (db *Database) Dump(names ...string) string {
	var pick []string
	if len(names) == 0 {
		pick = db.Names()
	} else {
		pick = names
	}
	var b strings.Builder
	for _, n := range pick {
		t := db.tables[n]
		if t == nil || t.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s (%d rows):\n", n, t.Len())
		for _, row := range t.Rows() {
			fmt.Fprintf(&b, "  %s\n", row)
		}
	}
	return b.String()
}

// Delta is a set of insertions and deletions against one relation.
// Insertions and deletions are kept deduplicated and mutually exclusive:
// inserting a tuple cancels a pending deletion of it and vice versa (the
// paper assumes no data dependencies inside one published batch, §3.1).
// Entries are keyed rows, so each tuple is canonically encoded once when
// it enters the delta and the key rides along into table operations.
type Delta struct {
	ins map[string]value.Tuple
	del map[string]value.Tuple
}

// NewDelta returns an empty delta.
func NewDelta() *Delta {
	return &Delta{ins: make(map[string]value.Tuple), del: make(map[string]value.Tuple)}
}

// Insert records an insertion, cancelling any pending deletion of tup.
// The tuple is cloned; callers already holding a keyed row should use
// InsertRow.
func (d *Delta) Insert(tup value.Tuple) {
	d.InsertRow(value.NewRow(tup.Clone()))
}

// InsertRow is Insert for a pre-keyed row (no clone, no re-encode).
func (d *Delta) InsertRow(r value.Row) {
	if _, ok := d.del[r.Key]; ok {
		delete(d.del, r.Key)
		return
	}
	d.ins[r.Key] = r.Tuple
}

// Delete records a deletion, cancelling any pending insertion of tup.
// The tuple is cloned; callers already holding a keyed row should use
// DeleteRow.
func (d *Delta) Delete(tup value.Tuple) {
	d.DeleteRow(value.NewRow(tup.Clone()))
}

// DeleteRow is Delete for a pre-keyed row (no clone, no re-encode).
func (d *Delta) DeleteRow(r value.Row) {
	if _, ok := d.ins[r.Key]; ok {
		delete(d.ins, r.Key)
		return
	}
	d.del[r.Key] = r.Tuple
}

// Ins returns the sorted insertions.
func (d *Delta) Ins() []value.Tuple { return sortedTuples(d.ins) }

// Del returns the sorted deletions.
func (d *Delta) Del() []value.Tuple { return sortedTuples(d.del) }

// InsRows returns the sorted insertions as keyed rows.
func (d *Delta) InsRows() []value.Row { return sortedRows(d.ins) }

// DelRows returns the sorted deletions as keyed rows.
func (d *Delta) DelRows() []value.Row { return sortedRows(d.del) }

// Empty reports whether the delta holds no changes.
func (d *Delta) Empty() bool { return len(d.ins) == 0 && len(d.del) == 0 }

// Size returns the number of recorded changes.
func (d *Delta) Size() int { return len(d.ins) + len(d.del) }

func sortedTuples(m map[string]value.Tuple) []value.Tuple {
	out := make([]value.Tuple, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func sortedRows(m map[string]value.Tuple) []value.Row {
	out := make([]value.Row, 0, len(m))
	for key, t := range m {
		out = append(out, value.KeyedRow(t, key))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// DeltaSet maps relation names to deltas. It is the currency of update
// exchange: published edit logs become DeltaSets over local-contribution
// and rejection tables.
type DeltaSet map[string]*Delta

// At returns the delta for rel, creating it if needed.
func (ds DeltaSet) At(rel string) *Delta {
	d, ok := ds[rel]
	if !ok {
		d = NewDelta()
		ds[rel] = d
	}
	return d
}

// Insert records an insertion into rel.
func (ds DeltaSet) Insert(rel string, tup value.Tuple) { ds.At(rel).Insert(tup) }

// Delete records a deletion from rel.
func (ds DeltaSet) Delete(rel string, tup value.Tuple) { ds.At(rel).Delete(tup) }

// Empty reports whether every delta is empty.
func (ds DeltaSet) Empty() bool {
	for _, d := range ds {
		if !d.Empty() {
			return false
		}
	}
	return true
}

// Size returns the total number of changes across relations.
func (ds DeltaSet) Size() int {
	n := 0
	for _, d := range ds {
		n += d.Size()
	}
	return n
}

// Relations returns the sorted relation names with non-empty deltas.
func (ds DeltaSet) Relations() []string {
	out := make([]string, 0, len(ds))
	for n, d := range ds {
		if !d.Empty() {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
