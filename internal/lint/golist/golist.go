// Package golist loads typechecked packages for orchestralint using
// only the go command and the standard library — the hermetic stand-in
// for golang.org/x/tools/go/packages. It shells out to
//
//	go list -deps -export -json <patterns>
//
// which compiles every dependency and reports the path of each
// package's export data; target packages are then parsed from source
// and typechecked against that export data, exactly the way the
// toolchain's own vet driver works.
package golist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output we consume.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Package is one source-typechecked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// Load lists patterns in dir (working directory; "" = current), builds
// export data for the dependency closure, and typechecks every
// non-dependency match from source. Standard-library and error-bearing
// packages are skipped with an error only when they are roots.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := run(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(metas))
	var roots []*listPackage
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.DepOnly && !m.Standard {
			if m.Error != nil {
				return nil, fmt.Errorf("golist: %s: %s", m.ImportPath, m.Error.Err)
			}
			roots = append(roots, m)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, m := range roots {
		if len(m.GoFiles) == 0 {
			continue
		}
		files, err := ParseFiles(fset, m.Dir, m.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg, info, err := Check(m.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("golist: typechecking %s: %w", m.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: m.ImportPath,
			Dir:        m.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}

// run executes go list and decodes its JSON stream.
func run(dir string, patterns ...string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("golist: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []*listPackage
	for {
		m := new(listPackage)
		if err := dec.Decode(m); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("golist: decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// ExportFiles returns import path -> export data file for the
// dependency closure of patterns. Used by the analysistest harness to
// resolve standard-library imports of testdata packages.
func ExportFiles(dir string, patterns ...string) (map[string]string, error) {
	metas, err := run(dir, patterns...)
	if err != nil {
		return nil, err
	}
	files := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			files[m.ImportPath] = m.Export
		}
	}
	return files, nil
}

// ExportImporter returns a gc-export-data importer resolving import
// paths through lookup. The go/importer gc implementation reads the
// unified export format the toolchain's own `go list -export` emits.
// "unsafe" resolves to types.Unsafe directly — it has no export data.
func ExportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("golist: no export data for %q", path)
		}
		return os.Open(file)
	})
	return unsafeAwareImporter{gc}
}

type unsafeAwareImporter struct{ base types.Importer }

func (i unsafeAwareImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.base.Import(path)
}

// ParseFiles parses names (relative to dir unless absolute) with
// comments retained — directives live in comments.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("golist: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// Check typechecks one package's parsed files, returning the package
// and a fully populated types.Info.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := &types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// NewInfo allocates the types.Info maps every analyzer relies on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// IsTestFile reports whether a parsed file is a _test.go file.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
