// Package analysistest runs an orchestralint analyzer over a testdata
// tree and checks its diagnostics against // want comments — the
// hermetic equivalent of golang.org/x/tools/go/analysis/analysistest.
//
// Layout mirrors upstream: testdata/src/<importpath>/*.go. A package
// under testdata/src may import other packages under testdata/src
// (stubs standing in for real orchestra packages, so analyzers keyed on
// qualified names see the paths they expect) and the standard library
// (resolved via the toolchain's export data).
//
// An expectation is a comment on the flagged line:
//
//	bad()        // want "must not|regexp"
//	worse()      // want `backquoted` "second finding"
//
// Every diagnostic must match a want on its line and vice versa.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"orchestra/internal/lint/analysis"
	"orchestra/internal/lint/driver"
	"orchestra/internal/lint/golist"
)

// Run analyzes each named package (a path under testdata/src) and
// reports mismatches between diagnostics and want comments via t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	srcdir, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	ld, err := newLoader(srcdir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, pkgpath := range pkgs {
		files, pkg, info, err := ld.check(pkgpath)
		if err != nil {
			t.Errorf("analysistest: loading %s: %v", pkgpath, err)
			continue
		}
		diags, err := driver.RunPackage([]*analysis.Analyzer{a}, ld.fset, files, pkg, info)
		if err != nil {
			t.Errorf("analysistest: running %s on %s: %v", a.Name, pkgpath, err)
			continue
		}
		checkWants(t, ld.fset, files, diags)
	}
}

// loader typechecks testdata packages from source, resolving imports
// first inside testdata/src, then through the toolchain's export data.
type loader struct {
	srcdir string
	fset   *token.FileSet
	memo   map[string]*types.Package
	std    types.Importer
}

func newLoader(srcdir string) (*loader, error) {
	ld := &loader{srcdir: srcdir, fset: token.NewFileSet(), memo: make(map[string]*types.Package)}
	// Collect every import that is not itself a testdata package, in one
	// pass over the whole tree, and resolve their export data with a
	// single go list run.
	external := map[string]bool{}
	err := filepath.WalkDir(srcdir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, perr := golist.ParseFiles(fset, "", []string{path})
		if perr != nil {
			return perr
		}
		for _, imp := range f[0].Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p == "" || p == "unsafe" {
				continue
			}
			if _, serr := os.Stat(filepath.Join(srcdir, p)); serr != nil {
				external[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(external) > 0 {
		patterns := make([]string, 0, len(external))
		for p := range external {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		if exports, err = golist.ExportFiles("", patterns...); err != nil {
			return nil, err
		}
	}
	ld.std = golist.ExportImporter(ld.fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	return ld, nil
}

// Import implements types.Importer over the testdata tree (memoized),
// so stub packages can import each other by their orchestra paths.
func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.memo[path]; ok {
		return pkg, nil
	}
	if _, err := os.Stat(filepath.Join(ld.srcdir, path)); err != nil {
		return ld.std.Import(path)
	}
	_, pkg, _, err := ld.check(path)
	return pkg, err
}

func (ld *loader) check(pkgpath string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(ld.srcdir, pkgpath)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	files, err := golist.ParseFiles(ld.fset, "", names)
	if err != nil {
		return nil, nil, nil, err
	}
	info := golist.NewInfo()
	conf := &types.Config{Importer: ld}
	pkg, err := conf.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	ld.memo[pkgpath] = pkg
	return files, pkg, info, nil
}

// want is one expectation: a line that must receive a matching
// diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, pat := range parsePatterns(t, posn, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", posn, pat, err)
						continue
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re, text: pat})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.text)
		}
	}
}

// parsePatterns splits a want payload into its quoted regexps,
// accepting both "double" and `backquote` quoting.
func parsePatterns(t *testing.T, posn token.Position, s string) []string {
	t.Helper()
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Errorf("%s: malformed want payload %q", posn, s)
			return pats
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Errorf("%s: unterminated want pattern %q", posn, s)
			return pats
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Errorf("%s: bad want pattern %s: %v", posn, raw, err)
			return pats
		}
		pats = append(pats, pat)
		s = s[end+2:]
	}
}
