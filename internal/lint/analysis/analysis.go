// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library. The module is hermetic (no external dependencies may be
// fetched at build time), so orchestralint cannot depend on x/tools;
// this package provides the same shape — an Analyzer runs over one
// typechecked package (a Pass) and reports Diagnostics — so the
// analyzers would port to the upstream API mechanically if the module
// ever grows the dependency.
//
// Deliberate deviations from upstream: there is no fact propagation, no
// Requires graph, and no suggested fixes. There is one addition:
// suppression directives. A comment of the form
//
//	//orchestralint:ignore <analyzer> <reason>
//
// on (or immediately above) a line suppresses that analyzer's
// diagnostics for the line. The reason is mandatory — an undocumented
// exception is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one orchestralint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //orchestralint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by -help: the first
	// sentence states the invariant, the rest says where it came from.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Pass holds one typechecked package for one analyzer run. Unlike
// upstream there are no dependency facts: every pass is independent.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // syntax trees, test files excluded by the driver
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives diagnostics that survived directive filtering.
	report func(Diagnostic)
	// ignores maps file name -> set of lines suppressed for this
	// analyzer (populated from //orchestralint:ignore directives).
	ignores map[string]map[int]bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// NewPass assembles a Pass and computes the directive suppressions for
// the given analyzer. The driver owns file filtering (tests out) and
// diagnostic routing.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    report,
		ignores:   make(map[string]map[int]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseIgnore(c.Text)
				if !ok || (name != a.Name && name != "all") {
					continue
				}
				posn := fset.Position(c.Pos())
				lines := p.ignores[posn.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					p.ignores[posn.Filename] = lines
				}
				// The directive covers its own line (trailing comment) and
				// the next line (a comment on the line above the statement).
				lines[posn.Line] = true
				lines[posn.Line+1] = true
			}
		}
	}
	return p
}

// parseIgnore recognizes "//orchestralint:ignore <name> <reason>" and
// returns the analyzer name. A directive without a reason is not a
// valid suppression.
func parseIgnore(text string) (string, bool) {
	const prefix = "//orchestralint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	fields := strings.Fields(text[len(prefix):])
	if len(fields) < 2 { // name plus at least one word of reason
		return "", false
	}
	return fields[0], true
}

// Reportf records a finding at pos unless a directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	posn := p.Fset.Position(pos)
	if lines := p.ignores[posn.Filename]; lines != nil && lines[posn.Line] {
		return
	}
	p.report(Diagnostic{Pos: posn, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// CalleeFunc resolves the *types.Func a call expression invokes —
// through selections (methods, including interface methods) and plain
// identifiers — or nil for calls of function values, built-ins, and
// type conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			// Package-qualified call: pkg.Func.
			obj = p.TypesInfo.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// CalleeName returns a stable qualified name for a call's target:
// "path.Func" for package functions, "(path.Recv).Method" for methods
// (pointerness stripped), or "" when the target is not a named
// function. Interface methods resolve to the interface's name.
func (p *Pass) CalleeName(call *ast.CallExpr) string {
	return FuncName(p.CalleeFunc(call))
}

// FuncName renders fn as CalleeName describes, "" for nil.
func FuncName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		if fn.Pkg() == nil { // universe scope (error.Error)
			return fn.Name()
		}
		return fn.Pkg().Path() + "." + fn.Name()
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "(" + obj.Name() + ")." + fn.Name()
	}
	return "(" + obj.Pkg().Path() + "." + obj.Name() + ")." + fn.Name()
}

// NamedType resolves an expression's type to its *types.Named core,
// unwrapping pointers and aliases; nil when the type is unnamed.
func (p *Pass) NamedType(e ast.Expr) *types.Named {
	tv, ok := p.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return NamedOf(tv.Type)
}

// NamedOf unwraps pointers and aliases down to a *types.Named.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// TypeName renders a named type as "pkgpath.Name" ("Name" for
// universe/builtin scope), or "" for nil.
func TypeName(named *types.Named) string {
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
