package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"

	"orchestra/internal/lint/analysis"
	"orchestra/internal/lint/golist"
)

// vetConfig mirrors the JSON configuration cmd/go writes for each
// `go vet -vettool` compilation unit (the same contract the upstream
// unitchecker consumes). Fields we do not use are still listed so the
// decoder documents the protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one vet compilation unit and returns the process
// exit code: 0 clean, 2 findings, 1 hard failure. go vet treats any
// nonzero exit as a failed package and relays our stderr.
func unitcheck(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orchestralint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "orchestralint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The driver requires the facts file to exist even though our
	// analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "orchestralint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency unit: analyzed only for facts, of which we have none.
		return 0
	}
	if len(cfg.GoFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	files, err := golist.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "orchestralint: %v\n", err)
		return 1
	}
	imp := golist.ExportImporter(fset, func(path string) (string, bool) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		return file, ok
	})
	conf := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := golist.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "orchestralint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := RunPackage(analyzers, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orchestralint: %v\n", err)
		return 1
	}
	Sort(diags)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printVersion implements the -V=full tool-identity protocol cmd/go
// uses to fingerprint a vettool for build caching: the output must
// name the tool and include a content-derived build ID, so editing the
// analyzers invalidates cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil)[:16])
}
