// Package driver runs a set of orchestralint analyzers, either
// standalone over `go list` patterns or as a `go vet -vettool` plugin
// (see unitchecker.go). It is the hermetic stand-in for the upstream
// multichecker/unitchecker pair.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"orchestra/internal/lint/analysis"
	"orchestra/internal/lint/golist"
)

// Main is cmd/orchestralint's entry point. Invocation forms:
//
//	orchestralint [-json] packages...   standalone: load and check
//	orchestralint file.cfg              vet unit protocol (go vet -vettool)
//	orchestralint -V=full               vet tool-identity protocol
//	orchestralint -flags                vet flag-discovery protocol
//
// Standalone exit status: 0 clean, 1 findings, 2 hard failure.
func Main(analyzers []*analysis.Analyzer) {
	args := os.Args[1:]
	jsonOut := false
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch arg := args[0]; {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			// We expose no analyzer flags to go vet.
			fmt.Println("[]")
			return
		case arg == "-json" || arg == "--json":
			jsonOut = true
			args = args[1:]
		case arg == "-help" || arg == "--help" || arg == "-h":
			printHelp(analyzers)
			return
		default:
			fmt.Fprintf(os.Stderr, "orchestralint: unknown flag %s\n", arg)
			os.Exit(2)
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], analyzers))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	diags, err := Check(analyzers, "", args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orchestralint: %v\n", err)
		os.Exit(2)
	}
	if jsonOut {
		writeJSON(os.Stdout, diags)
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// Check loads patterns and runs every analyzer over every loaded
// package, returning diagnostics sorted by position.
func Check(analyzers []*analysis.Analyzer, dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := golist.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	Sort(diags)
	return diags, nil
}

// RunPackage runs the analyzers over one typechecked package. Test
// files are excluded up front: the invariants govern production code,
// and tests legitimately construct raw rows, write files directly, and
// use background contexts.
func RunPackage(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]analysis.Diagnostic, error) {
	src := files[:0:0]
	for _, f := range files {
		if !golist.IsTestFile(fset, f) {
			src = append(src, f)
		}
	}
	if len(src) == 0 {
		return nil, nil
	}
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, src, pkg, info, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
	}
	return diags, nil
}

// Sort orders diagnostics by file, line, column, analyzer.
func Sort(diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// jsonDiagnostic is the -json wire form, one object per finding — easy
// for the nightly CI artifact to diff across runs.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []analysis.Diagnostic) {
	out := make([]jsonDiagnostic, len(diags))
	for i, d := range diags {
		out[i] = jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

func printHelp(analyzers []*analysis.Analyzer) {
	fmt.Println("orchestralint enforces this repository's concurrency, durability, and hot-path invariants.")
	fmt.Println()
	fmt.Println("Usage: orchestralint [-json] [packages]")
	fmt.Println("       go vet -vettool=$(which orchestralint) [packages]")
	fmt.Println()
	fmt.Println("Suppress a finding with '//orchestralint:ignore <analyzer> <reason>'.")
	fmt.Println()
	fmt.Println("Analyzers:")
	for _, a := range analyzers {
		fmt.Printf("  %-12s %s\n", a.Name, strings.Split(a.Doc, "\n")[0])
	}
}
