// Testdata for errcmp: identity comparisons against sentinel errors.
package errcmpdata

import (
	"errors"
	"io"
)

// ErrStale is a package-local sentinel.
var ErrStale = errors.New("stale")

func compare(err error) bool {
	if err == io.EOF { // want "error compared with == against sentinel io.EOF"
		return true
	}
	if err != ErrStale { // want "error compared with != against sentinel ErrStale"
		return false
	}
	return true
}

func flipped(err error) bool {
	return io.EOF == err // want "error compared with == against sentinel io.EOF"
}

func fine(err error) bool {
	if errors.Is(err, io.EOF) {
		return true
	}
	return errors.Is(err, ErrStale)
}

func nilCompare(err error) bool {
	// nil is not a sentinel; comparing against it is the normal idiom.
	return err == nil
}

func switches(err error) int {
	switch err {
	case io.EOF: // want "error switched by identity against sentinel io.EOF"
		return 1
	case nil:
		return 0
	}
	switch {
	case errors.Is(err, ErrStale):
		return 2
	}
	return 3
}

func nonError(a, b string) bool {
	// Equality on non-errors is out of scope.
	return a == b
}

func suppressed(err error) bool {
	//orchestralint:ignore errcmp exercising the reasoned escape hatch
	return err == io.EOF
}
