package errcmp

import (
	"testing"

	"orchestra/internal/lint/analysistest"
)

func TestErrcmp(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "errcmpdata")
}
