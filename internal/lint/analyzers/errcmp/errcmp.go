// Package errcmp flags ==/!= comparisons (and switch cases) matching an
// error against a sentinel error value. The torn-tail log repair and the
// fslock paths (PR 2) classify failures by sentinel identity; a sentinel
// that arrives wrapped in fmt.Errorf("...: %w", err) silently falls
// through an == comparison, so errors.Is is required everywhere.
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"orchestra/internal/lint/analysis"
)

// Analyzer is the errcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc: "require errors.Is instead of ==/!= against sentinel errors\n\n" +
		"Sentinels routinely arrive wrapped (%w); identity comparison drops the\n" +
		"match silently. Introduced with the torn-tail repair and fslock paths (PR 2).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if name := sentinelName(pass, n.X, n.Y); name != "" {
					pass.Reportf(n.Pos(), "error compared with %s against sentinel %s; use errors.Is (sentinels may arrive wrapped)", n.Op, name)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(pass, n.Tag) {
					return true
				}
				for _, clause := range n.Body.List {
					cc := clause.(*ast.CaseClause)
					for _, e := range cc.List {
						if name := sentinelOf(pass, e); name != "" {
							pass.Reportf(e.Pos(), "error switched by identity against sentinel %s; use errors.Is (sentinels may arrive wrapped)", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelName reports the qualified name of the sentinel side of an
// error comparison, "" when neither side is a sentinel or when the
// other side is not an error.
func sentinelName(pass *analysis.Pass, x, y ast.Expr) string {
	if name := sentinelOf(pass, x); name != "" && isErrorType(pass, y) {
		return name
	}
	if name := sentinelOf(pass, y); name != "" && isErrorType(pass, x) {
		return name
	}
	return ""
}

// sentinelOf reports whether e is a use of a package-level error
// variable (io.EOF, os.ErrNotExist, a local var ErrFoo, ...) and
// returns its printable name.
func sentinelOf(pass *analysis.Pass, e ast.Expr) string {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return ""
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !types.Implements(v.Type(), errorInterface()) {
		return ""
	}
	if v.Pkg().Path() == pass.Pkg.Path() {
		return v.Name()
	}
	return v.Pkg().Name() + "." + v.Name()
}

func isErrorType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, errorInterface())
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}
