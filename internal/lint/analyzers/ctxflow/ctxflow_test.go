package ctxflow

import (
	"testing"

	"orchestra/internal/lint/analysistest"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"orchestra/internal/ctxdata",
		"orchestra/internal/benchharness",
		"orchestra/cmdtool",
	)
}
