// Package ctxflow guards the cancellation plumbing (PR 1): internal
// library code never manufactures its own context, never silently drops
// a ctx parameter, and every unbounded (fixpoint-shaped) loop in a
// context-aware function consults its context — the engine's semi-naive
// rounds, the provenance deletion cascade, and the exchange passes all
// rely on cancellation reaching the innermost loop.
//
// The codebase's APIs are context-first throughout — the PR 9 bus
// redesign swept the last <Name>/<Name>Context compat pairs away — so
// no wrapper idiom is excused: any context.Background()/TODO() in
// internal library code is a defect.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"orchestra/internal/lint/analysis"
)

// Scope is the import-path prefix the invariant governs.
var Scope = "orchestra/internal/"

// Exempt lists packages excused wholesale: the benchmark harness is a
// measurement driver with no caller context to thread.
var Exempt = []string{
	"orchestra/internal/benchharness",
}

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "internal code threads contexts: no Background/TODO, no dropped ctx, no uncancellable fixpoint loop\n\n" +
		"Cancellation was plumbed through every engine and provenance fixpoint in\n" +
		"PR 1; a context.Background() or a loop that never consults ctx quietly\n" +
		"severs it.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, Scope) {
		return nil
	}
	for _, ex := range Exempt {
		if path == ex || strings.HasPrefix(path, ex+"/") {
			return nil
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBackground(pass, fd)
			checkCtxParam(pass, fd.Name.Name, fd.Type, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkCtxParam(pass, "func literal", lit.Type, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkBackground flags context.Background()/TODO() calls.
func checkBackground(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch pass.CalleeName(call) {
		case "context.Background", "context.TODO":
			pass.Reportf(call.Pos(), "%s in internal library code severs cancellation; accept a ctx parameter instead", pass.CalleeName(call))
		}
		return true
	})
}

// checkCtxParam flags a named, unused ctx parameter and uncancellable
// unbounded loops in context-aware functions.
func checkCtxParam(pass *analysis.Pass, fname string, ftype *ast.FuncType, body *ast.BlockStmt) {
	ctxObj := ctxParam(pass, ftype)
	if ctxObj == nil || body == nil {
		return
	}
	if !usesObj(pass, body, ctxObj) {
		pass.Reportf(ctxObj.Pos(), "%s takes ctx but never uses it; thread it through (or name it _ to declare the drop)", fname)
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && ctxParam(pass, lit.Type) != nil {
			// The literal declares its own ctx; its loops are checked
			// against that one, not ours.
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		// Bounded three-clause loops (for i := 0; i < n; i++) are not
		// fixpoint-shaped; `for {}` and `for cond {}` are.
		if loop.Init != nil || loop.Post != nil {
			return true
		}
		// Consulting any context — the parameter or one derived from it
		// (runCtx := context.WithCancel(ctx)) — keeps the loop
		// cancellable; derivation is the only way to mint a non-ctx
		// Context here, since Background/TODO are banned above.
		if (loop.Cond != nil && usesContext(pass, loop.Cond)) || usesContext(pass, loop.Body) {
			return true
		}
		pass.Reportf(loop.Pos(), "unbounded loop in context-aware %s never consults ctx; fixpoint loops must honor cancellation (check ctx.Err() per round)", fname)
		return true
	})
}

// ctxParam returns the object of a parameter named ctx with type
// context.Context, nil if absent (including when named _).
func ctxParam(pass *analysis.Pass, ftype *ast.FuncType) types.Object {
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			if name.Name != "ctx" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && analysis.TypeName(analysis.NamedOf(obj.Type())) == "context.Context" {
				return obj
			}
		}
	}
	return nil
}

// usesContext reports whether any identifier under n has type
// context.Context.
func usesContext(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj != nil && analysis.TypeName(analysis.NamedOf(obj.Type())) == "context.Context" {
			found = true
		}
		return true
	})
	return found
}

// usesObj reports whether any identifier under n resolves to obj.
func usesObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}
