// Testdata for ctxflow: the benchmark harness is exempt wholesale.
package benchharness

import "context"

func Run() context.Context {
	return context.Background()
}
