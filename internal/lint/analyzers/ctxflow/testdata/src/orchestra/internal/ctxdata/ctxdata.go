// Testdata for ctxflow: manufactured contexts, dropped ctx parameters,
// and uncancellable fixpoint loops in internal library code.
package ctxdata

import "context"

type Client struct{}

func (c *Client) Fetch(ctx context.Context, n int) error { return ctx.Err() }

// The pre-PR-9 compat-wrapper shape — one return delegating to a
// <Name>Context twin with a fresh background context — is no longer
// excused: APIs are context-first, so the wrapper is a defect.
func (c *Client) FetchLegacy(n int) error {
	return c.Fetch(context.Background(), n) // want "context.Background in internal library code"
}

func manufactured() context.Context {
	return context.Background() // want "context.Background in internal library code"
}

func placeholder() context.Context {
	return context.TODO() // want "context.TODO in internal library code"
}

func dropped(ctx context.Context, n int) int { // want "dropped takes ctx but never uses it"
	return n + 1
}

func declaredDrop(_ context.Context, n int) int {
	// Naming the parameter _ declares the drop; nothing to flag.
	return n + 1
}

func fixpoint(ctx context.Context, work func() bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for { // want "unbounded loop in context-aware fixpoint never consults ctx"
		if !work() {
			return nil
		}
	}
}

func cancellable(ctx context.Context, work func() bool) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !work() {
			return nil
		}
	}
}

// derivedLoop consults a context derived from ctx, which keeps the loop
// cancellable (the worker-pool idiom in internal/exchange).
func derivedLoop(ctx context.Context, work func(context.Context) error) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	for {
		if err := work(runCtx); err != nil {
			return err
		}
	}
}

func bounded(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	_ = ctx.Err()
	return total
}

// ownScope: a literal declaring its own ctx is checked against that
// one, not the enclosing function's.
func ownScope(ctx context.Context) func(context.Context, func() bool) {
	_ = ctx.Err()
	return func(ctx context.Context, work func() bool) {
		for {
			if ctx.Err() != nil || !work() {
				return
			}
		}
	}
}
