// Testdata for ctxflow: packages outside orchestra/internal/ (commands,
// the public API surface) may mint their own root contexts.
package cmdtool

import "context"

func Main() context.Context {
	return context.Background()
}
