// Testdata for rowintern: Row construction and key encoding on a
// hot-path package.
package storage

import "orchestra/internal/value"

func adHoc(tup value.Tuple) value.Row {
	return value.Row{Tuple: tup, Key: tup.Key()} // want "composite literal" `Tuple\.Key\(\) allocates`
}

func bareKey(tup value.Tuple) string {
	return tup.Key() // want `Tuple\.Key\(\) allocates`
}

func interned(tup value.Tuple) value.Row {
	return value.NewRow(tup)
}

func preKeyed(tup value.Tuple, key string) value.Row {
	return value.KeyedRow(tup, key)
}

func scratch(tup value.Tuple, buf []byte) []byte {
	return tup.EncodeKey(buf[:0])
}

func clearSlot(rows []value.Row) {
	// The zero value is not a key construction.
	rows[0] = value.Row{}
}
