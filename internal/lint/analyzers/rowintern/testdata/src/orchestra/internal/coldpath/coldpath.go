// Testdata for rowintern: packages off the hot path may build rows
// however they like.
package coldpath

import "orchestra/internal/value"

func adHoc(tup value.Tuple) value.Row {
	return value.Row{Tuple: tup, Key: tup.Key()}
}
