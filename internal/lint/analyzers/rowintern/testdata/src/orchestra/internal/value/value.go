// Stub of orchestra/internal/value: just enough surface for rowintern's
// qualified-name checks.
package value

type Tuple []string

func (t Tuple) Key() string { return "" }

func (t Tuple) EncodeKey(b []byte) []byte { return b }

func (t Tuple) Clone() Tuple { return t }

type Row struct {
	Tuple Tuple
	Key   string
}

func NewRow(t Tuple) Row { return Row{Tuple: t, Key: t.Key()} }

func KeyedRow(t Tuple, key string) Row { return Row{Tuple: t, Key: key} }
