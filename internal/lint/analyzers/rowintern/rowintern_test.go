package rowintern

import (
	"testing"

	"orchestra/internal/lint/analysistest"
)

func TestRowintern(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"orchestra/internal/storage",
		"orchestra/internal/coldpath",
	)
}
