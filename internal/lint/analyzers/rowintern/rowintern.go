// Package rowintern guards the keyed-row discipline of the hot paths
// (PR 3): a tuple is canonically encoded exactly once, when it becomes
// a value.Row, and the key then travels with the tuple through storage,
// deltas, edit logs, and provenance refs. Inside the hot-path packages
// it flags constructions that re-encode or that build Rows whose key is
// not provably the tuple's encoding.
package rowintern

import (
	"go/ast"

	"orchestra/internal/lint/analysis"
)

// Packages lists the hot-path packages the invariant governs.
var Packages = []string{
	"orchestra/internal/engine",
	"orchestra/internal/storage",
	"orchestra/internal/core",
}

const (
	rowType  = "orchestra/internal/value.Row"
	tupleKey = "(orchestra/internal/value.Tuple).Key"
)

// Analyzer is the rowintern pass.
var Analyzer = &analysis.Analyzer{
	Name: "rowintern",
	Doc: "hot paths must key tuples through value.NewRow/KeyedRow, not ad-hoc encoding\n\n" +
		"A value.Row literal can pair a tuple with a stale or foreign key, and\n" +
		"Tuple.Key() allocates a fresh string per call — both defeat the PR 3\n" +
		"interning that storage, deltas, and provenance refs rely on.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				// value.Row{} is the zero value (map misses, slot
				// clearing), not a key construction.
				if len(n.Elts) == 0 {
					return true
				}
				if named := pass.NamedType(n); analysis.TypeName(named) == rowType {
					pass.Reportf(n.Pos(), "value.Row composite literal on a hot path; use value.NewRow (encode once) or value.KeyedRow (key already in hand) so Key provably matches Tuple")
				}
			case *ast.CallExpr:
				if pass.CalleeName(n) == tupleKey {
					pass.Reportf(n.Pos(), "Tuple.Key() allocates a fresh key string; on hot paths reuse the Row's interned key or EncodeKey into a scratch buffer")
				}
			}
			return true
		})
	}
	return nil
}

func inScope(path string) bool {
	for _, p := range Packages {
		if path == p {
			return true
		}
	}
	return false
}
