// Package planorder guards the plan-determinism split of the read path
// (PR 8): maintenance and exchange evaluators are built with engine.New
// and must produce byte-identical fixed-order plans run after run, while
// the interactive query path — core's query.go and explain.go — plans
// through engine.NewQuery, which opts into table statistics, cost-based
// join reordering, and warm-index pickup. Crossing the line in either
// direction silently breaks an invariant: NewQuery on a maintenance
// path makes incremental passes depend on live statistics (plans drift
// between runs and between replicas), and New on the query path pins
// user queries to the mapping-declared atom order, discarding the
// optimizer.
package planorder

import (
	"go/ast"
	"path/filepath"

	"orchestra/internal/lint/analysis"
)

// corePkg is the package whose files are split into the two planes.
const corePkg = "orchestra/internal/core"

// QueryPathFiles are the core files that form the interactive read
// path; only they may construct query-mode evaluators.
var QueryPathFiles = map[string]bool{
	"query.go":   true,
	"explain.go": true,
}

const (
	engineNew      = "orchestra/internal/engine.New"
	engineNewQuery = "orchestra/internal/engine.NewQuery"
)

// Analyzer is the planorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "planorder",
	Doc: "maintenance plans use engine.New, the read path uses engine.NewQuery\n\n" +
		"engine.NewQuery enables statistics-driven join reordering and warm-index\n" +
		"pickup, so its plans change as data changes — fine for one-shot queries,\n" +
		"fatal for maintenance passes whose plans must stay byte-identical across\n" +
		"runs and replicas. Only core's query path (query.go, explain.go) may call\n" +
		"it, and that path must not fall back to the fixed-order engine.New.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The engine package itself defines both constructors and may wire
	// them however its own tests need.
	if pass.Pkg.Path() == "orchestra/internal/engine" {
		return nil
	}
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		onQueryPath := pass.Pkg.Path() == corePkg && QueryPathFiles[base]
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch pass.CalleeName(call) {
			case engineNewQuery:
				if !onQueryPath {
					pass.Reportf(call.Pos(), "engine.NewQuery outside core's query path: its statistics-driven plans are not run-to-run deterministic; maintenance and exchange evaluators must use engine.New")
				}
			case engineNew:
				if onQueryPath {
					pass.Reportf(call.Pos(), "engine.New on the query path pins the mapping-declared atom order; interactive queries must plan through engine.NewQuery (cost-based ordering, warm-index pickup)")
				}
			}
			return true
		})
	}
	return nil
}
