// Testdata for planorder: no package outside core's query path may
// construct query-mode evaluators, whatever its file names.
package other

import "orchestra/internal/engine"

func build() (*engine.Eval, error) {
	return engine.NewQuery(engine.Options{}) // want `engine\.NewQuery outside core's query path`
}

func fine() (*engine.Eval, error) {
	return engine.New(engine.Options{})
}
