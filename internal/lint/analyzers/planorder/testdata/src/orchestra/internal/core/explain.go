// Testdata for planorder: explain.go shares the query path's rule.
package core

import "orchestra/internal/engine"

func explain() (*engine.Eval, error) {
	return engine.NewQuery(engine.Options{CostBased: true})
}
