// Testdata for planorder: maintenance files must build deterministic
// fixed-order evaluators.
package core

import "orchestra/internal/engine"

func maintain() (*engine.Eval, error) {
	return engine.New(engine.Options{})
}

func driftingMaintain() (*engine.Eval, error) {
	return engine.NewQuery(engine.Options{}) // want `engine\.NewQuery outside core's query path`
}
