// Testdata for planorder: query.go is on the query path, so NewQuery
// is the only legal constructor here.
package core

import "orchestra/internal/engine"

func compileQuery() (*engine.Eval, error) {
	return engine.NewQuery(engine.Options{CostBased: true})
}

func fixedOrderQuery() (*engine.Eval, error) {
	return engine.New(engine.Options{}) // want `engine\.New on the query path`
}
