// Stub of orchestra/internal/engine: just enough surface for
// planorder's qualified-name checks.
package engine

type Options struct {
	CostBased bool
}

type Eval struct{}

func New(opts Options) (*Eval, error) { return &Eval{}, nil }

func NewQuery(opts Options) (*Eval, error) { return &Eval{}, nil }
