package planorder

import (
	"testing"

	"orchestra/internal/lint/analysistest"
)

func TestPlanorder(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"orchestra/internal/core",
		"orchestra/internal/other",
	)
}
