package locksafe

import (
	"testing"

	"orchestra/internal/lint/analysistest"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "orchestra")
}
