// Stub of orchestra/internal/obs: just enough surface for locksafe's
// qualified-name checks. Registration and rendering block; emission
// (Inc/Add/Set/Observe) is atomics-only and allowed under the lock.
package obs

import "io"

type Label struct{ Key, Value string }

func L(key, value string) Label { return Label{Key: key, Value: value} }

type Counter struct{}

func (c *Counter) Inc()        {}
func (c *Counter) Add(n int64) {}

type Gauge struct{}

func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return &Counter{} }
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge     { return &Gauge{} }
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
}
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return &Histogram{}
}
func (r *Registry) WritePrometheus(w io.Writer) error { return nil }

type PassTrace struct{}

type Tracer struct{}

func (t *Tracer) Add(p *PassTrace)        {}
func (t *Tracer) Last(n int) []*PassTrace { return nil }
