// Stub of orchestra/internal/core: just enough surface for locksafe's
// qualified-name checks.
package core

type Spec struct{}

type View struct{}

func NewView(spec *Spec, owner string) (*View, error) { return &View{}, nil }

func (v *View) Recompile(spec *Spec) error { return nil }
