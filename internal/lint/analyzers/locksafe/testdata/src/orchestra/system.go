// Testdata for locksafe: blocking work under orchestra.System.mu and
// lock/unlock imbalance on early returns.
package orchestra

import (
	"sync"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/obs"
)

type System struct {
	mu     sync.RWMutex
	spec   *core.Spec
	views  map[string]*core.View
	reg    *obs.Registry
	passes *obs.Counter
	tracer *obs.Tracer
}

func (s *System) compileUnderLock(owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := core.NewView(s.spec, owner) // want "NewView .* called while s.mu — the System lock — is held"
	if err != nil {
		return err
	}
	s.views[owner] = v
	return nil
}

func (s *System) recompileUnderLock(owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.views[owner].Recompile(s.spec) // want "Recompile .* called while s.mu"
}

func (s *System) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep \(sleeps\) called while s.mu`
	s.mu.Unlock()
}

// compileOutside is the PR 5 discipline: compile first, lock only to
// install.
func (s *System) compileOutside(owner string) error {
	v, err := core.NewView(s.spec, owner)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.views[owner] = v
	s.mu.Unlock()
	return nil
}

func (s *System) leaky(owner string) *core.View {
	s.mu.RLock()
	v, ok := s.views[owner]
	if !ok {
		return nil // want "return while s.mu is locked with no deferred unlock"
	}
	s.mu.RUnlock()
	return v
}

func (s *System) balanced(owner string) *core.View {
	s.mu.RLock()
	v, ok := s.views[owner]
	if !ok {
		s.mu.RUnlock()
		return nil
	}
	s.mu.RUnlock()
	return v
}

func (s *System) deferred(owner string) *core.View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.views[owner]
}

// spawn: a goroutine does not run under the caller's critical section.
func (s *System) spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
}

// registerUnderLock: instrument registration takes the registry lock
// and must stay outside the System's critical sections (PR 7).
func (s *System) registerUnderLock(owner string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.reg.Counter("orchestra_exchange_passes_total", "passes", obs.L("view", owner)) // want "Counter .* called while s.mu"
	c.Inc()
}

// traceUnderLock: the trace ring buffer has its own mutex; publishing a
// pass trace under the System lock nests the two.
func (s *System) traceUnderLock(p *obs.PassTrace) {
	s.mu.Lock()
	s.tracer.Add(p) // want "Add .* called while s.mu"
	s.mu.Unlock()
}

// emitUnderLock is the PR 7 discipline: pre-resolved handles emit with
// atomics only, so emission inside the critical section is legal.
func (s *System) emitUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.passes.Inc()
	s.passes.Add(2)
}

// registerOutside resolves the handle first, locks only to install.
func (s *System) registerOutside(owner string) {
	c := s.reg.Counter("orchestra_exchange_passes_total", "passes", obs.L("view", owner))
	s.mu.Lock()
	s.passes = c
	s.mu.Unlock()
}

// box is not a guarded type; blocking under its lock is someone else's
// policy call.
type box struct{ mu sync.Mutex }

func (b *box) sleepy() {
	b.mu.Lock()
	time.Sleep(time.Millisecond)
	b.mu.Unlock()
}
