// Testdata for locksafe: blocking work under orchestra.System.mu and
// lock/unlock imbalance on early returns.
package orchestra

import (
	"sync"
	"time"

	"orchestra/internal/core"
)

type System struct {
	mu    sync.RWMutex
	spec  *core.Spec
	views map[string]*core.View
}

func (s *System) compileUnderLock(owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := core.NewView(s.spec, owner) // want "NewView .* called while s.mu — the System lock — is held"
	if err != nil {
		return err
	}
	s.views[owner] = v
	return nil
}

func (s *System) recompileUnderLock(owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.views[owner].Recompile(s.spec) // want "Recompile .* called while s.mu"
}

func (s *System) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep \(sleeps\) called while s.mu`
	s.mu.Unlock()
}

// compileOutside is the PR 5 discipline: compile first, lock only to
// install.
func (s *System) compileOutside(owner string) error {
	v, err := core.NewView(s.spec, owner)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.views[owner] = v
	s.mu.Unlock()
	return nil
}

func (s *System) leaky(owner string) *core.View {
	s.mu.RLock()
	v, ok := s.views[owner]
	if !ok {
		return nil // want "return while s.mu is locked with no deferred unlock"
	}
	s.mu.RUnlock()
	return v
}

func (s *System) balanced(owner string) *core.View {
	s.mu.RLock()
	v, ok := s.views[owner]
	if !ok {
		s.mu.RUnlock()
		return nil
	}
	s.mu.RUnlock()
	return v
}

func (s *System) deferred(owner string) *core.View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.views[owner]
}

// spawn: a goroutine does not run under the caller's critical section.
func (s *System) spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
}

// box is not a guarded type; blocking under its lock is someone else's
// policy call.
type box struct{ mu sync.Mutex }

func (b *box) sleepy() {
	b.mu.Lock()
	time.Sleep(time.Millisecond)
	b.mu.Unlock()
}
