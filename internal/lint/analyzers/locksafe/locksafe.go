// Package locksafe guards the System-lock discipline (PRs 1, 4, 5): no
// blocking work — view compilation, publication-bus round trips, HTTP,
// checkpoint/fsync paths — may run while orchestra.System.mu is held
// (every reader of the views map would stall behind it), and a manually
// released mutex must be released on every early-return path.
//
// The analysis is intraprocedural and deliberately conservative: lock
// state is tracked per function over simple selector expressions
// ("s.mu"), branches are explored with a copy of the state, and nested
// function literals are independent scopes (they run under their own
// schedule, not the enclosing critical section).
package locksafe

import (
	"go/ast"

	"orchestra/internal/lint/analysis"
)

// LockSpec names one guarded lock: a mutex-typed field of a named type
// whose critical sections must stay non-blocking.
type LockSpec struct {
	Type  string // qualified named type, e.g. "orchestra.System"
	Field string // mutex field name, e.g. "mu"
}

// Guarded lists the locks whose critical sections must not block.
var Guarded = []LockSpec{
	{Type: "orchestra.System", Field: "mu"},
}

// Blocking maps callees (per analysis.FuncName) to a short reason they
// may block. Curated from the hot paths PRs 2–5 introduced.
var Blocking = map[string]string{
	// View compilation (PR 5 moved it outside the System lock).
	"orchestra/internal/core.NewView":              "compiles the whole mapping program",
	"orchestra/internal/core.RestoreView":          "decodes and recompiles a full view",
	"(orchestra/internal/core.View).Recompile":     "recompiles the mapping program in place",
	"(orchestra/internal/core.View).compile":       "compiles the whole mapping program",
	"(orchestra/internal/core.View).Repair":        "runs maintenance fixpoints",
	"(orchestra/internal/core.View).FullRecompute": "recomputes the instance from scratch",
	// Exchange and bus round trips (may traverse HTTP on a remote bus).
	"orchestra/internal/core.ExchangeInto":                "replays bus publications through maintenance fixpoints",
	"orchestra/internal/core.ExchangeCoalesced":           "replays the pending run through maintenance fixpoints",
	"orchestra/internal/core.ExchangeDeltas":              "applies push-delivered publications through maintenance fixpoints",
	"orchestra/internal/core.PublishTo":                   "bus round trip",
	"orchestra/internal/core.BusLen":                      "bus round trip",
	"(orchestra/internal/core.BusAppender).Append":        "bus round trip",
	"(orchestra/internal/core.BusReader).Fetch":           "bus round trip",
	"(orchestra/internal/core.BusReader).Horizon":         "bus round trip",
	"(orchestra/internal/core.BusWatcher).Subscribe":      "bus round trip",
	"(orchestra/internal/core.PublicationBus).Append":     "bus round trip",
	"(orchestra/internal/core.PublicationBus).Fetch":      "bus round trip",
	"(orchestra/internal/core.PublicationBus).Horizon":    "bus round trip",
	"(orchestra/internal/core.PublicationBus).FetchSince": "bus round trip",
	"(orchestra/internal/core.PublicationBus).Len":        "bus round trip",
	"(orchestra/internal/share.Bus).Append":               "HTTP round trip",
	"(orchestra/internal/share.Bus).Fetch":                "HTTP round trip",
	"(orchestra/internal/share.Bus).Horizon":              "HTTP round trip",
	"(orchestra/internal/share.Bus).Subscribe":            "opens a streaming HTTP connection",
	"(orchestra/internal/share.Bus).FetchSince":           "HTTP round trip",
	"(orchestra/internal/share.Bus).Len":                  "HTTP round trip",
	// Durability (fsync under the System lock stalls every view reader).
	"orchestra/internal/statestore.Open":                       "reads and validates the checkpoint directory",
	"(orchestra/internal/statestore.Store).SaveView":           "writes and fsyncs a snapshot",
	"(orchestra/internal/statestore.Store).SetSpecFingerprint": "rewrites and fsyncs the manifest",
	"(orchestra/internal/statestore.Store).Remove":             "rewrites and fsyncs the manifest",
	"orchestra/internal/logstore.Open":                         "replays the publication log",
	"orchestra/internal/logstore.OpenBus":                      "replays the publication log",
	"orchestra/internal/logstore.OpenShardedBus":               "replays every shard segment",
	"(orchestra/internal/logstore.Store).Append":               "writes and fsyncs a log frame",
	"(orchestra/internal/logstore.Bus).Append":                 "writes and fsyncs a log frame",
	"(orchestra/internal/logstore.ShardedBus).Append":          "writes and fsyncs a shard frame",
	// Observability registration and rendering (PR 7). Registering an
	// instrument takes the registry lock and may allocate; rendering
	// walks every series; the trace ring buffer takes its own mutex.
	// Hot paths under System.mu may only touch pre-resolved instrument
	// handles (Inc/Add/Set/Observe are lock-free atomics and stay legal).
	"(orchestra/internal/obs.Registry).Counter":         "registry lookup takes the registry lock",
	"(orchestra/internal/obs.Registry).Gauge":           "registry lookup takes the registry lock",
	"(orchestra/internal/obs.Registry).GaugeFunc":       "registry lookup takes the registry lock",
	"(orchestra/internal/obs.Registry).Histogram":       "registry lookup takes the registry lock",
	"(orchestra/internal/obs.Registry).WritePrometheus": "renders every registered series",
	"(orchestra/internal/obs.Tracer).Add":               "takes the trace ring-buffer lock",
	"(orchestra/internal/obs.Tracer).Last":              "copies traces under the ring-buffer lock",
	"(orchestra/internal/obs.PubTracer).Add":            "takes the publish ring-buffer lock",
	"(orchestra/internal/obs.PubTracer).Find":           "scans the publish ring under its lock",
	"(orchestra/internal/obs.PubTracer).Last":           "copies publish records under the ring lock",
	"(orchestra/internal/obs.SlowQueryRing).Add":        "takes the slow-query ring lock",
	"(orchestra/internal/obs.SlowQueryRing).Last":       "copies slow queries under the ring lock",
	// Generic blockers.
	"(net/http.Client).Do":   "HTTP round trip",
	"(net/http.Client).Get":  "HTTP round trip",
	"(net/http.Client).Post": "HTTP round trip",
	"(net/http.Client).Head": "HTTP round trip",
	"net/http.Get":           "HTTP round trip",
	"net/http.Post":          "HTTP round trip",
	"(os.File).Sync":         "fsync",
	"time.Sleep":             "sleeps",
}

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "no blocking work under the System lock; manual locks released on every return path\n\n" +
		"View compile was deliberately moved outside System.mu (PR 5) and exchange\n" +
		"fan-out relies on the lock guarding only the views map; a blocking call\n" +
		"in that critical section serializes the whole confederation.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// lockState tracks, within one function, which mutexes are held and
// whether their release is deferred. maybeReleased records locks some
// explored branch released: control flow is then too braided for the
// linear imbalance check, so those locks stop being reported.
type lockState struct {
	held          map[string]bool // expr key -> currently held
	deferred      map[string]bool // expr key -> unlock is deferred
	guarded       map[string]bool // expr key -> lock is a Guarded spec
	maybeReleased map[string]bool // expr key -> released on some branch
}

func newLockState() *lockState {
	return &lockState{held: map[string]bool{}, deferred: map[string]bool{}, guarded: map[string]bool{}, maybeReleased: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	for k, v := range s.guarded {
		c.guarded[k] = v
	}
	for k, v := range s.maybeReleased {
		c.maybeReleased[k] = v
	}
	return c
}

func (s *lockState) guardedHeld() string {
	for k := range s.held {
		if s.guarded[k] {
			return k
		}
	}
	return ""
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	walkStmts(pass, body.List, newLockState())
}

// walkStmts processes a statement list linearly, exploring compound
// statements with a copy of the state (their effects on lock state are
// not propagated — conservative for the flag-on-held checks, and exact
// for the dominant lock/branch/unlock idioms).
func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, state *lockState) {
	for _, stmt := range stmts {
		walkStmt(pass, stmt, state)
	}
}

func walkStmt(pass *analysis.Pass, stmt ast.Stmt, state *lockState) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, kind, ok := lockOp(pass, call); ok {
				switch kind {
				case "Lock", "RLock":
					state.held[key] = true
					state.guarded[key] = isGuarded(pass, call)
				case "Unlock", "RUnlock":
					delete(state.held, key)
					delete(state.deferred, key)
				}
				return
			}
		}
		checkLeaf(pass, s, state)
	case *ast.DeferStmt:
		if key, kind, ok := lockOp(pass, s.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
			state.deferred[key] = true
			return
		}
		checkLeaf(pass, s, state)
	case *ast.ReturnStmt:
		for key := range state.held {
			if !state.deferred[key] && !state.maybeReleased[key] {
				pass.Reportf(s.Pos(), "return while %s is locked with no deferred unlock on this path", key)
			}
		}
		checkLeaf(pass, s, state)
	case *ast.BlockStmt:
		walkStmts(pass, s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, state)
		}
		checkExpr(pass, s.Cond, state)
		walkBranch(pass, s.Body.List, state)
		if s.Else != nil {
			walkBranch(pass, []ast.Stmt{s.Else}, state)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, state)
		}
		if s.Cond != nil {
			checkExpr(pass, s.Cond, state)
		}
		walkBranch(pass, s.Body.List, state)
	case *ast.RangeStmt:
		checkExpr(pass, s.X, state)
		walkBranch(pass, s.Body.List, state)
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, state)
		}
		if s.Tag != nil {
			checkExpr(pass, s.Tag, state)
		}
		for _, clause := range s.Body.List {
			walkBranch(pass, clause.(*ast.CaseClause).Body, state)
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			walkBranch(pass, clause.(*ast.CaseClause).Body, state)
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			walkBranch(pass, clause.(*ast.CommClause).Body, state)
		}
	case *ast.LabeledStmt:
		walkStmt(pass, s.Stmt, state)
	case *ast.GoStmt:
		// A spawned goroutine does not run under the caller's lock.
	default:
		checkLeaf(pass, stmt, state)
	}
}

// walkBranch explores a conditional/looped statement list with a copy
// of the state, then records which outer locks it released so the
// imbalance check downgrades them to maybe-released.
func walkBranch(pass *analysis.Pass, stmts []ast.Stmt, state *lockState) {
	c := state.clone()
	walkStmts(pass, stmts, c)
	for key := range state.held {
		if !c.held[key] {
			state.maybeReleased[key] = true
		}
	}
	for key := range c.maybeReleased {
		state.maybeReleased[key] = true
	}
	for key := range c.deferred {
		if state.held[key] {
			state.deferred[key] = true
		}
	}
}

// checkLeaf inspects a non-compound statement for blocking calls while
// a guarded lock is held.
func checkLeaf(pass *analysis.Pass, stmt ast.Stmt, state *lockState) {
	checkExpr(pass, stmt, state)
}

func checkExpr(pass *analysis.Pass, n ast.Node, state *lockState) {
	lock := state.guardedHeld()
	if lock == "" || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // runs under its own schedule
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := pass.CalleeName(call)
		if why, bad := Blocking[name]; bad {
			pass.Reportf(call.Pos(), "%s (%s) called while %s — the System lock — is held; move it outside the critical section", name, why, lock)
		}
		return true
	})
}

// lockOp recognizes m.Lock/RLock/Unlock/RUnlock on a sync.Mutex or
// sync.RWMutex reachable through a simple selector chain, returning a
// stable key for the mutex expression. Locks reached through index
// expressions or calls are not tracked.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (key, kind string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	kind = sel.Sel.Name
	switch kind {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	recv := analysis.TypeName(pass.NamedType(sel.X))
	if recv != "sync.Mutex" && recv != "sync.RWMutex" {
		return "", "", false
	}
	key, okKey := exprKey(sel.X)
	if !okKey {
		return "", "", false
	}
	return key, kind, true
}

// isGuarded reports whether a lock call's mutex is one of the Guarded
// specs: a field selector <x>.<Field> where <x> has the spec's type.
func isGuarded(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel := call.Fun.(*ast.SelectorExpr)
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	owner := analysis.TypeName(pass.NamedType(field.X))
	for _, g := range Guarded {
		if owner == g.Type && field.Sel.Name == g.Field {
			return true
		}
	}
	return false
}

// exprKey renders a simple identifier/selector chain ("s.mu",
// "h.view.mu"); anything else (indexing, calls) is untrackable.
func exprKey(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return exprKey(e.X)
	}
	return "", false
}
