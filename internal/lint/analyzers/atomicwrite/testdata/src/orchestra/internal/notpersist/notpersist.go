// Testdata for atomicwrite: the invariant does not govern packages
// outside statestore/logstore.
package notpersist

import "os"

func writeDirect(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
