// Testdata for atomicwrite: write primitives inside a persistence
// package.
package statestore

import (
	"os"
	"path/filepath"
)

func writeDirect(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want "os.WriteFile in persistence package"
}

func createInPlace(path string) (*os.File, error) {
	return os.Create(path) // want "os.Create in persistence package"
}

func unsynced(f *os.File, b []byte) error {
	_, err := f.Write(b) // want `unsynced writes an \*os\.File but never calls Sync`
	return err
}

func unsyncedString(f *os.File) error {
	_, err := f.WriteString("hdr") // want `unsyncedString writes an \*os\.File but never calls Sync`
	return err
}

// atomic is the sanctioned discipline: temp file, write, fsync, rename.
func atomic(dir string, b []byte) error {
	f, err := os.CreateTemp(dir, "snap-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), filepath.Join(dir, "snap"))
}

// lambdaScope: a nested literal is its own scope — the outer function's
// Sync does not excuse the literal's unsynced write.
func lambdaScope(f *os.File, b []byte) func() {
	if err := f.Sync(); err != nil {
		return nil
	}
	return func() {
		f.Write(b) // want "func literal writes an"
	}
}
