package atomicwrite

import (
	"testing"

	"orchestra/internal/lint/analysistest"
)

func TestAtomicwrite(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"orchestra/internal/statestore",
		"orchestra/internal/notpersist",
	)
}
