// Package atomicwrite guards the durability discipline of the
// persistence packages (PR 2): snapshot and manifest bytes reach disk
// only via temp file + fsync + atomic rename, and log appends fsync
// before they are acknowledged. Inside those packages it flags the
// write primitives that silently bypass the discipline.
package atomicwrite

import (
	"go/ast"

	"orchestra/internal/lint/analysis"
)

// Packages lists the persistence packages the invariant governs.
// Variable (not constant) so tests can narrow it; the vettool always
// runs with this default.
var Packages = []string{
	"orchestra/internal/statestore",
	"orchestra/internal/logstore",
}

// banned maps a callee (per analysis.FuncName) to why it is forbidden
// in persistence packages.
var banned = map[string]string{
	"os.WriteFile":        "one-shot write with no fsync and no atomic rename",
	"os.Create":           "truncates in place; a crash mid-write tears the previous contents",
	"io/ioutil.WriteFile": "one-shot write with no fsync and no atomic rename",
}

// Analyzer is the atomicwrite pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "persistence packages must write temp-file+rename+fsync, never os.WriteFile/os.Create\n\n" +
		"statestore's crash-safety protocol and logstore's fsync-before-ack (PR 2)\n" +
		"both die quietly if a new code path writes directly; every *os.File write\n" +
		"must be paired with a Sync in the same function.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, body := funcOf(n)
			if body == nil {
				return true
			}
			checkFunc(pass, fn, body)
			return true
		})
	}
	return nil
}

func inScope(path string) bool {
	for _, p := range Packages {
		if path == p {
			return true
		}
	}
	return false
}

// funcOf returns the name and body of a function-shaped node.
func funcOf(n ast.Node) (string, *ast.BlockStmt) {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Name.Name, n.Body
	case *ast.FuncLit:
		return "func literal", n.Body
	}
	return "", nil
}

// checkFunc flags banned calls anywhere, and *os.File writes in
// functions that never Sync an *os.File. The granularity is one
// function: a helper that writes must itself sync (or be rewritten to
// return bytes for a syncing caller) — crossing function boundaries is
// exactly how the discipline erodes.
func checkFunc(pass *analysis.Pass, fname string, body *ast.BlockStmt) {
	var writes []*ast.CallExpr
	synced := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Nested function literals are checked as their own scope.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := pass.CalleeName(call)
		if why, bad := banned[callee]; bad {
			pass.Reportf(call.Pos(), "%s in persistence package: %s; use the temp-file+rename+fsync path", callee, why)
			return true
		}
		switch callee {
		case "(os.File).Write", "(os.File).WriteString", "(os.File).WriteAt":
			writes = append(writes, call)
		case "(os.File).Sync":
			synced = true
		}
		return true
	})
	if !synced {
		for _, call := range writes {
			pass.Reportf(call.Pos(), "%s writes an *os.File but never calls Sync; durable data must be fsynced before it is acknowledged", fname)
		}
	}
}
