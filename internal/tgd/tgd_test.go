package tgd

import (
	"strings"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/schema"
	"orchestra/internal/value"
)

// paperMappings returns the paper's Example 2 mapping set:
//
//	(m1) G(i,c,n) -> B(i,n)
//	(m2) G(i,c,n) -> U(n,c)
//	(m3) B(i,n) -> ∃c U(n,c)
//	(m4) B(i,c) ∧ U(n,c) -> B(i,n)
func paperMappings(t *testing.T) []*TGD {
	t.Helper()
	lines := []string{
		"m1: G(i,c,n) -> B(i,n)",
		"m2: G(i,c,n) -> U(n,c)",
		"m3: B(i,n) -> exists c . U(n,c)",
		"m4: B(i,c), U(n,c) -> B(i,n)",
	}
	var out []*TGD
	for _, l := range lines {
		m, err := Parse(l)
		if err != nil {
			t.Fatalf("parse %q: %v", l, err)
		}
		out = append(out, m)
	}
	return out
}

func paperUniverse(t *testing.T) *schema.Universe {
	t.Helper()
	u := schema.NewUniverse()
	gus := schema.NewPeer("PGUS")
	gus.AddRelation("G", schema.Column{Name: "id"}, schema.Column{Name: "can"}, schema.Column{Name: "nam"})
	bio := schema.NewPeer("PBioSQL")
	bio.AddRelation("B", schema.Column{Name: "id"}, schema.Column{Name: "nam"})
	ubio := schema.NewPeer("PuBio")
	ubio.AddRelation("U", schema.Column{Name: "nam"}, schema.Column{Name: "can"})
	for _, p := range []*schema.Peer{gus, bio, ubio} {
		if err := u.AddPeer(p); err != nil {
			t.Fatal(err)
		}
	}
	return u
}

func TestParseBasic(t *testing.T) {
	m := MustParse("m1: G(i,c,n) -> B(i,n)")
	if m.ID != "m1" || len(m.LHS) != 1 || len(m.RHS) != 1 {
		t.Fatalf("parsed %+v", m)
	}
	if m.LHS[0].Pred != "G" || m.RHS[0].Pred != "B" {
		t.Fatal("relation names")
	}
	if len(m.ExistentialVars()) != 0 {
		t.Fatalf("existentials: %v", m.ExistentialVars())
	}
}

func TestParseExistential(t *testing.T) {
	m := MustParse("m3: B(i,n) -> exists c . U(n,c)")
	ex := m.ExistentialVars()
	if len(ex) != 1 || ex[0] != "c" {
		t.Fatalf("existentials: %v", ex)
	}
	fr := m.FrontierVars()
	if len(fr) != 1 || fr[0] != "n" {
		t.Fatalf("frontier: %v", fr)
	}
	// Inferred form without the explicit clause parses identically.
	m2 := MustParse("m3: B(i,n) -> U(n,c)")
	if m2.String() != m.String() {
		t.Fatalf("%q vs %q", m2.String(), m.String())
	}
}

func TestParseExistentialMismatch(t *testing.T) {
	if _, err := Parse("m: B(i,n) -> exists z . U(n,c)"); err == nil {
		t.Fatal("wrong existential declaration accepted")
	}
}

func TestParseMultiAtom(t *testing.T) {
	m := MustParse("m4: B(i,c), U(n,c) -> B(i,n)")
	if len(m.LHS) != 2 {
		t.Fatalf("LHS: %v", m.LHS)
	}
	vars := m.LHSVars()
	want := []string{"i", "c", "n"}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("LHSVars = %v", vars)
		}
	}
	// "AND" and "^" conjunction spellings parse too.
	for _, alt := range []string{
		"m4: B(i,c) AND U(n,c) -> B(i,n)",
		"m4: B(i,c) ^ U(n,c) -> B(i,n)",
	} {
		if MustParse(alt).String() != m.String() {
			t.Fatalf("alt spelling %q mismatch", alt)
		}
	}
}

func TestParseConstants(t *testing.T) {
	m := MustParse(`m: R(x, 5, 'hello world') -> S(x)`)
	a := m.LHS[0]
	if a.Args[1].Kind != datalog.TermConst || a.Args[1].Const != value.Int(5) {
		t.Fatalf("int const: %+v", a.Args[1])
	}
	if a.Args[2].Const != value.String("hello world") {
		t.Fatalf("string const: %+v", a.Args[2])
	}
	m2 := MustParse(`m: R(x, -7, "q") -> S(x)`)
	if m2.LHS[0].Args[1].Const != value.Int(-7) {
		t.Fatal("negative int")
	}
}

func TestParseMultiHeadRHS(t *testing.T) {
	m := MustParse("m: R(x,y) -> S(x,z), T(z,y)")
	if len(m.RHS) != 2 {
		t.Fatalf("RHS: %v", m.RHS)
	}
	ex := m.ExistentialVars()
	if len(ex) != 1 || ex[0] != "z" {
		t.Fatalf("existentials: %v", ex)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"R(x) S(x)",                  // no arrow
		"m: R(x -> S(x)",             // unbalanced
		"m: -> S(x)",                 // empty LHS
		"m: R(x) ->",                 // empty RHS
		"m: R(x,) -> S(x)",           // empty term
		"m: R(x) -> exists c U(x,c)", // missing '.'
		"m: 9R(x) -> S(x)",           // bad relation name
		"m: R(x)(y) -> S(x)",         // junk between atoms
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestValidate(t *testing.T) {
	u := paperUniverse(t)
	for _, m := range paperMappings(t) {
		if err := m.Validate(u); err != nil {
			t.Errorf("%s: %v", m.ID, err)
		}
	}
	if err := MustParse("m: G(i,c) -> B(i,c)").Validate(u); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := MustParse("m: Zed(i) -> B(i,i)").Validate(u); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestSourceTargetPeers(t *testing.T) {
	u := paperUniverse(t)
	ms := paperMappings(t)
	if got := ms[0].SourcePeers(u); len(got) != 1 || got[0] != "PGUS" {
		t.Fatalf("m1 sources: %v", got)
	}
	if got := ms[0].TargetPeers(u); len(got) != 1 || got[0] != "PBioSQL" {
		t.Fatalf("m1 targets: %v", got)
	}
	// m4 reads from both PBioSQL and PuBio.
	if got := ms[3].SourcePeers(u); len(got) != 2 || got[0] != "PBioSQL" || got[1] != "PuBio" {
		t.Fatalf("m4 sources: %v", got)
	}
}

func TestWeaklyAcyclicPaperSet(t *testing.T) {
	// The paper notes m3 completes a cycle but the set is weakly acyclic.
	if err := CheckWeaklyAcyclic(paperMappings(t)); err != nil {
		t.Fatalf("paper mapping set rejected: %v", err)
	}
}

func TestWeaklyAcyclicRejectsExistentialCycle(t *testing.T) {
	// R(x) -> ∃y S(x,y) and S(x,y) -> R(y): fresh nulls feed back into the
	// position that generates fresh nulls — the classic non-terminating
	// chase.
	ms := []*TGD{
		MustParse("a: R(x) -> S(x,y)"),
		MustParse("b: S(x,y) -> R(y)"),
	}
	err := CheckWeaklyAcyclic(ms)
	if err == nil {
		t.Fatal("existential cycle accepted")
	}
	if !strings.Contains(err.Error(), "special") {
		t.Fatalf("error does not mention special edge: %v", err)
	}
}

func TestWeaklyAcyclicSelfLoopRegularOK(t *testing.T) {
	// Full-tgd recursion is fine (no special edges).
	ms := []*TGD{
		MustParse("t: E(x,y), E(y,z) -> E(x,z)"),
	}
	if err := CheckWeaklyAcyclic(ms); err != nil {
		t.Fatalf("full recursive tgd rejected: %v", err)
	}
}

func TestWeaklyAcyclicDirectSpecialSelfLoop(t *testing.T) {
	// R(x,y) -> ∃z R(y,z): special edge into R.1 which feeds back.
	ms := []*TGD{MustParse("s: R(x,y) -> R(y,z)")}
	if err := CheckWeaklyAcyclic(ms); err == nil {
		t.Fatal("special self-loop accepted")
	}
}

func TestRulesSkolemization(t *testing.T) {
	m := MustParse("m3: B(i,n) -> U(n,c)")
	rules := m.Rules()
	if len(rules) != 1 {
		t.Fatalf("rules: %v", rules)
	}
	r := rules[0]
	if r.Head.Pred != "U" {
		t.Fatal("head pred")
	}
	if r.Head.Args[0].Kind != datalog.TermVar || r.Head.Args[0].Var != "n" {
		t.Fatalf("head arg 0: %+v", r.Head.Args[0])
	}
	sk := r.Head.Args[1]
	if sk.Kind != datalog.TermSkolem || sk.Fn != "sk_m3_c" {
		t.Fatalf("head arg 1: %+v", sk)
	}
	// Skolem parameterized by frontier variables only (n), not all LHS
	// variables — the paper's §4.1.1 termination argument depends on it.
	if len(sk.FnArgs) != 1 || sk.FnArgs[0] != "n" {
		t.Fatalf("skolem args: %v", sk.FnArgs)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRulesMultiRHS(t *testing.T) {
	m := MustParse("m: R(x,y) -> S(x,z), T(z,y)")
	rules := m.Rules()
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	// Both heads must use the SAME Skolem function for z, so the two
	// target atoms join on the same placeholder.
	s1 := rules[0].Head.Args[1]
	s2 := rules[1].Head.Args[0]
	if s1.Fn != s2.Fn || s1.Fn != "sk_m_z" {
		t.Fatalf("skolem fns differ: %q vs %q", s1.Fn, s2.Fn)
	}
}

func TestEncodeProvenance(t *testing.T) {
	m := MustParse("m4: B(i,c), U(n,c) -> B(i,n)")
	enc := m.Encode()
	if enc.ProvRel != "p$m4" {
		t.Fatalf("ProvRel = %q", enc.ProvRel)
	}
	// Columns are the distinct LHS variables in order: i, c, n.
	want := []string{"i", "c", "n"}
	if len(enc.ProvVars) != 3 {
		t.Fatalf("ProvVars = %v", enc.ProvVars)
	}
	for i := range want {
		if enc.ProvVars[i] != want[i] {
			t.Fatalf("ProvVars = %v, want %v", enc.ProvVars, want)
		}
	}
	// (m′) p$m4(i,c,n) :- B(i,c), U(n,c): no projection.
	if enc.Populate.Head.Pred != "p$m4" || len(enc.Populate.Body) != 2 {
		t.Fatalf("Populate = %v", enc.Populate)
	}
	// (m″) B(i,n) :- p$m4(i,c,n).
	if len(enc.Derive) != 1 || enc.Derive[0].Head.Pred != "B" {
		t.Fatalf("Derive = %v", enc.Derive)
	}
	if err := enc.Populate.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Derive[0].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeCompositeMappingTable(t *testing.T) {
	// One provenance table per tgd even with multiple RHS atoms (§5).
	m := MustParse("m: R(x,y) -> S(x,z), T(z,y)")
	enc := m.Encode()
	if len(enc.Derive) != 2 {
		t.Fatalf("Derive count = %d", len(enc.Derive))
	}
	for _, d := range enc.Derive {
		if len(d.Body) != 1 || d.Body[0].Atom.Pred != "p$m" {
			t.Fatalf("derive rule body: %v", d)
		}
	}
}

func TestRenameRels(t *testing.T) {
	m := MustParse("m1: G(i,c,n) -> B(i,n)")
	r := m.RenameRels(
		func(s string) string { return s + "__o" },
		func(s string) string { return s + "__i" },
	)
	if r.LHS[0].Pred != "G__o" || r.RHS[0].Pred != "B__i" {
		t.Fatalf("renamed: %v", r)
	}
	// Original untouched.
	if m.LHS[0].Pred != "G" {
		t.Fatal("original mutated")
	}
}

func TestString(t *testing.T) {
	m := MustParse("m3: B(i,n) -> U(n,c)")
	s := m.String()
	if !strings.Contains(s, "exists c") || !strings.Contains(s, "B(i,n)") {
		t.Fatalf("String = %q", s)
	}
	roundTrip := MustParse(s)
	if roundTrip.String() != s {
		t.Fatalf("round trip: %q vs %q", roundTrip.String(), s)
	}
}
