package tgd

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"orchestra/internal/datalog"
	"orchestra/internal/value"
)

// Parse parses a tgd in textual form:
//
//	m1: G(i,c,n) -> B(i,n)
//	m4: B(i,c), U(n,c) -> B(i,n)
//	m3: B(i,n) -> exists c . U(n,c)
//
// The "id:" prefix and the "exists … ." clause are optional (existential
// variables are inferred as RHS-only variables; when an explicit clause is
// present it is checked against the inferred set). Identifiers are
// variables; integers and quoted strings are constants.
func Parse(input string) (*TGD, error) {
	text := strings.TrimSpace(input)
	id := ""
	// An id prefix is "name:" where name contains no parentheses and the
	// colon appears before any '('.
	if i := strings.IndexByte(text, ':'); i >= 0 {
		if j := strings.IndexByte(text, '('); j < 0 || i < j {
			id = strings.TrimSpace(text[:i])
			text = strings.TrimSpace(text[i+1:])
		}
	}
	parts := strings.SplitN(text, "->", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("tgd: missing '->' in %q", input)
	}
	lhs, err := parseAtoms(parts[0])
	if err != nil {
		return nil, fmt.Errorf("tgd %s: LHS: %w", id, err)
	}
	rhsText := strings.TrimSpace(parts[1])
	var declared []string
	if strings.HasPrefix(rhsText, "exists ") || strings.HasPrefix(rhsText, "exists\t") {
		rest := strings.TrimSpace(rhsText[len("exists"):])
		dot := strings.IndexByte(rest, '.')
		if dot < 0 {
			return nil, fmt.Errorf("tgd %s: 'exists' clause missing '.'", id)
		}
		for _, v := range strings.Split(rest[:dot], ",") {
			v = strings.TrimSpace(v)
			if v != "" {
				declared = append(declared, v)
			}
		}
		rhsText = strings.TrimSpace(rest[dot+1:])
	}
	rhs, err := parseAtoms(rhsText)
	if err != nil {
		return nil, fmt.Errorf("tgd %s: RHS: %w", id, err)
	}
	m := &TGD{ID: id, LHS: lhs, RHS: rhs}
	if declared != nil {
		inferred := m.ExistentialVars()
		if !sameStringSet(declared, inferred) {
			return nil, fmt.Errorf("tgd %s: declared existentials %v do not match RHS-only variables %v",
				id, declared, inferred)
		}
	}
	return m, nil
}

// MustParse is Parse that panics; for tests and static tables.
func MustParse(input string) *TGD {
	m, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return m
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		if !set[v] {
			return false
		}
	}
	return true
}

// ParseAtoms parses a conjunction "R(a,b), S(c)" into atoms. It is shared
// with the query and spec parsers.
func ParseAtoms(text string) ([]datalog.Atom, error) { return parseAtoms(text) }

// parseAtoms parses "R(a,b), S(c)" into atoms.
func parseAtoms(text string) ([]datalog.Atom, error) {
	var out []datalog.Atom
	rest := strings.TrimSpace(text)
	for rest != "" {
		open := strings.IndexByte(rest, '(')
		if open < 0 {
			return nil, fmt.Errorf("expected '(' in %q", rest)
		}
		pred := strings.TrimSpace(rest[:open])
		if pred == "" || !isIdent(pred) {
			return nil, fmt.Errorf("bad relation name %q", pred)
		}
		close := matchingParen(rest, open)
		if close < 0 {
			return nil, fmt.Errorf("unbalanced parentheses in %q", rest)
		}
		args, err := parseTerms(rest[open+1 : close])
		if err != nil {
			return nil, fmt.Errorf("atom %s: %w", pred, err)
		}
		out = append(out, datalog.Atom{Pred: pred, Args: args})
		rest = strings.TrimSpace(rest[close+1:])
		if rest == "" {
			break
		}
		if rest[0] != ',' && rest[0] != '^' && !strings.HasPrefix(rest, "AND") && !strings.HasPrefix(rest, "and") {
			return nil, fmt.Errorf("expected ',' between atoms near %q", rest)
		}
		switch {
		case rest[0] == ',' || rest[0] == '^':
			rest = strings.TrimSpace(rest[1:])
		default:
			rest = strings.TrimSpace(rest[3:])
		}
		if rest == "" {
			return nil, fmt.Errorf("trailing conjunction in %q", text)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no atoms in %q", text)
	}
	return out, nil
}

func matchingParen(s string, open int) int {
	depth := 0
	inStr := byte(0)
	for i := open; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// parseTerms parses a comma-separated term list: identifiers are
// variables, integers and quoted strings are constants.
func parseTerms(text string) ([]datalog.Term, error) {
	var out []datalog.Term
	for _, raw := range splitTopLevel(text) {
		tok := strings.TrimSpace(raw)
		if tok == "" {
			return nil, fmt.Errorf("empty term in %q", text)
		}
		t, err := ParseTerm(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ParseTerm parses a single term token: an identifier (variable), an
// integer constant, or a quoted string constant.
func ParseTerm(tok string) (datalog.Term, error) {
	switch {
	case len(tok) >= 2 && (tok[0] == '\'' || tok[0] == '"') && tok[len(tok)-1] == tok[0]:
		return datalog.C(value.String(tok[1 : len(tok)-1])), nil
	case isInt(tok):
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return datalog.Term{}, fmt.Errorf("bad integer %q: %w", tok, err)
		}
		return datalog.C(value.Int(n)), nil
	case isIdent(tok):
		return datalog.V(tok), nil
	default:
		return datalog.Term{}, fmt.Errorf("bad term %q", tok)
	}
}

func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	inStr := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(s) != "" || len(parts) > 0 {
		parts = append(parts, s[start:])
	}
	return parts
}

func isInt(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '-' || s[0] == '+' {
		i = 1
		if len(s) == 1 {
			return false
		}
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func isIdent(s string) bool {
	for i, r := range s {
		switch {
		case unicode.IsLetter(r) || r == '_':
		case i > 0 && (unicode.IsDigit(r) || r == '$'):
		default:
			return false
		}
	}
	return s != ""
}
