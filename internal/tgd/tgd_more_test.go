package tgd

import (
	"strings"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/schema"
	"orchestra/internal/value"
)

func TestRulesWithConstants(t *testing.T) {
	// Constants on both sides survive Skolemization verbatim.
	m := MustParse("m: R(x, 5) -> S(x, 'tag', z)")
	rules := m.Rules()
	if len(rules) != 1 {
		t.Fatal("rule count")
	}
	head := rules[0].Head
	if head.Args[1].Kind != datalog.TermConst || head.Args[1].Const != value.String("tag") {
		t.Fatalf("head const: %+v", head.Args[1])
	}
	if head.Args[2].Kind != datalog.TermSkolem {
		t.Fatalf("existential not Skolemized: %+v", head.Args[2])
	}
	body := rules[0].Body[0].Atom
	if body.Args[1].Const != value.Int(5) {
		t.Fatalf("body const: %+v", body.Args[1])
	}
}

func TestEncodeWithConstants(t *testing.T) {
	m := MustParse("m: R(x, 5) -> S(x)")
	enc := m.Encode()
	// Provenance columns = distinct variables only (x), not constants.
	if len(enc.ProvVars) != 1 || enc.ProvVars[0] != "x" {
		t.Fatalf("ProvVars = %v", enc.ProvVars)
	}
	if err := enc.Populate.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSkolemFnNaming(t *testing.T) {
	m := MustParse("ma: R(x) -> S(x, z)")
	m2 := MustParse("mb: R(x) -> S(x, z)")
	// Separate tgds get separate Skolem functions for the "same" variable
	// (§4.1.1: "a separate Skolem function for each existentially
	// quantified variable in each tgd").
	if m.SkolemFn("z") == m2.SkolemFn("z") {
		t.Fatal("skolem functions collide across tgds")
	}
}

func TestValidatePeersAcrossSides(t *testing.T) {
	u := schema.NewUniverse()
	p := schema.NewPeer("P")
	p.AddRelation("R", schema.Column{Name: "x"})
	q := schema.NewPeer("Q")
	q.AddRelation("S", schema.Column{Name: "x"})
	u.AddPeer(p)
	u.AddPeer(q)
	m := MustParse("m: R(x) -> S(x)")
	if err := m.Validate(u); err != nil {
		t.Fatal(err)
	}
	if got := m.SourcePeers(u); len(got) != 1 || got[0] != "P" {
		t.Fatalf("sources: %v", got)
	}
	if got := m.TargetPeers(u); len(got) != 1 || got[0] != "Q" {
		t.Fatalf("targets: %v", got)
	}
	// Unknown relations resolve to no peers rather than panicking.
	ghost := MustParse("m2: Zed(x) -> S(x)")
	if got := ghost.SourcePeers(u); len(got) != 0 {
		t.Fatalf("ghost sources: %v", got)
	}
}

func TestWeakAcyclicityThroughSharedTarget(t *testing.T) {
	// a: R(x) -> ∃z T(x,z); b: T(x,z) -> R(x). The existential position
	// T.1 has no outgoing edge to R (z does not occur in b's RHS), so the
	// set is weakly acyclic despite the topology loop.
	ms := []*TGD{
		MustParse("a: R(x) -> T(x,z)"),
		MustParse("b: T(x,z) -> R(x)"),
	}
	if err := CheckWeaklyAcyclic(ms); err != nil {
		t.Fatalf("safe loop rejected: %v", err)
	}
	// But making z flow back breaks it: b2: T(x,z) -> R(z).
	ms2 := []*TGD{
		MustParse("a: R(x) -> T(x,z)"),
		MustParse("b2: T(x,z) -> R(z)"),
	}
	if err := CheckWeaklyAcyclic(ms2); err == nil {
		t.Fatal("null-feeding loop accepted")
	}
}

func TestWeakAcyclicityIgnoresConstants(t *testing.T) {
	ms := []*TGD{MustParse("m: R(x, 5) -> R(x, 7)")}
	if err := CheckWeaklyAcyclic(ms); err != nil {
		t.Fatalf("constants should not create edges: %v", err)
	}
}

func TestParseAtomsExported(t *testing.T) {
	atoms, err := ParseAtoms("R(x, 1), S('a b', y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(atoms) != 2 || atoms[1].Args[0].Const != value.String("a b") {
		t.Fatalf("atoms: %v", atoms)
	}
	if _, err := ParseAtoms(""); err == nil {
		t.Fatal("empty conjunction accepted")
	}
}

func TestParseTermErrors(t *testing.T) {
	for _, tok := range []string{"", "9x", "'unterminated", "x-y"} {
		if _, err := ParseTerm(tok); err == nil {
			t.Errorf("ParseTerm(%q) accepted", tok)
		}
	}
	// Valid edge cases.
	term, err := ParseTerm("x9$")
	if err != nil || term.Var != "x9$" {
		t.Fatalf("ident with digits/$: %v %v", term, err)
	}
}

func TestStringOmitsEmptyID(t *testing.T) {
	m := MustParse("R(x) -> S(x)")
	if strings.Contains(m.String(), ":") {
		t.Fatalf("empty id rendered: %q", m.String())
	}
}
