package tgd

import (
	"fmt"
	"strings"

	"orchestra/internal/datalog"
)

// position is a (relation, column) pair — a node of the dependency graph
// used by the weak-acyclicity test of Fagin et al. (paper §3.1 restricts
// CDSS mapping topologies to weakly acyclic sets so that the chase — and
// our datalog fixpoint — terminates in polynomial time).
type position struct {
	rel string
	col int
}

func (p position) String() string { return fmt.Sprintf("%s.%d", p.rel, p.col) }

type edge struct {
	from, to position
	special  bool
	tgd      string
}

// CheckWeaklyAcyclic verifies that the mapping set is weakly acyclic. It
// returns nil on success and an error describing a cycle through a
// special edge otherwise.
func CheckWeaklyAcyclic(mappings []*TGD) error {
	var edges []edge
	for _, m := range mappings {
		exist := make(map[string]bool)
		for _, v := range m.ExistentialVars() {
			exist[v] = true
		}
		// Positions of each universal variable in the LHS.
		lhsPos := make(map[string][]position)
		for _, a := range m.LHS {
			for col, t := range a.Args {
				if t.Kind == datalog.TermVar {
					lhsPos[t.Var] = append(lhsPos[t.Var], position{a.Pred, col})
				}
			}
		}
		// Occurrences in the RHS: universal and existential.
		type occ struct {
			v   string
			pos position
		}
		var rhsUniv, rhsExist []occ
		for _, a := range m.RHS {
			for col, t := range a.Args {
				if t.Kind != datalog.TermVar {
					continue
				}
				o := occ{t.Var, position{a.Pred, col}}
				if exist[t.Var] {
					rhsExist = append(rhsExist, o)
				} else {
					rhsUniv = append(rhsUniv, o)
				}
			}
		}
		// For every universal variable x that occurs in the RHS, from
		// every LHS position of x: regular edges to x's RHS positions and
		// special edges to every existential position.
		occursInRHS := make(map[string]bool)
		for _, o := range rhsUniv {
			occursInRHS[o.v] = true
		}
		for v, froms := range lhsPos {
			if !occursInRHS[v] {
				continue
			}
			for _, from := range froms {
				for _, o := range rhsUniv {
					if o.v == v {
						edges = append(edges, edge{from, o.pos, false, m.ID})
					}
				}
				for _, o := range rhsExist {
					edges = append(edges, edge{from, o.pos, true, m.ID})
				}
			}
		}
	}

	adj := make(map[position][]edge)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}

	// Weakly acyclic iff no cycle goes through a special edge: for each
	// special edge u→v, v must not reach u.
	for _, e := range edges {
		if !e.special {
			continue
		}
		if path, ok := findPath(adj, e.to, e.from); ok {
			trace := append([]string{
				fmt.Sprintf("%s =[special, %s]=> %s", e.from, e.tgd, e.to)}, path...)
			return fmt.Errorf("tgd: mappings not weakly acyclic; cycle through special edge: %s",
				strings.Join(trace, " ; "))
		}
	}
	return nil
}

// findPath reports whether dst is reachable from src, returning a
// human-readable edge trace. src == dst is trivially reachable (empty
// path).
func findPath(adj map[position][]edge, src, dst position) ([]string, bool) {
	if src == dst {
		return nil, true
	}
	type node struct {
		pos  position
		prev int
		via  edge
	}
	queue := []node{{pos: src, prev: -1}}
	seen := map[position]bool{src: true}
	for i := 0; i < len(queue); i++ {
		for _, e := range adj[queue[i].pos] {
			if seen[e.to] {
				continue
			}
			n := node{pos: e.to, prev: i, via: e}
			queue = append(queue, n)
			if e.to == dst {
				var rev []string
				for j := len(queue) - 1; queue[j].prev >= 0; j = queue[j].prev {
					ev := queue[j].via
					rev = append(rev, fmt.Sprintf("%s =[%s]=> %s", ev.from, ev.tgd, ev.to))
				}
				out := make([]string, len(rev))
				for k := range rev {
					out[k] = rev[len(rev)-1-k]
				}
				return out, true
			}
			seen[e.to] = true
		}
	}
	return nil, false
}
