// Package tgd implements the schema-mapping formalism of the paper (§2):
// tuple-generating dependencies ∀x̄,ȳ (φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)), their
// well-formedness and weak-acyclicity checks (§3.1), their Skolemization
// into datalog mapping rules (§4.1.1, "inverse rules"), and the relational
// provenance encoding (§4.1.2) with the composite-mapping-table
// optimization (§5).
package tgd

import (
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/datalog"
	"orchestra/internal/schema"
)

// TGD is one schema mapping. LHS and RHS are conjunctions of atoms whose
// terms are variables or constants. Existential variables are the RHS
// variables that do not occur in the LHS.
type TGD struct {
	ID  string
	LHS []datalog.Atom
	RHS []datalog.Atom
}

// LHSVars returns the distinct LHS variables in first-occurrence order
// (the paper's x̄ ∪ ȳ — exactly the columns of the mapping's provenance
// relation, §4.1.2).
func (m *TGD) LHSVars() []string {
	return atomVars(m.LHS)
}

// RHSVars returns the distinct RHS variables in first-occurrence order.
func (m *TGD) RHSVars() []string {
	return atomVars(m.RHS)
}

// ExistentialVars returns the RHS variables that do not occur in the LHS
// (the paper's z̄), in first-occurrence order.
func (m *TGD) ExistentialVars() []string {
	lhs := make(map[string]bool)
	for _, v := range m.LHSVars() {
		lhs[v] = true
	}
	var out []string
	for _, v := range m.RHSVars() {
		if !lhs[v] {
			out = append(out, v)
		}
	}
	return out
}

// FrontierVars returns the variables shared between LHS and RHS (the
// paper's x̄) — the parameters of this mapping's Skolem functions.
func (m *TGD) FrontierVars() []string {
	rhs := make(map[string]bool)
	for _, v := range m.RHSVars() {
		rhs[v] = true
	}
	var out []string
	for _, v := range m.LHSVars() {
		if rhs[v] {
			out = append(out, v)
		}
	}
	return out
}

func atomVars(atoms []datalog.Atom) []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range atoms {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// SourcePeers returns the sorted peers owning LHS relations, resolved
// against u.
func (m *TGD) SourcePeers(u *schema.Universe) []string {
	return peersOf(m.LHS, u)
}

// TargetPeers returns the sorted peers owning RHS relations.
func (m *TGD) TargetPeers(u *schema.Universe) []string {
	return peersOf(m.RHS, u)
}

func peersOf(atoms []datalog.Atom, u *schema.Universe) []string {
	seen := make(map[string]bool)
	for _, a := range atoms {
		if r := u.Relation(a.Pred); r != nil && r.Peer != "" {
			seen[r.Peer] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Validate checks well-formedness against a universe: relations exist,
// arities match, terms are variables or constants, and both sides are
// non-empty.
func (m *TGD) Validate(u *schema.Universe) error {
	if len(m.LHS) == 0 || len(m.RHS) == 0 {
		return fmt.Errorf("tgd %s: both sides must be non-empty", m.ID)
	}
	check := func(side string, atoms []datalog.Atom) error {
		for _, a := range atoms {
			rel := u.Relation(a.Pred)
			if rel == nil {
				return fmt.Errorf("tgd %s: unknown relation %q on %s", m.ID, a.Pred, side)
			}
			if rel.Arity() != len(a.Args) {
				return fmt.Errorf("tgd %s: %s has arity %d, atom %s has %d args",
					m.ID, a.Pred, rel.Arity(), a, len(a.Args))
			}
			for _, t := range a.Args {
				if t.Kind == datalog.TermSkolem {
					return fmt.Errorf("tgd %s: Skolem term in user mapping", m.ID)
				}
			}
		}
		return nil
	}
	if err := check("LHS", m.LHS); err != nil {
		return err
	}
	return check("RHS", m.RHS)
}

// Equal reports whether two tgds are structurally identical — same id
// and the same atom lists on both sides (variable names included, since
// they name provenance columns). Spec diffing uses it to distinguish an
// unchanged mapping from one that was redefined under the same id.
func (m *TGD) Equal(other *TGD) bool {
	if other == nil {
		return m == nil
	}
	return m.ID == other.ID && m.String() == other.String()
}

// String renders "id: lhs1, lhs2 -> rhs1, rhs2".
func (m *TGD) String() string {
	l := make([]string, len(m.LHS))
	for i, a := range m.LHS {
		l[i] = a.String()
	}
	r := make([]string, len(m.RHS))
	for i, a := range m.RHS {
		r[i] = a.String()
	}
	prefix := ""
	if m.ID != "" {
		prefix = m.ID + ": "
	}
	ex := m.ExistentialVars()
	exPart := ""
	if len(ex) > 0 {
		exPart = "exists " + strings.Join(ex, ",") + " . "
	}
	return fmt.Sprintf("%s%s -> %s%s", prefix, strings.Join(l, ", "), exPart, strings.Join(r, ", "))
}

// SkolemFn names the Skolem function for existential variable v of this
// tgd. The paper requires a separate function per existential per tgd
// (§4.1.1).
func (m *TGD) SkolemFn(v string) string {
	return fmt.Sprintf("sk_%s_%s", m.ID, v)
}

// skolemTerm returns the head term for RHS variable v: the variable
// itself if universally quantified, else this tgd's Skolem application
// over the frontier variables.
func (m *TGD) skolemTerm(v string, frontier []string, isExist map[string]bool) datalog.Term {
	if !isExist[v] {
		return datalog.V(v)
	}
	return datalog.Sk(m.SkolemFn(v), frontier...)
}

// Rules Skolemizes the tgd into plain datalog mapping rules, one per RHS
// atom, without provenance bookkeeping:
//
//	ψk(x̄, f̄(x̄)) :- φ(x̄, ȳ)
func (m *TGD) Rules() []*datalog.Rule {
	frontier := m.FrontierVars()
	isExist := make(map[string]bool)
	for _, v := range m.ExistentialVars() {
		isExist[v] = true
	}
	body := make([]datalog.Literal, len(m.LHS))
	for i, a := range m.LHS {
		body[i] = datalog.Pos(a)
	}
	var out []*datalog.Rule
	for k, rhs := range m.RHS {
		head := datalog.Atom{Pred: rhs.Pred, Args: make([]datalog.Term, len(rhs.Args))}
		for i, t := range rhs.Args {
			if t.Kind == datalog.TermVar {
				head.Args[i] = m.skolemTerm(t.Var, frontier, isExist)
			} else {
				head.Args[i] = t
			}
		}
		id := m.ID
		if len(m.RHS) > 1 {
			id = fmt.Sprintf("%s#%d", m.ID, k)
		}
		out = append(out, datalog.NewRule(id, head, body...))
	}
	return out
}

// ProvRelName is the name of the mapping's composite provenance table
// (§4.1.2 + §5: one table per tgd, not per RHS atom).
func (m *TGD) ProvRelName() string { return "p$" + m.ID }

// ProvEncoding is the provenance-encoded compilation of a tgd: the
// provenance table signature, the rule (m′) populating it from the LHS,
// and the rules (m″) deriving each RHS atom from the provenance table.
type ProvEncoding struct {
	TGD *TGD
	// ProvRel is the provenance table name; ProvVars its columns (the
	// distinct LHS variables).
	ProvRel  string
	ProvVars []string
	// Populate is (m′):  p$id(v̄) :- φ(x̄,ȳ).
	Populate *datalog.Rule
	// Derive are (m″):   ψk(x̄, f̄(x̄)) :- p$id(v̄), one per RHS atom.
	Derive []*datalog.Rule
}

// Encode produces the provenance-encoded rules of the tgd. Trust
// conditions attach to Populate, so untrusted derivations never enter the
// provenance table (and hence never derive data) — the inline filtering
// of §4.2.
func (m *TGD) Encode() *ProvEncoding {
	vars := m.LHSVars()
	frontier := m.FrontierVars()
	isExist := make(map[string]bool)
	for _, v := range m.ExistentialVars() {
		isExist[v] = true
	}

	enc := &ProvEncoding{TGD: m, ProvRel: m.ProvRelName(), ProvVars: vars}

	provArgs := make([]datalog.Term, len(vars))
	for i, v := range vars {
		provArgs[i] = datalog.V(v)
	}
	provAtom := datalog.Atom{Pred: enc.ProvRel, Args: provArgs}

	body := make([]datalog.Literal, len(m.LHS))
	for i, a := range m.LHS {
		body[i] = datalog.Pos(a)
	}
	enc.Populate = datalog.NewRule(m.ID+"'", provAtom, body...)

	for k, rhs := range m.RHS {
		head := datalog.Atom{Pred: rhs.Pred, Args: make([]datalog.Term, len(rhs.Args))}
		for i, t := range rhs.Args {
			if t.Kind == datalog.TermVar {
				head.Args[i] = m.skolemTerm(t.Var, frontier, isExist)
			} else {
				head.Args[i] = t
			}
		}
		id := fmt.Sprintf("%s''", m.ID)
		if len(m.RHS) > 1 {
			id = fmt.Sprintf("%s''#%d", m.ID, k)
		}
		enc.Derive = append(enc.Derive, datalog.NewRule(id, head, datalog.Pos(provAtom)))
	}
	return enc
}

// EncodeSplit produces the pre-optimization provenance encoding §5
// describes trying first: one provenance table *per RHS atom* instead of
// one composite table per tgd. Each split has the same columns (the
// distinct LHS variables) and its own copy of the populate rule — the
// redundancy the composite mapping table eliminates. Splits share the
// tgd's Skolem functions, so both encodings produce identical instances.
func (m *TGD) EncodeSplit() []*ProvEncoding {
	composite := m.Encode()
	if len(m.RHS) == 1 {
		return []*ProvEncoding{composite}
	}
	var out []*ProvEncoding
	for k := range m.RHS {
		provRel := fmt.Sprintf("%s#%d", m.ProvRelName(), k)
		enc := &ProvEncoding{TGD: m, ProvRel: provRel, ProvVars: composite.ProvVars}

		provArgs := make([]datalog.Term, len(enc.ProvVars))
		for i, v := range enc.ProvVars {
			provArgs[i] = datalog.V(v)
		}
		provAtom := datalog.Atom{Pred: provRel, Args: provArgs}
		body := make([]datalog.Literal, len(m.LHS))
		for i, a := range m.LHS {
			body[i] = datalog.Pos(a)
		}
		enc.Populate = datalog.NewRule(fmt.Sprintf("%s'#%d", m.ID, k), provAtom, body...)
		// The derive rule reuses the composite head (same Skolem terms)
		// over this split's table.
		head := composite.Derive[k].Head
		enc.Derive = []*datalog.Rule{
			datalog.NewRule(fmt.Sprintf("%s''#%d", m.ID, k), head, datalog.Pos(provAtom)),
		}
		out = append(out, enc)
	}
	return out
}

// RenameRels returns a copy of the tgd with relation names rewritten by
// fn, applied to both sides. Used to build the internal mappings M′
// (LHS→Rᵒ, RHS→Rⁱ; §3.1).
func (m *TGD) RenameRels(lhsFn, rhsFn func(string) string) *TGD {
	out := &TGD{ID: m.ID}
	for _, a := range m.LHS {
		out.LHS = append(out.LHS, datalog.Atom{Pred: lhsFn(a.Pred), Args: a.Args})
	}
	for _, a := range m.RHS {
		out.RHS = append(out.RHS, datalog.Atom{Pred: rhsFn(a.Pred), Args: a.Args})
	}
	return out
}
