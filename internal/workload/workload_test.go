package workload

import (
	"context"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/engine"
	"orchestra/internal/swissprot"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Peers: 4, Seed: 7, Topology: TopologyRandom}
	w1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Spec.Mappings) != len(w2.Spec.Mappings) {
		t.Fatal("mapping counts differ across identical seeds")
	}
	for i := range w1.Spec.Mappings {
		if w1.Spec.Mappings[i].String() != w2.Spec.Mappings[i].String() {
			t.Fatalf("mapping %d differs:\n%s\n%s", i, w1.Spec.Mappings[i], w2.Spec.Mappings[i])
		}
	}
	l1 := w1.GenInsertions("p1", 3)
	l2 := w2.GenInsertions("p1", 3)
	if len(l1) != len(l2) {
		t.Fatal("insertion logs differ")
	}
	for i := range l1 {
		if l1[i].String() != l2[i].String() {
			t.Fatalf("edit %d differs: %s vs %s", i, l1[i], l2[i])
		}
	}
}

func TestSchemaShape(t *testing.T) {
	w, err := New(Config{Peers: 5, Seed: 3, MaxRelsPerPeer: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.PeerNames()) != 5 {
		t.Fatalf("peers: %v", w.PeerNames())
	}
	for _, p := range w.Spec.Universe.Peers() {
		rels := p.Schema.Relations()
		if len(rels) < 1 || len(rels) > 3 {
			t.Fatalf("peer %s has %d relations", p.Name, len(rels))
		}
		attrs := 0
		for _, r := range rels {
			if r.Cols[0].Name != "key" {
				t.Fatalf("relation %s lacks leading key", r.Name)
			}
			attrs += r.Arity() - 1
		}
		if attrs < 6 || attrs > 12 {
			t.Fatalf("peer %s has %d attributes", p.Name, attrs)
		}
	}
}

func TestTopologies(t *testing.T) {
	chain, err := New(Config{Peers: 5, Seed: 1, Topology: TopologyChain})
	if err != nil {
		t.Fatal(err)
	}
	if len(chain.Spec.Mappings) != 4 {
		t.Fatalf("chain mappings = %d", len(chain.Spec.Mappings))
	}
	// Complete topology requires full tgds (AttrsShared) — the paper's
	// "full mappings" setting — otherwise weak acyclicity fails.
	full, err := New(Config{Peers: 5, Seed: 1, Topology: TopologyComplete, AttrMode: AttrsShared})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Spec.Mappings) != 20 {
		t.Fatalf("complete mappings = %d", len(full.Spec.Mappings))
	}
	for _, m := range full.Spec.Mappings {
		if len(m.ExistentialVars()) != 0 {
			t.Fatalf("full mapping %s has existentials", m.ID)
		}
	}
	if _, err := New(Config{Peers: 5, Seed: 1, Topology: TopologyComplete, AttrMode: AttrsRandom}); err == nil {
		t.Fatal("complete topology with random attrs should fail weak acyclicity")
	}
	rnd, err := New(Config{Peers: 6, Seed: 1, Topology: TopologyRandom, AvgNeighbors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rnd.Spec.Mappings) < 5 {
		t.Fatalf("random mappings = %d", len(rnd.Spec.Mappings))
	}
}

func TestExtraCyclesStillWeaklyAcyclic(t *testing.T) {
	// With nested attribute subsets, reverse mappings are full tgds, so
	// topology cycles keep the set weakly acyclic (Fig. 10's setting);
	// NewSpec would reject otherwise.
	for cycles := 0; cycles <= 3; cycles++ {
		w, err := New(Config{Peers: 5, Seed: 2, Topology: TopologyRandom, ExtraCycles: cycles, AttrMode: AttrsNested})
		if err != nil {
			t.Fatalf("cycles=%d: %v", cycles, err)
		}
		want := len(w.Edges)
		if len(w.Spec.Mappings) != want {
			t.Fatalf("cycles=%d: mappings %d != edges %d", cycles, len(w.Spec.Mappings), want)
		}
	}
	// Cycle workloads must actually run to fixpoint.
	w, err := New(Config{Peers: 3, Seed: 5, Topology: TopologyRandom, ExtraCycles: 2, Dataset: DatasetInteger, AttrMode: AttrsNested})
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.NewView(w.Spec, "", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, log := range w.GenBase(5) {
		if _, err := v.ApplyEdits(context.Background(), log, core.DeleteProvenance); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInsertionsAndDeletions(t *testing.T) {
	w, err := New(Config{Peers: 2, Seed: 9, Dataset: DatasetInteger})
	if err != nil {
		t.Fatal(err)
	}
	ins := w.GenInsertions("p1", 4)
	nRels := len(w.Spec.Universe.Peer("p1").Schema.Relations())
	if len(ins) != 4*nRels {
		t.Fatalf("insertion log has %d edits, want %d", len(ins), 4*nRels)
	}
	if w.InsertedEntries("p1") != 4 {
		t.Fatal("InsertedEntries")
	}
	del := w.GenDeletions("p1", 2)
	if len(del) != 2*nRels {
		t.Fatalf("deletion log has %d edits, want %d", len(del), 2*nRels)
	}
	for _, e := range del {
		if e.Insert {
			t.Fatal("deletion log contains insert")
		}
	}
	if w.InsertedEntries("p1") != 2 {
		t.Fatal("InsertedEntries after deletion")
	}
	// Deleting more than available clamps.
	if got := w.GenDeletions("p1", 10); len(got) != 2*nRels {
		t.Fatalf("over-deletion log has %d edits", len(got))
	}
}

func TestDatasets(t *testing.T) {
	ws, _ := New(Config{Peers: 2, Seed: 4, Dataset: DatasetString})
	wi, _ := New(Config{Peers: 2, Seed: 4, Dataset: DatasetInteger})
	ls := ws.GenInsertions("p1", 1)
	li := wi.GenInsertions("p1", 1)
	var sBytes, iBytes int
	for _, e := range ls {
		sBytes += e.Tuple.EncodedLen()
	}
	for _, e := range li {
		iBytes += e.Tuple.EncodedLen()
	}
	if sBytes <= iBytes {
		t.Fatalf("string tuples (%dB) should be larger than integer tuples (%dB)", sBytes, iBytes)
	}
}

func TestEndToEndExchange(t *testing.T) {
	// A small workload flows data across the chain, including nulls for
	// target-only attributes, on both backends.
	for _, be := range []engine.Backend{engine.BackendIndexed, engine.BackendHash} {
		w, err := New(Config{Peers: 3, Seed: 11, Dataset: DatasetInteger, Topology: TopologyChain})
		if err != nil {
			t.Fatal(err)
		}
		v, err := core.NewView(w.Spec, "", core.Options{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		for _, peer := range w.PeerNames() {
			if _, err := v.ApplyEdits(context.Background(), w.GenInsertions(peer, 3), core.DeleteProvenance); err != nil {
				t.Fatal(err)
			}
		}
		// Every relation of the downstream peer must have input tuples.
		last := w.PeerNames()[len(w.PeerNames())-1]
		for _, rel := range w.Spec.Universe.Peer(last).Schema.Relations() {
			if v.InputTable(rel.Name).Len() == 0 {
				t.Fatalf("backend %s: no data mapped into %s", be, rel.Name)
			}
		}
		// Incremental deletion equals recomputation on this workload.
		delLog := w.GenDeletions(w.PeerNames()[0], 1)
		if _, err := v.ApplyEdits(context.Background(), delLog, core.DeleteProvenance); err != nil {
			t.Fatal(err)
		}
		if _, err := v.FullRecompute(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSwissprotEntryShape(t *testing.T) {
	r := newSeeded(5)
	e := swissprot.Generate(r)
	if len(e.Fields[24]) < 100 {
		t.Fatal("sequence too short")
	}
	if e.Fields[3] != "PRT" {
		t.Fatal("molecule type")
	}
	// Integer hashing is deterministic and non-negative.
	v1, v2 := e.IntValue(8), e.IntValue(8)
	if v1 != v2 || v1.AsInt() < 0 {
		t.Fatal("IntValue")
	}
	if len(swissprot.AttrNames()) != swissprot.NumAttrs {
		t.Fatal("attr names")
	}
}
