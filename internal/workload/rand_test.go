package workload

import "math/rand"

func newSeeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
