// Package workload implements the paper's synthetic workload generator
// (§6.1): peers are carved out of a 25-attribute SWISS-PROT universal
// relation — a Zipfian number of relations per peer, a random attribute
// subset partitioned across those relations plus a shared key to preserve
// losslessness — and mappings join all relations at the source peer and
// populate all relations at the target peer through their shared
// attributes. Fresh insertions sample new entries under new keys;
// deletions sample among prior insertions.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"orchestra/internal/core"
	"orchestra/internal/datalog"
	"orchestra/internal/schema"
	"orchestra/internal/swissprot"
	"orchestra/internal/tgd"
	"orchestra/internal/value"
)

// Dataset selects tuple payloads: heavy strings or hashed integers
// (§6.1's "string" and "integer" datasets).
type Dataset uint8

const (
	DatasetString Dataset = iota
	DatasetInteger
)

func (d Dataset) String() string {
	if d == DatasetInteger {
		return "integer"
	}
	return "string"
}

// Topology selects the peer-graph shape.
type Topology uint8

const (
	// TopologyChain links peer i to peer i+1 (the "n−1 mappings among n
	// peers" setting of §6.4).
	TopologyChain Topology = iota
	// TopologyComplete maps every peer into every other (the "full
	// mappings" setting of §6.3).
	TopologyComplete
	// TopologyRandom wires an acyclic random graph with roughly
	// AvgNeighbors outgoing mappings per peer (§6.5's base setting).
	TopologyRandom
)

func (t Topology) String() string {
	switch t {
	case TopologyComplete:
		return "complete"
	case TopologyRandom:
		return "random"
	default:
		return "chain"
	}
}

// AttrMode controls how peers' attribute subsets relate, which in turn
// controls where existential variables (and hence labeled nulls) appear.
type AttrMode uint8

const (
	// AttrsRandom draws an independent subset per peer: mappings carry
	// existentials in both directions. Safe for acyclic topologies; a
	// cyclic topology would make the chase diverge (and is rejected by
	// the weak-acyclicity check).
	AttrsRandom AttrMode = iota
	// AttrsShared gives every peer the same attribute subset, so every
	// mapping is a full tgd (no existentials) — the paper's "full
	// mappings" setting (Fig. 4); any topology, including complete, is
	// then weakly acyclic.
	AttrsShared
	// AttrsNested nests subsets along the peer order (peer 1 ⊂ peer 2 ⊂
	// …): forward mappings carry existentials, reverse mappings are full,
	// so adding topology cycles (Fig. 10) preserves weak acyclicity while
	// nulls still multiply around the cycles.
	AttrsNested
)

func (m AttrMode) String() string {
	switch m {
	case AttrsShared:
		return "shared"
	case AttrsNested:
		return "nested"
	default:
		return "random"
	}
}

// Config parameterizes the generator. Zero values get §6-flavored
// defaults.
type Config struct {
	Peers int
	// MaxRelsPerPeer bounds the Zipfian relation count (default 3).
	MaxRelsPerPeer int
	// MinAttrs/MaxAttrs bound each peer's attribute subset (defaults 6/12).
	MinAttrs, MaxAttrs int
	Dataset            Dataset
	Topology           Topology
	AttrMode           AttrMode
	// AvgNeighbors is the mean outgoing degree for TopologyRandom
	// (default 2, §6.5).
	AvgNeighbors int
	// ExtraCycles reverses existing edges to create this many cycles in
	// the mapping graph (§6.5 "manually added cycles"). Requires an
	// AttrMode whose reverse mappings stay weakly acyclic (AttrsShared or
	// AttrsNested).
	ExtraCycles int
	// ZipfS is the Zipf skew for relation counts (default 1.5).
	ZipfS float64
	Seed  int64
}

func (c Config) withDefaults() Config {
	if c.Peers <= 0 {
		c.Peers = 2
	}
	if c.MaxRelsPerPeer <= 0 {
		c.MaxRelsPerPeer = 3
	}
	if c.MinAttrs <= 0 {
		c.MinAttrs = 6
	}
	if c.MaxAttrs <= 0 {
		c.MaxAttrs = 12
	}
	if c.MaxAttrs > swissprot.NumAttrs {
		c.MaxAttrs = swissprot.NumAttrs
	}
	if c.MinAttrs > c.MaxAttrs {
		c.MinAttrs = c.MaxAttrs
	}
	if c.AvgNeighbors <= 0 {
		c.AvgNeighbors = 2
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.5
	}
	return c
}

// peerInfo records how one peer was carved from the universal relation.
type peerInfo struct {
	name  string
	attrs []int   // indices into the universal attributes, sorted
	parts [][]int // partition of attrs across this peer's relations
	rels  []string
}

// insertionRecord remembers a base entry inserted at a peer so deletions
// can sample among prior insertions (§6.1).
type insertionRecord struct {
	key   value.Value
	edits core.EditLog
}

// Workload is a generated CDSS configuration plus its data generators.
type Workload struct {
	Cfg      Config
	Spec     *core.Spec
	rng      *rand.Rand
	peers    []peerInfo
	universe *schema.Universe
	// Edges are the generated peer-graph arcs (source, target indices).
	Edges [][2]int

	nextKey    int64
	insertions map[string][]insertionRecord
	deleted    map[string]int // per peer: count of already-deleted records
}

// New builds a workload from the configuration. The same configuration
// always yields the same CDSS and data.
func New(cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	w := &Workload{
		Cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		insertions: make(map[string][]insertionRecord),
		deleted:    make(map[string]int),
	}
	if err := w.buildPeers(); err != nil {
		return nil, err
	}
	if err := w.buildMappings(); err != nil {
		return nil, err
	}
	return w, nil
}

// zipfInt draws from {1..max} with Zipf skew s.
func zipfInt(r *rand.Rand, max int, s float64) int {
	if max <= 1 {
		return 1
	}
	z := rand.NewZipf(r, s, 1, uint64(max-1))
	return int(z.Uint64()) + 1
}

func (w *Workload) buildPeers() error {
	u := schema.NewUniverse()
	// For AttrsShared every peer uses this common pool; for AttrsNested
	// peer i takes a growing prefix of it.
	poolSize := w.Cfg.MaxAttrs
	pool := w.rng.Perm(swissprot.NumAttrs)[:poolSize]
	for p := 0; p < w.Cfg.Peers; p++ {
		name := fmt.Sprintf("p%d", p+1)
		var attrs []int
		switch w.Cfg.AttrMode {
		case AttrsShared:
			attrs = append([]int(nil), pool[:w.Cfg.MinAttrs]...)
		case AttrsNested:
			// Sizes spread from MinAttrs (first peer) to MaxAttrs (last).
			span := w.Cfg.MaxAttrs - w.Cfg.MinAttrs
			n := w.Cfg.MinAttrs
			if w.Cfg.Peers > 1 {
				n += span * p / (w.Cfg.Peers - 1)
			}
			attrs = append([]int(nil), pool[:n]...)
		default:
			nAttrs := w.Cfg.MinAttrs + w.rng.Intn(w.Cfg.MaxAttrs-w.Cfg.MinAttrs+1)
			attrs = w.rng.Perm(swissprot.NumAttrs)[:nAttrs]
		}
		sort.Ints(attrs)

		nRels := zipfInt(w.rng, w.Cfg.MaxRelsPerPeer, w.Cfg.ZipfS)
		if nRels > len(attrs) {
			nRels = len(attrs)
		}
		// Partition attrs across nRels relations: each gets at least one.
		parts := make([][]int, nRels)
		for i, a := range attrs {
			if i < nRels {
				parts[i] = append(parts[i], a)
			} else {
				k := w.rng.Intn(nRels)
				parts[k] = append(parts[k], a)
			}
		}

		peer := schema.NewPeer(name)
		info := peerInfo{name: name, attrs: attrs, parts: parts}
		colType := schema.TypeString
		if w.Cfg.Dataset == DatasetInteger {
			colType = schema.TypeInt
		}
		for ri, part := range parts {
			relName := fmt.Sprintf("%s_r%d", name, ri+1)
			cols := []schema.Column{{Name: "key", Type: schema.TypeInt}}
			for _, a := range part {
				cols = append(cols, schema.Column{Name: swissprot.AttrName(a), Type: colType})
			}
			if _, err := peer.AddRelation(relName, cols...); err != nil {
				return err
			}
			info.rels = append(info.rels, relName)
		}
		if err := u.AddPeer(peer); err != nil {
			return err
		}
		w.peers = append(w.peers, info)
	}
	w.universe = u
	return nil
}

func (w *Workload) buildMappings() error {
	switch w.Cfg.Topology {
	case TopologyComplete:
		for i := range w.peers {
			for j := range w.peers {
				if i != j {
					w.Edges = append(w.Edges, [2]int{i, j})
				}
			}
		}
	case TopologyRandom:
		// Acyclic base: edges go from lower to higher index; a spanning
		// chain guarantees connectivity, extra random forward edges reach
		// the requested average degree.
		n := len(w.peers)
		for i := 0; i+1 < n; i++ {
			w.Edges = append(w.Edges, [2]int{i, i + 1})
		}
		want := w.Cfg.AvgNeighbors * n
		seen := make(map[[2]int]bool)
		for _, e := range w.Edges {
			seen[e] = true
		}
		for guard := 0; len(w.Edges) < want && guard < 50*n; guard++ {
			if n < 3 {
				break
			}
			i := w.rng.Intn(n - 1)
			j := i + 1 + w.rng.Intn(n-i-1)
			e := [2]int{i, j}
			if !seen[e] {
				seen[e] = true
				w.Edges = append(w.Edges, e)
			}
		}
	default: // chain
		for i := 0; i+1 < len(w.peers); i++ {
			w.Edges = append(w.Edges, [2]int{i, i + 1})
		}
	}

	// Manually added cycles (§6.5): reverse copies of existing edges.
	for c := 0; c < w.Cfg.ExtraCycles && c < len(w.Edges); c++ {
		e := w.Edges[c]
		w.Edges = append(w.Edges, [2]int{e[1], e[0]})
	}

	var mappings []*tgd.TGD
	for _, e := range w.Edges {
		mappings = append(mappings, w.mappingFor(e[0], e[1]))
	}
	spec, err := core.NewSpec(w.universe, mappings, nil)
	if err != nil {
		return err
	}
	w.Spec = spec
	return nil
}

// mappingFor builds the tgd from peer src to peer dst: LHS joins all of
// src's relations on the key, RHS populates all of dst's relations;
// attributes absent at src are existential at dst.
func (w *Workload) mappingFor(src, dst int) *tgd.TGD {
	s, d := &w.peers[src], &w.peers[dst]
	m := &tgd.TGD{ID: fmt.Sprintf("m_%s_%s", s.name, d.name)}
	varOf := func(attr int) datalog.Term { return datalog.V(fmt.Sprintf("a%d", attr)) }
	key := datalog.V("k")
	for ri, part := range s.parts {
		args := []datalog.Term{key}
		for _, a := range part {
			args = append(args, varOf(a))
		}
		m.LHS = append(m.LHS, datalog.NewAtom(s.rels[ri], args...))
	}
	for ri, part := range d.parts {
		args := []datalog.Term{key}
		for _, a := range part {
			args = append(args, varOf(a))
		}
		m.RHS = append(m.RHS, datalog.NewAtom(d.rels[ri], args...))
	}
	return m
}

// PeerNames returns the generated peer names in order.
func (w *Workload) PeerNames() []string {
	out := make([]string, len(w.peers))
	for i, p := range w.peers {
		out[i] = p.name
	}
	return out
}

// entryValues renders a universal entry's attribute values for the
// configured dataset.
func (w *Workload) entryValue(e *swissprot.Entry, attr int) value.Value {
	if w.Cfg.Dataset == DatasetInteger {
		return e.IntValue(attr)
	}
	return e.StringValue(attr)
}

// GenInsertions samples n fresh SWISS-PROT entries for a peer, each under
// a new key, normalized into the peer's relations. The returned edit log
// inserts one tuple per relation per entry.
func (w *Workload) GenInsertions(peer string, n int) core.EditLog {
	info := w.peerInfo(peer)
	var log core.EditLog
	for i := 0; i < n; i++ {
		e := swissprot.Generate(w.rng)
		w.nextKey++
		key := value.Int(w.nextKey)
		rec := insertionRecord{key: key}
		for ri, part := range info.parts {
			t := value.Tuple{key}
			for _, a := range part {
				t = append(t, w.entryValue(&e, a))
			}
			rec.edits = append(rec.edits, core.Ins(info.rels[ri], t))
		}
		log = append(log, rec.edits...)
		w.insertions[peer] = append(w.insertions[peer], rec)
	}
	return log
}

// GenBase generates base insertions for every peer ("base size" entries
// each, §6.2 terminology).
func (w *Workload) GenBase(entriesPerPeer int) map[string]core.EditLog {
	out := make(map[string]core.EditLog)
	for _, p := range w.peers {
		out[p.name] = w.GenInsertions(p.name, entriesPerPeer)
	}
	return out
}

// GenDeletions samples n of the peer's prior insertions (oldest first)
// and produces the edit log deleting all their tuples.
func (w *Workload) GenDeletions(peer string, n int) core.EditLog {
	recs := w.insertions[peer]
	start := w.deleted[peer]
	var log core.EditLog
	for i := 0; i < n && start+i < len(recs); i++ {
		for _, e := range recs[start+i].edits {
			log = append(log, core.Del(e.Rel, e.Tuple))
		}
	}
	w.deleted[peer] += min(n, len(recs)-start)
	return log
}

// InsertedEntries reports how many live (not yet deleted) entries a peer
// has contributed.
func (w *Workload) InsertedEntries(peer string) int {
	return len(w.insertions[peer]) - w.deleted[peer]
}

func (w *Workload) peerInfo(name string) *peerInfo {
	for i := range w.peers {
		if w.peers[i].name == name {
			return &w.peers[i]
		}
	}
	panic(fmt.Sprintf("workload: unknown peer %q", name))
}
