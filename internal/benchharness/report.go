package benchharness

import (
	"encoding/json"
	"runtime"
	"testing"
)

// BenchResult is one GoBench case's measurement in a BENCH_*.json
// snapshot.
type BenchResult struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the machine-readable form of a full benchmark run —
// the format of the committed BENCH_*.json snapshots that record the
// repo's performance trajectory. Snapshots are comparable when GoVersion,
// GOOS, GOARCH, and the case set match.
type BenchReport struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []BenchResult `json:"results"`
}

// RunGoBenches runs every GoBench case accepted by match (nil = all)
// under testing.Benchmark and collects the measurements. progress, if
// non-nil, is called before each case runs.
func RunGoBenches(match func(GoBench) bool, progress func(name string)) BenchReport {
	rep := BenchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, c := range GoBenches() {
		if match != nil && !match(c) {
			continue
		}
		if progress != nil {
			progress(c.Name)
		}
		r := testing.Benchmark(c.Run)
		res := BenchResult{
			Name:        c.Name,
			Runs:        r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.MemAllocs) / float64(r.N),
			BytesPerOp:  float64(r.MemBytes) / float64(r.N),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// MarshalIndent renders the report as committed-snapshot JSON.
func (r BenchReport) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
