package benchharness

import (
	"encoding/json"
	"runtime"
	"testing"
)

// BenchResult is one GoBench case's measurement in a BENCH_*.json
// snapshot.
type BenchResult struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the machine-readable form of a full benchmark run —
// the format of the committed BENCH_*.json snapshots that record the
// repo's performance trajectory. Snapshots are comparable when GoVersion,
// GOOS, GOARCH, and the case set match.
type BenchReport struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []BenchResult `json:"results"`
}

// RunGoBenches runs every GoBench case accepted by match (nil = all)
// under testing.Benchmark and collects the measurements. progress, if
// non-nil, is called before each case runs.
func RunGoBenches(match func(GoBench) bool, progress func(name string)) BenchReport {
	return RunGoBenchesN(match, progress, 1)
}

// RunGoBenchesN is RunGoBenches with noise suppression: each case is
// measured samples times and each metric keeps its minimum — the
// cheapest observed run is the closest estimate of the code's true
// cost, with scheduler and cache interference excluded. Tight-threshold
// gates (make bench-serving) rely on this.
func RunGoBenchesN(match func(GoBench) bool, progress func(name string), samples int) BenchReport {
	rep := BenchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if samples < 1 {
		samples = 1
	}
	for _, c := range GoBenches() {
		if match != nil && !match(c) {
			continue
		}
		if progress != nil {
			progress(c.Name)
		}
		var res BenchResult
		for s := 0; s < samples; s++ {
			r := testing.Benchmark(c.Run)
			cur := BenchResult{
				Name:        c.Name,
				Runs:        r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: float64(r.MemAllocs) / float64(r.N),
				BytesPerOp:  float64(r.MemBytes) / float64(r.N),
			}
			if len(r.Extra) > 0 {
				cur.Metrics = make(map[string]float64, len(r.Extra))
				for k, v := range r.Extra {
					cur.Metrics[k] = v
				}
			}
			if s == 0 {
				res = cur
				continue
			}
			res.Runs += cur.Runs
			res.NsPerOp = min(res.NsPerOp, cur.NsPerOp)
			res.AllocsPerOp = min(res.AllocsPerOp, cur.AllocsPerOp)
			res.BytesPerOp = min(res.BytesPerOp, cur.BytesPerOp)
			for k, v := range cur.Metrics {
				if prev, ok := res.Metrics[k]; !ok || v < prev {
					if res.Metrics == nil {
						res.Metrics = make(map[string]float64)
					}
					res.Metrics[k] = v
				}
			}
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// MarshalIndent renders the report as committed-snapshot JSON.
func (r BenchReport) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
