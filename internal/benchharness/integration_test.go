package benchharness

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/engine"
	"orchestra/internal/value"
	"orchestra/internal/workload"
)

// canonicalState renders every table of a view with labeled nulls
// replaced by their Skolem-term structure, for cross-view comparison.
func canonicalState(v *core.View) []string {
	var out []string
	db := v.DB()
	for _, name := range db.Names() {
		db.Table(name).Each(func(row value.Tuple) bool {
			parts := make([]string, len(row))
			for i, val := range row {
				parts[i] = v.Skolems().Describe(val)
			}
			out = append(out, fmt.Sprintf("%s%v", name, parts))
			return true
		})
	}
	sort.Strings(out)
	return out
}

// TestWorkloadMaintenanceEquivalence is the repository's heaviest
// property test: on synthetic §6.1 confederations, random epochs of
// insertions and deletions maintained with every (strategy × backend)
// combination must all converge to the same consistent state (Def. 3.1),
// compared table-by-table including provenance relations.
func TestWorkloadMaintenanceEquivalence(t *testing.T) {
	configs := []workload.Config{
		{Peers: 3, Topology: workload.TopologyChain, AttrMode: workload.AttrsRandom, Dataset: workload.DatasetInteger, Seed: 21},
		{Peers: 4, Topology: workload.TopologyComplete, AttrMode: workload.AttrsShared, Dataset: workload.DatasetInteger, Seed: 22},
		{Peers: 4, Topology: workload.TopologyRandom, AttrMode: workload.AttrsNested, ExtraCycles: 2, Dataset: workload.DatasetInteger, Seed: 23},
	}
	type variant struct {
		strategy core.DeletionStrategy
		backend  engine.Backend
	}
	variants := []variant{
		{core.DeleteProvenance, engine.BackendIndexed},
		{core.DeleteProvenance, engine.BackendHash},
		{core.DeleteDRed, engine.BackendIndexed},
		{core.DeleteRecompute, engine.BackendIndexed},
	}

	for ci, cfg := range configs {
		// Script the epochs once per config so all variants replay the
		// exact same logs.
		script := buildScript(t, cfg)
		var reference []string
		for vi, vr := range variants {
			v, err := core.NewView(mustWorkload(t, cfg).Spec, "", core.Options{Backend: vr.backend})
			if err != nil {
				t.Fatal(err)
			}
			for _, log := range script {
				if _, err := v.ApplyEdits(context.Background(), log, vr.strategy); err != nil {
					t.Fatalf("config %d variant %s/%s: %v", ci, vr.strategy, vr.backend, err)
				}
			}
			state := canonicalState(v)
			if vi == 0 {
				reference = state
				continue
			}
			if len(state) != len(reference) {
				t.Fatalf("config %d: %s/%s has %d rows, reference %d",
					ci, vr.strategy, vr.backend, len(state), len(reference))
			}
			for ri := range state {
				if state[ri] != reference[ri] {
					t.Fatalf("config %d: %s/%s row %d:\n  got  %s\n  want %s",
						ci, vr.strategy, vr.backend, ri, state[ri], reference[ri])
				}
			}
		}
	}
}

func mustWorkload(t *testing.T, cfg workload.Config) *workload.Workload {
	t.Helper()
	w, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// buildScript generates a deterministic sequence of edit logs: base
// insertions, then interleaved insertion/deletion epochs.
func buildScript(t *testing.T, cfg workload.Config) []core.EditLog {
	t.Helper()
	w := mustWorkload(t, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed * 7))
	var script []core.EditLog
	for _, peer := range w.PeerNames() {
		script = append(script, w.GenInsertions(peer, 4))
	}
	for epoch := 0; epoch < 3; epoch++ {
		for _, peer := range w.PeerNames() {
			switch rng.Intn(3) {
			case 0:
				script = append(script, w.GenInsertions(peer, 2))
			case 1:
				script = append(script, w.GenDeletions(peer, 1))
			default:
				log := w.GenInsertions(peer, 1)
				log = append(log, w.GenDeletions(peer, 1)...)
				script = append(script, log)
			}
		}
	}
	return script
}
