package benchharness

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func report(results ...BenchResult) BenchReport {
	return BenchReport{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 1, Results: results}
}

func res(name string, ns, allocs float64) BenchResult {
	return BenchResult{Name: name, Runs: 1, NsPerOp: ns, AllocsPerOp: allocs}
}

// TestCompareClean: identical and improved measurements pass the gate.
func TestCompareClean(t *testing.T) {
	old := report(res("Fig5/a", 1000, 50), res("Fig5/b", 2000, 80))
	new := report(res("Fig5/a", 1000, 50), res("Fig5/b", 900, 10)) // b improved
	c := CompareReports(old, new, 15)
	if !c.Ok() {
		t.Fatalf("unexpected regressions: %v", c.Regressions)
	}
	if c.Compared != 2 {
		t.Fatalf("compared %d cases, want 2", c.Compared)
	}
}

// TestCompareSyntheticRegression: a case pushed past the threshold on
// each metric trips the gate; sub-threshold drift does not.
func TestCompareSyntheticRegression(t *testing.T) {
	old := report(res("Fig5/a", 1000, 100), res("Fig5/b", 1000, 100), res("Fig5/c", 1000, 100))
	new := report(
		res("Fig5/a", 1300, 100), // +30% ns/op: regression
		res("Fig5/b", 1000, 120), // +20% allocs/op: regression
		res("Fig5/c", 1100, 110), // +10% both: inside a 15% threshold
	)
	c := CompareReports(old, new, 15)
	if len(c.Regressions) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(c.Regressions), c.Regressions)
	}
	if r := c.Regressions[0]; r.Name != "Fig5/a" || r.Metric != "ns/op" || math.Abs(r.Pct-30) > 1e-9 {
		t.Fatalf("first regression = %+v", r)
	}
	if r := c.Regressions[1]; r.Name != "Fig5/b" || r.Metric != "allocs/op" || math.Abs(r.Pct-20) > 1e-9 {
		t.Fatalf("second regression = %+v", r)
	}
}

// TestCompareZeroBaseline: growing from zero allocations is always a
// regression, whatever the threshold.
func TestCompareZeroBaseline(t *testing.T) {
	old := report(res("Fig7/zero", 1000, 0))
	new := report(res("Fig7/zero", 1000, 1))
	c := CompareReports(old, new, 1000)
	if len(c.Regressions) != 1 || !math.IsInf(c.Regressions[0].Pct, 1) {
		t.Fatalf("regressions = %v", c.Regressions)
	}
}

// TestCompareCaseSets: added and removed cases are reported but do not
// fail the gate.
func TestCompareCaseSets(t *testing.T) {
	old := report(res("Fig5/kept", 1000, 10), res("Fig5/removed", 1000, 10))
	new := report(res("Fig5/kept", 1000, 10), res("Fig5/added", 1, 1))
	c := CompareReports(old, new, 15)
	if !c.Ok() {
		t.Fatalf("unexpected regressions: %v", c.Regressions)
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "Fig5/removed" {
		t.Fatalf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "Fig5/added" {
		t.Fatalf("OnlyNew = %v", c.OnlyNew)
	}
	if c.Compared != 1 {
		t.Fatalf("compared %d, want 1", c.Compared)
	}
}

// TestLoadReportRoundTrip writes a report with MarshalIndent and reads
// it back with LoadReport — the exact committed-snapshot path benchfig
// -compare exercises.
func TestLoadReportRoundTrip(t *testing.T) {
	rep := report(res("Fig5/a", 123.5, 7))
	b, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.GoVersion != rep.GoVersion {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if g, w := got.Results[0], rep.Results[0]; g.Name != w.Name || g.NsPerOp != w.NsPerOp || g.AllocsPerOp != w.AllocsPerOp {
		t.Fatalf("round-trip result mismatch: %+v vs %+v", g, w)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
