package benchharness

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/engine"
	"orchestra/internal/exchange"
	"orchestra/internal/tgd"
	"orchestra/internal/workload"
)

// GoBench is one Go benchmark case reproducing a slice of a paper figure.
// The cases back both bench_test.go (go test -bench) and cmd/benchfig
// -json, so the committed BENCH_*.json snapshots measure exactly what the
// benchmarks measure.
type GoBench struct {
	// Fig is the paper figure the case belongs to (0 for ablations).
	Fig int
	// Name is the full benchmark name, e.g. "Fig5/db2_integer".
	Name string
	// Sub is the sub-benchmark name under the figure's family.
	Sub string
	// Run is the benchmark body.
	Run func(b *testing.B)
}

const goBenchSeed = 42

// goBenchFig4Config is Figure 4's setting: 5 peers, full mappings (full
// tgds, complete topology), string dataset.
func goBenchFig4Config() workload.Config {
	return workload.Config{
		Peers:    5,
		Topology: workload.TopologyComplete,
		AttrMode: workload.AttrsShared,
		Dataset:  workload.DatasetString,
		Seed:     goBenchSeed,
	}
}

// goBenchChainConfig is the §6.4 scale-up setting.
func goBenchChainConfig(peers int, ds workload.Dataset) workload.Config {
	return workload.Config{
		Peers:    peers,
		Topology: workload.TopologyChain,
		AttrMode: workload.AttrsRandom,
		Dataset:  ds,
		Seed:     goBenchSeed,
	}
}

// goBenchDeletionLogs builds per-peer deletion logs covering `entries`
// entries.
func goBenchDeletionLogs(w *workload.Workload, entries int) []core.EditLog {
	var logs []core.EditLog
	for _, peer := range w.PeerNames() {
		logs = append(logs, w.GenDeletions(peer, entries))
	}
	return logs
}

// Serving-benchmark parameters: a 4-peer fully connected confederation
// with shared attributes (so every relation pair joins), integer data,
// and one single-entry write per 64 served queries.
const servingBase, servingWriteEvery = 50, 64

func servingConfig() workload.Config {
	return workload.Config{
		Peers:    4,
		Topology: workload.TopologyComplete,
		AttrMode: workload.AttrsShared,
		Dataset:  workload.DatasetInteger,
		Seed:     goBenchSeed,
	}
}

// servingQueries builds the hot query rotation over a seeded view — one
// point probe per relation (a constant key sampled from the live
// instance) plus joins over shared non-key attributes — and the
// (relation, column) index declarations the optimized variant installs
// to serve those probes from warm indexes.
func servingQueries(spec *core.Spec, v *core.View) (queries []string, indexes [][2]string) {
	rels := spec.Universe.Relations()
	for qi, r := range rels {
		rows := v.Instance(r.Name).Rows()
		if len(rows) == 0 || len(r.Cols) < 2 {
			continue
		}
		key := rows[len(rows)/2][0].AsInt()
		vars := make([]string, len(r.Cols)-1)
		for i := range vars {
			vars[i] = fmt.Sprintf("x%d", i)
		}
		queries = append(queries, fmt.Sprintf("p%d(%s) :- %s(%d, %s)",
			qi, strings.Join(vars, ","), r.Name, key, strings.Join(vars, ",")))
		indexes = append(indexes, [2]string{r.Name, r.Cols[0].Name})
	}
	for i := 0; i+1 < len(rels); i += 2 {
		a, c := rels[i], rels[i+1]
		shared, pa, pb := "", -1, -1
		for ai := 1; ai < len(a.Cols) && shared == ""; ai++ {
			for bi := 1; bi < len(c.Cols); bi++ {
				if a.Cols[ai].Name == c.Cols[bi].Name {
					shared, pa, pb = a.Cols[ai].Name, ai, bi
					break
				}
			}
		}
		if shared == "" {
			continue
		}
		arg := func(prefix string, n, at int) string {
			parts := make([]string, n)
			for k := range parts {
				if k == at {
					parts[k] = "s"
				} else {
					parts[k] = fmt.Sprintf("%s%d", prefix, k)
				}
			}
			return strings.Join(parts, ",")
		}
		queries = append(queries, fmt.Sprintf("j%d(s) :- %s(%s), %s(%s)",
			i, a.Name, arg("a", len(a.Cols), pa), c.Name, arg("b", len(c.Cols), pb)))
		indexes = append(indexes, [2]string{c.Name, shared})
	}
	return queries, indexes
}

func backendBenchName(be engine.Backend) string {
	if be == engine.BackendHash {
		return "db2"
	}
	return "tukwila"
}

// GoBenches returns every benchmark case in stable order.
func GoBenches() []GoBench {
	var out []GoBench
	add := func(fig int, sub string, run func(b *testing.B)) {
		name := fmt.Sprintf("Fig%d/%s", fig, sub)
		if fig == 0 {
			name = "AblationProvTables/" + sub
		}
		out = append(out, GoBench{Fig: fig, Name: name, Sub: sub, Run: run})
	}

	// Figure 4: the three deletion strategies at a 50% deletion ratio (the
	// mid-point of the figure's x-axis).
	{
		const base = 40
		for _, strategy := range []core.DeletionStrategy{
			core.DeleteProvenance, core.DeleteDRed, core.DeleteRecompute,
		} {
			add(4, strategy.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					sc, err := BuildScenario(goBenchFig4Config(), base, engine.BackendIndexed)
					if err != nil {
						b.Fatal(err)
					}
					logs := goBenchDeletionLogs(sc.W, base/2)
					b.StartTimer()
					for _, log := range logs {
						if _, err := sc.View.ApplyEdits(context.Background(), log, strategy); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}

	// Figure 5: "time to join the system" — the initial full computation of
	// all instances and provenance, per backend and dataset.
	{
		const peers, base = 5, 30
		for _, series := range []struct {
			name string
			ds   workload.Dataset
			be   engine.Backend
		}{
			{"db2_integer", workload.DatasetInteger, engine.BackendHash},
			{"tukwila_integer", workload.DatasetInteger, engine.BackendIndexed},
			{"db2_string", workload.DatasetString, engine.BackendHash},
			{"tukwila_string", workload.DatasetString, engine.BackendIndexed},
		} {
			add(5, series.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					w, err := workload.New(goBenchChainConfig(peers, series.ds))
					if err != nil {
						b.Fatal(err)
					}
					logs := w.GenBase(base)
					v, err := core.NewView(w.Spec, "", core.Options{Backend: series.be})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					for _, peer := range w.PeerNames() {
						if _, err := v.ApplyEdits(context.Background(), logs[peer], core.DeleteProvenance); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}

	// Figure 6: initial instance sizes (tuples and bytes) as benchmark
	// metrics rather than timings.
	{
		const peers, base = 5, 30
		for _, ds := range []workload.Dataset{workload.DatasetInteger, workload.DatasetString} {
			add(6, ds.String(), func(b *testing.B) {
				var rows, bytes float64
				for i := 0; i < b.N; i++ {
					sc, err := BuildScenario(goBenchChainConfig(peers, ds), base, engine.BackendIndexed)
					if err != nil {
						b.Fatal(err)
					}
					rows = float64(sc.View.DB().TotalRows())
					bytes = float64(sc.View.DB().TotalBytes())
				}
				b.ReportMetric(rows, "tuples")
				b.ReportMetric(bytes, "dbbytes")
			})
		}
	}

	// Figures 7 and 8: the §6.4 incremental-insertion scale-up, string and
	// integer datasets.
	for _, figds := range []struct {
		fig int
		ds  workload.Dataset
	}{
		{7, workload.DatasetString},
		{8, workload.DatasetInteger},
	} {
		const peers, base = 5, 30
		for _, pct := range []int{1, 10} {
			for _, be := range []engine.Backend{engine.BackendHash, engine.BackendIndexed} {
				add(figds.fig, fmt.Sprintf("%dpct_%s", pct, backendBenchName(be)), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						sc, err := BuildScenario(goBenchChainConfig(peers, figds.ds), base, be)
						if err != nil {
							b.Fatal(err)
						}
						n := base * pct / 100
						if n < 1 {
							n = 1
						}
						var logs []core.EditLog
						for _, peer := range sc.W.PeerNames() {
							logs = append(logs, sc.W.GenInsertions(peer, n))
						}
						b.StartTimer()
						for _, log := range logs {
							if _, err := sc.View.ApplyEdits(context.Background(), log, core.DeleteProvenance); err != nil {
								b.Fatal(err)
							}
						}
					}
				})
			}
		}
	}

	// Figure 9: incremental deletion scale-up (1% and 10% loads, integer
	// and string datasets).
	{
		const peers, base = 5, 30
		for _, ds := range []workload.Dataset{workload.DatasetInteger, workload.DatasetString} {
			for _, pct := range []int{1, 10} {
				add(9, fmt.Sprintf("%dpct_%s", pct, ds), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						sc, err := BuildScenario(goBenchChainConfig(peers, ds), base, engine.BackendIndexed)
						if err != nil {
							b.Fatal(err)
						}
						n := base * pct / 100
						if n < 1 {
							n = 1
						}
						logs := goBenchDeletionLogs(sc.W, n)
						b.StartTimer()
						for _, log := range logs {
							if _, err := sc.View.ApplyEdits(context.Background(), log, core.DeleteProvenance); err != nil {
								b.Fatal(err)
							}
						}
					}
				})
			}
		}
	}

	// Figure 10: fixpoint computation as topology cycles are added,
	// reporting tuples at fixpoint as a metric.
	{
		const base = 30
		for cycles := 0; cycles <= 3; cycles++ {
			add(10, fmt.Sprintf("cycles%d", cycles), func(b *testing.B) {
				var tuples float64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cfg := workload.Config{
						Peers:        5,
						Topology:     workload.TopologyRandom,
						AttrMode:     workload.AttrsNested,
						AvgNeighbors: 2,
						ExtraCycles:  cycles,
						Dataset:      workload.DatasetInteger,
						Seed:         goBenchSeed,
					}
					w, err := workload.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					logs := w.GenBase(base)
					v, err := core.NewView(w.Spec, "", core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					for _, peer := range w.PeerNames() {
						if _, err := v.ApplyEdits(context.Background(), logs[peer], core.DeleteProvenance); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					tuples = float64(v.DB().TotalRows())
					b.StartTimer()
				}
				b.ReportMetric(tuples, "tuples")
			})
		}
	}

	// EvolveVsRebuild: spec evolution's incremental mapping removal
	// (provenance-driven rule deletion) against the teardown-and-
	// recompute alternative — a fresh view of the reduced spec replaying
	// the whole base. Fig. 5-style chain workload; the removed mapping is
	// the last chain hop, so the incremental path deletes only the final
	// peer's derivations while the rebuild recomputes every peer's.
	{
		const peers, base = 16, 150
		cfg := goBenchChainConfig(peers, workload.DatasetInteger)
		type evolveSetup struct {
			w       *workload.Workload
			logs    map[string]core.EditLog
			full    *core.Spec
			reduced *core.Spec
			removed string
			view    *core.View // loaded under the full spec
		}
		setup := func(b *testing.B) *evolveSetup {
			w, err := workload.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			logs := w.GenBase(base)
			full := w.Spec
			removed := full.Mappings[len(full.Mappings)-1].ID
			var kept []*tgd.TGD
			for _, m := range full.Mappings {
				if m.ID != removed {
					kept = append(kept, m)
				}
			}
			reduced, err := core.NewSpec(full.Universe, kept, full.Policies)
			if err != nil {
				b.Fatal(err)
			}
			v, err := core.NewView(full, "", core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for _, peer := range w.PeerNames() {
				if _, err := v.ApplyEdits(context.Background(), logs[peer], core.DeleteProvenance); err != nil {
					b.Fatal(err)
				}
			}
			return &evolveSetup{w: w, logs: logs, full: full, reduced: reduced, removed: removed, view: v}
		}
		out = append(out, GoBench{Fig: 0, Name: "EvolveVsRebuild/incremental", Sub: "incremental", Run: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := setup(b)
				b.StartTimer()
				if _, err := s.view.RemoveMappings(context.Background(), s.reduced, []string{s.removed}, core.DeleteProvenance); err != nil {
					b.Fatal(err)
				}
			}
		}})
		out = append(out, GoBench{Fig: 0, Name: "EvolveVsRebuild/rebuild", Sub: "rebuild", Run: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := setup(b)
				b.StartTimer()
				fresh, err := core.NewView(s.reduced, "", core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for _, peer := range s.w.PeerNames() {
					if _, err := fresh.ApplyEdits(context.Background(), s.logs[peer], core.DeleteProvenance); err != nil {
						b.Fatal(err)
					}
				}
			}
		}})
	}

	// ExchangeAll: confederation-wide exchange on a 16-peer Fig.5-style
	// chain with 8 queued publications per peer — the serial
	// one-apply-per-publication walk against publication coalescing
	// (one net apply per view) and the full scheduler (coalesced passes
	// over a GOMAXPROCS-bounded worker pool). Every variant ends with
	// observationally identical views; the deltas are pure wall-clock.
	{
		const peers, pubsPerPeer, editsPerPub = 16, 8, 4
		cfg := goBenchChainConfig(peers, workload.DatasetInteger)
		type exchangeSetup struct {
			bus   *core.MemoryBus
			views []*core.View
		}
		setup := func(b *testing.B) *exchangeSetup {
			ctx := context.Background()
			w, err := workload.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			bus := core.NewMemoryBus()
			for r := 0; r < pubsPerPeer; r++ {
				for _, peer := range w.PeerNames() {
					log := w.GenInsertions(peer, editsPerPub)
					if r%2 == 1 {
						// Mix in deletions of earlier insertions so the run
						// holds insert+delete pairs for coalescing to cancel
						// and deletion cascades for the serial replay to pay.
						log = append(log, w.GenDeletions(peer, 2)...)
					}
					if err := core.PublishTo(ctx, bus, w.Spec, peer, log); err != nil {
						b.Fatal(err)
					}
				}
			}
			s := &exchangeSetup{bus: bus, views: make([]*core.View, len(w.PeerNames()))}
			for i, peer := range w.PeerNames() {
				if s.views[i], err = core.NewView(w.Spec, peer, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			return s
		}
		run := func(b *testing.B, pass func(b *testing.B, s *exchangeSetup)) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := setup(b)
				b.StartTimer()
				pass(b, s)
			}
		}
		out = append(out, GoBench{Fig: 0, Name: "ExchangeAll/serial_perpub", Sub: "serial_perpub", Run: func(b *testing.B) {
			run(b, func(b *testing.B, s *exchangeSetup) {
				for _, v := range s.views {
					if _, _, err := core.ExchangeInto(context.Background(), s.bus, v, core.Cursor{}, core.DeleteProvenance); err != nil {
						b.Fatal(err)
					}
				}
			})
		}})
		out = append(out, GoBench{Fig: 0, Name: "ExchangeAll/coalesced", Sub: "coalesced", Run: func(b *testing.B) {
			run(b, func(b *testing.B, s *exchangeSetup) {
				for _, v := range s.views {
					if _, _, err := core.ExchangeCoalesced(context.Background(), s.bus, v, core.Cursor{}, core.DeleteProvenance); err != nil {
						b.Fatal(err)
					}
				}
			})
		}})
		out = append(out, GoBench{Fig: 0, Name: "ExchangeAll/parallel_coalesced", Sub: "parallel_coalesced", Run: func(b *testing.B) {
			sched := exchange.NewScheduler[core.ApplyStats](0)
			run(b, func(b *testing.B, s *exchangeSetup) {
				tasks := make([]exchange.Task[core.ApplyStats], len(s.views))
				for i, v := range s.views {
					tasks[i] = exchange.Task[core.ApplyStats]{Owner: v.Owner(), Run: func(ctx context.Context) (core.ApplyStats, error) {
						_, stats, err := core.ExchangeCoalesced(ctx, s.bus, v, core.Cursor{}, core.DeleteProvenance)
						return stats, err
					}}
				}
				if _, err := sched.Run(context.Background(), tasks); err != nil {
					b.Fatal(err)
				}
			})
		}})
	}

	// Serving: the read path under a mixed query/write load — a hot
	// rotation of point probes and shared-attribute joins with a trickle
	// of writes (one small edit log every servingWriteEvery queries).
	// baseline_* is the pre-optimization read path: fixed-order plans, no
	// query cache, no declared indexes. optimized_* turns on cost-based
	// join ordering, declared secondary indexes, and the provenance-
	// invalidated query cache. ns/op is per served query (writes
	// amortized in); both variants run the identical operation sequence.
	{
		type servingSetup struct {
			w       *workload.Workload
			view    *core.View
			queries []string
		}
		setup := func(b *testing.B, be engine.Backend, optimized bool) *servingSetup {
			w, err := workload.New(servingConfig())
			if err != nil {
				b.Fatal(err)
			}
			opts := core.Options{Backend: be}
			if !optimized {
				opts.LegacyQueryPlanner = true
				opts.QueryCacheSize = -1
			}
			v, err := core.NewView(w.Spec, "", opts)
			if err != nil {
				b.Fatal(err)
			}
			logs := w.GenBase(servingBase)
			for _, peer := range w.PeerNames() {
				if _, err := v.ApplyEdits(context.Background(), logs[peer], core.DeleteProvenance); err != nil {
					b.Fatal(err)
				}
			}
			queries, indexes := servingQueries(w.Spec, v)
			if len(queries) == 0 {
				b.Fatal("no serving queries generated")
			}
			if optimized {
				for _, d := range indexes {
					if err := v.DeclareSecondaryIndex(d[0], d[1]); err != nil {
						b.Fatal(err)
					}
				}
			}
			return &servingSetup{w: w, view: v, queries: queries}
		}
		serve := func(be engine.Backend, optimized bool) func(b *testing.B) {
			return func(b *testing.B) {
				s := setup(b, be, optimized)
				peersN := len(s.w.PeerNames())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i > 0 && i%servingWriteEvery == 0 {
						peer := s.w.PeerNames()[(i/servingWriteEvery)%peersN]
						if _, err := s.view.ApplyEdits(context.Background(), s.w.GenInsertions(peer, 1), core.DeleteProvenance); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := s.view.Query(context.Background(), s.queries[i%len(s.queries)], true); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		for _, be := range []engine.Backend{engine.BackendIndexed, engine.BackendHash} {
			for _, optimized := range []bool{false, true} {
				variant := "baseline"
				if optimized {
					variant = "optimized"
				}
				sub := fmt.Sprintf("%s_%s", variant, backendBenchName(be))
				out = append(out, GoBench{Fig: 0, Name: "Serving/" + sub, Sub: sub, Run: serve(be, optimized)})
			}
		}
	}

	// Ablation: §5's composite mapping table against the per-RHS-atom
	// encoding on a multi-relation workload.
	{
		const peers, base = 4, 30
		cfg := workload.Config{
			Peers:          peers,
			MaxRelsPerPeer: 3,
			Topology:       workload.TopologyChain,
			AttrMode:       workload.AttrsRandom,
			Dataset:        workload.DatasetInteger,
			Seed:           goBenchSeed,
		}
		for _, split := range []bool{false, true} {
			name := "composite"
			if split {
				name = "split"
			}
			add(0, name, func(b *testing.B) {
				var provRows float64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					w, err := workload.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					logs := w.GenBase(base)
					v, err := core.NewView(w.Spec, "", core.Options{SplitProvTables: split})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					for _, peer := range w.PeerNames() {
						if _, err := v.ApplyEdits(context.Background(), logs[peer], core.DeleteProvenance); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					provRows = 0
					for _, n := range v.DB().Names() {
						if len(n) > 2 && n[:2] == "p$" {
							provRows += float64(v.DB().Table(n).Len())
						}
					}
					b.StartTimer()
				}
				b.ReportMetric(provRows, "provrows")
			})
		}
	}

	return out
}
