package benchharness

import (
	"context"
	"orchestra/internal/core"
	"orchestra/internal/engine"
	"orchestra/internal/workload"
)

// fig4Workload is Figure 4's setting: 5 peers, full mappings (full tgds /
// complete topology), a fixed base size per peer.
func fig4Workload(seed int64) workload.Config {
	return workload.Config{
		Peers:    5,
		Topology: workload.TopologyComplete,
		AttrMode: workload.AttrsShared,
		Dataset:  workload.DatasetString,
		Seed:     seed,
	}
}

// Fig4 compares deletion strategies — complete recomputation, the
// paper's provenance-driven incremental algorithm, and DRed — across
// deletion ratios (the x-axis "ratio of deletions to base data", §6.3).
func Fig4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	base := cfg.entries(120) // paper: 2000 base tuples per peer
	ratios := []float64{10, 30, 50, 70, 90}
	t := &Table{
		Title:   "Figure 4: Deletion alternatives (5 peers, full mappings) — seconds",
		Columns: []string{"del%", "recompute", "incremental", "dred"},
	}
	for _, ratio := range ratios {
		row := []float64{ratio}
		for _, strategy := range []core.DeletionStrategy{core.DeleteRecompute, core.DeleteProvenance, core.DeleteDRed} {
			sc, err := BuildScenario(fig4Workload(cfg.Seed), base, engine.BackendIndexed)
			if err != nil {
				return nil, err
			}
			n := percentEntries(base, ratio)
			var logs []core.EditLog
			for _, peer := range sc.W.PeerNames() {
				logs = append(logs, sc.W.GenDeletions(peer, n))
			}
			sec, err := timeOp(func() error {
				for _, log := range logs {
					if _, err := sc.View.ApplyEdits(context.Background(), log, strategy); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, sec)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// fig5Workload is the scale-up setting of §6.4: chain topology (n−1
// mappings among n peers), random attribute subsets.
func fig5Workload(peers int, ds workload.Dataset, seed int64) workload.Config {
	return workload.Config{
		Peers:    peers,
		Topology: workload.TopologyChain,
		AttrMode: workload.AttrsRandom,
		Dataset:  ds,
		Seed:     seed,
	}
}

// fig5Peers are the x-axis points; string datasets stop at 10 peers like
// the paper's storage-bound runs.
var fig5Peers = []int{2, 5, 10, 20}

// Fig5 measures the time for peers to join the system — the initial
// full computation of all instances and provenance — for both backends
// and both datasets.
func Fig5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	base := cfg.entries(60) // paper: 10,000 original base insertions
	t := &Table{
		Title:   "Figure 5: Time to join system — seconds",
		Columns: []string{"peers", "db2_int", "tukwila_int", "db2_str", "tukwila_str"},
	}
	for _, peers := range fig5Peers {
		row := []float64{float64(peers)}
		for _, series := range []struct {
			ds workload.Dataset
			be engine.Backend
		}{
			{workload.DatasetInteger, engine.BackendHash},
			{workload.DatasetInteger, engine.BackendIndexed},
			{workload.DatasetString, engine.BackendHash},
			{workload.DatasetString, engine.BackendIndexed},
		} {
			w, err := workload.New(fig5Workload(peers, series.ds, cfg.Seed))
			if err != nil {
				return nil, err
			}
			logs := w.GenBase(base)
			v, err := core.NewView(w.Spec, "", core.Options{Backend: series.be})
			if err != nil {
				return nil, err
			}
			sec, err := timeOp(func() error {
				for _, peer := range w.PeerNames() {
					if _, err := v.ApplyEdits(context.Background(), logs[peer], core.DeleteProvenance); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, sec)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6 reports initial instance sizes: total tuples (thousands) and
// database bytes (MB) for the integer and string datasets.
func Fig6(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	base := cfg.entries(60)
	t := &Table{
		Title:   "Figure 6: Initial instance size",
		Columns: []string{"peers", "ktuples", "mb_int", "mb_str"},
	}
	for _, peers := range fig5Peers {
		var ktuples, mbInt, mbStr float64
		for i, ds := range []workload.Dataset{workload.DatasetInteger, workload.DatasetString} {
			sc, err := BuildScenario(fig5Workload(peers, ds, cfg.Seed), base, engine.BackendIndexed)
			if err != nil {
				return nil, err
			}
			mb := float64(sc.View.DB().TotalBytes()) / (1 << 20)
			if i == 0 {
				ktuples = float64(sc.View.DB().TotalRows()) / 1000
				mbInt = mb
			} else {
				mbStr = mb
			}
		}
		t.Rows = append(t.Rows, []float64{float64(peers), ktuples, mbInt, mbStr})
	}
	return t, nil
}

// figInsertions runs the §6.4 incremental-insertion scale-up for one
// dataset: per peer count, apply 1% and 10% update loads on both
// backends.
func figInsertions(cfg Config, ds workload.Dataset, peersAxis []int, title string) (*Table, error) {
	cfg = cfg.withDefaults()
	base := cfg.entries(60)
	t := &Table{
		Title:   title,
		Columns: []string{"peers", "ins1_db2", "ins10_db2", "ins1_tukwila", "ins10_tukwila"},
	}
	for _, peers := range peersAxis {
		row := []float64{float64(peers)}
		for _, be := range []engine.Backend{engine.BackendHash, engine.BackendIndexed} {
			for _, pct := range []float64{1, 10} {
				sc, err := BuildScenario(fig5Workload(peers, ds, cfg.Seed), base, be)
				if err != nil {
					return nil, err
				}
				n := percentEntries(base, pct)
				var logs []core.EditLog
				for _, peer := range sc.W.PeerNames() {
					logs = append(logs, sc.W.GenInsertions(peer, n))
				}
				sec, err := timeOp(func() error {
					for _, log := range logs {
						if _, err := sc.View.ApplyEdits(context.Background(), log, core.DeleteProvenance); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				row = append(row, sec)
			}
		}
		// Reorder: collected as db2(1,10), tukwila(1,10) — already the
		// column order.
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig7 is incremental-insertion scale-up on the string dataset (paper
// stops at 10 peers).
func Fig7(cfg Config) (*Table, error) {
	return figInsertions(cfg, workload.DatasetString, []int{2, 5, 10},
		"Figure 7: Incremental insertions, string dataset — seconds")
}

// Fig8 is incremental-insertion scale-up on the integer dataset.
func Fig8(cfg Config) (*Table, error) {
	return figInsertions(cfg, workload.DatasetInteger, fig5Peers,
		"Figure 8: Incremental insertions, integer dataset — seconds")
}

// Fig9 is incremental-deletion scale-up (1% and 10%, integer and string
// datasets; like the paper, one engine — deletions were DB2-only there).
func Fig9(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	base := cfg.entries(60)
	t := &Table{
		Title:   "Figure 9: Incremental deletions — seconds",
		Columns: []string{"peers", "del1_int", "del10_int", "del1_str", "del10_str"},
	}
	for _, peers := range fig5Peers {
		row := []float64{float64(peers)}
		for _, ds := range []workload.Dataset{workload.DatasetInteger, workload.DatasetString} {
			for _, pct := range []float64{1, 10} {
				sc, err := BuildScenario(fig5Workload(peers, ds, cfg.Seed), base, engine.BackendIndexed)
				if err != nil {
					return nil, err
				}
				n := percentEntries(base, pct)
				var logs []core.EditLog
				for _, peer := range sc.W.PeerNames() {
					logs = append(logs, sc.W.GenDeletions(peer, n))
				}
				sec, err := timeOp(func() error {
					for _, log := range logs {
						if _, err := sc.View.ApplyEdits(context.Background(), log, core.DeleteProvenance); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				row = append(row, sec)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// fig10Workload is §6.5's setting: 5 peers averaging 2 neighbors, nested
// attribute subsets so manually added cycles stay weakly acyclic.
func fig10Workload(cycles int, seed int64) workload.Config {
	return workload.Config{
		Peers:        5,
		Topology:     workload.TopologyRandom,
		AttrMode:     workload.AttrsNested,
		AvgNeighbors: 2,
		ExtraCycles:  cycles,
		Dataset:      workload.DatasetInteger,
		Seed:         seed,
	}
}

// Fig10 measures the effect of mapping cycles on fixpoint time (both
// backends) and on the number of tuples computed.
func Fig10(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	base := cfg.entries(60)
	t := &Table{
		Title:   "Figure 10: Effect of cycles (5 peers, avg 2 neighbors)",
		Columns: []string{"cycles", "db2_sec", "tukwila_sec", "ktuples"},
	}
	for cycles := 0; cycles <= 3; cycles++ {
		row := []float64{float64(cycles)}
		var ktuples float64
		for _, be := range []engine.Backend{engine.BackendHash, engine.BackendIndexed} {
			w, err := workload.New(fig10Workload(cycles, cfg.Seed))
			if err != nil {
				return nil, err
			}
			logs := w.GenBase(base)
			v, err := core.NewView(w.Spec, "", core.Options{Backend: be})
			if err != nil {
				return nil, err
			}
			sec, err := timeOp(func() error {
				for _, peer := range w.PeerNames() {
					if _, err := v.ApplyEdits(context.Background(), logs[peer], core.DeleteProvenance); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, sec)
			ktuples = float64(v.DB().TotalRows()) / 1000
		}
		row = append(row, ktuples)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figures maps figure numbers to runners, for cmd/benchfig.
var Figures = map[int]func(Config) (*Table, error){
	4:  Fig4,
	5:  Fig5,
	6:  Fig6,
	7:  Fig7,
	8:  Fig8,
	9:  Fig9,
	10: Fig10,
}
