package benchharness

import "testing"

func TestFormatCell(t *testing.T) {
	cases := map[float64]string{
		3:        "3",
		0:        "0",
		20.5:     "20.5000",
		0.0042:   "0.0042",
		150.26:   "150.3",
		1000:     "1000",
		1234.567: "1234.6",
	}
	for in, want := range cases {
		if got := formatCell(in); got != want {
			t.Errorf("formatCell(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 {
		t.Fatal("default scale")
	}
	if got := c.entries(100); got != 100 {
		t.Fatalf("entries(100) = %d", got)
	}
	small := Config{Scale: 0.001}.withDefaults()
	if got := small.entries(100); got != 2 {
		t.Fatalf("scaled-down entries clamp = %d", got)
	}
	big := Config{Scale: 3}.withDefaults()
	if got := big.entries(100); got != 300 {
		t.Fatalf("scaled-up entries = %d", got)
	}
}

func TestPercentEntries(t *testing.T) {
	if percentEntries(200, 10) != 20 {
		t.Fatal("10% of 200")
	}
	if percentEntries(10, 1) != 1 {
		t.Fatal("minimum of 1")
	}
}
