// Package benchharness regenerates the paper's experimental evaluation
// (§6, Figures 4–10). Each FigN runner reproduces one figure's parameter
// sweep and returns the same series the paper plots, scaled to laptop
// sizes (absolute numbers differ from the 2007 testbed; the shapes —
// who wins, by what factor, where crossovers fall — are the reproduction
// target). cmd/benchfig prints the tables; bench_test.go wraps the same
// scenarios in testing.B benchmarks.
package benchharness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/engine"
	"orchestra/internal/workload"
)

// Config scales the experiments.
type Config struct {
	// Scale multiplies base-data sizes (1.0 = laptop defaults; the
	// paper's server-scale settings correspond to roughly Scale 10–50).
	Scale float64
	// Seed makes runs reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

func (c Config) entries(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 2 {
		n = 2
	}
	return n
}

// Table is one regenerated figure: an x column followed by data series.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]float64
}

// Render formats the table for terminal output.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, col := range t.Columns {
		widths[i] = len(col)
	}
	for ri, row := range t.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := formatCell(v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, col := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], col)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatCell(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Scenario bundles a loaded CDSS view with its generating workload — the
// starting state of an experiment.
type Scenario struct {
	W    *workload.Workload
	View *core.View
}

// BuildScenario generates a workload, instantiates a global view on the
// chosen backend, and loads entriesPerPeer base entries for every peer
// (the §6.2 "base size").
func BuildScenario(wcfg workload.Config, entriesPerPeer int, backend engine.Backend) (*Scenario, error) {
	w, err := workload.New(wcfg)
	if err != nil {
		return nil, err
	}
	v, err := core.NewView(w.Spec, "", core.Options{Backend: backend})
	if err != nil {
		return nil, err
	}
	for _, peer := range w.PeerNames() {
		log := w.GenInsertions(peer, entriesPerPeer)
		if _, err := v.ApplyEdits(context.Background(), log, core.DeleteProvenance); err != nil {
			return nil, err
		}
	}
	return &Scenario{W: w, View: v}, nil
}

// timeOp runs fn and returns elapsed seconds.
func timeOp(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return time.Since(start).Seconds(), err
}

// percentEntries converts a percentage of the per-peer base size into an
// entry count (at least 1).
func percentEntries(base int, pct float64) int {
	n := int(float64(base) * pct / 100)
	if n < 1 {
		n = 1
	}
	return n
}
