package benchharness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Regression is one benchmark case whose measurement regressed past the
// comparison threshold.
type Regression struct {
	// Name is the case, e.g. "Fig5/db2_integer".
	Name string
	// Metric is the regressed measurement: "ns/op" or "allocs/op".
	Metric string
	// Old and New are the snapshot and candidate values.
	Old, New float64
	// Pct is the relative increase in percent (+Inf when Old is zero).
	Pct float64
}

func (r Regression) String() string {
	pct := fmt.Sprintf("+%.1f%%", r.Pct)
	if math.IsInf(r.Pct, 1) {
		pct = "+∞"
	}
	return fmt.Sprintf("%s %s: %.1f -> %.1f (%s)", r.Name, r.Metric, r.Old, r.New, pct)
}

// Comparison is the outcome of checking a candidate report against a
// committed snapshot.
type Comparison struct {
	// Regressions lists the cases that got worse past the threshold,
	// sorted by name then metric.
	Regressions []Regression
	// OnlyOld and OnlyNew list case names present in just one report
	// (renamed, removed, or newly added benchmarks) — informational, not
	// failures, so a PR adding a benchmark does not trip the gate before
	// its snapshot lands.
	OnlyOld, OnlyNew []string
	// Compared counts the cases measured in both reports.
	Compared int
}

// Ok reports whether the gate passes (no regressions).
func (c Comparison) Ok() bool { return len(c.Regressions) == 0 }

// CompareReports checks a candidate benchmark report against an older
// snapshot: for every case present in both, ns/op and allocs/op may not
// exceed the snapshot by more than thresholdPct percent. Improvements
// and sub-threshold noise pass; a metric growing from zero is always a
// regression (no threshold can scale nothing). Bytes/op and custom
// metrics are not gated — allocation *count* is the stable,
// machine-independent proxy, and ns/op the machine-local wall-clock
// guard.
func CompareReports(old, new BenchReport, thresholdPct float64) Comparison {
	oldByName := make(map[string]BenchResult, len(old.Results))
	for _, r := range old.Results {
		oldByName[r.Name] = r
	}
	var c Comparison
	seen := make(map[string]bool, len(new.Results))
	for _, nr := range new.Results {
		seen[nr.Name] = true
		or, ok := oldByName[nr.Name]
		if !ok {
			c.OnlyNew = append(c.OnlyNew, nr.Name)
			continue
		}
		c.Compared++
		check := func(metric string, o, n float64) {
			var pct float64
			switch {
			case n <= o:
				return
			case o == 0:
				pct = math.Inf(1)
			default:
				pct = (n - o) / o * 100
				if pct <= thresholdPct {
					return
				}
			}
			c.Regressions = append(c.Regressions, Regression{
				Name: nr.Name, Metric: metric, Old: o, New: n, Pct: pct,
			})
		}
		check("ns/op", or.NsPerOp, nr.NsPerOp)
		check("allocs/op", or.AllocsPerOp, nr.AllocsPerOp)
	}
	for _, or := range old.Results {
		if !seen[or.Name] {
			c.OnlyOld = append(c.OnlyOld, or.Name)
		}
	}
	sort.Slice(c.Regressions, func(i, j int) bool {
		if c.Regressions[i].Name != c.Regressions[j].Name {
			return c.Regressions[i].Name < c.Regressions[j].Name
		}
		return c.Regressions[i].Metric < c.Regressions[j].Metric
	})
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)
	return c
}

// LoadReport reads a BENCH_*.json snapshot from disk.
func LoadReport(path string) (BenchReport, error) {
	var rep BenchReport
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("benchharness: parsing %s: %w", path, err)
	}
	return rep, nil
}
