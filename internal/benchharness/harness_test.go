package benchharness

import (
	"strings"
	"testing"

	"orchestra/internal/engine"
	"orchestra/internal/workload"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config { return Config{Scale: 0.08, Seed: 42} }

func TestBuildScenario(t *testing.T) {
	sc, err := BuildScenario(workload.Config{Peers: 3, Seed: 1, Dataset: workload.DatasetInteger}, 5, engine.BackendIndexed)
	if err != nil {
		t.Fatal(err)
	}
	if sc.View.DB().TotalRows() == 0 {
		t.Fatal("scenario has no data")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"x", "y"},
		Rows:    [][]float64{{1, 0.5}, {2, 123.456}},
	}
	out := tb.Render()
	for _, frag := range []string{"demo", "x", "y", "0.5000", "123.5"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Render missing %q:\n%s", frag, out)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tab, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 || len(tab.Columns) != 4 {
		t.Fatalf("shape: %dx%d", len(tab.Rows), len(tab.Columns))
	}
	for _, row := range tab.Rows {
		for i := 1; i < len(row); i++ {
			if row[i] < 0 {
				t.Fatal("negative time")
			}
		}
	}
}

func TestFig5And6Shape(t *testing.T) {
	t5, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 4 || len(t5.Columns) != 5 {
		t.Fatalf("fig5 shape: %dx%d", len(t5.Rows), len(t5.Columns))
	}
	t6, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Instance sizes must grow with peer count, and string > integer.
	prev := 0.0
	for _, row := range t6.Rows {
		if row[1] <= prev {
			t.Fatalf("tuples do not grow with peers: %v", t6.Rows)
		}
		prev = row[1]
		if row[3] <= row[2] {
			t.Fatalf("string dataset not larger than integer: %v", row)
		}
	}
}

func TestFig7Through10Shape(t *testing.T) {
	c := tiny()
	t7, err := Fig7(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(t7.Rows) != 3 {
		t.Fatalf("fig7 rows: %d", len(t7.Rows))
	}
	t8, err := Fig8(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(t8.Rows) != 4 {
		t.Fatalf("fig8 rows: %d", len(t8.Rows))
	}
	t9, err := Fig9(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(t9.Rows) != 4 {
		t.Fatalf("fig9 rows: %d", len(t9.Rows))
	}
	t10, err := Fig10(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Rows) != 4 {
		t.Fatalf("fig10 rows: %d", len(t10.Rows))
	}
	// Tuples at fixpoint must not shrink as cycles are added (Fig. 10's
	// observed growth).
	for i := 1; i < len(t10.Rows); i++ {
		if t10.Rows[i][3] < t10.Rows[i-1][3] {
			t.Fatalf("fixpoint size shrank with cycles: %v", t10.Rows)
		}
	}
}

func TestFiguresRegistry(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7, 8, 9, 10} {
		if Figures[n] == nil {
			t.Fatalf("figure %d missing from registry", n)
		}
	}
}
