// Package statestore is the crash-safe checkpoint/recovery subsystem:
// durable peer state between update exchanges (§4–§5's auxiliary
// storage — the role Berkeley DB played under Tukwila in Orchestra).
//
// A Store owns one directory per system. It holds a checksummed
// snapshot file per view (the core snapshot encoding, written via
// temp file + atomic rename + fsync) and a manifest recording, for
// each view, its publication-bus cursor and snapshot generation. A
// restarting node reloads every snapshot and then fast-forwards each
// view by replaying only the publications past its persisted cursor.
//
// Crash-safety protocol (write path):
//
//  1. the new snapshot generation is written to a temp file, fsynced,
//     and renamed into place;
//  2. the manifest (also temp + rename + fsync) is committed, now
//     pointing at the new generation;
//  3. the previous generation's file is deleted (best effort).
//
// A crash between any two steps leaves the manifest pointing at a
// complete, checksummed snapshot: either the old generation (steps
// 1–2) or the new one (step 3). Torn writes are caught on load by the
// CRC and length recorded in the snapshot header.
//
// Invariant: a view's persisted cursor never exceeds its snapshot's
// publication horizon — SaveView records the cursor and the snapshot
// bytes in one call, and rejects cursor regressions.
//
// A directory has exactly one live Store: Open takes an exclusive
// advisory lock (a LOCK file, held until Close or process death), so
// two processes can never interleave manifest rewrites or sweep each
// other's in-flight temp files.
package statestore

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/fslock"
	"orchestra/internal/obs"
)

const (
	manifestName  = "MANIFEST.json"
	lockName      = "LOCK"
	snapshotMagic = "OSS1"
	// manifestVersion guards against future format changes.
	manifestVersion = 1
)

// ViewState describes one view's persisted checkpoint: which owner it
// belongs to, the bus cursor the snapshot reflects (the number of
// publications already applied), and the snapshot file generation.
// Position, when non-empty, is the durable form of the view's typed
// bus cursor (core.Cursor.String): the same total as Cursor plus the
// per-shard breakdown push streaming resumes from. Manifests written
// before sharded cursors carry only the scalar Cursor; recovery
// migrates them by treating the total as a scalar cursor, which the
// first pull exchange upgrades to an exact vector.
type ViewState struct {
	Owner      string `json:"owner"`
	Cursor     int    `json:"cursor"`
	Position   string `json:"position,omitempty"`
	Generation uint64 `json:"generation"`
	File       string `json:"file"`
}

type manifest struct {
	Version int `json:"version"`
	// Spec fingerprints the confederation description the checkpoints
	// were taken under (core.Spec.Fingerprint). Recovery rejects a store
	// whose fingerprint does not match the running spec; spec evolution
	// re-stamps it (with fresh snapshots) after every applied operation.
	Spec  string                `json:"spec,omitempty"`
	Views map[string]*ViewState `json:"views"`
}

// Metrics holds the store's instruments. The zero value disables all of
// them (obs instruments are nil-safe).
type Metrics struct {
	// CheckpointSeconds observes each SaveView's wall clock, in seconds.
	CheckpointSeconds *obs.Histogram
	// CheckpointBytes observes each snapshot's payload size, in bytes.
	CheckpointBytes *obs.Histogram
	// CheckpointFailures counts SaveView calls that returned an error.
	CheckpointFailures *obs.Counter
}

// Store is a crash-safe checkpoint directory for one system's views.
// It is safe for concurrent use; callers additionally serialize
// snapshot writes per view (the facade holds the view's lock across
// SaveView so a checkpoint never tears against a concurrent exchange).
type Store struct {
	dir  string
	lock *os.File // holds the directory's advisory lock until Close

	// lastSave is the unix-nano time of the last successful SaveView
	// (the Open time until then), read lock-free by checkpoint-age
	// gauges.
	lastSave atomic.Int64
	metrics  Metrics

	mu sync.Mutex
	m  manifest
}

// SetMetrics installs checkpoint instruments. Call it right after Open;
// it is not synchronized against concurrent SaveViews.
func (s *Store) SetMetrics(m Metrics) { s.metrics = m }

// LastSaveTime reports when the store last committed a snapshot (the
// Open time if it never has). Safe to call from metric callbacks — it
// reads one atomic.
func (s *Store) LastSaveTime() time.Time {
	return time.Unix(0, s.lastSave.Load())
}

// Open opens (creating if needed) a checkpoint directory and loads its
// manifest. A directory without a manifest is an empty store. The
// directory is locked against concurrent Stores (in this or any other
// process) until Close; a crashed holder never leaves a stale lock.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	if err := fslock.TryLock(lock); err != nil {
		lock.Close()
		return nil, fmt.Errorf("statestore: %w", err)
	}
	fail := func(err error) (*Store, error) {
		lock.Close()
		return nil, err
	}
	s := &Store{dir: dir, lock: lock, m: manifest{Version: manifestVersion, Views: map[string]*ViewState{}}}
	s.lastSave.Store(time.Now().UnixNano())
	// A crash between CreateTemp and rename orphans a temp file; nothing
	// references it, so sweep the debris of earlier runs. The lock above
	// guarantees these cannot be a live writer's in-flight files.
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp*")); err == nil {
		for _, path := range stale {
			os.Remove(path)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return s, nil
	} else if err != nil {
		return fail(fmt.Errorf("statestore: reading manifest: %w", err))
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fail(fmt.Errorf("statestore: corrupt manifest: %w", err))
	}
	if m.Version != manifestVersion {
		return fail(fmt.Errorf("statestore: manifest version %d, want %d", m.Version, manifestVersion))
	}
	if m.Views == nil {
		m.Views = map[string]*ViewState{}
	}
	for owner, vs := range m.Views {
		if vs == nil || vs.Owner != owner {
			return fail(fmt.Errorf("statestore: manifest entry %q is inconsistent", owner))
		}
		if _, err := os.Stat(filepath.Join(dir, vs.File)); err != nil {
			return fail(fmt.Errorf("statestore: manifest references missing snapshot for view %q: %w", owner, err))
		}
	}
	s.m = m
	return s, nil
}

// ManifestInfo is a read-only peek at a checkpoint directory's
// manifest.
type ManifestInfo struct {
	Spec  string
	Views []ViewState
}

// ReadManifest reads a checkpoint directory's manifest without taking
// the directory lock, for inspection tooling (`orchestra stats`) that
// must coexist with a live Store holding the exclusive lock. The
// manifest is replaced atomically (temp + rename), so the read is
// always internally consistent — just possibly one checkpoint behind
// the live writer. A directory without a manifest is an empty store.
func ReadManifest(dir string) (ManifestInfo, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return ManifestInfo{}, nil
	} else if err != nil {
		return ManifestInfo{}, fmt.Errorf("statestore: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return ManifestInfo{}, fmt.Errorf("statestore: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return ManifestInfo{}, fmt.Errorf("statestore: manifest version %d, want %d", m.Version, manifestVersion)
	}
	info := ManifestInfo{Spec: m.Spec}
	for _, vs := range m.Views {
		if vs != nil {
			info.Views = append(info.Views, *vs)
		}
	}
	sort.Slice(info.Views, func(i, j int) bool { return info.Views[i].Owner < info.Views[j].Owner })
	return info, nil
}

// Close releases the directory lock. The Store must not be used after
// Close; a new Open may then take over the directory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lock == nil {
		return nil
	}
	err := s.lock.Close()
	s.lock = nil
	return err
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SpecFingerprint returns the spec fingerprint the store's checkpoints
// were taken under ("" for an empty or pre-fingerprint store).
func (s *Store) SpecFingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Spec
}

// SetSpecFingerprint durably records the spec fingerprint the store's
// checkpoints belong to. Callers stamp it when the store is first bound
// to a spec and re-stamp it (together with fresh snapshots) after spec
// evolution; a mismatch at open time means the directory belongs to a
// different — or stale — confederation description.
func (s *Store) SetSpecFingerprint(fp string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lock == nil {
		return fmt.Errorf("statestore: store is closed")
	}
	if s.m.Spec == fp {
		return nil
	}
	updated := manifest{Version: manifestVersion, Spec: fp, Views: make(map[string]*ViewState, len(s.m.Views))}
	for o, vs := range s.m.Views {
		updated.Views[o] = vs
	}
	return s.commitManifest(updated)
}

// Views lists the persisted views, sorted by owner.
func (s *Store) Views() []ViewState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ViewState, 0, len(s.m.Views))
	for _, vs := range s.m.Views {
		out = append(out, *vs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}

// View returns one view's persisted state, if any.
func (s *Store) View(owner string) (ViewState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs, ok := s.m.Views[owner]
	if !ok {
		return ViewState{}, false
	}
	return *vs, true
}

// SaveView atomically checkpoints one view: write fills in the
// snapshot payload (the core snapshot encoding); cursor is the bus
// position the snapshot reflects; specFP is the fingerprint of the spec
// the snapshot was taken under. Snapshot, cursor, and fingerprint
// commit together in one manifest write, so the persisted cursor can
// never exceed the snapshot's publication horizon and the manifest's
// spec always matches the newest snapshot — even when a crash
// interrupted a spec evolution between its per-view checkpoints (stale
// per-view snapshots are then discarded at recovery). Cursor
// regressions are rejected. position is the durable form of the typed
// bus cursor the total was taken from ("" when the caller tracks only
// scalars); the store treats it as opaque.
func (s *Store) SaveView(owner string, cursor int, position, specFP string, write func(io.Writer) error) error {
	start := time.Now()
	err := s.saveView(owner, cursor, position, specFP, write)
	s.metrics.CheckpointSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		s.metrics.CheckpointFailures.Inc()
		return err
	}
	s.lastSave.Store(time.Now().UnixNano())
	return nil
}

func (s *Store) saveView(owner string, cursor int, position, specFP string, write func(io.Writer) error) error {
	if cursor < 0 {
		return fmt.Errorf("statestore: negative cursor %d for view %q", cursor, owner)
	}
	var payload bytes.Buffer
	if err := write(&payload); err != nil {
		return fmt.Errorf("statestore: encoding snapshot for view %q: %w", owner, err)
	}
	s.metrics.CheckpointBytes.Observe(float64(payload.Len()))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lock == nil {
		return fmt.Errorf("statestore: store is closed")
	}
	prev := s.m.Views[owner]
	gen := uint64(1)
	if prev != nil {
		if cursor < prev.Cursor {
			return fmt.Errorf("statestore: cursor regression for view %q: %d -> %d", owner, prev.Cursor, cursor)
		}
		gen = prev.Generation + 1
	}
	file := snapshotFileName(owner, gen)
	if err := s.writeSnapshotFile(file, payload.Bytes()); err != nil {
		return err
	}
	next := &ViewState{Owner: owner, Cursor: cursor, Position: position, Generation: gen, File: file}
	updated := manifest{Version: manifestVersion, Spec: specFP, Views: make(map[string]*ViewState, len(s.m.Views)+1)}
	for o, vs := range s.m.Views {
		updated.Views[o] = vs
	}
	updated.Views[owner] = next
	if err := s.commitManifest(updated); err != nil {
		// The manifest still points at the previous generation; drop the
		// orphaned new snapshot.
		os.Remove(filepath.Join(s.dir, file))
		return err
	}
	if prev != nil && prev.File != file {
		os.Remove(filepath.Join(s.dir, prev.File)) // best effort
	}
	return nil
}

// LoadView opens a persisted snapshot, verifying its length and
// checksum, and returns the recorded state plus a reader over the
// snapshot payload.
func (s *Store) LoadView(owner string) (ViewState, io.Reader, error) {
	s.mu.Lock()
	vs, ok := s.m.Views[owner]
	if !ok {
		s.mu.Unlock()
		return ViewState{}, nil, fmt.Errorf("statestore: no persisted state for view %q", owner)
	}
	state := *vs
	s.mu.Unlock()

	data, err := os.ReadFile(filepath.Join(s.dir, state.File))
	if err != nil {
		return state, nil, fmt.Errorf("statestore: reading snapshot for view %q: %w", owner, err)
	}
	payload, err := decodeSnapshotFile(data)
	if err != nil {
		return state, nil, fmt.Errorf("statestore: snapshot for view %q: %w", owner, err)
	}
	return state, bytes.NewReader(payload), nil
}

// Remove drops a view's persisted state (manifest entry + snapshot
// file). Removing an absent view is a no-op.
func (s *Store) Remove(owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lock == nil {
		return fmt.Errorf("statestore: store is closed")
	}
	prev, ok := s.m.Views[owner]
	if !ok {
		return nil
	}
	updated := manifest{Version: manifestVersion, Spec: s.m.Spec, Views: make(map[string]*ViewState, len(s.m.Views))}
	for o, vs := range s.m.Views {
		if o != owner {
			updated.Views[o] = vs
		}
	}
	if err := s.commitManifest(updated); err != nil {
		return err
	}
	os.Remove(filepath.Join(s.dir, prev.File)) // best effort
	return nil
}

// Snapshot file layout: magic "OSS1", uint32 CRC-32 (IEEE) of the
// payload, uint64 payload length, payload. Length and CRC catch torn
// or bit-rotted snapshots at load time.

func (s *Store) writeSnapshotFile(name string, payload []byte) error {
	f, err := os.CreateTemp(s.dir, name+".tmp")
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	var header [len(snapshotMagic) + 4 + 8]byte
	copy(header[:], snapshotMagic)
	binary.BigEndian.PutUint32(header[4:], crc32.ChecksumIEEE(payload))
	binary.BigEndian.PutUint64(header[8:], uint64(len(payload)))
	if _, err := f.Write(header[:]); err != nil {
		return cleanup(fmt.Errorf("statestore: %w", err))
	}
	if _, err := f.Write(payload); err != nil {
		return cleanup(fmt.Errorf("statestore: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("statestore: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statestore: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statestore: %w", err)
	}
	syncDir(s.dir)
	return nil
}

func decodeSnapshotFile(data []byte) ([]byte, error) {
	headerLen := len(snapshotMagic) + 4 + 8
	if len(data) < headerLen {
		return nil, fmt.Errorf("short snapshot file (%d bytes)", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("bad snapshot magic %q", data[:len(snapshotMagic)])
	}
	wantCRC := binary.BigEndian.Uint32(data[4:])
	wantLen := binary.BigEndian.Uint64(data[8:])
	payload := data[headerLen:]
	if uint64(len(payload)) != wantLen {
		return nil, fmt.Errorf("snapshot payload is %d bytes, header says %d (torn write?)", len(payload), wantLen)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("snapshot checksum mismatch (got %08x, want %08x)", got, wantCRC)
	}
	return payload, nil
}

// commitManifest atomically replaces the manifest on disk, then
// installs the new in-memory state. Callers hold s.mu.
func (s *Store) commitManifest(m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	f, err := os.CreateTemp(s.dir, manifestName+".tmp")
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("statestore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("statestore: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statestore: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statestore: %w", err)
	}
	syncDir(s.dir)
	s.m = m
	return nil
}

// snapshotFileName derives a filesystem-safe, collision-free name for
// one view generation. The global view "" gets the sentinel "global";
// peer owners are hex-encoded (hex never collides with "global").
func snapshotFileName(owner string, gen uint64) string {
	name := "global"
	if owner != "" {
		name = hex.EncodeToString([]byte(owner))
	}
	return fmt.Sprintf("view-%s-%d.snap", name, gen)
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss. Best effort: some platforms/filesystems reject directory syncs.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
