package statestore

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func payloadWriter(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

func readPayload(t *testing.T, st *Store, owner string) (ViewState, string) {
	t.Helper()
	vs, r, err := st.LoadView(owner)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return vs, string(data)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Views(); len(got) != 0 {
		t.Fatalf("fresh store has views: %v", got)
	}
	if err := st.SaveView("", 3, "", "", payloadWriter("global-state")); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveView("P1", 5, "", "", payloadWriter("p1-state")); err != nil {
		t.Fatal(err)
	}
	vs, data := readPayload(t, st, "")
	if vs.Cursor != 3 || vs.Generation != 1 || data != "global-state" {
		t.Fatalf("global view: %+v payload %q", vs, data)
	}
	views := st.Views()
	if len(views) != 2 || views[0].Owner != "" || views[1].Owner != "P1" {
		t.Fatalf("views: %+v", views)
	}

	// Reopening the directory (after a clean close releases its lock)
	// recovers the manifest.
	dir := st.Dir()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	vs2, data2 := readPayload(t, st2, "P1")
	if vs2.Cursor != 5 || data2 != "p1-state" {
		t.Fatalf("reopened view: %+v payload %q", vs2, data2)
	}
}

func TestGenerationsReplaceAndCleanUp(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveView("P", 1, "", "", payloadWriter("gen1")); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveView("P", 4, "", "", payloadWriter("gen2")); err != nil {
		t.Fatal(err)
	}
	vs, data := readPayload(t, st, "P")
	if vs.Generation != 2 || vs.Cursor != 4 || data != "gen2" {
		t.Fatalf("after second save: %+v payload %q", vs, data)
	}
	snaps, err := filepath.Glob(filepath.Join(st.Dir(), "view-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("old generation not cleaned up: %v", snaps)
	}
}

func TestCursorRegressionRejected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveView("P", 7, "", "", payloadWriter("x")); err != nil {
		t.Fatal(err)
	}
	err = st.SaveView("P", 6, "", "", payloadWriter("y"))
	if err == nil || !strings.Contains(err.Error(), "cursor regression") {
		t.Fatalf("cursor regression not rejected: %v", err)
	}
	// Equal cursor is fine (re-checkpoint without new publications).
	if err := st.SaveView("P", 7, "", "", payloadWriter("z")); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptSnapshotDetected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveView("P", 2, "", "", payloadWriter("hello snapshot payload")); err != nil {
		t.Fatal(err)
	}
	vs, _ := st.View("P")
	path := filepath.Join(st.Dir(), vs.File)

	// Flip one payload byte: checksum must catch it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.LoadView("P"); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt snapshot not detected: %v", err)
	}

	// Truncate (torn write): length check must catch it.
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.LoadView("P"); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn snapshot not detected: %v", err)
	}
}

func TestManifestMissingSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveView("P", 1, "", "", payloadWriter("x")); err != nil {
		t.Fatal(err)
	}
	vs, _ := st.View("P")
	if err := os.Remove(filepath.Join(dir, vs.File)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "missing snapshot") {
		t.Fatalf("missing snapshot not detected at open: %v", err)
	}
}

func TestRemove(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveView("P", 1, "", "", payloadWriter("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("P"); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("P"); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, ok := st.View("P"); ok {
		t.Fatal("view still present after Remove")
	}
	snaps, _ := filepath.Glob(filepath.Join(st.Dir(), "view-*.snap"))
	if len(snaps) != 0 {
		t.Fatalf("snapshot files left behind: %v", snaps)
	}
}

func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveView("P", 1, "", "", payloadWriter("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Debris a crash between CreateTemp and rename would leave behind.
	for _, name := range []string{"view-50-2.snap.tmp123", "MANIFEST.json.tmp456"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if leftover, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(leftover) != 0 {
		t.Errorf("temp debris not swept: %v", leftover)
	}
	// The real state survived the sweep.
	if vs, data := readPayload(t, st2, "P"); vs.Cursor != 1 || data != "x" {
		t.Errorf("state damaged by sweep: %+v %q", vs, data)
	}
}

// TestDirectoryLock enforces the single-writer discipline: while one
// Store holds a directory, a second Open fails, and a closed Store can
// no longer write into it.
func TestDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second Open of a held directory: %v, want lock error", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveView("P", 1, "", "", payloadWriter("x")); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("SaveView on closed store: %v, want closed error", err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	if err := st2.SaveView("P", 1, "", "", payloadWriter("x")); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFileNames(t *testing.T) {
	// "" and a peer whose hex encoding could collide with the sentinel
	// must map to distinct files.
	a := snapshotFileName("", 1)
	b := snapshotFileName("global", 1)
	if a == b {
		t.Fatalf("owner %q and %q collide: %s", "", "global", a)
	}
}

func TestSpecFingerprintPersists(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fp := st.SpecFingerprint(); fp != "" {
		t.Fatalf("fresh store has fingerprint %q", fp)
	}
	if err := st.SetSpecFingerprint("abc123"); err != nil {
		t.Fatal(err)
	}
	// SaveView commits the fingerprint it is given; Remove must carry it
	// through its manifest rewrite.
	if err := st.SaveView("p1", 3, "", "abc123", payloadWriter("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveView("p2", 1, "", "abc123", payloadWriter("y")); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("p2"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if fp := st2.SpecFingerprint(); fp != "abc123" {
		t.Fatalf("fingerprint %q survived reopen, want abc123", fp)
	}
	// Re-stamping (spec evolution) replaces it durably.
	if err := st2.SetSpecFingerprint("def456"); err != nil {
		t.Fatal(err)
	}
	if fp := st2.SpecFingerprint(); fp != "def456" {
		t.Fatalf("fingerprint not replaced: %q", fp)
	}
}
