package engine

import (
	"context"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/storage"
	"orchestra/internal/value"
)

// Self-join: same predicate twice in one body. Delta plans must cover
// both positions so Δ⋈Δ pairs are found.
func TestSelfJoinDelta(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			db := newDB(map[string]int{"e": 2, "grand": 2})
			prog := datalog.NewProgram(
				datalog.NewRule("g", datalog.NewAtom("grand", datalog.V("x"), datalog.V("z")),
					datalog.Pos(datalog.NewAtom("e", datalog.V("x"), datalog.V("y"))),
					datalog.Pos(datalog.NewAtom("e", datalog.V("y"), datalog.V("z")))),
			)
			ev, err := New(prog, db, value.NewSkolemTable(), Options{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ev.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			// Insert BOTH edges of a chain in one delta batch: the pair
			// (1,2),(2,3) only joins delta-against-delta.
			delta := storage.DeltaSet{}
			for _, e := range [][2]int64{{1, 2}, {2, 3}} {
				row := tup(e[0], e[1])
				db.Table("e").Insert(row)
				ev.InvalidateTransient("e")
				delta.Insert("e", row)
			}
			if _, err := ev.PropagateInsertions(context.Background(), delta); err != nil {
				t.Fatal(err)
			}
			if !db.Table("grand").Contains(tup(1, 3)) {
				t.Fatalf("Δ⋈Δ join missed:\n%s", db.Dump("grand"))
			}
		})
	}
}

func TestFiltersOnDeltaPlans(t *testing.T) {
	db := newDB(map[string]int{"in": 1, "out": 1})
	r := datalog.NewRule("r", datalog.NewAtom("out", datalog.V("x")),
		datalog.Pos(datalog.NewAtom("in", datalog.V("x"))))
	r.AddFilter("x != 2", func(env value.Env) bool {
		x, _ := env.Lookup("x")
		return x != value.Int(2)
	})
	ev, err := New(datalog.NewProgram(r), db, value.NewSkolemTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	delta := storage.DeltaSet{}
	for _, x := range []int64{1, 2, 3} {
		row := tup(x)
		db.Table("in").Insert(row)
		delta.Insert("in", row)
	}
	if _, err := ev.PropagateInsertions(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	out := db.Table("out")
	if out.Len() != 2 || out.Contains(tup(2)) {
		t.Fatalf("filter not applied on delta path:\n%s", db.Dump("out"))
	}
}

// Insertions must flow across strata: a lower-stratum derivation feeds a
// higher stratum reading it positively while negating an EDB.
func TestPropagateAcrossStrata(t *testing.T) {
	db := newDB(map[string]int{"base": 1, "mid": 1, "block": 1, "top": 1})
	prog := datalog.NewProgram(
		datalog.NewRule("r1", datalog.NewAtom("mid", datalog.V("x")),
			datalog.Pos(datalog.NewAtom("base", datalog.V("x")))),
		datalog.NewRule("r2", datalog.NewAtom("top", datalog.V("x")),
			datalog.Pos(datalog.NewAtom("mid", datalog.V("x"))),
			datalog.Neg(datalog.NewAtom("block", datalog.V("x")))),
	)
	db.Table("block").Insert(tup(2))
	ev, err := New(prog, db, value.NewSkolemTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	delta := storage.DeltaSet{}
	for _, x := range []int64{1, 2} {
		row := tup(x)
		db.Table("base").Insert(row)
		delta.Insert("base", row)
	}
	if _, err := ev.PropagateInsertions(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	top := db.Table("top")
	if !top.Contains(tup(1)) || top.Contains(tup(2)) || db.Table("mid").Len() != 2 {
		t.Fatalf("cross-strata propagation wrong:\n%s", db.Dump())
	}
}

func TestTransientBuildStats(t *testing.T) {
	db := newDB(map[string]int{"a": 2, "b": 2, "j": 3})
	for i := int64(0); i < 20; i++ {
		db.Table("a").Insert(tup(i, i%5))
		db.Table("b").Insert(tup(i%5, i))
	}
	prog := datalog.NewProgram(
		datalog.NewRule("j", datalog.NewAtom("j", datalog.V("x"), datalog.V("y"), datalog.V("z")),
			datalog.Pos(datalog.NewAtom("a", datalog.V("x"), datalog.V("y"))),
			datalog.Pos(datalog.NewAtom("b", datalog.V("y"), datalog.V("z")))),
	)
	evHash, err := New(prog, db.Clone(), value.NewSkolemTable(), Options{Backend: BackendHash})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := evHash.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TransientBuilds == 0 {
		t.Fatal("hash backend reported no transient builds")
	}
	evIdx, err := New(prog, db.Clone(), value.NewSkolemTable(), Options{Backend: BackendIndexed})
	if err != nil {
		t.Fatal(err)
	}
	stats, err = evIdx.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TransientBuilds != 0 {
		t.Fatal("indexed backend built transient hashes")
	}
	if stats.Probes == 0 {
		t.Fatal("no probes recorded")
	}
}

// External mutations must be visible to the hash backend after
// InvalidateAllTransient.
func TestInvalidateAllTransient(t *testing.T) {
	db := newDB(map[string]int{"src": 1, "probe": 1, "out": 1})
	db.Table("src").Insert(tup(1))
	db.Table("probe").Insert(tup(1))
	prog := datalog.NewProgram(
		datalog.NewRule("r", datalog.NewAtom("out", datalog.V("x")),
			datalog.Pos(datalog.NewAtom("src", datalog.V("x"))),
			datalog.Pos(datalog.NewAtom("probe", datalog.V("x")))),
	)
	ev, err := New(prog, db, value.NewSkolemTable(), Options{Backend: BackendHash})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if db.Table("out").Len() != 1 {
		t.Fatal("initial run")
	}
	// Mutate probe outside the engine, then re-run after invalidation:
	// out(2) requires the fresh probe contents.
	db.Table("probe").Insert(tup(2))
	db.Table("src").Insert(tup(2))
	db.Table("out").Clear()
	ev.InvalidateAllTransient()
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if db.Table("out").Len() != 2 {
		t.Fatalf("stale transient served:\n%s", db.Dump("out"))
	}
}

// Skolem values must be identical whether derived in bulk or via deltas.
func TestSkolemDeterminismAcrossPaths(t *testing.T) {
	mk := func() (*storage.Database, *Evaluator, *value.SkolemTable) {
		db := newDB(map[string]int{"b": 2, "u": 2})
		prog := datalog.NewProgram(
			datalog.NewRule("m3", datalog.NewAtom("u", datalog.V("n"), datalog.Sk("f", "n")),
				datalog.Pos(datalog.NewAtom("b", datalog.V("i"), datalog.V("n")))),
		)
		sk := value.NewSkolemTable()
		ev, err := New(prog, db, sk, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return db, ev, sk
	}
	// Bulk path.
	db1, ev1, sk1 := mk()
	db1.Table("b").Insert(tup(3, 5))
	if _, err := ev1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Delta path.
	db2, ev2, sk2 := mk()
	if _, err := ev2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	row := tup(3, 5)
	db2.Table("b").Insert(row)
	delta := storage.DeltaSet{}
	delta.Insert("b", row)
	if _, err := ev2.PropagateInsertions(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	r1, r2 := db1.Table("u").Rows(), db2.Table("u").Rows()
	if len(r1) != 1 || len(r2) != 1 {
		t.Fatal("row counts")
	}
	d1 := sk1.Describe(r1[0][1])
	d2 := sk2.Describe(r2[0][1])
	if d1 != d2 || d1 != "f(5)" {
		t.Fatalf("skolem terms differ: %q vs %q", d1, d2)
	}
}

// A rule whose delta predicate also appears negated must only use the
// positive occurrence as a delta position.
func TestDeltaSkipsNegatedOccurrence(t *testing.T) {
	db := newDB(map[string]int{"r": 1, "s": 1, "out": 1})
	prog := datalog.NewProgram(
		datalog.NewRule("q", datalog.NewAtom("out", datalog.V("x")),
			datalog.Pos(datalog.NewAtom("r", datalog.V("x"))),
			datalog.Neg(datalog.NewAtom("s", datalog.V("x")))),
	)
	ev, err := New(prog, db, value.NewSkolemTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// s is EDB with content; delta arrives on r only.
	db.Table("s").Insert(tup(2))
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	delta := storage.DeltaSet{}
	for _, x := range []int64{1, 2} {
		row := tup(x)
		db.Table("r").Insert(row)
		delta.Insert("r", row)
	}
	if _, err := ev.PropagateInsertions(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	out := db.Table("out")
	if !out.Contains(tup(1)) || out.Contains(tup(2)) {
		t.Fatalf("negation mishandled in delta path:\n%s", db.Dump("out"))
	}
}
