package engine

import (
	"context"
	"strings"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/value"
)

// costQueryProg is ans(x, z) :- big(x, y), small(y, z): written big-first
// so only a cost-based plan reorders it to lead with the small relation.
func costQueryProg() *datalog.Program {
	return datalog.NewProgram(
		datalog.NewRule("q", datalog.NewAtom("ans", datalog.V("x"), datalog.V("z")),
			datalog.Pos(datalog.NewAtom("big", datalog.V("x"), datalog.V("y"))),
			datalog.Pos(datalog.NewAtom("small", datalog.V("y"), datalog.V("z")))),
	)
}

func TestCostBasedOrderLeadsWithSmallTable(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			db := newDB(map[string]int{"big": 2, "small": 2, "ans": 2})
			for i := int64(0); i < 500; i++ {
				db.Table("big").Insert(tup(i, i%50))
			}
			for i := int64(0); i < 5; i++ {
				db.Table("small").Insert(tup(i, i+100))
			}
			ev, err := NewQuery(costQueryProg(), db, value.NewSkolemTable(), Options{Backend: be, CostBased: true})
			if err != nil {
				t.Fatal(err)
			}
			p := ev.naivePlans[ev.prog.Rules[0]]
			if !p.costBased {
				t.Fatal("plan not marked cost-based")
			}
			if got := p.steps[0].pred; got != "small" {
				t.Fatalf("first step reads %q, want the small relation", got)
			}
			if p.steps[1].kind != stepProbe {
				t.Fatalf("second step kind = %d, want probe", p.steps[1].kind)
			}
			// Results must match the fixed-order plan.
			if _, err := ev.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			got := db.Table("ans").Len()

			db2 := newDB(map[string]int{"big": 2, "small": 2, "ans": 2})
			for i := int64(0); i < 500; i++ {
				db2.Table("big").Insert(tup(i, i%50))
			}
			for i := int64(0); i < 5; i++ {
				db2.Table("small").Insert(tup(i, i+100))
			}
			ev2, err := New(costQueryProg(), db2, value.NewSkolemTable(), Options{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ev2.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if want := db2.Table("ans").Len(); got != want {
				t.Fatalf("cost-based plan derived %d rows, fixed-order %d", got, want)
			}
		})
	}
}

func TestCostBasedBoundFirstAvoidsCrossProduct(t *testing.T) {
	// q(x) :- a(x), b(y), c(x, y): after a binds x, the cost picker must
	// prefer c (bound via x) over the unbound b even though b is smaller.
	db := newDB(map[string]int{"a": 1, "b": 1, "c": 2, "q": 1})
	for i := int64(0); i < 50; i++ {
		db.Table("a").Insert(tup(i))
	}
	for i := int64(0); i < 3; i++ {
		db.Table("b").Insert(tup(i))
	}
	for i := int64(0); i < 200; i++ {
		db.Table("c").Insert(tup(i%50, i%3))
	}
	prog := datalog.NewProgram(
		datalog.NewRule("q", datalog.NewAtom("q", datalog.V("x")),
			datalog.Pos(datalog.NewAtom("a", datalog.V("x"))),
			datalog.Pos(datalog.NewAtom("b", datalog.V("y"))),
			datalog.Pos(datalog.NewAtom("c", datalog.V("x"), datalog.V("y")))),
	)
	ev, err := NewQuery(prog, db, value.NewSkolemTable(), Options{Backend: BackendIndexed, CostBased: true})
	if err != nil {
		t.Fatal(err)
	}
	p := ev.naivePlans[prog.Rules[0]]
	order := []string{p.steps[0].pred, p.steps[1].pred, p.steps[2].pred}
	// b must come last: joining it before c would be a cross product.
	if order[1] != "c" {
		t.Fatalf("join order %v, want c joined second (bound-variable-first)", order)
	}
}

func TestNewQueryUsesWarmIndexOnHashBackend(t *testing.T) {
	db := newDB(map[string]int{"r": 2, "ans": 1})
	for i := int64(0); i < 100; i++ {
		db.Table("r").Insert(tup(i, i%10))
	}
	db.Table("r").EnsureIndex(0) // the declared secondary index
	prog := datalog.NewProgram(
		datalog.NewRule("q", datalog.NewAtom("ans", datalog.V("y")),
			datalog.Pos(datalog.NewAtom("r", datalog.C(value.Int(7)), datalog.V("y")))),
	)
	ev, err := NewQuery(prog, db, value.NewSkolemTable(), Options{Backend: BackendHash, CostBased: true})
	if err != nil {
		t.Fatal(err)
	}
	p := ev.naivePlans[prog.Rules[0]]
	if p.steps[0].kind != stepProbe || p.steps[0].idx == nil {
		t.Fatalf("hash-backend query plan did not cache the warm index (kind=%d idx=%v)", p.steps[0].kind, p.steps[0].idx)
	}
	stats, err := ev.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TransientBuilds != 0 {
		t.Fatalf("TransientBuilds = %d, want 0 (warm index should be probed)", stats.TransientBuilds)
	}
	if db.Table("ans").Len() != 1 || !db.Table("ans").Contains(tup(7)) {
		t.Fatalf("wrong result: %v", db.Table("ans").Rows())
	}
}

func TestExplainString(t *testing.T) {
	db := newDB(map[string]int{"big": 2, "small": 2, "ans": 2})
	for i := int64(0); i < 100; i++ {
		db.Table("big").Insert(tup(i, i%10))
	}
	db.Table("small").Insert(tup(1, 2))
	prog := costQueryProg()
	prog.Rules[0].AddFilterSel("x >= 3", 1.0/3, func(value.Env) bool { return true })
	ev, err := NewQuery(prog, db, value.NewSkolemTable(), Options{Backend: BackendIndexed, CostBased: true})
	if err != nil {
		t.Fatal(err)
	}
	out := ev.ExplainString()
	for _, want := range []string{
		"cost-based", "scan small", "probe big", "persistent index",
		"where x >= 3", "est selectivity 0.33", "estimated results",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
}
