package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/datalog"
	"orchestra/internal/storage"
	"orchestra/internal/value"
)

// Options configures an Evaluator.
type Options struct {
	Backend Backend
	// MaxIterations bounds each stratum's fixpoint loop as a safety net
	// against non-terminating programs (weak acyclicity should prevent
	// this; 0 means a generous default).
	MaxIterations int
	// Parallelism bounds the worker pool evaluating the rules of one
	// semi-naive round concurrently (tables are immutable while a round's
	// rules fire, so rule evaluation is read-only). 0 means GOMAXPROCS; 1
	// forces fully sequential execution. Fixpoints, instances, and
	// provenance are identical at every setting — derived batches merge in
	// deterministic rule order, and labeled-null interning is deferred to
	// that merge — though TransientBuilds may differ, since parallel
	// rounds pre-build the hash backend's transient indexes their plans
	// can probe instead of building them lazily on first probe.
	Parallelism int
	// CostBased enables statistics-driven join ordering for evaluators
	// compiled with NewQuery (see plancost.go). Maintenance evaluators
	// (New) ignore it: their plans keep the deterministic fixed order the
	// exchange equivalence and scheduler determinism suites pin
	// byte-for-byte.
	CostBased bool
}

// Stats reports work done by an evaluation.
type Stats struct {
	// Iterations counts semi-naive rounds summed over strata.
	Iterations int
	// Derived counts tuples newly inserted into head relations.
	Derived int
	// Probes counts index / hash probes plus scanned rows.
	Probes int
	// TransientBuilds counts transient hash table constructions — the
	// BackendHash statement overhead. Transient indexes are maintained
	// incrementally as the evaluator derives tuples, so a build is charged
	// when a (relation, column) is first probed and again after external
	// mutations invalidate (InvalidateTransient), not on every round.
	TransientBuilds int
	// RuleFires counts rule-plan invocations.
	RuleFires int
	// EvalNS is wall-clock nanoseconds spent inside evaluator entry
	// points (fixpoint loops and propagation), summed when accumulated.
	EvalNS int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Iterations += other.Iterations
	s.Derived += other.Derived
	s.Probes += other.Probes
	s.TransientBuilds += other.TransientBuilds
	s.RuleFires += other.RuleFires
	s.EvalNS += other.EvalNS
}

// deltaEntry pairs a body predicate with the delta plans of its positive
// occurrences, in sorted-predicate order so rounds schedule rule firings
// deterministically.
type deltaEntry struct {
	pred  string
	plans []*plan
}

// Evaluator runs a fixed program against a database.
type Evaluator struct {
	prog   *datalog.Program
	strata []*datalog.Stratum
	db     *storage.Database
	sk     *value.SkolemTable
	opts   Options

	// naivePlans[rule] evaluates the whole body against full relations.
	naivePlans map[*datalog.Rule]*plan
	// deltaPlans[rule] holds, per positive body predicate (sorted), one
	// plan per occurrence of that predicate in the rule body.
	deltaPlans map[*datalog.Rule][]deltaEntry
	// reads[stratum] is the precomputed set of predicates the stratum's
	// rule bodies mention positively, so incremental propagation does not
	// rebuild it per call.
	reads map[*datalog.Stratum]map[string]bool
	// stratumPlans[stratum][pred] lists the delta plans fed by pred, in
	// deterministic (pred-sorted, then rule) order. Rounds only touch the
	// plans of predicates that actually changed, so per-round cost scales
	// with the delta, not with program size.
	stratumPlans map[*datalog.Stratum]map[string][]*plan
	// predScratch is the per-round reusable buffer of changed predicates.
	predScratch []string

	// transient per-call hash indexes for BackendHash: pred -> col ->
	// probe value -> dense rows. Once built, an index is maintained
	// incrementally as derived tuples are applied; external mutations
	// invalidate via the generation counters.
	transient map[string]map[int]map[value.Value][]value.Row
	tgen      map[string]int
	gen       map[string]int
}

// New compiles and validates prog against db. All predicates mentioned by
// the program must exist as tables. The Skolem table provides labeled
// nulls for head Skolem terms. New is the maintenance entry point: plans
// keep the fixed deterministic join order.
func New(prog *datalog.Program, db *storage.Database, sk *value.SkolemTable, opts Options) (*Evaluator, error) {
	return newEvaluator(prog, db, sk, opts, planMode{})
}

// NewQuery compiles a read-path evaluator: plans probe warm persistent
// indexes on any backend (declared secondary indexes included) and, with
// opts.CostBased set, order joins by the statistics cost model. Query
// and explain paths must compile through NewQuery; maintenance
// evaluators must use New so their plans stay byte-identical across
// releases (enforced by the planorder analyzer).
func NewQuery(prog *datalog.Program, db *storage.Database, sk *value.SkolemTable, opts Options) (*Evaluator, error) {
	return newEvaluator(prog, db, sk, opts, planMode{query: true, cost: opts.CostBased})
}

func newEvaluator(prog *datalog.Program, db *storage.Database, sk *value.SkolemTable, opts Options, mode planMode) (*Evaluator, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	strata, err := prog.Stratify()
	if err != nil {
		return nil, err
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 1_000_000
	}
	ev := &Evaluator{
		prog:         prog,
		strata:       strata,
		db:           db,
		sk:           sk,
		opts:         opts,
		naivePlans:   make(map[*datalog.Rule]*plan),
		deltaPlans:   make(map[*datalog.Rule][]deltaEntry),
		reads:        make(map[*datalog.Stratum]map[string]bool),
		stratumPlans: make(map[*datalog.Stratum]map[string][]*plan),
		transient:    make(map[string]map[int]map[value.Value][]value.Row),
		tgen:         make(map[string]int),
		gen:          make(map[string]int),
	}
	for _, st := range strata {
		reads := make(map[string]bool)
		for _, r := range st.Rules {
			for _, p := range bodyPreds(r) {
				reads[p] = true
			}
		}
		ev.reads[st] = reads
	}
	ensureIdx := opts.Backend == BackendIndexed
	for _, r := range prog.Rules {
		np, err := compilePlan(r, -1, db, opts.Backend, ensureIdx, mode)
		if err != nil {
			return nil, err
		}
		ev.naivePlans[r] = np
		var entries []deltaEntry
		for _, pred := range bodyPreds(r) { // sorted
			e := deltaEntry{pred: pred}
			for _, pos := range deltaPositions(r, pred) {
				dp, err := compilePlan(r, pos, db, opts.Backend, ensureIdx, mode)
				if err != nil {
					return nil, err
				}
				e.plans = append(e.plans, dp)
			}
			entries = append(entries, e)
		}
		ev.deltaPlans[r] = entries
	}
	for _, st := range strata {
		byPred := make(map[string][]*plan)
		for _, r := range st.Rules {
			for _, e := range ev.deltaPlans[r] {
				byPred[e.pred] = append(byPred[e.pred], e.plans...)
			}
		}
		ev.stratumPlans[st] = byPred
	}
	return ev, nil
}

// DB returns the database the evaluator runs against.
func (ev *Evaluator) DB() *storage.Database { return ev.db }

// Program returns the compiled program.
func (ev *Evaluator) Program() *datalog.Program { return ev.prog }

// parallelism resolves the configured worker bound.
func (ev *Evaluator) parallelism() int {
	if ev.opts.Parallelism > 0 {
		return ev.opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Run evaluates the program to fixpoint from the current database state
// (naive first round per stratum, then semi-naive rounds). It returns
// evaluation statistics. The fixpoint loop stops between rounds when
// ctx is done, returning ctx.Err(); tables may then hold a partially
// propagated state, and callers that continue must recompute.
func (ev *Evaluator) Run(ctx context.Context) (stats Stats, err error) {
	start := time.Now()
	defer func() { stats.EvalNS += time.Since(start).Nanoseconds() }()
	for _, st := range ev.strata {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		// First round: naive evaluation of every rule in the stratum.
		// Derived rows are buffered and applied after the whole round —
		// tables stay immutable during a round, so the round's rules can
		// evaluate concurrently and transient hash indexes (BackendHash)
		// stay valid for the whole round.
		changed := make(map[string][]value.Row)
		tasks := make([]evalTask, 0, len(st.Rules))
		for _, r := range st.Rules {
			tasks = append(tasks, evalTask{plan: ev.naivePlans[r]})
		}
		buffered, err := ev.runTasks(tasks, &stats)
		if err != nil {
			return stats, err
		}
		for i := range buffered {
			ev.applyDerived(&buffered[i], changed, &stats)
		}
		stats.Iterations++
		if err := ev.seminaiveLoop(ctx, st, changed, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// RunRules evaluates to fixpoint like Run, except that the
// naive first round of each stratum fires only the rules selected by
// include (matched on rule id); everything those rules derive then
// propagates semi-naively through every rule of the stratum, and changes
// stay visible to later strata. This is the seeded evaluation behind spec
// evolution: after new mapping rules join a recompiled program, seeding
// with just those rules repairs the fixpoint in time proportional to the
// new rules' derivations instead of re-deriving the whole instance.
//
// The caller must guarantee the database is already a fixpoint of the
// non-included rules (true for a view that was clean before the rules
// were added); otherwise their derivations are not re-examined.
func (ev *Evaluator) RunRules(ctx context.Context, include func(ruleID string) bool) (stats Stats, err error) {
	start := time.Now()
	defer func() { stats.EvalNS += time.Since(start).Nanoseconds() }()
	changed := make(map[string][]value.Row)
	for _, st := range ev.strata {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		tasks := make([]evalTask, 0, len(st.Rules))
		for _, r := range st.Rules {
			if include(r.ID) {
				tasks = append(tasks, evalTask{plan: ev.naivePlans[r]})
			}
		}
		if len(tasks) > 0 {
			buffered, err := ev.runTasks(tasks, &stats)
			if err != nil {
				return stats, err
			}
			for i := range buffered {
				ev.applyDerived(&buffered[i], changed, &stats)
			}
			stats.Iterations++
		}
		if err := ev.seminaiveLoop(ctx, st, changed, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// derivedBatch buffers one rule firing's output within a semi-naive
// round: candidate head rows plus the Skolem applications whose interning
// was deferred to the deterministic merge (parallel rounds).
type derivedBatch struct {
	plan    *plan
	rows    []value.Tuple
	pending []skPending
}

// PropagateInsertions propagates already-applied base insertions to
// fixpoint: delta maps relation names to the tuples that were newly
// inserted into them. Only insertion deltas are consulted; cancellation
// is checked between semi-naive rounds.
func (ev *Evaluator) PropagateInsertions(ctx context.Context, delta storage.DeltaSet) (Stats, error) {
	pending := make(map[string][]value.Row)
	for rel, d := range delta {
		ins := d.InsRows()
		if len(ins) > 0 {
			pending[rel] = append(pending[rel], ins...)
		}
	}
	return ev.PropagateRows(ctx, pending)
}

// PropagateRows propagates already-applied base insertions given
// directly as keyed rows per relation — the zero-copy entry point for
// callers that already hold keyed rows. The map is consumed: it seeds the
// per-stratum change sets and accumulates changes produced in earlier
// strata, which remain visible to later ones.
func (ev *Evaluator) PropagateRows(ctx context.Context, pending map[string][]value.Row) (stats Stats, err error) {
	start := time.Now()
	defer func() { stats.EvalNS += time.Since(start).Nanoseconds() }()
	for _, st := range ev.strata {
		if err := ev.seminaiveLoop(ctx, st, pending, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// seminaiveLoop repeatedly fires delta plans of the stratum's rules until
// no new tuples appear. changed accumulates every new tuple (per pred)
// seen so far during the enclosing operation: the loop consumes the
// entries relevant to this stratum but leaves them in place for later
// strata.
func (ev *Evaluator) seminaiveLoop(ctx context.Context, st *datalog.Stratum, changed map[string][]value.Row, stats *Stats) error {
	// Which preds does this stratum read? (Precomputed at compile time.)
	reads := ev.reads[st]
	// Working delta: initially all accumulated changes for read preds.
	work := make(map[string][]value.Row)
	for pred, rows := range changed {
		if reads[pred] && len(rows) > 0 {
			work[pred] = rows
		}
	}
	var tasks []evalTask
	next := make(map[string][]value.Row)
	for iter := 0; len(work) > 0; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if iter >= ev.opts.MaxIterations {
			return fmt.Errorf("engine: stratum exceeded %d iterations (non-terminating mappings?)", ev.opts.MaxIterations)
		}
		stats.Iterations++
		tasks = tasks[:0]
		// Fire only the plans whose delta predicate changed this round, in
		// deterministic (sorted-pred, rule) order.
		preds := ev.predScratch[:0]
		for pred := range work {
			preds = append(preds, pred)
		}
		sort.Strings(preds)
		ev.predScratch = preds
		byPred := ev.stratumPlans[st]
		for _, pred := range preds {
			rows := work[pred]
			if len(rows) == 0 {
				continue
			}
			for _, dp := range byPred[pred] {
				tasks = append(tasks, evalTask{plan: dp, delta: rows})
			}
		}
		buffered, err := ev.runTasks(tasks, stats)
		if err != nil {
			return err
		}
		// Apply the whole round at once (Jacobi-style): newly derived
		// tuples only become visible — and joinable — in the next round,
		// where they are also this loop's delta.
		for i := range buffered {
			ev.applyDerived(&buffered[i], next, stats)
		}
		// Fold this round's new tuples into the global change set and
		// into the next working delta. The maps double-buffer: work keeps
		// the slice headers, so clearing next for the coming round is
		// safe.
		clear(work)
		for pred, rows := range next {
			if len(rows) == 0 {
				continue
			}
			changed[pred] = append(changed[pred], rows...)
			if reads[pred] {
				work[pred] = rows
			}
		}
		clear(next)
	}
	return nil
}

// evalTask is one rule-plan firing of a round.
type evalTask struct {
	plan  *plan
	delta []value.Row
}

// runTasks evaluates the rule firings of one round, sequentially or over
// a bounded worker pool, and returns their batches in task order. Rounds
// fire against immutable tables, so parallel evaluation is read-only:
// labeled-null interning is deferred into the batches (resolved in
// deterministic order by applyDerived) and the hash backend's transient
// indexes are pre-built before the workers start.
func (ev *Evaluator) runTasks(tasks []evalTask, stats *Stats) ([]derivedBatch, error) {
	workers := ev.parallelism()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		batches := make([]derivedBatch, 0, len(tasks))
		for _, t := range tasks {
			rows, err := ev.evalPlan(t.plan, t.delta, stats, false)
			if err != nil {
				return nil, err
			}
			batches = append(batches, derivedBatch{plan: t.plan, rows: rows})
		}
		return batches, nil
	}

	// Pre-build every transient index the round's plans can probe, so
	// workers only read the transient maps.
	if ev.opts.Backend == BackendHash {
		for _, t := range tasks {
			for i := range t.plan.steps {
				st := &t.plan.steps[i]
				if st.kind == stepProbe {
					ev.ensureTransient(st.pred, st.probeCol, stats)
				}
			}
		}
	}

	type result struct {
		batch derivedBatch
		stats Stats
		err   error
	}
	results := make([]result, len(tasks))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				t := tasks[i]
				rows, err := ev.evalPlan(t.plan, t.delta, &results[i].stats, true)
				results[i].batch = derivedBatch{plan: t.plan, rows: rows, pending: t.plan.ex.pending}
				results[i].err = err
			}
		}()
	}
	wg.Wait()

	batches := make([]derivedBatch, 0, len(tasks))
	for i := range results {
		stats.Add(results[i].stats)
		if results[i].err != nil {
			return nil, results[i].err
		}
		batches = append(batches, results[i].batch)
	}
	return batches, nil
}

// applyDerived resolves a batch's deferred Skolem applications (interning
// in deterministic batch order — exactly the order sequential evaluation
// interns in), inserts its rows into the head relation, and records
// genuinely new rows into out.
func (ev *Evaluator) applyDerived(batch *derivedBatch, out map[string][]value.Row, stats *Stats) {
	for _, p := range batch.pending {
		batch.rows[p.rowIdx][p.col] = ev.sk.Apply(p.fn, p.args)
	}
	p := batch.plan
	inserted := 0
	pred := p.headPred
	tbl := p.headTbl
	for _, row := range batch.rows {
		r, ok := tbl.InsertOwned(row)
		if !ok {
			continue
		}
		inserted++
		out[pred] = append(out[pred], r)
		stats.Derived++
		// Maintain live transient indexes incrementally instead of
		// invalidating them into a full rebuild on the next probe.
		if cols, ok := ev.transient[pred]; ok && len(cols) > 0 && ev.tgen[pred] == ev.gen[pred] {
			for col, idx := range cols {
				idx[r.Tuple[col]] = append(idx[r.Tuple[col]], r)
			}
		}
	}
	// Adapt the plan's emit-time duplicate check to the firing's observed
	// duplicate rate: every emitted head was either dropped by the check,
	// rejected at insert, or genuinely new.
	if ex := p.ex; ex != nil && ex.emitted >= 16 {
		dups := ex.dedupDropped + (len(batch.rows) - inserted)
		p.dedup = 2*dups >= ex.emitted
	}
}

// InvalidateTransient drops cached per-call hash tables for pred; callers
// that mutate tables outside the evaluator (e.g. the deletion algorithms)
// must invalidate. It is a no-op for backends that keep no transient
// state.
func (ev *Evaluator) InvalidateTransient(pred string) {
	if ev.opts.Backend != BackendHash {
		return
	}
	ev.gen[pred]++
}

// InvalidateAllTransient drops every cached per-call hash table.
func (ev *Evaluator) InvalidateAllTransient() {
	if ev.opts.Backend != BackendHash {
		return
	}
	for pred := range ev.transient {
		ev.gen[pred]++
	}
	ev.transient = make(map[string]map[int]map[value.Value][]value.Row)
	ev.tgen = make(map[string]int)
}

// skPending records one deferred Skolem application: during parallel
// rounds workers only look interned terms up; genuinely new terms are
// interned by applyDerived in deterministic merge order and patched into
// the derived row.
type skPending struct {
	rowIdx int
	col    int
	fn     string
	args   value.Tuple
}

// execState is a plan's reusable evaluation scratch. Within a round every
// plan fires at most once, and rounds of one evaluator never overlap, so
// per-plan scratch makes steady-state evaluation allocation-free apart
// from genuinely new head tuples.
type execState struct {
	binding value.Tuple
	// cursors holds per-step iteration state. rows aliases shared storage
	// (table slices, index buckets, transient buckets) and is read-only;
	// fallback holds the owned per-step buffers for unindexed probes.
	rows     [][]value.Row
	fallback [][]value.Row
	pos      []int
	// negKey is the scratch encode buffer for negation membership checks;
	// negTuple the scratch tuple assembled for them.
	negKey   []byte
	negTuple value.Tuple
	// skArgs is the scratch argument tuple for Skolem checks/ops; skKey
	// the scratch encode buffer for their interned-term lookups.
	skArgs value.Tuple
	skKey  []byte
	// head is the scratch head tuple; headKey its encode buffer for the
	// early duplicate check.
	head    value.Tuple
	headKey []byte
	out     []value.Tuple
	pending []skPending
	env     slotEnv
	// emitted and dedupDropped count this firing's emit outcomes, feeding
	// the adaptive duplicate-check decision in applyDerived.
	emitted      int
	dedupDropped int
}

// slotEnv exposes the binding array as a value.Env for rule filters, so
// trust conditions evaluate without a per-match map.
type slotEnv struct {
	names   []string
	binding value.Tuple
}

func (e *slotEnv) Lookup(name string) (value.Value, bool) {
	for i, n := range e.names {
		if n == name {
			return e.binding[i], true
		}
	}
	return value.Value{}, false
}

// exec returns the plan's evaluation scratch, building it on first use.
func (p *plan) execState() *execState {
	if p.ex == nil {
		maxArity := 0
		for i := range p.steps {
			n := len(p.steps[i].checks) + len(p.steps[i].binds) + len(p.steps[i].postChecks)
			if n > maxArity {
				maxArity = n
			}
		}
		maxSk := 0
		for _, sc := range p.skChecks {
			if len(sc.argSlots) > maxSk {
				maxSk = len(sc.argSlots)
			}
		}
		for _, op := range p.headOps {
			if len(op.ArgSlots) > maxSk {
				maxSk = len(op.ArgSlots)
			}
		}
		p.ex = &execState{
			binding:  make(value.Tuple, p.nslots),
			rows:     make([][]value.Row, len(p.steps)),
			fallback: make([][]value.Row, len(p.steps)),
			pos:      make([]int, len(p.steps)),
			negTuple: make(value.Tuple, maxArity),
			skArgs:   make(value.Tuple, maxSk),
			head:     make(value.Tuple, len(p.headOps)),
			env:      slotEnv{names: p.varNames},
		}
		p.ex.env.binding = p.ex.binding
	}
	return p.ex
}

// evalPlan runs one compiled plan as an iterative backtracking machine
// over the plan's preallocated binding array. deltaRows feeds the plan's
// delta step (may be nil for naive plans). It returns the derived head
// tuples (unvalidated against the head table; duplicates possible). With
// deferSk set (parallel rounds) new Skolem terms are not interned but
// recorded in the plan scratch's pending list.
//
// The returned slice is plan scratch: it is valid until the plan's next
// firing, i.e. for the remainder of the current round.
func (ev *Evaluator) evalPlan(p *plan, deltaRows []value.Row, stats *Stats, deferSk bool) ([]value.Tuple, error) {
	stats.RuleFires++
	ex := p.execState()
	ex.out = ex.out[:0]
	ex.pending = ex.pending[:0]
	ex.emitted = 0
	ex.dedupDropped = 0
	nsteps := len(p.steps)

	si := 0
	probes := 0
	if err := ev.enterStep(p, ex, 0, deltaRows, stats); err != nil {
		return nil, err
	}
	for si >= 0 {
		if si == nsteps {
			ev.emit(p, ex, stats, deferSk)
			si--
			continue
		}
		st := &p.steps[si]
		if st.kind == stepNegCheck {
			// A negation check "iterates" at most once: descend on first
			// entry if the tuple is absent, fail on re-entry.
			if ex.pos[si] != 0 {
				si--
				continue
			}
			ex.pos[si] = 1
			probes++
			if ev.negHolds(st, ex) {
				si++
				if si < nsteps {
					if err := ev.enterStep(p, ex, si, deltaRows, stats); err != nil {
						return nil, err
					}
				}
			} else {
				si--
			}
			continue
		}
		rows := ex.rows[si]
		pos := ex.pos[si]
		matched := false
		for pos < len(rows) {
			row := rows[pos].Tuple
			pos++
			probes++
			if matchStep(st, ex.binding, row) {
				matched = true
				break
			}
		}
		ex.pos[si] = pos
		if !matched {
			si--
			continue
		}
		si++
		if si < nsteps {
			if err := ev.enterStep(p, ex, si, deltaRows, stats); err != nil {
				return nil, err
			}
		}
	}
	stats.Probes += probes
	return ex.out, nil
}

// enterStep initializes step si's candidate rows under the current
// binding.
func (ev *Evaluator) enterStep(p *plan, ex *execState, si int, deltaRows []value.Row, stats *Stats) error {
	st := &p.steps[si]
	ex.pos[si] = 0
	switch st.kind {
	case stepDelta:
		arity := st.tbl.Arity()
		for i := range deltaRows {
			if len(deltaRows[i].Tuple) != arity {
				return fmt.Errorf("engine: delta row arity mismatch for %s", st.pred)
			}
		}
		ex.rows[si] = deltaRows
	case stepScan:
		ex.rows[si] = st.tbl.AllRows()
	case stepProbe:
		pv := st.probeVal
		if st.probeSlot >= 0 {
			pv = ex.binding[st.probeSlot]
		}
		switch {
		case st.idx != nil:
			// Persistent index, including warm declared indexes picked up
			// by read-path plans on the hash backend (maintenance hash
			// plans never cache one — they compile before indexes exist).
			ex.rows[si] = st.idx.Rows(pv)
		case ev.opts.Backend == BackendHash:
			ex.rows[si] = ev.transientProbe(st.pred, st.probeCol, pv, stats)
		default:
			// No index on the probe column (possible for plans compiled
			// without ensureIndexes): degrade to a filtered scan.
			return ev.scanFallback(ex, si, st, pv)
		}
	case stepNegCheck:
		ex.rows[si] = nil
	}
	return nil
}

// scanFallback materializes an unindexed probe as a filtered scan into
// the step's owned scratch buffer (reused across firings).
func (ev *Evaluator) scanFallback(ex *execState, si int, st *step, pv value.Value) error {
	buf := ex.fallback[si][:0]
	for _, r := range st.tbl.AllRows() {
		if r.Tuple[st.probeCol] == pv {
			buf = append(buf, r)
		}
	}
	ex.fallback[si] = buf
	ex.rows[si] = buf
	return nil
}

// matchStep checks a candidate row against the step's bound columns,
// binds its fresh columns, and verifies within-atom repeats. It reports
// whether the row extends the binding.
func matchStep(st *step, binding value.Tuple, row value.Tuple) bool {
	for i := range st.checks {
		c := &st.checks[i]
		want := c.Const
		if c.slot >= 0 {
			want = binding[c.slot]
		}
		if row[c.col] != want {
			return false
		}
	}
	for i := range st.binds {
		b := &st.binds[i]
		binding[b.slot] = row[b.col]
	}
	for i := range st.postChecks {
		c := &st.postChecks[i]
		if row[c.col] != binding[c.slot] {
			return false
		}
	}
	return true
}

// negHolds reports whether the negated atom's tuple is absent. The tuple
// and its key encoding are assembled in plan scratch.
func (ev *Evaluator) negHolds(st *step, ex *execState) bool {
	want := ex.negTuple[:len(st.checks)]
	for i := range st.checks {
		c := &st.checks[i]
		if c.slot >= 0 {
			want[c.col] = ex.binding[c.slot]
		} else {
			want[c.col] = c.Const
		}
	}
	ex.negKey = want.EncodeKey(ex.negKey[:0])
	return !st.tbl.ContainsKey(string(ex.negKey))
}

// emit runs the deferred body Skolem checks and filters on a fully bound
// body, builds the head tuple, and appends it to the output unless the
// head relation already holds it (the early duplicate check that keeps
// re-derivations allocation-free).
func (ev *Evaluator) emit(p *plan, ex *execState, stats *Stats, deferSk bool) {
	for i := range p.skChecks {
		sc := &p.skChecks[i]
		args := ex.skArgs[:len(sc.argSlots)]
		for j, s := range sc.argSlots {
			args[j] = ex.binding[s]
		}
		// Lookup never interns: a term that was never applied cannot equal
		// a value stored in a relation, so a miss is a failed check.
		v, key, ok := ev.sk.LookupBuf(sc.fn, args, ex.skKey)
		ex.skKey = key
		if !ok || v != ex.binding[sc.valueSlot] {
			return
		}
	}
	for _, f := range p.rule.Filters {
		if !f(&ex.env) {
			return
		}
	}
	// Re-derivation-heavy plans fill the scratch head first and discard
	// already-present tuples via the early duplicate check below, without
	// materializing anything. Mostly-fresh plans (bulk loads, naive
	// rounds) build the output tuple directly and skip both the check and
	// the extra copy. The choice adapts per firing (see applyDerived).
	ex.emitted++
	mayDedup := p.dedup
	head := ex.head
	if !mayDedup {
		head = make(value.Tuple, len(p.headOps))
	}
	deferred := false
	for i := range p.headOps {
		op := &p.headOps[i]
		switch {
		case op.slot >= 0:
			head[i] = ex.binding[op.slot]
		case op.slot == -1:
			head[i] = op.Const
		default:
			args := ex.skArgs[:len(op.ArgSlots)]
			for j, s := range op.ArgSlots {
				args[j] = ex.binding[s]
			}
			if !deferSk {
				head[i], ex.skKey = ev.sk.ApplyBuf(op.Fn, args, ex.skKey)
				continue
			}
			if v, key, ok := ev.sk.LookupBuf(op.Fn, args, ex.skKey); ok {
				ex.skKey = key
				head[i] = v
				continue
			} else {
				ex.skKey = key
			}
			// Genuinely new term: defer interning to the deterministic
			// merge. The placeholder is patched by applyDerived.
			head[i] = value.Value{}
			ex.pending = append(ex.pending, skPending{
				rowIdx: len(ex.out), col: i, fn: op.Fn, args: args.Clone(),
			})
			deferred = true
		}
	}
	if !mayDedup {
		ex.out = append(ex.out, head)
		return
	}
	if !deferred {
		// Early duplicate check for semi-naive rounds: a head already
		// present in its relation would be rejected by applyDerived
		// anyway; skipping it here avoids materializing a tuple per
		// re-derivation. (Rows derived earlier in this same round are not
		// yet visible — they dedup at insert, exactly as before.)
		ex.headKey = head.EncodeKey(ex.headKey[:0])
		if p.headTbl.ContainsKey(string(ex.headKey)) {
			ex.dedupDropped++
			return
		}
	}
	ex.out = append(ex.out, head.Clone())
}

// ensureTransient builds (if absent or invalidated) the transient hash
// index of pred on col, charging the build to TransientBuilds.
func (ev *Evaluator) ensureTransient(pred string, col int, stats *Stats) map[value.Value][]value.Row {
	cols, ok := ev.transient[pred]
	if !ok || ev.tgen[pred] != ev.gen[pred] {
		cols = make(map[int]map[value.Value][]value.Row)
		ev.transient[pred] = cols
		ev.tgen[pred] = ev.gen[pred]
	}
	idx, ok := cols[col]
	if !ok {
		idx = make(map[value.Value][]value.Row)
		for _, r := range ev.db.Table(pred).AllRows() {
			idx[r.Tuple[col]] = append(idx[r.Tuple[col]], r)
		}
		cols[col] = idx
		stats.TransientBuilds++
	}
	return idx
}

// transientProbe returns rows of pred whose column col equals v, using a
// transient hash index (BackendHash). The index is built on first probe —
// the per-statement cost of the RDBMS-style backend — then maintained
// incrementally as derived tuples are applied; external mutations
// invalidate it via the generation counters.
func (ev *Evaluator) transientProbe(pred string, col int, v value.Value, stats *Stats) []value.Row {
	return ev.ensureTransient(pred, col, stats)[v]
}
