package engine

import (
	"context"
	"fmt"

	"orchestra/internal/datalog"
	"orchestra/internal/storage"
	"orchestra/internal/value"
)

// Options configures an Evaluator.
type Options struct {
	Backend Backend
	// MaxIterations bounds each stratum's fixpoint loop as a safety net
	// against non-terminating programs (weak acyclicity should prevent
	// this; 0 means a generous default).
	MaxIterations int
}

// Stats reports work done by an evaluation.
type Stats struct {
	// Iterations counts semi-naive rounds summed over strata.
	Iterations int
	// Derived counts tuples newly inserted into head relations.
	Derived int
	// Probes counts index / hash probes plus scanned rows.
	Probes int
	// TransientBuilds counts per-call hash table constructions (the
	// BackendHash statement overhead).
	TransientBuilds int
	// RuleFires counts rule-plan invocations.
	RuleFires int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Iterations += other.Iterations
	s.Derived += other.Derived
	s.Probes += other.Probes
	s.TransientBuilds += other.TransientBuilds
	s.RuleFires += other.RuleFires
}

// Evaluator runs a fixed program against a database.
type Evaluator struct {
	prog   *datalog.Program
	strata []*datalog.Stratum
	db     *storage.Database
	sk     *value.SkolemTable
	opts   Options

	// naivePlans[rule] evaluates the whole body against full relations.
	naivePlans map[*datalog.Rule]*plan
	// deltaPlans[rule][pred] holds one plan per positive occurrence of
	// pred in the rule body.
	deltaPlans map[*datalog.Rule]map[string][]*plan

	// transient per-call hash indexes for BackendHash: pred -> col -> map
	// from probe value to rows. Rebuilt whenever the underlying table
	// changes (generation counter).
	transient map[string]map[int]map[value.Value][]value.Tuple
	tgen      map[string]int
	gen       map[string]int
}

// New compiles and validates prog against db. All predicates mentioned by
// the program must exist as tables. The Skolem table provides labeled
// nulls for head Skolem terms.
func New(prog *datalog.Program, db *storage.Database, sk *value.SkolemTable, opts Options) (*Evaluator, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	strata, err := prog.Stratify()
	if err != nil {
		return nil, err
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 1_000_000
	}
	ev := &Evaluator{
		prog:       prog,
		strata:     strata,
		db:         db,
		sk:         sk,
		opts:       opts,
		naivePlans: make(map[*datalog.Rule]*plan),
		deltaPlans: make(map[*datalog.Rule]map[string][]*plan),
		transient:  make(map[string]map[int]map[value.Value][]value.Tuple),
		tgen:       make(map[string]int),
		gen:        make(map[string]int),
	}
	ensureIdx := opts.Backend == BackendIndexed
	for _, r := range prog.Rules {
		np, err := compilePlan(r, -1, db, opts.Backend, ensureIdx)
		if err != nil {
			return nil, err
		}
		ev.naivePlans[r] = np
		byPred := make(map[string][]*plan)
		for _, pred := range bodyPreds(r) {
			for _, pos := range deltaPositions(r, pred) {
				dp, err := compilePlan(r, pos, db, opts.Backend, ensureIdx)
				if err != nil {
					return nil, err
				}
				byPred[pred] = append(byPred[pred], dp)
			}
		}
		ev.deltaPlans[r] = byPred
	}
	return ev, nil
}

// DB returns the database the evaluator runs against.
func (ev *Evaluator) DB() *storage.Database { return ev.db }

// Program returns the compiled program.
func (ev *Evaluator) Program() *datalog.Program { return ev.prog }

// Run evaluates the program to fixpoint from the current database state
// (naive first round per stratum, then semi-naive rounds). It returns
// evaluation statistics.
func (ev *Evaluator) Run() (Stats, error) {
	return ev.RunContext(context.Background())
}

// RunContext is Run with cancellation: the fixpoint loop stops between
// rounds when ctx is done, returning ctx.Err(). Tables may then hold a
// partially propagated state; callers that continue must recompute.
func (ev *Evaluator) RunContext(ctx context.Context) (Stats, error) {
	var stats Stats
	for _, st := range ev.strata {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		// First round: naive evaluation of every rule in the stratum.
		// Derived rows are buffered and applied after the whole round —
		// tables stay immutable during a round, so per-call hash builds
		// (BackendHash) amortize across the round like a bulk engine's.
		changed := make(map[string][]value.Tuple)
		var buffered []derivedBatch
		for _, r := range st.Rules {
			rows, err := ev.evalPlan(ev.naivePlans[r], nil, &stats)
			if err != nil {
				return stats, err
			}
			buffered = append(buffered, derivedBatch{pred: r.Head.Pred, rows: rows})
		}
		for _, batch := range buffered {
			ev.applyDerived(batch.pred, batch.rows, changed, &stats)
		}
		stats.Iterations++
		if err := ev.seminaiveLoop(ctx, st, changed, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// derivedBatch buffers one rule's output within a semi-naive round.
type derivedBatch struct {
	pred string
	rows []value.Tuple
}

// PropagateInsertions propagates already-applied base insertions to
// fixpoint: delta maps relation names to the tuples that were newly
// inserted into them. Only insertion deltas are consulted.
func (ev *Evaluator) PropagateInsertions(delta storage.DeltaSet) (Stats, error) {
	return ev.PropagateInsertionsContext(context.Background(), delta)
}

// PropagateInsertionsContext is PropagateInsertions with cancellation
// checked between semi-naive rounds.
func (ev *Evaluator) PropagateInsertionsContext(ctx context.Context, delta storage.DeltaSet) (Stats, error) {
	var stats Stats
	// Seed per-stratum change sets with the base delta; changes produced
	// in earlier strata remain visible to later ones.
	pending := make(map[string][]value.Tuple)
	for rel, d := range delta {
		ins := d.Ins()
		if len(ins) > 0 {
			pending[rel] = append(pending[rel], ins...)
		}
	}
	for _, st := range ev.strata {
		if err := ev.seminaiveLoop(ctx, st, pending, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// seminaiveLoop repeatedly fires delta plans of the stratum's rules until
// no new tuples appear. changed accumulates every new tuple (per pred)
// seen so far during the enclosing operation: the loop consumes the
// entries relevant to this stratum but leaves them in place for later
// strata.
func (ev *Evaluator) seminaiveLoop(ctx context.Context, st *datalog.Stratum, changed map[string][]value.Tuple, stats *Stats) error {
	// Which preds does this stratum read?
	reads := make(map[string]bool)
	for _, r := range st.Rules {
		for _, p := range bodyPreds(r) {
			reads[p] = true
		}
	}
	// Working delta: initially all accumulated changes for read preds.
	work := make(map[string][]value.Tuple)
	for pred, rows := range changed {
		if reads[pred] && len(rows) > 0 {
			work[pred] = rows
		}
	}
	for iter := 0; len(work) > 0; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if iter >= ev.opts.MaxIterations {
			return fmt.Errorf("engine: stratum exceeded %d iterations (non-terminating mappings?)", ev.opts.MaxIterations)
		}
		stats.Iterations++
		next := make(map[string][]value.Tuple)
		var buffered []derivedBatch
		for _, r := range st.Rules {
			for pred, plans := range ev.deltaPlans[r] {
				rows := work[pred]
				if len(rows) == 0 {
					continue
				}
				for _, dp := range plans {
					derived, err := ev.evalPlan(dp, rows, stats)
					if err != nil {
						return err
					}
					buffered = append(buffered, derivedBatch{pred: r.Head.Pred, rows: derived})
				}
			}
		}
		// Apply the whole round at once (Jacobi-style): newly derived
		// tuples only become visible — and joinable — in the next round,
		// where they are also this loop's delta.
		for _, batch := range buffered {
			ev.applyDerived(batch.pred, batch.rows, next, stats)
		}
		// Fold this round's new tuples into the global change set and
		// into the next working delta.
		work = make(map[string][]value.Tuple)
		for pred, rows := range next {
			if len(rows) == 0 {
				continue
			}
			changed[pred] = append(changed[pred], rows...)
			if reads[pred] {
				work[pred] = rows
			}
		}
	}
	return nil
}

// applyDerived inserts rows into pred's table, recording genuinely new
// tuples into out.
func (ev *Evaluator) applyDerived(pred string, rows []value.Tuple, out map[string][]value.Tuple, stats *Stats) {
	if len(rows) == 0 {
		return
	}
	tbl := ev.db.Table(pred)
	for _, row := range rows {
		if tbl.Insert(row) {
			out[pred] = append(out[pred], row)
			stats.Derived++
			ev.gen[pred]++
		}
	}
}

// InvalidateTransient drops cached per-call hash tables for pred; callers
// that mutate tables outside the evaluator (e.g. the deletion algorithms)
// must invalidate.
func (ev *Evaluator) InvalidateTransient(pred string) {
	ev.gen[pred]++
}

// InvalidateAllTransient drops every cached per-call hash table.
func (ev *Evaluator) InvalidateAllTransient() {
	for pred := range ev.transient {
		ev.gen[pred]++
	}
	ev.transient = make(map[string]map[int]map[value.Value][]value.Tuple)
	ev.tgen = make(map[string]int)
}

// evalPlan runs one compiled plan. deltaRows feeds the plan's delta step
// (may be nil for naive plans). It returns the derived head tuples
// (unvalidated against the head table; duplicates possible).
func (ev *Evaluator) evalPlan(p *plan, deltaRows []value.Tuple, stats *Stats) ([]value.Tuple, error) {
	stats.RuleFires++
	binding := make(value.Tuple, p.nslots)
	var out []value.Tuple

	var exec func(si int) error
	exec = func(si int) error {
		if si == len(p.steps) {
			for _, sc := range p.skChecks {
				args := make(value.Tuple, len(sc.argSlots))
				for j, s := range sc.argSlots {
					args[j] = binding[s]
				}
				if ev.sk.Apply(sc.fn, args) != binding[sc.valueSlot] {
					return nil
				}
			}
			if len(p.rule.Filters) > 0 {
				env := make(map[string]value.Value, p.nslots)
				for i, name := range p.varNames {
					env[name] = binding[i]
				}
				for _, f := range p.rule.Filters {
					if !f(env) {
						return nil
					}
				}
			}
			head := make(value.Tuple, len(p.headOps))
			for i, op := range p.headOps {
				switch {
				case op.slot >= 0:
					head[i] = binding[op.slot]
				case op.slot == -1:
					head[i] = op.Const
				default:
					args := make(value.Tuple, len(op.ArgSlots))
					for j, s := range op.ArgSlots {
						args[j] = binding[s]
					}
					head[i] = ev.sk.Apply(op.Fn, args)
				}
			}
			out = append(out, head)
			return nil
		}
		st := &p.steps[si]
		tbl := ev.db.Table(st.pred)

		match := func(row value.Tuple) error {
			stats.Probes++
			for _, c := range st.checks {
				want := c.Const
				if c.slot >= 0 {
					want = binding[c.slot]
				}
				if row[c.col] != want {
					return nil
				}
			}
			for _, b := range st.binds {
				binding[b.slot] = row[b.col]
			}
			for _, c := range st.postChecks {
				if row[c.col] != binding[c.slot] {
					return nil
				}
			}
			return exec(si + 1)
		}

		switch st.kind {
		case stepDelta:
			for _, row := range deltaRows {
				if len(row) != tbl.Arity() {
					return fmt.Errorf("engine: delta row arity mismatch for %s", st.pred)
				}
				if err := match(row); err != nil {
					return err
				}
			}
		case stepScan:
			var ferr error
			tbl.Each(func(row value.Tuple) bool {
				ferr = match(row)
				return ferr == nil
			})
			if ferr != nil {
				return ferr
			}
		case stepProbe:
			pv := st.probeVal
			if st.probeSlot >= 0 {
				pv = binding[st.probeSlot]
			}
			if ev.opts.Backend == BackendHash {
				rows := ev.transientProbe(st.pred, st.probeCol, pv, stats)
				for _, row := range rows {
					if err := match(row); err != nil {
						return err
					}
				}
			} else {
				var ferr error
				tbl.Probe(st.probeCol, pv, func(row value.Tuple) bool {
					ferr = match(row)
					return ferr == nil
				})
				if ferr != nil {
					return ferr
				}
			}
		case stepNegCheck:
			want := make(value.Tuple, len(st.checks)+len(st.binds)+len(st.postChecks))
			for _, c := range st.checks {
				if c.slot >= 0 {
					want[c.col] = binding[c.slot]
				} else {
					want[c.col] = c.Const
				}
			}
			stats.Probes++
			if !tbl.Contains(want) {
				return exec(si + 1)
			}
		}
		return nil
	}
	if err := exec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// transientProbe returns rows of pred whose column col equals v, using a
// per-generation transient hash table (BackendHash). The table is rebuilt
// whenever the relation changes, charging the build to TransientBuilds —
// this is the per-statement cost of the RDBMS-style backend.
func (ev *Evaluator) transientProbe(pred string, col int, v value.Value, stats *Stats) []value.Tuple {
	cols, ok := ev.transient[pred]
	if !ok || ev.tgen[pred] != ev.gen[pred] {
		cols = make(map[int]map[value.Value][]value.Tuple)
		ev.transient[pred] = cols
		ev.tgen[pred] = ev.gen[pred]
	}
	idx, ok := cols[col]
	if !ok {
		idx = make(map[value.Value][]value.Tuple)
		ev.db.Table(pred).Each(func(row value.Tuple) bool {
			idx[row[col]] = append(idx[row[col]], row)
			return true
		})
		cols[col] = idx
		stats.TransientBuilds++
	}
	return idx[v]
}
