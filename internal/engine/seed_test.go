package engine

import (
	"context"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/value"
)

// TestRunRulesContext checks the seeded evaluation behind spec
// evolution: after a program gains rules, seeding with only the new
// rules reaches the same fixpoint a full run reaches, without naively
// re-firing the old rules.
func TestRunRules(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			build := func(withNew bool) (*Evaluator, *value.SkolemTable) {
				db := newDB(map[string]int{"edge": 2, "tc": 2, "rev": 2})
				e := db.Table("edge")
				for _, pair := range [][2]int64{{1, 2}, {2, 3}, {3, 4}} {
					e.Insert(tup(pair[0], pair[1]))
				}
				rules := []*datalog.Rule{
					datalog.NewRule("base", datalog.NewAtom("tc", datalog.V("x"), datalog.V("y")),
						datalog.Pos(datalog.NewAtom("edge", datalog.V("x"), datalog.V("y")))),
					datalog.NewRule("step", datalog.NewAtom("tc", datalog.V("x"), datalog.V("z")),
						datalog.Pos(datalog.NewAtom("tc", datalog.V("x"), datalog.V("y"))),
						datalog.Pos(datalog.NewAtom("edge", datalog.V("y"), datalog.V("z")))),
				}
				if withNew {
					// The "evolved" rule: reverse of the closure, feeding back
					// through the recursive step.
					rules = append(rules, datalog.NewRule("newrule",
						datalog.NewAtom("rev", datalog.V("y"), datalog.V("x")),
						datalog.Pos(datalog.NewAtom("tc", datalog.V("x"), datalog.V("y")))))
				}
				sk := value.NewSkolemTable()
				ev, err := New(datalog.NewProgram(rules...), db, sk, Options{Backend: be})
				if err != nil {
					t.Fatal(err)
				}
				return ev, sk
			}

			// Old program to fixpoint, then recompile the extended program
			// over the same database and seed only the new rule.
			old, _ := build(false)
			if _, err := old.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			full, _ := build(true)
			dbOld := old.DB()
			ev2, err := New(datalog.NewProgram(full.Program().Rules...), dbOld, value.NewSkolemTable(), Options{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			stats, err := ev2.RunRules(context.Background(), func(id string) bool { return id == "newrule" })
			if err != nil {
				t.Fatal(err)
			}
			if stats.Derived != 6 {
				t.Fatalf("seeded run derived %d tuples, want 6 (|tc|)", stats.Derived)
			}

			// Oracle: full fresh run.
			fresh, _ := build(true)
			if _, err := fresh.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			for _, rel := range []string{"tc", "rev"} {
				got, want := dbOld.Table(rel), fresh.DB().Table(rel)
				if got.Len() != want.Len() {
					t.Fatalf("%s: %d rows, want %d", rel, got.Len(), want.Len())
				}
				want.Each(func(row value.Tuple) bool {
					if !got.Contains(row) {
						t.Fatalf("%s missing %v", rel, row)
					}
					return true
				})
			}

			// Seeding with no matching rules is a no-op.
			st, err := ev2.RunRules(context.Background(), func(string) bool { return false })
			if err != nil {
				t.Fatal(err)
			}
			if st.Derived != 0 {
				t.Fatalf("empty seed derived %d tuples", st.Derived)
			}
		})
	}
}
