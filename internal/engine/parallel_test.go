package engine

import (
	"context"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/storage"
	"orchestra/internal/value"
)

// parallelProgram is a multi-rule stratum exercising recursive joins,
// Skolem heads (labeled-null interning), negation, and filters — every
// feature whose evaluation order could leak into results.
func parallelProgram() *datalog.Program {
	prog := datalog.NewProgram(
		datalog.NewRule("base", datalog.NewAtom("tc", datalog.V("x"), datalog.V("y")),
			datalog.Pos(datalog.NewAtom("edge", datalog.V("x"), datalog.V("y")))),
		datalog.NewRule("step", datalog.NewAtom("tc", datalog.V("x"), datalog.V("z")),
			datalog.Pos(datalog.NewAtom("tc", datalog.V("x"), datalog.V("y"))),
			datalog.Pos(datalog.NewAtom("edge", datalog.V("y"), datalog.V("z")))),
		// Skolem heads: nulls must intern identically at every parallelism.
		datalog.NewRule("sk", datalog.NewAtom("anon", datalog.V("x"), datalog.Sk("f", "x", "y")),
			datalog.Pos(datalog.NewAtom("tc", datalog.V("x"), datalog.V("y")))),
		datalog.NewRule("sk2", datalog.NewAtom("anon", datalog.V("y"), datalog.Sk("g", "x")),
			datalog.Pos(datalog.NewAtom("tc", datalog.V("x"), datalog.V("y")))),
	)
	// A negation stratum on top.
	prog.Add(datalog.NewRule("neg", datalog.NewAtom("root", datalog.V("x")),
		datalog.Pos(datalog.NewAtom("tc", datalog.V("x"), datalog.V("y"))),
		datalog.Neg(datalog.NewAtom("anon", datalog.V("x"), datalog.V("y")))))
	f := datalog.NewRule("flt", datalog.NewAtom("small", datalog.V("x"), datalog.V("y")),
		datalog.Pos(datalog.NewAtom("tc", datalog.V("x"), datalog.V("y"))))
	f.AddFilter("x < 6", func(env value.Env) bool {
		x, ok := env.Lookup("x")
		return ok && x.Kind() == value.KindInt && x.AsInt() < 6
	})
	prog.Add(f)
	return prog
}

func parallelDB() *storage.Database {
	db := newDB(map[string]int{"edge": 2, "tc": 2, "anon": 2, "root": 1, "small": 2})
	e := db.Table("edge")
	for i := int64(0); i < 24; i++ {
		e.Insert(tup(i, (i+1)%24))
		e.Insert(tup(i, (i*7)%24))
	}
	return db
}

// TestParallelMatchesSequential runs the same program at Parallelism 1
// and 8, on both backends, asserting identical fixpoints (including
// labeled-null identities) and identical Derived counts, for both the
// full fixpoint and incremental propagation. CI's -race matrix runs this
// test with the worker pool active, exercising the concurrent round
// evaluation under the race detector.
func TestParallelMatchesSequential(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			type result struct {
				dump    string
				derived int
				incDump string
				incDer  int
			}
			run := func(par int) result {
				db := parallelDB()
				ev, err := New(parallelProgram(), db, value.NewSkolemTable(), Options{Backend: be, Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				stats, err := ev.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				// Incremental step: feed fresh edges through the delta path.
				delta := storage.DeltaSet{}
				for i := int64(100); i < 112; i++ {
					row := tup(i, i%24)
					db.Table("edge").Insert(row)
					delta.Insert("edge", row)
				}
				inc, err := ev.PropagateInsertions(context.Background(), delta)
				if err != nil {
					t.Fatal(err)
				}
				return result{dump: db.Dump(), derived: stats.Derived, incDump: db.Dump(), incDer: inc.Derived}
			}
			seq := run(1)
			for _, par := range []int{2, 8} {
				got := run(par)
				if got.dump != seq.dump {
					t.Fatalf("parallelism %d: fixpoint differs from sequential:\n--- parallel ---\n%s\n--- sequential ---\n%s",
						par, got.dump, seq.dump)
				}
				if got.derived != seq.derived {
					t.Fatalf("parallelism %d: Derived = %d, sequential = %d", par, got.derived, seq.derived)
				}
				if got.incDump != seq.incDump || got.incDer != seq.incDer {
					t.Fatalf("parallelism %d: incremental propagation diverged (derived %d vs %d)",
						par, got.incDer, seq.incDer)
				}
			}
		})
	}
}

// TestParallelDefaultGOMAXPROCS sanity-checks the default parallelism
// resolution and that an error in one task surfaces.
func TestParallelDefaultGOMAXPROCS(t *testing.T) {
	db := parallelDB()
	ev, err := New(parallelProgram(), db, value.NewSkolemTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.parallelism() < 1 {
		t.Fatalf("default parallelism = %d", ev.parallelism())
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Arity-mismatched delta rows surface as errors through the pool.
	bad := storage.DeltaSet{}
	bad.Insert("edge", tup(1, 2))
	ev2, err := New(parallelProgram(), parallelDB(), value.NewSkolemTable(), Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wrong := map[string][]value.Row{"edge": {value.NewRow(tup(1, 2, 3))}}
	if _, err := ev2.PropagateRows(t.Context(), wrong); err == nil {
		t.Fatal("expected arity-mismatch error from parallel round")
	}
}
