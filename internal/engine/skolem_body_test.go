package engine

import (
	"context"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/value"
)

// Body Skolem terms are computed equality checks: the §4.1.3 inverse
// rules join chk tuples against provenance rows through them.
func TestBodySkolemCheck(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			db := newDB(map[string]int{"b": 2, "u": 2, "chk": 2, "hit": 2})
			sk := value.NewSkolemTable()

			// Forward rule mints u(n, f(n)) from b(i, n).
			fwd := datalog.NewProgram(
				datalog.NewRule("m3", datalog.NewAtom("u", datalog.V("n"), datalog.Sk("f", "n")),
					datalog.Pos(datalog.NewAtom("b", datalog.V("i"), datalog.V("n")))),
			)
			db.Table("b").Insert(tup(3, 5))
			db.Table("b").Insert(tup(4, 7))
			ev, err := New(fwd, db, sk, Options{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ev.Run(context.Background()); err != nil {
				t.Fatal(err)
			}

			// chk holds one matching suspect (5, f(5)), one with a plain
			// constant in the Skolem position (7, 99), and one with the
			// WRONG null (7, f(5)).
			f5 := sk.Apply("f", value.Tuple{value.Int(5)})
			db.Table("chk").Insert(value.Tuple{value.Int(5), f5})
			db.Table("chk").Insert(tup(7, 99))
			db.Table("chk").Insert(value.Tuple{value.Int(7), f5})

			// hit(i, n) :- chk(n, f(n)), b(i, n).
			inv := datalog.NewProgram(
				datalog.NewRule("inv", datalog.NewAtom("hit", datalog.V("i"), datalog.V("n")),
					datalog.Pos(datalog.NewAtom("chk", datalog.V("n"), datalog.Sk("f", "n"))),
					datalog.Pos(datalog.NewAtom("b", datalog.V("i"), datalog.V("n")))),
			)
			ev2, err := New(inv, db, sk, Options{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ev2.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			hit := db.Table("hit")
			if hit.Len() != 1 || !hit.Contains(tup(3, 5)) {
				t.Fatalf("skolem body check: %s", db.Dump("hit"))
			}
		})
	}
}

// A body Skolem whose argument binds in a LATER atom still checks
// correctly (the check is deferred to the end of the plan).
func TestBodySkolemLateBinding(t *testing.T) {
	db := newDB(map[string]int{"probe": 1, "src": 2, "out": 1})
	sk := value.NewSkolemTable()
	g2 := sk.Apply("g", value.Tuple{value.Int(2)})
	db.Table("probe").Insert(value.Tuple{g2})
	db.Table("src").Insert(tup(1, 2))
	db.Table("src").Insert(tup(1, 3))
	// out(y) :- probe(g(y)), src(x, y): probe is scheduled first (it has
	// no regular vars), so g's argument y binds later, in src.
	prog := datalog.NewProgram(
		datalog.NewRule("r", datalog.NewAtom("out", datalog.V("y")),
			datalog.Pos(datalog.NewAtom("probe", datalog.Sk("g", "y"))),
			datalog.Pos(datalog.NewAtom("src", datalog.V("x"), datalog.V("y")))),
	)
	ev, err := New(prog, db, sk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	out := db.Table("out")
	if out.Len() != 1 || !out.Contains(tup(2)) {
		t.Fatalf("late-bound skolem check:\n%s", db.Dump("out"))
	}
}

func TestBodySkolemInNegatedAtomRejected(t *testing.T) {
	db := newDB(map[string]int{"a": 1, "n": 1, "out": 1})
	prog := datalog.NewProgram(
		datalog.NewRule("r", datalog.NewAtom("out", datalog.V("x")),
			datalog.Pos(datalog.NewAtom("a", datalog.V("x"))),
			datalog.Neg(datalog.NewAtom("n", datalog.Sk("f", "x")))),
	)
	if _, err := New(prog, db, value.NewSkolemTable(), Options{}); err == nil {
		t.Fatal("skolem in negated atom accepted")
	}
}
