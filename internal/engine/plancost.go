package engine

import (
	"fmt"
	"strings"

	"orchestra/internal/datalog"
	"orchestra/internal/storage"
)

// This file is the read path's cost-based planner (ISSUE 8 / ROADMAP open
// item 3): query-time plans order their joins by table statistics —
// bound-variable-first, smallest-estimated-intermediate-next, warm index
// probes preferred over scans. Maintenance plans never come through here:
// their fixed greedy order is pinned byte-for-byte by the exchange
// equivalence and scheduler determinism suites (and by the planorder
// analyzer).

// minEstimate floors cardinality estimates so selective probes never
// collapse the running estimate to zero and erase later steps' ranking.
const minEstimate = 0.05

// atomCost estimates, for body atom a under the current bound-variable
// set, the number of rows matching a complete binding of its bound
// columns. It also reports whether any column is bound (the atom can run
// as a probe rather than a cross product) and whether a bound column
// already has a warm persistent index.
func atomCost(a datalog.Atom, bound map[string]bool, db *storage.Database) (est float64, hasBound, warm bool) {
	tbl := db.Table(a.Pred)
	if tbl == nil {
		// Unknown relation: emitAtom reports the real error; any estimate
		// works.
		return 1, false, false
	}
	st := tbl.Stats()
	est = float64(st.Rows)
	for col, t := range a.Args {
		var b bool
		switch t.Kind {
		case datalog.TermConst:
			b = true
		case datalog.TermVar:
			b = bound[t.Var]
		}
		if !b {
			continue
		}
		hasBound = true
		if tbl.HasIndex(col) {
			warm = true
		}
		// Uniformity assumption: a bound column keeps 1/distinct of the
		// rows.
		d := float64(st.Distinct[col])
		if d < 1 {
			d = 1
		}
		est /= d
	}
	if est < minEstimate {
		est = minEstimate
	}
	return est, hasBound, warm
}

// pickCostAtom selects the next body atom of a cost-based plan from
// remaining (positions into r.Body): bound-variable-first, then smallest
// estimated intermediate (current cardinality × the atom's estimate),
// then warm-index probes, with the original body order breaking remaining
// ties so plans stay deterministic for a given database state. It returns
// the index into remaining plus the chosen atom's estimate.
func pickCostAtom(r *datalog.Rule, remaining []int, bound map[string]bool, db *storage.Database, card float64) (pos int, est float64) {
	best := -1
	var bestEst, bestCost float64
	var bestBound, bestWarm bool
	for p, i := range remaining {
		e, hb, warm := atomCost(r.Body[i].Atom, bound, db)
		cost := card * e
		better := false
		switch {
		case best < 0:
			better = true
		case hb != bestBound:
			better = hb
		case cost != bestCost:
			better = cost < bestCost
		case warm != bestWarm:
			better = warm
		}
		if better {
			best, bestEst, bestCost, bestBound, bestWarm = p, e, cost, hb, warm
		}
	}
	return best, bestEst
}

// ExplainString renders the physical plan of every rule in the program:
// the chosen join order, each step's access path (delta / scan / index
// probe / transient-hash probe / negation check), and — for cost-based
// plans — the per-step cardinality estimates and the estimated result
// size after filters. The output is the `orchestra stats -explain`
// surface; it is human-readable text, not a stable format.
func (ev *Evaluator) ExplainString() string {
	var b strings.Builder
	for ri, r := range ev.prog.Rules {
		if ri > 0 {
			b.WriteByte('\n')
		}
		p := ev.naivePlans[r]
		fmt.Fprintf(&b, "%s\n", r)
		if p == nil {
			continue
		}
		mode := "fixed order (maintenance default)"
		if p.costBased {
			mode = "cost-based (bound-first, smallest intermediate)"
		}
		fmt.Fprintf(&b, "  join order: %s\n", mode)
		for i := range p.steps {
			st := &p.steps[i]
			fmt.Fprintf(&b, "  %2d. %s", i+1, stepDescription(ev, st))
			if p.costBased && st.estCard > 0 {
				fmt.Fprintf(&b, "  [est %s rows/probe, %s intermediate]",
					fmtEst(st.estOut), fmtEst(st.estCard))
			}
			b.WriteByte('\n')
		}
		for fi, d := range r.FilterDescs {
			sel := 1.0
			if fi < len(r.FilterSels) {
				sel = r.FilterSels[fi]
			}
			fmt.Fprintf(&b, "  where %s  [est selectivity %.2f]\n", d, sel)
		}
		if p.costBased {
			fmt.Fprintf(&b, "  estimated results: %s\n", fmtEst(p.estResult))
		}
	}
	return b.String()
}

// stepDescription names a step's access path, including whether a probe
// hits a warm persistent index or pays a transient build / scan.
func stepDescription(ev *Evaluator, st *step) string {
	switch st.kind {
	case stepDelta:
		return fmt.Sprintf("delta %s", st.pred)
	case stepScan:
		return fmt.Sprintf("scan %s (%d rows)", st.pred, st.tbl.Len())
	case stepProbe:
		access := "scan fallback"
		switch {
		case st.idx != nil:
			access = "persistent index"
		case ev.opts.Backend == BackendHash:
			access = "transient hash"
		}
		return fmt.Sprintf("probe %s on column %d via %s", st.pred, st.probeCol, access)
	case stepNegCheck:
		return fmt.Sprintf("check ¬%s", st.pred)
	}
	return "?"
}

// fmtEst renders a cardinality estimate compactly.
func fmtEst(v float64) string {
	if v >= 10 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}
