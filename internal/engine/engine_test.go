package engine

import (
	"context"
	"math/rand"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/storage"
	"orchestra/internal/value"
)

func tup(vs ...int64) value.Tuple {
	t := make(value.Tuple, len(vs))
	for i, v := range vs {
		t[i] = value.Int(v)
	}
	return t
}

func newDB(tables map[string]int) *storage.Database {
	db := storage.NewDatabase()
	for name, arity := range tables {
		db.MustCreate(name, arity)
	}
	return db
}

func backends() []Backend { return []Backend{BackendIndexed, BackendHash} }

// Transitive closure: the canonical recursive-datalog smoke test.
func TestTransitiveClosure(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			db := newDB(map[string]int{"edge": 2, "tc": 2})
			e := db.Table("edge")
			for _, pair := range [][2]int64{{1, 2}, {2, 3}, {3, 4}, {5, 6}} {
				e.Insert(tup(pair[0], pair[1]))
			}
			prog := datalog.NewProgram(
				datalog.NewRule("base", datalog.NewAtom("tc", datalog.V("x"), datalog.V("y")),
					datalog.Pos(datalog.NewAtom("edge", datalog.V("x"), datalog.V("y")))),
				datalog.NewRule("step", datalog.NewAtom("tc", datalog.V("x"), datalog.V("z")),
					datalog.Pos(datalog.NewAtom("tc", datalog.V("x"), datalog.V("y"))),
					datalog.Pos(datalog.NewAtom("edge", datalog.V("y"), datalog.V("z")))),
			)
			ev, err := New(prog, db, value.NewSkolemTable(), Options{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			stats, err := ev.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			tc := db.Table("tc")
			want := [][2]int64{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}, {5, 6}}
			if tc.Len() != len(want) {
				t.Fatalf("tc has %d rows, want %d:\n%s", tc.Len(), len(want), db.Dump("tc"))
			}
			for _, w := range want {
				if !tc.Contains(tup(w[0], w[1])) {
					t.Fatalf("missing tc(%d,%d)", w[0], w[1])
				}
			}
			if stats.Derived != len(want) {
				t.Fatalf("Derived = %d, want %d", stats.Derived, len(want))
			}
		})
	}
}

func TestConstantsInBodyAndHead(t *testing.T) {
	db := newDB(map[string]int{"in": 2, "out": 2})
	db.Table("in").Insert(tup(1, 10))
	db.Table("in").Insert(tup(2, 10))
	db.Table("in").Insert(tup(1, 20))
	// out(x, 99) :- in(x, 10).
	prog := datalog.NewProgram(
		datalog.NewRule("r", datalog.NewAtom("out", datalog.V("x"), datalog.C(value.Int(99))),
			datalog.Pos(datalog.NewAtom("in", datalog.V("x"), datalog.C(value.Int(10))))),
	)
	ev, err := New(prog, db, value.NewSkolemTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	o := db.Table("out")
	if o.Len() != 2 || !o.Contains(tup(1, 99)) || !o.Contains(tup(2, 99)) {
		t.Fatalf("out:\n%s", db.Dump("out"))
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	db := newDB(map[string]int{"p": 2, "diag": 1})
	db.Table("p").Insert(tup(1, 1))
	db.Table("p").Insert(tup(1, 2))
	db.Table("p").Insert(tup(3, 3))
	prog := datalog.NewProgram(
		datalog.NewRule("r", datalog.NewAtom("diag", datalog.V("x")),
			datalog.Pos(datalog.NewAtom("p", datalog.V("x"), datalog.V("x")))),
	)
	ev, err := New(prog, db, value.NewSkolemTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	d := db.Table("diag")
	if d.Len() != 2 || !d.Contains(tup(1)) || !d.Contains(tup(3)) {
		t.Fatalf("diag:\n%s", db.Dump("diag"))
	}
}

func TestNegation(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			db := newDB(map[string]int{"ri": 1, "rr": 1, "ro": 1})
			db.Table("ri").Insert(tup(1))
			db.Table("ri").Insert(tup(2))
			db.Table("ri").Insert(tup(3))
			db.Table("rr").Insert(tup(2))
			// ro(x) :- ri(x), not rr(x).  — the paper's rule (tR).
			prog := datalog.NewProgram(
				datalog.NewRule("tR", datalog.NewAtom("ro", datalog.V("x")),
					datalog.Pos(datalog.NewAtom("ri", datalog.V("x"))),
					datalog.Neg(datalog.NewAtom("rr", datalog.V("x")))),
			)
			ev, err := New(prog, db, value.NewSkolemTable(), Options{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ev.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			ro := db.Table("ro")
			if ro.Len() != 2 || ro.Contains(tup(2)) {
				t.Fatalf("ro:\n%s", db.Dump("ro"))
			}
		})
	}
}

func TestStratifiedNegationOverIDB(t *testing.T) {
	// b(x) :- e(x). good(x) :- all(x), not b(x).
	db := newDB(map[string]int{"e": 1, "all": 1, "b": 1, "good": 1})
	db.Table("e").Insert(tup(1))
	for i := int64(1); i <= 3; i++ {
		db.Table("all").Insert(tup(i))
	}
	prog := datalog.NewProgram(
		datalog.NewRule("r1", datalog.NewAtom("b", datalog.V("x")),
			datalog.Pos(datalog.NewAtom("e", datalog.V("x")))),
		datalog.NewRule("r2", datalog.NewAtom("good", datalog.V("x")),
			datalog.Pos(datalog.NewAtom("all", datalog.V("x"))),
			datalog.Neg(datalog.NewAtom("b", datalog.V("x")))),
	)
	ev, err := New(prog, db, value.NewSkolemTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	g := db.Table("good")
	if g.Len() != 2 || g.Contains(tup(1)) {
		t.Fatalf("good:\n%s", db.Dump("good"))
	}
}

func TestSkolemHeads(t *testing.T) {
	// u(n, f(n)) :- b(i, n) — the paper's mapping (m3) after Skolemization.
	db := newDB(map[string]int{"b": 2, "u": 2})
	db.Table("b").Insert(tup(3, 5))
	db.Table("b").Insert(tup(4, 5))
	db.Table("b").Insert(tup(3, 2))
	prog := datalog.NewProgram(
		datalog.NewRule("m3", datalog.NewAtom("u", datalog.V("n"), datalog.Sk("f_m3_c", "n")),
			datalog.Pos(datalog.NewAtom("b", datalog.V("i"), datalog.V("n")))),
	)
	sk := value.NewSkolemTable()
	ev, err := New(prog, db, sk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	u := db.Table("u")
	// b(3,5) and b(4,5) share n=5 → same Skolem value → one u row.
	if u.Len() != 2 {
		t.Fatalf("u has %d rows, want 2:\n%s", u.Len(), db.Dump("u"))
	}
	if sk.Len() != 2 {
		t.Fatalf("interned %d Skolem terms, want 2", sk.Len())
	}
	rows := u.Rows()
	for _, r := range rows {
		if !r[1].IsNull() {
			t.Fatalf("second column not a labeled null: %v", r)
		}
	}
}

func TestFilters(t *testing.T) {
	db := newDB(map[string]int{"in": 1, "out": 1})
	for i := int64(1); i <= 5; i++ {
		db.Table("in").Insert(tup(i))
	}
	r := datalog.NewRule("r", datalog.NewAtom("out", datalog.V("x")),
		datalog.Pos(datalog.NewAtom("in", datalog.V("x"))))
	r.AddFilter("x < 3", func(env value.Env) bool {
		x, _ := env.Lookup("x")
		return x.AsInt() < 3
	})
	ev, err := New(datalog.NewProgram(r), db, value.NewSkolemTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := db.Table("out").Len(); got != 2 {
		t.Fatalf("out has %d rows, want 2", got)
	}
}

func TestPropagateInsertions(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			db := newDB(map[string]int{"edge": 2, "tc": 2})
			e := db.Table("edge")
			e.Insert(tup(1, 2))
			e.Insert(tup(2, 3))
			prog := datalog.NewProgram(
				datalog.NewRule("base", datalog.NewAtom("tc", datalog.V("x"), datalog.V("y")),
					datalog.Pos(datalog.NewAtom("edge", datalog.V("x"), datalog.V("y")))),
				datalog.NewRule("step", datalog.NewAtom("tc", datalog.V("x"), datalog.V("z")),
					datalog.Pos(datalog.NewAtom("tc", datalog.V("x"), datalog.V("y"))),
					datalog.Pos(datalog.NewAtom("edge", datalog.V("y"), datalog.V("z")))),
			)
			ev, err := New(prog, db, value.NewSkolemTable(), Options{Backend: be})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ev.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if db.Table("tc").Len() != 3 {
				t.Fatalf("initial tc size %d", db.Table("tc").Len())
			}

			// Incrementally add edge(3,4); expect tc to gain (3,4),(2,4),(1,4).
			delta := storage.DeltaSet{}
			newRow := tup(3, 4)
			e.Insert(newRow)
			ev.InvalidateTransient("edge")
			delta.Insert("edge", newRow)
			if _, err := ev.PropagateInsertions(context.Background(), delta); err != nil {
				t.Fatal(err)
			}
			tc := db.Table("tc")
			if tc.Len() != 6 {
				t.Fatalf("tc after insert: %d rows\n%s", tc.Len(), db.Dump("tc"))
			}
			for _, w := range [][2]int64{{3, 4}, {2, 4}, {1, 4}} {
				if !tc.Contains(tup(w[0], w[1])) {
					t.Fatalf("missing tc(%d,%d)", w[0], w[1])
				}
			}
		})
	}
}

// Property: incremental insertion equals recomputation from scratch, for
// random edge sets, on both backends.
func TestIncrementalMatchesRecomputeRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	prog := func() *datalog.Program {
		return datalog.NewProgram(
			datalog.NewRule("base", datalog.NewAtom("tc", datalog.V("x"), datalog.V("y")),
				datalog.Pos(datalog.NewAtom("edge", datalog.V("x"), datalog.V("y")))),
			datalog.NewRule("step", datalog.NewAtom("tc", datalog.V("x"), datalog.V("z")),
				datalog.Pos(datalog.NewAtom("tc", datalog.V("x"), datalog.V("y"))),
				datalog.Pos(datalog.NewAtom("edge", datalog.V("y"), datalog.V("z")))),
		)
	}
	for trial := 0; trial < 20; trial++ {
		be := backends()[trial%2]
		n := 2 + r.Intn(10)
		var edges [][2]int64
		for i := 0; i < n; i++ {
			edges = append(edges, [2]int64{r.Int63n(6), r.Int63n(6)})
		}
		split := r.Intn(len(edges))

		// Incremental run: load prefix, Run, then insert the rest.
		dbInc := newDB(map[string]int{"edge": 2, "tc": 2})
		for _, e := range edges[:split] {
			dbInc.Table("edge").Insert(tup(e[0], e[1]))
		}
		evInc, err := New(prog(), dbInc, value.NewSkolemTable(), Options{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := evInc.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		delta := storage.DeltaSet{}
		for _, e := range edges[split:] {
			row := tup(e[0], e[1])
			if dbInc.Table("edge").Insert(row) {
				delta.Insert("edge", row)
			}
		}
		evInc.InvalidateTransient("edge")
		if _, err := evInc.PropagateInsertions(context.Background(), delta); err != nil {
			t.Fatal(err)
		}

		// Reference run: everything from scratch.
		dbRef := newDB(map[string]int{"edge": 2, "tc": 2})
		for _, e := range edges {
			dbRef.Table("edge").Insert(tup(e[0], e[1]))
		}
		evRef, err := New(prog(), dbRef, value.NewSkolemTable(), Options{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := evRef.Run(context.Background()); err != nil {
			t.Fatal(err)
		}

		got, want := dbInc.Table("tc").Rows(), dbRef.Table("tc").Rows()
		if len(got) != len(want) {
			t.Fatalf("trial %d (%s): %d vs %d rows", trial, be, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d (%s): row %d differs: %v vs %v", trial, be, i, got[i], want[i])
			}
		}
	}
}

func TestBackendsAgree(t *testing.T) {
	// Same program and data; both backends must produce identical results.
	mk := func(be Backend) *storage.Database {
		db := newDB(map[string]int{"a": 2, "b": 2, "j": 3})
		r := rand.New(rand.NewSource(3))
		for i := 0; i < 100; i++ {
			db.Table("a").Insert(tup(r.Int63n(10), r.Int63n(10)))
			db.Table("b").Insert(tup(r.Int63n(10), r.Int63n(10)))
		}
		prog := datalog.NewProgram(
			datalog.NewRule("j", datalog.NewAtom("j", datalog.V("x"), datalog.V("y"), datalog.V("z")),
				datalog.Pos(datalog.NewAtom("a", datalog.V("x"), datalog.V("y"))),
				datalog.Pos(datalog.NewAtom("b", datalog.V("y"), datalog.V("z")))),
		)
		ev, err := New(prog, db, value.NewSkolemTable(), Options{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return db
	}
	d1, d2 := mk(BackendIndexed), mk(BackendHash)
	r1, r2 := d1.Table("j").Rows(), d2.Table("j").Rows()
	if len(r1) != len(r2) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if !r1[i].Equal(r2[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	db := newDB(map[string]int{"in": 1, "out": 1})
	cases := []struct {
		name string
		prog *datalog.Program
	}{
		{"unknown body relation", datalog.NewProgram(
			datalog.NewRule("r", datalog.NewAtom("out", datalog.V("x")),
				datalog.Pos(datalog.NewAtom("nope", datalog.V("x")))))},
		{"unknown head relation", datalog.NewProgram(
			datalog.NewRule("r", datalog.NewAtom("nope", datalog.V("x")),
				datalog.Pos(datalog.NewAtom("in", datalog.V("x")))))},
		{"body arity mismatch", datalog.NewProgram(
			datalog.NewRule("r", datalog.NewAtom("out", datalog.V("x")),
				datalog.Pos(datalog.NewAtom("in", datalog.V("x"), datalog.V("y")))))},
		{"head arity mismatch", datalog.NewProgram(
			datalog.NewRule("r", datalog.NewAtom("out", datalog.V("x"), datalog.V("x")),
				datalog.Pos(datalog.NewAtom("in", datalog.V("x")))))},
		{"unsafe rule", datalog.NewProgram(
			datalog.NewRule("r", datalog.NewAtom("out", datalog.V("z")),
				datalog.Pos(datalog.NewAtom("in", datalog.V("x")))))},
	}
	for _, c := range cases {
		if _, err := New(c.prog, db, value.NewSkolemTable(), Options{}); err == nil {
			t.Errorf("%s: New succeeded, want error", c.name)
		}
	}
}

func TestMaxIterationsGuard(t *testing.T) {
	// grow(x+?) style non-termination cannot be expressed without
	// arithmetic, but a Skolem-generating cycle can: u(f(x)) :- u(x).
	db := newDB(map[string]int{"seed": 1, "u": 1})
	db.Table("seed").Insert(tup(1))
	prog := datalog.NewProgram(
		datalog.NewRule("base", datalog.NewAtom("u", datalog.V("x")),
			datalog.Pos(datalog.NewAtom("seed", datalog.V("x")))),
		datalog.NewRule("grow", datalog.NewAtom("u", datalog.Sk("f", "x")),
			datalog.Pos(datalog.NewAtom("u", datalog.V("x")))),
	)
	ev, err := New(prog, db, value.NewSkolemTable(), Options{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err == nil {
		t.Fatal("non-terminating program completed")
	}
}

func TestStatsPopulated(t *testing.T) {
	db := newDB(map[string]int{"in": 1, "out": 1})
	db.Table("in").Insert(tup(1))
	prog := datalog.NewProgram(
		datalog.NewRule("r", datalog.NewAtom("out", datalog.V("x")),
			datalog.Pos(datalog.NewAtom("in", datalog.V("x")))),
	)
	ev, err := New(prog, db, value.NewSkolemTable(), Options{Backend: BackendHash})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ev.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Derived != 1 || stats.RuleFires == 0 || stats.Iterations == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	var sum Stats
	sum.Add(stats)
	sum.Add(stats)
	if sum.Derived != 2 {
		t.Fatal("Stats.Add")
	}
}

func TestCrossProductScanFallback(t *testing.T) {
	// Rule with no shared variables forces a cross product (scan step).
	db := newDB(map[string]int{"a": 1, "b": 1, "c": 2})
	db.Table("a").Insert(tup(1))
	db.Table("a").Insert(tup(2))
	db.Table("b").Insert(tup(10))
	prog := datalog.NewProgram(
		datalog.NewRule("r", datalog.NewAtom("c", datalog.V("x"), datalog.V("y")),
			datalog.Pos(datalog.NewAtom("a", datalog.V("x"))),
			datalog.Pos(datalog.NewAtom("b", datalog.V("y")))),
	)
	ev, err := New(prog, db, value.NewSkolemTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if db.Table("c").Len() != 2 {
		t.Fatalf("c:\n%s", db.Dump("c"))
	}
}
