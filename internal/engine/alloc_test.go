package engine

import (
	"context"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/race"
	"orchestra/internal/value"
)

// tcProgram is the canonical recursive join used by the allocation
// regression tests: tc(x,z) :- tc(x,y), edge(y,z).
func tcProgram() *datalog.Program {
	return datalog.NewProgram(
		datalog.NewRule("base", datalog.NewAtom("tc", datalog.V("x"), datalog.V("y")),
			datalog.Pos(datalog.NewAtom("edge", datalog.V("x"), datalog.V("y")))),
		datalog.NewRule("step", datalog.NewAtom("tc", datalog.V("x"), datalog.V("z")),
			datalog.Pos(datalog.NewAtom("tc", datalog.V("x"), datalog.V("y"))),
			datalog.Pos(datalog.NewAtom("edge", datalog.V("y"), datalog.V("z")))),
	)
}

// TestJoinAllocsBounded pins the join kernel's allocation budget: running
// a recursive join to fixpoint must stay within a small constant number
// of allocations per derived tuple. The old closure-recursion kernel
// spent ~12 allocations per derived tuple (encode buffers, key strings,
// match closures, per-filter env maps); the iterative kernel's budget —
// output tuple, stored key, map/slice growth amortization — is under 6.
func TestJoinAllocsBounded(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under -race")
	}
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			const n = 60 // chain edges; derives n(n+1)/2 tc tuples
			// AllocsPerRun warms up with one extra invocation, so prepare a
			// fresh evaluator (outside the measurement) per invocation.
			var evs []*Evaluator
			for i := 0; i < 2; i++ {
				db := newDB(map[string]int{"edge": 2, "tc": 2})
				for j := int64(0); j < n; j++ {
					db.Table("edge").Insert(tup(j, j+1))
				}
				ev, err := New(tcProgram(), db, value.NewSkolemTable(), Options{Backend: be, Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				evs = append(evs, ev)
			}
			var stats Stats
			var err error
			next := 0
			allocs := testing.AllocsPerRun(1, func() {
				stats, err = evs[next].Run(context.Background())
				next++
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Derived == 0 {
				t.Fatal("nothing derived")
			}
			perTuple := allocs / float64(stats.Derived)
			if perTuple > 6 {
				t.Errorf("join kernel allocates %.2f per derived tuple (%v total / %d derived), want <= 6",
					perTuple, allocs, stats.Derived)
			}
		})
	}
}

// TestRederivationAllocsBounded pins the adaptive duplicate check: once a
// fixpoint is reached, re-running a re-derivation-heavy plan must not
// materialize tuples for matches that are already present. A second Run
// derives nothing, and after the first (adapting) firing its remaining
// firings drop duplicates at emit, so total allocations stay far below
// one per re-derived match.
func TestRederivationAllocsBounded(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under -race")
	}
	const n = 60
	db := newDB(map[string]int{"edge": 2, "tc": 2})
	for i := int64(0); i < n; i++ {
		db.Table("edge").Insert(tup(i, i+1))
	}
	ev, err := New(tcProgram(), db, value.NewSkolemTable(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ev.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	derived := stats.Derived
	// Second run: everything re-derives, nothing is new.
	var second Stats
	allocs := testing.AllocsPerRun(1, func() {
		second, err = ev.Run(context.Background())
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Derived != 0 {
		t.Fatalf("second run derived %d tuples, want 0", second.Derived)
	}
	if allocs > float64(derived) {
		t.Errorf("re-derivation run allocates %v for %d re-derived matches, want < 1 per match", allocs, derived)
	}
}
