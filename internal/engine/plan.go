// Package engine evaluates datalog-with-Skolem-functions programs to
// fixpoint over a storage.Database. It implements semi-naive, stratified
// evaluation with safe negation, and offers two physical backends that
// mirror the paper's two Orchestra implementations (§5):
//
//   - BackendHash ("DB2-style"): every rule invocation builds transient
//     hash-join tables over its full input relations. Bulk evaluation is
//     fast, but each small incremental statement pays the per-call build —
//     the round-trip/statement overhead the paper observed with an RDBMS.
//   - BackendIndexed ("Tukwila-style"): plans are compiled once, join
//     columns get persistent secondary indexes maintained incrementally,
//     and joins are index-nested-loop driven by the delta — cheap for the
//     common small-update case, slower for bulk loads because every insert
//     pays index maintenance.
package engine

import (
	"fmt"
	"sort"

	"orchestra/internal/datalog"
	"orchestra/internal/storage"
	"orchestra/internal/value"
)

// Backend selects the physical execution strategy.
type Backend uint8

const (
	// BackendIndexed is the Tukwila-style prepared-plan backend (default).
	BackendIndexed Backend = iota
	// BackendHash is the DB2-style per-call hash-join backend.
	BackendHash
)

func (b Backend) String() string {
	if b == BackendHash {
		return "hash"
	}
	return "indexed"
}

// stepKind discriminates physical plan steps.
type stepKind uint8

const (
	stepDelta    stepKind = iota // iterate the delta rows for this rule call
	stepScan                     // full scan of a table
	stepProbe                    // index / transient-hash probe on one column
	stepNegCheck                 // check a negated atom is absent
)

// colRef describes how one column of an atom relates to the binding.
type colRef struct {
	col int
	// slot >= 0: the variable slot; slot < 0: Const carries a constant.
	slot  int
	Const value.Value
}

// step is one operator of a compiled rule plan.
type step struct {
	kind stepKind
	pred string
	// tbl is the step's relation, resolved at compile time (table objects
	// are stable for the lifetime of a plan). idx is the cached secondary
	// index handle for indexed probes, or nil.
	tbl *storage.Table
	idx *storage.ColIndex

	// checks are columns whose value is determined before this step runs
	// (a slot bound by an earlier step, or a constant) and must match the
	// row.
	checks []colRef
	// binds are columns that bind fresh slots.
	binds []colRef
	// postChecks are columns repeating a variable first bound within this
	// same atom; they are evaluated after binds are applied.
	postChecks []colRef

	// probe configuration (stepProbe only).
	probeCol  int
	probeSlot int         // slot providing the probe value, or -1
	probeVal  value.Value // constant probe value when probeSlot < 0

	// Cost-based plans only (see plancost.go): estOut is the estimated
	// number of matching rows per complete binding of the step's bound
	// columns; estCard the estimated cumulative intermediate cardinality
	// after the step. Zero on maintenance plans and non-join steps.
	estOut  float64
	estCard float64
}

// headOp builds one column of the head tuple.
type headOp struct {
	// slot >= 0: copy from slot. slot == -1: constant. slot == -2: Skolem
	// application of Fn to ArgSlots.
	slot     int
	Const    value.Value
	Fn       string
	ArgSlots []int
}

// skCheck is a computed equality check for a Skolem term in a body atom
// (§4.1.3's inverse rules need these): the row value captured in
// valueSlot must equal Fn applied to the argument slots. Checks run once
// the whole body is bound.
type skCheck struct {
	valueSlot int
	fn        string
	argSlots  []int
}

// plan is a compiled physical plan for one rule with one designated delta
// position (or none, for naive evaluation).
type plan struct {
	rule     *datalog.Rule
	deltaPos int // body index fed by the delta; -1 = none (naive)
	steps    []step
	skChecks []skCheck
	headPred string
	headTbl  *storage.Table
	headOps  []headOp
	nslots   int
	varNames []string // slot -> variable name, for filter bindings

	// ex is the plan's reusable evaluation scratch (see execState). A plan
	// fires at most once per round and rounds never overlap, so the
	// scratch is never shared.
	ex *execState
	// dedup enables the emit-time duplicate check. It adapts per firing:
	// re-derivation-heavy firings (long fixpoint tails, DRed re-runs) keep
	// it on, mostly-fresh firings (bulk loads) skip it and build output
	// tuples directly. The signal depends only on the derived data, so
	// sequential and parallel execution adapt identically.
	dedup bool

	// costBased marks plans whose join order came from the statistics
	// cost model (read path); estResult is their estimated result
	// cardinality after filter selectivity.
	costBased bool
	estResult float64
}

// planMode carries the compile-time knobs that distinguish read-path
// compilation from maintenance compilation. The zero value is the
// maintenance mode whose behavior the exchange equivalence and scheduler
// determinism suites pin byte-for-byte.
type planMode struct {
	// query marks read-path plans: probes pick up warm persistent indexes
	// on any backend (declared secondary indexes included), instead of
	// paying the hash backend's per-call transient build.
	query bool
	// cost orders joins by the statistics cost model instead of the fixed
	// greedy order.
	cost bool
}

// compilePlan orders the rule body starting from the delta atom (if any),
// then greedily by number of already-bound variables, preferring atoms
// that allow an indexed probe. Negated atoms are placed as soon as all
// their variables are bound. With mode.cost set (read-path plans only),
// the greedy order is driven by table statistics instead — see
// plancost.go; maintenance callers must pass the zero mode.
func compilePlan(r *datalog.Rule, deltaPos int, db *storage.Database, backend Backend, ensureIndexes bool, mode planMode) (*plan, error) {
	p := &plan{rule: r, deltaPos: deltaPos, headPred: r.Head.Pred, costBased: mode.cost}
	slotOf := make(map[string]int)
	slot := func(v string) int {
		if s, ok := slotOf[v]; ok {
			return s
		}
		s := p.nslots
		slotOf[v] = s
		p.varNames = append(p.varNames, v)
		p.nslots++
		return s
	}
	bound := make(map[string]bool)

	var positives, negatives []int
	for i, l := range r.Body {
		if l.Neg {
			negatives = append(negatives, i)
		} else {
			positives = append(positives, i)
		}
	}

	// emitAtom appends the physical step for body atom i given current
	// bound set, marking its variables bound.
	emitAtom := func(i int, kind stepKind) error {
		a := r.Body[i].Atom
		tbl := db.Table(a.Pred)
		if tbl == nil {
			return fmt.Errorf("engine: rule %s references unknown relation %q", r.ID, a.Pred)
		}
		if tbl.Arity() != len(a.Args) {
			return fmt.Errorf("engine: rule %s: %s has arity %d, atom has %d args", r.ID, a.Pred, tbl.Arity(), len(a.Args))
		}
		st := step{kind: kind, pred: a.Pred, tbl: tbl, probeCol: -1, probeSlot: -1}
		seenInAtom := make(map[string]bool)
		for col, t := range a.Args {
			switch t.Kind {
			case datalog.TermConst:
				st.checks = append(st.checks, colRef{col: col, slot: -1, Const: t.Const})
			case datalog.TermVar:
				switch {
				case bound[t.Var]:
					st.checks = append(st.checks, colRef{col: col, slot: slot(t.Var)})
				case seenInAtom[t.Var]:
					st.postChecks = append(st.postChecks, colRef{col: col, slot: slot(t.Var)})
				default:
					st.binds = append(st.binds, colRef{col: col, slot: slot(t.Var)})
					seenInAtom[t.Var] = true
				}
			case datalog.TermSkolem:
				if kind == stepNegCheck {
					return fmt.Errorf("engine: rule %s: Skolem term in negated atom", r.ID)
				}
				// Capture the column into a hidden slot and defer the
				// equality check until the whole body is bound (Skolem
				// arguments may bind in later atoms).
				hidden := fmt.Sprintf("$sk%d", len(p.skChecks))
				hs := slot(hidden)
				st.binds = append(st.binds, colRef{col: col, slot: hs})
				seenInAtom[hidden] = true
				sc := skCheck{valueSlot: hs, fn: t.Fn}
				for _, v := range t.FnArgs {
					sc.argSlots = append(sc.argSlots, slot(v))
				}
				p.skChecks = append(p.skChecks, sc)
			}
		}
		for v := range seenInAtom {
			bound[v] = true
		}
		// Upgrade scans with a usable check into probes.
		if kind == stepScan && len(st.checks) > 0 {
			c := st.checks[0]
			st.kind = stepProbe
			st.probeCol = c.col
			if c.slot >= 0 {
				st.probeSlot = c.slot
			} else {
				st.probeVal = c.Const
			}
			st.checks = st.checks[1:]
			if backend == BackendIndexed && ensureIndexes {
				tbl.EnsureIndex(st.probeCol)
				st.idx = tbl.Index(st.probeCol)
			} else if mode.query {
				// Read-path plans probe warm persistent indexes on any
				// backend when one already exists (declared secondary
				// indexes), instead of building a transient per call.
				st.idx = tbl.Index(st.probeCol)
			}
		}
		p.steps = append(p.steps, st)
		return nil
	}

	// Delta atom first.
	remaining := make([]int, 0, len(positives))
	if deltaPos >= 0 {
		if r.Body[deltaPos].Neg {
			return nil, fmt.Errorf("engine: rule %s: delta position %d is negated", r.ID, deltaPos)
		}
		if err := emitAtom(deltaPos, stepDelta); err != nil {
			return nil, err
		}
	}
	for _, i := range positives {
		if i != deltaPos {
			remaining = append(remaining, i)
		}
	}

	negPending := append([]int(nil), negatives...)
	flushNegs := func() {
		kept := negPending[:0]
		for _, i := range negPending {
			all := true
			for _, v := range r.Body[i].Atom.Vars() {
				if !bound[v] {
					all = false
					break
				}
			}
			if all {
				if err := emitAtom(i, stepNegCheck); err != nil {
					panic(err) // arity errors surface in positive pass first
				}
			} else {
				kept = append(kept, i)
			}
		}
		negPending = kept
	}

	card := 1.0
	for len(remaining) > 0 {
		flushNegs()
		var best int
		var est float64
		if mode.cost {
			best, est = pickCostAtom(r, remaining, bound, db, card)
		} else {
			// Greedy: most bound variables first; tie-break on original
			// order.
			bestScore := -1
			best = -1
			for pos, i := range remaining {
				score := 0
				for _, v := range r.Body[i].Atom.Vars() {
					if bound[v] {
						score++
					}
				}
				for _, t := range r.Body[i].Atom.Args {
					if t.Kind == datalog.TermConst {
						score++
					}
				}
				if score > bestScore {
					best, bestScore = pos, score
				}
			}
		}
		i := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		if err := emitAtom(i, stepScan); err != nil {
			return nil, err
		}
		if mode.cost {
			card *= est
			if card < minEstimate {
				card = minEstimate
			}
			ls := &p.steps[len(p.steps)-1]
			ls.estOut, ls.estCard = est, card
		}
	}
	flushNegs()
	if len(negPending) > 0 {
		return nil, fmt.Errorf("engine: rule %s: unsafe negation survived compilation", r.ID)
	}

	// Head construction.
	headTbl := db.Table(r.Head.Pred)
	if headTbl == nil {
		return nil, fmt.Errorf("engine: rule %s: unknown head relation %q", r.ID, r.Head.Pred)
	}
	if headTbl.Arity() != len(r.Head.Args) {
		return nil, fmt.Errorf("engine: rule %s: head arity mismatch for %q", r.ID, r.Head.Pred)
	}
	p.headTbl = headTbl
	for _, t := range r.Head.Args {
		switch t.Kind {
		case datalog.TermConst:
			p.headOps = append(p.headOps, headOp{slot: -1, Const: t.Const})
		case datalog.TermVar:
			s, ok := slotOf[t.Var]
			if !ok || !bound[t.Var] {
				return nil, fmt.Errorf("engine: rule %s: unbound head variable %q", r.ID, t.Var)
			}
			p.headOps = append(p.headOps, headOp{slot: s})
		case datalog.TermSkolem:
			op := headOp{slot: -2, Fn: t.Fn}
			for _, v := range t.FnArgs {
				s, ok := slotOf[v]
				if !ok || !bound[v] {
					return nil, fmt.Errorf("engine: rule %s: unbound Skolem argument %q", r.ID, v)
				}
				op.ArgSlots = append(op.ArgSlots, s)
			}
			p.headOps = append(p.headOps, op)
		}
	}
	if mode.cost {
		p.estResult = card * r.FilterSelectivity()
	}
	return p, nil
}

// deltaPositions returns the body indices eligible as delta positions for
// a given predicate (positive occurrences only), or nil.
func deltaPositions(r *datalog.Rule, pred string) []int {
	var out []int
	for i, l := range r.Body {
		if !l.Neg && l.Atom.Pred == pred {
			out = append(out, i)
		}
	}
	return out
}

// bodyPreds returns the sorted distinct positive body predicates of r.
func bodyPreds(r *datalog.Rule) []string {
	seen := make(map[string]bool)
	for _, l := range r.Body {
		if !l.Neg {
			seen[l.Atom.Pred] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
