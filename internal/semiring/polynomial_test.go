package semiring

import (
	"math/rand"
	"testing"
)

func randPoly(r *rand.Rand) Poly {
	ps := PolySemiring{MaxDegree: 1 << 20}
	toks := []string{"x", "y", "z"}
	p := ps.Zero()
	for i := 0; i < r.Intn(4); i++ {
		term := Const(int64(1 + r.Intn(3)))
		for j := 0; j < r.Intn(3); j++ {
			term = ps.Mul(term, Var(toks[r.Intn(len(toks))]))
		}
		p = ps.Add(p, term)
	}
	return p
}

func TestPolynomialLaws(t *testing.T) {
	checkLaws[Poly](t, "poly", PolySemiring{MaxDegree: 1 << 20}, randPoly)
}

func TestPolynomialAlgebra(t *testing.T) {
	ps := PolySemiring{}
	x, y := Var("x"), Var("y")
	// (x + y)·(x + y) = x^2 + 2·x·y + y^2
	sq := ps.Mul(ps.Add(x, y), ps.Add(x, y))
	if got := sq.String(); got != "x^2 + 2·x·y + y^2" {
		t.Fatalf("(x+y)^2 = %q", got)
	}
	// Zero and one behave.
	if !ps.Eq(ps.Mul(sq, ps.Zero()), ps.Zero()) {
		t.Fatal("annihilation")
	}
	if !ps.Eq(ps.Mul(sq, ps.One()), sq) {
		t.Fatal("identity")
	}
	if Const(0).String() != "0" || ps.One().String() != "1" {
		t.Fatal("constant rendering")
	}
	if Var("p").String() != "p" {
		t.Fatal("var rendering")
	}
}

func TestPolynomialDegreeCap(t *testing.T) {
	ps := PolySemiring{MaxDegree: 2}
	x := Var("x")
	x2 := ps.Mul(x, x)
	x3 := ps.Mul(x2, x)
	if !x3.IsZero() {
		t.Fatalf("degree-3 term survived cap 2: %s", x3)
	}
}

// Universality: evaluating the polynomial in a target semiring equals
// computing directly in that semiring.
func TestPolynomialUniversality(t *testing.T) {
	ps := PolySemiring{}
	x, y, z := Var("x"), Var("y"), Var("z")
	// p = x·y + 2·z
	p := ps.Add(ps.Mul(x, y), ps.Add(z, z))

	// Counting: x=2, y=3, z=5 → 2·3 + 2·5 = 16.
	count := EvalPoly[int64](p, Count{}, func(tok string) int64 {
		return map[string]int64{"x": 2, "y": 3, "z": 5}[tok]
	})
	if count != 16 {
		t.Fatalf("count eval = %d", count)
	}

	// Boolean trust: x=T, y=F, z=T → (T∧F) ∨ T ∨ T = T.
	b := EvalPoly[bool](p, Bool{}, func(tok string) bool { return tok != "y" })
	if !b {
		t.Fatal("bool eval")
	}
	// x=T, y=F, z=F → F.
	b = EvalPoly[bool](p, Bool{}, func(tok string) bool { return tok == "x" })
	if b {
		t.Fatal("bool eval false case")
	}

	// Tropical: x=1, y=2, z=10 → min(1+2, min(10,10)) = 3.
	tr := EvalPoly[int64](p, Tropical{}, func(tok string) int64 {
		return map[string]int64{"x": 1, "y": 2, "z": 10}[tok]
	})
	if tr != 3 {
		t.Fatalf("tropical eval = %d", tr)
	}

	// Lineage: tokens of the whole polynomial.
	lin := EvalPoly[LineageElem](p, Lineage{}, func(tok string) LineageElem { return Token(tok) })
	if !lin.Set.Equal(NewTokenSet("x", "y", "z")) {
		t.Fatalf("lineage eval = %v", lin)
	}
}

func TestMonomialString(t *testing.T) {
	ps := PolySemiring{}
	x := Var("x")
	x2y := ps.Mul(ps.Mul(x, x), Var("y"))
	terms := x2y.Terms()
	if len(terms) != 1 || terms[0].Mono.String() != "x^2·y" {
		t.Fatalf("monomial: %v", terms)
	}
	if terms[0].Mono.Degree() != 3 {
		t.Fatal("degree")
	}
}
