// Package semiring implements the algebraic framework behind the paper's
// provenance model (§3.2, building on Green, Karvounarakis & Tannen,
// "Provenance Semirings", PODS 2007). Provenance expressions are
// polynomials over a commutative semiring (K, +, ·, 0, 1) extended with
// one unary function per schema mapping; evaluating the same expression
// in different semirings yields trust verdicts, derivation counts, costs,
// lineage, and more.
package semiring

import "sort"

// Semiring is a commutative semiring over T: (T, Add, Mul, Zero, One)
// with Add and Mul associative and commutative, Zero the Add-identity and
// Mul-annihilator, One the Mul-identity, and Mul distributing over Add.
type Semiring[T any] interface {
	Zero() T
	One() T
	Add(a, b T) T
	Mul(a, b T) T
	// Eq reports semantic equality of two elements (used by fixpoint
	// evaluation to detect convergence and by law tests).
	Eq(a, b T) bool
}

// MapFn interprets the unary mapping functions m(·) of CDSS provenance
// expressions in the target semiring. For trust, m(x) = Θ_m ∧ x; for
// counting, the identity; for cost, a per-mapping surcharge.
type MapFn[T any] func(mapping string, x T) T

// Identity returns the mapping interpretation that ignores mapping
// applications — the homomorphism the paper uses when mapping
// annotations are not of interest.
func Identity[T any]() MapFn[T] {
	return func(_ string, x T) T { return x }
}

// ---------------------------------------------------------------------------
// Boolean semiring ({F,T}, ∨, ∧): trust evaluation (paper §3.3).

// Bool is the boolean semiring.
type Bool struct{}

func (Bool) Zero() bool         { return false }
func (Bool) One() bool          { return true }
func (Bool) Add(a, b bool) bool { return a || b }
func (Bool) Mul(a, b bool) bool { return a && b }
func (Bool) Eq(a, b bool) bool  { return a == b }

// ---------------------------------------------------------------------------
// Counting semiring (ℕ, +, ×) with saturation: number of derivations
// (bag semantics, paper §7 notes the model generalizes duplicate
// semantics). Saturation at Cap keeps cyclic mapping sets finite — the
// paper observes provenance may otherwise be an infinite formal power
// series.

// Count is the saturating natural-number semiring. Cap <= 0 means a
// default cap of 1<<30.
type Count struct{ Cap int64 }

func (c Count) cap() int64 {
	if c.Cap <= 0 {
		return 1 << 30
	}
	return c.Cap
}

func (c Count) Zero() int64 { return 0 }
func (c Count) One() int64  { return 1 }

func (c Count) Add(a, b int64) int64 {
	s := a + b
	if s > c.cap() || s < a {
		return c.cap()
	}
	return s
}

func (c Count) Mul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/a != b || p > c.cap() {
		return c.cap()
	}
	return p
}

func (c Count) Eq(a, b int64) bool { return a == b }

// ---------------------------------------------------------------------------
// Tropical semiring (ℕ∞, min, +): cost of the cheapest derivation.

// TropInf is the tropical infinity.
const TropInf = int64(1) << 62

// Tropical is the (min, +) semiring over non-negative costs.
type Tropical struct{}

func (Tropical) Zero() int64 { return TropInf }
func (Tropical) One() int64  { return 0 }

func (Tropical) Add(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (Tropical) Mul(a, b int64) int64 {
	if a >= TropInf || b >= TropInf {
		return TropInf
	}
	return a + b
}

func (Tropical) Eq(a, b int64) bool { return a == b }

// ---------------------------------------------------------------------------
// Viterbi semiring ([0,1], max, ×): confidence of the best derivation —
// the "ranked trust models" the paper's future work (§8) sketches.

// Viterbi is the ([0,1], max, ×) semiring.
type Viterbi struct{}

func (Viterbi) Zero() float64 { return 0 }
func (Viterbi) One() float64  { return 1 }

func (Viterbi) Add(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func (Viterbi) Mul(a, b float64) float64 { return a * b }
func (Viterbi) Eq(a, b float64) bool     { return a == b }

// ---------------------------------------------------------------------------
// Lineage semiring (P(tokens), ∪, ∪): the set of base tuples a tuple
// depends on — Cui-style lineage, which the paper shows is strictly
// coarser than its provenance model (§7).

// TokenSet is an immutable sorted set of provenance token names.
type TokenSet []string

// NewTokenSet builds a sorted, deduplicated token set.
func NewTokenSet(tokens ...string) TokenSet {
	s := append([]string(nil), tokens...)
	sort.Strings(s)
	out := s[:0]
	for i, t := range s {
		if i == 0 || s[i-1] != t {
			out = append(out, t)
		}
	}
	return TokenSet(out)
}

// Union returns the set union.
func (a TokenSet) Union(b TokenSet) TokenSet {
	return NewTokenSet(append(append([]string(nil), a...), b...)...)
}

// Equal reports set equality.
func (a TokenSet) Equal(b TokenSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Contains reports membership.
func (a TokenSet) Contains(tok string) bool {
	i := sort.SearchStrings(a, tok)
	return i < len(a) && a[i] == tok
}

// Lineage is the (P(tokens) ∪ {⊥}, ∪, ∪) lineage semiring. The bottom
// element (Zero) is represented by a nil set with the `bottom` flag in
// Elem, because the empty set is a legitimate lineage (of One).
type Lineage struct{}

// LineageElem is an element of the lineage semiring.
type LineageElem struct {
	Bottom bool
	Set    TokenSet
}

// Token returns the lineage element for a single base token.
func Token(tok string) LineageElem { return LineageElem{Set: NewTokenSet(tok)} }

func (Lineage) Zero() LineageElem { return LineageElem{Bottom: true} }
func (Lineage) One() LineageElem  { return LineageElem{} }

func (Lineage) Add(a, b LineageElem) LineageElem {
	if a.Bottom {
		return b
	}
	if b.Bottom {
		return a
	}
	return LineageElem{Set: a.Set.Union(b.Set)}
}

func (Lineage) Mul(a, b LineageElem) LineageElem {
	if a.Bottom || b.Bottom {
		return LineageElem{Bottom: true}
	}
	return LineageElem{Set: a.Set.Union(b.Set)}
}

func (Lineage) Eq(a, b LineageElem) bool {
	if a.Bottom != b.Bottom {
		return false
	}
	return a.Set.Equal(b.Set)
}

// ---------------------------------------------------------------------------
// Why-provenance semiring (P(P(tokens)), ∪, pairwise-∪): witness sets.
// Strictly finer than lineage, still coarser than provenance polynomials
// (§7 positions the paper's model above both).

// WitnessSet is a sorted set of token sets.
type WitnessSet []TokenSet

// NewWitnessSet normalizes (sorts + dedups) witnesses.
func NewWitnessSet(ws ...TokenSet) WitnessSet {
	out := make(WitnessSet, 0, len(ws))
	out = append(out, ws...)
	sort.Slice(out, func(i, j int) bool { return lessTokenSet(out[i], out[j]) })
	dedup := out[:0]
	for i, w := range out {
		if i == 0 || !out[i-1].Equal(w) {
			dedup = append(dedup, w)
		}
	}
	return dedup
}

func lessTokenSet(a, b TokenSet) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Equal reports witness-set equality.
func (a WitnessSet) Equal(b WitnessSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Why is the why-provenance semiring. MaxWitnesses caps growth under
// cyclic mappings (0 = 64).
type Why struct{ MaxWitnesses int }

func (w Why) capN() int {
	if w.MaxWitnesses <= 0 {
		return 64
	}
	return w.MaxWitnesses
}

// Witness returns the why-provenance of a base token: {{tok}}.
func Witness(tok string) WitnessSet { return NewWitnessSet(NewTokenSet(tok)) }

func (Why) Zero() WitnessSet { return WitnessSet{} }
func (Why) One() WitnessSet  { return NewWitnessSet(NewTokenSet()) }

func (w Why) Add(a, b WitnessSet) WitnessSet {
	out := NewWitnessSet(append(append(WitnessSet{}, a...), b...)...)
	return w.trim(out)
}

func (w Why) Mul(a, b WitnessSet) WitnessSet {
	var all WitnessSet
	for _, x := range a {
		for _, y := range b {
			all = append(all, x.Union(y))
		}
	}
	return w.trim(NewWitnessSet(all...))
}

func (w Why) trim(ws WitnessSet) WitnessSet {
	if len(ws) > w.capN() {
		return ws[:w.capN()]
	}
	return ws
}

func (Why) Eq(a, b WitnessSet) bool { return a.Equal(b) }
