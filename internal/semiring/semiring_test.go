package semiring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkLaws verifies the commutative-semiring axioms over randomly drawn
// elements of the carrier.
func checkLaws[T any](t *testing.T, name string, s Semiring[T], gen func(r *rand.Rand) T) {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		if !s.Eq(s.Add(a, b), s.Add(b, a)) {
			t.Fatalf("%s: + not commutative", name)
		}
		if !s.Eq(s.Mul(a, b), s.Mul(b, a)) {
			t.Fatalf("%s: · not commutative", name)
		}
		if !s.Eq(s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c))) {
			t.Fatalf("%s: + not associative", name)
		}
		if !s.Eq(s.Mul(s.Mul(a, b), c), s.Mul(a, s.Mul(b, c))) {
			t.Fatalf("%s: · not associative", name)
		}
		if !s.Eq(s.Add(a, s.Zero()), a) {
			t.Fatalf("%s: 0 not +-identity", name)
		}
		if !s.Eq(s.Mul(a, s.One()), a) {
			t.Fatalf("%s: 1 not ·-identity", name)
		}
		if !s.Eq(s.Mul(a, s.Zero()), s.Zero()) {
			t.Fatalf("%s: 0 not annihilating", name)
		}
		if !s.Eq(s.Mul(a, s.Add(b, c)), s.Add(s.Mul(a, b), s.Mul(a, c))) {
			t.Fatalf("%s: · does not distribute over +", name)
		}
	}
}

func TestBoolLaws(t *testing.T) {
	checkLaws[bool](t, "bool", Bool{}, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
}

func TestCountLaws(t *testing.T) {
	// Draw small values so saturation does not break associativity in the
	// sampled region; saturation behaviour is tested separately.
	checkLaws[int64](t, "count", Count{}, func(r *rand.Rand) int64 { return r.Int63n(50) })
}

func TestCountSaturation(t *testing.T) {
	c := Count{Cap: 100}
	if c.Add(90, 90) != 100 {
		t.Fatal("add saturation")
	}
	if c.Mul(20, 20) != 100 {
		t.Fatal("mul saturation")
	}
	if c.Mul(0, 1<<40) != 0 {
		t.Fatal("zero annihilates despite cap")
	}
	// Overflow-safe even near int64 limits.
	big := Count{}
	if big.Mul(1<<31, 1<<31) != big.cap() {
		t.Fatal("overflow clamp")
	}
}

func TestTropicalLaws(t *testing.T) {
	checkLaws[int64](t, "tropical", Tropical{}, func(r *rand.Rand) int64 {
		if r.Intn(10) == 0 {
			return TropInf
		}
		return r.Int63n(1000)
	})
}

func TestViterbiLaws(t *testing.T) {
	// Restrict to exactly-representable dyadic rationals so that · is
	// associative without float fuzz.
	checkLaws[float64](t, "viterbi", Viterbi{}, func(r *rand.Rand) float64 {
		return float64(r.Intn(5)) / 4.0
	})
}

func TestLineageLaws(t *testing.T) {
	toks := []string{"p1", "p2", "p3", "p4"}
	checkLaws[LineageElem](t, "lineage", Lineage{}, func(r *rand.Rand) LineageElem {
		if r.Intn(8) == 0 {
			return Lineage{}.Zero()
		}
		var ts []string
		for _, tok := range toks {
			if r.Intn(2) == 0 {
				ts = append(ts, tok)
			}
		}
		return LineageElem{Set: NewTokenSet(ts...)}
	})
}

func TestLineageSemantics(t *testing.T) {
	l := Lineage{}
	a := Token("p1")
	b := Token("p2")
	sum := l.Add(a, b)
	prod := l.Mul(a, b)
	// Lineage conflates + and ·: both are union. That is exactly why the
	// paper needs a finer model (§7) — but the semiring must still behave.
	if !sum.Set.Equal(prod.Set) {
		t.Fatal("lineage should conflate + and ·")
	}
	if !sum.Set.Contains("p1") || !sum.Set.Contains("p2") || sum.Set.Contains("p3") {
		t.Fatalf("union wrong: %v", sum.Set)
	}
}

func TestWhyLaws(t *testing.T) {
	toks := []string{"p1", "p2", "p3"}
	checkLaws[WitnessSet](t, "why", Why{MaxWitnesses: 1 << 20}, func(r *rand.Rand) WitnessSet {
		n := r.Intn(3)
		var ws []TokenSet
		for i := 0; i < n; i++ {
			var ts []string
			for _, tok := range toks {
				if r.Intn(2) == 0 {
					ts = append(ts, tok)
				}
			}
			ws = append(ws, NewTokenSet(ts...))
		}
		return NewWitnessSet(ws...)
	})
}

func TestWhySemantics(t *testing.T) {
	w := Why{}
	// why(a·(b+c)) = {{a,b},{a,c}}: two witnesses, distinguishable —
	// unlike lineage.
	a, b, c := Witness("a"), Witness("b"), Witness("c")
	got := w.Mul(a, w.Add(b, c))
	want := NewWitnessSet(NewTokenSet("a", "b"), NewTokenSet("a", "c"))
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokenSet(t *testing.T) {
	s := NewTokenSet("b", "a", "b")
	if len(s) != 2 || s[0] != "a" || s[1] != "b" {
		t.Fatalf("normalize: %v", s)
	}
	if !s.Contains("a") || s.Contains("z") {
		t.Fatal("Contains")
	}
	u := s.Union(NewTokenSet("c"))
	if len(u) != 3 {
		t.Fatalf("union: %v", u)
	}
	// quick property: union is commutative and idempotent.
	f := func(xs, ys []string) bool {
		a, b := NewTokenSet(xs...), NewTokenSet(ys...)
		return a.Union(b).Equal(b.Union(a)) && a.Union(a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMapFnIdentity(t *testing.T) {
	id := Identity[int64]()
	if id("m1", 42) != 42 {
		t.Fatal("identity MapFn")
	}
}

func TestTropicalSemantics(t *testing.T) {
	tr := Tropical{}
	// Cheapest-of-two-derivations: min(3+2, 4) = 4.
	got := tr.Add(tr.Mul(3, 2), 4)
	if got != 4 {
		t.Fatalf("got %d", got)
	}
	if tr.Mul(5, TropInf) != TropInf {
		t.Fatal("inf absorbs")
	}
}
