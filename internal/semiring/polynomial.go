package semiring

import (
	"fmt"
	"sort"
	"strings"
)

// Provenance polynomials N[X] — the universal commutative semiring of the
// provenance-semirings framework the paper builds on (§3.2, [16]):
// polynomials with natural-number coefficients over the provenance
// tokens. Every other semiring evaluation factors through N[X], which is
// why the CDSS can store one provenance structure and reuse it for
// trust, counts, costs, lineage, and more.
//
// A Monomial is a multiset of tokens (token → exponent); a Poly maps
// monomials to coefficients. Both are kept in canonical (sorted,
// zero-free) form, so Eq is structural equality.

// Monomial is a canonical token-multiset: sorted token names with
// positive exponents.
type Monomial struct {
	Tokens []string
	Exps   []int
}

// canonical key for map storage.
func (m Monomial) key() string {
	var b strings.Builder
	for i, tok := range m.Tokens {
		fmt.Fprintf(&b, "%s^%d;", tok, m.Exps[i])
	}
	return b.String()
}

// mulMonomial multiplies two canonical monomials.
func mulMonomial(a, b Monomial) Monomial {
	var out Monomial
	i, j := 0, 0
	for i < len(a.Tokens) && j < len(b.Tokens) {
		switch {
		case a.Tokens[i] == b.Tokens[j]:
			out.Tokens = append(out.Tokens, a.Tokens[i])
			out.Exps = append(out.Exps, a.Exps[i]+b.Exps[j])
			i++
			j++
		case a.Tokens[i] < b.Tokens[j]:
			out.Tokens = append(out.Tokens, a.Tokens[i])
			out.Exps = append(out.Exps, a.Exps[i])
			i++
		default:
			out.Tokens = append(out.Tokens, b.Tokens[j])
			out.Exps = append(out.Exps, b.Exps[j])
			j++
		}
	}
	for ; i < len(a.Tokens); i++ {
		out.Tokens = append(out.Tokens, a.Tokens[i])
		out.Exps = append(out.Exps, a.Exps[i])
	}
	for ; j < len(b.Tokens); j++ {
		out.Tokens = append(out.Tokens, b.Tokens[j])
		out.Exps = append(out.Exps, b.Exps[j])
	}
	return out
}

// Degree returns the total degree of the monomial.
func (m Monomial) Degree() int {
	d := 0
	for _, e := range m.Exps {
		d += e
	}
	return d
}

// String renders "x^2·y" style.
func (m Monomial) String() string {
	if len(m.Tokens) == 0 {
		return "1"
	}
	parts := make([]string, len(m.Tokens))
	for i, tok := range m.Tokens {
		if m.Exps[i] == 1 {
			parts[i] = tok
		} else {
			parts[i] = fmt.Sprintf("%s^%d", tok, m.Exps[i])
		}
	}
	return strings.Join(parts, "·")
}

// Poly is a provenance polynomial in canonical form.
type Poly struct {
	terms map[string]polyTerm
}

type polyTerm struct {
	mono  Monomial
	coeff int64
}

// Var returns the polynomial consisting of a single token.
func Var(token string) Poly {
	m := Monomial{Tokens: []string{token}, Exps: []int{1}}
	return Poly{terms: map[string]polyTerm{m.key(): {mono: m, coeff: 1}}}
}

// Const returns a constant polynomial.
func Const(c int64) Poly {
	if c == 0 {
		return Poly{}
	}
	m := Monomial{}
	return Poly{terms: map[string]polyTerm{m.key(): {mono: m, coeff: c}}}
}

// Terms returns the polynomial's terms sorted by degree then text, for
// display and testing.
func (p Poly) Terms() []struct {
	Mono  Monomial
	Coeff int64
} {
	out := make([]struct {
		Mono  Monomial
		Coeff int64
	}, 0, len(p.terms))
	for _, t := range p.terms {
		out = append(out, struct {
			Mono  Monomial
			Coeff int64
		}{t.mono, t.coeff})
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Mono.Degree(), out[j].Mono.Degree()
		if di != dj {
			return di < dj
		}
		return out[i].Mono.String() < out[j].Mono.String()
	})
	return out
}

// IsZero reports whether the polynomial is 0.
func (p Poly) IsZero() bool { return len(p.terms) == 0 }

// String renders e.g. "2·p1·p2 + p3^2".
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var parts []string
	for _, t := range p.Terms() {
		switch {
		case t.Mono.Degree() == 0:
			parts = append(parts, fmt.Sprintf("%d", t.Coeff))
		case t.Coeff == 1:
			parts = append(parts, t.Mono.String())
		default:
			parts = append(parts, fmt.Sprintf("%d·%s", t.Coeff, t.Mono.String()))
		}
	}
	return strings.Join(parts, " + ")
}

// EvalPoly evaluates the polynomial in any semiring by substituting
// tokens — the universality property of N[X]: specialization is a
// semiring homomorphism.
func EvalPoly[T any](p Poly, s Semiring[T], tokenVal func(string) T) T {
	acc := s.Zero()
	for _, t := range p.Terms() {
		term := s.One()
		for i, tok := range t.Mono.Tokens {
			v := tokenVal(tok)
			for e := 0; e < t.Mono.Exps[i]; e++ {
				term = s.Mul(term, v)
			}
		}
		// coeff·term = term + … + term (coeff times).
		summed := s.Zero()
		for c := int64(0); c < t.Coeff; c++ {
			summed = s.Add(summed, term)
		}
		acc = s.Add(acc, summed)
	}
	return acc
}

// PolySemiring is N[X] as a Semiring[Poly]. With cyclic mappings the
// exact provenance is an infinite formal power series (§3.2), so the
// fixpoint computation needs two truncations to stay finite: MaxDegree
// drops monomials beyond the degree bound (0 = 16), and MaxCoeff
// saturates coefficients (0 = 1<<30) — the polynomial analogue of the
// counting semiring's saturation.
type PolySemiring struct {
	MaxDegree int
	MaxCoeff  int64
}

func (ps PolySemiring) maxDeg() int {
	if ps.MaxDegree <= 0 {
		return 16
	}
	return ps.MaxDegree
}

func (ps PolySemiring) maxCoeff() int64 {
	if ps.MaxCoeff <= 0 {
		return 1 << 30
	}
	return ps.MaxCoeff
}

func (ps PolySemiring) clamp(c int64) int64 {
	if c > ps.maxCoeff() || c < 0 {
		return ps.maxCoeff()
	}
	return c
}

func (PolySemiring) Zero() Poly { return Poly{} }
func (PolySemiring) One() Poly  { return Const(1) }

func (ps PolySemiring) Add(a, b Poly) Poly {
	out := Poly{terms: make(map[string]polyTerm, len(a.terms)+len(b.terms))}
	for k, t := range a.terms {
		out.terms[k] = t
	}
	for k, t := range b.terms {
		if prev, ok := out.terms[k]; ok {
			prev.coeff = ps.clamp(prev.coeff + t.coeff)
			out.terms[k] = prev
		} else {
			out.terms[k] = t
		}
	}
	return out
}

func (ps PolySemiring) Mul(a, b Poly) Poly {
	out := Poly{terms: make(map[string]polyTerm)}
	for _, ta := range a.terms {
		for _, tb := range b.terms {
			mono := mulMonomial(ta.mono, tb.mono)
			if mono.Degree() > ps.maxDeg() {
				continue
			}
			k := mono.key()
			if prev, ok := out.terms[k]; ok {
				prev.coeff = ps.clamp(prev.coeff + ps.clamp(ta.coeff*tb.coeff))
				out.terms[k] = prev
			} else {
				out.terms[k] = polyTerm{mono: mono, coeff: ps.clamp(ta.coeff * tb.coeff)}
			}
		}
	}
	if len(out.terms) == 0 {
		return Poly{}
	}
	return out
}

func (PolySemiring) Eq(a, b Poly) bool {
	if len(a.terms) != len(b.terms) {
		return false
	}
	for k, ta := range a.terms {
		tb, ok := b.terms[k]
		if !ok || ta.coeff != tb.coeff {
			return false
		}
	}
	return true
}
