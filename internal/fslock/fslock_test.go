//go:build unix

package fslock

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
)

func open(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return f
}

// A second descriptor on a locked file must be rejected immediately
// (not block), and the error must wrap the syscall sentinel so callers
// can classify it with errors.Is.
func TestTryLockContention(t *testing.T) {
	path := filepath.Join(t.TempDir(), "publications.log")

	holder := open(t, path)
	defer holder.Close()
	if err := TryLock(holder); err != nil {
		t.Fatalf("first TryLock: %v", err)
	}

	contender := open(t, path)
	defer contender.Close()
	err := TryLock(contender)
	if err == nil {
		t.Fatal("second TryLock on a held lock succeeded")
	}
	if !errors.Is(err, syscall.EWOULDBLOCK) && !errors.Is(err, syscall.EAGAIN) {
		t.Fatalf("contention error = %v, want wrapped EWOULDBLOCK/EAGAIN", err)
	}
}

// Closing the holder releases the lock: the descriptor lifetime is the
// lock lifetime, which is what makes a crashed holder safe (the kernel
// drops the lock with the descriptor — no stale lock file to clean up).
func TestTryLockReleasedOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "publications.log")

	holder := open(t, path)
	if err := TryLock(holder); err != nil {
		t.Fatalf("first TryLock: %v", err)
	}
	if err := holder.Close(); err != nil {
		t.Fatalf("closing holder: %v", err)
	}

	successor := open(t, path)
	defer successor.Close()
	if err := TryLock(successor); err != nil {
		t.Fatalf("TryLock after holder closed: %v", err)
	}
}

// Re-locking through the same descriptor is idempotent (flock converts
// in place); logstore relies on Open being safe to retry on the same
// handle.
func TestTryLockSameDescriptorIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "publications.log")

	f := open(t, path)
	defer f.Close()
	if err := TryLock(f); err != nil {
		t.Fatalf("first TryLock: %v", err)
	}
	if err := TryLock(f); err != nil {
		t.Fatalf("second TryLock on same descriptor: %v", err)
	}
}

// Under a concurrent scramble, exactly one descriptor wins the lock —
// the invariant that keeps two nodes from interleaving frames in one
// publication log.
func TestTryLockConcurrentSingleWinner(t *testing.T) {
	path := filepath.Join(t.TempDir(), "publications.log")

	const contenders = 16
	var (
		wins  atomic.Int32
		start sync.WaitGroup
		done  sync.WaitGroup
	)
	files := make([]*os.File, contenders)
	for i := range files {
		files[i] = open(t, path)
		defer files[i].Close()
	}
	start.Add(1)
	for i := 0; i < contenders; i++ {
		done.Add(1)
		go func(f *os.File) {
			defer done.Done()
			start.Wait()
			if TryLock(f) == nil {
				wins.Add(1)
			}
		}(files[i])
	}
	start.Done()
	done.Wait()
	if got := wins.Load(); got != 1 {
		t.Fatalf("%d contenders won the lock, want exactly 1", got)
	}
}
