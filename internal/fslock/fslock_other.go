//go:build !unix

package fslock

// TryLock is a no-op where flock is unavailable: single-writer
// discipline is then the operator's responsibility.
func TryLock(f File) error { return nil }
