package fslock

// File is the part of *os.File TryLock needs.
type File interface {
	Fd() uintptr
	Name() string
}
