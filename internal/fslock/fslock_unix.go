//go:build unix

// Package fslock provides non-blocking exclusive advisory file locks —
// the inter-process guard keeping two nodes from opening the same
// durable log or state directory and clobbering each other's writes.
package fslock

import (
	"fmt"
	"syscall"
)

// TryLock places a non-blocking exclusive advisory lock on f. The lock
// is held until f is closed (or the process exits, however abruptly —
// a crashed holder never leaves a stale lock). A file already locked
// by another descriptor, in this process or any other, returns an
// error immediately.
func TryLock(f File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("fslock: %s is locked by another process: %w", f.Name(), err)
	}
	return nil
}
