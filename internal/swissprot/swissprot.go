// Package swissprot synthesizes protein-database entries shaped like
// SWISS-PROT records. The paper's workload generator (§6.1) feeds on "a
// single universal relation based on the SWISS-PROT protein database,
// which has 25 attributes"; large string fields (sequences, descriptions,
// taxonomies) make tuples heavy — the paper's "string" dataset — while
// hashing every field to an integer yields the light "integer" dataset.
// Entries are generated deterministically from a seeded source, standing
// in for the real (licensed) database dump.
package swissprot

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"orchestra/internal/value"
)

// NumAttrs is the width of the universal relation.
const NumAttrs = 25

// attrNames mirrors the principal fields of a SWISS-PROT flat-file entry.
var attrNames = [NumAttrs]string{
	"entry_name", "accession", "data_class", "molecule_type", "seq_length",
	"date_created", "date_seq_update", "date_ann_update", "description",
	"gene_name", "gene_synonyms", "organism_species", "organelle",
	"taxonomy", "taxonomy_id", "organism_host", "reference_titles",
	"comments", "db_references", "keywords", "feature_table",
	"protein_existence", "evidence_codes", "crc64", "sequence",
}

// AttrNames returns the 25 attribute names of the universal relation.
func AttrNames() []string {
	out := make([]string, NumAttrs)
	copy(out, attrNames[:])
	return out
}

// AttrName returns the i-th attribute name.
func AttrName(i int) string { return attrNames[i] }

// Entry is one synthesized universal-relation row (string form).
type Entry struct {
	Fields [NumAttrs]string
}

var (
	aminoAcids = "ACDEFGHIKLMNPQRSTVWY"
	species    = []string{
		"Homo sapiens", "Mus musculus", "Rattus norvegicus", "Danio rerio",
		"Drosophila melanogaster", "Caenorhabditis elegans",
		"Saccharomyces cerevisiae", "Escherichia coli", "Arabidopsis thaliana",
		"Xenopus laevis", "Gallus gallus", "Bos taurus",
	}
	lineages = []string{
		"Eukaryota; Metazoa; Chordata; Craniata; Vertebrata; Mammalia",
		"Eukaryota; Metazoa; Arthropoda; Insecta; Diptera",
		"Eukaryota; Fungi; Ascomycota; Saccharomycetes",
		"Bacteria; Proteobacteria; Gammaproteobacteria; Enterobacterales",
		"Eukaryota; Viridiplantae; Streptophyta; Magnoliopsida",
	}
	keywordPool = []string{
		"ATP-binding", "Cytoplasm", "Membrane", "Phosphoprotein", "Kinase",
		"Transferase", "Zinc-finger", "DNA-binding", "Transcription",
		"Signal", "Glycoprotein", "Secreted", "Repeat", "Metal-binding",
		"Nucleotide-binding", "Transport", "Ion channel", "Receptor",
	}
	descWords = []string{
		"putative", "probable", "protein", "kinase", "receptor", "binding",
		"factor", "subunit", "alpha", "beta", "gamma", "precursor",
		"mitochondrial", "transporter", "regulator", "dehydrogenase",
		"synthase", "polymerase", "ligase", "homolog", "domain-containing",
	}
	featureKinds = []string{"CHAIN", "DOMAIN", "ACT_SITE", "BINDING", "HELIX", "STRAND", "MOD_RES"}
)

func randWord(r *rand.Rand, pool []string) string { return pool[r.Intn(len(pool))] }

// titleCase uppercases the first letter of each space-separated word
// (ASCII only; avoids the deprecated strings.Title).
func titleCase(s string) string {
	words := strings.Split(s, " ")
	for i, w := range words {
		if w != "" && w[0] >= 'a' && w[0] <= 'z' {
			words[i] = string(w[0]-'a'+'A') + w[1:]
		}
	}
	return strings.Join(words, " ")
}

func randWords(r *rand.Rand, pool []string, n int, sep string) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = pool[r.Intn(len(pool))]
	}
	return strings.Join(parts, sep)
}

func randSeq(r *rand.Rand, n int) string {
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte(aminoAcids[r.Intn(len(aminoAcids))])
	}
	return b.String()
}

func randDate(r *rand.Rand) string {
	return fmt.Sprintf("%02d-%s-%d", 1+r.Intn(28),
		[]string{"JAN", "FEB", "MAR", "APR", "MAY", "JUN", "JUL", "AUG", "SEP", "OCT", "NOV", "DEC"}[r.Intn(12)],
		1986+r.Intn(21))
}

// Generate synthesizes one entry from the random source. Identical source
// states produce identical entries.
func Generate(r *rand.Rand) Entry {
	var e Entry
	seqLen := 100 + r.Intn(300)
	sp := randWord(r, species)
	gene := fmt.Sprintf("%c%c%c%d",
		'A'+rune(r.Intn(26)), 'a'+rune(r.Intn(26)), 'a'+rune(r.Intn(26)), 1+r.Intn(9))
	e.Fields[0] = fmt.Sprintf("%s_%s", strings.ToUpper(gene), strings.ToUpper(sp[:4]))
	e.Fields[1] = fmt.Sprintf("%c%05d", 'O'+rune(r.Intn(4)), r.Intn(100000))
	e.Fields[2] = []string{"Reviewed", "Unreviewed"}[r.Intn(2)]
	e.Fields[3] = "PRT"
	e.Fields[4] = fmt.Sprintf("%d", seqLen)
	e.Fields[5] = randDate(r)
	e.Fields[6] = randDate(r)
	e.Fields[7] = randDate(r)
	e.Fields[8] = titleCase(randWords(r, descWords, 4+r.Intn(6), " "))
	e.Fields[9] = gene
	e.Fields[10] = randWords(r, descWords, 1+r.Intn(3), ", ")
	e.Fields[11] = sp
	e.Fields[12] = []string{"", "Mitochondrion", "Chloroplast", "Plasmid"}[r.Intn(4)]
	e.Fields[13] = randWord(r, lineages)
	e.Fields[14] = fmt.Sprintf("%d", 1000+r.Intn(999000))
	e.Fields[15] = []string{"", randWord(r, species)}[r.Intn(2)]
	e.Fields[16] = titleCase(randWords(r, descWords, 6+r.Intn(8), " "))
	e.Fields[17] = "FUNCTION: " + randWords(r, descWords, 8+r.Intn(10), " ")
	e.Fields[18] = fmt.Sprintf("EMBL:%c%05d; PDB:%d%c%c%c;",
		'A'+rune(r.Intn(26)), r.Intn(100000), 1+r.Intn(8),
		'A'+rune(r.Intn(26)), 'A'+rune(r.Intn(26)), 'A'+rune(r.Intn(26)))
	e.Fields[19] = randWords(r, keywordPool, 3+r.Intn(5), "; ")
	e.Fields[20] = fmt.Sprintf("%s 1..%d; %s %d..%d",
		randWord(r, featureKinds), seqLen,
		randWord(r, featureKinds), 1+r.Intn(seqLen/2), seqLen/2+r.Intn(seqLen/2))
	e.Fields[21] = fmt.Sprintf("%d", 1+r.Intn(5))
	e.Fields[22] = fmt.Sprintf("ECO:%07d", r.Intn(10000000))
	e.Fields[23] = fmt.Sprintf("%016X", r.Uint64())
	e.Fields[24] = randSeq(r, seqLen)
	return e
}

// StringValue returns attribute i as a string Value (the "string"
// dataset).
func (e *Entry) StringValue(i int) value.Value { return value.String(e.Fields[i]) }

// IntValue returns attribute i hashed to an integer Value (the paper's
// "integer" dataset, "where we substituted integer hash values for each
// string").
func (e *Entry) IntValue(i int) value.Value {
	h := fnv.New64a()
	h.Write([]byte(e.Fields[i]))
	return value.Int(int64(h.Sum64() & 0x7fffffffffffffff))
}
