package swissprot

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func TestAttrNames(t *testing.T) {
	names := AttrNames()
	if len(names) != NumAttrs || NumAttrs != 25 {
		t.Fatalf("got %d attribute names, want 25", len(names))
	}
	seen := make(map[string]bool)
	for i, n := range names {
		if n == "" {
			t.Fatalf("attr %d empty", i)
		}
		if seen[n] {
			t.Fatalf("duplicate attr %q", n)
		}
		seen[n] = true
		if AttrName(i) != n {
			t.Fatalf("AttrName(%d) = %q, want %q", i, AttrName(i), n)
		}
	}
	// Mutating the returned slice must not corrupt the package table.
	names[0] = "hacked"
	if AttrName(0) == "hacked" {
		t.Fatal("AttrNames aliases internal storage")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(5)))
	b := Generate(rand.New(rand.NewSource(5)))
	if a != b {
		t.Fatal("same seed produced different entries")
	}
	c := Generate(rand.New(rand.NewSource(6)))
	if a == c {
		t.Fatal("different seeds produced identical entries")
	}
}

func TestGenerateShape(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		e := Generate(r)
		// Sequence length matches the declared attribute and is in the
		// 100–400 residue band.
		seqLen, err := strconv.Atoi(e.Fields[4])
		if err != nil {
			t.Fatalf("seq_length not numeric: %q", e.Fields[4])
		}
		if len(e.Fields[24]) != seqLen || seqLen < 100 || seqLen >= 400 {
			t.Fatalf("sequence length %d vs declared %d", len(e.Fields[24]), seqLen)
		}
		for _, aa := range e.Fields[24] {
			if !strings.ContainsRune("ACDEFGHIKLMNPQRSTVWY", aa) {
				t.Fatalf("non-amino-acid %q in sequence", aa)
			}
		}
		// Entry name embeds the gene and species prefix.
		if !strings.Contains(e.Fields[0], "_") {
			t.Fatalf("entry_name %q", e.Fields[0])
		}
		// Dates look like DD-MMM-YYYY.
		if len(e.Fields[5]) != 11 || e.Fields[5][2] != '-' {
			t.Fatalf("date %q", e.Fields[5])
		}
		// Every field is populated except the optional ones (12, 15).
		for fi, f := range e.Fields {
			if f == "" && fi != 12 && fi != 15 {
				t.Fatalf("field %d (%s) empty", fi, AttrName(fi))
			}
		}
	}
}

func TestValues(t *testing.T) {
	e := Generate(rand.New(rand.NewSource(1)))
	sv := e.StringValue(8)
	if sv.AsString() != e.Fields[8] {
		t.Fatal("StringValue")
	}
	iv1, iv2 := e.IntValue(8), e.IntValue(8)
	if iv1 != iv2 {
		t.Fatal("IntValue not deterministic")
	}
	if iv1.AsInt() < 0 {
		t.Fatal("IntValue negative")
	}
	// Distinct fields hash to distinct values with overwhelming
	// probability.
	if e.IntValue(8) == e.IntValue(24) {
		t.Fatal("suspicious hash collision")
	}
}

func TestStringDatasetHeavierThanInteger(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var strBytes, intBytes int
	for i := 0; i < 20; i++ {
		e := Generate(r)
		for a := 0; a < NumAttrs; a++ {
			strBytes += len(e.Fields[a])
			intBytes += 8
		}
	}
	if strBytes <= intBytes {
		t.Fatalf("string dataset (%dB) should outweigh integer dataset (%dB)", strBytes, intBytes)
	}
}
