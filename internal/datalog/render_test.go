package datalog

import (
	"strings"
	"testing"
)

func TestProgramString(t *testing.T) {
	p := NewProgram(
		NewRule("r1", NewAtom("A", V("x")), Pos(NewAtom("E", V("x")))),
		NewRule("r2", NewAtom("B", V("x"), Sk("f", "x")), Pos(NewAtom("A", V("x")))),
	)
	s := p.String()
	want := "A(x) :- E(x).\nB(x,f(x)) :- A(x).\n"
	if s != want {
		t.Fatalf("Program.String:\n%q\nwant\n%q", s, want)
	}
}

func TestLiteralString(t *testing.T) {
	if Pos(NewAtom("R", V("x"))).String() != "R(x)" {
		t.Fatal("positive literal")
	}
	if Neg(NewAtom("R", V("x"))).String() != "not R(x)" {
		t.Fatal("negative literal")
	}
}

func TestStratumPreds(t *testing.T) {
	p := NewProgram(
		NewRule("r1", NewAtom("B", V("x")), Pos(NewAtom("E", V("x")))),
		NewRule("r2", NewAtom("A", V("x")), Pos(NewAtom("E", V("x")))),
		NewRule("r3", NewAtom("C", V("x")), Pos(NewAtom("A", V("x"))), Neg(NewAtom("B", V("x")))),
	)
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 2 {
		t.Fatalf("strata: %d", len(strata))
	}
	// Preds are sorted within each stratum.
	if strings.Join(strata[0].Preds, ",") != "A,B" {
		t.Fatalf("stratum 0 preds: %v", strata[0].Preds)
	}
	if strings.Join(strata[1].Preds, ",") != "C" {
		t.Fatalf("stratum 1 preds: %v", strata[1].Preds)
	}
}

func TestAddAndValidateProgram(t *testing.T) {
	p := NewProgram()
	p.Add(NewRule("bad", NewAtom("H", V("z")), Pos(NewAtom("B", V("x")))))
	if err := p.Validate(); err == nil {
		t.Fatal("invalid program validated")
	}
}
