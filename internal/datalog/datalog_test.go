package datalog

import (
	"strings"
	"testing"

	"orchestra/internal/value"
)

func TestTermString(t *testing.T) {
	if V("x").String() != "x" {
		t.Fatal("var")
	}
	if C(value.Int(3)).String() != "3" {
		t.Fatal("const")
	}
	if Sk("f", "x", "y").String() != "f(x,y)" {
		t.Fatal("skolem")
	}
}

func TestAtomVars(t *testing.T) {
	a := NewAtom("R", V("x"), C(value.Int(1)), Sk("f", "x", "z"), V("y"))
	got := a.Vars()
	want := []string{"x", "z", "y"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestAtomString(t *testing.T) {
	a := NewAtom("R", V("x"), C(value.String("s")))
	if a.String() != "R(x,s)" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestRuleValidateOK(t *testing.T) {
	r := NewRule("m", NewAtom("H", V("x"), Sk("f", "x")),
		Pos(NewAtom("B", V("x"), V("y"))),
		Neg(NewAtom("N", V("x"))))
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRuleValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		rule *Rule
		frag string
	}{
		{"empty body", NewRule("r", NewAtom("H", V("x"))), "empty body"},
		{"unbound head var", NewRule("r", NewAtom("H", V("z")), Pos(NewAtom("B", V("x")))), "head variable"},
		{"unbound skolem arg", NewRule("r", NewAtom("H", Sk("f", "z")), Pos(NewAtom("B", V("x")))), "head variable"},
		{"unsafe negation", NewRule("r", NewAtom("H", V("x")),
			Pos(NewAtom("B", V("x"))), Neg(NewAtom("N", V("y")))), "unsafe negation"},
		{"skolem-only body", NewRule("r", NewAtom("H", V("x")),
			Pos(NewAtom("B", Sk("f", "x")))), "no positive body"},
		{"unbound body skolem arg", NewRule("r", NewAtom("H", V("x")),
			Pos(NewAtom("B", V("x"), Sk("f", "z")))), "not bound"},
		{"skolem in negated atom", NewRule("r", NewAtom("H", V("x")),
			Pos(NewAtom("B", V("x"))), Neg(NewAtom("N", Sk("f", "x")))), "negated atom"},
		{"only negative body", NewRule("r", NewAtom("H", V("x")),
			Neg(NewAtom("N", V("x")))), "no positive body"},
	}
	for _, c := range cases {
		err := c.rule.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestRuleString(t *testing.T) {
	r := NewRule("m", NewAtom("H", V("x")),
		Pos(NewAtom("B", V("x"))), Neg(NewAtom("N", V("x"))))
	r.AddFilter("x >= 3", func(value.Env) bool { return true })
	got := r.String()
	if got != "H(x) :- B(x), not N(x), [x >= 3]." {
		t.Fatalf("String = %q", got)
	}
}

func TestProgramPredsAndIDB(t *testing.T) {
	p := NewProgram(
		NewRule("r1", NewAtom("A", V("x")), Pos(NewAtom("E", V("x")))),
		NewRule("r2", NewAtom("B", V("x")), Pos(NewAtom("A", V("x")))),
	)
	idb := p.IDBPreds()
	if !idb["A"] || !idb["B"] || idb["E"] {
		t.Fatalf("IDBPreds = %v", idb)
	}
	preds := p.Preds()
	if len(preds) != 3 || preds[0] != "A" || preds[1] != "B" || preds[2] != "E" {
		t.Fatalf("Preds = %v", preds)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStratifyLinear(t *testing.T) {
	// A :- E.  B :- A, not C.  C :- E2.
	p := NewProgram(
		NewRule("r1", NewAtom("A", V("x")), Pos(NewAtom("E", V("x")))),
		NewRule("r3", NewAtom("C", V("x")), Pos(NewAtom("E2", V("x")))),
		NewRule("r2", NewAtom("B", V("x")), Pos(NewAtom("A", V("x"))), Neg(NewAtom("C", V("x")))),
	)
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 2 {
		t.Fatalf("got %d strata, want 2", len(strata))
	}
	// A and C must come before B.
	first := strata[0].Preds
	if !(contains(first, "A") && contains(first, "C")) {
		t.Fatalf("first stratum %v", first)
	}
	if !contains(strata[1].Preds, "B") {
		t.Fatalf("second stratum %v", strata[1].Preds)
	}
}

func TestStratifyRecursionOK(t *testing.T) {
	// Mutually recursive positive rules stay in one stratum.
	p := NewProgram(
		NewRule("r1", NewAtom("A", V("x")), Pos(NewAtom("B", V("x")))),
		NewRule("r2", NewAtom("B", V("x")), Pos(NewAtom("A", V("x")))),
		NewRule("r3", NewAtom("A", V("x")), Pos(NewAtom("E", V("x")))),
	)
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 1 {
		t.Fatalf("got %d strata, want 1", len(strata))
	}
}

func TestStratifyNegationOnEDB(t *testing.T) {
	// The update-exchange shape: Ro :- Ri, not Rr with Rr EDB.
	p := NewProgram(
		NewRule("tR", NewAtom("Ro", V("x")), Pos(NewAtom("Ri", V("x"))), Neg(NewAtom("Rr", V("x")))),
		NewRule("m", NewAtom("Ri", V("x")), Pos(NewAtom("So", V("x")))),
	)
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 1 {
		t.Fatalf("got %d strata, want 1 (negation only on EDB)", len(strata))
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	p := NewProgram(
		NewRule("r1", NewAtom("A", V("x")), Pos(NewAtom("E", V("x"))), Neg(NewAtom("B", V("x")))),
		NewRule("r2", NewAtom("B", V("x")), Pos(NewAtom("E", V("x"))), Neg(NewAtom("A", V("x")))),
	)
	if _, err := p.Stratify(); err == nil {
		t.Fatal("negative cycle accepted")
	}
}

func TestDependencyGraph(t *testing.T) {
	p := NewProgram(
		NewRule("r1", NewAtom("A", V("x")), Pos(NewAtom("E", V("x"))), Neg(NewAtom("C", V("x")))),
		NewRule("r2", NewAtom("A", V("x")), Pos(NewAtom("B", V("x")))),
	)
	g := p.DependencyGraph()
	deps := g["A"]
	if len(deps) != 3 || deps[0] != "B" || deps[1] != "C" || deps[2] != "E" {
		t.Fatalf("deps of A = %v", deps)
	}
}

func TestRulesFor(t *testing.T) {
	r1 := NewRule("r1", NewAtom("A", V("x")), Pos(NewAtom("E", V("x"))))
	r2 := NewRule("r2", NewAtom("B", V("x")), Pos(NewAtom("E", V("x"))))
	p := NewProgram(r1, r2)
	if got := p.RulesFor("A"); len(got) != 1 || got[0] != r1 {
		t.Fatalf("RulesFor(A) = %v", got)
	}
	if got := p.RulesFor("Z"); got != nil {
		t.Fatalf("RulesFor(Z) = %v", got)
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
