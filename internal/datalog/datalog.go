// Package datalog defines the rule language that update exchange compiles
// schema mappings into (paper §4.1.1): datalog extended with Skolem
// functions in rule heads and safe negation in rule bodies. The package
// covers syntax, well-formedness (safety), and stratification; evaluation
// lives in internal/engine.
package datalog

import (
	"fmt"
	"strings"

	"orchestra/internal/value"
)

// TermKind discriminates rule terms.
type TermKind uint8

const (
	// TermVar is a variable, e.g. x.
	TermVar TermKind = iota
	// TermConst is a constant value.
	TermConst
	// TermSkolem is a Skolem function application f(x̄) — allowed only in
	// rule heads, standing for an existentially quantified value.
	TermSkolem
)

// Term is a variable, constant, or Skolem application.
type Term struct {
	Kind  TermKind
	Var   string
	Const value.Value
	// Fn and FnArgs describe a Skolem application; FnArgs are variable
	// names (the paper parameterizes Skolem functions by the variables
	// shared between a tgd's LHS and RHS, §4.1.1).
	Fn     string
	FnArgs []string
}

// V returns a variable term.
func V(name string) Term { return Term{Kind: TermVar, Var: name} }

// C returns a constant term.
func C(v value.Value) Term { return Term{Kind: TermConst, Const: v} }

// Sk returns a Skolem application term fn(args…).
func Sk(fn string, args ...string) Term {
	return Term{Kind: TermSkolem, Fn: fn, FnArgs: args}
}

// String renders the term in rule syntax.
func (t Term) String() string {
	switch t.Kind {
	case TermVar:
		return t.Var
	case TermConst:
		return t.Const.String()
	case TermSkolem:
		return fmt.Sprintf("%s(%s)", t.Fn, strings.Join(t.FnArgs, ","))
	default:
		return "?"
	}
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Vars returns the variable names occurring in the atom (including inside
// Skolem arguments), in first-occurrence order.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, t := range a.Args {
		switch t.Kind {
		case TermVar:
			add(t.Var)
		case TermSkolem:
			for _, v := range t.FnArgs {
				add(v)
			}
		}
	}
	return out
}

// String renders "Pred(t1,…)".
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
}

// Literal is an atom or its negation. Negation is only legal in rule
// bodies and must be safe (§3.1: "tgds with safe negation").
type Literal struct {
	Atom Atom
	Neg  bool
}

// Pos returns a positive body literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg returns a negated body literal.
func Neg(a Atom) Literal { return Literal{Atom: a, Neg: true} }

func (l Literal) String() string {
	if l.Neg {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Filter is an extra comparison predicate attached to a rule — the hook
// through which per-mapping trust conditions Θ (paper §3.3) are pushed
// into evaluation. It receives the variable binding of a satisfied body
// as a value.Env and returns whether the head may be derived. The engine
// implements the Env directly over its slot array, so filters run
// without materializing a map per match.
type Filter func(env value.Env) bool

// Rule is head :- body, with optional comparison filters.
type Rule struct {
	// ID identifies the rule for provenance and diagnostics; mapping rules
	// use their tgd id.
	ID   string
	Head Atom
	Body []Literal
	// Filters are evaluated after the body matches (conjunctively).
	Filters []Filter
	// FilterDescs documents Filters for display, one string per filter.
	FilterDescs []string
	// FilterSels estimates, per filter, the fraction of bindings that
	// pass, for the cost-based planner's result-cardinality estimate.
	// Parallel to Filters; missing entries default to 1 (no reduction).
	FilterSels []float64
}

// NewRule builds a rule.
func NewRule(id string, head Atom, body ...Literal) *Rule {
	return &Rule{ID: id, Head: head, Body: body}
}

// AddFilter attaches a comparison filter with a human-readable label.
func (r *Rule) AddFilter(desc string, f Filter) {
	r.Filters = append(r.Filters, f)
	r.FilterDescs = append(r.FilterDescs, desc)
}

// AddFilterSel is AddFilter with an estimated selectivity in (0, 1] for
// the cost-based planner.
func (r *Rule) AddFilterSel(desc string, sel float64, f Filter) {
	for len(r.FilterSels) < len(r.Filters) {
		r.FilterSels = append(r.FilterSels, 1)
	}
	r.AddFilter(desc, f)
	r.FilterSels = append(r.FilterSels, sel)
}

// FilterSelectivity returns the product of the rule's filter selectivity
// estimates.
func (r *Rule) FilterSelectivity() float64 {
	sel := 1.0
	for _, s := range r.FilterSels {
		if s > 0 && s <= 1 {
			sel *= s
		}
	}
	return sel
}

// PositiveBodyVars returns the set of variables bound by positive body
// atoms.
func (r *Rule) PositiveBodyVars() map[string]bool {
	vars := make(map[string]bool)
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		for _, v := range l.Atom.Vars() {
			vars[v] = true
		}
	}
	return vars
}

// Validate checks rule safety:
//   - every head variable (incl. Skolem arguments) appears in a positive
//     body atom;
//   - every variable of a negated atom appears in a positive body atom
//     (safe negation, §3.1);
//   - Skolem terms in positive body atoms act as computed equality
//     checks (the inverse rules of §4.1.3 need them); their arguments
//     must be bound by regular variable occurrences, and negated atoms
//     may not contain them;
//   - the body is non-empty.
func (r *Rule) Validate() error {
	if len(r.Body) == 0 {
		return fmt.Errorf("datalog: rule %s has empty body", r.ID)
	}
	// Variables bound by regular (non-Skolem) occurrences in positive
	// atoms; Skolem argument lists cannot bind.
	pos := make(map[string]bool)
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		for _, t := range l.Atom.Args {
			if t.Kind == TermVar {
				pos[t.Var] = true
			}
		}
	}
	if len(pos) == 0 {
		return fmt.Errorf("datalog: rule %s has no positive body atom", r.ID)
	}
	for _, v := range r.Head.Vars() {
		if !pos[v] {
			return fmt.Errorf("datalog: rule %s: head variable %q not bound by positive body", r.ID, v)
		}
	}
	for _, l := range r.Body {
		for _, t := range l.Atom.Args {
			if t.Kind != TermSkolem {
				continue
			}
			if l.Neg {
				return fmt.Errorf("datalog: rule %s: Skolem term in negated atom %s", r.ID, l.Atom)
			}
			for _, v := range t.FnArgs {
				if !pos[v] {
					return fmt.Errorf("datalog: rule %s: body Skolem argument %q not bound", r.ID, v)
				}
			}
		}
		if !l.Neg {
			continue
		}
		for _, v := range l.Atom.Vars() {
			if !pos[v] {
				return fmt.Errorf("datalog: rule %s: unsafe negation on variable %q", r.ID, v)
			}
		}
	}
	return nil
}

// String renders "head :- lit1, lit2." with filter annotations.
func (r *Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	s := fmt.Sprintf("%s :- %s", r.Head, strings.Join(parts, ", "))
	for _, d := range r.FilterDescs {
		s += ", [" + d + "]"
	}
	return s + "."
}

// Program is a set of rules evaluated together to fixpoint.
type Program struct {
	Rules []*Rule
}

// NewProgram builds a program from rules.
func NewProgram(rules ...*Rule) *Program { return &Program{Rules: rules} }

// Add appends rules.
func (p *Program) Add(rules ...*Rule) { p.Rules = append(p.Rules, rules...) }

// Validate checks every rule.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// IDBPreds returns the set of predicates defined by some rule head.
func (p *Program) IDBPreds() map[string]bool {
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// Preds returns every predicate mentioned in the program, sorted.
func (p *Program) Preds() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, r := range p.Rules {
		add(r.Head.Pred)
		for _, l := range r.Body {
			add(l.Atom.Pred)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// String renders the program one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
