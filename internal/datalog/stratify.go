package datalog

import (
	"fmt"
	"sort"
)

// Stratum is a group of rules that may be evaluated together to fixpoint;
// strata are evaluated in order, so negated predicates are fully computed
// before any rule reads them.
type Stratum struct {
	Rules []*Rule
	// Preds is the sorted set of head predicates defined in this stratum.
	Preds []string
}

// Stratify partitions the program into strata. It returns an error if the
// program is not stratifiable (a predicate depends negatively on itself
// through recursion). Update-exchange programs are always stratifiable:
// negation appears only on rejection tables, which are EDB (§3.1).
func (p *Program) Stratify() ([]*Stratum, error) {
	idb := p.IDBPreds()

	// stratum number per IDB predicate; EDB predicates live at stratum 0.
	level := make(map[string]int)
	for pred := range idb {
		level[pred] = 1
	}

	// Iterate to fixpoint over the constraints:
	//   head ≥ pos-body IDB pred
	//   head ≥ neg-body IDB pred + 1
	// A predicate climbing above len(idb) proves a negative cycle.
	limit := len(idb) + 1
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			h := r.Head.Pred
			for _, l := range r.Body {
				b := l.Atom.Pred
				if !idb[b] {
					continue
				}
				want := level[b]
				if l.Neg {
					want++
				}
				if level[h] < want {
					level[h] = want
					changed = true
					if level[h] > limit {
						return nil, fmt.Errorf("datalog: program not stratifiable: predicate %q depends negatively on itself", h)
					}
				}
			}
		}
	}

	maxLevel := 0
	for _, lv := range level {
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	strata := make([]*Stratum, maxLevel)
	for i := range strata {
		strata[i] = &Stratum{}
	}
	for _, r := range p.Rules {
		lv := level[r.Head.Pred]
		strata[lv-1].Rules = append(strata[lv-1].Rules, r)
	}
	out := strata[:0]
	for _, s := range strata {
		if len(s.Rules) == 0 {
			continue
		}
		predSet := make(map[string]bool)
		for _, r := range s.Rules {
			predSet[r.Head.Pred] = true
		}
		for pred := range predSet {
			s.Preds = append(s.Preds, pred)
		}
		sort.Strings(s.Preds)
		out = append(out, s)
	}
	return out, nil
}

// DependencyGraph returns, for each predicate, the set of predicates its
// defining rules read (positively or negatively). Useful for diagnostics
// and for the goal-directed derivation program (§4.1.3).
func (p *Program) DependencyGraph() map[string][]string {
	g := make(map[string]map[string]bool)
	for _, r := range p.Rules {
		set := g[r.Head.Pred]
		if set == nil {
			set = make(map[string]bool)
			g[r.Head.Pred] = set
		}
		for _, l := range r.Body {
			set[l.Atom.Pred] = true
		}
	}
	out := make(map[string][]string, len(g))
	for pred, set := range g {
		deps := make([]string, 0, len(set))
		for d := range set {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		out[pred] = deps
	}
	return out
}

// RulesFor returns the rules whose head predicate is pred.
func (p *Program) RulesFor(pred string) []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			out = append(out, r)
		}
	}
	return out
}
