package orchestra

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/core"
	"orchestra/internal/evolve"
	"orchestra/internal/spec"
	"orchestra/internal/tgd"
)

// Live confederation evolution: a running System's spec can be changed
// in place — peers joined, mappings added and removed, trust policies
// replaced — without tearing the System down and re-exchanging from
// publication zero. Each operation validates the evolved spec
// (well-formedness, ownership, weak acyclicity), recompiles every
// materialized view's mapping program, and incrementally repairs the
// materialized state:
//
//   - AddPeer only extends the schema; existing state is untouched.
//   - AddMapping runs a semi-naive round seeded with just the new
//     mapping's rules, so cost scales with its derivations.
//   - RemoveMapping and trust revocation are the paper's
//     provenance-driven deletion generalized from tuple deletions to
//     rule deletions: exactly the tuples whose every derivation uses a
//     removed (or newly untrusted) mapping are deleted. Under
//     WithDeletionStrategy(DeleteDRed/DeleteRecompute) the configured
//     fallback runs instead.
//   - Base-level trust changes (peer distrust, base conditions) filter
//     tuples at import time and are therefore history-dependent — a
//     grant cannot resurrect tuples that were never imported, and a
//     revocation cannot reconstruct the rejections that deletion edits
//     would have left — so the affected peer's view is rebuilt by
//     replaying the publication history up to its cursor.
//
// Evolution is exclusive: it locks the whole System (no exchanges,
// queries, or checkpoints run concurrently) and, under WithPersistence,
// finishes by re-stamping the state directory's spec fingerprint and
// checkpointing every view, so a restart recovers under the evolved
// spec. The invariants of DESIGN.md hold throughout: view cursors never
// move (a fortiori never past the bus horizon), and SpecGeneration
// increases by one per applied operation.

// AddPeer registers a new peer and its relations on the running system.
// decl uses the spec-file syntax after the "peer" keyword, e.g.
//
//	sys.AddPeer(ctx, "PRef { relation C(nam int, cls int) }")
//
// The new relations start empty everywhere; the peer can immediately
// publish edits and other peers can be mapped onto it with AddMapping.
func (s *System) AddPeer(ctx context.Context, decl string) error {
	p, err := spec.ParsePeerDecl(decl)
	if err != nil {
		return err
	}
	return s.applyOps(ctx, []evolve.Op{{Kind: evolve.OpAddPeer, Peer: p}})
}

// AddMapping adds a schema mapping to the running system. decl uses the
// spec-file syntax after the "mapping" keyword, e.g.
//
//	sys.AddMapping(ctx, "m4: U(n,c) -> C(n,n)")
//
// The evolved mapping set is validated (well-formed, unique id, weakly
// acyclic) before anything changes. Every materialized view is repaired
// with a semi-naive round seeded with only the new mapping's rules, so
// existing instances flow through it exactly once.
func (s *System) AddMapping(ctx context.Context, decl string) error {
	m, err := tgd.Parse(decl)
	if err != nil {
		return err
	}
	if m.ID == "" {
		return fmt.Errorf("orchestra: mapping %q needs an id (\"mX: ...\")", decl)
	}
	return s.applyOps(ctx, []evolve.Op{{Kind: evolve.OpAddMapping, Mapping: m}})
}

// RemoveMapping removes the mapping with the given id from the running
// system. Every materialized view deletes exactly the tuples whose every
// derivation in the provenance graph uses the removed mapping (tuples
// with surviving alternative derivations stay), per the configured
// deletion strategy.
func (s *System) RemoveMapping(ctx context.Context, id string) error {
	return s.applyOps(ctx, []evolve.Op{{Kind: evolve.OpRemoveMapping, MappingID: id}})
}

// SetTrust replaces a peer's entire trust policy on the running system
// (nil restores the default trust-everything Θ). Mapping-level
// conditions repair in place: derivations the new policy rejects are
// revoked via provenance-driven deletion, and derivations it newly
// accepts are re-derived from data still in the views. Changing the
// peer's base-level trust (peer distrust, base conditions) instead
// rebuilds that peer's view from the publication history — import-time
// filtering is history-dependent, so in-place repair cannot be exact.
func (s *System) SetTrust(ctx context.Context, peer string, pol *TrustPolicy) error {
	return s.applyOps(ctx, []evolve.Op{{Kind: evolve.OpSetTrust, TrustPeer: peer, Policy: pol}})
}

// ApplyDiff applies a whole spec-diff (see ParseSpecDiff and the
// orchestra CLI's evolve subcommand) as one exclusive evolution: the
// operations validate and repair in order, and persistence checkpoints
// once at the end.
func (s *System) ApplyDiff(ctx context.Context, d *SpecDiff) error {
	return s.applyOps(ctx, d.Ops)
}

// applyOps is the one evolution entry point: it locks the whole System,
// folds the operations over the spec — validating each intermediate
// spec and repairing every materialized view — and re-checkpoints the
// state directory under the new spec fingerprint.
func (s *System) applyOps(ctx context.Context, ops []evolve.Op) error {
	if len(ops) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Lock every materialized view for the whole evolution, in sorted
	// owner order; operations observe and repair a quiescent system.
	owners := make([]string, 0, len(s.views))
	for owner := range s.views {
		owners = append(owners, owner)
	}
	sort.Strings(owners)
	handles := make([]*viewHandle, len(owners))
	for i, owner := range owners {
		handles[i] = s.views[owner]
		handles[i].mu.Lock()
	}
	defer func() {
		for _, h := range handles {
			h.mu.Unlock()
		}
	}()

	for i, op := range ops {
		if err := s.applyOpLocked(ctx, op, owners); err != nil {
			return fmt.Errorf("orchestra: evolution op %d (%s): %w", i+1, op.Kind, err)
		}
	}

	// Re-stamp and re-checkpoint so a restart recovers under the evolved
	// spec; the old-spec snapshots would (correctly) be rejected.
	if s.store != nil {
		//orchestralint:ignore locksafe evolution is deliberately stop-the-world; the fingerprint must land before any lock-free reader sees the new spec
		if err := s.store.SetSpecFingerprint(s.spec.Fingerprint()); err != nil {
			return fmt.Errorf("orchestra: evolution applied but fingerprint update failed: %w", err)
		}
		for _, owner := range owners {
			h, ok := s.views[owner]
			if !ok {
				continue // view was dropped by a failed replay
			}
			if err := s.checkpointLocked(ctx, owner, h); err != nil {
				return fmt.Errorf("orchestra: evolution applied but checkpoint of view %q failed: %w", owner, err)
			}
		}
	}
	return nil
}

// applyOpLocked applies one operation under the System's exclusive lock.
// The new spec is installed before the views repair: a view whose repair
// fails is left dirty (it recovers by full recomputation from its base
// tables, which evolution never corrupts) or — when even that cannot
// reconstruct it, i.e. a failed history replay — dropped, to be rebuilt
// from publication zero on next use.
func (s *System) applyOpLocked(ctx context.Context, op evolve.Op, owners []string) error {
	newSpec, err := evolve.ApplyOp(s.spec, op)
	if err != nil {
		return err
	}
	oldSpec := s.spec
	s.spec = newSpec
	s.specGen++

	trustPeer := op.TrustPeer
	if op.Kind == evolve.OpTrustDirective {
		if f := strings.Fields(op.Directive); len(f) > 0 {
			trustPeer = f[0]
		}
	}

	var firstErr error
	for _, owner := range owners {
		h, ok := s.views[owner]
		if !ok {
			continue
		}
		var verr error
		switch op.Kind {
		case evolve.OpAddPeer:
			verr = h.view.Recompile(ctx, newSpec)
		case evolve.OpAddMapping:
			_, verr = h.view.AddMappings(ctx, newSpec, []string{op.Mapping.ID})
		case evolve.OpRemoveMapping:
			_, verr = h.view.RemoveMappings(ctx, newSpec, []string{op.MappingID}, s.strategy)
		case evolve.OpSetTrust, evolve.OpTrustDirective:
			if owner == trustPeer && core.BaseTrustChanged(oldSpec, newSpec, trustPeer) {
				if verr = s.replayViewLocked(ctx, owner, h, newSpec); verr != nil {
					// The old view is unrecoverable in place (base-level
					// trust filters at import time, so its Rℓ/Rr no longer
					// reflect the history); drop it so the next use
					// rebuilds from publication zero.
					delete(s.views, owner)
					if s.store != nil {
						s.store.Remove(owner)
					}
				}
			} else {
				_, verr = h.view.ApplyTrust(ctx, newSpec, s.strategy)
			}
		}
		if verr != nil && firstErr == nil {
			firstErr = fmt.Errorf("repairing view %q: %w", owner, verr)
		}
	}
	return firstErr
}

// replayViewLocked rebuilds one view from the publication history: a
// fresh view of newSpec replays exactly the publications the old view
// had applied ([0, cursor)), then replaces it. The cursor is unchanged,
// so pending publications stay pending.
func (s *System) replayViewLocked(ctx context.Context, owner string, h *viewHandle, newSpec *core.Spec) error {
	v, err := core.NewView(newSpec, owner, s.opts)
	if err != nil {
		return err
	}
	s.setupView(owner, v)
	deltas, _, err := s.bus.Fetch(ctx, core.Cursor{})
	if err != nil {
		return err
	}
	applied := h.cursor.Total()
	if len(deltas) < applied {
		return fmt.Errorf("orchestra: bus holds %d publications but view %q has applied %d; cannot replay", len(deltas), owner, applied)
	}
	for _, d := range deltas[:applied] {
		if _, err := v.ApplyEdits(ctx, d.Pub.Log, s.strategy); err != nil {
			return err
		}
	}
	h.view = v
	return nil
}
