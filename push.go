package orchestra

import (
	"context"
	"fmt"

	"orchestra/internal/core"
	"orchestra/internal/exchange"
)

// StartPush switches the System from polling to push delivery: it
// subscribes to the bus (which must implement BusWatcher — the
// in-process MemoryBus, the durable sharded bus, and the HTTP bus all
// do) and, for every publication streamed in, buffers the delta on
// each materialized view and wakes an exchange loop that imports it
// immediately. Bursts coalesce: the loop runs one pass per burst, over
// the same scheduler and coalescing policy ExchangeAll uses, so a
// follower applies publications with sub-second latency without
// polling and without full-log replays (a view whose buffer gaps or
// overflows falls back to one ordinary pull fetch).
//
// Views materialized after StartPush still converge — every exchange
// pass covers all current views — but only publications streamed after
// they materialize are push-buffered for them; their first pass pulls.
//
// The returned stop function cancels the subscription and waits for
// the delivery loop to drain; cancelling ctx does the same. Calling
// StartPush on a bus without the BusWatcher capability returns an
// error, leaving the caller on its polling path.
func (s *System) StartPush(ctx context.Context) (stop func(), err error) {
	w, ok := s.bus.(core.BusWatcher)
	if !ok {
		return nil, fmt.Errorf("orchestra: bus %T has no subscription capability (core.BusWatcher); poll with ExchangeAll instead", s.bus)
	}
	// Subscribe from the laggiest view's cursor: deltas a fresher view
	// already applied are skipped as stale during its pass, and nothing
	// any view still needs is missed. With no views yet, subscribing
	// from the horizon avoids replaying history nobody buffered for.
	from, err := s.minCursor(ctx)
	if err != nil {
		return nil, err
	}
	ch, cancel, err := w.Subscribe(ctx, from)
	if err != nil {
		return nil, err
	}
	pctx, cancelLoop := context.WithCancel(ctx)
	waker := exchange.NewWaker()
	done := make(chan struct{})
	// Receiver: buffer each delta on every materialized view and wake
	// the exchange loop. Buffering never takes a view's lock, so a slow
	// exchange cannot stall delivery (the buffer bound caps memory).
	go func() {
		defer close(done)
		for {
			select {
			case d, ok := <-ch:
				if !ok {
					return
				}
				s.mu.RLock()
				for _, h := range s.views {
					h.bufferPush(d)
				}
				s.mu.RUnlock()
				waker.Wake()
			case <-pctx.Done():
				return
			}
		}
	}()
	// Exchange loop: one pass per burst.
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		for {
			select {
			case <-waker.C():
				s.pushPass(pctx)
			case <-pctx.Done():
				return
			}
		}
	}()
	return func() {
		cancel()
		cancelLoop()
		<-done
		<-loopDone
	}, nil
}

// minCursor returns the smallest cursor over the materialized views,
// or the bus horizon when no view exists yet.
func (s *System) minCursor(ctx context.Context) (core.Cursor, error) {
	s.mu.RLock()
	handles := make([]*viewHandle, 0, len(s.views))
	for _, h := range s.views {
		handles = append(handles, h)
	}
	s.mu.RUnlock()
	if len(handles) == 0 {
		return s.bus.Horizon(ctx)
	}
	var minC core.Cursor
	for i, h := range handles {
		h.mu.Lock()
		c := h.cursor
		h.mu.Unlock()
		if i == 0 || c.Total() < minC.Total() {
			minC = c
		}
	}
	return minC, nil
}

// pushPass runs one push-triggered exchange pass over every
// materialized view, reusing the scheduler (and its parallelism bound)
// that ExchangeAll uses. Errors are reflected in the pass metrics and
// trace; the loop keeps running — the next burst (or any pull
// exchange) retries.
func (s *System) pushPass(ctx context.Context) {
	s.mu.RLock()
	owners := make([]string, 0, len(s.views))
	for owner := range s.views {
		owners = append(owners, owner)
	}
	s.mu.RUnlock()
	if len(owners) == 0 {
		return
	}
	pass := s.obsx.startPass(passKindExchangePush)
	tasks := make([]exchange.Task[ApplyStats], len(owners))
	for i, owner := range owners {
		tasks[i] = exchange.Task[ApplyStats]{Owner: owner, Run: func(ctx context.Context) (ApplyStats, error) {
			return s.exchangeView(ctx, owner, pass)
		}}
	}
	_, err := s.sched.Run(ctx, tasks)
	s.obsx.finishPass(pass, passKindExchangePush, err)
}
