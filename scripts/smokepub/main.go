// Command smokepub publishes one update to a running orchestrad's
// publication endpoint through the public HTTP bus — the "one real
// publish" of the CI serve-smoke job (scripts/serve-smoke.sh). It
// builds a bus-only System over the same spec so the publication is
// validated locally exactly as a federated node's would be. It mints a
// lineage trace id for the publish and prints it (trace=<id>) so the
// smoke script can follow the publication across processes.
//
// Usage: smokepub <bus-url> <spec-file>
package main

import (
	"context"
	"fmt"
	"os"

	"orchestra"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: smokepub <bus-url> <spec-file>")
		os.Exit(2)
	}
	url, specPath := os.Args[1], os.Args[2]
	f, err := os.Open(specPath)
	if err != nil {
		fatal(err)
	}
	parsed, perr := orchestra.ParseSpec(f)
	f.Close()
	if perr != nil {
		fatal(perr)
	}
	sys, err := orchestra.New(parsed.Spec, orchestra.WithBus(orchestra.NewHTTPBus(url)))
	if err != nil {
		fatal(err)
	}
	ctx, traceID := orchestra.NewTraceContext(context.Background())
	err = sys.Publish(ctx, "PGUS", orchestra.EditLog{
		orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3)),
		orchestra.Ins("G", orchestra.MakeTuple(3, 5, 2)),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("published 1 update (2 edits) as PGUS trace=%s\n", traceID)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smokepub:", err)
	os.Exit(1)
}
