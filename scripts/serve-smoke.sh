#!/usr/bin/env sh
# Serve smoke: boot a durable orchestrad, publish one real update
# through the HTTP bus, and assert the operations plane reports it —
# /readyz goes green, /metrics carries non-zero core series, and
# /debug/trace returns the pass's span tree.
#
# Run from the repo root: ./scripts/serve-smoke.sh [port]
set -eu

PORT="${1:-8391}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
TOKEN=smoke-token
DAEMON_PID=""

cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

cat > "$TMP/smoke.cdss" <<'EOF'
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)
EOF

go build -o "$TMP/orchestrad" ./cmd/orchestrad
go build -o "$TMP/smokepub" ./scripts/smokepub
go build -o "$TMP/orchestra" ./cmd/orchestra

"$TMP/orchestrad" -addr "127.0.0.1:$PORT" \
    -spec "$TMP/smoke.cdss" -store "$TMP/pubs.olg" -state "$TMP/state" \
    -view all -refresh 500ms -admin-token "$TOKEN" &
DAEMON_PID=$!

# Readiness: poll /readyz until the first exchange has warmed the views.
i=0
until curl -fsS "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon never became ready" >&2
        curl -sS "$BASE/readyz" >&2 || true
        exit 1
    fi
    sleep 0.2
done
echo "ready: $(curl -fsS "$BASE/healthz")"

"$TMP/smokepub" "$BASE" "$TMP/smoke.cdss"

# Wait until the publish-triggered exchange pass lands in the metrics.
i=0
until curl -fsS "$BASE/metrics" | grep -q '^orchestra_exchange_publications_total [1-9]'; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: publication never consumed by an exchange" >&2
        exit 1
    fi
    sleep 0.2
done

METRICS="$(curl -fsS "$BASE/metrics")"

# Core series must exist with non-zero samples under publish load.
assert_nonzero() {
    if ! echo "$METRICS" | grep -E "^$1(\{[^}]*\})? [0-9.e+-]+" | grep -qv ' 0$'; then
        echo "serve-smoke: metric $1 missing or zero" >&2
        echo "$METRICS" | grep "^$1" >&2 || echo "(no $1 series at all)" >&2
        exit 1
    fi
}
assert_present() {
    if ! echo "$METRICS" | grep -q "^$1"; then
        echo "serve-smoke: metric $1 missing" >&2
        exit 1
    fi
}
assert_nonzero orchestra_exchange_pass_duration_seconds_count
assert_nonzero orchestra_exchange_publications_total
assert_nonzero orchestra_publish_accepted_total
assert_nonzero orchestra_bus_append_bytes_total
assert_nonzero orchestra_http_requests_total
assert_present orchestra_bus_lag
assert_present orchestra_coalesce_cancellation_ratio
assert_present orchestra_checkpoint_age_seconds

# The trace ring serves the pass's span tree behind the admin token.
TRACE="$(curl -fsS -H "Authorization: Bearer $TOKEN" "$BASE/debug/trace?last=1")"
echo "$TRACE" | grep -q '"pass:exchange_all"' || {
    echo "serve-smoke: /debug/trace missing exchange_all span: $TRACE" >&2
    exit 1
}

# The one-shot dashboard renders against the live daemon.
"$TMP/orchestra" stats -url "$BASE"

echo "serve-smoke: OK"
