#!/usr/bin/env sh
# Serve smoke: boot a two-node confederation — node A owns the durable
# publication store, node B exchanges against A's bus over HTTP — then
# publish one real update at A and assert the operations plane follows
# it end to end:
#   - both /readyz endpoints go green and A's /metrics carries non-zero
#     core series,
#   - B converges via push streaming: the publish reaches B's views in
#     under a second — B's only refresh tick is 10s away — and B's
#     fetch counters prove no full-log replay happened,
#   - ONE lineage trace id (minted by the publisher) appears in BOTH
#     processes' /debug/trace?pub= responses,
#   - `orchestra trace -pub` renders the cross-process span tree,
#   - /debug/pprof/ answers 200 with the admin token and 401 without,
#   - a live query lands in /debug/slowqueries with its plan.
#
# Run from the repo root: ./scripts/serve-smoke.sh [portA [portB]]
set -eu

PORT_A="${1:-8391}"
PORT_B="${2:-8392}"
BASE_A="http://127.0.0.1:$PORT_A"
BASE_B="http://127.0.0.1:$PORT_B"
TMP="$(mktemp -d)"
TOKEN=smoke-token
PID_A=""
PID_B=""

cleanup() {
    for pid in $PID_A $PID_B; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

cat > "$TMP/smoke.cdss" <<'EOF'
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)
EOF

go build -o "$TMP/orchestrad" ./cmd/orchestrad
go build -o "$TMP/smokepub" ./scripts/smokepub
go build -o "$TMP/orchestra" ./cmd/orchestra

# Node A: durable store + state, the confederation's publication service.
"$TMP/orchestrad" -addr "127.0.0.1:$PORT_A" \
    -spec "$TMP/smoke.cdss" -store "$TMP/pubs.olg" -state "$TMP/stateA" \
    -view all -refresh 500ms -admin-token "$TOKEN" -slow-query 1ns &
PID_A=$!

# Node B: a follower — no local store; its views subscribe to A's
# delta stream (GET /watch), so a publication at A is pushed to B the
# moment it commits. The refresh interval is deliberately LONG: with
# the next poll 10s away, sub-second convergence below can only be
# explained by push streaming.
"$TMP/orchestrad" -addr "127.0.0.1:$PORT_B" \
    -spec "$TMP/smoke.cdss" -bus "$BASE_A" -state "$TMP/stateB" \
    -view all -refresh 10s -admin-token "$TOKEN" &
PID_B=$!

wait_ready() {
    i=0
    until curl -fsS "$1/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve-smoke: $1 never became ready" >&2
            curl -sS "$1/readyz" >&2 || true
            exit 1
        fi
        sleep 0.2
    done
}
wait_ready "$BASE_A"
wait_ready "$BASE_B"
echo "ready A: $(curl -fsS "$BASE_A/healthz")"
echo "ready B: $(curl -fsS "$BASE_B/healthz")"

# Snapshot B's fetch counter before the publish: the push import must
# not move it (a pushed delta is applied as delivered, never refetched).
metric_val() {
    curl -fsS "$1/metrics" | awk -v m="$2" '$1 == m { print $2; found = 1 } END { if (!found) print 0 }'
}
FETCHED_BEFORE="$(metric_val "$BASE_B" orchestra_exchange_fetch_publications_total)"

PUBOUT="$("$TMP/smokepub" "$BASE_A" "$TMP/smoke.cdss")"
echo "$PUBOUT"
TRACE_ID="${PUBOUT##*trace=}"
if [ -z "$TRACE_ID" ]; then
    echo "serve-smoke: smokepub printed no trace id: $PUBOUT" >&2
    exit 1
fi

# Push convergence: B must apply the publish within one second. Its
# next refresh tick is ~10s away, so this can only be the /watch
# subscription delivering the delta.
i=0
until curl -fsS "$BASE_B/metrics" | grep -q '^orchestra_exchange_push_deltas_total [1-9]'; do
    i=$((i + 1))
    if [ "$i" -gt 20 ]; then
        echo "serve-smoke: publish never reached B by push within ~1s" >&2
        curl -sS "$BASE_B/metrics" | grep '^orchestra_exchange_' >&2 || true
        exit 1
    fi
    sleep 0.05
done
FETCHED_AFTER="$(metric_val "$BASE_B" orchestra_exchange_fetch_publications_total)"
if [ "$FETCHED_AFTER" != "$FETCHED_BEFORE" ]; then
    echo "serve-smoke: B's fetch counter moved $FETCHED_BEFORE -> $FETCHED_AFTER; push import replayed the log" >&2
    exit 1
fi
echo "push: B converged via streaming (push deltas applied, no refetch)"

# Wait until the publish-triggered exchange pass lands in A's metrics.
i=0
until curl -fsS "$BASE_A/metrics" | grep -q '^orchestra_exchange_publications_total [1-9]'; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: publication never consumed by an exchange on A" >&2
        exit 1
    fi
    sleep 0.2
done

METRICS="$(curl -fsS "$BASE_A/metrics")"

# Core series must exist with non-zero samples under publish load.
assert_nonzero() {
    if ! echo "$METRICS" | grep -E "^$1(\{[^}]*\})? [0-9.e+-]+" | grep -qv ' 0$'; then
        echo "serve-smoke: metric $1 missing or zero" >&2
        echo "$METRICS" | grep "^$1" >&2 || echo "(no $1 series at all)" >&2
        exit 1
    fi
}
assert_present() {
    if ! echo "$METRICS" | grep -q "^$1"; then
        echo "serve-smoke: metric $1 missing" >&2
        exit 1
    fi
}
assert_nonzero orchestra_exchange_pass_duration_seconds_count
assert_nonzero orchestra_exchange_publications_total
assert_nonzero orchestra_publish_accepted_total
assert_nonzero orchestra_bus_append_bytes_total
assert_nonzero orchestra_http_requests_total
assert_nonzero orchestra_build_info
assert_nonzero orchestra_process_uptime_seconds
assert_present orchestra_bus_lag
assert_present orchestra_coalesce_cancellation_ratio
assert_present orchestra_checkpoint_age_seconds

# The SAME trace id must appear in both processes' lineage endpoints:
# A saw the publish and its own exchange; B imported the publication
# over the bus, where the trace id rode the wire and the durable frame.
wait_trace() {
    i=0
    until curl -fsS -H "Authorization: Bearer $TOKEN" \
            "$1/debug/trace?pub=$TRACE_ID" | grep -q '"pass"'; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "serve-smoke: trace $TRACE_ID never appeared at $1" >&2
            curl -sS -H "Authorization: Bearer $TOKEN" "$1/debug/trace?pub=$TRACE_ID" >&2 || true
            exit 1
        fi
        sleep 0.2
    done
}
wait_trace "$BASE_A"
wait_trace "$BASE_B"
curl -fsS -H "Authorization: Bearer $TOKEN" "$BASE_A/debug/trace?pub=$TRACE_ID" \
    | grep -q '"peer": *"PGUS"' || {
    echo "serve-smoke: node A's trace lacks the publish-side record" >&2
    exit 1
}
echo "trace $TRACE_ID spans both processes"

# The CLI renders the end-to-end tree across both nodes.
TRACETREE="$("$TMP/orchestra" trace -pub "$TRACE_ID" -url "$BASE_A,$BASE_B" -token "$TOKEN")"
echo "$TRACETREE"
for want in "● $BASE_A" "● $BASE_B" "publish  peer=PGUS"; do
    case "$TRACETREE" in
        *"$want"*) ;;
        *) echo "serve-smoke: orchestra trace output missing '$want'" >&2; exit 1 ;;
    esac
done

# pprof: 200 with the admin token, 401 without.
CODE="$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer $TOKEN" "$BASE_A/debug/pprof/")"
[ "$CODE" = 200 ] || { echo "serve-smoke: pprof with token: $CODE" >&2; exit 1; }
CODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE_A/debug/pprof/")"
[ "$CODE" = 401 ] || { echo "serve-smoke: pprof without token: $CODE, want 401" >&2; exit 1; }

# Read-path telemetry: a live query (1ns threshold) lands in the slow ring.
curl -fsS --get --data-urlencode "q=ans(i,n) :- G(i,c,n)" "$BASE_A/query" >/dev/null
SLOW="$(curl -fsS -H "Authorization: Bearer $TOKEN" "$BASE_A/debug/slowqueries")"
echo "$SLOW" | grep -q 'G(i,c,n)' || {
    echo "serve-smoke: /debug/slowqueries missing the query: $SLOW" >&2
    exit 1
}

# The one-shot dashboard renders against both live daemons.
"$TMP/orchestra" stats -url "$BASE_A"
"$TMP/orchestra" stats -url "$BASE_B"

echo "serve-smoke: OK"
