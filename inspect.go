package orchestra

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"orchestra/internal/core"
)

// Instance returns a copy of the rows of an owner's curated instance Rᵒ
// of a user relation — what the peer's users query (§3.1).
func (s *System) Instance(owner, rel string) ([]Tuple, error) {
	return s.tableRows(owner, rel, func(v *core.View, rel string) rowSource { return v.Instance(rel) })
}

// LocalContributions returns a copy of the rows of Rℓ: the tuples the
// owner's peer inserted itself.
func (s *System) LocalContributions(owner, rel string) ([]Tuple, error) {
	return s.tableRows(owner, rel, func(v *core.View, rel string) rowSource { return v.LocalTable(rel) })
}

// Rejections returns a copy of the rows of Rr: imported tuples the
// owner's peer has curated away.
func (s *System) Rejections(owner, rel string) ([]Tuple, error) {
	return s.tableRows(owner, rel, func(v *core.View, rel string) rowSource { return v.RejectTable(rel) })
}

type rowSource interface {
	Each(func(Tuple) bool)
}

func (s *System) tableRows(owner, rel string, pick func(*core.View, string) rowSource) ([]Tuple, error) {
	h, err := s.handle(owner)
	if err != nil {
		return nil, err
	}
	if s.specNow().Universe.Relation(rel) == nil {
		return nil, fmt.Errorf("orchestra: unknown relation %q", rel)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.view.Repair(context.Background()); err != nil {
		return nil, err
	}
	var out []Tuple
	pick(h.view, rel).Each(func(t Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out, nil
}

// TableSizes reports the sizes of one relation's four internal tables in
// an owner's view (Fig. 2's Rℓ / Rr / Rⁱ / Rᵒ).
type TableSizes struct {
	Local, Reject, Input, Instance int
}

// TableSizes returns the internal table sizes of a user relation.
func (s *System) TableSizes(owner, rel string) (TableSizes, error) {
	h, err := s.handle(owner)
	if err != nil {
		return TableSizes{}, err
	}
	if s.specNow().Universe.Relation(rel) == nil {
		return TableSizes{}, fmt.Errorf("orchestra: unknown relation %q", rel)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.view.Repair(context.Background()); err != nil {
		return TableSizes{}, err
	}
	return TableSizes{
		Local:    h.view.LocalTable(rel).Len(),
		Reject:   h.view.RejectTable(rel).Len(),
		Input:    h.view.InputTable(rel).Len(),
		Instance: h.view.Instance(rel).Len(),
	}, nil
}

// TotalRows returns the total number of rows across every table of an
// owner's view (base, derived, and provenance) — the view's footprint.
func (s *System) TotalRows(owner string) (int, error) {
	h, err := s.handle(owner)
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.view.Repair(context.Background()); err != nil {
		return 0, err
	}
	return h.view.DB().TotalRows(), nil
}

// DescribeInstance renders an owner's curated instance of a relation
// as sorted Describe strings — the stable, human-readable form the
// CLI, the daemon's /instance endpoint, and state-comparison code all
// want.
func (s *System) DescribeInstance(owner, rel string) ([]string, error) {
	rows, err := s.Instance(owner, rel)
	if err != nil {
		return nil, err
	}
	descs := make([]string, len(rows))
	for i, row := range rows {
		if descs[i], err = s.Describe(owner, row); err != nil {
			return nil, err
		}
	}
	sort.Strings(descs)
	return descs, nil
}

// Describe renders a tuple with labeled nulls shown through their
// Skolem structure, e.g. "(3, NULL(m3,2))".
func (s *System) Describe(owner string, t Tuple) (string, error) {
	h, err := s.handle(owner)
	if err != nil {
		return "", err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = h.view.Skolems().Describe(v)
	}
	return "(" + strings.Join(parts, ", ") + ")", nil
}

// GraphDot renders an owner's provenance graph in Graphviz DOT form
// (cf. Example 5).
func (s *System) GraphDot(owner string) (string, error) {
	h, err := s.handle(owner)
	if err != nil {
		return "", err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.view.Repair(context.Background()); err != nil {
		return "", err
	}
	return h.view.Graph().Dot(nil), nil
}

// WriteSnapshot serializes an owner's view state to w, for later
// RestoreSnapshot.
func (s *System) WriteSnapshot(owner string, w io.Writer) error {
	h, err := s.handle(owner)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.view.Repair(context.Background()); err != nil {
		return err
	}
	return h.view.WriteSnapshot(w)
}

// RestoreSnapshot installs an owner's view from a snapshot written by
// WriteSnapshot, replacing any existing view for that owner. The view's
// bus cursor restarts at zero: publications already reflected in the
// snapshot must not still be on the bus, or they will be applied twice.
func (s *System) RestoreSnapshot(owner string, r io.Reader) error {
	v, err := core.RestoreView(s.specNow(), owner, s.opts, r)
	if err != nil {
		return err
	}
	if vo := s.obsx.ensureView(owner); vo != nil {
		vo.cursor.Store(0) // the restored view restarts at publication zero
	}
	s.mu.Lock()
	s.views[owner] = &viewHandle{view: v}
	s.mu.Unlock()
	return nil
}
