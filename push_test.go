package orchestra_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"orchestra"
)

// waitDrained polls until the owner's view has no pending publications
// (push delivery advanced the cursor to the horizon) or the deadline
// passes. Pending compares the applied cursor against the bus horizon,
// so returning means the pushed publications were actually imported.
func waitDrained(t *testing.T, sys *orchestra.System, owner string) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		pending, err := sys.Pending(ctx, owner)
		if err != nil {
			t.Fatal(err)
		}
		if pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("view %q still has %d pending publications after 10s of push delivery", owner, pending)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runPushScenario drives the identical lifecycle as runScenario but
// lets push delivery import the publications: no Exchange call after
// the initial view materialization — convergence comes from StartPush.
func runPushScenario(t *testing.T, sys *orchestra.System) string {
	t.Helper()
	ctx := context.Background()
	// Materialize the global view first: push buffers deltas only for
	// views that exist, and the scenario's digest reads the global view.
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	stop, err := sys.StartPush(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	steps := []struct {
		peer string
		log  orchestra.EditLog
	}{
		{"PGUS", orchestra.EditLog{
			orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3)),
			orchestra.Ins("G", orchestra.MakeTuple(3, 5, 2)),
		}},
		{"PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(3, 5))}},
		{"PuBio", orchestra.EditLog{orchestra.Ins("U", orchestra.MakeTuple(2, 5))}},
	}
	for _, s := range steps {
		if err := sys.Publish(ctx, s.peer, s.log); err != nil {
			t.Fatalf("publish %s: %v", s.peer, err)
		}
	}
	waitDrained(t, sys, "")
	if err := sys.Publish(ctx, "PBioSQL", orchestra.EditLog{orchestra.Del("B", orchestra.MakeTuple(3, 2))}); err != nil {
		t.Fatalf("publish deletion: %v", err)
	}
	waitDrained(t, sys, "")
	return digest(t, sys, "")
}

// TestPushEquivalence extends the bus-equivalence property to the
// subscription path: the scenario imported via push-delivered deltas
// must be observationally identical — instances, query answers (null-id
// structure included), provenance — to the pull replay, on both the
// in-process bus and the HTTP bus.
func TestPushEquivalence(t *testing.T) {
	sp := parseTestSpec(t)

	pullSys, err := orchestra.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	pullDigest := runScenario(t, pullSys)

	memSys, err := orchestra.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	if d := runPushScenario(t, memSys); d != pullDigest {
		t.Errorf("memory bus: push diverged from pull:\n-- push --\n%s\n-- pull --\n%s", d, pullDigest)
	}

	srv := orchestra.NewBusServer()
	srv.ValidateAgainst(sp)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	httpSys, err := orchestra.New(sp, orchestra.WithBus(orchestra.NewHTTPBus(ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	if d := runPushScenario(t, httpSys); d != pullDigest {
		t.Errorf("http bus: push diverged from pull:\n-- push --\n%s\n-- pull --\n%s", d, pullDigest)
	}

	// Rejections agree on the push path too: an illegal cross-peer edit
	// is refused before it reaches any bus.
	for name, sys := range map[string]*orchestra.System{"memory": memSys, "http": httpSys} {
		if err := sys.Publish(context.Background(), "PuBio", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(7, 7, 7))}); err == nil {
			t.Errorf("%s bus: illegal publish accepted", name)
		}
	}
}

// counterValue extracts an unlabeled counter's value from a metrics
// exposition.
func counterValue(t *testing.T, o *orchestra.Observability, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := o.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	return 0
}

// TestStartPushImportsWithoutRefetch pins the point of the push path:
// a publication streamed to a subscribed follower is imported from the
// delivered deltas alone — the exchange fetch counters do not move.
func TestStartPushImportsWithoutRefetch(t *testing.T) {
	ctx := context.Background()
	o := orchestra.NewObservability(8)
	sys, err := orchestra.New(parseTestSpec(t), orchestra.WithObservability(o))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	stop, err := sys.StartPush(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	fetchedBefore := counterValue(t, o, "orchestra_exchange_fetch_publications_total")
	if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(ctx, "PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(1, 3))}); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, sys, "")

	if got := counterValue(t, o, "orchestra_exchange_push_deltas_total"); got < 2 {
		t.Errorf("push_deltas_total = %v, want >= 2", got)
	}
	if got := counterValue(t, o, "orchestra_exchange_fetch_publications_total"); got != fetchedBefore {
		t.Errorf("fetch_publications_total moved %v -> %v; push import refetched the log", fetchedBefore, got)
	}
	rows, err := sys.Instance("", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("pushed publication not materialized in the view")
	}
}

// legacyOnlyBus is a pull-only bus without the BusWatcher capability.
type legacyOnlyBus struct{ mem *orchestra.MemoryBus }

func (b legacyOnlyBus) Append(ctx context.Context, peer string, log orchestra.EditLog) error {
	return b.mem.Append(ctx, peer, log)
}

func (b legacyOnlyBus) FetchSince(ctx context.Context, cursor int) ([]orchestra.Publication, int, error) {
	return b.mem.FetchSince(ctx, cursor)
}

// TestStartPushUnsupportedBus: a pull-only bus is detected at StartPush
// time; the system stays fully functional on the polling path.
func TestStartPushUnsupportedBus(t *testing.T) {
	ctx := context.Background()
	sys, err := orchestra.New(parseTestSpec(t),
		orchestra.WithBus(orchestra.AdaptBus(legacyOnlyBus{mem: orchestra.NewMemoryBus()})))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.StartPush(ctx); err == nil {
		t.Fatal("StartPush on a pull-only bus must report the missing capability")
	}
	if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	rows, err := sys.Instance("", "G")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("polling path materialized %d rows, want 1", len(rows))
	}
}
